// Determinism guard for the simulation engine (ISSUE 5 / DESIGN.md §10).
//
// A sequential replay of a fixed trace must leave the machine in a
// bit-identical state for a fixed seed: same cycle totals, same media-byte
// counters, same LLC content (which encodes every eviction decision). The
// digests below were recorded from the engine BEFORE the fast-path rework
// (global atomic MachineStats, monolithic LLC behind sharded mutexes);
// the reworked engine — striped stats, truly sharded LLC, way-hint probes —
// must reproduce them exactly, proving the optimizations changed no
// simulated result.
//
// The traces use the integer-only uniform key stream (zipf_theta = 0):
// zipfian generation rounds through std::pow, whose last-bit behaviour is
// libm-specific, and a recorded digest must not depend on the host's libm.
#include <gtest/gtest.h>

#include "src/sim/config.h"
#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

ReplayTraceConfig DigestTrace(uint32_t workers) {
  ReplayTraceConfig cfg;
  cfg.workers = workers;
  cfg.ops_per_worker = 20000;
  cfg.keys_per_worker = 2048;
  cfg.shared_keys = 512;
  cfg.shared_fraction = 0.25;  // exercise the cross-core coherence paths
  cfg.value_size = 256;
  cfg.read_ratio = 0.5;
  cfg.zipf_theta = 0.0;  // integer-only key stream (portable digest)
  cfg.clean_period = 8;
  cfg.seed = 42;
  return cfg;
}

uint64_t RunDigest(const MachineConfig& mc, uint32_t workers) {
  Machine machine(mc);
  const ReplayTrace trace =
      GenerateReplayTrace(machine, DigestTrace(workers));
  ReplaySequential(machine, trace);
  return DigestMachine(machine, workers);
}

// Machine A: TSO drain, QuadAge LLC (per-set RNG victim choice), PMEM
// target with internal write-combining blocks.
TEST(SimDeterminism, MachineADigestMatchesPreReworkEngine) {
  constexpr uint64_t kRecorded = 14557681877422147460ULL;
  EXPECT_EQ(RunDigest(MachineA(4), 4), kRecorded);
}

// Machine B: weak drain (store buffer + fence publication), random-policy
// LLC, far-memory target with on-device directory.
TEST(SimDeterminism, MachineBDigestMatchesPreReworkEngine) {
  constexpr uint64_t kRecorded = 2163896687524659229ULL;
  EXPECT_EQ(RunDigest(MachineBFast(3), 3), kRecorded);
}

// Same-process repeatability, independent of any recorded constant (and of
// libm: this variant runs the zipfian trace too).
TEST(SimDeterminism, RepeatedReplaysAreBitIdentical) {
  ReplayTraceConfig cfg = DigestTrace(4);
  cfg.zipf_theta = 0.99;
  uint64_t digests[2];
  for (int i = 0; i < 2; ++i) {
    Machine machine(MachineA(4));
    const ReplayTrace trace = GenerateReplayTrace(machine, cfg);
    ReplaySequential(machine, trace);
    digests[i] = DigestMachine(machine, 4);
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace prestore
