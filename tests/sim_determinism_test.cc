// Determinism guard for the simulation engine (ISSUE 5 / DESIGN.md §10).
//
// A sequential replay of a fixed trace must leave the machine in a
// bit-identical state for a fixed seed: same cycle totals, same media-byte
// counters, same LLC content (which encodes every eviction decision). The
// digests below were recorded from the engine BEFORE the fast-path rework
// (global atomic MachineStats, monolithic LLC behind sharded mutexes);
// the reworked engine — striped stats, truly sharded LLC, way-hint probes —
// must reproduce them exactly, proving the optimizations changed no
// simulated result.
//
// The traces use the integer-only uniform key stream (zipf_theta = 0):
// zipfian generation rounds through std::pow, whose last-bit behaviour is
// libm-specific, and a recorded digest must not depend on the host's libm.
#include <gtest/gtest.h>

#include "src/sim/config.h"
#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

ReplayTraceConfig DigestTrace(uint32_t workers) {
  ReplayTraceConfig cfg;
  cfg.workers = workers;
  cfg.ops_per_worker = 20000;
  cfg.keys_per_worker = 2048;
  cfg.shared_keys = 512;
  cfg.shared_fraction = 0.25;  // exercise the cross-core coherence paths
  cfg.value_size = 256;
  cfg.read_ratio = 0.5;
  cfg.zipf_theta = 0.0;  // integer-only key stream (portable digest)
  cfg.clean_period = 8;
  cfg.seed = 42;
  return cfg;
}

uint64_t RunDigest(const MachineConfig& mc, uint32_t workers) {
  Machine machine(mc);
  const ReplayTrace trace =
      GenerateReplayTrace(machine, DigestTrace(workers));
  ReplaySequential(machine, trace);
  return DigestMachine(machine, workers);
}

// Machine A: TSO drain, QuadAge LLC (per-set RNG victim choice), PMEM
// target with internal write-combining blocks.
TEST(SimDeterminism, MachineADigestMatchesPreReworkEngine) {
  constexpr uint64_t kRecorded = 14557681877422147460ULL;
  EXPECT_EQ(RunDigest(MachineA(4), 4), kRecorded);
}

// Machine B: weak drain (store buffer + fence publication), random-policy
// LLC, far-memory target with on-device directory.
TEST(SimDeterminism, MachineBDigestMatchesPreReworkEngine) {
  constexpr uint64_t kRecorded = 2163896687524659229ULL;
  EXPECT_EQ(RunDigest(MachineBFast(3), 3), kRecorded);
}

// Same-process repeatability, independent of any recorded constant (and of
// libm: this variant runs the zipfian trace too).
TEST(SimDeterminism, RepeatedReplaysAreBitIdentical) {
  ReplayTraceConfig cfg = DigestTrace(4);
  cfg.zipf_theta = 0.99;
  uint64_t digests[2];
  for (int i = 0; i < 2; ++i) {
    Machine machine(MachineA(4));
    const ReplayTrace trace = GenerateReplayTrace(machine, cfg);
    ReplaySequential(machine, trace);
    digests[i] = DigestMachine(machine, 4);
  }
  EXPECT_EQ(digests[0], digests[1]);
}

uint64_t RunSlicedDigest(uint32_t workers, uint32_t host_threads,
                         uint64_t quantum) {
  Machine machine(MachineA(workers));
  const ReplayTrace trace =
      GenerateReplayTrace(machine, DigestTrace(workers));
  ReplaySlicedOptions options;
  options.host_threads = host_threads;
  options.quantum = quantum;
  ReplaySliced(machine, trace, options);
  return DigestMachine(machine, workers);
}

// The sliced scheduler's core contract (DESIGN.md §12): slices execute in
// global (round, core) order no matter how many host threads carry them, so
// the machine end state for N simulated cores is byte-identical for any M.
// This is exactly what free-running concurrent replay cannot promise.
TEST(SimDeterminism, SlicedDigestIndependentOfHostThreads) {
  const uint64_t m1 = RunSlicedDigest(8, 1, 20000);
  const uint64_t m2 = RunSlicedDigest(8, 2, 20000);
  const uint64_t m4 = RunSlicedDigest(8, 4, 20000);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m4);
}

// A quantum larger than the whole run degenerates round 0 into "run each
// core to completion, in core order" — which is the definition of
// ReplaySequential. The digests must agree exactly.
TEST(SimDeterminism, SlicedWithHugeQuantumMatchesSequential) {
  Machine sequential(MachineA(4));
  const ReplayTrace trace =
      GenerateReplayTrace(sequential, DigestTrace(4));
  ReplaySequential(sequential, trace);
  const uint64_t want = DigestMachine(sequential, 4);
  EXPECT_EQ(RunSlicedDigest(4, 1, uint64_t{1} << 40), want);
  EXPECT_EQ(RunSlicedDigest(4, 3, uint64_t{1} << 40), want);
}

// The quantum changes WHERE core switches land, so different quanta may
// legitimately produce different (each internally reproducible) schedules;
// the digest for a fixed quantum must still be independent of M.
TEST(SimDeterminism, SlicedSmallQuantumStillHostThreadInvariant) {
  EXPECT_EQ(RunSlicedDigest(4, 1, 500), RunSlicedDigest(4, 4, 500));
}

TEST(SimDeterminism, SchedulerConfigRejectsZeroQuantum) {
  SchedulerConfig cfg;
  cfg.quantum = 0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

TEST(SimDeterminism, SchedulerConfigRejectsZeroHostThreads) {
  SchedulerConfig cfg;
  cfg.host_threads = 0;
  EXPECT_THROW(cfg.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace prestore
