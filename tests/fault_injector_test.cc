// Deterministic fault injection: same plan ⇒ identical schedule and event
// log; each fault kind has its intended observable effect; accounting
// invariants survive injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/robust/invariants.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"

namespace prestore {
namespace {

FaultPlan MixedPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.specs.push_back(
      FaultSpec{FaultKind::kLatencySpike, 50000, 20000, 300.0, 4});
  plan.specs.push_back(
      FaultSpec{FaultKind::kBandwidthThrottle, 80000, 30000, 4.0, 3});
  plan.specs.push_back(
      FaultSpec{FaultKind::kBufferPressure, 60000, 25000, 6.0, 3});
  plan.specs.push_back(FaultSpec{FaultKind::kDropHint, 40000, 40000, 0.5, 4});
  plan.specs.push_back(FaultSpec{FaultKind::kDelayHint, 70000, 30000, 25.0, 3});
  return plan;
}

// A single-core Listing-1-ish workload: write an element, clean it, read it.
void RunWorkload(Machine& machine, uint32_t iters) {
  const SimAddr buf = machine.Alloc(256 * 64);
  std::vector<uint8_t> payload(64, 0x5a);
  RunOnCore(machine, [&](Core& core) {
    for (uint32_t i = 0; i < iters; ++i) {
      const SimAddr e = buf + (i % 256) * 64;
      core.MemCopyToSim(e, payload.data(), payload.size());
      core.Prestore(e, 64, PrestoreOp::kClean);
      core.LoadU64(e);
    }
  });
  machine.FlushAll();
}

TEST(FaultSchedule, SameSeedSameSchedule) {
  const FaultInjector a(MixedPlan(1234));
  const FaultInjector b(MixedPlan(1234));
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
    EXPECT_EQ(a.schedule()[i].start_cycle, b.schedule()[i].start_cycle);
    EXPECT_EQ(a.schedule()[i].end_cycle, b.schedule()[i].end_cycle);
    EXPECT_EQ(a.schedule()[i].magnitude, b.schedule()[i].magnitude);
  }
  EXPECT_EQ(a.EventLog(), b.EventLog());
}

TEST(FaultSchedule, DifferentSeedDifferentSchedule) {
  const FaultInjector a(MixedPlan(1));
  const FaultInjector b(MixedPlan(2));
  EXPECT_NE(a.EventLog(), b.EventLog());
}

TEST(FaultSchedule, WindowsAreSortedAndSized) {
  const FaultInjector inj(MixedPlan(99));
  ASSERT_EQ(inj.schedule().size(), 17u);  // 4 + 3 + 3 + 4 + 3
  uint64_t prev = 0;
  for (const FaultWindow& w : inj.schedule()) {
    EXPECT_GE(w.start_cycle, prev);
    EXPECT_GT(w.end_cycle, w.start_cycle);
    prev = w.start_cycle;
  }
}

TEST(FaultInjection, EventLogByteIdenticalAcrossRuns) {
  // Two fresh machines, two fresh injectors, same plan, same single-core
  // workload: the injected-event logs must match byte for byte.
  std::string logs[2];
  for (int run = 0; run < 2; ++run) {
    Machine machine(MachineA(1));
    FaultInjector injector(MixedPlan(777));
    injector.Attach(machine);
    RunWorkload(machine, 4000);
    logs[run] = injector.EventLog();
  }
  EXPECT_EQ(logs[0], logs[1]);
  // The run is long enough to cross the drop/delay windows, so the log must
  // contain per-hint interventions, not just the schedule.
  EXPECT_NE(logs[0].find("hint core=0"), std::string::npos);
}

TEST(FaultInjection, LatencySpikeSlowsTheRun) {
  const uint32_t iters = 3000;
  uint64_t cycles[2];
  for (int faulty = 0; faulty < 2; ++faulty) {
    Machine machine(MachineA(1));
    FaultPlan plan;
    plan.seed = 5;
    if (faulty != 0) {
      // One giant spike covering essentially the whole run.
      plan.specs.push_back(
          FaultSpec{FaultKind::kLatencySpike, 2, 1ULL << 40, 500.0, 1});
    }
    FaultInjector injector(plan);
    injector.Attach(machine);
    const SimAddr buf = machine.Alloc(1024 * 64);
    std::vector<uint8_t> payload(64, 1);
    cycles[faulty] = RunOnCore(machine, [&](Core& core) {
      for (uint32_t i = 0; i < iters; ++i) {
        // Load misses go straight to the device, so the spike is visible.
        core.LoadU64(buf + (i % 1024) * 64);
        core.MemCopyToSim(buf + (i % 1024) * 64, payload.data(), 64);
      }
    });
  }
  EXPECT_GT(cycles[1], cycles[0]);
}

TEST(FaultInjection, DropFaultSuppressesHints) {
  Machine machine(MachineA(1));
  FaultPlan plan;
  plan.seed = 11;
  plan.specs.push_back(
      FaultSpec{FaultKind::kDropHint, 2, 1ULL << 40, 1.0, 1});
  FaultInjector injector(plan);
  injector.Attach(machine);
  RunWorkload(machine, 500);
  const CoreStats& stats = machine.core(0).stats();
  // Drop probability 1.0 over the whole run: every hint is suppressed and
  // none reaches the issue path. (The schedule's first window starts a
  // couple of cycles into the run, so the very first hint may slip through.)
  EXPECT_GE(stats.prestores_suppressed, 499u);
  EXPECT_LE(stats.prestores_clean, 1u);
  EXPECT_EQ(stats.prestores_suppressed + stats.prestores_clean, 500u);
}

TEST(FaultInjection, BufferPressureRaisesWriteAmplification) {
  // Alternate single-line writes between two internal blocks. With the full
  // XPBuffer both blocks stay resident and each flushes once at drain; with
  // the buffer squeezed to one block every write evicts the other block, so
  // the media sees one full block per write.
  DeviceConfig cfg;
  cfg.kind = DeviceKind::kPmem;
  cfg.name = "pmem";
  cfg.interleave_dimms = 1;
  cfg.internal_buffer_blocks = 2;
  const uint32_t kIters = 64;

  uint64_t media[2];
  for (int faulty = 0; faulty < 2; ++faulty) {
    auto device = MakeDevice(cfg);
    FaultPlan plan;
    plan.seed = 3;
    if (faulty != 0) {
      // Steal one of the two buffer blocks for the whole run.
      plan.specs.push_back(
          FaultSpec{FaultKind::kBufferPressure, 2, 1ULL << 40, 1.0, 1});
    }
    FaultInjector injector(plan);
    device->SetFaultHook(&injector);
    uint64_t now = 1000;
    for (uint32_t i = 0; i < kIters; ++i) {
      const uint64_t addr = (i % 2) * cfg.internal_block_size;
      now = device->Write(addr, 64, now) + 500;
    }
    device->Drain();
    media[faulty] = device->Stats().media_bytes_written;
  }
  EXPECT_EQ(media[0], 2ULL * cfg.internal_block_size);
  EXPECT_GE(media[1], (kIters - 1) * cfg.internal_block_size);
}

TEST(FaultInjection, DirectoryTimeoutSlowsFarMemory) {
  DeviceConfig cfg;
  cfg.kind = DeviceKind::kFarMemory;
  cfg.name = "far";
  auto device = MakeDevice(cfg);
  const uint64_t base = device->DirectoryAccess(10000) - 10000;

  FaultPlan plan;
  plan.seed = 7;
  plan.specs.push_back(
      FaultSpec{FaultKind::kDirectoryTimeout, 2, 1ULL << 40, 4000.0, 1});
  FaultInjector injector(plan);
  device->SetFaultHook(&injector);
  const uint64_t faulted = device->DirectoryAccess(10000) - 10000;
  EXPECT_EQ(faulted, base + 4000);
}

TEST(FaultInjection, InvariantsHoldUnderInjection) {
  Machine machine(MachineA(1));
  FaultInjector injector(MixedPlan(2026));
  injector.Attach(machine);
  RunWorkload(machine, 6000);
  const std::vector<std::string> violations =
      CheckMachineInvariants(machine, /*drained=*/true);
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
}

TEST(Invariants, CleanRunPassesChecks) {
  Machine machine(MachineA(1));
  RunWorkload(machine, 2000);
  EXPECT_TRUE(CheckMachineInvariants(machine, /*drained=*/true).empty());
}

}  // namespace
}  // namespace prestore
