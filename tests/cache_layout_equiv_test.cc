// SetBlock layout equivalence: the contiguous-per-set cache (src/sim/cache.h)
// against the preserved pre-refactor parallel-array implementation
// (src/sim/reference_cache.h), driven through randomized
// Insert/Remove/AgeLine/Touch/Probe interleavings. The layout is a pure
// host-side transform, so EVERYTHING observable must match op for op:
// hit/miss outcomes, victim choices (i.e. RNG draw order), per-set way
// hints, and ValidLines(). Runs each policy against both a whole cache and
// a 4-way shard view, and once with a non-power-of-two set count so the
// magic-multiply GlobalSetOf fallback is exercised against the hardware
// divide it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/reference_cache.h"

namespace prestore {
namespace {

CacheConfig SmallCache(ReplacementPolicy policy, uint32_t ways,
                       uint64_t sets) {
  CacheConfig cfg;
  cfg.ways = ways;
  cfg.line_size = 64;
  cfg.size_bytes = sets * ways * 64;
  cfg.policy = policy;
  return cfg;
}

// Drives the reference cache, a whole SetBlock cache, and a strided shard
// view of it through the same randomized op stream, asserting identical
// observable behaviour throughout.
void RunEquivalence(const CacheConfig& cfg, uint64_t seed, uint64_t stride,
                    int ops) {
  ReferenceSetAssocCache ref(cfg, seed);
  SetAssocCache whole(cfg, seed);
  std::vector<SetAssocCache> shards;
  shards.reserve(stride);
  for (uint64_t s = 0; s < stride; ++s) {
    shards.emplace_back(cfg, seed, s, stride);
  }
  ASSERT_EQ(ref.global_sets(), whole.global_sets());

  const uint64_t sets = cfg.NumSets();
  const auto check_state = [&](int at_op) {
    // Way hints are host-side state, but the layouts must keep them in
    // lockstep too: a diverging hint means the lookup paths diverged.
    for (uint64_t g = 0; g < sets; ++g) {
      ASSERT_EQ(ref.DebugWayHint(g), whole.DebugWayHint(g))
          << "whole-cache hint diverged for set " << g << " at op " << at_op;
      ASSERT_EQ(ref.DebugWayHint(g),
                shards[g % stride].DebugWayHint(g / stride))
          << "shard hint diverged for global set " << g << " at op " << at_op;
      // Replacement ages moved from CacheLineMeta into the packed SetBlock
      // header; compare them through the debug accessors.
      for (uint32_t w = 0; w < cfg.ways; ++w) {
        ASSERT_EQ(ref.DebugAge(g, w), whole.DebugAge(g, w))
            << "age diverged for set " << g << " way " << w << " at op "
            << at_op;
        ASSERT_EQ(ref.DebugAge(g, w),
                  shards[g % stride].DebugAge(g / stride, w))
            << "shard age diverged for global set " << g << " way " << w
            << " at op " << at_op;
      }
    }
    ASSERT_EQ(ref.ValidLines(), whole.ValidLines())
        << "resident lines diverged at op " << at_op;
  };

  // Address stream: ~3x the cache's line capacity so warm sets keep
  // evicting, with enough reuse that Touch hits are common.
  const uint64_t span_lines = 3 * sets * cfg.ways + 7;
  uint64_t x = seed | 1;
  for (int i = 0; i < ops; ++i) {
    x ^= x << 7;
    x ^= x >> 9;  // xorshift: deterministic address stream
    const uint64_t addr = (x % span_lines) * cfg.line_size;
    SetAssocCache& shard = shards[whole.GlobalSetOf(addr) % stride];
    switch (i % 16) {
      case 13: {  // Remove
        CacheLineMeta was_ref, was_whole, was_shard;
        const bool rr = ref.Remove(addr, &was_ref);
        const bool rw = whole.Remove(addr, &was_whole);
        const bool rs = shard.Remove(addr, &was_shard);
        ASSERT_EQ(rr, rw) << "remove presence diverged at op " << i;
        ASSERT_EQ(rr, rs) << "shard remove presence diverged at op " << i;
        if (rr) {
          EXPECT_EQ(was_ref.dirty, was_whole.dirty);
          EXPECT_EQ(was_ref.stamp, was_whole.stamp);
        }
        break;
      }
      case 14:  // AgeLine (hits update the hint via the internal Probe)
        ref.AgeLine(addr);
        whole.AgeLine(addr);
        shard.AgeLine(addr);
        break;
      case 15: {  // Peek must agree on residency (and, per check_state,
                  // never perturb the hints)
        const CacheLineMeta* pr = ref.Peek(addr);
        const CacheLineMeta* pw = whole.Peek(addr);
        ASSERT_EQ(pr == nullptr, pw == nullptr)
            << "peek diverged at op " << i;
        if (pr != nullptr) {
          EXPECT_EQ(pr->stamp, pw->stamp);
        }
        break;
      }
      default: {  // Touch, falling back to Insert on a miss
        CacheLineMeta* hit_ref = ref.Touch(addr);
        CacheLineMeta* hit_whole = whole.Touch(addr);
        CacheLineMeta* hit_shard = shard.Touch(addr);
        ASSERT_EQ(hit_ref == nullptr, hit_whole == nullptr)
            << "hit/miss diverged at op " << i;
        ASSERT_EQ(hit_ref == nullptr, hit_shard == nullptr)
            << "shard hit/miss diverged at op " << i;
        if (hit_ref != nullptr) {
          EXPECT_EQ(hit_ref->stamp, hit_whole->stamp);
          hit_ref->dirty = hit_whole->dirty = hit_shard->dirty = true;
          break;
        }
        const bool dirty = (i & 1) != 0;
        const auto vr = ref.Insert(addr, dirty, nullptr);
        const auto vw = whole.Insert(addr, dirty, nullptr);
        const auto vs = shard.Insert(addr, dirty, nullptr);
        ASSERT_EQ(vr.valid, vw.valid) << "victim presence diverged at op "
                                      << i;
        ASSERT_EQ(vr.valid, vs.valid)
            << "shard victim presence diverged at op " << i;
        if (vr.valid) {
          ASSERT_EQ(vr.line_addr, vw.line_addr)
              << "victim choice diverged at op " << i;
          ASSERT_EQ(vr.line_addr, vs.line_addr)
              << "shard victim choice diverged at op " << i;
          EXPECT_EQ(vr.dirty, vw.dirty);
        }
        break;
      }
    }
    if ((i & 255) == 255) {
      check_state(i);
    }
  }
  check_state(ops);

  // Shard-view union == whole cache (sorted: set order differs).
  std::vector<uint64_t> whole_lines = whole.ValidLines();
  std::vector<uint64_t> shard_lines;
  for (const SetAssocCache& s : shards) {
    const auto part = s.ValidLines();
    shard_lines.insert(shard_lines.end(), part.begin(), part.end());
  }
  std::sort(whole_lines.begin(), whole_lines.end());
  std::sort(shard_lines.begin(), shard_lines.end());
  EXPECT_EQ(whole_lines, shard_lines);
}

class LayoutEquivalence
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(LayoutEquivalence, MatchesReferenceWholeAndSharded) {
  RunEquivalence(SmallCache(GetParam(), 8, 32), /*seed=*/0x5e7b10cULL,
                 /*stride=*/4, /*ops=*/6000);
}

TEST_P(LayoutEquivalence, MatchesReferenceOnNonPow2Sets) {
  // 48 sets: GlobalSetOf takes the reciprocal-remainder fallback; the
  // reference uses the hardware divide it replaced.
  RunEquivalence(SmallCache(GetParam(), 4, 48), /*seed=*/0xa11ce,
                 /*stride=*/2, /*ops=*/6000);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LayoutEquivalence,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kTreePlru,
                                           ReplacementPolicy::kRandom,
                                           ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kQuadAge));

// The deliberate Probe asymmetry (cache.h): non-const Probe caches the hit
// way in the set's hint; Peek (and the const Probe overload, which is Peek)
// never writes anything.
TEST(CacheLayout, PeekNeverUpdatesWayHint) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru, 4, 4), 1);
  const uint64_t set_stride = 4 * 64;  // next line in the same set
  c.Insert(0 * set_stride, false, nullptr);      // way 0
  c.Insert(1 * set_stride, false, nullptr);      // way 1
  ASSERT_NE(c.Touch(0), nullptr);                // hint -> way 0
  ASSERT_EQ(c.DebugWayHint(0), 0);

  ASSERT_NE(c.Peek(set_stride), nullptr);        // read-only: hint untouched
  EXPECT_EQ(c.DebugWayHint(0), 0);
  const SetAssocCache& cc = c;
  ASSERT_NE(cc.Probe(set_stride), nullptr);      // const Probe == Peek
  EXPECT_EQ(c.DebugWayHint(0), 0);

  ASSERT_NE(c.Probe(set_stride), nullptr);       // mutable Probe caches
  EXPECT_EQ(c.DebugWayHint(0), 1);
}

}  // namespace
}  // namespace prestore
