// Sharded KV serving subsystem (DESIGN.md §9): routing, request/response
// transport, batching, backpressure, and the batched clean sweep's effect
// on write amplification.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "src/serve/cluster.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"
#include "src/sim/harness.h"

namespace prestore {
namespace {

// A small, fast closed-loop configuration (kA on CLHT).
ServeConfig SmallConfig() {
  ServeConfig cfg;
  cfg.ycsb.workload = YcsbWorkload::kA;
  cfg.ycsb.num_keys = 256;
  cfg.ycsb.value_size = 256;
  cfg.ycsb.threads = 2;  // clients
  cfg.ycsb.ops_per_thread = 200;
  cfg.ycsb.arena_slots = 64;
  cfg.num_shards = 2;
  cfg.batch_max = 4;
  cfg.batch_window_cycles = 600;
  return cfg;
}

TEST(ServeConfig, ValidateRejectsBadShapes) {
  EXPECT_EQ(SmallConfig().Validate(), "");

  ServeConfig cfg = SmallConfig();
  cfg.num_shards = 0;
  EXPECT_NE(cfg.Validate().find("num_shards"), std::string::npos);

  cfg = SmallConfig();
  cfg.queue_slots = 24;  // not a power of two
  EXPECT_NE(cfg.Validate().find("queue_slots"), std::string::npos);

  cfg = SmallConfig();
  cfg.response_slots = 0;
  EXPECT_NE(cfg.Validate().find("response_slots"), std::string::npos);

  cfg = SmallConfig();
  cfg.batch_max = 0;
  EXPECT_NE(cfg.Validate().find("batch_max"), std::string::npos);

  cfg = SmallConfig();
  cfg.open_loop = true;
  cfg.max_inflight = cfg.response_slots + 1;  // worker could wedge
  EXPECT_NE(cfg.Validate().find("max_inflight"), std::string::npos);

  // Embedded YCSB problems surface through the same path.
  cfg = SmallConfig();
  cfg.ycsb.zipf_theta = 1.0;
  EXPECT_NE(cfg.Validate().find("zipf_theta"), std::string::npos);
}

TEST(ServeConfig, ValidateRejectsBadClusterShapes) {
  // A valid cluster baseline; every case below breaks exactly one knob.
  auto cluster = [] {
    ServeConfig cfg = SmallConfig();
    cfg.open_loop = true;
    cfg.cluster_nodes = 3;
    cfg.replication_factor = 2;
    return cfg;
  };
  EXPECT_EQ(cluster().Validate(), "");

  ServeConfig cfg = cluster();
  cfg.open_loop = false;  // cluster serving is open-loop only
  EXPECT_NE(cfg.Validate().find("open-loop"), std::string::npos);

  cfg = cluster();
  cfg.ycsb.workload = YcsbWorkload::kD;  // shared latest-key counter
  EXPECT_NE(cfg.Validate().find("workload D"), std::string::npos);

  cfg = cluster();
  cfg.replication_factor = 0;
  EXPECT_NE(cfg.Validate().find("replication_factor"), std::string::npos);

  cfg = cluster();
  cfg.replication_factor = cfg.cluster_nodes + 1;  // more copies than nodes
  EXPECT_NE(cfg.Validate().find("replication_factor"), std::string::npos);

  cfg = cluster();
  cfg.cluster_nodes = 16;
  cfg.replication_factor = 9;  // beyond the router placement buffer
  EXPECT_NE(cfg.Validate().find("replication_factor"), std::string::npos);

  cfg = cluster();
  cfg.virtual_nodes = 48;  // not a power of two
  EXPECT_NE(cfg.Validate().find("virtual_nodes"), std::string::npos);

  cfg = cluster();
  cfg.repl_queue_slots = 0;
  EXPECT_NE(cfg.Validate().find("repl_queue_slots"), std::string::npos);

  cfg = cluster();
  cfg.failover_backoff_cap_cycles = cfg.failover_backoff_base_cycles - 1;
  EXPECT_NE(cfg.Validate().find("failover_backoff_cap"), std::string::npos);

  cfg = cluster();
  cfg.unhealthy_after = 0;
  EXPECT_NE(cfg.Validate().find("unhealthy_after"), std::string::npos);

  cfg = cluster();
  cfg.max_attempts = 0;
  EXPECT_NE(cfg.Validate().find("max_attempts"), std::string::npos);

  cfg = cluster();
  cfg.num_shards = 32;
  cfg.cluster_nodes = 8;  // 32 * 8 + drivers > 255 core ids
  cfg.replication_factor = 2;
  EXPECT_NE(cfg.Validate().find("core budget"), std::string::npos);

  // Single-machine configs ignore the cluster knobs entirely.
  cfg = SmallConfig();
  cfg.cluster_nodes = 1;
  cfg.replication_factor = 0;
  EXPECT_EQ(cfg.Validate(), "");
}

TEST(ServeConfig, ClusterConstructorThrowsOnInvalidConfig) {
  ServeConfig cfg = SmallConfig();
  cfg.open_loop = true;
  cfg.cluster_nodes = 3;
  cfg.replication_factor = 4;  // > nodes
  EXPECT_THROW(
      KvCluster(cfg, {MachineA(1), MachineBFast(1), MachineBSlow(1)}),
      std::invalid_argument);

  cfg.replication_factor = 2;
  // Node machine list must match cluster_nodes.
  EXPECT_THROW(KvCluster(cfg, {MachineA(1), MachineBFast(1)}),
               std::invalid_argument);
}

TEST(ServeConfig, ServerConstructorThrowsOnInvalidConfig) {
  Machine machine(MachineA(4));
  ServeConfig cfg = SmallConfig();
  cfg.queue_slots = 3;
  EXPECT_THROW(KvServer(machine, cfg), std::invalid_argument);
}

TEST(Serve, RouterCoversAllShards) {
  Machine machine(MachineA(6));
  ServeConfig cfg = SmallConfig();
  cfg.num_shards = 4;
  KvServer server(machine, cfg);
  std::set<uint32_t> seen;
  for (uint64_t key = 1; key <= 1000; ++key) {
    const uint32_t shard = server.ShardFor(key);
    ASSERT_LT(shard, cfg.num_shards);
    // Stable: the router is a pure function of the key.
    ASSERT_EQ(shard, server.ShardFor(key));
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), cfg.num_shards);
}

TEST(Serve, SeqStatusAndValueEcho) {
  Machine machine(MachineA(2));
  ServeConfig cfg = SmallConfig();
  cfg.num_shards = 1;
  cfg.ycsb.threads = 1;
  cfg.ycsb.num_keys = 64;
  cfg.ycsb.value_size = 64;
  KvServer server(machine, cfg);
  server.Preload();
  server.BeginRun();
  RunParallel(machine, 2, [&](Core& core, uint32_t tid) {
    if (tid == 0) {
      server.ShardWorkerLoop(core, 0);
      return;
    }
    auto roundtrip = [&](ServeOp op, uint64_t key, uint64_t seq) {
      RequestMsg req;
      req.op = static_cast<uint64_t>(op);
      req.key = key;
      req.client = 0;
      req.seq = seq;
      req.submit_time = core.now();
      while (!server.TrySubmit(core, req)) {
        core.SpinPause(50);
      }
      ResponseMsg resp;
      while (!server.TryGetResponse(core, 0, &resp)) {
        core.SpinPause(50);
      }
      EXPECT_EQ(resp.seq, seq);
      EXPECT_EQ(resp.op, static_cast<uint64_t>(op));
      return resp;
    };
    // Preloaded key: GET hits and the payload checks out.
    ResponseMsg got = roundtrip(ServeOp::kGet, 5, 1);
    EXPECT_EQ(got.status, 1u);
    EXPECT_TRUE(CheckValue(core, got.value_addr, 64, 5));
    // PUT recrafts into the shard arena; the following GET sees it.
    const ResponseMsg put = roundtrip(ServeOp::kPut, 5, 2);
    EXPECT_EQ(put.status, 1u);
    got = roundtrip(ServeOp::kGet, 5, 3);
    EXPECT_EQ(got.status, 1u);
    EXPECT_EQ(got.value_addr, put.value_addr);
    EXPECT_TRUE(CheckValue(core, got.value_addr, 64, 5));
    // Absent key: a miss, not a crash.
    got = roundtrip(ServeOp::kGet, 64 + 99, 4);
    EXPECT_EQ(got.status, 0u);
    server.ClientDone();
  });
}

TEST(Serve, ClosedLoopAnswersEveryRequest) {
  Machine machine(MachineA(4));
  KvServer server(machine, SmallConfig());
  const ServeResult result = ServeYcsb(machine, server);
  // kA issues exactly one request per op (no RMW).
  EXPECT_EQ(result.ops, 2u * 200u);
  EXPECT_EQ(result.failed_gets, 0u);
  EXPECT_GT(result.batches, 0u);
  EXPECT_EQ(result.get_latency.count + result.put_latency.count, result.ops);
  EXPECT_GE(result.get_latency.p99, result.get_latency.p50);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_TRUE(result.shard_policies.empty());  // ungoverned
  // The serving window's cache traffic surfaces in the aggregated
  // hierarchy counters (filled from the per-core stat stripes).
  EXPECT_GT(result.hierarchy.llc_hits + result.hierarchy.llc_misses, 0u);
}

TEST(Serve, ReadModifyWriteDoublesWriteRequests) {
  Machine machine(MachineA(4));
  ServeConfig cfg = SmallConfig();
  cfg.ycsb.workload = YcsbWorkload::kF;
  KvServer server(machine, cfg);
  const ServeResult result = ServeYcsb(machine, server);
  // Every kF write is a GET followed by a PUT, so every one of the 400 ops
  // contributes exactly one GET, and the writes add their PUTs on top.
  EXPECT_EQ(result.gets, 400u);
  EXPECT_GT(result.puts, 0u);
  EXPECT_EQ(result.ops, 400u + result.puts);
  EXPECT_EQ(result.failed_gets, 0u);
}

TEST(Serve, MasstreeIndexServes) {
  Machine machine(MachineA(4));
  ServeConfig cfg = SmallConfig();
  cfg.index = ServeIndex::kMasstree;
  cfg.ycsb.ops_per_thread = 120;
  KvServer server(machine, cfg);
  const ServeResult result = ServeYcsb(machine, server);
  EXPECT_EQ(result.ops, 2u * 120u);
  EXPECT_EQ(result.failed_gets, 0u);
}

TEST(Serve, OpenLoopCompletes) {
  Machine machine(MachineA(4));
  ServeConfig cfg = SmallConfig();
  cfg.open_loop = true;
  cfg.open_loop_interval = 1500;
  cfg.max_inflight = 4;
  cfg.ycsb.ops_per_thread = 150;
  KvServer server(machine, cfg);
  const ServeResult result = ServeYcsb(machine, server);
  EXPECT_EQ(result.ops, 2u * 150u);
  EXPECT_EQ(result.failed_gets, 0u);
  EXPECT_EQ(result.get_latency.count + result.put_latency.count, result.ops);
}

TEST(Serve, BackpressureRejectsAndRecovers) {
  // An arrival rate far above the service rate against a 2-slot admission
  // queue: submits must bounce (retry-after), and every request must still
  // be answered once the clients pace themselves through the retries.
  Machine machine(MachineA(3));
  ServeConfig cfg = SmallConfig();
  cfg.num_shards = 1;
  cfg.queue_slots = 2;
  cfg.open_loop = true;
  cfg.open_loop_interval = 40;  // far below the per-request service time
  cfg.max_inflight = 8;
  cfg.response_slots = 8;
  cfg.ycsb.ops_per_thread = 120;
  KvServer server(machine, cfg);
  const ServeResult result = ServeYcsb(machine, server);
  EXPECT_GT(result.retries, 0u);
  EXPECT_EQ(result.ops, 2u * 120u);
  EXPECT_EQ(result.failed_gets, 0u);
}

TEST(Serve, BatchedCleanCutsWriteAmplification) {
  // §4.1 applied to the server loop: on the Optane-like target (256B
  // internal blocks vs 64B lines) values that trickle out of the LLC
  // line-by-line cost up to 4x media bytes; the batch-close clean sweep
  // writes each crafted value back contiguously while it is still hot.
  auto run = [](bool batched_clean) {
    MachineConfig mc = MachineA(8);
    mc.target.media_cycles_per_byte = 0.9;  // media-bound, as in kv benches
    Machine machine(mc);
    ServeConfig cfg;
    cfg.ycsb.workload = YcsbWorkload::kA;
    cfg.ycsb.num_keys = 8192;  // 8 MiB of values: 4x the 2 MiB LLC
    cfg.ycsb.value_size = 1024;
    cfg.ycsb.threads = 4;
    cfg.ycsb.ops_per_thread = 400;
    cfg.ycsb.arena_slots = 512;
    cfg.num_shards = 4;  // concurrent crafting interleaves evictions
    cfg.batched_clean = batched_clean;
    // Saturating open loop: all four shard workers craft concurrently, so
    // baseline evictions from different values interleave at the device.
    cfg.open_loop = true;
    cfg.open_loop_interval = 100;
    cfg.max_inflight = 16;
    cfg.response_slots = 16;
    cfg.batch_max = 8;
    KvServer server(machine, cfg);
    return ServeYcsb(machine, server);
  };
  const ServeResult base = run(false);
  const ServeResult clean = run(true);
  EXPECT_EQ(base.failed_gets, 0u);
  EXPECT_EQ(clean.failed_gets, 0u);
  EXPECT_GT(base.write_amplification, clean.write_amplification + 0.05);
}

}  // namespace
}  // namespace prestore
