// The miss-leg fast path's whole-machine digest contract: the production
// engine (closed-form device charging, batched writeback/refill trains,
// analytical LLC-miss fast-forward) must produce BIT-IDENTICAL simulated
// end state to the reference configuration (naive event-at-a-time device
// meters, fast-forward disabled) — across every replacement policy the
// LLC can be configured with and under both deterministic schedulers. A
// single diverging cycle count, eviction choice, or media byte lands here
// as a digest mismatch before it can reach a recorded benchmark.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/sim/config.h"
#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

// Miss-heavy, store-heavy, clean-carrying trace: the private arena's cold
// tail busts the 2MB LLC so the run spends most of its time on the
// miss/eviction/writeback legs the fast path rebuilt, while the hot head
// keeps enough hits flowing to exercise the fast-forward hit legs too.
ReplayTraceConfig MissyTrace(uint32_t workers) {
  ReplayTraceConfig cfg;
  cfg.workers = workers;
  cfg.ops_per_worker = 12000;
  cfg.keys_per_worker = 16384;  // 4 MiB of private values per worker
  cfg.shared_keys = 256;
  cfg.shared_fraction = 0.1;
  cfg.value_size = 256;
  cfg.read_ratio = 0.4;  // store-heavy: dirty evictions and trains
  cfg.zipf_theta = 0.0;  // integer-only key stream
  cfg.clean_period = 8;
  cfg.miss_mix = 0.8;
  cfg.seed = 42;
  return cfg;
}

enum class Mode { kSequential, kSliced };

uint64_t RunDigest(ReplacementPolicy policy, bool reference, Mode mode,
                   uint32_t workers) {
  MachineConfig mc = MachineA(workers);
  mc.llc.policy = policy;
  if (reference) {
    mc.dram.reference_impl = true;
    mc.target.reference_impl = true;
  }
  Machine machine(mc);
  if (reference) {
    machine.SetAnalyticalFastForward(false);
  }
  const ReplayTrace trace = GenerateReplayTrace(machine, MissyTrace(workers));
  if (mode == Mode::kSliced) {
    ReplaySlicedOptions options;
    options.host_threads = 1;
    options.quantum = 20000;
    ReplaySliced(machine, trace, options);
  } else {
    ReplaySequential(machine, trace);
  }
  return DigestMachine(machine, workers);
}

constexpr ReplacementPolicy kAllPolicies[] = {
    ReplacementPolicy::kLru, ReplacementPolicy::kTreePlru,
    ReplacementPolicy::kRandom, ReplacementPolicy::kFifo,
    ReplacementPolicy::kQuadAge,
};

const char* PolicyName(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kTreePlru:
      return "tree-plru";
    case ReplacementPolicy::kRandom:
      return "random";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kQuadAge:
      return "quad-age";
  }
  return "?";
}

TEST(DeviceEquiv, FastMatchesReferenceAllPoliciesSequential) {
  for (ReplacementPolicy policy : kAllPolicies) {
    const uint64_t fast =
        RunDigest(policy, /*reference=*/false, Mode::kSequential, 2);
    const uint64_t ref =
        RunDigest(policy, /*reference=*/true, Mode::kSequential, 2);
    EXPECT_EQ(fast, ref) << "policy " << PolicyName(policy)
                         << ": fast-path digest diverged from reference";
  }
}

TEST(DeviceEquiv, FastMatchesReferenceAllPoliciesSliced) {
  for (ReplacementPolicy policy : kAllPolicies) {
    const uint64_t fast =
        RunDigest(policy, /*reference=*/false, Mode::kSliced, 4);
    const uint64_t ref =
        RunDigest(policy, /*reference=*/true, Mode::kSliced, 4);
    EXPECT_EQ(fast, ref) << "policy " << PolicyName(policy)
                         << ": fast-path digest diverged from reference";
  }
}

TEST(DeviceEquiv, FastForwardAloneMatchesSlowPath) {
  // Narrower bisection aid: production devices on BOTH sides, only the
  // analytical fast-forward toggled. A failure here with the full-contract
  // tests passing points at the device layer instead of the core FF legs.
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kQuadAge, ReplacementPolicy::kTreePlru}) {
    MachineConfig mc = MachineA(2);
    mc.llc.policy = policy;
    Machine ff_machine(mc);
    const ReplayTrace trace =
        GenerateReplayTrace(ff_machine, MissyTrace(2));
    ReplaySequential(ff_machine, trace);
    const uint64_t ff_digest = DigestMachine(ff_machine, 2);

    Machine slow_machine(mc);
    slow_machine.SetAnalyticalFastForward(false);
    const ReplayTrace slow_trace =
        GenerateReplayTrace(slow_machine, MissyTrace(2));
    ReplaySequential(slow_machine, slow_trace);
    EXPECT_EQ(ff_digest, DigestMachine(slow_machine, 2))
        << "policy " << PolicyName(policy);
  }
}

}  // namespace
}  // namespace prestore
