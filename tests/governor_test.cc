// The adaptive pre-store governor: per-region backoff under the Listing-3
// rewrite storm, recovery when the storm stops, and the global
// useless-overhead gate on no-headroom devices.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/robust/governor.h"
#include "src/robust/governor_policy.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"

namespace prestore {
namespace {

GovernorConfig FastConfig() {
  GovernorConfig cfg;
  cfg.window_hints = 8;
  cfg.probe_period = 16;
  cfg.probe_window = 4;
  cfg.global_eval_window = 64;
  // One hot window suffices in these tests; the burst-debounce default is
  // exercised by RegionBackoffPolicy.ConfirmWindowsDebounceLoneBurst.
  cfg.backoff_confirm_windows = 1;
  return cfg;
}

// ---- Pure policy ----

TEST(RegionBackoffPolicy, EntersBackoffOnRewriteStorm) {
  GovernorConfig cfg = FastConfig();
  RegionBackoff region;
  // Every admitted hint is followed by a rewrite of the cleaned line. The
  // completed window is evaluated at the start of the NEXT hint (feedback
  // for the last hint must have a chance to arrive), so the storm is shut
  // down on hint window_hints + 1.
  for (uint32_t i = 0; i < cfg.window_hints; ++i) {
    EXPECT_TRUE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
    region.OnRewrite();
  }
  EXPECT_EQ(region.state(), RegionBackoff::State::kOpen);
  EXPECT_FALSE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
  EXPECT_EQ(region.state(), RegionBackoff::State::kBackoff);
  EXPECT_EQ(region.backoffs(), 1u);
  // Subsequent hints are suppressed (modulo probes).
  uint32_t admitted = 0;
  for (uint32_t i = 0; i < cfg.probe_period - 1; ++i) {
    admitted += region.OnHint(cfg, cfg.backoff_rewrite_rate) ? 1 : 0;
  }
  EXPECT_EQ(admitted, 0u);
}

TEST(RegionBackoffPolicy, ProbesAndReopensWhenStormStops) {
  GovernorConfig cfg = FastConfig();
  RegionBackoff region;
  uint32_t storm = 0;
  while (region.state() == RegionBackoff::State::kOpen && storm < 1000) {
    if (region.OnHint(cfg, cfg.backoff_rewrite_rate)) {
      region.OnRewrite();
    }
    ++storm;
  }
  ASSERT_EQ(region.state(), RegionBackoff::State::kBackoff);
  // The workload stops rewriting: probes observe a clean regime and the
  // region reopens. Two probe windows may be needed because rewrites of the
  // final pre-backoff hints can land on the first probes.
  uint32_t hints = 0;
  while (region.state() == RegionBackoff::State::kBackoff && hints < 10000) {
    region.OnHint(cfg, cfg.backoff_rewrite_rate);
    ++hints;
  }
  EXPECT_EQ(region.state(), RegionBackoff::State::kOpen);
  EXPECT_GE(region.reopens(), 1u);
  EXPECT_GT(region.suppressed(), 0u);
}

TEST(RegionBackoffPolicy, StaysOpenOnCleanRegime) {
  GovernorConfig cfg = FastConfig();
  RegionBackoff region;
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
  }
  EXPECT_EQ(region.state(), RegionBackoff::State::kOpen);
  EXPECT_EQ(region.suppressed(), 0u);
}

TEST(RegionBackoffPolicy, ConfirmWindowsDebounceLoneBurst) {
  GovernorConfig cfg = FastConfig();
  cfg.backoff_confirm_windows = 2;
  RegionBackoff region;
  // One window saturated with rewrites (a multi-line element's burst), then
  // a quiet regime: a single hot window must not trip the backoff.
  for (uint32_t i = 0; i < cfg.window_hints; ++i) {
    EXPECT_TRUE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
    region.OnRewrite();
  }
  for (uint32_t i = 0; i < 10 * cfg.window_hints; ++i) {
    EXPECT_TRUE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
  }
  EXPECT_EQ(region.state(), RegionBackoff::State::kOpen);
  EXPECT_EQ(region.backoffs(), 0u);

  // Sustained misuse: two consecutive hot windows do trip it.
  RegionBackoff storm;
  uint32_t hints = 0;
  while (storm.state() == RegionBackoff::State::kOpen && hints < 1000) {
    if (storm.OnHint(cfg, cfg.backoff_rewrite_rate)) {
      storm.OnRewrite();
    }
    ++hints;
  }
  EXPECT_EQ(storm.state(), RegionBackoff::State::kBackoff);
  // The second evaluation (the confirming window) is what trips it.
  EXPECT_LE(hints, 2 * cfg.window_hints + 2);
}

TEST(RegionBackoffPolicy, UselessRateAloneTriggersBackoff) {
  GovernorConfig cfg = FastConfig();
  RegionBackoff region;
  for (uint32_t i = 0; i < cfg.window_hints; ++i) {
    region.OnHint(cfg, cfg.backoff_rewrite_rate);
    region.OnUseless();
  }
  EXPECT_FALSE(region.OnHint(cfg, cfg.backoff_rewrite_rate));
  EXPECT_EQ(region.state(), RegionBackoff::State::kBackoff);
}

// ---- Governor on the simulated machine ----

// Listing-3 storm: rewrite + clean one line, `iters` times. Returns cycles.
uint64_t RunStorm(Machine& machine, uint32_t iters) {
  const SimAddr line = machine.Alloc(64);
  std::vector<uint8_t> payload(64, 1);
  return RunOnCore(machine, [&](Core& core) {
    for (uint32_t i = 0; i < iters; ++i) {
      core.MemCopyToSim(line, payload.data(), payload.size());
      core.Prestore(line, 64, PrestoreOp::kClean);
    }
  });
}

TEST(PrestoreGovernor, BacksOffListing3Storm) {
  Machine machine(MachineA(1));
  PrestoreGovernor governor(machine, FastConfig());
  governor.Attach();
  RunStorm(machine, 2000);

  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  EXPECT_EQ(snap.attempts, 2000u);
  EXPECT_GT(snap.suppressed_by_region, snap.attempts / 2);
  EXPECT_EQ(snap.suppressed_by_gate, 0u);  // PMEM has headroom: gate inert
  ASSERT_EQ(snap.regions.size(), 1u);
  EXPECT_EQ(snap.regions[0].state, RegionBackoff::State::kBackoff);
  EXPECT_GE(snap.regions[0].backoffs, 1u);
  EXPECT_EQ(machine.core(0).stats().prestores_suppressed,
            snap.suppressed_by_region);
}

TEST(PrestoreGovernor, GovernedStormOutperformsUngoverned) {
  const uint32_t kIters = 4000;
  Machine plain(MachineA(1));
  const uint64_t ungoverned = RunStorm(plain, kIters);

  Machine governed_machine(MachineA(1));
  PrestoreGovernor governor(governed_machine, FastConfig());
  governor.Attach();
  const uint64_t governed = RunStorm(governed_machine, kIters);

  // Suppressing the misused cleans must recover most of their cost.
  EXPECT_LT(governed, ungoverned);
}

TEST(PrestoreGovernor, RecoversWhenRewritesStop) {
  Machine machine(MachineA(1));
  GovernorConfig cfg = FastConfig();
  cfg.region_shift = 20;  // keep both phases in one 1 MiB region
  PrestoreGovernor governor(machine, cfg);
  governor.Attach();

  // Region-aligned so both phases land in exactly one governor region.
  const SimAddr buf = machine.Alloc(1 << 20, Region::kTarget, 1 << 20);
  std::vector<uint8_t> payload(64, 2);
  RunOnCore(machine, [&](Core& core) {
    // Phase 1: Listing-3 storm on one line of the region.
    for (uint32_t i = 0; i < 600; ++i) {
      core.MemCopyToSim(buf, payload.data(), payload.size());
      core.Prestore(buf, 64, PrestoreOp::kClean);
    }
    // Phase 2: well-behaved streaming cleans over the same region — every
    // line written once, cleaned once, never rewritten. (A single pass: the
    // 1 MiB buffer fits the LLC, so repeated passes would re-dirty resident
    // cleaned lines and correctly read as misuse.)
    for (uint32_t off = 64; off < (1u << 20); off += 64) {
      core.MemCopyToSim(buf + off, payload.data(), payload.size());
      core.Prestore(buf + off, 64, PrestoreOp::kClean);
    }
  });

  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  ASSERT_EQ(snap.regions.size(), 1u);
  EXPECT_GE(snap.regions[0].backoffs, 1u);   // the storm tripped it
  EXPECT_GE(snap.regions[0].reopens, 1u);    // probing recovered it
  EXPECT_EQ(snap.regions[0].state, RegionBackoff::State::kOpen);
}

TEST(PrestoreGovernor, GateSuppressesFencelessHintsOnFarMemory) {
  // Machine B: far memory, internal block == cache line, workload without
  // fences — the §7.4.1 regime where hints cannot help.
  Machine machine(MachineBFast(1));
  GovernorConfig cfg = FastConfig();
  PrestoreGovernor governor(machine, cfg);
  governor.Attach();

  const SimAddr buf = machine.Alloc(4096 * 128);
  std::vector<uint8_t> payload(128, 4);
  RunOnCore(machine, [&](Core& core) {
    for (uint32_t i = 0; i < 1000; ++i) {
      const SimAddr e = buf + (i % 4096) * 128;
      core.MemCopyToSim(e, payload.data(), payload.size());
      core.Prestore(e, 128, PrestoreOp::kClean);
    }
  });

  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  EXPECT_TRUE(snap.gate_closed);
  EXPECT_GT(snap.suppressed_by_gate, snap.attempts / 2);
}

TEST(PrestoreGovernor, GateStaysOpenWhenWorkloadFences) {
  Machine machine(MachineBFast(1));
  GovernorConfig cfg = FastConfig();
  PrestoreGovernor governor(machine, cfg);
  governor.Attach();

  const SimAddr buf = machine.Alloc(4096 * 128);
  std::vector<uint8_t> payload(128, 4);
  RunOnCore(machine, [&](Core& core) {
    for (uint32_t i = 0; i < 1000; ++i) {
      const SimAddr e = buf + (i % 4096) * 128;
      core.MemCopyToSim(e, payload.data(), payload.size());
      core.Prestore(e, 128, PrestoreOp::kClean);
      if (i % 8 == 0) {
        core.Fence();  // message-passing-style publication
      }
    }
  });

  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  EXPECT_FALSE(snap.gate_closed);
  EXPECT_EQ(snap.suppressed_by_gate, 0u);
}

TEST(PrestoreGovernor, SummaryMentionsActedRegions) {
  Machine machine(MachineA(1));
  PrestoreGovernor governor(machine, FastConfig());
  governor.Attach();
  RunStorm(machine, 1000);
  const std::string summary = governor.Summary();
  EXPECT_NE(summary.find("governor:"), std::string::npos);
  EXPECT_NE(summary.find("backoff"), std::string::npos);
}

// ---- Config validation + the bounded region table ----

TEST(GovernorConfig, ValidateCatchesIncoherentSettings) {
  GovernorConfig cfg;
  EXPECT_EQ(cfg.Validate(), "");

  cfg.region_shift = 4;
  EXPECT_NE(cfg.Validate(), "");
  cfg = GovernorConfig{};

  cfg.backoff_rewrite_rate = 0.2;
  cfg.reopen_rewrite_rate = 0.5;  // reopen must not exceed backoff
  EXPECT_NE(cfg.Validate(), "");
  cfg = GovernorConfig{};

  cfg.max_tracked_regions = 0;
  EXPECT_NE(cfg.Validate(), "");
}

TEST(PrestoreGovernor, ConstructorThrowsOnBadConfig) {
  Machine machine(MachineA(1));
  GovernorConfig cfg;
  cfg.probe_period = 0;
  EXPECT_THROW(PrestoreGovernor(machine, cfg), std::invalid_argument);
}

TEST(PrestoreGovernor, RegionTableIsLruBounded) {
  Machine machine(MachineA(1));
  GovernorConfig cfg = FastConfig();
  cfg.region_shift = 12;       // 4 KiB regions
  cfg.max_tracked_regions = 8; // tiny cap to force displacement
  PrestoreGovernor governor(machine, cfg);
  governor.Attach();

  const SimAddr base = machine.Alloc(512ULL << 12);
  Core& core = machine.core(0);
  // Touch 256 distinct regions once each: the table must stay at the cap
  // and count the displacements.
  for (uint64_t r = 0; r < 256; ++r) {
    core.StoreU64(base + (r << 12), r);
    core.Prestore(base + (r << 12), 64, PrestoreOp::kClean);
  }
  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  EXPECT_LE(snap.regions.size(), 8u);
  EXPECT_GE(snap.region_evictions, 256u - 8u);

  // LRU, not FIFO: keep re-touching one region while streaming new ones —
  // the hot region must survive the churn.
  const uint64_t hot = (base >> 12) << 12;
  for (uint64_t r = 256; r < 320; ++r) {
    core.Prestore(hot, 64, PrestoreOp::kClean);
    core.Prestore(base + (r << 12), 64, PrestoreOp::kClean);
  }
  bool hot_present = false;
  for (const PrestoreGovernor::RegionSnapshot& r :
       governor.TakeSnapshot().regions) {
    if (r.region_base == hot) {
      hot_present = true;
    }
  }
  EXPECT_TRUE(hot_present);
}

}  // namespace
}  // namespace prestore
