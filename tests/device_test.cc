#include <gtest/gtest.h>

#include "src/sim/device.h"

namespace prestore {
namespace {

DeviceConfig PmemConfig() {
  DeviceConfig c;
  c.kind = DeviceKind::kPmem;
  c.name = "pmem-test";
  c.read_latency = 170;
  c.write_latency = 90;
  c.cycles_per_byte = 0.1;
  c.internal_block_size = 256;
  c.internal_buffer_blocks = 4;
  c.media_cycles_per_byte = 0.5;
  return c;
}

TEST(Dram, ReadLatencyAndBandwidth) {
  DeviceConfig c;
  c.read_latency = 100;
  c.cycles_per_byte = 1.0;
  DramDevice d(c);
  // First read at t=0: completes at latency + 64 bytes * 1 cpb.
  EXPECT_EQ(d.Read(0, 64, 0), 164u);
  // Second read issued at t=0 queues behind the first transfer.
  EXPECT_EQ(d.Read(64, 64, 0), 64 + 100 + 64u);
}

TEST(Dram, WriteAmplificationIsOne) {
  DeviceConfig c;
  DramDevice d(c);
  for (int i = 0; i < 100; ++i) {
    d.Write(i * 64, 64, 0);
  }
  const DeviceStats s = d.Stats();
  EXPECT_EQ(s.bytes_received, 6400u);
  EXPECT_EQ(s.media_bytes_written, 6400u);
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 1.0);
}

TEST(Dram, StatsCounters) {
  DeviceConfig c;
  DramDevice d(c);
  d.Read(0, 64, 0);
  d.Read(0, 64, 0);
  d.Write(0, 64, 0);
  const DeviceStats s = d.Stats();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_read, 128u);
  d.ResetStats();
  EXPECT_EQ(d.Stats().reads, 0u);
}

TEST(Pmem, SequentialWritesCoalesce) {
  PmemDevice d(PmemConfig());
  // Write 4 blocks' worth of 64B lines sequentially: every 4 consecutive
  // lines share a 256B internal block, so amplification must be 1.0 once
  // drained.
  for (uint64_t i = 0; i < 64; ++i) {
    d.Write(i * 64, 64, 0);
  }
  d.Drain();
  const DeviceStats s = d.Stats();
  EXPECT_EQ(s.bytes_received, 64 * 64u);
  EXPECT_EQ(s.media_bytes_written, 64 * 64u);
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 1.0);
}

TEST(Pmem, ScatteredWritesAmplify) {
  PmemDevice d(PmemConfig());
  // Stride of one internal block: every 64B write lands in a different 256B
  // block, thrashing the 4-entry buffer -> 4x amplification.
  for (uint64_t i = 0; i < 256; ++i) {
    d.Write(i * 256, 64, 0);
  }
  d.Drain();
  const DeviceStats s = d.Stats();
  EXPECT_DOUBLE_EQ(s.WriteAmplification(), 4.0);
}

TEST(Pmem, RepeatedWritesToOneBlockCoalesce) {
  PmemDevice d(PmemConfig());
  for (int i = 0; i < 1000; ++i) {
    d.Write(0, 64, 0);
  }
  d.Drain();
  const DeviceStats s = d.Stats();
  // One block flushed at drain time regardless of how often it was written.
  EXPECT_EQ(s.media_bytes_written, 256u);
}

TEST(Pmem, BufferEvictionIsLru) {
  PmemDevice d(PmemConfig());
  // Fill the 4-entry buffer with blocks 0..3, touch block 0 again, then
  // write block 4: block 1 must be flushed (LRU), so a later write to
  // block 0 still coalesces (no extra media write for it).
  for (uint64_t b = 0; b < 4; ++b) {
    d.Write(b * 256, 64, 0);
  }
  d.Write(0, 64, 0);        // block 0 -> MRU
  d.Write(4 * 256, 64, 0);  // evicts block 1
  const uint64_t media_before = d.Stats().media_bytes_written;
  EXPECT_EQ(media_before, 256u);  // exactly one eviction so far
  d.Write(64, 64, 0);  // block 0 again: still buffered, no flush
  EXPECT_EQ(d.Stats().media_bytes_written, media_before);
}

TEST(Pmem, AmplificationBoundedByBlockOverLine) {
  PmemDevice d(PmemConfig());
  for (uint64_t i = 0; i < 10000; ++i) {
    // Pathological pseudo-random pattern.
    d.Write(((i * 2654435761u) % (1 << 20)) & ~63ULL, 64, 0);
  }
  d.Drain();
  EXPECT_LE(d.Stats().WriteAmplification(), 4.0 + 1e-9);
  EXPECT_GE(d.Stats().WriteAmplification(), 1.0);
}

TEST(FarMemory, DirectoryAccessCostsLatency) {
  DeviceConfig c;
  c.kind = DeviceKind::kFarMemory;
  c.directory_latency = 200;
  c.cycles_per_byte = 1.0;
  FarMemoryDevice d(c);
  EXPECT_GE(d.DirectoryAccess(1000), 1200u);
  EXPECT_EQ(d.Stats().directory_accesses, 1u);
}

TEST(FarMemory, BandwidthSerializesContenders) {
  DeviceConfig c;
  c.kind = DeviceKind::kFarMemory;
  c.read_latency = 60;
  c.cycles_per_byte = 1.0;
  FarMemoryDevice d(c);
  // Ten 128-byte reads all issued at t=0 must serialize on bandwidth:
  // the last completes no earlier than 10 * 128 cycles of transfer.
  uint64_t last = 0;
  for (int i = 0; i < 10; ++i) {
    last = std::max(last, d.Read(i * 128, 128, 0));
  }
  EXPECT_GE(last, 10 * 128u);
}

TEST(MakeDevice, DispatchesOnKind) {
  DeviceConfig c;
  c.kind = DeviceKind::kDram;
  EXPECT_NE(dynamic_cast<DramDevice*>(MakeDevice(c).get()), nullptr);
  c.kind = DeviceKind::kPmem;
  EXPECT_NE(dynamic_cast<PmemDevice*>(MakeDevice(c).get()), nullptr);
  c.kind = DeviceKind::kFarMemory;
  EXPECT_NE(dynamic_cast<FarMemoryDevice*>(MakeDevice(c).get()), nullptr);
}

}  // namespace
}  // namespace prestore
