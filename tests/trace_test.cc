// Trace substrate + annotation: the information DirtBuster consumes.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/machine.h"
#include "src/trace/trace.h"

namespace prestore {
namespace {

TEST(Registry, InternDeduplicates) {
  FunctionRegistry reg;
  const uint32_t a = reg.Intern("foo", "a.cc:1");
  const uint32_t b = reg.Intern("bar", "b.cc:2");
  const uint32_t a2 = reg.Intern("foo", "other-location-ignored");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(reg.Function(a).name, "foo");
  EXPECT_EQ(reg.Function(a).location, "a.cc:1");
  EXPECT_EQ(reg.NumFunctions(), 2u);
}

TEST(Registry, ChainInterning) {
  FunctionRegistry reg;
  const uint32_t f = reg.Intern("f", "");
  const uint32_t g = reg.Intern("g", "");
  const uint32_t c1 = reg.InternChain({f, g});
  const uint32_t c2 = reg.InternChain({f, g});
  const uint32_t c3 = reg.InternChain({g, f});
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_EQ(reg.Chain(c1), (std::vector<uint32_t>{f, g}));
}

class RecordingSink : public TraceSink {
 public:
  void Record(const TraceRecord& rec) override { records.push_back(rec); }
  std::vector<TraceRecord> records;
};

TEST(Tracing, RecordsCarryKindAddrSize) {
  Machine m(MachineA(1));
  RecordingSink sink;
  const SimAddr a = m.Alloc(4096);
  m.SetTraceSink(&sink);
  Core& core = m.core(0);
  core.StoreU64(a, 1);
  core.LoadU64(a);
  core.Fence();
  uint64_t expected = 1;
  core.CasU64(a, expected, 2);
  core.Prestore(a, 8, PrestoreOp::kClean);
  m.SetTraceSink(nullptr);

  ASSERT_GE(sink.records.size(), 5u);
  EXPECT_EQ(sink.records[0].kind, TraceKind::kStore);
  EXPECT_EQ(sink.records[0].addr, a);
  EXPECT_EQ(sink.records[0].size, 8u);
  EXPECT_EQ(sink.records[1].kind, TraceKind::kLoad);
  EXPECT_EQ(sink.records[2].kind, TraceKind::kFence);
  EXPECT_EQ(sink.records[3].kind, TraceKind::kAtomic);
  EXPECT_EQ(sink.records[4].kind, TraceKind::kPrestore);
}

TEST(Tracing, BulkCopyEmitsPerLineRecords) {
  Machine m(MachineA(1));
  RecordingSink sink;
  const SimAddr a = m.Alloc(4096);
  char buf[256] = {};
  m.SetTraceSink(&sink);
  m.core(0).MemCopyToSim(a, buf, 256);
  m.SetTraceSink(nullptr);
  EXPECT_EQ(sink.records.size(), 4u);  // 256B = 4 x 64B lines
  for (const TraceRecord& r : sink.records) {
    EXPECT_EQ(r.kind, TraceKind::kStore);
    EXPECT_EQ(r.size, 64u);
  }
}

TEST(Tracing, FunctionAnnotationOnRecords) {
  Machine m(MachineA(1));
  RecordingSink sink;
  const SimAddr a = m.Alloc(4096);
  const FuncToken outer{m.registry().Intern("outer", "")};
  const FuncToken inner{m.registry().Intern("inner", "")};
  m.SetTraceSink(&sink);
  Core& core = m.core(0);
  {
    ScopedFunction f1(core, outer);
    core.StoreU64(a, 1);
    {
      ScopedFunction f2(core, inner);
      core.StoreU64(a + 64, 2);
    }
    core.StoreU64(a + 128, 3);
  }
  core.StoreU64(a + 192, 4);
  m.SetTraceSink(nullptr);

  ASSERT_EQ(sink.records.size(), 4u);
  EXPECT_EQ(sink.records[0].func_id, outer.id);
  EXPECT_EQ(sink.records[1].func_id, inner.id);
  EXPECT_EQ(sink.records[2].func_id, outer.id);
  EXPECT_EQ(sink.records[3].func_id, kInvalidFunc);
  // The inner record's chain resolves to outer -> inner.
  EXPECT_EQ(m.registry().Chain(sink.records[1].chain_id),
            (std::vector<uint32_t>{outer.id, inner.id}));
}

TEST(Tracing, IcountMonotonePerCore) {
  Machine m(MachineA(1));
  RecordingSink sink;
  const SimAddr a = m.Alloc(1 << 16);
  m.SetTraceSink(&sink);
  Core& core = m.core(0);
  for (int i = 0; i < 100; ++i) {
    core.StoreU64(a + i * 64, i);
  }
  m.SetTraceSink(nullptr);
  for (size_t i = 1; i < sink.records.size(); ++i) {
    EXPECT_GE(sink.records[i].icount, sink.records[i - 1].icount);
  }
}

TEST(Tracing, NullSinkIsFast) {
  // No sink installed: tracing must not crash or emit.
  Machine m(MachineA(1));
  const SimAddr a = m.Alloc(4096);
  m.core(0).StoreU64(a, 1);
  SUCCEED();
}

}  // namespace
}  // namespace prestore
