// Cross-core coherence behaviour: data visibility, interventions, and the
// directory-on-device cost structure of Machine B (§4.2).
#include <gtest/gtest.h>

#include <thread>

#include "src/sim/harness.h"
#include "src/sim/machine.h"

namespace prestore {
namespace {

TEST(Coherence, StoreVisibleToOtherCoreAfterFence) {
  Machine m(MachineBFast(2));
  Core& a = m.core(0);
  Core& b = m.core(1);
  const SimAddr addr = m.Alloc(128);
  a.StoreU64(addr, 0x42);
  a.Fence();
  EXPECT_EQ(b.LoadU64(addr), 0x42u);
}

TEST(Coherence, InterventionCostsMoreThanSharedHit) {
  Machine m(MachineA(2));
  Core& a = m.core(0);
  Core& b = m.core(1);
  const SimAddr addr = m.Alloc(128);
  a.StoreU64(addr, 1);
  a.Fence();  // line Modified in a's L1
  const uint64_t t0 = b.now();
  b.LoadU64(addr);  // must intervene
  const uint64_t intervention_cost = b.now() - t0;
  const uint64_t t1 = b.now();
  b.LoadU64(addr);  // now in b's L1
  const uint64_t hit_cost = b.now() - t1;
  EXPECT_GT(intervention_cost, hit_cost);
}

TEST(Coherence, WriteInvalidatesOtherCopies) {
  Machine m(MachineA(2));
  Core& a = m.core(0);
  Core& b = m.core(1);
  const SimAddr addr = m.Alloc(128);
  a.StoreU64(addr, 1);
  a.Fence();
  b.LoadU64(addr);  // b has a shared copy
  a.StoreU64(addr, 2);
  a.Fence();
  // b's copy was invalidated; the reload must not be an L1 hit.
  const uint64_t t = b.now();
  EXPECT_EQ(b.LoadU64(addr), 2u);
  EXPECT_GT(b.now() - t, static_cast<uint64_t>(m.config().l1.hit_latency));
}

// Deterministic driver for the miss-path re-probe window: core 0's LLC miss
// releases the shard lock for the speculative device read; this hook runs at
// the tail of that read (no simulator locks held) and publishes the same
// line from core 1, so core 0's re-probe finds the line freshly Modified in
// core 1's L1.
class FillLineDuringRead : public DeviceFaultHook {
 public:
  FillLineDuringRead(Machine* m, uint64_t line) : machine_(m), line_(line) {}

  uint64_t ExtraLatency(bool is_write, uint64_t) override {
    if (!is_write && armed_) {
      armed_ = false;  // the publish below re-enters Read
      machine_->PublishLine(1, line_, 0);
      fired_ = true;
    }
    return 0;
  }
  double BandwidthCostMultiplier(uint64_t) override { return 1.0; }
  uint32_t StolenBufferBlocks(uint64_t) override { return 0; }
  uint64_t ExtraDirectoryLatency(uint64_t) override { return 0; }

  bool fired() const { return fired_; }

 private:
  Machine* machine_;
  uint64_t line_;
  bool armed_ = true;
  bool fired_ = false;
};

TEST(Coherence, MissReprobeHitRunsFullHitProtocol) {
  Machine m(MachineA(2));
  const SimAddr addr = m.Alloc(128);
  const uint64_t line = m.LineBaseOf(addr);
  FillLineDuringRead hook(&m, line);
  m.SetDeviceFaultHook(&hook);

  // Core 0 writes the line. The first LLC probe misses; during the
  // speculative device read the hook gives core 1 a Modified copy, so the
  // re-probe hits a line with a foreign owner and must run the same hit
  // protocol as a first-probe hit (intervene, snoop, take ownership) — not
  // just overwrite the directory entry.
  m.LlcAccess(0, line, Machine::AccessMode::kWrite, 0);
  m.SetDeviceFaultHook(nullptr);
  ASSERT_TRUE(hook.fired());

  const MachineStats h = m.hierarchy_stats();
  // Core 1's publish was the only miss; core 0's access resolved as a hit
  // and intervened on core 1's Modified copy.
  EXPECT_EQ(h.llc_misses, 1u);
  EXPECT_EQ(h.llc_hits, 1u);
  EXPECT_EQ(h.interventions, 1u);
  // The write snooped core 1's L1 copy out.
  EXPECT_EQ(m.core(1).l1().Probe(line), nullptr);
}

TEST(Coherence, FarMemoryPublicationPaysDirectory) {
  // On Machine B, publishing a private store to FPGA-backed memory pays a
  // directory round trip + line read; DRAM-backed lines must be cheaper.
  MachineConfig cfg = MachineBSlow(2);
  Machine m(cfg);
  Core& core = m.core(0);
  const SimAddr far_addr = m.Alloc(4096, Region::kTarget);
  const SimAddr dram_addr = m.Alloc(4096, Region::kDram);

  core.StoreU64(far_addr, 1);
  uint64_t t = core.now();
  core.Fence();
  const uint64_t far_publish = core.now() - t;

  core.StoreU64(dram_addr, 1);
  t = core.now();
  core.Fence();
  const uint64_t dram_publish = core.now() - t;

  EXPECT_GT(far_publish, dram_publish);
  EXPECT_GE(far_publish, cfg.target.directory_latency);
}

TEST(Coherence, DirectoryAccessCountedOnFarMemoryWrites) {
  Machine m(MachineBFast(2));
  Core& core = m.core(0);
  const SimAddr addr = m.Alloc(1 << 16, Region::kTarget);
  m.ResetStats();
  for (int i = 0; i < 10; ++i) {
    core.StoreU64(addr + i * 128, i);
    core.Fence();
  }
  EXPECT_GE(m.target().Stats().directory_accesses, 10u);
}

TEST(Coherence, ConcurrentCountersAreExact) {
  // Functional correctness under real-thread concurrency: FetchAdd on a
  // shared counter must never lose updates.
  Machine m(MachineA(4));
  const SimAddr counter = m.Alloc(64);
  m.core(0).StoreU64(counter, 0);
  m.core(0).Fence();
  constexpr uint64_t kPerThread = 2000;
  RunParallel(m, 4, [&](Core& core, uint32_t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      core.FetchAddU64(counter, 1);
    }
  });
  EXPECT_EQ(m.core(0).AtomicLoadU64(counter), 4 * kPerThread);
}

TEST(Coherence, SpinlockMutualExclusion) {
  // A CAS spinlock built on the sim API must protect a plain variable.
  Machine m(MachineBFast(4));
  const SimAddr lock = m.Alloc(128);
  const SimAddr value = m.Alloc(128);
  m.core(0).StoreU64(lock, 0);
  m.core(0).StoreU64(value, 0);
  m.core(0).Fence();
  constexpr uint64_t kPerThread = 300;
  RunParallel(m, 4, [&](Core& core, uint32_t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      uint64_t expected = 0;
      while (!core.CasU64(lock, expected, 1)) {
        expected = 0;
        core.SpinPause(10);
      }
      core.StoreU64(value, core.LoadU64(value) + 1);
      core.AtomicStoreU64(lock, 0);
    }
  });
  EXPECT_EQ(m.core(0).LoadU64(value), 4 * kPerThread);
}

TEST(Coherence, FlushAllWritesDirtyData) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(1 << 16);
  m.ResetStats();
  for (int i = 0; i < 100; ++i) {
    core.StoreU64(a + i * 64, i);
  }
  m.FlushAll();
  // All 100 dirty lines must have reached the device.
  EXPECT_GE(m.target().Stats().bytes_received, 100 * 64u);
}

TEST(Coherence, LlcEvictionWritesBackThroughDevice) {
  // Write far more lines than the LLC holds: device must receive evictions
  // even without any flush.
  MachineConfig cfg = MachineA(2);
  Machine m(cfg);
  Core& core = m.core(0);
  const uint64_t llc_lines = cfg.llc.size_bytes / cfg.line_size;
  const SimAddr a = m.Alloc((llc_lines * 3) * 64);
  m.ResetStats();
  for (uint64_t i = 0; i < llc_lines * 3; ++i) {
    core.StoreU64(a + i * 64, i);
  }
  EXPECT_GT(m.target().Stats().bytes_received, 0u);
}

}  // namespace
}  // namespace prestore
