// CLI flag parsing and the HumanBytes report formatter.
#include <gtest/gtest.h>

#include "src/dirtbuster/dirtbuster.h"
#include "src/util/cli.h"

namespace prestore {
namespace {

TEST(Cli, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--iters=500", "--name=abc", "--flag",
                        "positional"};
  CliFlags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("iters", 0), 500);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_TRUE(flags.GetBool("flag", false));
  EXPECT_FALSE(flags.Has("positional"));  // non --key args are ignored
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliFlags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("iters", 42), 42);
  EXPECT_EQ(flags.GetString("name", "dflt"), "dflt");
  EXPECT_TRUE(flags.GetBool("b", true));
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
}

TEST(Cli, DoubleAndBoolParsing) {
  const char* argv[] = {"prog", "--x=2.25", "--yes=true", "--no=false",
                        "--one=1"};
  CliFlags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0), 2.25);
  EXPECT_TRUE(flags.GetBool("yes", false));
  EXPECT_FALSE(flags.GetBool("no", true));
  EXPECT_TRUE(flags.GetBool("one", false));
}

TEST(Cli, UnknownFlagsFlagsTypos) {
  const char* argv[] = {"prog", "--iters=500", "--monitered", "--smoke"};
  CliFlags flags(4, const_cast<char**>(argv));
  const auto unknown = flags.UnknownFlags({"iters", "smoke", "monitored"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "monitered");
}

TEST(Cli, UnknownFlagsAlwaysKnowsHelp) {
  const char* argv[] = {"prog", "--help"};
  CliFlags flags(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.UnknownFlags({"iters"}).empty());
  EXPECT_TRUE(flags.UnknownFlags({}).empty());
}

TEST(Cli, UnknownFlagsEmptyWhenAllKnown) {
  const char* argv[] = {"prog", "--a=1", "--b"};
  CliFlags flags(3, const_cast<char**>(argv));
  EXPECT_TRUE(flags.UnknownFlags({"a", "b", "c"}).empty());
  EXPECT_EQ(flags.UnknownFlags({}).size(), 2u);
}

TEST(HumanBytes, Formats) {
  EXPECT_EQ(HumanBytes(0), "0B");
  EXPECT_EQ(HumanBytes(240), "240B");
  EXPECT_EQ(HumanBytes(2048), "2.0KB");
  EXPECT_EQ(HumanBytes(16 << 20 | (200 << 10)), "16.2MB");
}

}  // namespace
}  // namespace prestore
