// PatternAnalyzer unit tests: synthetic record streams with known ground
// truth for sequentiality contexts, fence distances and re-use distances.
#include <gtest/gtest.h>

#include "src/dirtbuster/analyzer.h"

namespace prestore {
namespace {

constexpr uint32_t kFunc = 7;

TraceRecord Store(uint64_t addr, uint64_t icount, uint32_t size = 8,
                  uint32_t func = kFunc) {
  return TraceRecord{TraceKind::kStore, 0, size, addr, icount, func, 0};
}

TraceRecord Load(uint64_t addr, uint64_t icount) {
  return TraceRecord{TraceKind::kLoad, 0, 8, addr, icount, kFunc, 0};
}

TraceRecord Fence(uint64_t icount) {
  return TraceRecord{TraceKind::kFence, 0, 0, 0, icount, kFunc, 0};
}

PatternAnalyzer MakeAnalyzer() {
  AnalyzerConfig cfg;
  cfg.line_size = 64;
  cfg.max_cores = 2;
  return PatternAnalyzer(cfg, {kFunc});
}

TEST(Analyzer, PureSequentialWritesFormOneContext) {
  PatternAnalyzer a = MakeAnalyzer();
  for (uint64_t i = 0; i < 100; ++i) {
    a.Record(Store(1000 + i * 8, i));
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].func_id, kFunc);
  EXPECT_EQ(out[0].writes, 100u);
  EXPECT_GT(out[0].seq_write_fraction, 0.99);
  ASSERT_EQ(out[0].classes.size(), 1u);
  EXPECT_EQ(out[0].classes[0].representative_bytes, 800u);
}

TEST(Analyzer, RandomWritesAreNotSequential) {
  PatternAnalyzer a = MakeAnalyzer();
  uint64_t addr = 1;
  for (uint64_t i = 0; i < 200; ++i) {
    addr = addr * 2862933555777941757ULL + 3037000493ULL;
    a.Record(Store((addr % (1 << 24)) & ~7ULL, i));
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].seq_write_fraction, 0.2);
}

TEST(Analyzer, InterleavedStreamsBothTracked) {
  // Two objects written alternately: the context tracker must follow both
  // (§6.2.2: "applications that interleave sequential writes to multiple
  // objects").
  PatternAnalyzer a = MakeAnalyzer();
  for (uint64_t i = 0; i < 100; ++i) {
    a.Record(Store(0x10000 + i * 8, 2 * i));
    a.Record(Store(0x90000 + i * 8, 2 * i + 1));
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0].seq_write_fraction, 0.95);
}

TEST(Analyzer, StaleAdjacencyDoesNotCount) {
  // Address-adjacent writes separated by more than the staleness window are
  // NOT sequential for the cache (the IS bucket-scatter case).
  AnalyzerConfig cfg;
  cfg.line_size = 64;
  cfg.max_cores = 2;
  cfg.seq_staleness_instructions = 1000;
  PatternAnalyzer a(cfg, {kFunc});
  for (uint64_t i = 0; i < 50; ++i) {
    a.Record(Store(0x1000 + i * 8, i * 50000));  // 50K instructions apart
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LT(out[0].seq_write_fraction, 0.1);
}

TEST(Analyzer, FenceDistanceTracked) {
  PatternAnalyzer a = MakeAnalyzer();
  a.Record(Store(0x1000, 100));
  a.Record(Store(0x1008, 110));
  a.Record(Fence(150));
  a.Record(Store(0x2000, 200));
  a.Record(Fence(10000000));  // far away: outside fence_near
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].min_fence_distance, 40u);  // 150 - 110
  // Two of three writes had a near fence.
  EXPECT_NEAR(out[0].writes_before_fence_fraction, 2.0 / 3.0, 0.01);
}

TEST(Analyzer, ReReadDistancePerContext) {
  PatternAnalyzer a = MakeAnalyzer();
  for (uint64_t i = 0; i < 8; ++i) {
    a.Record(Store(0x4000 + i * 8, i));
  }
  a.Record(Load(0x4000, 100));   // distance 100 from the line's last write
  a.Record(Load(0x4008, 110));
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].classes.size(), 1u);
  EXPECT_TRUE(out[0].classes[0].reread_finite);
  EXPECT_GT(out[0].classes[0].reread_distance, 90.0);
  EXPECT_LT(out[0].classes[0].reread_distance, 110.0);
  EXPECT_FALSE(out[0].classes[0].rewrite_finite);
}

TEST(Analyzer, ReWriteDistanceOnStreakBreak) {
  PatternAnalyzer a = MakeAnalyzer();
  // Write a small buffer, then rewrite it from the start much later.
  for (uint64_t i = 0; i < 8; ++i) {
    a.Record(Store(0x4000 + i * 8, i));
  }
  for (uint64_t i = 0; i < 8; ++i) {
    a.Record(Store(0x4000 + i * 8, 5000 + i));
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  bool any_rewrite = false;
  for (const auto& c : out[0].classes) {
    any_rewrite = any_rewrite || c.rewrite_finite;
  }
  EXPECT_TRUE(any_rewrite);
}

TEST(Analyzer, UnselectedFunctionsIgnored) {
  PatternAnalyzer a = MakeAnalyzer();
  for (uint64_t i = 0; i < 50; ++i) {
    a.Record(Store(0x1000 + i * 8, i, 8, /*func=*/99));  // not selected
  }
  EXPECT_TRUE(a.Finalize().empty());
}

TEST(Analyzer, PerCoreIsolation) {
  // Two cores writing adjacent addresses must not merge into one context.
  PatternAnalyzer a = MakeAnalyzer();
  for (uint64_t i = 0; i < 40; ++i) {
    TraceRecord r = Store(0x1000 + i * 8, i);
    r.core_id = static_cast<uint8_t>(i % 2);
    a.Record(r);
  }
  const auto out = a.Finalize();
  ASSERT_EQ(out.size(), 1u);
  // Each core saw a strided (16B-gap) stream; with the 64B slack these
  // still chain, so both cores' contexts exist independently.
  EXPECT_EQ(out[0].writes, 40u);
}

}  // namespace
}  // namespace prestore
