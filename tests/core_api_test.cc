#include <gtest/gtest.h>

#include "src/core/prestore.h"

namespace prestore {
namespace {

TEST(LineMath, LineBase) {
  EXPECT_EQ(LineBase(0, 64), 0u);
  EXPECT_EQ(LineBase(63, 64), 0u);
  EXPECT_EQ(LineBase(64, 64), 64u);
  EXPECT_EQ(LineBase(0x12345, 64), 0x12340u);
  EXPECT_EQ(LineBase(0x12345, 128), 0x12300u);
}

TEST(LineMath, LinesCovered) {
  EXPECT_EQ(LinesCovered(0, 0, 64), 0u);
  EXPECT_EQ(LinesCovered(0, 1, 64), 1u);
  EXPECT_EQ(LinesCovered(0, 64, 64), 1u);
  EXPECT_EQ(LinesCovered(0, 65, 64), 2u);
  EXPECT_EQ(LinesCovered(63, 2, 64), 2u);
  EXPECT_EQ(LinesCovered(60, 8, 64), 2u);
  EXPECT_EQ(LinesCovered(128, 256, 128), 2u);
}

TEST(OpNames, ToStringRoundTrip) {
  EXPECT_EQ(ToString(PrestoreOp::kDemote), "demote");
  EXPECT_EQ(ToString(PrestoreOp::kClean), "clean");
  EXPECT_EQ(ToString(Advice::kNone), "none");
  EXPECT_EQ(ToString(Advice::kDemote), "demote");
  EXPECT_EQ(ToString(Advice::kClean), "clean");
  EXPECT_EQ(ToString(Advice::kSkip), "skip");
}

}  // namespace
}  // namespace prestore
