// The hardware backend must be safe on whatever CPU runs the test suite:
// detection must not crash, and every op must degrade gracefully.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/hw/hw_prestore.h"

namespace prestore {
namespace {

TEST(HwDetect, ReportsPlausibleLineSize) {
  const HwFeatures& f = DetectHwFeatures();
  EXPECT_GE(f.cache_line_size, 32u);
  EXPECT_LE(f.cache_line_size, 256u);
  // Power of two.
  EXPECT_EQ(f.cache_line_size & (f.cache_line_size - 1), 0u);
}

TEST(HwDetect, StableAcrossCalls) {
  const HwFeatures& a = DetectHwFeatures();
  const HwFeatures& b = DetectHwFeatures();
  EXPECT_EQ(&a, &b);
}

TEST(HwDetect, RaceFreeUnderConcurrentFirstUse) {
  // Detection is a function-local static: concurrent callers must all get
  // the same fully initialized object. (Hammering it here cannot prove the
  // absence of a race, but it documents and smoke-tests the guarantee.)
  constexpr int kThreads = 8;
  const HwFeatures* seen[kThreads] = {};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&seen, i] { seen[i] = &DetectHwFeatures(); });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i], seen[0]);
  }
  EXPECT_EQ(seen[0]->cache_line_size, DetectHwFeatures().cache_line_size);
}

// The §2 degrade-gracefully chain, exercised for every feature combination
// regardless of what the host CPU actually supports.
TEST(HwSelect, CleanFallbackChainOnX86) {
  HwFeatures f;
  f.has_clwb = true;
  f.has_clflushopt = true;
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kX86_64, f, PrestoreOp::kClean),
            HwInstr::kClwb);
  f.has_clwb = false;  // pre-CLWB CPU: fall back to clflushopt
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kX86_64, f, PrestoreOp::kClean),
            HwInstr::kClflushopt);
  f.has_clflushopt = false;  // neither: degrade to a no-op
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kX86_64, f, PrestoreOp::kClean),
            HwInstr::kNone);
}

TEST(HwSelect, DemoteIsAlwaysEncodedOnX86) {
  // cldemote occupies NOP space, so it is issued even when CPUID says the
  // CPU does not implement it.
  HwFeatures f;
  f.has_cldemote = false;
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kX86_64, f, PrestoreOp::kDemote),
            HwInstr::kCldemote);
  f.has_cldemote = true;
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kX86_64, f, PrestoreOp::kDemote),
            HwInstr::kCldemote);
}

TEST(HwSelect, ArmUsesDcInstructions) {
  const HwFeatures f;  // ARM needs no feature bits: DC ops are baseline
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kAArch64, f, PrestoreOp::kClean),
            HwInstr::kDcCvac);
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kAArch64, f, PrestoreOp::kDemote),
            HwInstr::kDcCvau);
}

TEST(HwSelect, UnknownArchDegradesToNoop) {
  HwFeatures f;
  f.has_clwb = true;
  f.has_cldemote = true;
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kOther, f, PrestoreOp::kClean),
            HwInstr::kNone);
  EXPECT_EQ(SelectPrestoreInstr(HwArch::kOther, f, PrestoreOp::kDemote),
            HwInstr::kNone);
}

TEST(HwSelect, HostSelectionMatchesDetectedFeatures) {
  const HwFeatures& f = DetectHwFeatures();
  const HwInstr clean = SelectPrestoreInstr(HostArch(), f, PrestoreOp::kClean);
  if (HostArch() == HwArch::kX86_64) {
    if (f.has_clwb) {
      EXPECT_EQ(clean, HwInstr::kClwb);
    } else if (f.has_clflushopt) {
      EXPECT_EQ(clean, HwInstr::kClflushopt);
    } else {
      EXPECT_EQ(clean, HwInstr::kNone);
    }
  }
}

TEST(GovernedHw, BacksOffRewriteStorm) {
  GovernorConfig cfg;
  cfg.region_shift = 12;
  cfg.window_hints = 8;
  cfg.probe_period = 8;
  cfg.probe_window = 4;
  GovernedHwPrestore gov(cfg);

  alignas(64) char buf[64];
  std::memset(buf, 1, sizeof(buf));
  // Listing-3 pattern: rewrite then clean the same line, repeatedly.
  for (int i = 0; i < 512; ++i) {
    std::memset(buf, i & 0xff, sizeof(buf));
    gov.NoteStore(buf, sizeof(buf));
    gov.Prestore(buf, sizeof(buf), PrestoreOp::kClean);
  }
  EXPECT_EQ(gov.attempts(), 512u);
  // The storm must be mostly suppressed once the first window completes.
  EXPECT_GT(gov.suppressed(), gov.attempts() / 2);
  EXPECT_EQ(gov.admitted() + gov.suppressed(), gov.attempts());
}

TEST(GovernedHw, AdmitsWellBehavedCleans) {
  GovernorConfig cfg;
  cfg.region_shift = 12;
  cfg.window_hints = 8;
  GovernedHwPrestore gov(cfg);

  // Streaming pattern: each line written once, cleaned once, never
  // rewritten. Line-aligned so consecutive cleans do not overlap (an
  // overlapping clean+store pattern IS a rewrite storm and gets suppressed).
  std::vector<char> storage(64 * 1024 + 64, 3);
  char* buf = storage.data() +
              (64 - reinterpret_cast<uintptr_t>(storage.data()) % 64) % 64;
  for (size_t off = 0; off + 64 <= 64 * 1024; off += 64) {
    gov.NoteStore(buf + off, 64);
    gov.Prestore(buf + off, 64, PrestoreOp::kClean);
  }
  EXPECT_EQ(gov.suppressed(), 0u);
  EXPECT_EQ(gov.admitted(), gov.attempts());
}

TEST(GovernedHw, GateClosesWithoutFencesOnNoHeadroomTarget) {
  GovernorConfig cfg;
  cfg.global_eval_window = 64;
  GovernedHwPrestore gov(cfg, /*target_has_wa_headroom=*/false);

  std::vector<char> buf(64 * 1024, 5);
  for (size_t off = 0; off + 64 <= buf.size(); off += 64) {
    gov.NoteStore(buf.data() + off, 64);
    gov.Prestore(buf.data() + off, 64, PrestoreOp::kClean);
  }
  // Fence-free + no amplification headroom: after the first evaluation
  // window the gate suppresses everything.
  EXPECT_GT(gov.suppressed(), 0u);
  EXPECT_LT(gov.admitted(), gov.attempts());
}

TEST(HwPrestore, CleanDoesNotCorruptData) {
  std::vector<uint64_t> data(1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i * 3 + 1;
  }
  HwPrestore(data.data(), data.size() * 8, PrestoreOp::kClean);
  HwStoreFence();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i * 3 + 1);
  }
}

TEST(HwPrestore, DemoteDoesNotCorruptData) {
  std::vector<uint64_t> data(1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i ^ 0xdeadbeef;
  }
  HwPrestore(data.data(), data.size() * 8, PrestoreOp::kDemote);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i ^ 0xdeadbeef);
  }
}

TEST(HwPrestore, ZeroSizeIsNoop) {
  int x = 42;
  HwPrestore(&x, 0, PrestoreOp::kClean);
  EXPECT_EQ(x, 42);
}

TEST(HwPrestore, UnalignedRangeCoversAllLines) {
  std::vector<char> buf(4096, 7);
  HwPrestore(buf.data() + 13, 1000, PrestoreOp::kClean);
  for (char c : buf) {
    EXPECT_EQ(c, 7);
  }
}

TEST(HwNonTemporal, CopiesExactBytes) {
  alignas(64) char dst[512];
  char src[512];
  for (int i = 0; i < 512; ++i) {
    src[i] = static_cast<char>(i * 7);
    dst[i] = 0;
  }
  HwStoreNonTemporal(dst, src, 512);
  HwStoreFence();
  EXPECT_EQ(std::memcmp(dst, src, 512), 0);
}

TEST(HwNonTemporal, HandlesUnalignedAndOddSizes) {
  alignas(64) char dst[256];
  char src[256];
  for (int i = 0; i < 256; ++i) {
    src[i] = static_cast<char>(255 - i);
    dst[i] = 0;
  }
  HwStoreNonTemporal(dst + 3, src, 131);
  HwStoreFence();
  EXPECT_EQ(std::memcmp(dst + 3, src, 131), 0);
}

}  // namespace
}  // namespace prestore
