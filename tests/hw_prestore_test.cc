// The hardware backend must be safe on whatever CPU runs the test suite:
// detection must not crash, and every op must degrade gracefully.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/hw/hw_prestore.h"

namespace prestore {
namespace {

TEST(HwDetect, ReportsPlausibleLineSize) {
  const HwFeatures& f = DetectHwFeatures();
  EXPECT_GE(f.cache_line_size, 32u);
  EXPECT_LE(f.cache_line_size, 256u);
  // Power of two.
  EXPECT_EQ(f.cache_line_size & (f.cache_line_size - 1), 0u);
}

TEST(HwDetect, StableAcrossCalls) {
  const HwFeatures& a = DetectHwFeatures();
  const HwFeatures& b = DetectHwFeatures();
  EXPECT_EQ(&a, &b);
}

TEST(HwPrestore, CleanDoesNotCorruptData) {
  std::vector<uint64_t> data(1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i * 3 + 1;
  }
  HwPrestore(data.data(), data.size() * 8, PrestoreOp::kClean);
  HwStoreFence();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i * 3 + 1);
  }
}

TEST(HwPrestore, DemoteDoesNotCorruptData) {
  std::vector<uint64_t> data(1024, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i ^ 0xdeadbeef;
  }
  HwPrestore(data.data(), data.size() * 8, PrestoreOp::kDemote);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i ^ 0xdeadbeef);
  }
}

TEST(HwPrestore, ZeroSizeIsNoop) {
  int x = 42;
  HwPrestore(&x, 0, PrestoreOp::kClean);
  EXPECT_EQ(x, 42);
}

TEST(HwPrestore, UnalignedRangeCoversAllLines) {
  std::vector<char> buf(4096, 7);
  HwPrestore(buf.data() + 13, 1000, PrestoreOp::kClean);
  for (char c : buf) {
    EXPECT_EQ(c, 7);
  }
}

TEST(HwNonTemporal, CopiesExactBytes) {
  alignas(64) char dst[512];
  char src[512];
  for (int i = 0; i < 512; ++i) {
    src[i] = static_cast<char>(i * 7);
    dst[i] = 0;
  }
  HwStoreNonTemporal(dst, src, 512);
  HwStoreFence();
  EXPECT_EQ(std::memcmp(dst, src, 512), 0);
}

TEST(HwNonTemporal, HandlesUnalignedAndOddSizes) {
  alignas(64) char dst[256];
  char src[256];
  for (int i = 0; i < 256; ++i) {
    src[i] = static_cast<char>(255 - i);
    dst[i] = 0;
  }
  HwStoreNonTemporal(dst + 3, src, 131);
  HwStoreFence();
  EXPECT_EQ(std::memcmp(dst + 3, src, 131), 0);
}

}  // namespace
}  // namespace prestore
