// Striped-stats equivalence: the per-core stripe aggregation must reproduce
// the pre-rework shared-atomic accounting exactly, on the SAME concurrent
// run. EnableShadowStats mirrors every stripe bump into one shared struct
// with fetch_add (the old scheme); after the run the two must agree
// field-for-field — any missed or double-counted bump shows up here.
#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

ReplayTraceConfig EquivTraceConfig(uint32_t workers) {
  ReplayTraceConfig cfg;
  cfg.workers = workers;
  cfg.ops_per_worker = 8000;
  // Working set (keys * value_size per worker + shared arena) well past the
  // 2MB LLC so the run produces evictions for the equivalence to cover.
  cfg.keys_per_worker = 8192;
  cfg.shared_keys = 512;
  cfg.shared_fraction = 0.25;  // plenty of cross-core traffic
  cfg.value_size = 256;
  cfg.read_ratio = 0.5;
  cfg.zipf_theta = 0.0;  // integer-only key stream
  cfg.clean_period = 8;
  cfg.seed = 42;
  return cfg;
}

void ExpectStatsEqual(const MachineStats& got, const MachineStats& want) {
  EXPECT_EQ(got.llc_hits, want.llc_hits);
  EXPECT_EQ(got.llc_misses, want.llc_misses);
  EXPECT_EQ(got.llc_evictions, want.llc_evictions);
  EXPECT_EQ(got.back_invalidations, want.back_invalidations);
  EXPECT_EQ(got.interventions, want.interventions);
  EXPECT_EQ(got.wbq_stall_cycles, want.wbq_stall_cycles);
  EXPECT_EQ(got.dir_upgrades, want.dir_upgrades);
}

TEST(SimStatsEquiv, StripedAggregateMatchesSharedAtomicConcurrent) {
  Machine machine(MachineA(4));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(4));
  const ReplayResult result = ReplayConcurrent(machine, trace);
  ASSERT_GT(result.accesses, 0u);

  const MachineStats striped = machine.hierarchy_stats();
  const MachineStats shadow = machine.ShadowStatsSnapshot();
  // The workload must actually exercise the counters being compared.
  EXPECT_GT(striped.llc_hits, 0u);
  EXPECT_GT(striped.llc_misses, 0u);
  EXPECT_GT(striped.llc_evictions, 0u);
  ExpectStatsEqual(striped, shadow);
}

TEST(SimStatsEquiv, StripedAggregateMatchesSharedAtomicSequential) {
  Machine machine(MachineA(2));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(2));
  const ReplayResult result = ReplaySequential(machine, trace);
  ASSERT_GT(result.accesses, 0u);
  ExpectStatsEqual(machine.hierarchy_stats(), machine.ShadowStatsSnapshot());
}

TEST(SimStatsEquiv, ResetStatsClearsStripesAndShadow) {
  Machine machine(MachineA(2));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(2));
  (void)ReplaySequential(machine, trace);
  machine.ResetStats();
  ExpectStatsEqual(machine.hierarchy_stats(), MachineStats{});
  ExpectStatsEqual(machine.ShadowStatsSnapshot(), MachineStats{});
}

}  // namespace
}  // namespace prestore
