// Striped-stats equivalence: the per-core stripe aggregation must reproduce
// the pre-rework shared-atomic accounting exactly, on the SAME concurrent
// run. EnableShadowStats mirrors every stripe bump into one shared struct
// with fetch_add (the old scheme); after the run the two must agree
// field-for-field — any missed or double-counted bump shows up here.
#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

ReplayTraceConfig EquivTraceConfig(uint32_t workers) {
  ReplayTraceConfig cfg;
  cfg.workers = workers;
  cfg.ops_per_worker = 8000;
  // Working set (keys * value_size per worker + shared arena) well past the
  // 2MB LLC so the run produces evictions for the equivalence to cover.
  cfg.keys_per_worker = 8192;
  cfg.shared_keys = 512;
  cfg.shared_fraction = 0.25;  // plenty of cross-core traffic
  cfg.value_size = 256;
  cfg.read_ratio = 0.5;
  cfg.zipf_theta = 0.0;  // integer-only key stream
  cfg.clean_period = 8;
  cfg.seed = 42;
  return cfg;
}

void ExpectStatsEqual(const MachineStats& got, const MachineStats& want) {
  EXPECT_EQ(got.llc_hits, want.llc_hits);
  EXPECT_EQ(got.llc_misses, want.llc_misses);
  EXPECT_EQ(got.llc_evictions, want.llc_evictions);
  EXPECT_EQ(got.back_invalidations, want.back_invalidations);
  EXPECT_EQ(got.interventions, want.interventions);
  EXPECT_EQ(got.wbq_stall_cycles, want.wbq_stall_cycles);
  EXPECT_EQ(got.dir_upgrades, want.dir_upgrades);
}

TEST(SimStatsEquiv, StripedAggregateMatchesSharedAtomicConcurrent) {
  Machine machine(MachineA(4));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(4));
  const ReplayResult result = ReplayConcurrent(machine, trace);
  ASSERT_GT(result.accesses, 0u);

  const MachineStats striped = machine.hierarchy_stats();
  const MachineStats shadow = machine.ShadowStatsSnapshot();
  // The workload must actually exercise the counters being compared.
  EXPECT_GT(striped.llc_hits, 0u);
  EXPECT_GT(striped.llc_misses, 0u);
  EXPECT_GT(striped.llc_evictions, 0u);
  ExpectStatsEqual(striped, shadow);
}

TEST(SimStatsEquiv, StripedAggregateMatchesSharedAtomicSequential) {
  Machine machine(MachineA(2));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(2));
  const ReplayResult result = ReplaySequential(machine, trace);
  ASSERT_GT(result.accesses, 0u);
  ExpectStatsEqual(machine.hierarchy_stats(), machine.ShadowStatsSnapshot());
}

// The analytical fast-forward must be invisible in every observable number:
// replaying the same trace with fast-forward enabled (the default) and
// disabled (every op walks the full timing path) must aggregate identical
// hierarchy stripes, identical per-core stats, and an identical machine
// digest. This is the strongest form of the "charge cycles and stat deltas
// in one step" claim — not statistically close, bit-equal.
TEST(SimStatsEquiv, FastForwardAggregatesIdenticalStatStripes) {
  ReplayTraceConfig cfg = EquivTraceConfig(2);
  uint64_t digests[2];
  MachineStats stats[2];
  CoreStats core0[2];
  uint64_t icount0[2];
  for (int ff = 0; ff < 2; ++ff) {
    Machine machine(MachineA(2));
    machine.SetAnalyticalFastForward(ff == 1);
    const ReplayTrace trace = GenerateReplayTrace(machine, cfg);
    const ReplayResult result = ReplaySequential(machine, trace);
    ASSERT_GT(result.accesses, 0u);
    digests[ff] = DigestMachine(machine, 2);
    stats[ff] = machine.hierarchy_stats();
    core0[ff] = machine.core(0).stats();
    icount0[ff] = machine.core(0).icount();
  }
  ExpectStatsEqual(stats[1], stats[0]);
  EXPECT_EQ(core0[1].loads, core0[0].loads);
  EXPECT_EQ(core0[1].stores, core0[0].stores);
  EXPECT_EQ(core0[1].l1_hits, core0[0].l1_hits);
  EXPECT_EQ(core0[1].l1_misses, core0[0].l1_misses);
  EXPECT_EQ(core0[1].cycles_load_miss, core0[0].cycles_load_miss);
  EXPECT_EQ(core0[1].publishes, core0[0].publishes);
  EXPECT_EQ(core0[1].publish_latency_sum, core0[0].publish_latency_sum);
  EXPECT_EQ(icount0[1], icount0[0]);
  EXPECT_EQ(digests[1], digests[0]);
}

// Same equivalence on the zipf-skewed mix (hot lines, more L1 hits, more
// write-combining traffic) and on the sliced scheduler path.
TEST(SimStatsEquiv, FastForwardEquivalenceZipfSliced) {
  ReplayTraceConfig cfg = EquivTraceConfig(2);
  cfg.zipf_theta = 0.99;
  uint64_t digests[2];
  for (int ff = 0; ff < 2; ++ff) {
    Machine machine(MachineA(2));
    machine.SetAnalyticalFastForward(ff == 1);
    const ReplayTrace trace = GenerateReplayTrace(machine, cfg);
    ReplaySlicedOptions options;
    options.host_threads = 2;
    (void)ReplaySliced(machine, trace, options);
    digests[ff] = DigestMachine(machine, 2);
  }
  EXPECT_EQ(digests[1], digests[0]);
}

TEST(SimStatsEquiv, ResetStatsClearsStripesAndShadow) {
  Machine machine(MachineA(2));
  machine.EnableShadowStats();
  const ReplayTrace trace = GenerateReplayTrace(machine, EquivTraceConfig(2));
  (void)ReplaySequential(machine, trace);
  machine.ResetStats();
  ExpectStatsEqual(machine.hierarchy_stats(), MachineStats{});
  ExpectStatsEqual(machine.ShadowStatsSnapshot(), MachineStats{});
}

}  // namespace
}  // namespace prestore
