// Unit tables for DirtBuster's recommendation rules (§6.2.3).
#include <gtest/gtest.h>

#include "src/dirtbuster/recommend.h"

namespace prestore {
namespace {

SizeClassReport Cls(double share, bool reread, double reread_d, bool rewrite,
                    double rewrite_d) {
  SizeClassReport c;
  c.representative_bytes = 4096;
  c.write_share = share;
  c.context_count = 10;
  c.reread_finite = reread;
  c.reread_distance = reread_d;
  c.rewrite_finite = rewrite;
  c.rewrite_distance = rewrite_d;
  return c;
}

const AdviceThresholds kT;

TEST(AdviseClass, NeverReusedGetsSkip) {
  EXPECT_EQ(AdviseClass(Cls(1.0, false, 0, false, 0), false, kT),
            Advice::kSkip);
}

TEST(AdviseClass, ReReadSoonGetsClean) {
  EXPECT_EQ(AdviseClass(Cls(1.0, true, 10, false, 0), false, kT),
            Advice::kClean);
}

TEST(AdviseClass, ReReadFarGetsSkip) {
  // "Re-read" at a distance beyond the threshold is as good as never.
  EXPECT_EQ(AdviseClass(Cls(1.0, true, 1e9, false, 0), false, kT),
            Advice::kSkip);
}

TEST(AdviseClass, RewrittenSoonNoFenceGetsNone) {
  // The Listing-3 trap.
  EXPECT_EQ(AdviseClass(Cls(1.0, false, 0, true, 100), false, kT),
            Advice::kNone);
}

TEST(AdviseClass, RewrittenSoonWithFenceGetsDemote) {
  // The X9 case: reused buffers published behind a CAS.
  EXPECT_EQ(AdviseClass(Cls(1.0, false, 0, true, 100), true, kT),
            Advice::kDemote);
}

TEST(AdviseClass, RewriteBeatsReRead) {
  // Data both re-read and re-written soon: cleaning would still cause
  // useless writebacks before each re-write.
  EXPECT_EQ(AdviseClass(Cls(1.0, true, 10, true, 100), false, kT),
            Advice::kNone);
}

FunctionAnalysis Func(double seq_fraction, double fence_fraction,
                      std::vector<SizeClassReport> classes) {
  FunctionAnalysis a;
  a.writes = 100000;
  a.seq_write_fraction = seq_fraction;
  a.writes_before_fence_fraction = fence_fraction;
  a.classes = std::move(classes);
  return a;
}

TEST(AdviseFunction, NotSequentialNotFenceBoundGetsNone) {
  // §6.1: pre-stores only help sequential writes or writes before fences —
  // the IS `rank` case.
  const auto analysis = Func(0.05, 0.0, {Cls(1.0, false, 0, false, 0)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kNone);
}

TEST(AdviseFunction, SequentialNeverReusedGetsSkip) {
  const auto analysis = Func(0.95, 0.0, {Cls(1.0, false, 0, false, 0)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kSkip);
}

TEST(AdviseFunction, MixedClassesWithOneReReadGetClean) {
  // The TensorFlow case (§7.2.1): a large never-reused class plus a small
  // immediately-re-read class -> clean, NOT skip.
  const auto analysis = Func(0.9, 0.0,
                             {Cls(0.35, false, 0, false, 0),
                              Cls(0.60, true, 2, false, 0)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kClean);
}

TEST(AdviseFunction, InsignificantClassIgnored) {
  // A tiny re-read class below the significance threshold must not force
  // clean over skip.
  const auto analysis = Func(0.9, 0.0,
                             {Cls(0.98, false, 0, false, 0),
                              Cls(0.02, true, 2, false, 0)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kSkip);
}

TEST(AdviseFunction, MostlyRewrittenFenceBoundGetsDemote) {
  const auto analysis = Func(0.9, 0.8, {Cls(0.9, false, 0, true, 50)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kDemote);
}

TEST(AdviseFunction, MostlyRewrittenNoFenceGetsNone) {
  const auto analysis = Func(0.9, 0.0, {Cls(0.9, false, 0, true, 50)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kNone);
}

TEST(AdviseFunction, FenceBoundNotSequentialStillEligible) {
  // Writes before a fence qualify even without sequentiality (§6.1 lists
  // the two patterns as alternatives).
  const auto analysis = Func(0.05, 0.9, {Cls(1.0, false, 0, true, 100)});
  EXPECT_EQ(AdviseFunction(analysis, kT), Advice::kDemote);
}

}  // namespace
}  // namespace prestore
