// Table-2-style integration: DirtBuster classifies the real workloads of
// this repository the way the paper's tool classified the originals.
#include <gtest/gtest.h>

#include "src/dirtbuster/dirtbuster.h"
#include "src/kv/clht.h"
#include "src/kv/ycsb.h"
#include "src/msg/x9.h"
#include "src/nas/nas_common.h"
#include "src/proxy/proxies.h"
#include "src/sim/harness.h"
#include "src/tensor/training.h"

namespace prestore {
namespace {

TEST(ProxyClassification, AllProxiesNotWriteIntensive) {
  // The Phoronix-style rows of Table 2: pytorch/numpy/c-ray/gzip-like
  // workloads spend <10% of instructions on stores.
  Machine m(MachineA(1));
  auto proxies = MakeAllProxies(m);
  for (auto& proxy : proxies) {
    DirtBuster db(m);
    const DirtBusterReport report =
        db.Analyze([&] { proxy->Run(m.core(0)); });
    EXPECT_FALSE(report.write_intensive) << proxy->name();
  }
}

TEST(NasClassification, MgSequentialWriterAdvisedCleanOrSkip) {
  Machine m(MachineA(1));
  auto kernel = MakeNasKernel("mg", m, NasPrestore::kOff);
  DirtBuster db(m);
  const DirtBusterReport report =
      db.Analyze([&] { kernel->Run(m.core(0)); });
  ASSERT_TRUE(report.write_intensive);
  EXPECT_TRUE(report.sequential_writer);
  bool found_resid_or_psinv = false;
  for (const FunctionReport& f : report.functions) {
    if (f.name == "resid" || f.name == "psinv") {
      found_resid_or_psinv = true;
      EXPECT_GT(f.analysis.seq_write_fraction, 0.5) << f.name;
      EXPECT_TRUE(f.advice == Advice::kClean || f.advice == Advice::kSkip)
          << f.name << " got " << prestore::ToString(f.advice);
    }
  }
  EXPECT_TRUE(found_resid_or_psinv);
}

TEST(NasClassification, FtFftz2NotRecommended) {
  // §7.4.2: DirtBuster must NOT suggest pre-storing the fftz2 scratch.
  Machine m(MachineA(1));
  auto kernel = MakeNasKernel("ft", m, NasPrestore::kOff);
  DirtBuster db(m);
  const DirtBusterReport report =
      db.Analyze([&] { kernel->Run(m.core(0)); });
  ASSERT_TRUE(report.write_intensive);
  for (const FunctionReport& f : report.functions) {
    if (f.name == "fftz2") {
      EXPECT_NE(f.advice, Advice::kClean) << "fftz2 scratch is rewritten";
      EXPECT_NE(f.advice, Advice::kSkip);
    }
    if (f.name == "cffts1") {
      EXPECT_TRUE(f.advice == Advice::kClean || f.advice == Advice::kSkip)
          << prestore::ToString(f.advice);
    }
  }
}

TEST(NasClassification, IsRankGetsNoRecommendation) {
  Machine m(MachineA(1));
  auto kernel = MakeNasKernel("is", m, NasPrestore::kOff);
  DirtBuster db(m);
  const DirtBusterReport report =
      db.Analyze([&] { kernel->Run(m.core(0)); });
  ASSERT_TRUE(report.write_intensive);
  for (const FunctionReport& f : report.functions) {
    if (f.name == "rank") {
      EXPECT_EQ(f.advice, Advice::kNone);
    }
  }
}

TEST(NasClassification, NotWriteIntensiveKernels) {
  for (const char* name : {"cg", "ep", "lu"}) {
    Machine m(MachineA(1));
    auto kernel = MakeNasKernel(name, m, NasPrestore::kOff);
    DirtBuster db(m);
    const DirtBusterReport report =
        db.Analyze([&] { kernel->Run(m.core(0)); });
    EXPECT_FALSE(report.write_intensive) << name;
  }
}

TEST(KvClassification, ClhtYcsbAWritesBeforeFence) {
  Machine m(MachineA(2));
  ClhtMap store(m, 8192);
  YcsbConfig cfg;
  cfg.num_keys = 3000;
  cfg.value_size = 512;
  cfg.threads = 2;
  cfg.ops_per_thread = 600;
  YcsbLoad(m, store, cfg);
  DirtBuster db(m);
  const DirtBusterReport report = db.Analyze([&] { YcsbRun(m, store, cfg); });
  ASSERT_TRUE(report.write_intensive);
  EXPECT_TRUE(report.writes_before_fence);
  bool craft_found = false;
  for (const FunctionReport& f : report.functions) {
    if (f.name == "craftValue") {
      craft_found = true;
      EXPECT_GT(f.analysis.seq_write_fraction, 0.5);
      EXPECT_GT(f.analysis.writes_before_fence_fraction, 0.3);
      // Values are written sequentially, rarely reused, fence-bound:
      // skip (with clean as the easy fallback) per §7.2.3.
      EXPECT_TRUE(f.advice == Advice::kSkip || f.advice == Advice::kClean)
          << prestore::ToString(f.advice);
    }
  }
  EXPECT_TRUE(craft_found);
}

TEST(KvClassification, ReadMostlyYcsbNotRecommended) {
  // §7.2.3: "read-only or read-mostly workloads (YCSB B-D) do not benefit".
  Machine m(MachineA(2));
  ClhtMap store(m, 8192);
  YcsbConfig cfg;
  cfg.workload = YcsbWorkload::kC;
  cfg.num_keys = 3000;
  cfg.value_size = 512;
  cfg.threads = 2;
  cfg.ops_per_thread = 600;
  YcsbLoad(m, store, cfg);
  DirtBuster db(m);
  const DirtBusterReport report = db.Analyze([&] { YcsbRun(m, store, cfg); });
  EXPECT_FALSE(report.write_intensive);
}

TEST(MsgClassification, X9FillMsgAdvisedDemote) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 64, 512);
  DirtBuster db(m);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = m.core(0);
    char drain[512];
    for (int i = 0; i < 3000; ++i) {
      (void)inbox.TryWriteStamped(core, i, MsgPrestore::kOff);
      (void)inbox.TryRead(core, drain);
    }
  });
  ASSERT_TRUE(report.write_intensive);
  EXPECT_TRUE(report.writes_before_fence);
  bool fill_found = false;
  for (const FunctionReport& f : report.functions) {
    if (f.name == "fill_msg") {
      fill_found = true;
      // Message buffers are reused (re-written) and fence-bound: demote.
      EXPECT_EQ(f.advice, Advice::kDemote);
    }
  }
  EXPECT_TRUE(fill_found);
}

TEST(TensorClassification, EvaluatorAdvisedClean) {
  Machine m(MachineA(1));
  TrainingConfig cfg;
  cfg.batch_size = 8;
  cfg.features = 1024;
  CnnTrainingProxy proxy(m, cfg);
  DirtBuster db(m);
  const DirtBusterReport report =
      db.Analyze([&] { proxy.Step(m.core(0)); });
  ASSERT_TRUE(report.write_intensive);
  bool evaluator_found = false;
  for (const FunctionReport& f : report.functions) {
    if (f.name.find("TensorEvaluator") != std::string::npos) {
      evaluator_found = true;
      EXPECT_GT(f.analysis.seq_write_fraction, 0.5);
    }
    if (f.name == "im2col_scratch") {
      // Non-sequential scratch: no pre-store (§7.2.1 "they do not write
      // data sequentially").
      EXPECT_EQ(f.advice, Advice::kNone);
    }
  }
  EXPECT_TRUE(evaluator_found);
}

}  // namespace
}  // namespace prestore
