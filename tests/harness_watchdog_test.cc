// RunParallel robustness: worker exceptions propagate to the caller (instead
// of std::terminate), and the wall-clock watchdog aborts wedged runs with
// per-core diagnostics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/sim/harness.h"
#include "src/sim/machine.h"

namespace prestore {
namespace {

TEST(RunParallelExceptions, WorkerExceptionPropagates) {
  Machine machine(MachineA(2));
  EXPECT_THROW(
      RunParallel(machine, 2,
                  [](Core& core, uint32_t tid) {
                    core.Execute(10);
                    if (tid == 1) {
                      throw std::runtime_error("worker failed");
                    }
                  }),
      std::runtime_error);
}

TEST(RunParallelExceptions, FirstExceptionWinsAndAllWorkersJoin) {
  Machine machine(MachineA(4));
  std::atomic<int> completed{0};
  try {
    RunParallel(machine, 4, [&](Core& core, uint32_t tid) {
      core.Execute(10);
      if (tid == 0) {
        throw std::logic_error("first");
      }
      // The other workers keep running and must be joined, not abandoned.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ++completed;
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(completed.load(), 3);
}

TEST(RunParallelExceptions, SingleThreadInlinePathPropagates) {
  Machine machine(MachineA(1));
  EXPECT_THROW(RunParallel(machine, 1,
                           [](Core&, uint32_t) {
                             throw std::runtime_error("inline");
                           }),
               std::runtime_error);
}

TEST(RunParallelWatchdog, CompletedRunIsUnaffected) {
  Machine machine(MachineA(2));
  RunParallelOptions options;
  options.watchdog_ms = 10000;
  const uint64_t cycles = RunParallel(
      machine, 2, [](Core& core, uint32_t) { core.Execute(1000); }, options);
  EXPECT_GE(cycles, 1000u);
}

TEST(RunParallelWatchdogDeathTest, AbortsWedgedRunWithDiagnostics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Machine machine(MachineA(2));
  RunParallelOptions options;
  options.watchdog_ms = 200;
  EXPECT_DEATH(
      RunParallel(
          machine, 2,
          [](Core& core, uint32_t tid) {
            core.Execute(100);
            if (tid == 1) {  // core 1 wedges (host-time stall)
              std::this_thread::sleep_for(std::chrono::seconds(60));
            }
          },
          options),
      "RunParallel watchdog.*STILL RUNNING");
}

}  // namespace
}  // namespace prestore
