// The replicated serving cluster (DESIGN.md §11): consistent-hash
// placement properties, R-way replication reaching every replica,
// kill-failover with zero lost acknowledged writes, drain-rejoin hinted
// handoff, and byte-identical replay of the request outcome log and the
// injector event log under the same seed + fault plan.
//
// Every cluster run here uses max_inflight = 1 — the fully deterministic
// regime (see the cluster_loadgen.cc header): each logical client has at
// most one request outstanding, so its health view and failover decisions
// are a pure function of its own schedule.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/robust/fault_injector.h"
#include "src/serve/cluster.h"

namespace prestore {
namespace {

ServeConfig SmallCluster(uint32_t nodes, uint32_t replication) {
  ServeConfig cfg;
  cfg.ycsb.workload = YcsbWorkload::kA;
  cfg.ycsb.num_keys = 512;
  cfg.ycsb.value_size = 256;
  cfg.ycsb.threads = 2;  // driver host threads
  cfg.ycsb.ops_per_thread = 60;
  cfg.ycsb.arena_slots = 64;
  cfg.num_shards = 2;
  cfg.batch_max = 4;
  cfg.batch_window_cycles = 600;
  cfg.open_loop = true;
  cfg.open_loop_interval = 40000;
  cfg.max_inflight = 1;
  cfg.logical_clients = 4;
  cfg.cluster_nodes = nodes;
  cfg.replication_factor = replication;
  cfg.virtual_nodes = 32;
  cfg.net_latency_cycles = 500;
  return cfg;
}

std::vector<MachineConfig> Nodes(uint32_t count) {
  std::vector<MachineConfig> configs;
  for (uint32_t n = 0; n < count; ++n) {
    switch (n % 3) {
      case 0:
        configs.push_back(MachineA(1));
        break;
      case 1:
        configs.push_back(MachineBFast(1));
        break;
      default:
        configs.push_back(MachineBSlow(1));
        break;
    }
  }
  return configs;
}

uint64_t SpanOf(const ServeConfig& cfg) {
  return cfg.open_loop_interval *
         static_cast<uint64_t>(cfg.ycsb.ops_per_thread);
}

FaultPlan OneNodeFault(FaultKind kind, uint32_t node, uint64_t at,
                       uint64_t duration, double magnitude = 1.0) {
  FaultPlan plan;
  plan.seed = 29;
  plan.specs.push_back(FaultSpec{.kind = kind,
                                 .mean_period_cycles = at,
                                 .duration_cycles = duration,
                                 .magnitude = magnitude,
                                 .count = 1,
                                 .node = node});
  return plan;
}

}  // namespace

TEST(ShardRouterTest, PlacementIsDistinctDeterministicAndCovering) {
  const ShardRouter router(5, 64, 3, 0x5ca1ab1e);
  const ShardRouter router2(5, 64, 3, 0x5ca1ab1e);
  std::set<uint32_t> primaries;
  for (uint64_t key = 1; key <= 4096; ++key) {
    uint32_t a[3];
    uint32_t b[3];
    router.Placement(key, a);
    router2.Placement(key, b);
    // Deterministic: independent routers with the same seed agree.
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_LT(a[i], 5u);
    }
    // Distinct replicas.
    EXPECT_NE(a[0], a[1]);
    EXPECT_NE(a[0], a[2]);
    EXPECT_NE(a[1], a[2]);
    EXPECT_EQ(a[0], router.Primary(key));
    primaries.insert(a[0]);
  }
  // Coverage: with 64 virtual points per node, every node is primary for
  // some key in a few thousand draws.
  EXPECT_EQ(primaries.size(), 5u);
}

TEST(ShardRouterTest, FullReplicationPlacesOnEveryNode) {
  const ShardRouter router(3, 32, 3, 1);
  for (uint64_t key = 1; key <= 256; ++key) {
    uint32_t out[3];
    router.Placement(key, out);
    std::set<uint32_t> nodes(out, out + 3);
    EXPECT_EQ(nodes.size(), 3u);
  }
}

TEST(KvClusterTest, ReplicationReachesEveryReplica) {
  const ServeConfig cfg = SmallCluster(3, 2);
  KvCluster cluster(cfg, Nodes(3), nullptr);
  ClusterRunOptions options;
  options.record_outcomes = true;
  const ClusterResult r = RunClusterYcsb(cluster, options);

  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(r.refusals, 0u);
  EXPECT_GT(r.acked_puts, 0u);
  EXPECT_EQ(r.lost_acked_puts, 0u);

  // Every acked PUT is applied on BOTH nodes of its placement: semi-sync
  // replication enqueues the replica write before the ack.
  uint64_t checked = 0;
  std::istringstream in(r.outcome_log);
  std::string line;
  while (std::getline(in, line)) {
    unsigned long long client = 0;
    unsigned long long seq = 0;
    unsigned long long key = 0;
    char op[8] = {0};
    int node = -1;
    char status[8] = {0};
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "c=%llu seq=%llu op=%7[a-z] key=%llu node=%d "
                          "status=%7[a-z]",
                          &client, &seq, op, &key, &node, status),
              6)
        << line;
    if (std::string(op) != "put" || std::string(status) != "ok") {
      continue;
    }
    const uint64_t token = KvCluster::Token(client, seq);
    uint32_t placement[2];
    cluster.router().Placement(key, placement);
    EXPECT_TRUE(cluster.AppliedOn(placement[0], token)) << line;
    EXPECT_TRUE(cluster.AppliedOn(placement[1], token)) << line;
    ++checked;
  }
  EXPECT_EQ(checked, r.acked_puts);

  // Replica traffic actually flowed (not everything coordinated locally).
  uint64_t applied = 0;
  for (const NodeReport& n : r.nodes) {
    applied += n.applied_replications;
  }
  EXPECT_GT(applied, 0u);
}

TEST(KvClusterTest, KillFailoverLosesNoAckedWrites) {
  const ServeConfig cfg = SmallCluster(3, 3);
  FaultInjector injector(
      OneNodeFault(FaultKind::kNodeKill, 1, SpanOf(cfg) / 2, 1));
  KvCluster cluster(cfg, Nodes(3), &injector);
  ASSERT_TRUE(cluster.NodeEverKilled(1));
  ASSERT_FALSE(cluster.NodeEverKilled(0));

  const ClusterResult r = RunClusterYcsb(cluster);
  // Every request resolves: two live replicas absorb the kill.
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(r.ops, static_cast<uint64_t>(cluster.num_clients()) *
                       cfg.ycsb.ops_per_thread);
  // The kill was hit and detoured around.
  EXPECT_GT(r.refusals + r.nacks, 0u);
  EXPECT_GT(r.failovers, 0u);
  // The durability bar.
  EXPECT_GT(r.acked_puts, 0u);
  EXPECT_EQ(r.lost_acked_puts, 0u);
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_TRUE(r.nodes[1].killed);
  EXPECT_FALSE(r.nodes[0].killed);
  // Live coordinators skipped replicating to the dead node.
  EXPECT_GT(r.nodes[0].repl_skipped_dead + r.nodes[2].repl_skipped_dead, 0u);
}

TEST(KvClusterTest, DrainRejoinReplaysHintedHandoff) {
  ServeConfig cfg = SmallCluster(3, 3);
  cfg.ycsb.ops_per_thread = 80;
  // Drain node 2 for a window in the middle of the run; it rejoins well
  // before the schedule ends.
  const uint64_t at = SpanOf(cfg) / 3;
  const uint64_t duration = SpanOf(cfg) / 4;
  FaultInjector injector(
      OneNodeFault(FaultKind::kNodeDrain, 2, at, duration));
  KvCluster cluster(cfg, Nodes(3), &injector);
  ASSERT_TRUE(cluster.NodeEverDrained(2));
  ASSERT_FALSE(cluster.NodeEverKilled(2));

  ClusterRunOptions options;
  options.record_outcomes = true;
  const ClusterResult r = RunClusterYcsb(cluster, options);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(r.lost_acked_puts, 0u);
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_TRUE(r.nodes[2].drained);

  // Coordinators buffered hints for the drained node and replayed them on
  // rejoin; nothing was dropped (the node was never killed).
  uint64_t stored = 0;
  uint64_t replayed = 0;
  uint64_t dropped = 0;
  for (const NodeReport& n : r.nodes) {
    stored += n.hints_stored;
    replayed += n.hints_replayed;
    dropped += n.hints_dropped;
  }
  EXPECT_GT(stored, 0u);
  EXPECT_EQ(replayed, stored);
  EXPECT_EQ(dropped, 0u);

  // After replay the rejoined node holds EVERY acked write placed on it,
  // including those acked while it was draining (R=3: placement is all
  // nodes).
  std::istringstream in(r.outcome_log);
  std::string line;
  uint64_t checked = 0;
  while (std::getline(in, line)) {
    unsigned long long client = 0;
    unsigned long long seq = 0;
    unsigned long long key = 0;
    char op[8] = {0};
    int node = -1;
    char status[8] = {0};
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "c=%llu seq=%llu op=%7[a-z] key=%llu node=%d "
                          "status=%7[a-z]",
                          &client, &seq, op, &key, &node, status),
              6)
        << line;
    if (std::string(op) != "put" || std::string(status) != "ok") {
      continue;
    }
    EXPECT_TRUE(cluster.AppliedOn(2, KvCluster::Token(client, seq)))
        << "acked write missing on rejoined node: " << line;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(KvClusterTest, DegradeSlowsButServesEverything) {
  ServeConfig cfg = SmallCluster(2, 2);
  const uint64_t at = SpanOf(cfg) / 3;
  FaultInjector injector(OneNodeFault(FaultKind::kNodeDegrade, 0, at,
                                      SpanOf(cfg) / 3, /*magnitude=*/15000));
  KvCluster cluster(cfg, Nodes(2), &injector);
  const ClusterResult r = RunClusterYcsb(cluster);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(r.refusals, 0u);  // degrade throttles, it does not refuse
  EXPECT_EQ(r.lost_acked_puts, 0u);
  EXPECT_EQ(r.ops, static_cast<uint64_t>(cluster.num_clients()) *
                       cfg.ycsb.ops_per_thread);
}

TEST(KvClusterTest, GovernedReplicasKeepPolicyDuringHandoffReplay) {
  // The governor stays attached on every replica while hints replay: the
  // run must complete with per-shard policy telemetry on every node.
  ServeConfig cfg = SmallCluster(3, 3);
  cfg.ycsb.ops_per_thread = 80;
  cfg.governed = true;
  cfg.governor.window_hints = 8;
  cfg.governor.probe_period = 16;
  cfg.governor.probe_window = 4;
  cfg.governor.global_eval_window = 64;
  FaultInjector injector(OneNodeFault(FaultKind::kNodeDrain, 1,
                                      SpanOf(cfg) / 3, SpanOf(cfg) / 4));
  KvCluster cluster(cfg, Nodes(3), &injector);
  const ClusterResult r = RunClusterYcsb(cluster);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_EQ(r.lost_acked_puts, 0u);
  for (const NodeReport& n : r.nodes) {
    EXPECT_EQ(n.shard_policies.size(), cfg.num_shards) << "node " << n.node;
  }
}

TEST(KvClusterTest, OutcomeAndEventLogsReplayByteIdentically) {
  // One logical client per driver lane: the injector's per-lane rejection
  // log is then single-client and replays byte-identically along with the
  // outcome log (the cluster determinism argument, DESIGN.md §11).
  ServeConfig cfg = SmallCluster(3, 3);
  cfg.logical_clients = 2;  // == ycsb.threads driver lanes

  auto run = [&cfg](std::string* events) {
    FaultInjector injector(
        OneNodeFault(FaultKind::kNodeKill, 0, SpanOf(cfg) / 2, 1));
    KvCluster cluster(cfg, Nodes(3), &injector);
    ClusterRunOptions options;
    options.record_outcomes = true;
    const ClusterResult r = RunClusterYcsb(cluster, options);
    *events = injector.EventLog();
    return r;
  };

  std::string events_a;
  std::string events_b;
  const ClusterResult a = run(&events_a);
  const ClusterResult b = run(&events_b);
  ASSERT_FALSE(a.outcome_log.empty());
  EXPECT_EQ(a.outcome_log, b.outcome_log);
  EXPECT_EQ(events_a, events_b);
  EXPECT_GT(a.refusals + a.nacks, 0u);  // the log contains fault traffic
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.acked_puts, b.acked_puts);
}

TEST(KvClusterTest, PreloadPlacesKeysOnReplicaSetOnly) {
  ServeConfig cfg = SmallCluster(3, 2);
  cfg.ycsb.num_keys = 128;
  KvCluster cluster(cfg, Nodes(3), nullptr);
  cluster.Preload();
  for (uint64_t key = 1; key <= cfg.ycsb.num_keys; ++key) {
    uint32_t placement[2];
    cluster.router().Placement(key, placement);
    const uint32_t shard = cluster.ShardFor(key);
    for (uint32_t n = 0; n < 3; ++n) {
      const bool is_replica = n == placement[0] || n == placement[1];
      const SimAddr value =
          cluster.store(n, shard).Get(cluster.machine(n).core(shard), key);
      EXPECT_EQ(value != 0, is_replica) << "key " << key << " node " << n;
    }
  }
}

}  // namespace prestore
