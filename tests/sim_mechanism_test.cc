// End-to-end checks that the two performance problems the paper identifies
// (§4.1 random evictions -> write amplification; §4.2 delayed publication ->
// fence stalls) emerge from the simulator, and that pre-stores fix them.
#include <gtest/gtest.h>

#include "src/sim/array.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

// Listing 1 workload: threads write random elements, optionally clean them,
// then re-read a field. Returns (simulated cycles, write amplification).
struct Listing1Result {
  uint64_t cycles;
  double amplification;
};

Listing1Result RunListing1(uint32_t threads, uint32_t elt_size, bool clean,
                           uint32_t iters_per_thread) {
  MachineConfig cfg = MachineA(threads);
  Machine m(cfg);
  const uint64_t nb_elements = (64ULL << 20) / elt_size;  // 64MB working set
  const SimAddr elts = m.Alloc(nb_elements * elt_size);
  std::vector<uint8_t> payload(elt_size, 0x7f);

  m.ResetStats();
  const uint64_t cycles =
      RunParallel(m, threads, [&](Core& core, uint32_t tid) {
        Xoshiro256 rng(100 + tid);
        uint64_t total = 0;
        for (uint32_t i = 0; i < iters_per_thread; ++i) {
          const uint64_t idx = rng.Below(nb_elements);
          const SimAddr e = elts + idx * elt_size;
          core.MemCopyToSim(e, payload.data(), elt_size);
          if (clean) {
            core.Prestore(e, elt_size, PrestoreOp::kClean);
          }
          total += core.LoadU64(e);
        }
        (void)total;
      });
  m.FlushAll();
  return {cycles, m.target().Stats().WriteAmplification()};
}

TEST(Problem1, BaselineRandomEvictionsAmplify) {
  const auto r = RunListing1(2, 1024, /*clean=*/false, 3000);
  EXPECT_GT(r.amplification, 1.5);
}

TEST(Problem1, CleanEliminatesAmplification) {
  const auto r = RunListing1(2, 1024, /*clean=*/true, 3000);
  EXPECT_LT(r.amplification, 1.3);
}

TEST(Problem1, CleanImprovesMultithreadedRuntime) {
  const auto base = RunListing1(4, 1024, /*clean=*/false, 2000);
  const auto clean = RunListing1(4, 1024, /*clean=*/true, 2000);
  EXPECT_LT(clean.cycles, base.cycles);
  // The paper reports 2.2-3x at >= 2 threads; demand at least 1.3x here.
  EXPECT_GT(static_cast<double>(base.cycles) / clean.cycles, 1.3);
}

TEST(Problem1, SingleThreadGainSmallerThanMultiThread) {
  const auto base1 = RunListing1(1, 1024, false, 3000);
  const auto clean1 = RunListing1(1, 1024, true, 3000);
  const auto base4 = RunListing1(4, 1024, false, 2000);
  const auto clean4 = RunListing1(4, 1024, true, 2000);
  const double gain1 = static_cast<double>(base1.cycles) / clean1.cycles;
  const double gain4 = static_cast<double>(base4.cycles) / clean4.cycles;
  EXPECT_GT(gain4, gain1 * 0.9);  // multi-thread gain at least comparable
  EXPECT_GT(gain4, 1.2);
}

// Listing 2 workload: write a line, optionally demote, do n L1 reads, fence.
uint64_t RunListing2(const MachineConfig& cfg, bool demote, uint32_t n_reads,
                     uint32_t iters) {
  Machine m(cfg);
  const uint64_t num_elements = 4096;
  const SimAddr array = m.Alloc(num_elements * 128, Region::kTarget);
  const SimAddr l1_data = m.Alloc(64 * 128, Region::kDram);
  std::vector<uint8_t> payload(128, 0x3c);

  // Warm the L1 read set.
  Core& c0 = m.core(0);
  for (uint32_t i = 0; i < 64; ++i) {
    c0.LoadU64(l1_data + i * 128);
  }

  return RunOnCore(m, [&](Core& core) {
    Xoshiro256 rng(7);
    for (uint32_t it = 0; it < iters; ++it) {
      const uint64_t idx = rng.Below(num_elements);
      core.MemCopyToSim(array + idx * 128, payload.data(), 128);
      if (demote) {
        core.Prestore(array + idx * 128, 128, PrestoreOp::kDemote);
      }
      for (uint32_t i = 0; i < n_reads; ++i) {
        core.LoadU64(l1_data + (i % 64) * 128);
      }
      core.Fence();
    }
  });
}

TEST(Problem2, DemoteHidesPublicationLatency) {
  const MachineConfig cfg = MachineBFast(1);
  const uint64_t base = RunListing2(cfg, false, 30, 2000);
  const uint64_t demote = RunListing2(cfg, true, 30, 2000);
  EXPECT_LT(demote, base);
  EXPECT_GT(static_cast<double>(base) / demote, 1.15);
}

TEST(Problem2, NoReadsMeansNoOverlapWindow) {
  // With no work between demote and fence there is nothing to overlap with:
  // the gain must be much smaller than at the sweet spot.
  const MachineConfig cfg = MachineBFast(1);
  const double gain0 = static_cast<double>(RunListing2(cfg, false, 0, 2000)) /
                       RunListing2(cfg, true, 0, 2000);
  const double gain30 = static_cast<double>(RunListing2(cfg, false, 30, 2000)) /
                        RunListing2(cfg, true, 30, 2000);
  EXPECT_GT(gain30, gain0 + 0.05);
}

TEST(Problem2, ManyReadsDominateRuntime) {
  // With a huge read block the benchmark is read-bound and the relative gain
  // asymptotically vanishes (right side of Figure 5).
  const MachineConfig cfg = MachineBFast(1);
  const double gain_mid = static_cast<double>(RunListing2(cfg, false, 30, 1000)) /
                          RunListing2(cfg, true, 30, 1000);
  const double gain_huge =
      static_cast<double>(RunListing2(cfg, false, 2000, 200)) /
      RunListing2(cfg, true, 2000, 200);
  EXPECT_GT(gain_mid, gain_huge);
  EXPECT_LT(gain_huge, 1.10);
}

TEST(Problem2, SlowFpgaPeaksAtLargerWindow) {
  // Figure 5: the higher the device latency, the larger the read window
  // needed to fully hide publication. Compare gains at a small window:
  // B-Fast should already profit more than B-Slow relative to its own peak.
  const double fast_small =
      static_cast<double>(RunListing2(MachineBFast(1), false, 20, 1000)) /
      RunListing2(MachineBFast(1), true, 20, 1000);
  const double slow_small =
      static_cast<double>(RunListing2(MachineBSlow(1), false, 20, 1000)) /
      RunListing2(MachineBSlow(1), true, 20, 1000);
  const double slow_large =
      static_cast<double>(RunListing2(MachineBSlow(1), false, 150, 600)) /
      RunListing2(MachineBSlow(1), true, 150, 600);
  // B-Slow keeps improving with a larger window.
  EXPECT_GT(slow_large, slow_small);
  (void)fast_small;
}

TEST(Pitfall, CleaningHotLineIsCatastrophic) {
  // Listing 3 (§5): cleaning a constantly rewritten line forces a memory
  // writeback per iteration; the paper reports ~75x. Demand >= 10x.
  MachineConfig cfg = MachineA(1);
  Machine m(cfg);
  const SimAddr line = m.Alloc(64);
  std::vector<uint8_t> payload(64, 1);

  const uint64_t base = RunOnCore(m, [&](Core& core) {
    for (int i = 0; i < 5000; ++i) {
      core.MemCopyToSim(line, payload.data(), 64);
    }
  });
  const uint64_t with_clean = RunOnCore(m, [&](Core& core) {
    for (int i = 0; i < 5000; ++i) {
      core.MemCopyToSim(line, payload.data(), 64);
      core.Prestore(line, 64, PrestoreOp::kClean);
    }
  });
  EXPECT_GT(static_cast<double>(with_clean) / base, 10.0);
}

TEST(Pitfall, SkipSlowerThanCleanWhenDataReRead) {
  // §5: skipping the cache makes the re-read (line 5 of Listing 1) go to
  // memory; with small elements skipping must lose to cleaning.
  MachineConfig cfg = MachineA(1);
  const uint32_t elt = 64;
  const uint64_t n = (16ULL << 20) / elt;
  auto run = [&](bool skip) {
    Machine m(cfg);
    const SimAddr elts = m.Alloc(n * elt);
    std::vector<uint8_t> payload(elt, 0x11);
    return RunOnCore(m, [&](Core& core) {
      Xoshiro256 rng(3);
      uint64_t total = 0;
      for (int i = 0; i < 4000; ++i) {
        const SimAddr e = elts + rng.Below(n) * elt;
        if (skip) {
          core.StoreNt(e, payload.data(), elt);
        } else {
          core.MemCopyToSim(e, payload.data(), elt);
          core.Prestore(e, elt, PrestoreOp::kClean);
        }
        total += core.LoadU64(e);  // re-read
      }
      (void)total;
    });
  };
  EXPECT_GT(run(/*skip=*/true), run(/*skip=*/false));
}

}  // namespace
}  // namespace prestore
