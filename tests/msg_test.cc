#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/msg/x9.h"
#include "src/sim/harness.h"

namespace prestore {
namespace {

TEST(X9, WriteThenRead) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 8, 256);
  Core& core = m.core(0);
  char payload[256];
  std::memset(payload, 0x5c, sizeof(payload));
  ASSERT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
  char out[256] = {};
  ASSERT_TRUE(inbox.TryRead(core, out));
  EXPECT_EQ(std::memcmp(payload, out, sizeof(payload)), 0);
}

TEST(X9, EmptyInboxReadFails) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 8, 128);
  char out[128];
  EXPECT_FALSE(inbox.TryRead(m.core(0), out));
}

TEST(X9, FullInboxWriteFails) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 4, 128);
  Core& core = m.core(0);
  char payload[128] = {};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
  }
  EXPECT_FALSE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
  char out[128];
  EXPECT_TRUE(inbox.TryRead(core, out));
  EXPECT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
}

TEST(X9, FifoOrderPreserved) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 16, 64);
  Core& core = m.core(0);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(inbox.TryWriteStamped(core, 1000 + i, MsgPrestore::kOff));
  }
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t marker = 0;
    uint64_t stamp = 0;
    ASSERT_TRUE(inbox.TryReadStamped(core, &marker, &stamp));
    EXPECT_EQ(marker, 1000 + i);
  }
}

TEST(X9, DemoteDoesNotCorruptMessages) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 16, 512);
  Core& core = m.core(0);
  char payload[512];
  for (int i = 0; i < 512; ++i) {
    payload[i] = static_cast<char>(i * 11);
  }
  ASSERT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kDemote));
  core.Fence();
  char out[512];
  ASSERT_TRUE(inbox.TryRead(m.core(1), out));
  EXPECT_EQ(std::memcmp(payload, out, sizeof(payload)), 0);
}

TEST(X9, ProducerConsumerAcrossCores) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 32, 256);
  constexpr uint64_t kMessages = 500;
  uint64_t received = 0;
  RunParallel(m, 2, [&](Core& core, uint32_t tid) {
    if (tid == 0) {
      for (uint64_t i = 0; i < kMessages; ++i) {
        while (!inbox.TryWriteStamped(core, i, MsgPrestore::kOff)) {
          core.SpinPause(20);
        }
      }
    } else {
      uint64_t expected = 0;
      while (expected < kMessages) {
        uint64_t marker = 0;
        uint64_t stamp = 0;
        if (inbox.TryReadStamped(core, &marker, &stamp)) {
          EXPECT_EQ(marker, expected);
          ++expected;
          ++received;
        } else {
          core.SpinPause(20);
        }
      }
    }
  });
  EXPECT_EQ(received, kMessages);
}

TEST(X9, MultiProducerStressNoLostOrDuplicatedMarkers) {
  // Several producer cores hammer ONE inbox while a single consumer drains
  // it — the exact shape of the serving subsystem's admission queues. The
  // slot-claim CAS in TryWrite must guarantee that every marker arrives
  // exactly once even when producers race on the same tail slot, and that
  // a full inbox yields `false` (not a hang or a corrupted slot).
  constexpr uint32_t kProducers = 3;
  constexpr uint64_t kPerProducer = 400;
  Machine m(MachineBFast(kProducers + 1));
  X9Inbox inbox(m, 16, 64);
  std::vector<uint64_t> seen(kProducers * kPerProducer, 0);
  std::atomic<uint64_t> full_returns{0};
  RunParallel(m, kProducers + 1, [&](Core& core, uint32_t tid) {
    if (tid < kProducers) {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t marker = tid * kPerProducer + i;
        while (!inbox.TryWriteStamped(core, marker, MsgPrestore::kOff)) {
          full_returns.fetch_add(1, std::memory_order_relaxed);
          core.SpinPause(20);
        }
      }
    } else {
      uint64_t received = 0;
      uint64_t last_per_producer[kProducers] = {};
      while (received < kProducers * kPerProducer) {
        uint64_t marker = 0;
        uint64_t stamp = 0;
        if (!inbox.TryReadStamped(core, &marker, &stamp)) {
          core.SpinPause(20);
          continue;
        }
        ASSERT_LT(marker, seen.size());
        ++seen[marker];
        // Per-producer FIFO: a producer's markers arrive in send order.
        const uint64_t producer = marker / kPerProducer;
        EXPECT_GE(marker + 1, last_per_producer[producer]);
        last_per_producer[producer] = marker + 1;
        ++received;
      }
    }
  });
  for (uint64_t count : seen) {
    ASSERT_EQ(count, 1u);  // no lost, no duplicated markers
  }
  // 3 producers × 400 messages through a 16-slot ring: the inbox must have
  // reported "full / claimed" at least once (the backpressure signal).
  EXPECT_GT(full_returns.load(), 0u);
}

TEST(X9, FullInboxFalseUnderConcurrentProducers) {
  // A strictly full inbox (no consumer) must return false to every
  // producer, from any core, without corrupting the published messages.
  constexpr uint32_t kProducers = 2;
  Machine m(MachineBFast(kProducers));
  X9Inbox inbox(m, 4, 64);
  std::atomic<uint64_t> published{0};
  RunParallel(m, kProducers, [&](Core& core, uint32_t tid) {
    for (uint64_t i = 0; i < 64; ++i) {
      if (inbox.TryWriteStamped(core, tid * 1000 + i, MsgPrestore::kOff)) {
        published.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(published.load(), 4u);  // exactly the ring capacity
  // Everything published drains intact.
  Core& core = m.core(0);
  uint64_t marker = 0;
  uint64_t stamp = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(inbox.TryReadStamped(core, &marker, &stamp));
  }
  EXPECT_FALSE(inbox.TryReadStamped(core, &marker, &stamp));
}

TEST(X9, DemoteCutsSendLatency) {
  // §7.3.2: demoting the freshly filled message before the CAS reduces the
  // send latency ("profiling shows that the pre-store reduces the time spent
  // in the compare-and-swap"). Measured on the producer's clock, with a
  // real consumer draining from another core.
  auto send_cycles = [&](MsgPrestore mode) {
    Machine m(MachineBFast(2));
    X9Inbox inbox(m, 64, 512);
    constexpr uint64_t kMessages = 2000;
    uint64_t producer_cycles = 0;
    RunParallel(m, 2, [&](Core& core, uint32_t tid) {
      if (tid == 0) {
        for (uint64_t i = 0; i < kMessages; ++i) {
          // Count only the successful send call: full-inbox spinning depends
          // on host scheduling, not on the pre-store under study.
          while (true) {
            const uint64_t t0 = core.now();
            if (inbox.TryWriteStamped(core, i, mode)) {
              producer_cycles += core.now() - t0;
              break;
            }
            core.SpinPause(50);
          }
        }
      } else {
        char drain[512];
        uint64_t received = 0;
        while (received < kMessages) {
          if (inbox.TryRead(core, drain)) {
            ++received;
          } else {
            core.SpinPause(30);
          }
        }
      }
    });
    return producer_cycles / kMessages;
  };
  const uint64_t base = send_cycles(MsgPrestore::kOff);
  const uint64_t demote = send_cycles(MsgPrestore::kDemote);
  EXPECT_LT(demote, base);
}

// ---- Owner-side admission control (cluster failover, DESIGN.md §11) ----

TEST(X9, ClosedInboxRejectsWritesButStillDrains) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 8, 128);
  Core& core = m.core(0);
  char payload[128] = {};
  ASSERT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
  ASSERT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));

  inbox.Close();
  EXPECT_TRUE(inbox.closed());
  // Senders see the retry-after signal, not an error and not a hang.
  EXPECT_FALSE(inbox.CanWrite());
  EXPECT_FALSE(inbox.TryWrite(core, payload, MsgPrestore::kOff));

  // The owner still drains what was accepted before the close.
  EXPECT_FALSE(inbox.Quiesced());
  char out[128];
  EXPECT_TRUE(inbox.Peek());
  EXPECT_TRUE(inbox.TryRead(core, out));
  EXPECT_TRUE(inbox.TryRead(core, out));
  EXPECT_FALSE(inbox.TryRead(core, out));
  EXPECT_TRUE(inbox.Quiesced());

  // Reopen (a drained node rejoining) restores admission.
  inbox.Reopen();
  EXPECT_FALSE(inbox.closed());
  EXPECT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
}

TEST(X9, QuiescedTracksClaimedIndices) {
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 8, 64);
  Core& core = m.core(0);
  EXPECT_TRUE(inbox.Quiesced());
  char payload[64] = {};
  ASSERT_TRUE(inbox.TryWrite(core, payload, MsgPrestore::kOff));
  EXPECT_FALSE(inbox.Quiesced());
  char out[64];
  ASSERT_TRUE(inbox.TryRead(core, out));
  EXPECT_TRUE(inbox.Quiesced());
}

TEST(X9, CloseMidStreamSenderObservesRejectionAndNothingStrands) {
  // A producer streams messages while the owner closes the inbox mid-run
  // (a kill/drain hitting a replication channel). The producer must
  // observe the rejection and stop — no hang — and the owner's
  // drain-until-Quiesced must consume every message the producer
  // successfully published, including the one straggler that may slip in
  // after Close() (it passed the closed check first).
  Machine m(MachineBFast(2));
  X9Inbox inbox(m, 8, 64);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> producer_done{false};
  std::atomic<bool> saw_rejection{false};
  uint64_t consumed = 0;

  RunParallel(m, 2, [&](Core& core, uint32_t tid) {
    if (tid == 0) {
      // Producer: send until the owner turns us away.
      uint64_t marker = 0;
      while (true) {
        if (inbox.TryWriteStamped(core, ++marker, MsgPrestore::kOff)) {
          published.fetch_add(1, std::memory_order_relaxed);
        } else if (inbox.closed()) {
          saw_rejection.store(true, std::memory_order_relaxed);
          break;  // retry-after from a dead node: give up, no spin-forever
        } else {
          core.SpinPause(20);  // transient full: keep going
        }
      }
      producer_done.store(true, std::memory_order_release);
    } else {
      // Owner: accept a few messages, then close mid-stream and drain.
      uint64_t marker = 0;
      uint64_t stamp = 0;
      while (consumed < 5) {
        if (inbox.TryReadStamped(core, &marker, &stamp)) {
          ++consumed;
        } else {
          core.SpinPause(20);
        }
      }
      inbox.Close();
      while (!producer_done.load(std::memory_order_acquire) ||
             !inbox.Quiesced()) {
        if (inbox.TryReadStamped(core, &marker, &stamp)) {
          ++consumed;
        } else {
          core.SpinPause(20);
        }
      }
    }
  });

  EXPECT_TRUE(saw_rejection.load());
  // Every successfully published message was consumed: an acked send is
  // never stranded behind a closed inbox.
  EXPECT_EQ(consumed, published.load());
  EXPECT_TRUE(inbox.Quiesced());
}

}  // namespace
}  // namespace prestore
