// DirtBuster end-to-end: synthetic workloads with known access patterns must
// be classified correctly and receive the paper's recommendations.
#include <gtest/gtest.h>

#include "src/dirtbuster/dirtbuster.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

class DirtBusterTest : public ::testing::Test {
 protected:
  DirtBusterTest() : machine_(MachineA(2)) {}

  FuncToken Tok(const std::string& name, const std::string& loc) {
    return FuncToken{machine_.registry().Intern(name, loc)};
  }

  Machine machine_;
};

TEST_F(DirtBusterTest, ReadMostlyWorkloadNotWriteIntensive) {
  const SimAddr data = machine_.Alloc(1 << 20);
  const FuncToken reader = Tok("reader", "read.cc:1");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, reader);
    uint64_t sum = 0;
    for (int i = 0; i < 200000; ++i) {
      sum += core.LoadU64(data + (i % 16384) * 64);
    }
    (void)sum;
  });
  EXPECT_FALSE(report.write_intensive);
  EXPECT_TRUE(report.functions.empty());  // steps 2-3 skipped (§7.1)
  EXPECT_EQ(report.OverallAdvice(), Advice::kNone);
}

TEST_F(DirtBusterTest, SequentialNeverReusedWriterGetsSkip) {
  const SimAddr data = machine_.Alloc(32 << 20);
  const FuncToken writer = Tok("bulk_write", "bulk.cc:10");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, writer);
    for (uint64_t i = 0; i < (8ULL << 20) / 8; ++i) {
      core.StoreU64(data + i * 8, i);
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  const FunctionReport& f = report.functions.front();
  EXPECT_EQ(f.name, "bulk_write");
  EXPECT_EQ(f.location, "bulk.cc:10");
  EXPECT_GT(f.analysis.seq_write_fraction, 0.9);
  EXPECT_EQ(f.advice, Advice::kSkip);
  EXPECT_TRUE(report.sequential_writer);
}

TEST_F(DirtBusterTest, SequentialReReadWriterGetsClean) {
  const SimAddr data = machine_.Alloc(32 << 20);
  const FuncToken writer = Tok("write_then_read", "wr.cc:20");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, writer);
    constexpr uint64_t kChunk = 4096 / 8;
    for (uint64_t c = 0; c < 1024; ++c) {
      const SimAddr base = data + c * 4096;
      for (uint64_t i = 0; i < kChunk; ++i) {
        core.StoreU64(base + i * 8, i);
      }
      uint64_t sum = 0;
      for (uint64_t i = 0; i < kChunk; ++i) {
        sum += core.LoadU64(base + i * 8);  // re-read soon after writing
      }
      (void)sum;
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  EXPECT_EQ(report.functions.front().advice, Advice::kClean);
}

TEST_F(DirtBusterTest, HotRewrittenLineGetsNone) {
  // The Listing-3 trap: constantly rewriting the same line, no fences.
  const SimAddr line = machine_.Alloc(64);
  const FuncToken writer = Tok("hot_rewrite", "hot.cc:5");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, writer);
    Xoshiro256 rng(1);
    for (int i = 0; i < 100000; ++i) {
      // Write the same cache line in a non-sequential pattern.
      core.StoreU64(line + (rng.Below(8)) * 8, i);
    }
  });
  ASSERT_TRUE(report.write_intensive);
  // Either not sequential enough to qualify, or flagged as rewritten-soon:
  // in both cases the advice must not be clean/skip.
  for (const FunctionReport& f : report.functions) {
    EXPECT_NE(f.advice, Advice::kClean) << f.name;
    EXPECT_NE(f.advice, Advice::kSkip) << f.name;
  }
}

TEST_F(DirtBusterTest, WriteBeforeFenceRewrittenGetsDemote) {
  // X9-style: fill a reused message buffer, then CAS-publish.
  const SimAddr msgs = machine_.Alloc(64 * 256);
  const SimAddr flag = machine_.Alloc(64);
  const FuncToken fill = Tok("fill_msg", "x9.cc:30");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    for (int i = 0; i < 30000; ++i) {
      const SimAddr m = msgs + (i % 64) * 256;  // buffers reused -> rewritten
      {
        ScopedFunction f(core, fill);
        for (int j = 0; j < 32; ++j) {
          core.StoreU64(m + j * 8, i + j);
        }
      }
      uint64_t expected = core.LoadU64(flag);
      core.CasU64(flag, expected, i);  // fence semantics
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  const FunctionReport& f = report.functions.front();
  EXPECT_EQ(f.name, "fill_msg");
  EXPECT_GT(f.analysis.writes_before_fence_fraction, 0.5);
  EXPECT_EQ(f.advice, Advice::kDemote);
  EXPECT_TRUE(report.writes_before_fence);
}

TEST_F(DirtBusterTest, RandomSmallWritesNotRecommended) {
  // The IS `rank` case (§7.4.2): write-intensive but random small writes,
  // never re-read: not sequential, no fences -> no pre-store suggested.
  const SimAddr data = machine_.Alloc(64 << 20);
  const FuncToken rank = Tok("rank", "is.cc:100");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, rank);
    Xoshiro256 rng(3);
    for (int i = 0; i < 150000; ++i) {
      core.StoreU64(data + rng.Below((64ULL << 20) / 8) * 8, i);
    }
  });
  ASSERT_TRUE(report.write_intensive);
  for (const FunctionReport& f : report.functions) {
    EXPECT_EQ(f.advice, Advice::kNone) << f.name;
  }
}

TEST_F(DirtBusterTest, MixedSizeClassesReportedSeparately) {
  // TensorFlow-shaped store profile (§7.2.1): most writes build large
  // never-reused outputs; a significant minority goes to small buffers that
  // are re-read almost immediately. Expected advice: clean, not skip.
  const SimAddr big = machine_.Alloc(64 << 20);
  const SimAddr small_region = machine_.Alloc(16 << 20);
  const FuncToken run = Tok("TensorEvaluator::run", "TensorExecutor.h:272");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    ScopedFunction f(core, run);
    SimAddr big_cursor = big;
    SimAddr small_cursor = small_region;
    for (int outer = 0; outer < 400; ++outer) {
      // Large sequential output chunk (never re-read, never re-written).
      for (int i = 0; i < 512; ++i) {
        core.StoreU64(big_cursor, i);
        big_cursor += 8;
      }
      // Several distinct small (240B) tensors, each written once and
      // re-read immediately (the paper's "re-read 2" class).
      for (int t = 0; t < 8; ++t) {
        for (int i = 0; i < 30; ++i) {
          core.StoreU64(small_cursor + i * 8, i);
          core.LoadU64(small_cursor + i * 8);
        }
        small_cursor += 256;  // separate lines per tensor
      }
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  const FunctionReport& f = report.functions.front();
  EXPECT_GE(f.analysis.classes.size(), 2u);
  EXPECT_EQ(f.advice, Advice::kClean);
  // Report text mentions both an "inf" distance class and the function name.
  const std::string text = report.ToString();
  EXPECT_NE(text.find("TensorEvaluator::run"), std::string::npos);
  EXPECT_NE(text.find("re-read inf"), std::string::npos);
  EXPECT_NE(text.find("Pre-store choice: clean"), std::string::npos);
}

TEST_F(DirtBusterTest, CallchainsReported) {
  const SimAddr data = machine_.Alloc(16 << 20);
  const FuncToken outer = Tok("put", "kv.cc:10");
  const FuncToken inner = Tok("memcpy_like", "libc.cc:1");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    for (int i = 0; i < 3000; ++i) {
      ScopedFunction f1(core, outer);
      ScopedFunction f2(core, inner);
      for (int j = 0; j < 128; ++j) {
        core.StoreU64(data + (i % 1024) * 8192 + j * 8, j);
      }
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  const FunctionReport& f = report.functions.front();
  EXPECT_EQ(f.name, "memcpy_like");
  ASSERT_FALSE(f.top_callchains.empty());
  // The callchain identifies the application-level caller (§6.2.1).
  EXPECT_NE(f.top_callchains.front().find("put"), std::string::npos);
}

TEST_F(DirtBusterTest, SamplerFindsTheHeaviestWriter) {
  const SimAddr data = machine_.Alloc(32 << 20);
  const FuncToken heavy = Tok("heavy_writer", "a.cc:1");
  const FuncToken light = Tok("light_writer", "b.cc:1");
  DirtBuster db(machine_);
  const DirtBusterReport report = db.Analyze([&] {
    Core& core = machine_.core(0);
    {
      ScopedFunction f(core, heavy);
      for (int i = 0; i < 200000; ++i) {
        core.StoreU64(data + i * 8, i);
      }
    }
    {
      ScopedFunction f(core, light);
      for (int i = 0; i < 5000; ++i) {
        core.StoreU64(data + (16 << 20) + i * 8, i);
      }
    }
  });
  ASSERT_TRUE(report.write_intensive);
  ASSERT_FALSE(report.functions.empty());
  EXPECT_EQ(report.functions.front().name, "heavy_writer");
  EXPECT_GT(report.functions.front().store_share, 0.5);
}

}  // namespace
}  // namespace prestore
