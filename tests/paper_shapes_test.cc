// Headline-result regression tests: compact versions of the paper's key
// claims that must never silently regress. (The full sweeps live in bench/.)
#include <gtest/gtest.h>

#include "src/kv/clht.h"
#include "src/kv/ycsb.h"
#include "src/msg/x9.h"
#include "src/nas/nas_common.h"
#include "src/sim/harness.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

TEST(PaperShapes, MachineB_ClhtCleanBeatsBaseline) {
  // Figure 13, compact: YCSB A with 1KB values on B-fast, clean must win.
  auto run = [&](KvWritePolicy policy) {
    Machine m(MachineBFast(4));
    ClhtMap store(m, 8192);
    YcsbConfig cfg;
    cfg.num_keys = 6000;
    cfg.value_size = 1024;
    cfg.threads = 4;
    cfg.ops_per_thread = 400;
    cfg.policy = policy;
    YcsbLoad(m, store, cfg);
    return YcsbRun(m, store, cfg).ThroughputPerMcycle();
  };
  const double base = run(KvWritePolicy::kBaseline);
  const double clean = run(KvWritePolicy::kClean);
  EXPECT_GT(clean, base * 1.10);
}

TEST(PaperShapes, MachineA_NasMgCleanWins) {
  // Figure 9, compact: MG on the proportioned Machine A, 2 instances.
  auto run = [&](NasPrestore mode) {
    MachineConfig cfg = NasBenchMachineA();
    cfg.num_cores = 2;
    Machine m(cfg);
    std::unique_ptr<NasKernel> kernels[2] = {
        MakeNasKernel("mg", m, mode), MakeNasKernel("mg", m, mode)};
    return RunParallel(m, 2, [&](Core& core, uint32_t tid) {
      kernels[tid]->Run(core);
    });
  };
  const uint64_t base = run(NasPrestore::kOff);
  const uint64_t on = run(NasPrestore::kOn);
  EXPECT_LT(on, base);
}

TEST(PaperShapes, CxlSsdAmplificationCeiling) {
  // Extension: 512B blocks -> scattered 64B writebacks amplify up to 8x.
  Machine m(MachineACxlSsd(1));
  const uint64_t n = (32ULL << 20) / 64;
  const SimAddr data = m.Alloc(n * 64);
  m.ResetStats();
  Xoshiro256 rng(3);
  Core& core = m.core(0);
  for (int i = 0; i < 30000; ++i) {
    core.StoreU64(data + rng.Below(n) * 64, i);
  }
  m.FlushAll();
  const double amp = m.target().Stats().WriteAmplification();
  EXPECT_GT(amp, 6.0);
  EXPECT_LE(amp, 8.0 + 1e-9);
}

TEST(PaperShapes, X9DemoteStillWinsOnBSlow) {
  // §7.3.2, compact: B-slow has the larger absolute stall to hide.
  auto send_cycles = [&](MsgPrestore mode) {
    Machine m(MachineBSlow(2));
    X9Inbox inbox(m, 64, 256);
    constexpr uint64_t kMessages = 1200;
    uint64_t producer_cycles = 0;
    RunParallel(m, 2, [&](Core& core, uint32_t tid) {
      if (tid == 0) {
        for (uint64_t i = 0; i < kMessages; ++i) {
          while (true) {
            const uint64_t t0 = core.now();
            if (inbox.TryWriteStamped(core, i, mode)) {
              producer_cycles += core.now() - t0;
              break;
            }
            core.SpinPause(50);
          }
        }
      } else {
        char drain[256];
        uint64_t received = 0;
        while (received < kMessages) {
          if (inbox.TryRead(core, drain)) {
            ++received;
          } else {
            core.SpinPause(30);
          }
        }
      }
    });
    return producer_cycles / kMessages;
  };
  const uint64_t base = send_cycles(MsgPrestore::kOff);
  const uint64_t demote = send_cycles(MsgPrestore::kDemote);
  EXPECT_LT(demote, base);
  EXPECT_GT(static_cast<double>(base) / demote, 1.3);
}

TEST(PaperShapes, DemoteUselessOnTso) {
  // The §6.2.3 architecture note: on the strong x86 model writes publish
  // eagerly, so demoting before a fence buys nothing.
  auto run = [&](bool demote) {
    Machine m(MachineA(1));
    const SimAddr arr = m.Alloc(1 << 20);
    return RunOnCore(m, [&](Core& core) {
      Xoshiro256 rng(7);
      for (int i = 0; i < 3000; ++i) {
        const SimAddr a = arr + rng.Below((1 << 20) / 64) * 64;
        core.StoreU64(a, i);
        if (demote) {
          core.Prestore(a, 8, PrestoreOp::kDemote);
        }
        for (int r = 0; r < 20; ++r) {
          core.Execute(4);
        }
        core.Fence();
      }
    });
  };
  const uint64_t base = run(false);
  const uint64_t demoted = run(true);
  const double ratio = static_cast<double>(demoted) / base;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

}  // namespace
}  // namespace prestore
