// Machine preset invariants: the configurations every experiment stands on.
#include <gtest/gtest.h>

#include "src/sim/config.h"

namespace prestore {
namespace {

TEST(Presets, MachineAMatchesPaperTable1) {
  const MachineConfig m = MachineA();
  EXPECT_EQ(m.line_size, 64u);                          // Intel CPU
  EXPECT_EQ(m.target.internal_block_size, 256u);        // Optane PMEM
  EXPECT_EQ(m.target.kind, DeviceKind::kPmem);
  EXPECT_EQ(m.drain, StoreDrainPolicy::kEagerTso);      // strong x86 model
  EXPECT_EQ(m.llc.policy, ReplacementPolicy::kQuadAge); // pseudo-LRU (§4.1)
}

TEST(Presets, MachineBMatchesPaperSection3) {
  const MachineConfig fast = MachineBFast();
  const MachineConfig slow = MachineBSlow();
  EXPECT_EQ(fast.line_size, 128u);  // ThunderX ARM CPU
  EXPECT_EQ(fast.drain, StoreDrainPolicy::kLazyWeak);
  EXPECT_EQ(fast.target.kind, DeviceKind::kFarMemory);
  // Fast: 60 cycles; slow: 200 cycles (§3).
  EXPECT_EQ(fast.target.read_latency, 60u);
  EXPECT_EQ(slow.target.read_latency, 200u);
  // Bandwidth ordering: the fast FPGA moves bytes cheaper.
  EXPECT_LT(fast.target.cycles_per_byte, slow.target.cycles_per_byte);
  // Directory on the device, cost scales with its latency (§4.2).
  EXPECT_EQ(fast.target.directory_latency, 60u);
  EXPECT_EQ(slow.target.directory_latency, 200u);
  // In-order cores drain the store buffer serially at fences.
  EXPECT_EQ(fast.fence_drain_parallelism, 1u);
}

TEST(Presets, CxlSsdDoublesTheBlockSize) {
  const MachineConfig m = MachineACxlSsd();
  EXPECT_EQ(m.target.internal_block_size, 512u);
  EXPECT_EQ(m.target.internal_block_size / m.line_size, 8u);  // 8x ceiling
  EXPECT_GT(m.target.read_latency, MachineA().target.read_latency);
}

TEST(Presets, CachesConsistent) {
  for (const MachineConfig& m :
       {MachineA(), MachineBFast(), MachineBSlow(), MachineACxlSsd()}) {
    EXPECT_EQ(m.l1.line_size, m.line_size) << m.name;
    EXPECT_EQ(m.llc.line_size, m.line_size) << m.name;
    EXPECT_GT(m.llc.size_bytes, m.l1.size_bytes) << m.name;
    EXPECT_GT(m.l1.NumSets(), 0u) << m.name;
    EXPECT_GT(m.llc.NumSets(), 0u) << m.name;
    EXPECT_GE(m.num_cores, 1u) << m.name;
    EXPECT_GE(m.store_buffer_entries, 8u) << m.name;
  }
}

TEST(Presets, CoreCountPropagates) {
  EXPECT_EQ(MachineA(3).num_cores, 3u);
  EXPECT_EQ(MachineBFast(7).num_cores, 7u);
}

}  // namespace
}  // namespace prestore
