// Machine preset invariants: the configurations every experiment stands on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/sim/config.h"

namespace prestore {
namespace {

TEST(Presets, MachineAMatchesPaperTable1) {
  const MachineConfig m = MachineA();
  EXPECT_EQ(m.line_size, 64u);                          // Intel CPU
  EXPECT_EQ(m.target.internal_block_size, 256u);        // Optane PMEM
  EXPECT_EQ(m.target.kind, DeviceKind::kPmem);
  EXPECT_EQ(m.drain, StoreDrainPolicy::kEagerTso);      // strong x86 model
  EXPECT_EQ(m.llc.policy, ReplacementPolicy::kQuadAge); // pseudo-LRU (§4.1)
}

TEST(Presets, MachineBMatchesPaperSection3) {
  const MachineConfig fast = MachineBFast();
  const MachineConfig slow = MachineBSlow();
  EXPECT_EQ(fast.line_size, 128u);  // ThunderX ARM CPU
  EXPECT_EQ(fast.drain, StoreDrainPolicy::kLazyWeak);
  EXPECT_EQ(fast.target.kind, DeviceKind::kFarMemory);
  // Fast: 60 cycles; slow: 200 cycles (§3).
  EXPECT_EQ(fast.target.read_latency, 60u);
  EXPECT_EQ(slow.target.read_latency, 200u);
  // Bandwidth ordering: the fast FPGA moves bytes cheaper.
  EXPECT_LT(fast.target.cycles_per_byte, slow.target.cycles_per_byte);
  // Directory on the device, cost scales with its latency (§4.2).
  EXPECT_EQ(fast.target.directory_latency, 60u);
  EXPECT_EQ(slow.target.directory_latency, 200u);
  // In-order cores drain the store buffer serially at fences.
  EXPECT_EQ(fast.fence_drain_parallelism, 1u);
}

TEST(Presets, CxlSsdDoublesTheBlockSize) {
  const MachineConfig m = MachineACxlSsd();
  EXPECT_EQ(m.target.internal_block_size, 512u);
  EXPECT_EQ(m.target.internal_block_size / m.line_size, 8u);  // 8x ceiling
  EXPECT_GT(m.target.read_latency, MachineA().target.read_latency);
}

TEST(Presets, CachesConsistent) {
  for (const MachineConfig& m :
       {MachineA(), MachineBFast(), MachineBSlow(), MachineACxlSsd()}) {
    EXPECT_EQ(m.l1.line_size, m.line_size) << m.name;
    EXPECT_EQ(m.llc.line_size, m.line_size) << m.name;
    EXPECT_GT(m.llc.size_bytes, m.l1.size_bytes) << m.name;
    EXPECT_GT(m.l1.NumSets(), 0u) << m.name;
    EXPECT_GT(m.llc.NumSets(), 0u) << m.name;
    EXPECT_GE(m.num_cores, 1u) << m.name;
    EXPECT_GE(m.store_buffer_entries, 8u) << m.name;
  }
}

TEST(Presets, CoreCountPropagates) {
  EXPECT_EQ(MachineA(3).num_cores, 3u);
  EXPECT_EQ(MachineBFast(7).num_cores, 7u);
}

// CacheConfig::Validate guards the invariants the cache model assumes:
// power-of-two line sizes (shift/mask indexing), ways within the kQuadAge
// victim-candidate buffer (uint32_t[64], one slot per way), power-of-two
// ways for the tree-PLRU walk, and at least one complete set.
TEST(CacheConfigValidate, AcceptsEveryPreset) {
  for (const MachineConfig& m :
       {MachineA(), MachineBFast(), MachineBSlow(), MachineACxlSsd()}) {
    EXPECT_NO_THROW(m.l1.Validate("l1")) << m.name;
    EXPECT_NO_THROW(m.llc.Validate("llc")) << m.name;
  }
}

TEST(CacheConfigValidate, RejectsZeroWays) {
  CacheConfig c = MachineA().llc;
  c.ways = 0;
  EXPECT_THROW(c.Validate("llc"), std::invalid_argument);
}

TEST(CacheConfigValidate, RejectsWaysBeyondCandidateBuffer) {
  CacheConfig c = MachineA().llc;
  c.ways = 65;  // kQuadAge gathers candidates into a 64-slot buffer
  c.size_bytes = 65 * 64 * 16;  // keep at least one complete set
  EXPECT_THROW(c.Validate("llc"), std::invalid_argument);
  c.ways = 64;
  EXPECT_NO_THROW(c.Validate("llc"));
}

TEST(CacheConfigValidate, RejectsNonPow2LineSize) {
  CacheConfig c = MachineA().l1;
  c.line_size = 96;
  EXPECT_THROW(c.Validate("l1"), std::invalid_argument);
  c.line_size = 0;
  EXPECT_THROW(c.Validate("l1"), std::invalid_argument);
}

TEST(CacheConfigValidate, RejectsNonPow2WaysForTreePlru) {
  CacheConfig c = MachineA().l1;
  ASSERT_EQ(c.policy, ReplacementPolicy::kTreePlru);
  c.ways = 6;
  EXPECT_THROW(c.Validate("l1"), std::invalid_argument);
  // The same geometry is fine under a policy without the tree walk.
  c.policy = ReplacementPolicy::kLru;
  EXPECT_NO_THROW(c.Validate("l1"));
}

TEST(CacheConfigValidate, RejectsSizeWithoutOneFullSet) {
  CacheConfig c = MachineA().l1;
  c.size_bytes = c.ways * c.line_size - 1;
  EXPECT_THROW(c.Validate("l1"), std::invalid_argument);
}

TEST(CacheConfigValidate, RejectsSetBlockOverBudget) {
  CacheConfig c = MachineA().llc;
  // 100 ways: header AlignUp(32 + 900) = 960, block 960 + 100*32 -> 4160 B,
  // over the 4096 B per-set budget. (65..96 ways still fit the block budget
  // and are caught by the candidate-buffer rule instead.)
  c.ways = 100;
  c.size_bytes = 100 * 64 * 16;  // keep at least one complete set
  ASSERT_GT(SetBlockBytes(c.ways), kSetBlockMaxBytes);
  try {
    c.Validate("llc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("SetBlock"), std::string::npos)
        << e.what();
  }
  // The largest legal way count fits the budget with room to spare.
  EXPECT_LE(SetBlockBytes(64), kSetBlockMaxBytes);
}

TEST(CacheConfigValidate, SetBlockGeometryMatchesLayoutRules) {
  // The helpers are the single source of truth for the block layout; pin
  // the arithmetic for the preset geometries (DESIGN.md §14).
  EXPECT_EQ(SetBlockHeaderBytes(8), 128u);   // 32 + 8*(8+1) -> 128
  EXPECT_EQ(SetBlockBytes(8), 384u);         // 128 + 8*32 -> 384
  EXPECT_EQ(SetBlockHeaderBytes(16), 192u);  // 32 + 16*(8+1) -> 192
  EXPECT_EQ(SetBlockBytes(16), 704u);        // 192 + 16*32 -> 704
  for (uint32_t ways : {1u, 4u, 8u, 16u, 64u}) {
    EXPECT_EQ(SetBlockHeaderBytes(ways) % kSetBlockAlign, 0u) << ways;
    EXPECT_EQ(SetBlockBytes(ways) % kSetBlockAlign, 0u) << ways;
  }
}

}  // namespace
}  // namespace prestore
