#include <gtest/gtest.h>

#include "src/sim/harness.h"
#include "src/tensor/evaluator.h"
#include "src/tensor/training.h"

namespace prestore {
namespace {

class TensorTest : public ::testing::Test {
 protected:
  TensorTest() : machine_(MachineA(2)) {}
  Machine machine_;
};

TEST_F(TensorTest, SumEvaluatesCorrectly) {
  Core& core = machine_.core(0);
  Tensor a(machine_, 100);
  Tensor b(machine_, 100);
  Tensor out(machine_, 100);
  for (uint64_t i = 0; i < 100; ++i) {
    a.Set(core, i, static_cast<double>(i));
    b.Set(core, i, 2.0 * static_cast<double>(i));
  }
  TensorEvaluator ev(machine_, TensorOp::kSum, TensorWritePolicy::kBaseline);
  ev.Run(core, out, a, b);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(out.Get(core, i), 3.0 * static_cast<double>(i)) << i;
  }
}

TEST_F(TensorTest, ProductAndScale) {
  Core& core = machine_.core(0);
  Tensor a(machine_, 64);
  Tensor b(machine_, 64);
  Tensor out(machine_, 64);
  for (uint64_t i = 0; i < 64; ++i) {
    a.Set(core, i, 3.0);
    b.Set(core, i, static_cast<double>(i));
  }
  TensorEvaluator prod(machine_, TensorOp::kProduct,
                       TensorWritePolicy::kBaseline);
  prod.Run(core, out, a, b);
  EXPECT_DOUBLE_EQ(out.Get(core, 10), 30.0);
  TensorEvaluator scale(machine_, TensorOp::kScale,
                        TensorWritePolicy::kBaseline);
  scale.Run(core, out, b, b, /*alpha=*/0.5);
  EXPECT_DOUBLE_EQ(out.Get(core, 10), 5.0);
}

TEST_F(TensorTest, PoliciesAgreeFunctionally) {
  // clean / skip change timing only, never results.
  Core& core = machine_.core(0);
  Tensor a(machine_, 1000);
  Tensor b(machine_, 1000);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Set(core, i, static_cast<double>(i % 13));
    b.Set(core, i, static_cast<double>(i % 7));
  }
  Tensor base(machine_, 1000);
  Tensor clean(machine_, 1000);
  Tensor skip(machine_, 1000);
  TensorEvaluator e1(machine_, TensorOp::kRecurrent,
                     TensorWritePolicy::kBaseline);
  TensorEvaluator e2(machine_, TensorOp::kRecurrent, TensorWritePolicy::kClean);
  TensorEvaluator e3(machine_, TensorOp::kRecurrent, TensorWritePolicy::kSkip);
  e1.Run(core, base, a, b);
  e2.Run(core, clean, a, b);
  e3.Run(core, skip, a, b);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(base.Get(core, i), clean.Get(core, i)) << i;
    EXPECT_DOUBLE_EQ(base.Get(core, i), skip.Get(core, i)) << i;
  }
}

TEST_F(TensorTest, RecurrentDependsOnOwnOutput) {
  Core& core = machine_.core(0);
  const uint64_t chunk = kUnroll * kPacketSize;
  Tensor a(machine_, 3 * chunk);
  Tensor out(machine_, 3 * chunk);
  for (uint64_t i = 0; i < a.size(); ++i) {
    a.Set(core, i, 1.0);
  }
  TensorEvaluator ev(machine_, TensorOp::kRecurrent,
                     TensorWritePolicy::kBaseline);
  ev.Run(core, out, a, a);
  // out[i<chunk] = 1; out[chunk..2chunk) = 1 + 0.5*1 = 1.5; then 1.75.
  EXPECT_DOUBLE_EQ(out.Get(core, 0), 1.0);
  EXPECT_DOUBLE_EQ(out.Get(core, chunk), 1.5);
  EXPECT_DOUBLE_EQ(out.Get(core, 2 * chunk), 1.75);
}

TEST_F(TensorTest, TailHandlesNonChunkSizes) {
  Core& core = machine_.core(0);
  Tensor a(machine_, 21);
  Tensor b(machine_, 21);
  Tensor out(machine_, 21);
  for (uint64_t i = 0; i < 21; ++i) {
    a.Set(core, i, 1.0);
    b.Set(core, i, 1.0);
  }
  TensorEvaluator ev(machine_, TensorOp::kSum, TensorWritePolicy::kClean);
  ev.Run(core, out, a, b);
  for (uint64_t i = 0; i < 21; ++i) {
    EXPECT_DOUBLE_EQ(out.Get(core, i), 2.0) << i;
  }
}

TEST_F(TensorTest, CleanReducesAmplification) {
  // Machine A: the clean policy must cut PMEM write amplification on a
  // large sequential evaluator run (Figure 8's mechanism).
  auto run = [&](TensorWritePolicy policy) {
    Machine m(MachineA(1));
    const uint64_t n = (16 << 20) / 8;  // 16MB output
    Tensor a(m, n);
    Tensor out(m, n);
    TensorEvaluator ev(m, TensorOp::kSum, policy);
    m.ResetStats();
    ev.Run(m.core(0), out, a, a);
    m.FlushAll();
    return m.target().Stats().WriteAmplification();
  };
  const double base = run(TensorWritePolicy::kBaseline);
  const double clean = run(TensorWritePolicy::kClean);
  EXPECT_GT(base, 1.2);
  EXPECT_LT(clean, 1.15);
}

TEST_F(TensorTest, TrainingStepIsDeterministicPerPolicy) {
  auto checksum = [&](TensorWritePolicy policy) {
    Machine m(MachineA(1));
    TrainingConfig cfg;
    cfg.batch_size = 4;
    cfg.features = 512;
    cfg.policy = policy;
    CnnTrainingProxy proxy(m, cfg);
    proxy.Step(m.core(0));
    proxy.Step(m.core(0));
    return proxy.Checksum(m.core(0));
  };
  const double base = checksum(TensorWritePolicy::kBaseline);
  EXPECT_DOUBLE_EQ(base, checksum(TensorWritePolicy::kClean));
  EXPECT_DOUBLE_EQ(base, checksum(TensorWritePolicy::kSkip));
  EXPECT_NE(base, 0.0);
}

TEST_F(TensorTest, ActivationsScaleWithBatchSize) {
  Machine m(MachineA(1));
  TrainingConfig small;
  small.batch_size = 2;
  TrainingConfig big;
  big.batch_size = 16;
  EXPECT_EQ(CnnTrainingProxy(m, small).ActivationElements() * 8,
            CnnTrainingProxy(m, big).ActivationElements());
}

}  // namespace
}  // namespace prestore
