// Offline/online cross-check (DESIGN.md §13): DirtBuster's trace-based
// recommendations and the RegionMonitor's sampled online verdicts must
// agree — through AdviceCompatible's shared vocabulary — on the dominant
// region of the same deterministic workload, run on separate machines.
//
// The online monitor cannot restructure stores into non-temporal ones, so
// offline kSkip and online kClean count as the same write-back-early
// family; everything else must match exactly.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "src/dirtbuster/dirtbuster.h"
#include "src/dirtbuster/recommend.h"
#include "src/monitor/region_monitor.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

TEST(AdviceCompatible, SharedVocabulary) {
  EXPECT_TRUE(AdviceCompatible(Advice::kNone, Advice::kNone));
  EXPECT_TRUE(AdviceCompatible(Advice::kDemote, Advice::kDemote));
  EXPECT_TRUE(AdviceCompatible(Advice::kClean, Advice::kClean));
  // Write-back-early family: the offline tool can restructure stores into
  // NT (skip); the online monitor can only clean. Same placement intent.
  EXPECT_TRUE(AdviceCompatible(Advice::kSkip, Advice::kClean));
  EXPECT_TRUE(AdviceCompatible(Advice::kClean, Advice::kSkip));
  EXPECT_FALSE(AdviceCompatible(Advice::kNone, Advice::kClean));
  EXPECT_FALSE(AdviceCompatible(Advice::kDemote, Advice::kClean));
  EXPECT_FALSE(AdviceCompatible(Advice::kDemote, Advice::kNone));
}

class CrosscheckTest : public ::testing::Test {
 protected:
  // Runs `workload(core, base)` twice on separate machines: once under
  // DirtBuster's trace analysis, once sampled by an attached RegionMonitor
  // over [base, base+bytes). Returns both verdicts for the region.
  struct Verdicts {
    Advice offline = Advice::kNone;
    SchemeVerdict online;
  };

  Verdicts Run(uint64_t bytes,
               const std::function<void(Core&, SimAddr)>& workload) {
    Verdicts v;
    {
      Machine machine(MachineA(2));
      const SimAddr base = machine.Alloc(bytes);
      const FuncToken tok{machine.registry().Intern("writer", "w.cc:1")};
      DirtBuster db(machine);
      const DirtBusterReport report = db.Analyze([&] {
        Core& core = machine.core(0);
        ScopedFunction f(core, tok);
        workload(core, base);
      });
      v.offline = report.OverallAdvice();
    }
    {
      Machine machine(MachineA(2));
      const SimAddr base = machine.Alloc(bytes);
      MonitorConfig cfg;
      cfg.sample_period = 8;
      cfg.aggregation_samples = 128;
      RegionMonitor monitor(machine, cfg);
      monitor.Monitor(base, base + bytes);
      monitor.Attach();
      workload(machine.core(0), base);
      // Dominant verdict: the active (rule-matched) verdict covering the
      // most monitored bytes. Per-interval sample counts are too noisy for
      // a single region to be "the" answer once the range has split into
      // many small regions; address coverage is the steady-state signal.
      const RegionMonitor::Snapshot snap = monitor.TakeSnapshot();
      std::map<uint32_t, uint64_t> bytes_by_rule;
      for (const MonitorRegion& r : snap.regions) {
        if (r.verdict.rule != kNoRule) {
          bytes_by_rule[r.verdict.rule] += r.end - r.start;
        }
      }
      uint64_t best = 0;
      for (const auto& [rule, covered] : bytes_by_rule) {
        if (covered > best) {
          best = covered;
          for (const MonitorRegion& r : snap.regions) {
            if (r.verdict.rule == rule) {
              v.online = r.verdict;
              break;
            }
          }
        }
      }
    }
    return v;
  }
};

TEST_F(CrosscheckTest, BulkSequentialWriterAgreesOnWriteBackEarly) {
  // dirtbuster_test's SequentialNeverReusedWriterGetsSkip shape: offline
  // recommends kSkip (NT restructuring); online recommends kClean — the
  // same family via AdviceCompatible.
  const Verdicts v = Run(32 << 20, [](Core& core, SimAddr base) {
    for (uint64_t i = 0; i < (8ULL << 20) / 8; ++i) {
      core.StoreU64(base + i * 8, i);
    }
  });
  EXPECT_EQ(v.offline, Advice::kSkip);
  EXPECT_EQ(v.online.advice, Advice::kClean);
  EXPECT_TRUE(AdviceCompatible(v.offline, v.online.advice));
}

TEST_F(CrosscheckTest, HotRewrittenRegionAgreesOnNoPrestore) {
  // The Listing-3 trap plus misuse cleans: DirtBuster refuses to recommend
  // a pre-store; the monitor, seeing the rewrite-after-clean storm those
  // cleans cause, suppresses the region.
  const Verdicts v = Run(1 << 16, [](Core& core, SimAddr base) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 100000; ++i) {
      const SimAddr line = base + rng.Below(64) * 64;
      core.StoreU64(line + rng.Below(8) * 8, i);
      if (i % 4 == 3) {
        core.Prestore(line, 64, PrestoreOp::kClean);  // the misuse
      }
    }
  });
  EXPECT_FALSE(AdviceCompatible(v.offline, Advice::kClean));
  EXPECT_EQ(v.online.gate, HintGate::kSuppress);
  EXPECT_TRUE(AdviceCompatible(v.offline, v.online.advice));
}

TEST_F(CrosscheckTest, WriteBeforeFenceAgreesOnDemote) {
  // dirtbuster_test's X9-style fill-then-publish shape: both sides land on
  // demote for the reused message buffers.
  const Verdicts v = Run(64 * 256, [](Core& core, SimAddr base) {
    const SimAddr flag = base;  // first line doubles as the publish flag
    for (int i = 0; i < 30000; ++i) {
      const SimAddr m = base + 64 + (i % 63) * 256;
      for (int j = 0; j < 24; ++j) {
        core.StoreU64(m + j * 8, i + j);
      }
      uint64_t expected = core.LoadU64(flag);
      core.CasU64(flag, expected, i);  // fence semantics
    }
  });
  EXPECT_EQ(v.offline, Advice::kDemote);
  EXPECT_EQ(v.online.advice, Advice::kDemote);
  EXPECT_TRUE(AdviceCompatible(v.offline, v.online.advice));
}

}  // namespace
}  // namespace prestore
