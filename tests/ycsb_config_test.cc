// YcsbConfig::Validate: the silent-misbehaviour configurations (threads = 0,
// zipf_theta = 1.0, zero arena_slots, ...) must be rejected with a clear
// error, both directly and on the driver entry points.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/kv/clht.h"
#include "src/kv/ycsb.h"

namespace prestore {
namespace {

TEST(YcsbConfigValidate, DefaultConfigIsValid) {
  EXPECT_EQ(YcsbConfig{}.Validate(), "");
}

TEST(YcsbConfigValidate, RejectsZeroThreads) {
  YcsbConfig cfg;
  cfg.threads = 0;
  EXPECT_NE(cfg.Validate().find("threads"), std::string::npos);
}

TEST(YcsbConfigValidate, RejectsZeroKeys) {
  YcsbConfig cfg;
  cfg.num_keys = 0;
  EXPECT_NE(cfg.Validate().find("num_keys"), std::string::npos);
}

TEST(YcsbConfigValidate, RejectsZeroArenaSlots) {
  YcsbConfig cfg;
  cfg.arena_slots = 0;
  EXPECT_NE(cfg.Validate().find("arena_slots"), std::string::npos);
}

TEST(YcsbConfigValidate, RejectsBadValueSizes) {
  YcsbConfig cfg;
  cfg.value_size = 0;
  EXPECT_NE(cfg.Validate().find("value_size"), std::string::npos);
  cfg.value_size = 100;  // not a multiple of 8: CraftValue strides words
  EXPECT_NE(cfg.Validate().find("value_size"), std::string::npos);
  cfg.value_size = 96;
  EXPECT_EQ(cfg.Validate(), "");
}

TEST(YcsbConfigValidate, RejectsDegenerateZipfTheta) {
  YcsbConfig cfg;
  cfg.zipf_theta = 1.0;  // alpha = 1/(1-theta) blows up
  EXPECT_NE(cfg.Validate().find("zipf_theta"), std::string::npos);
  cfg.zipf_theta = -0.1;
  EXPECT_NE(cfg.Validate().find("zipf_theta"), std::string::npos);
  cfg.zipf_theta = 0.0;  // uniform is fine
  EXPECT_EQ(cfg.Validate(), "");
  cfg.zipf_theta = 0.99;
  EXPECT_EQ(cfg.Validate(), "");
}

TEST(YcsbConfigValidate, DriverThrowsOnInvalidConfig) {
  Machine machine(MachineA(1));
  ClhtMap store(machine, 64);
  YcsbConfig cfg;
  cfg.num_keys = 128;
  cfg.threads = 0;
  EXPECT_THROW(YcsbLoad(machine, store, cfg), std::invalid_argument);
  EXPECT_THROW(YcsbRun(machine, store, cfg), std::invalid_argument);
}

TEST(YcsbConfigValidate, DriverAcceptsValidConfig) {
  Machine machine(MachineA(1));
  ClhtMap store(machine, 64);
  YcsbConfig cfg;
  cfg.num_keys = 64;
  cfg.threads = 1;
  cfg.ops_per_thread = 32;
  cfg.value_size = 64;
  EXPECT_NO_THROW(YcsbLoad(machine, store, cfg));
  const YcsbResult result = YcsbRun(machine, store, cfg);
  EXPECT_EQ(result.ops, 32u);
  EXPECT_EQ(result.failed_gets, 0u);
}

}  // namespace
}  // namespace prestore
