#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/sim/array.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

TEST(MachineAlloc, AlignedAndDisjoint) {
  Machine m(MachineA(2));
  const SimAddr a = m.Alloc(100);
  const SimAddr b = m.Alloc(100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  const SimAddr c = m.Alloc(10, Region::kTarget, 4096);
  EXPECT_EQ(c % 4096, 0u);
}

TEST(MachineAlloc, RegionsSeparate) {
  Machine m(MachineA(2));
  const SimAddr d = m.Alloc(64, Region::kDram);
  const SimAddr t = m.Alloc(64, Region::kTarget);
  EXPECT_LT(d, kTargetBase);
  EXPECT_GE(t, kTargetBase);
}

TEST(CoreData, StoreLoadRoundTrip) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(core.LoadU64(a), 0xdeadbeefcafef00dULL);
  core.StoreU32(a + 8, 0x12345678u);
  EXPECT_EQ(core.LoadU32(a + 8), 0x12345678u);
  core.StoreF64(a + 16, 3.25);
  EXPECT_DOUBLE_EQ(core.LoadF64(a + 16), 3.25);
}

TEST(CoreData, MemCopyRoundTrip) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  std::vector<char> src(1000);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i * 13);
  }
  core.MemCopyToSim(a, src.data(), src.size());
  std::vector<char> dst(1000, 0);
  core.MemCopyFromSim(dst.data(), a, dst.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(CoreData, MemSetFillsBytes) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(256);
  core.MemSet(a, 0xab, 256);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(*m.HostPtr(a + i), 0xab);
  }
}

TEST(CoreData, SimToSimCopy) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(512);
  const SimAddr b = m.Alloc(512);
  core.MemSet(a, 0x5a, 512);
  core.MemCopySimToSim(b, a, 512);
  EXPECT_EQ(std::memcmp(m.HostPtr(a), m.HostPtr(b), 512), 0);
}

TEST(CoreTiming, TimeAdvancesMonotonically) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(1 << 20);
  uint64_t prev = core.now();
  for (int i = 0; i < 1000; ++i) {
    core.StoreU64(a + i * 64, i);
    EXPECT_GE(core.now(), prev);
    prev = core.now();
  }
}

TEST(CoreTiming, L1HitFasterThanMiss) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(1 << 20);
  // Cold miss.
  const uint64_t t0 = core.now();
  core.LoadU64(a);
  const uint64_t miss_cost = core.now() - t0;
  // Hit.
  const uint64_t t1 = core.now();
  core.LoadU64(a);
  const uint64_t hit_cost = core.now() - t1;
  EXPECT_LT(hit_cost, miss_cost);
  EXPECT_EQ(hit_cost, m.config().l1.hit_latency);
}

TEST(CoreTiming, SequentialStreamsFasterThanRandom) {
  // The hardware-prefetch stand-in: streaming loads must be cheaper per
  // line than random loads over the same footprint.
  Machine m(MachineA(2));
  const uint64_t n = 1 << 14;  // lines; 1MB footprint each
  SimArray<uint64_t> seq(m, n * 8);
  SimArray<uint64_t> rnd(m, n * 8);

  const uint64_t seq_cost = RunOnCore(m, [&](Core& core) {
    for (uint64_t i = 0; i < n; ++i) {
      seq.Get(core, i * 8);
    }
  });
  Xoshiro256 rng(5);
  const uint64_t rnd_cost = RunOnCore(m, [&](Core& core) {
    for (uint64_t i = 0; i < n; ++i) {
      rnd.Get(core, rng.Below(n) * 8);
    }
  });
  EXPECT_LT(seq_cost * 3 / 2, rnd_cost);
}

TEST(CoreTiming, ExecuteAdvancesClockAndIcount) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const uint64_t t = core.now();
  const uint64_t ic = core.icount();
  core.Execute(1000);
  EXPECT_EQ(core.now(), t + 1000);
  EXPECT_EQ(core.icount(), ic + 1000);
}

TEST(CoreAtomics, CasSucceedsAndFails) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(64);
  core.StoreU64(a, 10);
  uint64_t expected = 10;
  EXPECT_TRUE(core.CasU64(a, expected, 20));
  EXPECT_EQ(core.LoadU64(a), 20u);
  expected = 10;
  EXPECT_FALSE(core.CasU64(a, expected, 30));
  EXPECT_EQ(expected, 20u);  // CAS loads the current value on failure
}

TEST(CoreAtomics, FetchAdd) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(64);
  core.StoreU64(a, 5);
  EXPECT_EQ(core.FetchAddU64(a, 3), 5u);
  EXPECT_EQ(core.AtomicLoadU64(a), 8u);
}

TEST(CoreAtomics, AtomicStoreVisible) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(64);
  core.AtomicStoreU64(a, 77);
  EXPECT_EQ(core.AtomicLoadU64(a), 77u);
}

TEST(CoreNt, NonTemporalStoreIsFunctional) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  std::vector<char> src(1024);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<char>(i);
  }
  core.StoreNt(a, src.data(), src.size());
  std::vector<char> dst(1024);
  core.MemCopyFromSim(dst.data(), a, dst.size());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(CoreNt, NtStoreEvictsFromCache) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 1);  // line cached
  core.Fence();
  uint64_t v = 42;
  core.StoreNt(a, &v, 8);
  // A subsequent load must miss (line was invalidated): it costs more than
  // an L1 hit.
  const uint64_t t = core.now();
  EXPECT_EQ(core.LoadU64(a), 42u);
  EXPECT_GT(core.now() - t, m.config().l1.hit_latency);
}

TEST(CorePrestore, FunctionalNoOp) {
  // Pre-stores never change data, only timing.
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.MemSet(a, 0x11, 4096);
  core.Prestore(a, 4096, PrestoreOp::kClean);
  core.Prestore(a, 4096, PrestoreOp::kDemote);
  core.Fence();
  for (int i = 0; i < 4096; i += 64) {
    EXPECT_EQ(core.LoadU64(a + i) & 0xff, 0x11u);
  }
}

TEST(CorePrestore, CleanKeepsDataCached) {
  // §2: "cleaning the data propagates the modifications to memory but does
  // not invalidate the cache". A re-read after clean must be an L1 hit.
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 9);
  core.Prestore(a, 8, PrestoreOp::kClean);
  const uint64_t t = core.now();
  EXPECT_EQ(core.LoadU64(a), 9u);
  EXPECT_EQ(core.now() - t, m.config().l1.hit_latency);
}

TEST(CorePrestore, CleanWritesToDevice) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096, Region::kTarget);
  core.StoreU64(a, 1);
  const uint64_t received_before = m.target().Stats().bytes_received;
  core.Prestore(a, 8, PrestoreOp::kClean);
  EXPECT_GT(m.target().Stats().bytes_received, received_before);
}

TEST(CorePrestore, CleanOfCleanLineIsCheap) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 1);
  core.Prestore(a, 8, PrestoreOp::kClean);
  const uint64_t writes_before = m.target().Stats().writes;
  core.Prestore(a, 8, PrestoreOp::kClean);  // already clean
  EXPECT_EQ(m.target().Stats().writes, writes_before);
}

TEST(Fence, WaitsForCleanWriteback) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 1);
  core.Prestore(a, 8, PrestoreOp::kClean);
  const uint64_t before = core.now();
  core.Fence();
  // The fence must wait for the asynchronous writeback (device latency).
  EXPECT_GT(core.now(), before + 5);
}

TEST(Harness, RunParallelAlignsAndMeasures) {
  Machine m(MachineA(4));
  SimArray<uint64_t> arr(m, 1 << 12);
  const uint64_t cycles = RunParallel(m, 4, [&](Core& core, uint32_t tid) {
    for (uint64_t i = tid; i < arr.size(); i += 4) {
      arr.Set(core, i, tid);
    }
  });
  EXPECT_GT(cycles, 0u);
  // All elements written.
  Core& core = m.core(0);
  for (uint64_t i = 0; i < arr.size(); ++i) {
    EXPECT_LT(arr.Get(core, i), 4u);
  }
}

TEST(Stats, CountersTrackOps) {
  Machine m(MachineA(2));
  m.ResetStats();
  Core& core = m.core(0);
  const SimAddr a = m.Alloc(4096);
  core.StoreU64(a, 1);
  core.LoadU64(a);
  core.Fence();
  core.Prestore(a, 8, PrestoreOp::kClean);
  const CoreStats& s = core.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_GE(s.loads, 1u);
  EXPECT_EQ(s.fences, 1u);
  EXPECT_EQ(s.prestores_clean, 1u);
}

}  // namespace
}  // namespace prestore
