#include <gtest/gtest.h>

#include <map>

#include "src/dirtbuster/btree.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

TEST(BTree, EmptyTree) {
  BTreeMap<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Find(42), nullptr);
  EXPECT_FALSE(t.Contains(42));
}

TEST(BTree, InsertAndFind) {
  BTreeMap<int> t;
  t[10] = 100;
  t[20] = 200;
  t[5] = 50;
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.Find(10), nullptr);
  EXPECT_EQ(*t.Find(10), 100);
  EXPECT_EQ(*t.Find(20), 200);
  EXPECT_EQ(*t.Find(5), 50);
  EXPECT_EQ(t.Find(15), nullptr);
}

TEST(BTree, OperatorBracketUpdatesInPlace) {
  BTreeMap<int> t;
  t[7] = 1;
  t[7] = 2;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.Find(7), 2);
}

TEST(BTree, DefaultConstructsMissing) {
  BTreeMap<int> t;
  EXPECT_EQ(t[99], 0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, InOrderTraversal) {
  BTreeMap<int> t;
  for (uint64_t k : {50ULL, 10ULL, 90ULL, 30ULL, 70ULL}) {
    t[k] = static_cast<int>(k);
  }
  std::vector<uint64_t> keys;
  t.ForEach([&](uint64_t k, const int&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<uint64_t>{10, 30, 50, 70, 90}));
}

TEST(BTree, SplitsKeepAllKeys) {
  // Enough keys to force multiple levels with Order = 16.
  BTreeMap<uint64_t> t;
  for (uint64_t i = 0; i < 5000; ++i) {
    t[i * 31] = i;
  }
  EXPECT_EQ(t.size(), 5000u);
  EXPECT_GT(t.Height(), 1);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_NE(t.Find(i * 31), nullptr) << i;
    EXPECT_EQ(*t.Find(i * 31), i);
  }
}

TEST(BTree, HeightStaysLogarithmic) {
  BTreeMap<uint64_t, 16> t;
  for (uint64_t i = 0; i < 100000; ++i) {
    t[i] = i;
  }
  // With order 16 and 1e5 keys, a healthy B-tree is <= ~7 levels.
  EXPECT_LE(t.Height(), 8);
}

class BTreeRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeRandomized, MatchesStdMapReference) {
  BTreeMap<uint64_t, 8> t;
  std::map<uint64_t, uint64_t> ref;
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Below(5000);
    const uint64_t v = rng.Next();
    t[k] = v;
    ref[k] = v;
  }
  EXPECT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(t.Find(k), nullptr) << k;
    EXPECT_EQ(*t.Find(k), v);
  }
  // Traversal yields sorted keys identical to the reference.
  std::vector<uint64_t> keys;
  t.ForEach([&](uint64_t k, const uint64_t&) { keys.push_back(k); });
  std::vector<uint64_t> ref_keys;
  for (const auto& [k, v] : ref) {
    (void)v;
    ref_keys.push_back(k);
  }
  EXPECT_EQ(keys, ref_keys);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomized,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

TEST(BTree, SequentialAndReverseInsertion) {
  BTreeMap<int, 6> asc;
  BTreeMap<int, 6> desc;
  for (int i = 0; i < 3000; ++i) {
    asc[i] = i;
    desc[3000 - i] = i;
  }
  EXPECT_EQ(asc.size(), 3000u);
  EXPECT_EQ(desc.size(), 3000u);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_NE(asc.Find(i), nullptr);
    EXPECT_NE(desc.Find(3000 - i), nullptr);
  }
}

}  // namespace
}  // namespace prestore
