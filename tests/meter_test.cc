// BandwidthMeter: the backlog-based reservation primitive every shared
// device stands on. Its contract — skew tolerance, work conservation,
// correct pacing — is what keeps multi-core simulations honest.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sim/device.h"

namespace prestore {
namespace {

TEST(Meter, NoDelayUnderCapacity) {
  BandwidthMeter meter;
  uint64_t now = 10000;
  for (int i = 0; i < 100; ++i) {
    // 10 cycles of work every 100 cycles: 10% duty, never queues.
    EXPECT_EQ(meter.Reserve(10, now), 0u) << i;
    now += 100;
  }
}

TEST(Meter, PacesSustainedOverload) {
  BandwidthMeter meter;
  uint64_t now = 10000;
  uint64_t total_delay = 0;
  // 200 cycles of work every 100 cycles: 2x overload. Total queueing must
  // grow linearly (the requester would be paced to the device rate).
  for (int i = 0; i < 100; ++i) {
    total_delay = meter.Reserve(200, now);
    now += 100;
  }
  // After 100 requests the backlog is ~100 * (200 - 100) = 10000 cycles.
  EXPECT_GT(total_delay, 8000u);
  EXPECT_LT(total_delay, 12000u);
}

TEST(Meter, IdleCreditIsForgotten) {
  BandwidthMeter meter;
  meter.Reserve(10, 1000);
  // A long idle period must not bank capacity for a later burst beyond the
  // window: after the gap, a burst still queues.
  uint64_t delay = 0;
  for (int i = 0; i < 100; ++i) {
    delay = meter.Reserve(100, 1000000);  // 10000 cycles of work at once
  }
  EXPECT_GT(delay, 8000u);
}

TEST(Meter, ClockSkewDoesNotCreatePhantomQueueing) {
  // The core property: a requester far ahead in time must not delay one
  // behind it (within the window) when the device is keeping up.
  BandwidthMeter meter;
  meter.Reserve(5, 100000);  // "leader" core, tiny work
  // The "laggard" 1000 cycles behind may at most queue behind the leader's
  // 5 cycles of real work — never behind its clock.
  EXPECT_LE(meter.Reserve(5, 99000), 5u);
}

TEST(Meter, BacklogObservation) {
  BandwidthMeter meter;
  EXPECT_EQ(meter.BacklogAt(1000), 0u);
  meter.Reserve(5000, 1000);
  EXPECT_GT(meter.BacklogAt(1000), 3000u);
  // Much later the backlog has drained.
  EXPECT_EQ(meter.BacklogAt(100000), 0u);
}

TEST(Meter, ConcurrentReservationsConserveWork) {
  // Work conservation under threads: total delay across requesters must be
  // at least (total work - elapsed capacity), never wildly more.
  BandwidthMeter meter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  constexpr uint64_t kCost = 50;
  std::vector<uint64_t> delays(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t now = 50000 + t * 100;
      for (int i = 0; i < kPerThread; ++i) {
        delays[t] += meter.Reserve(kCost, now);
        now += 10;  // each thread demands 5 cycles of work per cycle
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Total work = 4 * 1000 * 50 = 200000 over ~10000 cycles of wall time:
  // ~190000 cycles of queueing must have been charged somewhere.
  uint64_t total = 0;
  for (uint64_t d : delays) {
    total += d;
  }
  EXPECT_GT(total, 100000u);
}

// ---- PMEM DIMM-level behaviour ----

DeviceConfig DimmPmem() {
  DeviceConfig c;
  c.kind = DeviceKind::kPmem;
  c.read_latency = 170;
  c.write_latency = 90;
  c.cycles_per_byte = 0.01;
  c.internal_block_size = 256;
  c.internal_buffer_blocks = 8;
  c.interleave_dimms = 8;
  c.interleave_bytes = 4096;
  c.media_cycles_per_byte = 0.45;
  return c;
}

TEST(PmemDimms, SequentialStreamStaysInOneModule) {
  PmemDevice d(DimmPmem());
  // A 4KB sequential write stream fills one interleave unit: it coalesces
  // into 16 blocks, amp 1.0.
  for (uint64_t off = 0; off < 4096; off += 64) {
    d.Write(off, 64, 0);
  }
  d.Drain();
  EXPECT_DOUBLE_EQ(d.Stats().WriteAmplification(), 1.0);
}

TEST(PmemDimms, ManyInterleavedStreamsStillCoalesce) {
  PmemDevice d(DimmPmem());
  // 8 concurrent sequential streams, one per interleave unit: each lands in
  // its own module's buffer.
  for (uint64_t line = 0; line < 64; ++line) {
    for (uint64_t stream = 0; stream < 8; ++stream) {
      d.Write(stream * 4096 + line * 64, 64, 0);
    }
  }
  d.Drain();
  EXPECT_DOUBLE_EQ(d.Stats().WriteAmplification(), 1.0);
}

TEST(PmemDimms, ScatterThrashesEveryModule) {
  PmemDevice d(DimmPmem());
  // Block-strided writes thrash the per-module buffers: full amplification.
  for (uint64_t i = 0; i < 4096; ++i) {
    d.Write(i * 256 * 7, 64, 0);  // ×7: avoid perfect dimm rotation
  }
  d.Drain();
  EXPECT_GT(d.Stats().WriteAmplification(), 3.5);
}

TEST(PmemDimms, ReadsOfBufferedBlocksAreFree) {
  PmemDevice d(DimmPmem());
  d.Write(0, 64, 0);
  const uint64_t t0 = 100000;
  // The block is buffered: the read pays latency + interface only. A read
  // of a distant cold block pays the media fetch as well (its delay only
  // materializes under backlog, so compare media work via a saturated
  // pattern instead: just check both complete).
  EXPECT_GE(d.Read(64, 64, t0), t0 + d.config().read_latency);
}

TEST(PmemDimms, ReadAmplificationCharged) {
  // Scattered cold reads fetch whole internal blocks: the media meter backs
  // up even though no writes happen.
  DeviceConfig cfg = DimmPmem();
  cfg.media_cycles_per_byte = 4.0;  // slow media to surface the backlog
  PmemDevice d(cfg);
  uint64_t now = 10000;
  uint64_t last = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    last = d.Read(i * 256 * 7, 64, now);
  }
  // With ~341 cycles of media work per fetch all issued at once, the last
  // read completes far in the future.
  EXPECT_GT(last, now + 100000u);
}

TEST(PmemDimms, PartialBlockFlushPaysRmwFetch) {
  // Two devices, same write count: full-block sequential stream vs one
  // line per block. The partial flushes must cost more media time.
  DeviceConfig cfg = DimmPmem();
  cfg.media_cycles_per_byte = 2.0;
  PmemDevice seq(cfg);
  PmemDevice scatter(cfg);
  uint64_t seq_last = 0;
  uint64_t scatter_last = 0;
  for (uint64_t i = 0; i < 4096; ++i) {
    seq_last = std::max(seq_last, seq.Write(i * 64, 64, 0));
    scatter_last =
        std::max(scatter_last, scatter.Write(i * 256 * 7, 64, 0));
  }
  EXPECT_GT(scatter_last, seq_last);
}

}  // namespace
}  // namespace prestore
