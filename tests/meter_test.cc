// BandwidthMeter: the backlog-based reservation primitive every shared
// device stands on. Its contract — skew tolerance, work conservation,
// correct pacing — is what keeps multi-core simulations honest.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/sim/device.h"
#include "src/util/fastdiv.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

TEST(Meter, NoDelayUnderCapacity) {
  BandwidthMeter meter;
  uint64_t now = 10000;
  for (int i = 0; i < 100; ++i) {
    // 10 cycles of work every 100 cycles: 10% duty, never queues.
    EXPECT_EQ(meter.Reserve(10, now), 0u) << i;
    now += 100;
  }
}

TEST(Meter, PacesSustainedOverload) {
  BandwidthMeter meter;
  uint64_t now = 10000;
  uint64_t total_delay = 0;
  // 200 cycles of work every 100 cycles: 2x overload. Total queueing must
  // grow linearly (the requester would be paced to the device rate).
  for (int i = 0; i < 100; ++i) {
    total_delay = meter.Reserve(200, now);
    now += 100;
  }
  // After 100 requests the backlog is ~100 * (200 - 100) = 10000 cycles.
  EXPECT_GT(total_delay, 8000u);
  EXPECT_LT(total_delay, 12000u);
}

TEST(Meter, IdleCreditIsForgotten) {
  BandwidthMeter meter;
  meter.Reserve(10, 1000);
  // A long idle period must not bank capacity for a later burst beyond the
  // window: after the gap, a burst still queues.
  uint64_t delay = 0;
  for (int i = 0; i < 100; ++i) {
    delay = meter.Reserve(100, 1000000);  // 10000 cycles of work at once
  }
  EXPECT_GT(delay, 8000u);
}

TEST(Meter, ClockSkewDoesNotCreatePhantomQueueing) {
  // The core property: a requester far ahead in time must not delay one
  // behind it (within the window) when the device is keeping up.
  BandwidthMeter meter;
  meter.Reserve(5, 100000);  // "leader" core, tiny work
  // The "laggard" 1000 cycles behind may at most queue behind the leader's
  // 5 cycles of real work — never behind its clock.
  EXPECT_LE(meter.Reserve(5, 99000), 5u);
}

TEST(Meter, BacklogObservation) {
  BandwidthMeter meter;
  EXPECT_EQ(meter.BacklogAt(1000), 0u);
  meter.Reserve(5000, 1000);
  EXPECT_GT(meter.BacklogAt(1000), 3000u);
  // Much later the backlog has drained.
  EXPECT_EQ(meter.BacklogAt(100000), 0u);
}

TEST(Meter, ConcurrentReservationsConserveWork) {
  // Work conservation under threads: total delay across requesters must be
  // at least (total work - elapsed capacity), never wildly more.
  BandwidthMeter meter;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  constexpr uint64_t kCost = 50;
  std::vector<uint64_t> delays(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t now = 50000 + t * 100;
      for (int i = 0; i < kPerThread; ++i) {
        delays[t] += meter.Reserve(kCost, now);
        now += 10;  // each thread demands 5 cycles of work per cycle
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Total work = 4 * 1000 * 50 = 200000 over ~10000 cycles of wall time:
  // ~190000 cycles of queueing must have been charged somewhere.
  uint64_t total = 0;
  for (uint64_t d : delays) {
    total += d;
  }
  EXPECT_GT(total, 100000u);
}

// ---- Closed-form batch charging (the miss-leg fast path's algebra) ----

TEST(Meter, ReserveRunEqualsSinglesAcrossRandomInterleavings) {
  // The contract ReserveRun's closed form rests on: a batch of K
  // reservations sharing one issue time leaves the meter in EXACTLY the
  // state K single Reserve() calls would, and its returned first delay
  // matches the first single's, for any surrounding traffic pattern. Replay
  // a randomized schedule of runs, stray singles, idle gaps, and backlog
  // observations against a run-charged meter and a singles-charged twin.
  Xoshiro256 rng(0x5eedULL);
  for (int trial = 0; trial < 32; ++trial) {
    BandwidthMeter batched;
    BandwidthMeter singles;
    uint64_t now = 1000 + rng.Below(5000);
    for (int step = 0; step < 200; ++step) {
      // Idle gaps up to several windows long retire backlog in both.
      now += rng.Below(3 * BandwidthMeter::kWindow);
      const uint64_t cost = 1 + rng.Below(400);
      const uint64_t count = 1 + rng.Below(8);
      const uint64_t run_delay = batched.ReserveRun(cost, count, now);
      uint64_t first_single = 0;
      for (uint64_t i = 0; i < count; ++i) {
        const uint64_t d = singles.Reserve(cost, now);
        if (i == 0) {
          first_single = d;
        } else {
          // The analytical recurrence: reservation i queues behind the
          // i-1 batch-mates issued at the same instant.
          ASSERT_EQ(d, first_single + i * cost) << trial << "/" << step;
        }
      }
      ASSERT_EQ(run_delay, first_single) << trial << "/" << step;
      ASSERT_EQ(batched.WorkMark(), singles.WorkMark())
          << trial << "/" << step;
      const uint64_t observe = now + rng.Below(BandwidthMeter::kWindow);
      ASSERT_EQ(batched.BacklogAt(observe), singles.BacklogAt(observe))
          << trial << "/" << step;
    }
  }
}

TEST(Meter, BacklogRetiresMonotonicallyUnderIdle) {
  // With no new reservations, an advancing observer clock must only ever
  // shrink the backlog (the reference is monotone), and the observed value
  // must never wrap negative (it is a clamped difference).
  BandwidthMeter meter;
  uint64_t now = 10000;
  for (int i = 0; i < 50; ++i) {
    meter.Reserve(500, now);  // pile up ~25000 cycles of work
  }
  uint64_t prev = meter.BacklogAt(now);
  EXPECT_GT(prev, 0u);
  for (int i = 0; i < 200; ++i) {
    now += 250;
    const uint64_t b = meter.BacklogAt(now);
    ASSERT_LE(b, prev) << "backlog grew under idle at step " << i;
    ASSERT_LT(b, uint64_t{1} << 60) << "backlog wrapped at step " << i;
    prev = b;
  }
  EXPECT_EQ(prev, 0u);
}

// ---- Exact strength-reduced modulo (victim-pick fast path) ----

TEST(FastDiv, ModReciprocalExactForAllSmallDivisors) {
  // PickVictim indexes way_mod_[n] for every associativity the configs can
  // express; the closed form must be exact, not approximate, or victim
  // choices (and digests) drift. Exhaustive small remainders plus random
  // 64-bit values for every divisor up to 64.
  Xoshiro256 rng(0xfa57d1ULL);
  for (uint64_t n = 1; n <= 64; ++n) {
    const ModReciprocal mod(n);
    for (uint64_t r = 0; r < 4 * n + 16; ++r) {
      ASSERT_EQ(mod.Mod(r), r % n) << "n=" << n << " r=" << r;
    }
    for (int i = 0; i < 4096; ++i) {
      const uint64_t r = rng.Next();
      ASSERT_EQ(mod.Mod(r), r % n) << "n=" << n << " r=" << r;
    }
  }
}

// ---- PMEM DIMM-level behaviour ----

DeviceConfig DimmPmem() {
  DeviceConfig c;
  c.kind = DeviceKind::kPmem;
  c.read_latency = 170;
  c.write_latency = 90;
  c.cycles_per_byte = 0.01;
  c.internal_block_size = 256;
  c.internal_buffer_blocks = 8;
  c.interleave_dimms = 8;
  c.interleave_bytes = 4096;
  c.media_cycles_per_byte = 0.45;
  return c;
}

TEST(PmemDimms, SequentialStreamStaysInOneModule) {
  PmemDevice d(DimmPmem());
  // A 4KB sequential write stream fills one interleave unit: it coalesces
  // into 16 blocks, amp 1.0.
  for (uint64_t off = 0; off < 4096; off += 64) {
    d.Write(off, 64, 0);
  }
  d.Drain();
  EXPECT_DOUBLE_EQ(d.Stats().WriteAmplification(), 1.0);
}

TEST(PmemDimms, ManyInterleavedStreamsStillCoalesce) {
  PmemDevice d(DimmPmem());
  // 8 concurrent sequential streams, one per interleave unit: each lands in
  // its own module's buffer.
  for (uint64_t line = 0; line < 64; ++line) {
    for (uint64_t stream = 0; stream < 8; ++stream) {
      d.Write(stream * 4096 + line * 64, 64, 0);
    }
  }
  d.Drain();
  EXPECT_DOUBLE_EQ(d.Stats().WriteAmplification(), 1.0);
}

TEST(PmemDimms, ScatterThrashesEveryModule) {
  PmemDevice d(DimmPmem());
  // Block-strided writes thrash the per-module buffers: full amplification.
  for (uint64_t i = 0; i < 4096; ++i) {
    d.Write(i * 256 * 7, 64, 0);  // ×7: avoid perfect dimm rotation
  }
  d.Drain();
  EXPECT_GT(d.Stats().WriteAmplification(), 3.5);
}

TEST(PmemDimms, ReadsOfBufferedBlocksAreFree) {
  PmemDevice d(DimmPmem());
  d.Write(0, 64, 0);
  const uint64_t t0 = 100000;
  // The block is buffered: the read pays latency + interface only. A read
  // of a distant cold block pays the media fetch as well (its delay only
  // materializes under backlog, so compare media work via a saturated
  // pattern instead: just check both complete).
  EXPECT_GE(d.Read(64, 64, t0), t0 + d.config().read_latency);
}

TEST(PmemDimms, ReadAmplificationCharged) {
  // Scattered cold reads fetch whole internal blocks: the media meter backs
  // up even though no writes happen.
  DeviceConfig cfg = DimmPmem();
  cfg.media_cycles_per_byte = 4.0;  // slow media to surface the backlog
  PmemDevice d(cfg);
  uint64_t now = 10000;
  uint64_t last = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    last = d.Read(i * 256 * 7, 64, now);
  }
  // With ~341 cycles of media work per fetch all issued at once, the last
  // read completes far in the future.
  EXPECT_GT(last, now + 100000u);
}

TEST(PmemDimms, FastPathMatchesReferenceUnderRandomTraffic) {
  // The bit-identical digest contract, exercised at the device boundary:
  // the production PmemDevice (hinted block index, cached backlog
  // watermark, closed-form train charging) and the naive reference
  // implementation must return the same completion time for every op and
  // report the same backlog watermark at every probe, under randomized
  // traffic that mixes sequential runs, scatter, bursts, and idle gaps.
  DeviceConfig cfg = DimmPmem();
  cfg.media_cycles_per_byte = 1.5;  // slow media so backlog actually forms
  DeviceConfig ref_cfg = cfg;
  ref_cfg.reference_impl = true;
  PmemDevice fast(cfg);
  const std::unique_ptr<Device> ref = MakeDevice(ref_cfg);
  Xoshiro256 rng(0xdeefULL);
  uint64_t now = 5000;
  uint64_t seq_addr = 0;
  for (int op = 0; op < 20000; ++op) {
    switch (rng.Below(8)) {
      case 0:  // idle gap, then watermark probe on both
        now += rng.Below(4 * BandwidthMeter::kWindow);
        ASSERT_EQ(fast.InternalBacklogAt(now), ref->InternalBacklogAt(now))
            << "op " << op;
        break;
      case 1:
      case 2: {  // sequential write run (coalesces in the block buffers)
        const uint32_t lines = 1 + rng.Below(16);
        for (uint32_t i = 0; i < lines; ++i) {
          ASSERT_EQ(fast.Write(seq_addr, 64, now), ref->Write(seq_addr, 64, now))
              << "op " << op;
          seq_addr += 64;
        }
        break;
      }
      case 3: {  // scattered write (thrashes the buffers)
        const uint64_t addr = rng.Below(1 << 22) * 64;
        ASSERT_EQ(fast.Write(addr, 64, now), ref->Write(addr, 64, now))
            << "op " << op;
        break;
      }
      default: {  // read, scattered or near the sequential cursor
        const uint64_t addr = rng.Below(2) != 0
                                  ? rng.Below(1 << 22) * 64
                                  : seq_addr - 64 * rng.Below(8);
        ASSERT_EQ(fast.Read(addr, 64, now), ref->Read(addr, 64, now))
            << "op " << op;
        break;
      }
    }
    now += rng.Below(64);
  }
  fast.Drain();
  ref->Drain();
  const DeviceStats fs = fast.Stats();
  const DeviceStats rs = ref->Stats();
  EXPECT_EQ(fs.reads, rs.reads);
  EXPECT_EQ(fs.writes, rs.writes);
  EXPECT_EQ(fs.bytes_read, rs.bytes_read);
  EXPECT_EQ(fs.bytes_received, rs.bytes_received);
  EXPECT_EQ(fs.media_bytes_written, rs.media_bytes_written);
}

TEST(PmemDimms, PartialBlockFlushPaysRmwFetch) {
  // Two devices, same write count: full-block sequential stream vs one
  // line per block. The partial flushes must cost more media time.
  DeviceConfig cfg = DimmPmem();
  cfg.media_cycles_per_byte = 2.0;
  PmemDevice seq(cfg);
  PmemDevice scatter(cfg);
  uint64_t seq_last = 0;
  uint64_t scatter_last = 0;
  for (uint64_t i = 0; i < 4096; ++i) {
    seq_last = std::max(seq_last, seq.Write(i * 64, 64, 0));
    scatter_last =
        std::max(scatter_last, scatter.Write(i * 256 * 7, 64, 0));
  }
  EXPECT_GT(scatter_last, seq_last);
}

}  // namespace
}  // namespace prestore
