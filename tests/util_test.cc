#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "src/util/fastdiv.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/zipf.h"

namespace prestore {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ForkIndependent) {
  Xoshiro256 a(5);
  Xoshiro256 b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Zipf, RanksWithinBounds) {
  ZipfianGenerator zipf(1000);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(Zipf, RankZeroIsMostPopular) {
  ZipfianGenerator zipf(1000);
  Xoshiro256 rng(3);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, SkewMatchesTheory) {
  // With theta = 0.99 and n = 1000, rank 0 should get roughly 1/zeta(1000)
  // of the mass (~13%). Allow generous slack.
  ZipfianGenerator zipf(1000);
  Xoshiro256 rng(17);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    hits += zipf.Next(rng) == 0 ? 1 : 0;
  }
  const double frac = static_cast<double>(hits) / trials;
  EXPECT_GT(frac, 0.08);
  EXPECT_LT(frac, 0.20);
}

TEST(Zipf, ScrambledStaysInRange) {
  ZipfianGenerator zipf(12345);
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.NextScrambled(rng), 12345u);
  }
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_EQ(s.Count(), 8u);
}

TEST(RunningStat, MergeEqualsCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Xoshiro256 rng(1);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.NextDouble() * 10;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(a.Count(), all.Count());
}

TEST(Percentiles, OrderedQueries) {
  Percentiles p;
  for (int i = 100; i >= 1; --i) {
    p.Add(i);
  }
  EXPECT_DOUBLE_EQ(p.At(0), 1.0);
  EXPECT_DOUBLE_EQ(p.At(100), 100.0);
  EXPECT_NEAR(p.Median(), 50.0, 1.0);
  EXPECT_NEAR(p.At(90), 90.0, 1.0);
}

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::BucketFor(0), 0);
  EXPECT_EQ(Log2Histogram::BucketFor(1), 1);
  EXPECT_EQ(Log2Histogram::BucketFor(2), 2);
  EXPECT_EQ(Log2Histogram::BucketFor(3), 2);
  EXPECT_EQ(Log2Histogram::BucketFor(4), 3);
  EXPECT_EQ(Log2Histogram::BucketFor(1024), 11);
}

TEST(Log2Histogram, PercentileBucket) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Add(4);  // bucket 3
  }
  for (int i = 0; i < 10; ++i) {
    h.Add(1024);  // bucket 11
  }
  EXPECT_EQ(h.PercentileBucket(50), 3);
  EXPECT_EQ(h.PercentileBucket(99), 11);
}

// ModReciprocal must reproduce the hardware remainder exactly: the cache
// set-index fallback (SetAssocCache::GlobalSetOf, Machine::LlcShardIndexOf)
// substitutes it for `%` on every simulated access.
TEST(FastDiv, MatchesHardwareRemainderRandomized) {
  Xoshiro256 rng(0xd1f1d3);
  // Divisor mix: small, non-power-of-two set counts (the real use case),
  // powers of two, and random wide values.
  std::vector<uint64_t> divisors = {1, 2, 3, 5, 7, 48, 96, 640, 1000, 4096};
  for (int i = 0; i < 20; ++i) {
    divisors.push_back(rng.Next() | 1);
    divisors.push_back((rng.Next() % 100000) + 1);
  }
  for (const uint64_t d : divisors) {
    const ModReciprocal m(d);
    EXPECT_EQ(m.divisor(), d);
    for (const uint64_t n :
         {uint64_t{0}, uint64_t{1}, d - 1, d, d + 1, 2 * d, ~uint64_t{0},
          ~uint64_t{0} - 1, uint64_t{1} << 63}) {
      EXPECT_EQ(m.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (int j = 0; j < 1000; ++j) {
      const uint64_t n = rng.Next();
      ASSERT_EQ(m.Mod(n), n % d) << "n=" << n << " d=" << d;
    }
  }
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow("alpha", 1);
  t.AddRow("b", 2.5);
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

}  // namespace
}  // namespace prestore
