#include <gtest/gtest.h>

#include <cmath>
#include "src/nas/ft.h"
#include "src/nas/nas_common.h"
#include "src/sim/harness.h"

namespace prestore {
namespace {

class NasKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(NasKernels, RunsAndProducesFiniteChecksum) {
  Machine m(MachineA(1));
  auto kernel = MakeNasKernel(GetParam(), m, NasPrestore::kOff);
  ASSERT_NE(kernel, nullptr);
  kernel->Run(m.core(0));
  const double sum = kernel->Checksum(m.core(0));
  EXPECT_TRUE(std::isfinite(sum)) << sum;
}

TEST_P(NasKernels, PrestoreDoesNotChangeResults) {
  Machine m1(MachineA(1));
  Machine m2(MachineA(1));
  auto off = MakeNasKernel(GetParam(), m1, NasPrestore::kOff);
  auto on = MakeNasKernel(GetParam(), m2, NasPrestore::kOn);
  off->Run(m1.core(0));
  on->Run(m2.core(0));
  EXPECT_DOUBLE_EQ(off->Checksum(m1.core(0)), on->Checksum(m2.core(0)));
}

TEST_P(NasKernels, DeterministicAcrossRuns) {
  auto run = [&] {
    Machine m(MachineA(1));
    auto kernel = MakeNasKernel(GetParam(), m, NasPrestore::kOff);
    kernel->Run(m.core(0));
    return kernel->Checksum(m.core(0));
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NasKernels,
                         ::testing::ValuesIn(NasKernelNames()),
                         [](const auto& info) { return info.param; });

TEST(NasFactory, UnknownNameReturnsNull) {
  Machine m(MachineA(1));
  EXPECT_EQ(MakeNasKernel("nope", m, NasPrestore::kOff), nullptr);
}

TEST(NasFactory, NamesMatchTable2) {
  EXPECT_EQ(NasKernelNames().size(), 9u);
}

TEST(NasTable2, ClassificationFlags) {
  Machine m(MachineA(1));
  struct Expected {
    const char* name;
    bool write_intensive;
    bool sequential;
  };
  const Expected expected[] = {
      {"mg", true, true},  {"ft", true, true},  {"sp", true, true},
      {"bt", true, true},  {"ua", true, true},  {"is", true, false},
      {"cg", false, false}, {"ep", false, false}, {"lu", false, false},
  };
  for (const Expected& e : expected) {
    auto kernel = MakeNasKernel(e.name, m, NasPrestore::kOff);
    EXPECT_EQ(kernel->WriteIntensive(), e.write_intensive) << e.name;
    EXPECT_EQ(kernel->SequentialWrites(), e.sequential) << e.name;
  }
}

TEST(NasMg, CleanReducesAmplification) {
  auto amplification = [&](NasPrestore mode) {
    Machine m(MachineA(1));
    auto kernel = MakeNasKernel("mg", m, mode);
    m.ResetStats();
    kernel->Run(m.core(0));
    m.FlushAll();
    return m.target().Stats().WriteAmplification();
  };
  const double base = amplification(NasPrestore::kOff);
  const double clean = amplification(NasPrestore::kOn);
  EXPECT_LT(clean, base);
  EXPECT_LT(clean, 1.3);
}

TEST(NasFt, Fftz2MisuseSlowsDown) {
  // §7.4.2: cleaning the small rewritten FFT scratch costs ~3x.
  auto cycles = [&](FtPatch patch) {
    Machine m(MachineA(1));
    FtKernel kernel(m, NasPrestore::kOff, 1, patch);
    return RunOnCore(m, [&](Core& core) { kernel.Run(core); });
  };
  const uint64_t base = cycles(FtPatch::kNone);
  const uint64_t misuse = cycles(FtPatch::kFftz2Clean);
  EXPECT_GT(static_cast<double>(misuse) / base, 1.4);
}

TEST(NasFt, PatchVariantsAgreeFunctionally) {
  auto checksum = [&](FtPatch patch) {
    Machine m(MachineA(1));
    FtKernel kernel(m, NasPrestore::kOff, 1, patch);
    kernel.Run(m.core(0));
    return kernel.Checksum(m.core(0));
  };
  const double base = checksum(FtPatch::kNone);
  EXPECT_DOUBLE_EQ(base, checksum(FtPatch::kCffts1Clean));
  EXPECT_DOUBLE_EQ(base, checksum(FtPatch::kFftz2Clean));
}

TEST(NasIs, PrestoreHasNoEffect) {
  // §7.4.2: IS `rank` writes randomly; a pre-store neither helps nor hurts
  // beyond a small tolerance.
  auto cycles = [&](NasPrestore mode) {
    Machine m(MachineA(1));
    auto kernel = MakeNasKernel("is", m, mode);
    return RunOnCore(m, [&](Core& core) { kernel->Run(core); });
  };
  const uint64_t base = cycles(NasPrestore::kOff);
  const uint64_t on = cycles(NasPrestore::kOn);
  const double ratio = static_cast<double>(on) / base;
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.30);
}

}  // namespace
}  // namespace prestore
