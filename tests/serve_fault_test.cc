// The serving subsystem under injected device faults, with the online
// policy loop active: a write-heavy window whose tiny recycled arena turns
// the batch-close clean sweep into the Listing-3 misuse (clean, then
// rewrite while still resident) must drive the shard's governor regions
// into backoff — with latency spikes hammering the device at the same
// time — and a later read-mostly window, whose GET traffic evicts the
// arena between recycles, must reopen them through the governor's probes.
// Deterministic under fixed seeds: the fault schedule expands from the
// plan seed alone, and the client key streams are seeded per client.
#include <gtest/gtest.h>

#include <string>

#include "src/robust/fault_injector.h"
#include "src/serve/cluster.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"

namespace prestore {
namespace {

GovernorConfig FastGovernor() {
  GovernorConfig cfg;
  cfg.window_hints = 8;
  cfg.probe_period = 16;
  cfg.probe_window = 4;
  cfg.global_eval_window = 64;
  cfg.backoff_confirm_windows = 1;
  // One benign residual rewrite per 4-probe window must not pin the region
  // in backoff: eviction is probabilistic (QuadAge victims are drawn
  // randomly among the aged ways), so even a fully recovered regime leaks
  // an occasional resident rewrite.
  cfg.reopen_rewrite_rate = 0.25;
  return cfg;
}

FaultPlan SpikePlan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kLatencySpike,
                                 .mean_period_cycles = 60000,
                                 .duration_cycles = 25000,
                                 .magnitude = 400.0,
                                 .count = 10});
  return plan;
}

TEST(ServeFault, FaultScheduleIsDeterministic) {
  FaultInjector a(SpikePlan());
  FaultInjector b(SpikePlan());
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  ASSERT_GT(a.schedule().size(), 0u);
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].start_cycle, b.schedule()[i].start_cycle);
    EXPECT_EQ(a.schedule()[i].end_cycle, b.schedule()[i].end_cycle);
  }
  EXPECT_EQ(a.EventLog(), b.EventLog());
}

TEST(ServeFault, GovernedShardBacksOffAndReopens) {
  // Small LLC so the two serving windows sit on opposite sides of the
  // residency boundary. Write-heavy window: the 16 KiB arena recycles every
  // 32 ops with almost no interleaved fill traffic, so every cleaned line
  // is still cached when its slot is recrafted — pure Listing-3 misuse.
  // Read-mostly window: a recycle spans ~300 GETs streaming ~300 KiB of
  // misses through a 64-set QuadAge LLC (~80 fills per set), enough
  // mass-agings that the cleaned lines become victim candidates and are
  // (usually) evicted before the rewrite — the probes see a cold regime.
  MachineConfig mc = MachineA(2);
  mc.llc.size_bytes = 64 << 10;
  Machine machine(mc);

  ServeConfig cfg;
  cfg.ycsb.workload = YcsbWorkload::kA;
  cfg.ycsb.num_keys = 2048;
  cfg.ycsb.value_size = 1024;
  cfg.ycsb.threads = 1;
  cfg.ycsb.ops_per_thread = 600;
  cfg.ycsb.arena_slots = 16;  // recycles every 16 PUTs: the misuse
  cfg.ycsb.zipf_theta = 0.3;  // spread GETs so they actually evict
  cfg.ycsb.seed = 11;
  cfg.num_shards = 1;
  cfg.batch_max = 4;
  cfg.batch_window_cycles = 500;
  cfg.batched_clean = true;
  cfg.governed = true;
  cfg.governor = FastGovernor();
  KvServer server(machine, cfg);
  ASSERT_NE(server.governor(), nullptr);

  FaultInjector injector(SpikePlan());
  injector.Attach(machine);

  // Window 1: write-heavy misuse under latency spikes -> backoff.
  const ServeResult storm = ServeYcsb(machine, server);
  EXPECT_EQ(storm.failed_gets, 0u);
  ASSERT_EQ(storm.shard_policies.size(), 1u);
  const ShardPolicy after_storm = storm.shard_policies[0];
  EXPECT_GT(after_storm.regions, 0u);
  EXPECT_GE(after_storm.backoffs, 1u);
  EXPECT_GT(after_storm.rewrites, 0u);
  EXPECT_GT(after_storm.suppressed, 0u);

  // Window 2: read-mostly on the same server -> probes reopen the shard.
  server.SetWorkload(YcsbWorkload::kB, 3000);
  const ServeResult recovery = ServeYcsb(machine, server);
  EXPECT_EQ(recovery.failed_gets, 0u);
  ASSERT_EQ(recovery.shard_policies.size(), 1u);
  const ShardPolicy after_recovery = recovery.shard_policies[0];
  EXPECT_GE(after_recovery.backoffs, after_storm.backoffs);
  // The read-mostly regime must produce NEW reopens (the storm may already
  // flap through probe windows that got lucky; recovery must beat that).
  EXPECT_GT(after_recovery.reopens, after_storm.reopens);
  EXPECT_GE(after_recovery.reopens, 1u);
  // Reopened regions admit again: the admitted count must keep growing
  // past the storm's (probes alone would too, but far more slowly).
  EXPECT_GT(after_recovery.admitted, after_storm.admitted);

  // The injector saw the run and its log replays deterministically.
  EXPECT_FALSE(injector.EventLog().empty());
}

// ---- Node-level faults (cluster serving, DESIGN.md §11) ----

namespace {

FaultPlan NodePlan() {
  FaultPlan plan;
  plan.seed = 11;
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kNodeKill,
                                 .mean_period_cycles = 100000,
                                 .duration_cycles = 1,
                                 .magnitude = 1.0,
                                 .count = 1,
                                 .node = 1});
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kNodeDrain,
                                 .mean_period_cycles = 80000,
                                 .duration_cycles = 40000,
                                 .magnitude = 1.0,
                                 .count = 1,
                                 .node = 2});
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kNodeDegrade,
                                 .mean_period_cycles = 60000,
                                 .duration_cycles = 30000,
                                 .magnitude = 5000.0,
                                 .count = 2,
                                 .node = 0});
  return plan;
}

uint64_t StartOf(const FaultInjector& injector, FaultKind kind) {
  for (const FaultWindow& w : injector.schedule()) {
    if (w.kind == kind) {
      return w.start_cycle;
    }
  }
  return 0;
}

}  // namespace

TEST(NodeFault, KillIsPermanentAndPerNode) {
  FaultInjector injector(NodePlan());
  const uint64_t start = StartOf(injector, FaultKind::kNodeKill);
  ASSERT_GT(start, 0u);
  EXPECT_FALSE(injector.NodeKilled(1, start - 1));
  EXPECT_TRUE(injector.NodeKilled(1, start));
  // Permanent: active arbitrarily far past the window's end.
  EXPECT_TRUE(injector.NodeKilled(1, start + 100000000));
  // Other nodes are untouched.
  EXPECT_FALSE(injector.NodeKilled(0, start + 100000000));
  EXPECT_FALSE(injector.NodeKilled(2, start + 100000000));
}

TEST(NodeFault, DrainIsAWindowWithARejoinTime) {
  FaultInjector injector(NodePlan());
  uint64_t start = 0;
  uint64_t end = 0;
  for (const FaultWindow& w : injector.schedule()) {
    if (w.kind == FaultKind::kNodeDrain) {
      start = w.start_cycle;
      end = w.end_cycle;
    }
  }
  ASSERT_GT(start, 0u);
  ASSERT_GT(end, start);
  EXPECT_FALSE(injector.NodeDraining(2, start - 1));
  EXPECT_TRUE(injector.NodeDraining(2, start));
  EXPECT_TRUE(injector.NodeDraining(2, end - 1));
  EXPECT_FALSE(injector.NodeDraining(2, end));  // rejoined
  EXPECT_EQ(injector.DrainEndAfter(2, start), end);
  EXPECT_EQ(injector.DrainEndAfter(2, end), 0u);  // no active window
  EXPECT_FALSE(injector.NodeDraining(1, start));  // per-node
}

TEST(NodeFault, DegradeChargesExtraCyclesInsideItsWindows) {
  FaultInjector injector(NodePlan());
  uint64_t inside = 0;
  for (const FaultWindow& w : injector.schedule()) {
    if (w.kind == FaultKind::kNodeDegrade) {
      inside = w.start_cycle;
      EXPECT_EQ(injector.NodeDegradeCycles(0, w.start_cycle), 5000u);
      EXPECT_EQ(injector.NodeDegradeCycles(0, w.end_cycle), 0u);
      EXPECT_EQ(injector.NodeDegradeCycles(1, w.start_cycle), 0u);
    }
  }
  ASSERT_GT(inside, 0u);
}

TEST(NodeFault, RejectionLogLandsInEventLogDeterministically) {
  auto record = [](FaultInjector& injector) {
    // Two driver lanes logging interleaved rejections: per-lane order is
    // the replay contract.
    injector.RecordNodeRejection(0, FaultKind::kNodeKill, 1, 12345);
    injector.RecordNodeRejection(1, FaultKind::kNodeDrain, 2, 23456);
    injector.RecordNodeRejection(0, FaultKind::kNodeKill, 1, 34567);
  };
  FaultInjector a(NodePlan());
  FaultInjector b(NodePlan());
  record(a);
  record(b);
  const std::string log = a.EventLog();
  EXPECT_EQ(log, b.EventLog());
  EXPECT_NE(log.find("reject lane=0 ordinal=0 kind=node_kill node=1 "
                     "at=12345"),
            std::string::npos);
  EXPECT_NE(log.find("reject lane=1 ordinal=0 kind=node_drain node=2 "
                     "at=23456"),
            std::string::npos);
  EXPECT_NE(log.find("reject lane=0 ordinal=1 kind=node_kill node=1 "
                     "at=34567"),
            std::string::npos);
}

TEST(NodeFault, ClusterSendersObserveRetryAfterFromAKilledNode) {
  // A cluster whose node 0 is dead from cycle 0: every request that would
  // pick it as coordinator is refused with a retry-after and detours to a
  // live replica, and the injector's event log records each rejection.
  ServeConfig cfg;
  cfg.ycsb.workload = YcsbWorkload::kA;
  cfg.ycsb.num_keys = 256;
  cfg.ycsb.value_size = 256;
  cfg.ycsb.threads = 2;
  cfg.ycsb.ops_per_thread = 40;
  cfg.ycsb.arena_slots = 64;
  cfg.num_shards = 2;
  cfg.open_loop = true;
  cfg.open_loop_interval = 40000;
  cfg.max_inflight = 1;
  cfg.logical_clients = 2;
  cfg.cluster_nodes = 3;
  cfg.replication_factor = 3;
  ASSERT_EQ(cfg.Validate(), "");

  FaultPlan plan;
  plan.seed = 3;
  // Dead before the run starts: mean period 1 pins the window's start to
  // the first cycles of the schedule.
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kNodeKill,
                                 .mean_period_cycles = 1,
                                 .duration_cycles = 1,
                                 .magnitude = 1.0,
                                 .count = 1,
                                 .node = 0});
  FaultInjector injector(plan);
  KvCluster cluster(cfg, {MachineA(1), MachineBFast(1), MachineBSlow(1)},
                    &injector);
  const ClusterResult r = RunClusterYcsb(cluster);

  // No request hangs or is dropped; the dead node served nothing.
  EXPECT_EQ(r.ops, static_cast<uint64_t>(cluster.num_clients()) *
                       cfg.ycsb.ops_per_thread);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_GT(r.refusals, 0u);
  EXPECT_EQ(r.lost_acked_puts, 0u);
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_EQ(r.nodes[0].served, 0u);
  EXPECT_GT(r.nodes[1].served + r.nodes[2].served, 0u);

  // Each client-side refusal is in the injector's event log.
  const std::string log = injector.EventLog();
  EXPECT_NE(log.find("reject lane="), std::string::npos);
  EXPECT_NE(log.find("kind=node_kill node=0"), std::string::npos);
}

}  // namespace
}  // namespace prestore
