// The serving subsystem under injected device faults, with the online
// policy loop active: a write-heavy window whose tiny recycled arena turns
// the batch-close clean sweep into the Listing-3 misuse (clean, then
// rewrite while still resident) must drive the shard's governor regions
// into backoff — with latency spikes hammering the device at the same
// time — and a later read-mostly window, whose GET traffic evicts the
// arena between recycles, must reopen them through the governor's probes.
// Deterministic under fixed seeds: the fault schedule expands from the
// plan seed alone, and the client key streams are seeded per client.
#include <gtest/gtest.h>

#include "src/robust/fault_injector.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"

namespace prestore {
namespace {

GovernorConfig FastGovernor() {
  GovernorConfig cfg;
  cfg.window_hints = 8;
  cfg.probe_period = 16;
  cfg.probe_window = 4;
  cfg.global_eval_window = 64;
  cfg.backoff_confirm_windows = 1;
  // One benign residual rewrite per 4-probe window must not pin the region
  // in backoff: eviction is probabilistic (QuadAge victims are drawn
  // randomly among the aged ways), so even a fully recovered regime leaks
  // an occasional resident rewrite.
  cfg.reopen_rewrite_rate = 0.25;
  return cfg;
}

FaultPlan SpikePlan() {
  FaultPlan plan;
  plan.seed = 7;
  plan.specs.push_back(FaultSpec{.kind = FaultKind::kLatencySpike,
                                 .mean_period_cycles = 60000,
                                 .duration_cycles = 25000,
                                 .magnitude = 400.0,
                                 .count = 10});
  return plan;
}

TEST(ServeFault, FaultScheduleIsDeterministic) {
  FaultInjector a(SpikePlan());
  FaultInjector b(SpikePlan());
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  ASSERT_GT(a.schedule().size(), 0u);
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].start_cycle, b.schedule()[i].start_cycle);
    EXPECT_EQ(a.schedule()[i].end_cycle, b.schedule()[i].end_cycle);
  }
  EXPECT_EQ(a.EventLog(), b.EventLog());
}

TEST(ServeFault, GovernedShardBacksOffAndReopens) {
  // Small LLC so the two serving windows sit on opposite sides of the
  // residency boundary. Write-heavy window: the 16 KiB arena recycles every
  // 32 ops with almost no interleaved fill traffic, so every cleaned line
  // is still cached when its slot is recrafted — pure Listing-3 misuse.
  // Read-mostly window: a recycle spans ~300 GETs streaming ~300 KiB of
  // misses through a 64-set QuadAge LLC (~80 fills per set), enough
  // mass-agings that the cleaned lines become victim candidates and are
  // (usually) evicted before the rewrite — the probes see a cold regime.
  MachineConfig mc = MachineA(2);
  mc.llc.size_bytes = 64 << 10;
  Machine machine(mc);

  ServeConfig cfg;
  cfg.ycsb.workload = YcsbWorkload::kA;
  cfg.ycsb.num_keys = 2048;
  cfg.ycsb.value_size = 1024;
  cfg.ycsb.threads = 1;
  cfg.ycsb.ops_per_thread = 600;
  cfg.ycsb.arena_slots = 16;  // recycles every 16 PUTs: the misuse
  cfg.ycsb.zipf_theta = 0.3;  // spread GETs so they actually evict
  cfg.ycsb.seed = 11;
  cfg.num_shards = 1;
  cfg.batch_max = 4;
  cfg.batch_window_cycles = 500;
  cfg.batched_clean = true;
  cfg.governed = true;
  cfg.governor = FastGovernor();
  KvServer server(machine, cfg);
  ASSERT_NE(server.governor(), nullptr);

  FaultInjector injector(SpikePlan());
  injector.Attach(machine);

  // Window 1: write-heavy misuse under latency spikes -> backoff.
  const ServeResult storm = ServeYcsb(machine, server);
  EXPECT_EQ(storm.failed_gets, 0u);
  ASSERT_EQ(storm.shard_policies.size(), 1u);
  const ShardPolicy after_storm = storm.shard_policies[0];
  EXPECT_GT(after_storm.regions, 0u);
  EXPECT_GE(after_storm.backoffs, 1u);
  EXPECT_GT(after_storm.rewrites, 0u);
  EXPECT_GT(after_storm.suppressed, 0u);

  // Window 2: read-mostly on the same server -> probes reopen the shard.
  server.SetWorkload(YcsbWorkload::kB, 3000);
  const ServeResult recovery = ServeYcsb(machine, server);
  EXPECT_EQ(recovery.failed_gets, 0u);
  ASSERT_EQ(recovery.shard_policies.size(), 1u);
  const ShardPolicy after_recovery = recovery.shard_policies[0];
  EXPECT_GE(after_recovery.backoffs, after_storm.backoffs);
  // The read-mostly regime must produce NEW reopens (the storm may already
  // flap through probe windows that got lucky; recovery must beat that).
  EXPECT_GT(after_recovery.reopens, after_storm.reopens);
  EXPECT_GE(after_recovery.reopens, 1u);
  // Reopened regions admit again: the admitted count must keep growing
  // past the storm's (probes alone would too, but far more slowly).
  EXPECT_GT(after_recovery.admitted, after_storm.admitted);

  // The injector saw the run and its log replays deterministically.
  EXPECT_FALSE(injector.EventLog().empty());
}

}  // namespace
}  // namespace prestore
