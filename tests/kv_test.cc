#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/kv/clht.h"
#include "src/kv/masstree.h"
#include "src/kv/ycsb.h"
#include "src/sim/harness.h"
#include "src/util/rng.h"

namespace prestore {
namespace {

// ---- Shared conformance suite over both stores ----

enum class StoreKind { kClht, kMasstree };

class KvConformance : public ::testing::TestWithParam<StoreKind> {
 protected:
  KvConformance() : machine_(MachineA(4)) {
    switch (GetParam()) {
      case StoreKind::kClht:
        store_ = std::make_unique<ClhtMap>(machine_, 4096);
        break;
      case StoreKind::kMasstree:
        store_ = std::make_unique<Masstree>(machine_);
        break;
    }
  }

  Machine machine_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(KvConformance, MissingKeyReturnsZero) {
  EXPECT_EQ(store_->Get(machine_.core(0), 12345), 0u);
}

TEST_P(KvConformance, PutThenGet) {
  Core& core = machine_.core(0);
  const SimAddr v = machine_.Alloc(64);
  core.StoreU64(v, 777);
  store_->Put(core, 42, v);
  EXPECT_EQ(store_->Get(core, 42), v);
}

TEST_P(KvConformance, UpdateReplacesValue) {
  Core& core = machine_.core(0);
  const SimAddr v1 = machine_.Alloc(64);
  const SimAddr v2 = machine_.Alloc(64);
  store_->Put(core, 7, v1);
  store_->Put(core, 7, v2);
  EXPECT_EQ(store_->Get(core, 7), v2);
}

TEST_P(KvConformance, ManyKeysAgainstReference) {
  Core& core = machine_.core(0);
  std::map<uint64_t, SimAddr> ref;
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.Below(2000) + 1;
    const SimAddr v = machine_.Alloc(64);
    store_->Put(core, key, v);
    ref[key] = v;
  }
  for (const auto& [key, v] : ref) {
    EXPECT_EQ(store_->Get(core, key), v) << key;
  }
  EXPECT_EQ(store_->Get(core, 999999), 0u);
}

TEST_P(KvConformance, ConcurrentDisjointWriters) {
  constexpr uint64_t kPerThread = 800;
  RunParallel(machine_, 4, [&](Core& core, uint32_t tid) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      const uint64_t key = tid * kPerThread + i + 1;
      const SimAddr v = machine_.Alloc(64);
      core.StoreU64(v, key * 3);
      store_->Put(core, key, v);
    }
  });
  Core& core = machine_.core(0);
  for (uint64_t key = 1; key <= 4 * kPerThread; ++key) {
    const SimAddr v = store_->Get(core, key);
    ASSERT_NE(v, 0u) << key;
    EXPECT_EQ(core.LoadU64(v), key * 3);
  }
}

TEST_P(KvConformance, ConcurrentReadersDuringWrites) {
  Core& c0 = machine_.core(0);
  for (uint64_t key = 1; key <= 1000; ++key) {
    const SimAddr v = machine_.Alloc(64);
    c0.StoreU64(v, key);
    store_->Put(c0, key, v);
  }
  c0.Fence();
  RunParallel(machine_, 4, [&](Core& core, uint32_t tid) {
    Xoshiro256 rng(tid + 99);
    if (tid % 2 == 0) {
      for (int i = 0; i < 1500; ++i) {
        const uint64_t key = rng.Below(1000) + 1;
        const SimAddr v = store_->Get(core, key);
        ASSERT_NE(v, 0u);
        EXPECT_EQ(core.LoadU64(v) % 1000, key % 1000);
      }
    } else {
      for (int i = 0; i < 600; ++i) {
        const uint64_t key = rng.Below(1000) + 1;
        const SimAddr v = machine_.Alloc(64);
        core.StoreU64(v, key + 1000);
        store_->Put(core, key, v);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Stores, KvConformance,
                         ::testing::Values(StoreKind::kClht,
                                           StoreKind::kMasstree),
                         [](const auto& info) {
                           return info.param == StoreKind::kClht ? "Clht"
                                                                 : "Masstree";
                         });

// ---- Store-specific behaviour ----

TEST(Clht, OverflowChainsWork) {
  Machine m(MachineA(2));
  ClhtMap store(m, 2);  // tiny table: everything chains
  Core& core = m.core(0);
  for (uint64_t key = 1; key <= 100; ++key) {
    store.Put(core, key, key * 64);
  }
  EXPECT_GT(store.OverflowBuckets(), 10u);
  for (uint64_t key = 1; key <= 100; ++key) {
    EXPECT_EQ(store.Get(core, key), key * 64);
  }
}

TEST(MasstreeTree, SplitsKeepOrderAndHeight) {
  Machine m(MachineA(2));
  Masstree tree(m);
  Core& core = m.core(0);
  Xoshiro256 rng(5);
  std::map<uint64_t, SimAddr> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Next() | 1;
    tree.Put(core, key, key ^ 0xabc);
    ref[key] = key ^ 0xabc;
  }
  EXPECT_EQ(tree.CheckedSize(core), ref.size());
  EXPECT_GE(tree.Height(core), 3);
  int checked = 0;
  for (const auto& [key, v] : ref) {
    ASSERT_EQ(tree.Get(core, key), v);
    if (++checked >= 2000) {
      break;
    }
  }
}

TEST(MasstreeTree, SequentialInsertions) {
  Machine m(MachineA(2));
  Masstree tree(m);
  Core& core = m.core(0);
  for (uint64_t key = 1; key <= 5000; ++key) {
    tree.Put(core, key, key * 8);
  }
  EXPECT_EQ(tree.CheckedSize(core), 5000u);
  EXPECT_EQ(tree.Get(core, 1), 8u);
  EXPECT_EQ(tree.Get(core, 5000), 40000u);
}

// ---- Value crafting ----

TEST(Values, CraftAndCheckAllPolicies) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  const FuncToken tok{m.registry().Intern("craftValue", "t.cc:1")};
  for (const KvWritePolicy policy :
       {KvWritePolicy::kBaseline, KvWritePolicy::kClean,
        KvWritePolicy::kSkip}) {
    const SimAddr v = m.Alloc(1024);
    CraftValue(core, tok, v, 1024, 99, policy);
    core.Fence();
    EXPECT_TRUE(CheckValue(core, v, 1024, 99))
        << static_cast<int>(policy);
  }
}

TEST(Values, ArenaRecyclesSlots) {
  Machine m(MachineA(2));
  ValueArena arena(m, 4, 256);
  const SimAddr first = arena.NextSlot();
  arena.NextSlot();
  arena.NextSlot();
  arena.NextSlot();
  EXPECT_EQ(arena.NextSlot(), first);
}

// ---- YCSB ----

TEST(Ycsb, LoadMakesAllKeysVisible) {
  Machine m(MachineA(4));
  ClhtMap store(m, 8192);
  YcsbConfig cfg;
  cfg.num_keys = 4000;
  cfg.value_size = 128;
  cfg.threads = 4;
  YcsbLoad(m, store, cfg);
  Core& core = m.core(0);
  for (uint64_t key = 1; key <= cfg.num_keys; key += 37) {
    const SimAddr v = store.Get(core, key);
    ASSERT_NE(v, 0u) << key;
    EXPECT_TRUE(CheckValue(core, v, cfg.value_size, key));
  }
}

TEST(Ycsb, RunCompletesWithoutMisses) {
  Machine m(MachineA(4));
  ClhtMap store(m, 8192);
  YcsbConfig cfg;
  cfg.num_keys = 4000;
  cfg.value_size = 256;
  cfg.threads = 4;
  cfg.ops_per_thread = 800;
  YcsbLoad(m, store, cfg);
  const YcsbResult r = YcsbRun(m, store, cfg);
  EXPECT_EQ(r.failed_gets, 0u);
  EXPECT_EQ(r.ops, 4u * 800u);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.ThroughputPerMcycle(), 0.0);
}

TEST(Ycsb, WorkloadCHasNoWrites) {
  Machine m(MachineA(2));
  ClhtMap store(m, 4096);
  YcsbConfig cfg;
  cfg.workload = YcsbWorkload::kC;
  cfg.num_keys = 2000;
  cfg.value_size = 128;
  cfg.threads = 2;
  cfg.ops_per_thread = 500;
  YcsbLoad(m, store, cfg);
  m.ResetStats();
  const uint64_t stores_before =
      m.core(0).stats().stores + m.core(1).stats().stores;
  YcsbRun(m, store, cfg);
  const uint64_t stores_after =
      m.core(0).stats().stores + m.core(1).stats().stores;
  // Read-only workload: essentially no data stores (allow a few for locks).
  EXPECT_LT(stores_after - stores_before, 100u);
}

TEST(Ycsb, CleanPolicyReducesAmplification) {
  auto run = [&](KvWritePolicy policy) {
    Machine m(MachineA(8));
    ClhtMap store(m, 16384);
    YcsbConfig cfg;
    cfg.num_keys = 8000;
    cfg.value_size = 1024;
    cfg.threads = 8;  // the paper loads with 10 threads: PMEM must saturate
    cfg.ops_per_thread = 700;
    cfg.policy = policy;
    YcsbLoad(m, store, cfg);
    return YcsbRun(m, store, cfg);
  };
  const YcsbResult base = run(KvWritePolicy::kBaseline);
  const YcsbResult clean = run(KvWritePolicy::kClean);
  EXPECT_GT(base.write_amplification, clean.write_amplification + 0.2);
  EXPECT_GT(clean.ThroughputPerMcycle(), base.ThroughputPerMcycle());
}

TEST(MasstreeScan, OrderedRange) {
  Machine m(MachineA(2));
  Masstree tree(m);
  Core& core = m.core(0);
  for (uint64_t key = 10; key <= 2000; key += 10) {
    tree.Put(core, key, key * 8);
  }
  const auto out = tree.Scan(core, 500, 20);
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out.front().first, 500u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 500 + 10 * i);
    EXPECT_EQ(out[i].second, out[i].first * 8);
  }
}

TEST(MasstreeScan, CrossesLeaves) {
  Machine m(MachineA(2));
  Masstree tree(m);
  Core& core = m.core(0);
  for (uint64_t key = 1; key <= 500; ++key) {
    tree.Put(core, key, key);
  }
  // 500 keys span many 14-key leaves; a full scan must see all of them.
  const auto out = tree.Scan(core, 1, 500);
  ASSERT_EQ(out.size(), 500u);
  EXPECT_EQ(out.back().first, 500u);
}

TEST(MasstreeScan, StartBeyondEndIsEmpty) {
  Machine m(MachineA(2));
  Masstree tree(m);
  Core& core = m.core(0);
  tree.Put(core, 5, 50);
  EXPECT_TRUE(tree.Scan(core, 100, 10).empty());
  EXPECT_TRUE(tree.Scan(core, 1, 0).empty());
}

TEST(MasstreeScan, ConcurrentWritersDoNotBreakScans) {
  Machine m(MachineA(4));
  Masstree tree(m);
  Core& c0 = m.core(0);
  for (uint64_t key = 2; key <= 4000; key += 2) {
    tree.Put(c0, key, key);
  }
  c0.Fence();
  RunParallel(m, 4, [&](Core& core, uint32_t tid) {
    Xoshiro256 rng(tid + 5);
    if (tid == 0) {
      for (int i = 0; i < 200; ++i) {
        const uint64_t start = rng.Below(3000) + 1;
        const auto out = tree.Scan(core, start, 25);
        uint64_t prev = 0;
        for (const auto& [k, v] : out) {
          EXPECT_GT(k, prev);      // strictly ordered
          EXPECT_GE(k, start);     // within range
          EXPECT_EQ(v % 2, k % 2); // value matches writer scheme
          prev = k;
        }
      }
    } else {
      for (int i = 0; i < 400; ++i) {
        const uint64_t key = rng.Below(2000) * 2 + 1;  // odd keys
        tree.Put(core, key, key);
      }
    }
  });
}

TEST(Ycsb, WorkloadFReadsBeforeWriting) {
  Machine m(MachineA(2));
  ClhtMap store(m, 4096);
  YcsbConfig cfg;
  cfg.workload = YcsbWorkload::kF;
  cfg.num_keys = 2000;
  cfg.value_size = 256;
  cfg.threads = 2;
  cfg.ops_per_thread = 400;
  YcsbLoad(m, store, cfg);
  const YcsbResult r = YcsbRun(m, store, cfg);
  EXPECT_EQ(r.failed_gets, 0u);
  // RMW does both a full-value read and a full-value write per update: the
  // read volume exceeds workload A's at the same op count.
  EXPECT_GT(r.ops, 0u);
}

}  // namespace
}  // namespace prestore
