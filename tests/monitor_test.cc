// Online adaptive region monitor (DESIGN.md §13): scheme-rule grammar,
// split/merge behavior, verdicts on synthetic patterns, and the
// determinism contract — byte-identical region trees and scheme-action
// logs across repeated runs and across host thread counts.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/monitor/region_monitor.h"
#include "src/monitor/scheme.h"
#include "src/robust/governor.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/sim/replay.h"

namespace prestore {
namespace {

// ---- Config validation ----

TEST(MonitorConfig, ValidatesBounds) {
  MonitorConfig cfg;
  EXPECT_EQ(cfg.Validate(), "");

  cfg.sample_period = 0;
  EXPECT_NE(cfg.Validate(), "");
  cfg = MonitorConfig{};

  cfg.min_regions = 50;
  cfg.max_regions = 10;
  EXPECT_NE(cfg.Validate(), "");
  cfg = MonitorConfig{};

  cfg.max_regions = 100000;  // DAMON-style hard cap at 1000
  EXPECT_NE(cfg.Validate(), "");
  cfg = MonitorConfig{};

  cfg.merge_homogeneity = 1.5;
  EXPECT_NE(cfg.Validate(), "");
  cfg = MonitorConfig{};

  cfg.rules = "bogus: writez>=1 -> clean";
  EXPECT_NE(cfg.Validate(), "");
}

TEST(MonitorConfig, ConstructorThrowsOnBadConfig) {
  Machine machine(MachineA(1));
  MonitorConfig cfg;
  cfg.probe_period = 0;
  EXPECT_THROW(RegionMonitor(machine, cfg), std::invalid_argument);
}

// ---- Scheme grammar ----

TEST(SchemeRules, ParsesAndRoundTrips) {
  const std::string text =
      "# suppress hot rewrites\n"
      "hot: cleans>=8 rewrites>=0.5 -> none suppress\n"
      "seqw: writes>=0.5 seq>=0.25 noread>=3 -> clean admit\n";
  std::vector<SchemeRule> rules;
  ASSERT_EQ(ParseSchemeRules(text, &rules), "");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "hot");
  EXPECT_EQ(rules[0].advice, Advice::kNone);
  EXPECT_EQ(rules[0].gate, HintGate::kSuppress);
  EXPECT_EQ(rules[1].advice, Advice::kClean);
  EXPECT_EQ(rules[1].gate, HintGate::kAdmit);
  ASSERT_EQ(rules[1].predicates.size(), 3u);
  EXPECT_EQ(rules[1].predicates[2].field, SchemeField::kNoReadIntervals);
  EXPECT_TRUE(rules[1].predicates[2].at_least);
  EXPECT_DOUBLE_EQ(rules[1].predicates[2].bound, 3.0);

  // Round-trip: format then re-parse yields the same rules.
  std::vector<SchemeRule> again;
  ASSERT_EQ(ParseSchemeRules(FormatSchemeRules(rules), &again), "");
  ASSERT_EQ(again.size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(again[i].name, rules[i].name);
    EXPECT_EQ(again[i].advice, rules[i].advice);
    EXPECT_EQ(again[i].gate, rules[i].gate);
    EXPECT_EQ(again[i].predicates.size(), rules[i].predicates.size());
  }
}

TEST(SchemeRules, RejectsBadInputWithLineNumbers) {
  std::vector<SchemeRule> rules;
  EXPECT_NE(ParseSchemeRules("r: writez>=1 -> clean", &rules), "");
  EXPECT_NE(ParseSchemeRules("r: writes>=x -> clean", &rules), "");
  EXPECT_NE(ParseSchemeRules("r: writes>=1 -> shiny", &rules), "");
  EXPECT_NE(ParseSchemeRules("r: writes>=1 clean", &rules), "");  // no ->
  const std::string err =
      ParseSchemeRules("ok: writes>=1 -> clean\nbad: seq>=y -> skip", &rules);
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_TRUE(rules.empty());  // out untouched on failure
}

TEST(SchemeEngine, FirstMatchWins) {
  const SchemeConfig cfg;
  SchemeEngine engine(DefaultSchemeRules(cfg));

  // Rewrite storm through issued cleans: the backoff rule (first) fires
  // even though the write/seq pattern would also match an admit rule.
  SchemeStats storm;
  storm.write_fraction = 1.0;
  storm.seq_fraction = 1.0;
  storm.noread_intervals = 10;
  storm.samples = 100;
  storm.cleans = 50;
  storm.rewrite_rate = 0.9;
  const SchemeVerdict backoff = engine.Evaluate(storm);
  EXPECT_EQ(backoff.gate, HintGate::kSuppress);
  EXPECT_EQ(backoff.rule, 0u);

  // Sequential writer, never re-read, no rewrites: clean/admit.
  SchemeStats seq;
  seq.write_fraction = 0.9;
  seq.seq_fraction = 0.8;
  seq.noread_intervals = 5;
  seq.samples = 100;
  const SchemeVerdict clean = engine.Evaluate(seq);
  EXPECT_EQ(clean.advice, Advice::kClean);
  EXPECT_EQ(clean.gate, HintGate::kAdmit);

  // Fence-bound writer: demote beats the clean rule (ordered earlier).
  SchemeStats fenced = seq;
  fenced.fence_rate = 0.5;
  const SchemeVerdict demote = engine.Evaluate(fenced);
  EXPECT_EQ(demote.advice, Advice::kDemote);

  // Nothing matches: the default verdict.
  const SchemeVerdict none = engine.Evaluate(SchemeStats{});
  EXPECT_EQ(none.rule, kNoRule);
  EXPECT_EQ(none.gate, HintGate::kDefault);
}

// ---- Region lifecycle ----

class RegionMonitorTest : public ::testing::Test {
 protected:
  RegionMonitorTest() : machine_(MachineA(1)) {}
  Machine machine_;
};

TEST_F(RegionMonitorTest, MonitorRejectsOverlapAndRequiresRanges) {
  RegionMonitor monitor(machine_);
  monitor.Monitor(0x100000000ULL, 0x100010000ULL);
  EXPECT_THROW(monitor.Monitor(0x100008000ULL, 0x100020000ULL),
               std::invalid_argument);
  RegionMonitor empty(machine_);
  EXPECT_THROW(empty.Attach(), std::logic_error);
}

TEST_F(RegionMonitorTest, SplitsStayBoundedAndCoverTheRange) {
  MonitorConfig cfg;
  cfg.sample_period = 4;
  cfg.aggregation_samples = 64;
  cfg.min_regions = 4;
  cfg.max_regions = 16;
  const SimAddr base = machine_.Alloc(1 << 20);
  RegionMonitor monitor(machine_, cfg);
  monitor.Monitor(base, base + (1 << 20));
  monitor.Attach();

  Core& core = machine_.core(0);
  // A hot stripe and a cold remainder: enough intervals for several
  // split/merge rounds.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 512; ++i) {
      core.StoreU64(base + (i % 128) * 64, i);
    }
    for (int i = 0; i < 64; ++i) {
      core.LoadU64(base + (512 << 10) + i * 4096);
    }
  }

  const RegionMonitor::Snapshot snap = monitor.TakeSnapshot();
  EXPECT_GT(snap.intervals, 0u);
  EXPECT_GT(snap.splits, 0u);
  ASSERT_GE(snap.regions.size(), cfg.min_regions);
  ASSERT_LE(snap.regions.size(), cfg.max_regions);
  // Regions tile the monitored range: sorted, disjoint, line-aligned.
  uint64_t covered = 0;
  for (size_t i = 0; i < snap.regions.size(); ++i) {
    const MonitorRegion& r = snap.regions[i];
    EXPECT_LT(r.start, r.end);
    EXPECT_EQ(r.start % 64, 0u);
    if (i > 0) {
      EXPECT_GE(r.start, snap.regions[i - 1].end);
    }
    covered += r.end - r.start;
  }
  EXPECT_EQ(covered, 1u << 20);
}

TEST_F(RegionMonitorTest, SuppressedRegionDropsHintsButProbes) {
  MonitorConfig cfg;
  cfg.probe_period = 8;
  const SimAddr base = machine_.Alloc(1 << 16);
  RegionMonitor monitor(machine_, cfg);
  monitor.Monitor(base, base + (1 << 16));
  // Force a suppress verdict through a rules override that always matches.
  // (Not attached: we drive AdviseHint directly.)
  MonitorConfig scfg = cfg;
  scfg.rules = "always: samples>=0 -> none suppress\n";
  RegionMonitor suppressing(machine_, scfg);
  suppressing.Monitor(base, base + (1 << 16));
  suppressing.Attach();
  Core& core = machine_.core(0);
  // One aggregation interval's worth of samples to install the verdict.
  for (uint64_t i = 0;
       i < scfg.aggregation_samples * scfg.sample_period + 64; ++i) {
    core.StoreU64(base + (i % 512) * 64, i);
  }
  ASSERT_EQ(suppressing.VerdictAt(base).gate, HintGate::kSuppress);

  uint64_t admitted = 0;
  uint64_t dropped = 0;
  for (int i = 0; i < 64; ++i) {
    if (suppressing.AdviseHint(0, base, PrestoreOp::kClean, 0) ==
        HintFate::kIssue) {
      ++admitted;
    } else {
      ++dropped;
    }
  }
  // Every probe_period-th hint leaks through as a recovery probe.
  EXPECT_EQ(admitted, 64u / cfg.probe_period);
  EXPECT_EQ(dropped, 64u - admitted);

  // Host-side sweep gating agrees, and grants cover the per-line hints a
  // sweep would otherwise double-advance the probe counter with.
  uint64_t sweep_admits = 0;
  for (int i = 0; i < 32; ++i) {
    if (suppressing.AdviseSweep(base, 256) == HintFate::kIssue) {
      ++sweep_admits;
    }
  }
  EXPECT_GT(sweep_admits, 0u);
  EXPECT_LT(sweep_admits, 32u);
}

TEST_F(RegionMonitorTest, MonitoredGovernorSuppressesByVerdict) {
  GovernorConfig gcfg;
  gcfg.policy = GovernorPolicy::kMonitored;
  PrestoreGovernor governor(machine_, gcfg);
  MonitorConfig mcfg;
  mcfg.rules = "always: samples>=0 -> none suppress\n";
  const SimAddr base = machine_.Alloc(1 << 16);
  RegionMonitor monitor(machine_, mcfg);
  monitor.Monitor(base, base + (1 << 16));
  governor.SetRegionAdvisor(&monitor);
  monitor.Attach();
  governor.Attach();

  Core& core = machine_.core(0);
  for (uint64_t i = 0;
       i < mcfg.aggregation_samples * mcfg.sample_period + 64; ++i) {
    core.StoreU64(base + (i % 512) * 64, i);
  }
  ASSERT_EQ(monitor.VerdictAt(base).gate, HintGate::kSuppress);
  for (int i = 0; i < 256; ++i) {
    core.Prestore(base + (i % 512) * 64, 64, PrestoreOp::kClean);
  }
  const PrestoreGovernor::Snapshot snap = governor.TakeSnapshot();
  EXPECT_GT(snap.suppressed_by_monitor, 0u);
}

// ---- Determinism ----

struct MonitoredReplay {
  uint64_t machine_digest = 0;
  uint64_t monitor_digest = 0;
  std::string actions;
};

MonitoredReplay RunMonitoredSliced(uint32_t host_threads) {
  Machine machine(MachineA(4));
  ReplayTraceConfig tcfg;
  tcfg.workers = 4;
  tcfg.ops_per_worker = 20000;
  tcfg.zipf_theta = 0.0;  // integer-only key stream (host-portable)
  const ReplayTrace trace = GenerateReplayTrace(machine, tcfg);

  MonitorConfig mcfg;
  mcfg.sample_period = 16;
  mcfg.aggregation_samples = 256;
  RegionMonitor monitor(machine, mcfg);
  monitor.Monitor(kTargetBase, kTargetBase + machine.target_allocated());
  monitor.Attach();

  ReplaySlicedOptions options;
  options.host_threads = host_threads;
  ReplaySliced(machine, trace, options);

  MonitoredReplay out;
  out.machine_digest = DigestMachine(machine, tcfg.workers);
  out.monitor_digest = monitor.DigestState();
  for (const MonitorAction& a : monitor.RecentActions()) {
    out.actions += a.ToString();
    out.actions += '\n';
  }
  return out;
}

TEST(MonitorDeterminism, ByteIdenticalAcrossRunsAndHostThreads) {
  const MonitoredReplay a = RunMonitoredSliced(1);
  const MonitoredReplay b = RunMonitoredSliced(1);  // same run repeated
  const MonitoredReplay c = RunMonitoredSliced(2);  // different host threads
  const MonitoredReplay d = RunMonitoredSliced(4);

  EXPECT_EQ(a.machine_digest, b.machine_digest);
  EXPECT_EQ(a.monitor_digest, b.monitor_digest);
  EXPECT_EQ(a.actions, b.actions);

  EXPECT_EQ(a.machine_digest, c.machine_digest);
  EXPECT_EQ(a.monitor_digest, c.monitor_digest);
  EXPECT_EQ(a.actions, c.actions);

  EXPECT_EQ(a.machine_digest, d.machine_digest);
  EXPECT_EQ(a.monitor_digest, d.monitor_digest);
  EXPECT_EQ(a.actions, d.actions);

  EXPECT_FALSE(a.actions.empty());  // the run actually exercised the log
}

TEST(MonitorDeterminism, SamplerDoesNotPerturbUnmonitoredDigest) {
  // Attaching and detaching a sampler must leave no trace in a later
  // unmonitored replay on the same machine config (countdown only resets
  // when the period changes; unrelated RefreshFastPathFlags calls keep it).
  const auto digest = [](bool monitored) {
    Machine machine(MachineA(2));
    ReplayTraceConfig tcfg;
    tcfg.workers = 2;
    tcfg.ops_per_worker = 10000;
    tcfg.zipf_theta = 0.0;
    const ReplayTrace trace = GenerateReplayTrace(machine, tcfg);
    RegionMonitor monitor(machine);
    if (monitored) {
      monitor.Monitor(kTargetBase, kTargetBase + machine.target_allocated());
      monitor.Attach();
    }
    ReplaySequential(machine, trace);
    return DigestMachine(machine, tcfg.workers);
  };
  // The sampler adds zero simulated cost: monitored and unmonitored replays
  // of the same trace land on the same machine end state.
  EXPECT_EQ(digest(false), digest(true));
}

}  // namespace
}  // namespace prestore
