#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/sim/cache.h"

namespace prestore {
namespace {

CacheConfig SmallCache(ReplacementPolicy policy, uint32_t ways = 4,
                       uint64_t sets = 8) {
  return CacheConfig{.size_bytes = sets * ways * 64,
                     .ways = ways,
                     .line_size = 64,
                     .hit_latency = 4,
                     .policy = policy};
}

TEST(Cache, MissThenHit) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru), 1);
  EXPECT_EQ(c.Probe(0), nullptr);
  CacheLineMeta* meta = nullptr;
  auto victim = c.Insert(0, false, &meta);
  EXPECT_FALSE(victim.valid);
  ASSERT_NE(meta, nullptr);
  EXPECT_NE(c.Probe(0), nullptr);
  EXPECT_NE(c.Touch(0), nullptr);
}

TEST(Cache, SetIndexing) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru), 1);
  // 8 sets, 64B lines: addresses 64*8 apart map to the same set.
  EXPECT_EQ(c.SetIndexOf(0), c.SetIndexOf(64 * 8));
  EXPECT_NE(c.SetIndexOf(0), c.SetIndexOf(64));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru), 1);
  const uint64_t stride = 64 * 8;  // same set
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * stride, false, nullptr);
  }
  // Touch 0 so it is MRU; inserting a 5th line must evict line 1*stride.
  c.Touch(0);
  CacheLineMeta* meta = nullptr;
  auto victim = c.Insert(4 * stride, false, &meta);
  ASSERT_TRUE(victim.valid);
  EXPECT_EQ(victim.line_addr, stride);
}

TEST(Cache, FifoIgnoresTouches) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kFifo), 1);
  const uint64_t stride = 64 * 8;
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * stride, false, nullptr);
  }
  c.Touch(0);  // would rescue line 0 under LRU
  auto victim = c.Insert(4 * stride, false, nullptr);
  ASSERT_TRUE(victim.valid);
  EXPECT_EQ(victim.line_addr, 0u);
}

TEST(Cache, VictimCarriesDirtyBit) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru, 1, 1), 1);
  CacheLineMeta* meta = nullptr;
  c.Insert(0, true, &meta);
  auto victim = c.Insert(64, false, nullptr);
  ASSERT_TRUE(victim.valid);
  EXPECT_TRUE(victim.dirty);
}

TEST(Cache, RemoveInvalidates) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru), 1);
  c.Insert(128, true, nullptr);
  CacheLineMeta was;
  EXPECT_TRUE(c.Remove(128, &was));
  EXPECT_TRUE(was.dirty);
  EXPECT_EQ(c.Probe(128), nullptr);
  EXPECT_FALSE(c.Remove(128));
}

TEST(Cache, InvalidWaysFillFirst) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kRandom), 1);
  const uint64_t stride = 64 * 8;
  for (uint64_t i = 0; i < 4; ++i) {
    auto victim = c.Insert(i * stride, false, nullptr);
    EXPECT_FALSE(victim.valid) << "way " << i;
  }
}

TEST(Cache, TreePlruProtectsRecentlyTouched) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kTreePlru), 1);
  const uint64_t stride = 64 * 8;
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * stride, false, nullptr);
  }
  c.Touch(3 * stride);  // most recently used; must survive next eviction
  auto victim = c.Insert(4 * stride, false, nullptr);
  ASSERT_TRUE(victim.valid);
  EXPECT_NE(victim.line_addr, 3 * stride);
}

TEST(Cache, QuadAgeHitResetsAge) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kQuadAge), 1);
  const uint64_t stride = 64 * 8;
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * stride, false, nullptr);
  }
  // Touch line 2 repeatedly: it should never be the next victim.
  c.Touch(2 * stride);
  auto victim = c.Insert(4 * stride, false, nullptr);
  ASSERT_TRUE(victim.valid);
  EXPECT_NE(victim.line_addr, 2 * stride);
}

TEST(Cache, QuadAgeEvictionsLookScattered) {
  // Fill many sets by writing a long array twice its capacity: under
  // quad-age the victims of the second pass must NOT be exactly the
  // sequential first-pass order (the §4.1 "random eviction" behaviour).
  SetAssocCache c(SmallCache(ReplacementPolicy::kQuadAge, 16, 64), 7);
  std::vector<uint64_t> victims;
  const uint64_t lines = 64 * 16 * 3;  // 3x capacity
  for (uint64_t i = 0; i < lines; ++i) {
    auto victim = c.Insert(i * 64, false, nullptr);
    if (victim.valid) {
      victims.push_back(victim.line_addr);
    }
  }
  ASSERT_GT(victims.size(), 100u);
  size_t sequential_pairs = 0;
  for (size_t i = 1; i < victims.size(); ++i) {
    if (victims[i] == victims[i - 1] + 64) {
      ++sequential_pairs;
    }
  }
  // Strictly sequential eviction would make every pair adjacent.
  EXPECT_LT(sequential_pairs, victims.size() / 2);
}

TEST(Cache, LruSequentialFillEvictsSequentially) {
  // Contrast with the test above: strict LRU on a sequential overwrite
  // evicts in close-to-sequential order within each set cycle.
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru, 4, 16), 7);
  const uint64_t capacity_lines = 4 * 16;
  for (uint64_t i = 0; i < capacity_lines; ++i) {
    c.Insert(i * 64, false, nullptr);
  }
  std::vector<uint64_t> victims;
  for (uint64_t i = capacity_lines; i < 2 * capacity_lines; ++i) {
    auto victim = c.Insert(i * 64, false, nullptr);
    ASSERT_TRUE(victim.valid);
    victims.push_back(victim.line_addr);
  }
  for (size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(victims[i], i * 64);
  }
}

TEST(Cache, AgeLineMakesLinePreferredVictim) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kQuadAge), 1);
  const uint64_t stride = 64 * 8;
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * stride, false, nullptr);
  }
  c.AgeLine(1 * stride);
  auto victim = c.Insert(4 * stride, false, nullptr);
  ASSERT_TRUE(victim.valid);
  EXPECT_EQ(victim.line_addr, 1 * stride);
}

TEST(Cache, ValidLinesEnumeration) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru), 1);
  std::set<uint64_t> inserted;
  for (uint64_t i = 0; i < 10; ++i) {
    c.Insert(i * 64, false, nullptr);
    inserted.insert(i * 64);
  }
  auto lines = c.ValidLines();
  EXPECT_EQ(lines.size(), 10u);
  for (uint64_t l : lines) {
    EXPECT_TRUE(inserted.count(l));
  }
}

class ReplacementSweep : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(ReplacementSweep, NeverEvictsOnHit) {
  SetAssocCache c(SmallCache(GetParam()), 1);
  c.Insert(0, false, nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(c.Touch(0), nullptr);
  }
  EXPECT_NE(c.Probe(0), nullptr);
}

TEST_P(ReplacementSweep, CapacityNeverExceeded) {
  SetAssocCache c(SmallCache(GetParam(), 4, 8), 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    c.Insert(i * 64, i % 2 == 0, nullptr);
  }
  EXPECT_LE(c.ValidLines().size(), 4u * 8u);
}

TEST_P(ReplacementSweep, VictimIsFromSameSet) {
  SetAssocCache c(SmallCache(GetParam(), 2, 8), 1);
  for (uint64_t i = 0; i < 200; ++i) {
    const uint64_t addr = i * 64;
    auto victim = c.Insert(addr, false, nullptr);
    if (victim.valid) {
      EXPECT_EQ(c.SetIndexOf(victim.line_addr), c.SetIndexOf(addr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementSweep,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kTreePlru,
                                           ReplacementPolicy::kRandom,
                                           ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kQuadAge));

// Shard views must make exactly the decisions the monolithic cache makes:
// same hits, same victims, same end state. Drives an identical op sequence
// through one whole cache and through 4 shard views (each op routed to the
// shard owning its set) and compares every outcome. This is the property
// the sharded-LLC determinism guarantee stands on.
class ShardEquivalence
    : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(ShardEquivalence, ShardViewsMatchMonolithicCache) {
  const CacheConfig cfg = SmallCache(GetParam(), 4, 16);
  constexpr uint64_t kStride = 4;
  constexpr uint64_t kSeed = 0x5eedULL;
  SetAssocCache whole(cfg, kSeed);
  std::vector<SetAssocCache> shards;
  shards.reserve(kStride);
  for (uint64_t s = 0; s < kStride; ++s) {
    shards.emplace_back(cfg, kSeed, s, kStride);
  }
  const auto shard_for = [&](uint64_t addr) -> SetAssocCache& {
    return shards[whole.GlobalSetOf(addr) % kStride];
  };

  // Mixed op sequence: inserts with reuse (touch hits), removals, aging.
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 7;
    x ^= x >> 9;  // xorshift: deterministic address stream
    const uint64_t addr = (x % 512) * 64;
    SetAssocCache& shard = shard_for(addr);
    const int op = i % 16;
    if (op == 13) {
      CacheLineMeta was_whole, was_shard;
      const bool rw = whole.Remove(addr, &was_whole);
      const bool rs = shard.Remove(addr, &was_shard);
      ASSERT_EQ(rw, rs) << "remove presence diverged at op " << i;
      if (rw) {
        EXPECT_EQ(was_whole.dirty, was_shard.dirty);
      }
      continue;
    }
    if (op == 14) {
      whole.AgeLine(addr);
      shard.AgeLine(addr);
      continue;
    }
    CacheLineMeta* hit_whole = whole.Touch(addr);
    CacheLineMeta* hit_shard = shard.Touch(addr);
    ASSERT_EQ(hit_whole == nullptr, hit_shard == nullptr)
        << "hit/miss diverged at op " << i;
    if (hit_whole != nullptr) {
      hit_whole->dirty = true;
      hit_shard->dirty = true;
      continue;
    }
    const bool dirty = (op & 1) != 0;
    auto vw = whole.Insert(addr, dirty, nullptr);
    auto vs = shard.Insert(addr, dirty, nullptr);
    ASSERT_EQ(vw.valid, vs.valid) << "victim presence diverged at op " << i;
    if (vw.valid) {
      ASSERT_EQ(vw.line_addr, vs.line_addr)
          << "victim choice diverged at op " << i;
      EXPECT_EQ(vw.dirty, vs.dirty);
    }
  }

  // End state: the union of the shard views' lines == the whole cache's.
  std::vector<uint64_t> whole_lines = whole.ValidLines();
  std::vector<uint64_t> shard_lines;
  for (const SetAssocCache& s : shards) {
    for (uint64_t line : s.ValidLines()) {
      shard_lines.push_back(line);
    }
  }
  std::sort(whole_lines.begin(), whole_lines.end());
  std::sort(shard_lines.begin(), shard_lines.end());
  EXPECT_EQ(whole_lines, shard_lines);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ShardEquivalence,
                         ::testing::Values(ReplacementPolicy::kLru,
                                           ReplacementPolicy::kTreePlru,
                                           ReplacementPolicy::kRandom,
                                           ReplacementPolicy::kFifo,
                                           ReplacementPolicy::kQuadAge));

// The way hint is a pure accelerator: after the hinted line is removed and
// the set refilled, lookups must still resolve correctly (a stale hint may
// only cost a scan, never return the wrong line).
TEST(Cache, WayHintSafeAfterRemove) {
  SetAssocCache c(SmallCache(ReplacementPolicy::kLru, 4, 1), 1);
  for (uint64_t i = 0; i < 4; ++i) {
    c.Insert(i * 64, false, nullptr);
  }
  ASSERT_NE(c.Touch(2 * 64), nullptr);  // hint now points at way of line 2
  ASSERT_TRUE(c.Remove(2 * 64));
  EXPECT_EQ(c.Probe(2 * 64), nullptr);  // stale hint must not fake a hit
  // Refill the vacated way with a different line; the old hint slot now
  // holds the new line and must resolve to it, while the others still hit.
  c.Insert(9 * 64, false, nullptr);
  EXPECT_NE(c.Probe(9 * 64), nullptr);
  EXPECT_NE(c.Probe(0), nullptr);
  EXPECT_NE(c.Probe(64), nullptr);
  EXPECT_NE(c.Probe(3 * 64), nullptr);
}

}  // namespace
}  // namespace prestore
