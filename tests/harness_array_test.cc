// RunParallel / SpinPause / SimArray: the scaffolding workloads stand on.
#include <gtest/gtest.h>

#include <atomic>

#include "src/sim/array.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"

namespace prestore {
namespace {

TEST(Harness, AlignsClocksAtStart) {
  Machine m(MachineA(2));
  m.core(0).Execute(5000);  // core 0 races ahead before the parallel phase
  RunParallel(m, 2, [&](Core& core, uint32_t) { core.Execute(10); });
  // Both cores started from the aligned max: their clocks are close.
  const uint64_t a = m.core(0).now();
  const uint64_t b = m.core(1).now();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 5010u);
}

TEST(Harness, ReturnsSlowestCoreTime) {
  Machine m(MachineA(3));
  const uint64_t cycles = RunParallel(m, 3, [&](Core& core, uint32_t tid) {
    core.Execute(100 * (tid + 1));
  });
  EXPECT_EQ(cycles, 300u);
}

TEST(Harness, RunOnCoreMeasuresDelta) {
  Machine m(MachineA(1));
  m.core(0).Execute(123);
  const uint64_t cycles = RunOnCore(m, [](Core& core) { core.Execute(77); });
  EXPECT_EQ(cycles, 77u);
}

TEST(SpinPause, LaggardCatchesUpToLeader) {
  Machine m(MachineA(2));
  Core& leader = m.core(0);
  Core& laggard = m.core(1);
  leader.Execute(10000);
  leader.Fence();  // publishes the leader's clock
  const uint64_t before = laggard.now();
  for (int i = 0; i < 1000; ++i) {
    laggard.SpinPause(30);
  }
  EXPECT_GT(laggard.now(), before);
  // The spin never overtakes the leader's published clock.
  EXPECT_LE(laggard.now(), leader.now());
}

TEST(SpinPause, LeaderDoesNotRunAway) {
  Machine m(MachineA(2));
  Core& core = m.core(0);
  core.Execute(1000);
  core.Fence();
  const uint64_t before = core.now();
  for (int i = 0; i < 10000; ++i) {
    core.SpinPause(30);  // already the max: must not advance its own clock
  }
  EXPECT_EQ(core.now(), before);
}

TEST(SimArray, TypedRoundTrips) {
  Machine m(MachineA(1));
  Core& core = m.core(0);
  SimArray<uint64_t> u64s(m, 100);
  SimArray<uint32_t> u32s(m, 100);
  SimArray<double> doubles(m, 100);
  struct Pair {
    uint32_t a;
    uint32_t b;
    uint64_t c;
  };
  SimArray<Pair> pairs(m, 10);

  u64s.Set(core, 7, 0x1122334455667788ULL);
  EXPECT_EQ(u64s.Get(core, 7), 0x1122334455667788ULL);
  u32s.Set(core, 3, 0xabcdef01u);
  EXPECT_EQ(u32s.Get(core, 3), 0xabcdef01u);
  doubles.Set(core, 9, -2.5);
  EXPECT_DOUBLE_EQ(doubles.Get(core, 9), -2.5);
  pairs.Set(core, 2, Pair{1, 2, 3});
  const Pair p = pairs.Get(core, 2);
  EXPECT_EQ(p.a, 1u);
  EXPECT_EQ(p.b, 2u);
  EXPECT_EQ(p.c, 3u);
}

TEST(SimArray, AddressingIsContiguous) {
  Machine m(MachineA(1));
  SimArray<uint64_t> arr(m, 16);
  EXPECT_EQ(arr.AddrOf(0), arr.base());
  EXPECT_EQ(arr.AddrOf(5), arr.base() + 40);
  EXPECT_EQ(arr.bytes(), 128u);
}

TEST(SimArray, NtAndPrestorePreserveData) {
  Machine m(MachineA(1));
  Core& core = m.core(0);
  SimArray<uint64_t> arr(m, 64);
  for (uint64_t i = 0; i < 64; ++i) {
    arr.SetNt(core, i, i * 3);
  }
  arr.Prestore(core, 0, 64, PrestoreOp::kClean);
  core.Fence();
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(arr.Get(core, i), i * 3);
  }
}

}  // namespace
}  // namespace prestore
