// Adaptive pre-store governor for the simulator.
//
// Sits on the Machine's pre-store issue path (a PrestoreHook) and decides,
// per hint, whether issuing it can plausibly pay for itself. Three online
// signals drive the decision:
//
//  1. Per-region rewrite-after-clean rate — the Listing-3 misuse pattern
//     (§7.4.2): cleaning a line that is about to be rewritten turns one
//     coalesced writeback into several, multiplying media traffic. Regions
//     whose cleans keep getting re-dirtied are backed off with hysteresis
//     and probed for recovery (see governor_policy.h).
//  2. A global useless-overhead gate (§7.4.1): on a device with no
//     write-amplification headroom (internal block == cache line), hints
//     only help by overlapping publication with ordering fences; when the
//     workload (almost) never fences, every hint is pure issue overhead and
//     the gate suppresses them all (still with probing via the hysteresis
//     fence-rate band).
//  3. Device pressure — the target device's internal backlog and measured
//     write amplification are sampled periodically; under pressure the
//     rewrite backoff threshold tightens, since wasted writebacks are
//     costlier when the media is already behind.
//
// Suppressed hints cost no simulated cycles (a real governor would be a
// predicted branch around the hint instruction) and are counted in
// CoreStats::prestores_suppressed and in the governor's own snapshot.
#ifndef SRC_ROBUST_GOVERNOR_H_
#define SRC_ROBUST_GOVERNOR_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/robust/governor_policy.h"
#include "src/sim/hooks.h"

namespace prestore {

class Machine;

// Per-region verdict source for GovernorPolicy::kMonitored: replaces the
// fixed-shift RegionBackoff table with an external advisor (the adaptive
// region monitor, src/monitor/region_monitor.h). Called under the
// governor's lock, once per line-granular hint that survived the global
// gate; must not call back into the governor.
class RegionAdvisor {
 public:
  virtual ~RegionAdvisor() = default;
  virtual HintFate AdviseHint(uint8_t core, uint64_t line_addr, PrestoreOp op,
                              uint64_t now) = 0;
};

class PrestoreGovernor : public PrestoreHook {
 public:
  // Throws std::invalid_argument when config.Validate() rejects the
  // configuration.
  explicit PrestoreGovernor(Machine& machine, GovernorConfig config = {});

  // Installs the per-region advisor consulted in GovernorPolicy::kMonitored
  // mode (nullptr falls back to the fixed region machinery). Set before
  // Attach(); the advisor must outlive the governed runs.
  void SetRegionAdvisor(RegionAdvisor* advisor) { advisor_ = advisor; }

  // Registers this governor on the machine's pre-store issue path. The
  // governor must outlive the machine's measured runs.
  void Attach();

  // ---- PrestoreHook ----
  HintFate OnPrestoreHint(uint8_t core, uint64_t line_addr, PrestoreOp op,
                          uint64_t now, uint64_t* delay_cycles) override;
  void OnUselessHint(uint8_t core, uint64_t line_addr, PrestoreOp op) override;
  void OnRewriteAfterClean(uint8_t core, uint64_t line_addr,
                           uint64_t now) override;
  void OnFence(uint8_t core, uint64_t now) override;

  // ---- Exported decisions / counters ----

  struct RegionSnapshot {
    uint64_t region_base = 0;  // first byte of the region
    RegionBackoff::State state = RegionBackoff::State::kOpen;
    uint64_t admitted = 0;
    uint64_t suppressed = 0;
    uint64_t rewrites = 0;
    uint64_t useless = 0;
    uint32_t backoffs = 0;
    uint32_t reopens = 0;
  };

  struct Snapshot {
    uint64_t attempts = 0;
    uint64_t admitted = 0;
    uint64_t suppressed = 0;
    uint64_t suppressed_by_gate = 0;    // global useless-overhead gate
    uint64_t suppressed_by_region = 0;  // per-region rewrite/useless backoff
    uint64_t suppressed_by_monitor = 0; // kMonitored advisor verdicts
    uint64_t region_evictions = 0;      // LRU cap displacements
    uint64_t fences = 0;
    bool gate_closed = false;      // global gate currently suppressing
    bool under_pressure = false;   // last device sample exceeded thresholds
    uint64_t last_backlog = 0;     // last sampled internal backlog (cycles)
    double last_write_amp = 1.0;   // last sampled write amplification
    std::vector<RegionSnapshot> regions;  // sorted by region_base
  };

  Snapshot TakeSnapshot() const;

  // One-line-per-counter human-readable summary (for benches).
  std::string Summary() const;

  const GovernorConfig& config() const { return config_; }

 private:
  // Target-device amplification headroom: internal block bytes per cache
  // line. > 1 means cleans can reduce media traffic; == 1 means they cannot.
  double HeadroomFor(uint64_t line_addr) const;

  void SampleDevicePressureLocked(uint64_t now);
  void EvaluateGateLocked();

  // The bounded region table: an LRU list of (region key, backoff state)
  // with an index by key. Touching a region splices it to the front;
  // exceeding max_tracked_regions evicts the back (least recently touched)
  // and counts it. Replaces the former unbounded std::map.
  struct TrackedRegion {
    uint64_t key;
    RegionBackoff backoff;
  };
  RegionBackoff& TouchRegionLocked(uint64_t key);

  Machine& machine_;
  const GovernorConfig config_;
  double dram_headroom_ = 1.0;
  double target_headroom_ = 1.0;
  RegionAdvisor* advisor_ = nullptr;

  mutable std::mutex mu_;
  std::list<TrackedRegion> region_lru_;  // front = most recently touched
  std::unordered_map<uint64_t, std::list<TrackedRegion>::iterator>
      region_index_;  // key: addr >> region_shift

  // Global counters.
  uint64_t attempts_ = 0;
  uint64_t admitted_ = 0;
  uint64_t suppressed_by_gate_ = 0;
  uint64_t suppressed_by_region_ = 0;
  uint64_t suppressed_by_monitor_ = 0;
  uint64_t region_evictions_ = 0;
  uint64_t fences_ = 0;

  // Useless-overhead gate state (hysteresis over the fence rate).
  bool gate_closed_ = false;
  uint64_t gate_last_attempts_ = 0;
  uint64_t gate_last_fences_ = 0;

  // Device-pressure sampling.
  bool under_pressure_ = false;
  uint64_t last_backlog_ = 0;
  double last_write_amp_ = 1.0;
};

}  // namespace prestore

#endif  // SRC_ROBUST_GOVERNOR_H_
