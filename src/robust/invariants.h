// End-of-run invariant checks over the simulator's accounting state.
//
// These complement the inline PRESTORE_INVARIANT checks compiled into the
// hot paths (see src/sim/invariant.h): they are cheap enough to run
// unconditionally at the end of a measured run, fault-injected or not, and
// return a report instead of aborting so tests can assert on them.
#ifndef SRC_ROBUST_INVARIANTS_H_
#define SRC_ROBUST_INVARIANTS_H_

#include <string>
#include <vector>

namespace prestore {

class Device;
class Machine;

// Checks DeviceStats conservation laws for one device. `drained` means the
// machine has been FlushAll()ed, so internal buffers are empty and media
// accounting is complete:
//  - counters are internally consistent (bytes imply accesses);
//  - DRAM / far memory: media bytes written == bytes received (no internal
//    granularity mismatch exists to amplify them);
//  - PMEM: write amplification within [1, internal_block_size / line_size].
// Returns human-readable violation descriptions; empty means all hold.
std::vector<std::string> CheckDeviceInvariants(Device& device,
                                               uint32_t line_size,
                                               bool drained);

// Runs CheckDeviceInvariants over both of the machine's devices.
std::vector<std::string> CheckMachineInvariants(Machine& machine,
                                                bool drained);

}  // namespace prestore

#endif  // SRC_ROBUST_INVARIANTS_H_
