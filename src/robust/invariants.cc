#include "src/robust/invariants.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "src/sim/device.h"
#include "src/sim/machine.h"

namespace prestore {

namespace {

void Violation(std::vector<std::string>* out, const char* device_name,
               const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->push_back(std::string(device_name) + ": " + buf);
}

}  // namespace

std::vector<std::string> CheckDeviceInvariants(Device& device,
                                               uint32_t line_size,
                                               bool drained) {
  std::vector<std::string> violations;
  const DeviceConfig& cfg = device.config();
  const DeviceStats stats = device.Stats();
  const char* name = cfg.name.c_str();

  if (stats.bytes_read > 0 && stats.reads == 0) {
    Violation(&violations, name,
              "read %" PRIu64 " bytes with zero read accesses",
              stats.bytes_read);
  }
  if (stats.bytes_received > 0 && stats.writes == 0) {
    Violation(&violations, name,
              "received %" PRIu64 " bytes with zero write accesses",
              stats.bytes_received);
  }
  if (stats.reads > 0 && stats.bytes_read < stats.reads) {
    Violation(&violations, name,
              "%" PRIu64 " reads moved only %" PRIu64 " bytes", stats.reads,
              stats.bytes_read);
  }
  if (stats.writes > 0 && stats.bytes_received < stats.writes) {
    Violation(&violations, name,
              "%" PRIu64 " writes moved only %" PRIu64 " bytes", stats.writes,
              stats.bytes_received);
  }

  switch (cfg.kind) {
    case DeviceKind::kDram:
    case DeviceKind::kFarMemory:
      // No internal granularity mismatch: media traffic is exactly the
      // received traffic.
      if (stats.media_bytes_written != stats.bytes_received) {
        Violation(&violations, name,
                  "media bytes (%" PRIu64 ") != received bytes (%" PRIu64
                  ") on a device without internal blocking",
                  stats.media_bytes_written, stats.bytes_received);
      }
      break;
    case DeviceKind::kPmem: {
      // Amplification bounds only hold once the XPBuffer has been drained:
      // mid-run, received bytes can sit in the buffer with no media write
      // yet (apparent amplification < 1).
      if (!drained) {
        break;
      }
      if (stats.media_bytes_written < stats.bytes_received) {
        Violation(&violations, name,
                  "after drain, media bytes (%" PRIu64
                  ") < received bytes (%" PRIu64 ")",
                  stats.media_bytes_written, stats.bytes_received);
      }
      const double ceiling =
          line_size > 0 && cfg.internal_block_size > line_size
              ? static_cast<double>(cfg.internal_block_size) / line_size
              : 1.0;
      const double wa = stats.WriteAmplification();
      // A dirty block is flushed whole, so one received line can cost at
      // most one internal block of media writes.
      if (wa > ceiling + 1e-9) {
        Violation(&violations, name,
                  "write amplification %.4f exceeds ceiling %.4f "
                  "(internal_block_size=%u line_size=%u)",
                  wa, ceiling, cfg.internal_block_size, line_size);
      }
      break;
    }
  }
  return violations;
}

std::vector<std::string> CheckMachineInvariants(Machine& machine,
                                                bool drained) {
  const uint32_t line_size = machine.config().line_size;
  std::vector<std::string> violations =
      CheckDeviceInvariants(machine.dram(), line_size, drained);
  std::vector<std::string> target =
      CheckDeviceInvariants(machine.target(), line_size, drained);
  violations.insert(violations.end(), target.begin(), target.end());
  return violations;
}

}  // namespace prestore
