#include "src/robust/fault_injector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/sim/machine.h"
#include "src/util/rng.h"

namespace prestore {

namespace {

// SplitMix64-style avalanche for per-hint drop decisions: a pure function
// of (seed, core, ordinal), so decisions do not depend on cross-core timing.
uint64_t MixHash(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t z = a ^ (b * 0x9e3779b97f4a7c15ULL) ^ (c * 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan) : seed_(plan.seed) {
  // Expand each spec with its own generator (derived from the plan seed and
  // the spec index) so that reordering specs does not reshuffle windows.
  for (size_t si = 0; si < plan.specs.size(); ++si) {
    const FaultSpec& spec = plan.specs[si];
    Xoshiro256 rng(plan.seed ^ (0x5eedULL + 0x9e37ULL * si));
    uint64_t t = 0;
    for (uint32_t i = 0; i < spec.count; ++i) {
      // Period with ±50% uniform jitter, never zero.
      const uint64_t half = std::max<uint64_t>(1, spec.mean_period_cycles / 2);
      const uint64_t gap = half + rng.Below(2 * half);
      t += gap;
      schedule_.push_back(FaultWindow{spec.kind, t, t + spec.duration_cycles,
                                      spec.magnitude, spec.node});
    }
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.start_cycle != b.start_cycle) {
                return a.start_cycle < b.start_cycle;
              }
              if (a.kind != b.kind) {
                return a.kind < b.kind;
              }
              if (a.magnitude != b.magnitude) {
                return a.magnitude < b.magnitude;
              }
              return a.node < b.node;
            });
  for (const FaultWindow& w : schedule_) {
    by_kind_[static_cast<size_t>(w.kind)].push_back(w);
  }
}

void FaultInjector::Attach(Machine& machine) {
  machine.SetDeviceFaultHook(this);
  machine.AddPrestoreHook(this);
}

double FaultInjector::ActiveMagnitude(FaultKind kind, uint64_t now) const {
  const std::vector<FaultWindow>& windows = by_kind_[static_cast<size_t>(kind)];
  double magnitude = 0.0;
  // Windows of one kind are few (a schedule is tens of windows); a linear
  // scan over the kind's windows is cheaper than maintaining interval trees.
  for (const FaultWindow& w : windows) {
    if (w.start_cycle > now) {
      break;  // sorted by start: nothing later can be active
    }
    if (now < w.end_cycle) {
      magnitude = std::max(magnitude, w.magnitude);
    }
  }
  return magnitude;
}

uint64_t FaultInjector::ExtraLatency(bool is_write, uint64_t now) {
  (void)is_write;
  return static_cast<uint64_t>(ActiveMagnitude(FaultKind::kLatencySpike, now));
}

double FaultInjector::BandwidthCostMultiplier(uint64_t now) {
  const double m = ActiveMagnitude(FaultKind::kBandwidthThrottle, now);
  return m > 1.0 ? m : 1.0;
}

uint32_t FaultInjector::StolenBufferBlocks(uint64_t now) {
  return static_cast<uint32_t>(
      ActiveMagnitude(FaultKind::kBufferPressure, now));
}

uint64_t FaultInjector::ExtraDirectoryLatency(uint64_t now) {
  return static_cast<uint64_t>(
      ActiveMagnitude(FaultKind::kDirectoryTimeout, now));
}

bool FaultInjector::NodeKilled(uint32_t node, uint64_t at) const {
  for (const FaultWindow& w :
       by_kind_[static_cast<size_t>(FaultKind::kNodeKill)]) {
    if (w.start_cycle > at) {
      break;  // sorted by start
    }
    if (w.node == node) {
      return true;  // kills are permanent: duration is ignored
    }
  }
  return false;
}

bool FaultInjector::NodeDraining(uint32_t node, uint64_t at) const {
  return DrainEndAfter(node, at) != 0;
}

uint64_t FaultInjector::DrainEndAfter(uint32_t node, uint64_t at) const {
  uint64_t end = 0;
  for (const FaultWindow& w :
       by_kind_[static_cast<size_t>(FaultKind::kNodeDrain)]) {
    if (w.start_cycle > at) {
      break;
    }
    if (w.node == node && at < w.end_cycle) {
      end = std::max(end, w.end_cycle);
    }
  }
  return end;
}

uint64_t FaultInjector::NodeDegradeCycles(uint32_t node, uint64_t at) const {
  uint64_t extra = 0;
  for (const FaultWindow& w :
       by_kind_[static_cast<size_t>(FaultKind::kNodeDegrade)]) {
    if (w.start_cycle > at) {
      break;
    }
    if (w.node == node && at < w.end_cycle) {
      extra += static_cast<uint64_t>(w.magnitude);
    }
  }
  return extra;
}

void FaultInjector::RecordNodeRejection(uint32_t lane, FaultKind kind,
                                        uint32_t node, uint64_t at) {
  const size_t slot = lane % kMaxCores;
  reject_log_[slot].push_back(
      RejectLogEntry{reject_log_[slot].size(), kind, node, at});
}

HintFate FaultInjector::OnPrestoreHint(uint8_t core, uint64_t line_addr,
                                       PrestoreOp op, uint64_t now,
                                       uint64_t* delay_cycles) {
  (void)op;
  const size_t slot = core % kMaxCores;
  const uint64_t ordinal = hint_ordinal_[slot]++;

  const double drop_p = ActiveMagnitude(FaultKind::kDropHint, now);
  if (drop_p > 0.0) {
    const uint64_t h = MixHash(seed_, core, ordinal);
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
    if (u < drop_p) {
      hint_log_[slot].push_back(HintLogEntry{ordinal, line_addr, true, 0});
      return HintFate::kDrop;
    }
  }
  const uint64_t delay =
      static_cast<uint64_t>(ActiveMagnitude(FaultKind::kDelayHint, now));
  if (delay > 0) {
    *delay_cycles += delay;
    hint_log_[slot].push_back(HintLogEntry{ordinal, line_addr, false, delay});
  }
  return HintFate::kIssue;
}

std::string FaultInjector::EventLog() const {
  std::string log;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "plan seed=%" PRIu64 " windows=%zu\n",
                seed_, schedule_.size());
  log += buf;
  for (const FaultWindow& w : schedule_) {
    std::snprintf(buf, sizeof(buf),
                  "window kind=%s start=%" PRIu64 " end=%" PRIu64
                  " magnitude=%.6g node=%u\n",
                  std::string(ToString(w.kind)).c_str(), w.start_cycle,
                  w.end_cycle, w.magnitude, w.node);
    log += buf;
  }
  for (size_t core = 0; core < kMaxCores; ++core) {
    for (const HintLogEntry& e : hint_log_[core]) {
      std::snprintf(buf, sizeof(buf),
                    "hint core=%zu ordinal=%" PRIu64 " line=0x%" PRIx64
                    " %s=%" PRIu64 "\n",
                    core, e.ordinal, e.line_addr,
                    e.dropped ? "dropped" : "delayed", e.delay_cycles);
      log += buf;
    }
  }
  for (size_t lane = 0; lane < kMaxCores; ++lane) {
    for (const RejectLogEntry& e : reject_log_[lane]) {
      std::snprintf(buf, sizeof(buf),
                    "reject lane=%zu ordinal=%" PRIu64 " kind=%s node=%u"
                    " at=%" PRIu64 "\n",
                    lane, e.ordinal, std::string(ToString(e.kind)).c_str(),
                    e.node, e.at);
      log += buf;
    }
  }
  return log;
}

}  // namespace prestore
