// Deterministic, seeded fault injector for the simulator.
//
// Hooks both sides of the machine:
//  - as a DeviceFaultHook it injects latency spikes, bandwidth-throttle
//    windows, XPBuffer pressure, and far-memory directory timeouts into the
//    device timing paths;
//  - as a PrestoreHook it drops or delays pre-store hints on the core's
//    issue path.
//
// Everything is a pure function of the FaultPlan: the window schedule is
// expanded up front with a seeded generator, and per-hint drop decisions
// hash (seed, core, per-core hint ordinal), so a single-core run replayed
// with the same seed produces a byte-identical injected-event log
// (EventLog()). Multi-core runs keep per-core logs individually
// deterministic.
#ifndef SRC_ROBUST_FAULT_INJECTOR_H_
#define SRC_ROBUST_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/robust/fault_plan.h"
#include "src/sim/hooks.h"

namespace prestore {

class Machine;

class FaultInjector : public DeviceFaultHook, public PrestoreHook {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // Installs this injector on `machine` (device hook + pre-store hook).
  // The injector must outlive the machine's measured runs.
  void Attach(Machine& machine);

  // The expanded schedule, sorted by start cycle.
  const std::vector<FaultWindow>& schedule() const { return schedule_; }

  // Serialized injected-event log: the expanded window schedule followed by
  // every per-core hint intervention, in per-core order. Byte-identical
  // across runs with the same plan and (per core) the same workload.
  std::string EventLog() const;

  // ---- DeviceFaultHook ----
  uint64_t ExtraLatency(bool is_write, uint64_t now) override;
  double BandwidthCostMultiplier(uint64_t now) override;
  uint32_t StolenBufferBlocks(uint64_t now) override;
  uint64_t ExtraDirectoryLatency(uint64_t now) override;

  // ---- PrestoreHook ----
  HintFate OnPrestoreHint(uint8_t core, uint64_t line_addr, PrestoreOp op,
                          uint64_t now, uint64_t* delay_cycles) override;

  // ---- Node-level fault queries (cluster serving, DESIGN.md §11) ----
  // `at` is run-relative: the cluster anchors its serving window at cycle 0
  // of the schedule, so decisions keyed on scheduled submit times replay
  // identically regardless of how long construction/preload took.
  //
  // A kill is permanent: active from its window's start_cycle onward.
  bool NodeKilled(uint32_t node, uint64_t at) const;
  // A drain refuses NEW work for [start, end); queued work still completes.
  bool NodeDraining(uint32_t node, uint64_t at) const;
  // End of the drain window active at `at` (the rejoin time), 0 if none.
  uint64_t DrainEndAfter(uint32_t node, uint64_t at) const;
  // Extra service cycles per request while a degrade window is active.
  uint64_t NodeDegradeCycles(uint32_t node, uint64_t at) const;

  // Router-side rejection log: one lane per driver thread (single-writer,
  // like the per-core hint logs), serialized into EventLog(). `at` is the
  // request's run-relative decision time — a pure function of the client's
  // schedule, so the log replays byte-identically.
  void RecordNodeRejection(uint32_t lane, FaultKind kind, uint32_t node,
                           uint64_t at);

 private:
  static constexpr size_t kMaxCores = 64;

  struct HintLogEntry {
    uint64_t ordinal;  // per-core hint counter value
    uint64_t line_addr;
    bool dropped;      // false = delayed
    uint64_t delay_cycles;
  };

  struct RejectLogEntry {
    uint64_t ordinal;  // per-lane rejection counter value
    FaultKind kind;
    uint32_t node;
    uint64_t at;  // run-relative decision time
  };

  // Sum / max of active-window magnitudes of `kind` at `now`.
  double ActiveMagnitude(FaultKind kind, uint64_t now) const;

  uint64_t seed_;
  std::vector<FaultWindow> schedule_;
  // Per-kind views into the schedule, sorted by start, for fast queries.
  std::array<std::vector<FaultWindow>, kNumFaultKinds> by_kind_;
  // Per-core hint ordinals and intervention logs. Each slot is only ever
  // touched by its own core's host thread.
  std::array<uint64_t, kMaxCores> hint_ordinal_{};
  std::array<std::vector<HintLogEntry>, kMaxCores> hint_log_;
  // Per-lane rejection logs (one lane per driver thread, single-writer).
  std::array<std::vector<RejectLogEntry>, kMaxCores> reject_log_;
};

}  // namespace prestore

#endif  // SRC_ROBUST_FAULT_INJECTOR_H_
