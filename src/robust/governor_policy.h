// Pure hysteresis policy for the adaptive pre-store governor.
//
// Header-only and dependency-free so both backends share it: the simulator
// governor (src/robust/governor.h) feeds it simulated signals, and the
// hardware wrapper (src/hw/hw_prestore.h) feeds it software-observed ones.
//
// Per region (an aligned 2^region_shift-byte address range) the policy runs
// a two-state machine:
//
//   kOpen    — hints are admitted. Every `window_hints` admitted hints the
//              region's rewrite rate (stores that re-dirtied data a clean
//              wrote back: the Listing-3 / §7.4.2 misuse signal) and
//              useless rate (hints that moved nothing: the §7.4.1 overhead
//              signal) are evaluated; crossing a backoff threshold moves
//              the region to kBackoff.
//   kBackoff — hints are suppressed, except an occasional probe (every
//              `probe_period`-th hint) that keeps sensing the regime.
//              After `probe_window` probes, rates at or below the reopen
//              thresholds move the region back to kOpen.
//
// The backoff thresholds sit well above the reopen thresholds (hysteresis)
// so a region near a boundary does not flap.
#ifndef SRC_ROBUST_GOVERNOR_POLICY_H_
#define SRC_ROBUST_GOVERNOR_POLICY_H_

#include <cstdint>
#include <string>

namespace prestore {

// How the governor reaches per-region verdicts. kFixedRegions runs the
// RegionBackoff hysteresis below over fixed 2^region_shift-byte regions;
// kMonitored delegates the per-region decision to an installed
// RegionAdvisor (the adaptive monitor, src/monitor) — the global gate and
// device-pressure sampling apply in both modes.
enum class GovernorPolicy : uint8_t {
  kFixedRegions,
  kMonitored,
};

struct GovernorConfig {
  GovernorPolicy policy = GovernorPolicy::kFixedRegions;

  // Regions are 2^region_shift bytes (default 64 KiB): coarse enough that
  // streaming workloads reach a verdict early in each region, fine enough
  // to isolate a misused scratch buffer from its neighbours.
  uint64_t region_shift = 16;

  // ---- Per-region hysteresis (rewrite / useless regimes) ----
  uint32_t window_hints = 64;          // admitted hints per evaluation
  double backoff_rewrite_rate = 0.5;   // enter backoff at >= this
  double reopen_rewrite_rate = 0.125;  // probes must reach <= this
  double backoff_useless_rate = 0.9;   // almost every hint moved nothing
  double reopen_useless_rate = 0.5;
  uint32_t probe_period = 64;  // in backoff, admit every Nth hint
  uint32_t probe_window = 8;   // probes per reopen evaluation
  // Consecutive hot windows required before the FIRST backoff. Debounces
  // bursts: a multi-line element cleaned and later rewritten delivers its
  // rewrites as one burst (64 lines for one 4 KiB element), so a lone
  // benign random repeat can saturate a single window's rewrite rate.
  // Sustained misuse (Listing 3, the FT scratch, the IS scatter) keeps
  // every window hot and still backs off within
  // `backoff_confirm_windows * window_hints` hints. A region that has
  // already backed off once re-enters backoff after a single hot window:
  // its misuse history outweighs the lone-burst explanation.
  uint32_t backoff_confirm_windows = 2;

  // ---- Global useless-overhead gate ----
  // On devices with no write-amplification headroom (internal block ==
  // cache line) pre-stores can only help by overlapping publication with
  // fences; a workload that (almost) never fences gains nothing from them
  // (§7.4.1). Evaluated every `global_eval_window` hint attempts over the
  // fences observed in that window, with hysteresis between the two rates.
  uint64_t global_eval_window = 256;
  double fence_rate_low = 1.0 / 4096.0;   // gate closes below this
  double fence_rate_high = 1.0 / 1024.0;  // ...reopens above this

  // ---- Device-pressure modulation ----
  // When the target device reports a large internal backlog or high write
  // amplification, wasted writebacks hurt more, so the rewrite backoff
  // threshold is scaled down (more aggressive) while pressure persists.
  uint32_t device_sample_period = 256;     // attempts between samples
  uint64_t pressure_backlog_cycles = 100000;
  double pressure_write_amp = 2.0;
  double pressure_rate_scale = 0.5;

  // ---- Region-table bound (kFixedRegions) ----
  // Most-recently-touched regions kept in the per-region table; a sparse
  // address walk (one hint per 64 KiB region over a huge span) evicts the
  // least recently touched entry instead of growing without limit. An
  // evicted region that is touched again restarts from a fresh kOpen state;
  // the governor counts evictions so benches can see when the cap binds.
  uint32_t max_tracked_regions = 4096;

  // Empty string when the configuration is coherent; otherwise a
  // human-readable description of the first problem found (the
  // ServeConfig::Validate idiom — PrestoreGovernor's constructor throws it).
  std::string Validate() const {
    if (region_shift < 6 || region_shift > 40) {
      return "region_shift must be in [6, 40] (a cache line to 1 TiB)";
    }
    if (window_hints == 0) {
      return "window_hints must be > 0";
    }
    if (backoff_rewrite_rate < 0.0 || backoff_rewrite_rate > 1.0 ||
        reopen_rewrite_rate < 0.0 ||
        reopen_rewrite_rate > backoff_rewrite_rate) {
      return "rewrite rates must satisfy 0 <= reopen <= backoff <= 1";
    }
    if (backoff_useless_rate < 0.0 || backoff_useless_rate > 1.0 ||
        reopen_useless_rate < 0.0 ||
        reopen_useless_rate > backoff_useless_rate) {
      return "useless rates must satisfy 0 <= reopen <= backoff <= 1";
    }
    if (probe_period == 0 || probe_window == 0) {
      return "probe_period and probe_window must be > 0";
    }
    if (backoff_confirm_windows == 0) {
      return "backoff_confirm_windows must be > 0";
    }
    if (global_eval_window == 0) {
      return "global_eval_window must be > 0";
    }
    if (fence_rate_low < 0.0 || fence_rate_high < fence_rate_low) {
      return "fence rates must satisfy 0 <= low <= high";
    }
    if (device_sample_period == 0) {
      return "device_sample_period must be > 0";
    }
    if (pressure_rate_scale <= 0.0 || pressure_rate_scale > 1.0) {
      return "pressure_rate_scale must be in (0, 1]";
    }
    if (max_tracked_regions == 0) {
      return "max_tracked_regions must be > 0";
    }
    return "";
  }
};

// The per-region state machine. Not synchronized: callers serialize access.
class RegionBackoff {
 public:
  enum class State : uint8_t { kOpen, kBackoff };

  // Accounts one hint; returns true if it should be admitted.
  // `backoff_rewrite_rate` is passed per call so device pressure can scale
  // it without touching per-region state.
  bool OnHint(const GovernorConfig& cfg, double backoff_rewrite_rate) {
    // Windows are evaluated lazily at the START of the hint that follows a
    // completed window, never at its last hint: rewrite/useless feedback
    // for a hint arrives only after the application's next store, so an
    // eager evaluation would always miss the final hint's verdict.
    if (state_ == State::kOpen) {
      if (window_hints_ >= cfg.window_hints) {
        const double rewrite_rate =
            static_cast<double>(window_rewrites_) / window_hints_;
        const double useless_rate =
            static_cast<double>(window_useless_) / window_hints_;
        window_hints_ = window_rewrites_ = window_useless_ = 0;
        if (rewrite_rate >= backoff_rewrite_rate ||
            useless_rate >= cfg.backoff_useless_rate) {
          const uint32_t needed =
              backoffs_ > 0 ? 1 : cfg.backoff_confirm_windows;
          if (++hot_windows_ >= needed) {
            state_ = State::kBackoff;
            ++backoffs_;
            hot_windows_ = 0;
            probe_count_ = probe_rewrites_ = probe_useless_ = 0;
            since_probe_ = 0;
            ++suppressed_;
            return false;
          }
        } else {
          hot_windows_ = 0;
        }
      }
      ++window_hints_;
      ++admitted_;
      return true;
    }
    // kBackoff: suppress, except periodic probes.
    if (probe_count_ >= cfg.probe_window) {
      const double rewrite_rate =
          static_cast<double>(probe_rewrites_) / probe_count_;
      const double useless_rate =
          static_cast<double>(probe_useless_) / probe_count_;
      probe_count_ = probe_rewrites_ = probe_useless_ = 0;
      if (rewrite_rate <= cfg.reopen_rewrite_rate &&
          useless_rate <= cfg.reopen_useless_rate) {
        state_ = State::kOpen;
        ++reopens_;
        window_hints_ = 1;
        window_rewrites_ = window_useless_ = 0;
        ++admitted_;
        return true;
      }
    }
    if (++since_probe_ < cfg.probe_period) {
      ++suppressed_;
      return false;
    }
    since_probe_ = 0;
    ++probe_count_;
    ++admitted_;
    return true;
  }

  void OnRewrite() {
    ++rewrites_;
    if (state_ == State::kOpen) {
      ++window_rewrites_;
    } else {
      ++probe_rewrites_;
    }
  }

  void OnUseless() {
    ++useless_;
    if (state_ == State::kOpen) {
      ++window_useless_;
    } else {
      ++probe_useless_;
    }
  }

  State state() const { return state_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t suppressed() const { return suppressed_; }
  uint64_t rewrites() const { return rewrites_; }
  uint64_t useless() const { return useless_; }
  uint32_t backoffs() const { return backoffs_; }
  uint32_t reopens() const { return reopens_; }

 private:
  State state_ = State::kOpen;

  // Lifetime counters (exported in snapshots).
  uint64_t admitted_ = 0;
  uint64_t suppressed_ = 0;
  uint64_t rewrites_ = 0;
  uint64_t useless_ = 0;
  uint32_t backoffs_ = 0;
  uint32_t reopens_ = 0;

  // Open-state evaluation window.
  uint32_t window_hints_ = 0;
  uint32_t window_rewrites_ = 0;
  uint32_t window_useless_ = 0;
  uint32_t hot_windows_ = 0;  // consecutive windows at/above a threshold

  // Backoff-state probing.
  uint32_t since_probe_ = 0;
  uint32_t probe_count_ = 0;
  uint32_t probe_rewrites_ = 0;
  uint32_t probe_useless_ = 0;
};

}  // namespace prestore

#endif  // SRC_ROBUST_GOVERNOR_POLICY_H_
