#include "src/robust/governor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "src/sim/machine.h"

namespace prestore {

namespace {

double HeadroomOf(const DeviceConfig& dev, uint32_t line_size) {
  if (dev.kind == DeviceKind::kPmem && dev.internal_block_size > line_size) {
    return static_cast<double>(dev.internal_block_size) /
           static_cast<double>(line_size);
  }
  return 1.0;
}

}  // namespace

PrestoreGovernor::PrestoreGovernor(Machine& machine, GovernorConfig config)
    : machine_(machine), config_(config) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("GovernorConfig: " + error);
  }
  const MachineConfig& mc = machine.config();
  dram_headroom_ = HeadroomOf(mc.dram, mc.line_size);
  target_headroom_ = HeadroomOf(mc.target, mc.line_size);
}

void PrestoreGovernor::Attach() { machine_.AddPrestoreHook(this); }

RegionBackoff& PrestoreGovernor::TouchRegionLocked(uint64_t key) {
  auto it = region_index_.find(key);
  if (it != region_index_.end()) {
    region_lru_.splice(region_lru_.begin(), region_lru_, it->second);
    return region_lru_.front().backoff;
  }
  region_lru_.push_front(TrackedRegion{key, RegionBackoff{}});
  region_index_[key] = region_lru_.begin();
  if (region_lru_.size() > config_.max_tracked_regions) {
    region_index_.erase(region_lru_.back().key);
    region_lru_.pop_back();
    ++region_evictions_;
  }
  return region_lru_.front().backoff;
}

double PrestoreGovernor::HeadroomFor(uint64_t line_addr) const {
  return line_addr >= kTargetBase ? target_headroom_ : dram_headroom_;
}

void PrestoreGovernor::SampleDevicePressureLocked(uint64_t now) {
  last_backlog_ = machine_.target().InternalBacklogAt(now);
  last_write_amp_ = machine_.target().Stats().WriteAmplification();
  under_pressure_ = last_backlog_ >= config_.pressure_backlog_cycles ||
                    last_write_amp_ >= config_.pressure_write_amp;
}

void PrestoreGovernor::EvaluateGateLocked() {
  const uint64_t window_attempts = attempts_ - gate_last_attempts_;
  if (window_attempts < config_.global_eval_window) {
    return;
  }
  const uint64_t window_fences = fences_ - gate_last_fences_;
  const double fence_rate = static_cast<double>(window_fences) /
                            static_cast<double>(window_attempts);
  if (!gate_closed_ && fence_rate < config_.fence_rate_low) {
    gate_closed_ = true;
  } else if (gate_closed_ && fence_rate > config_.fence_rate_high) {
    gate_closed_ = false;
  }
  gate_last_attempts_ = attempts_;
  gate_last_fences_ = fences_;
}

HintFate PrestoreGovernor::OnPrestoreHint(uint8_t core, uint64_t line_addr,
                                          PrestoreOp op, uint64_t now,
                                          uint64_t* delay_cycles) {
  (void)core;
  (void)op;
  (void)delay_cycles;
  std::lock_guard<std::mutex> lock(mu_);
  ++attempts_;
  if (attempts_ % config_.device_sample_period == 0) {
    SampleDevicePressureLocked(now);
  }
  EvaluateGateLocked();

  // Gate first: when the device has no amplification headroom and the
  // workload does not fence, no hint to that device can help, so the region
  // machinery never even sees the hint (its windows would be polluted by
  // hints that were doomed for an unrelated reason).
  if (gate_closed_ && HeadroomFor(line_addr) <= 1.0) {
    ++suppressed_by_gate_;
    return HintFate::kDrop;
  }

  // Monitored mode: the adaptive region monitor replaces the fixed-shift
  // backoff table as the per-region decision source (gate and pressure
  // sampling above still apply). A null advisor falls back to the fixed
  // machinery so a misconfigured setup degrades, not crashes.
  if (config_.policy == GovernorPolicy::kMonitored && advisor_ != nullptr) {
    if (advisor_->AdviseHint(core, line_addr, op, now) == HintFate::kDrop) {
      ++suppressed_by_monitor_;
      return HintFate::kDrop;
    }
    ++admitted_;
    return HintFate::kIssue;
  }

  RegionBackoff& region = TouchRegionLocked(line_addr >> config_.region_shift);
  const double threshold = under_pressure_
                               ? config_.backoff_rewrite_rate *
                                     config_.pressure_rate_scale
                               : config_.backoff_rewrite_rate;
  if (!region.OnHint(config_, threshold)) {
    ++suppressed_by_region_;
    return HintFate::kDrop;
  }
  ++admitted_;
  return HintFate::kIssue;
}

void PrestoreGovernor::OnUselessHint(uint8_t core, uint64_t line_addr,
                                     PrestoreOp op) {
  (void)core;
  (void)op;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.policy == GovernorPolicy::kMonitored && advisor_ != nullptr) {
    return;  // the monitor observes useless hints through its own hook
  }
  TouchRegionLocked(line_addr >> config_.region_shift).OnUseless();
}

void PrestoreGovernor::OnRewriteAfterClean(uint8_t core, uint64_t line_addr,
                                           uint64_t now) {
  (void)core;
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.policy == GovernorPolicy::kMonitored && advisor_ != nullptr) {
    return;  // the monitor observes rewrites through its own hook
  }
  TouchRegionLocked(line_addr >> config_.region_shift).OnRewrite();
}

void PrestoreGovernor::OnFence(uint8_t core, uint64_t now) {
  (void)core;
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  ++fences_;
}

PrestoreGovernor::Snapshot PrestoreGovernor::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.attempts = attempts_;
  snap.admitted = admitted_;
  snap.suppressed =
      suppressed_by_gate_ + suppressed_by_region_ + suppressed_by_monitor_;
  snap.suppressed_by_gate = suppressed_by_gate_;
  snap.suppressed_by_region = suppressed_by_region_;
  snap.suppressed_by_monitor = suppressed_by_monitor_;
  snap.region_evictions = region_evictions_;
  snap.fences = fences_;
  snap.gate_closed = gate_closed_;
  snap.under_pressure = under_pressure_;
  snap.last_backlog = last_backlog_;
  snap.last_write_amp = last_write_amp_;
  snap.regions.reserve(region_lru_.size());
  for (const TrackedRegion& tracked : region_lru_) {
    const RegionBackoff& region = tracked.backoff;
    RegionSnapshot rs;
    rs.region_base = tracked.key << config_.region_shift;
    rs.state = region.state();
    rs.admitted = region.admitted();
    rs.suppressed = region.suppressed();
    rs.rewrites = region.rewrites();
    rs.useless = region.useless();
    rs.backoffs = region.backoffs();
    rs.reopens = region.reopens();
    snap.regions.push_back(rs);
  }
  std::sort(snap.regions.begin(), snap.regions.end(),
            [](const RegionSnapshot& a, const RegionSnapshot& b) {
              return a.region_base < b.region_base;
            });
  return snap;
}

std::string PrestoreGovernor::Summary() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "governor: attempts=%" PRIu64 " admitted=%" PRIu64
                " suppressed=%" PRIu64 " (gate=%" PRIu64 " region=%" PRIu64
                " monitor=%" PRIu64 ") evictions=%" PRIu64 " fences=%" PRIu64
                " gate_closed=%d pressure=%d wa=%.2f\n",
                snap.attempts, snap.admitted, snap.suppressed,
                snap.suppressed_by_gate, snap.suppressed_by_region,
                snap.suppressed_by_monitor, snap.region_evictions,
                snap.fences, snap.gate_closed ? 1 : 0,
                snap.under_pressure ? 1 : 0, snap.last_write_amp);
  out += buf;
  for (const RegionSnapshot& r : snap.regions) {
    if (r.suppressed == 0 && r.backoffs == 0) {
      continue;  // only regions the governor acted on are interesting
    }
    std::snprintf(buf, sizeof(buf),
                  "  region 0x%" PRIx64 ": %s admitted=%" PRIu64
                  " suppressed=%" PRIu64 " rewrites=%" PRIu64
                  " useless=%" PRIu64 " backoffs=%" PRIu32
                  " reopens=%" PRIu32 "\n",
                  r.region_base,
                  r.state == RegionBackoff::State::kOpen ? "open" : "backoff",
                  r.admitted, r.suppressed, r.rewrites, r.useless, r.backoffs,
                  r.reopens);
    out += buf;
  }
  return out;
}

}  // namespace prestore
