// Declarative fault plans for the simulator.
//
// A FaultPlan is a seed plus a set of FaultSpecs; FaultInjector::Expand
// turns it into a concrete, fully deterministic schedule of fault windows
// (same plan ⇒ byte-identical schedule and event log), so any failure found
// under injection reproduces from the seed alone.
#ifndef SRC_ROBUST_FAULT_PLAN_H_
#define SRC_ROBUST_FAULT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace prestore {

enum class FaultKind : uint8_t {
  kLatencySpike,       // magnitude = extra cycles per device access
  kBandwidthThrottle,  // magnitude = cost multiplier (>1 slows transfers)
  kBufferPressure,     // magnitude = XPBuffer blocks stolen from a PmemDevice
  kDirectoryTimeout,   // magnitude = extra cycles per directory access
  kDropHint,           // magnitude = drop probability in [0, 1]
  kDelayHint,          // magnitude = issue delay in cycles per hint
  // ---- Node-level faults (cluster serving, DESIGN.md §11). `node` selects
  // the victim; times are run-relative cycles (the cluster run anchors them
  // at its measured serving window, not at machine construction).
  kNodeKill,     // node dead from start_cycle on (duration ignored)
  kNodeDegrade,  // magnitude = extra cycles charged per request served
  kNodeDrain,    // node refuses new work for [start, end), then rejoins
};

constexpr size_t kNumFaultKinds = 9;

constexpr std::string_view ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kBandwidthThrottle:
      return "bandwidth_throttle";
    case FaultKind::kBufferPressure:
      return "buffer_pressure";
    case FaultKind::kDirectoryTimeout:
      return "directory_timeout";
    case FaultKind::kDropHint:
      return "drop_hint";
    case FaultKind::kDelayHint:
      return "delay_hint";
    case FaultKind::kNodeKill:
      return "node_kill";
    case FaultKind::kNodeDegrade:
      return "node_degrade";
    case FaultKind::kNodeDrain:
      return "node_drain";
  }
  return "?";
}

// One recurring fault: `count` windows of `duration_cycles`, spaced on
// average `mean_period_cycles` apart (uniform jitter of ±50% of the period,
// drawn from the plan's seed).
struct FaultSpec {
  FaultKind kind = FaultKind::kLatencySpike;
  uint64_t mean_period_cycles = 100000;
  uint64_t duration_cycles = 10000;
  double magnitude = 1.0;
  uint32_t count = 1;
  uint32_t node = 0;  // victim node, node-level kinds only
};

struct FaultPlan {
  uint64_t seed = 1;
  std::vector<FaultSpec> specs;
};

// A concrete scheduled window: the fault is active for now in
// [start_cycle, end_cycle).
struct FaultWindow {
  FaultKind kind;
  uint64_t start_cycle;
  uint64_t end_cycle;
  double magnitude;
  uint32_t node = 0;  // victim node, node-level kinds only
};

}  // namespace prestore

#endif  // SRC_ROBUST_FAULT_PLAN_H_
