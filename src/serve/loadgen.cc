#include "src/serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "src/serve/schedule_window.h"
#include "src/sim/harness.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace prestore {

namespace {

// Per-client accounting, merged after the run (one entry per client core,
// so no synchronization is needed while running).
struct ClientCounters {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t failed_gets = 0;
  uint64_t retries = 0;
  LatencyMeter meter;
};

// Consumes a GET hit the way the YCSB driver does (sequential read of the
// value). This is load-bearing: response-value reads are what keep the LLC
// honest about a serving mix — they evict cold arena lines and give the
// governor's probes an eviction-based recovery signal.
void ReadValue(Core& core, FuncToken func, SimAddr value, uint32_t size) {
  ScopedFunction f(core, func);
  uint64_t sum = 0;
  for (uint32_t off = 0; off < size; off += 8) {
    sum += core.LoadU64(value + off);
  }
  core.Execute(sum % 3 + 1);
}

class ClientSession {
 public:
  ClientSession(KvServer& server, Core& core, uint32_t client,
                std::atomic<uint64_t>& latest_key, FuncToken read_func,
                ScheduleWindow& board, ClientCounters& out)
      : server_(server),
        core_(core),
        cfg_(server.config()),
        client_(client),
        latest_key_(latest_key),
        read_func_(read_func),
        board_(board),
        out_(out),
        rng_(cfg_.ycsb.seed * 1315423911ULL + client),
        zipf_(cfg_.ycsb.num_keys, cfg_.ycsb.zipf_theta),
        read_ratio_(YcsbReadRatio(cfg_.ycsb.workload)),
        measure_from_(core.now() + cfg_.settle_cycles) {}

  void RunClosedLoop() {
    for (uint32_t op = 0; op < cfg_.ycsb.ops_per_thread; ++op) {
      uint64_t key = 0;
      const bool is_read = NextOp(&key);
      if (is_read) {
        Transact(ServeOp::kGet, key);
      } else {
        if (cfg_.ycsb.workload == YcsbWorkload::kF) {
          Transact(ServeOp::kGet, key);  // read-modify-write: read half
        }
        Transact(ServeOp::kPut, key);
      }
    }
  }

  void RunOpenLoop() {
    const uint32_t total = cfg_.ycsb.ops_per_thread;
    // Stagger the clients across one interval: independent load generators
    // do not fire in lockstep, and a synchronized N-client burst every
    // interval would measure the herd, not the server.
    uint64_t next_send = core_.now() + cfg_.open_loop_interval * client_ /
                                           std::max(1u, cfg_.ycsb.threads);
    uint32_t sent = 0;
    uint32_t inflight = 0;
    board_.Advance(client_, total > 0 ? next_send : UINT64_MAX);
    ResponseMsg resp;
    while (sent < total || inflight > 0) {
      if (inflight > 0 && server_.HasResponse(client_) &&
          server_.TryGetResponse(core_, client_, &resp)) {
        --inflight;
        Record(resp);
        continue;
      }
      if (sent < total && inflight < cfg_.max_inflight) {
        if (!board_.MayFire(next_send)) {
          // A peer's schedule is more than the inflight horizon behind:
          // hold in host time (responses keep draining at the loop top)
          // until it catches up. Peers stay registered at the run's start
          // until they begin, so this doubles as the start barrier.
          std::this_thread::yield();
          continue;
        }
        if (core_.now() < next_send) {
          // Idle until the scheduled arrival. Execute (not SpinPause): the
          // arrival process is externally timed, so the client's clock must
          // be free to run ahead of the server cores.
          core_.Execute(
              std::min<uint64_t>(next_send - core_.now(), 256));
          continue;
        }
        uint64_t key = 0;
        const bool is_read = NextOp(&key);
        RequestMsg req;
        req.op = static_cast<uint64_t>(is_read ? ServeOp::kGet
                                               : ServeOp::kPut);
        req.key = key;
        req.client = client_;
        req.seq = ++seq_;
        req.submit_time = next_send;  // scheduled, not actual: queueing
                                      // delay counts (no coordinated
                                      // omission)
        if (server_.TrySubmit(core_, req)) {
          ++sent;
          ++inflight;
          next_send += cfg_.open_loop_interval;
          board_.Advance(client_, sent == total ? UINT64_MAX : next_send);
        } else {
          ++out_.retries;
          core_.Execute(cfg_.retry_backoff_cycles);
        }
        continue;
      }
      // At the inflight cap (or drained of sends): wait in HOST time only;
      // Record clamps the clock to each response's completion. The wait
      // must never advance toward the global maximum clock (SpinPause):
      // that couples every capped client to the fastest core, their
      // response-processing work then stacks serially onto that one shared
      // timeline, and once the combined work rate passes one cycle per
      // cycle the whole run's latencies diverge — a metastable collapse
      // ignited by nothing but host scheduling noise.
      std::this_thread::yield();
    }
  }

 private:
  // Picks the next key + op type with the YCSB driver's distributions.
  // Returns true for a read; `*key` is the chosen key (for kD writes, the
  // freshly inserted key).
  bool NextOp(uint64_t* key) {
    if (cfg_.ycsb.workload == YcsbWorkload::kD) {
      const uint64_t latest = latest_key_.load(std::memory_order_relaxed);
      *key = latest - std::min<uint64_t>(zipf_.Next(rng_), latest - 1);
    } else {
      *key = zipf_.NextScrambled(rng_) + 1;
    }
    const bool is_read = rng_.NextDouble() < read_ratio_;
    if (!is_read && cfg_.ycsb.workload == YcsbWorkload::kD) {
      *key = latest_key_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    return is_read;
  }

  // Closed loop: submit (with backpressure retries) and await the reply.
  void Transact(ServeOp op, uint64_t key) {
    RequestMsg req;
    req.op = static_cast<uint64_t>(op);
    req.key = key;
    req.client = client_;
    req.seq = ++seq_;
    req.submit_time = core_.now();
    while (!server_.TrySubmit(core_, req)) {
      ++out_.retries;
      core_.Execute(cfg_.retry_backoff_cycles);
    }
    ResponseMsg resp;
    // Host-side wait (see RunOpenLoop): the Peek gate keeps it free of
    // per-poll charges, and Record advances the clock to the true service
    // completion.
    while (!(server_.HasResponse(client_) &&
             server_.TryGetResponse(core_, client_, &resp))) {
      std::this_thread::yield();
    }
    Record(resp);
  }

  void Record(const ResponseMsg& resp) {
    // The response cannot be observed before the server produced it: clamp
    // the client's clock to the completion time (this is what paces a
    // closed-loop client to the service rate), then account latency from
    // the response's own timestamps — see ResponseMsg::completion_time.
    if (resp.completion_time > core_.now()) {
      core_.Execute(resp.completion_time - core_.now());
    }
    if (resp.submit_time >= measure_from_) {  // see ServeConfig::settle_cycles
      out_.meter.Add(static_cast<ServeOp>(resp.op),
                     resp.completion_time - resp.submit_time);
    }
    if (static_cast<ServeOp>(resp.op) == ServeOp::kGet) {
      ++out_.gets;
      if (resp.status == 0) {
        ++out_.failed_gets;
      } else {
        ReadValue(core_, read_func_, resp.value_addr,
                  cfg_.ycsb.value_size);
      }
    } else {
      ++out_.puts;
    }
  }

  KvServer& server_;
  Core& core_;
  const ServeConfig& cfg_;
  const uint32_t client_;
  std::atomic<uint64_t>& latest_key_;
  const FuncToken read_func_;
  ScheduleWindow& board_;
  ClientCounters& out_;
  Xoshiro256 rng_;
  ZipfianGenerator zipf_;
  const double read_ratio_;
  const uint64_t measure_from_;
  uint64_t seq_ = 0;
};

}  // namespace

ServeResult ServeYcsb(Machine& machine, KvServer& server) {
  const ServeConfig& cfg = server.config();
  const uint32_t nshards = server.num_shards();
  const uint32_t nclients = server.num_clients();
  const FuncToken read_func{
      machine.registry().Intern("serveReadValue", "loadgen.cc")};

  server.Preload();
  server.BeginRun();
  machine.FlushAll();  // preload traffic must not pollute the serving stats
  machine.QuiesceDevices();  // ...nor queue the serving window behind it
  machine.ResetStats();

  std::vector<ClientCounters> counters(nclients);
  // One-interval buckets, inflight-horizon window — the same conservative
  // bound ScheduleBoard enforced, now O(1) per advance (schedule_window.h).
  ScheduleWindow board(nclients, cfg.open_loop_interval,
                       std::max(1u, cfg.max_inflight), machine.GlobalTime());
  std::atomic<uint64_t> latest_key{cfg.ycsb.num_keys};
  const uint64_t cycles = RunParallel(
      machine, nshards + nclients, [&](Core& core, uint32_t tid) {
        if (tid < nshards) {
          server.ShardWorkerLoop(core, tid);
          return;
        }
        const uint32_t client = tid - nshards;
        ClientSession session(server, core, client, latest_key, read_func,
                              board, counters[client]);
        if (cfg.open_loop) {
          session.RunOpenLoop();
        } else {
          session.RunClosedLoop();
        }
        server.ClientDone();
      });
  machine.FlushAll();

  ServeResult result;
  result.cycles = cycles;
  LatencyMeter merged;
  for (const ClientCounters& c : counters) {
    result.gets += c.gets;
    result.puts += c.puts;
    result.failed_gets += c.failed_gets;
    result.retries += c.retries;
    merged.Merge(c.meter);
  }
  result.ops = result.gets + result.puts;
  result.batches = server.TotalBatches();
  result.write_amplification = machine.target().Stats().WriteAmplification();
  result.hierarchy = machine.hierarchy_stats();
  result.get_latency = merged.Summary(ServeOp::kGet);
  result.put_latency = merged.Summary(ServeOp::kPut);
  result.shard_policies = server.ShardPolicies();
  return result;
}

}  // namespace prestore
