// In-process sharded KV server (DESIGN.md §9).
//
// N shard workers, each owning a private KV index (CLHT or Masstree), a
// bounded X9Inbox admission queue, and a recycled value arena. Clients
// route requests by key hash, get backpressure from full queues, and
// receive replies through per-client X9Inboxes whose freshly filled slots
// are demoted (the §7.3.2 message pattern). Shard workers batch admitted
// requests and close each batch with a clean pre-store sweep over the
// value-arena lines the batch dirtied (§7.2.3's craft-then-clean, hoisted
// out of the store into the server loop). With `governed` set, the server
// owns a PrestoreGovernor and aligns each shard's arena to the governor's
// region size, so per-shard rewrite/useless telemetry maps one-to-one onto
// governor regions and a misbehaving shard backs off on its own.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/kv/kvstore.h"
#include "src/monitor/region_monitor.h"
#include "src/msg/x9.h"
#include "src/robust/governor.h"
#include "src/serve/request.h"
#include "src/serve/serve_config.h"
#include "src/sim/machine.h"
#include "src/util/zipf.h"

namespace prestore {

// Per-shard view of the governor's regions (arena-address-range matched).
// Only the clean sweep emits hints into a shard's arena regions, so these
// counters isolate that shard's pre-store behaviour.
struct ShardPolicy {
  uint32_t shard = 0;
  uint32_t regions = 0;             // governor regions seen for this arena
  uint32_t backed_off_regions = 0;  // currently in RegionBackoff::kBackoff
  uint64_t admitted = 0;
  uint64_t suppressed = 0;
  uint64_t rewrites = 0;
  uint64_t useless = 0;
  uint32_t backoffs = 0;
  uint32_t reopens = 0;
};

// Construction helpers shared by KvServer and the cluster's per-node
// serving state (cluster.cc): index choice and the region-aligned,
// DIMM-phase-staggered shard arena described in KvServer's constructor.
std::unique_ptr<KvStore> MakeServeStore(Machine& machine, ServeIndex index,
                                        uint64_t keys_per_shard);
std::unique_ptr<ValueArena> MakeShardArena(Machine& machine,
                                           const ServeConfig& config,
                                           uint32_t shard);
// Maps a governor snapshot onto per-shard arena address ranges (empty when
// `governor` is null).
std::vector<ShardPolicy> CollectShardPolicies(
    const PrestoreGovernor* governor,
    const std::vector<const ValueArena*>& arenas);

class KvServer {
 public:
  // Throws std::invalid_argument when config.Validate() reports a problem.
  // The machine must have at least num_shards + ycsb.threads cores.
  KvServer(Machine& machine, const ServeConfig& config);

  const ServeConfig& config() const { return config_; }
  uint32_t num_shards() const { return config_.num_shards; }
  uint32_t num_clients() const { return config_.ycsb.threads; }

  // Key-hash shard router.
  uint32_t ShardFor(uint64_t key) const {
    return static_cast<uint32_t>(ZipfianGenerator::FnvHash64(key) %
                                 config_.num_shards);
  }

  // Loads keys 1..ycsb.num_keys into the shard indexes (dedicated slots, as
  // the YCSB load phase does). Idempotent; ServeYcsb calls it on first run.
  void Preload();
  bool preloaded() const { return preloaded_; }

  // Client side. TrySubmit routes by req.key; false = admission queue full
  // (backpressure — retry after config().retry_backoff_cycles).
  bool TrySubmit(Core& core, const RequestMsg& req);
  bool TryGetResponse(Core& core, uint32_t client, ResponseMsg* out);
  // Host-side probe of the client's response inbox (no simulated cost; see
  // X9Inbox::Peek). Gates charged TryGetResponse polls so a waiting
  // client's clock does not accumulate host-scheduler-dependent poll work.
  bool HasResponse(uint32_t client) { return responses_[client]->Peek(); }

  // Runs shard `shard`'s worker loop on `core` until every client has
  // called ClientDone() and the admission queue is drained.
  void ShardWorkerLoop(Core& core, uint32_t shard);

  // Run lifecycle (driven by ServeYcsb; exposed for tests).
  void BeginRun();     // resets the client gate and per-run counters
  void ClientDone();   // a client finished: all its requests are answered

  // Shifts the serving mix for subsequent runs (e.g. a write-heavy ingest
  // window followed by a read-mostly window against the same governed
  // arenas). `ops_per_thread` of 0 keeps the current value. Only call
  // between runs — the queues must be drained.
  void SetWorkload(YcsbWorkload workload, uint32_t ops_per_thread = 0);

  uint64_t TotalBatches() const;

  // Null when not governed. Attached to the machine for the server's
  // lifetime; take care not to stack a second governor on the same machine.
  PrestoreGovernor* governor() { return governor_.get(); }

  // Null unless `monitored`: the adaptive region monitor covering every
  // shard arena (one monitored range per shard), advising the governor and
  // gating the batch-close sweep (DESIGN.md §13).
  RegionMonitor* monitor() { return monitor_.get(); }

  // Sweep Prestore calls skipped host-side on the monitor's verdicts.
  uint64_t TotalSweepsGated() const;

  // Per-shard policy state from the governor snapshot (empty if ungoverned).
  std::vector<ShardPolicy> ShardPolicies() const;

 private:
  struct Shard {
    std::unique_ptr<KvStore> store;
    std::unique_ptr<X9Inbox> requests;
    std::unique_ptr<ValueArena> arena;
    uint64_t batches = 0;  // written only by the shard's worker core
    uint64_t sweeps_gated = 0;  // slots the monitor excluded from the sweep
  };

  Machine& machine_;
  ServeConfig config_;
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<X9Inbox>> responses_;  // one per client
  std::unique_ptr<PrestoreGovernor> governor_;
  std::unique_ptr<RegionMonitor> monitor_;
  std::atomic<uint32_t> clients_done_{0};
  bool preloaded_ = false;

  FuncToken craft_func_;
  FuncToken serve_func_;
  FuncToken sweep_func_;
};

}  // namespace prestore

#endif  // SRC_SERVE_SERVER_H_
