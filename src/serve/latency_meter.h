// Client-side request-latency accounting for the serving subsystem.
//
// Each client core owns one meter (no synchronization inside); the load
// generator merges them after the run and queries per-op percentiles.
// Latencies are simulated cycles from submission (closed loop: the actual
// submit; open loop: the SCHEDULED send time, so queueing delay from a
// saturated server is charged to the request — no coordinated omission).
#ifndef SRC_SERVE_LATENCY_METER_H_
#define SRC_SERVE_LATENCY_METER_H_

#include <cstdint>
#include <vector>

#include "src/serve/request.h"
#include "src/util/stats.h"

namespace prestore {

// What a meter answers: per-op-type tail latency. p99.9 is reported
// alongside p99: failover transients (a few re-routed requests per client)
// are invisible at p99 for any run longer than a few hundred ops per
// client, but they ARE the extreme tail the cluster bench bounds.
struct LatencySummary {
  uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

class LatencyMeter {
 public:
  void Add(ServeOp op, uint64_t cycles) {
    SamplesFor(op).push_back(static_cast<double>(cycles));
  }

  void Merge(const LatencyMeter& other) {
    get_.insert(get_.end(), other.get_.begin(), other.get_.end());
    put_.insert(put_.end(), other.put_.begin(), other.put_.end());
  }

  LatencySummary Summary(ServeOp op) const {
    const std::vector<double>& samples =
        op == ServeOp::kGet ? get_ : put_;
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty()) {
      return s;
    }
    Percentiles p;
    for (double x : samples) {
      p.Add(x);
      s.max = x > s.max ? x : s.max;
    }
    s.p50 = p.At(50.0);
    s.p95 = p.At(95.0);
    s.p99 = p.At(99.0);
    s.p999 = p.At(99.9);
    return s;
  }

 private:
  std::vector<double>& SamplesFor(ServeOp op) {
    return op == ServeOp::kGet ? get_ : put_;
  }

  std::vector<double> get_;
  std::vector<double> put_;
};

}  // namespace prestore

#endif  // SRC_SERVE_LATENCY_METER_H_
