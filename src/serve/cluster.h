// Replicated KV serving cluster (DESIGN.md §11).
//
// A KvCluster hosts N serving nodes, each a full sharded KV server on its
// OWN simulated Machine (heterogeneous presets — A, B-Fast, B-Slow — are
// first-class: a node's line size, drain policy, and target device are its
// machine's). A front-end ShardRouter places every key on
// `replication_factor` distinct nodes by consistent hashing over virtual
// ring points; writes are accepted by the first healthy placement member
// (the coordinator), applied locally, pushed to the other replicas over
// per-(sender, shard) X9Inbox replication channels (demote-on-send, the
// §7.3.2 message pattern), and only then acknowledged — so an acked write
// exists on every live replica's timeline before the client sees it.
//
// Failure model (driven by the deterministic FaultInjector's node faults):
//  - kNodeKill: the node refuses every request whose attempt-arrival time
//    is past the kill cycle; in-flight work (accepted earlier on its
//    schedule) still completes. Peers stop replicating to it and drop its
//    hints. Permanent.
//  - kNodeDrain: as kill for the window's duration; peers buffer the
//    drained node's replica writes as HINTS and replay them over the
//    normal channels when the node rejoins (hinted handoff).
//  - kNodeDegrade: each request served during the window is charged extra
//    service cycles (a throttled/contended node).
//
// Every refusal decision — client-side pre-check and server-side NACK —
// is keyed on the request attempt's SCHEDULED arrival time, a pure
// function of the client's arrival schedule and deterministic backoffs,
// never on a host-visible clock. That is the cluster's determinism
// argument: the set of (who served it, final status) outcomes replays
// byte-identically under the same seed + fault plan, no matter how host
// threads interleave (see DESIGN.md §11 for the full argument and its
// backpressure caveat).
#ifndef SRC_SERVE_CLUSTER_H_
#define SRC_SERVE_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/msg/x9.h"
#include "src/robust/fault_injector.h"
#include "src/serve/latency_meter.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/serve/serve_config.h"
#include "src/sim/machine.h"

namespace prestore {

// Consistent-hash placement: each node contributes `virtual_nodes` points
// on a 64-bit ring; a key's replica set is the first `replication`
// DISTINCT nodes clockwise from the key's hash. Immutable after
// construction and shared read-only by every driver thread.
class ShardRouter {
 public:
  ShardRouter(uint32_t nodes, uint32_t virtual_nodes, uint32_t replication,
              uint64_t seed);

  uint32_t nodes() const { return nodes_; }
  uint32_t replication() const { return replication_; }

  // Fills out[0 .. replication) with distinct node ids, primary first.
  void Placement(uint64_t key, uint32_t* out) const;
  uint32_t Primary(uint64_t key) const;

 private:
  struct Point {
    uint64_t pos;
    uint32_t node;
  };
  std::vector<Point> ring_;  // sorted by pos
  uint32_t nodes_;
  uint32_t replication_;
};

// Router-side per-node health: consecutive retry-after/refused counts and
// capped exponential probe backoff. One instance per LOGICAL CLIENT (each
// client learns about failures through its own requests), which keeps the
// failover decisions a pure function of that client's deterministic
// request schedule — a shared mutable view would order updates by host
// interleaving.
class NodeHealthView {
 public:
  NodeHealthView(uint32_t nodes, const ServeConfig& cfg)
      : state_(nodes),
        unhealthy_after_(cfg.unhealthy_after),
        base_(cfg.failover_backoff_base_cycles),
        cap_(cfg.failover_backoff_cap_cycles) {}

  // May this client try `node` for an attempt decided at cycle `at`?
  bool Usable(uint32_t node, uint64_t at) const {
    const State& s = state_[node];
    return s.consecutive < unhealthy_after_ || at >= s.next_probe;
  }

  void Fail(uint32_t node, uint64_t at) {
    State& s = state_[node];
    ++s.consecutive;
    if (s.consecutive >= unhealthy_after_) {
      const uint32_t excess =
          std::min<uint32_t>(s.consecutive - unhealthy_after_, 16);
      const uint64_t backoff = std::min(cap_, base_ << excess);
      s.next_probe = at + backoff;
    }
  }

  void Success(uint32_t node) { state_[node] = State{}; }

 private:
  struct State {
    uint32_t consecutive = 0;
    uint64_t next_probe = 0;
  };
  std::vector<State> state_;
  uint32_t unhealthy_after_;
  uint64_t base_;
  uint64_t cap_;
};

enum class SubmitStatus : uint8_t {
  kOk,          // accepted; a response will arrive
  kRefused,     // node killed/draining at the attempt's arrival time
  kRetryAfter,  // admission queue full (backpressure)
};

// Response status values (ResponseMsg::status).
inline constexpr uint64_t kStatusMiss = 0;
inline constexpr uint64_t kStatusOk = 1;
inline constexpr uint64_t kStatusRetryAfter = 2;  // server-side NACK

// Per-node post-run report.
struct NodeReport {
  uint32_t node = 0;
  std::string machine_name;
  bool killed = false;   // a kill window targeted this node
  bool drained = false;  // a drain window targeted this node
  uint64_t served = 0;   // requests answered (ok or miss)
  uint64_t nacks = 0;    // server-side retry-after responses
  uint64_t batches = 0;
  uint64_t applied_replications = 0;  // replica writes applied
  uint64_t repl_skipped_dead = 0;     // replica writes skipped: peer killed
  uint64_t hints_stored = 0;          // replica writes buffered for a
                                      // draining peer
  uint64_t hints_replayed = 0;
  uint64_t hints_dropped = 0;  // peer died before rejoining
  double write_amplification = 1.0;
  std::vector<ShardPolicy> shard_policies;  // empty when ungoverned
};

// One phase of the cluster run (steady / during-failure / post-recovery),
// bucketed by scheduled submit time.
struct ClusterPhase {
  std::string name;
  uint64_t from = 0;  // run-relative [from, to)
  uint64_t to = 0;
  uint64_t ops = 0;
  uint64_t gets = 0;
  uint64_t puts = 0;
  double throughput_per_mcycle = 0.0;
  LatencySummary get_latency;
  LatencySummary put_latency;
};

struct ClusterResult {
  uint64_t cycles = 0;  // serving-window span (max over node machines)
  uint64_t ops = 0;     // requests resolved ok/miss
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t failed_gets = 0;    // GET misses
  uint64_t gave_up = 0;        // abandoned after max_attempts passes
  uint64_t refusals = 0;       // client-side refusals (node faulted)
  uint64_t nacks = 0;          // server-side retry-after responses
  uint64_t retries = 0;        // admission-queue backpressure events
  uint64_t failovers = 0;      // requests resolved by a non-primary node
  uint64_t acked_puts = 0;     // PUTs acknowledged ok
  uint64_t lost_acked_puts = 0;  // acked PUTs on NO live node (must be 0)
  LatencySummary get_latency;
  LatencySummary put_latency;
  std::vector<ClusterPhase> phases;
  std::vector<NodeReport> nodes;
  // Per-request outcome log "c=<id> seq=<n> op=.. key=.. node=.. status=..",
  // sorted by (client, seq); empty unless ClusterRunOptions.record_outcomes.
  std::string outcome_log;

  double ThroughputPerMcycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops) * 1e6 /
                             static_cast<double>(cycles);
  }
};

struct ClusterRunOptions {
  // Run-relative phase boundaries; k marks split the run into k+1 phases
  // named phase0..phasek (the bench labels steady/failure/recovered).
  std::vector<uint64_t> phase_marks;
  bool record_outcomes = false;
};

class KvCluster {
 public:
  // One MachineConfig per node (cfg.cluster_nodes of them; num_cores is
  // overridden with the cluster's core budget). `injector` may be null (no
  // faults); it must outlive the cluster and is consumed through the
  // node-fault queries only — device-level kinds are not auto-attached.
  // Throws std::invalid_argument on config problems.
  KvCluster(const ServeConfig& config, std::vector<MachineConfig> nodes,
            FaultInjector* injector = nullptr);
  ~KvCluster();

  const ServeConfig& config() const { return config_; }
  const ShardRouter& router() const { return router_; }
  FaultInjector* injector() { return injector_; }
  uint32_t num_nodes() const { return config_.cluster_nodes; }
  uint32_t num_shards() const { return config_.num_shards; }
  uint32_t num_drivers() const { return config_.ycsb.threads; }
  uint32_t num_clients() const {
    return config_.logical_clients != 0 ? config_.logical_clients
                                        : config_.ycsb.threads;
  }

  Machine& machine(uint32_t node);
  KvStore& store(uint32_t node, uint32_t shard);

  uint32_t ShardFor(uint64_t key) const {
    return static_cast<uint32_t>(ZipfianGenerator::FnvHash64(key) %
                                 config_.num_shards);
  }

  // Loads every key onto each node of its replica set. Idempotent.
  void Preload();

  // Run lifecycle. `origin` anchors run-relative time: every node-fault
  // window and every schedule cycle is relative to it.
  void BeginRun(uint64_t origin);
  uint64_t origin() const { return origin_; }
  uint64_t RelTime(uint64_t abs) const {
    return abs > origin_ ? abs - origin_ : 0;
  }
  void DriversDone();  // all drivers resolved all their requests

  // Client side (driver threads). `driver` doubles as the injector's
  // rejection-log lane. req.not_before must carry the attempt's arrival
  // time (decision + one net hop).
  SubmitStatus TrySubmit(uint32_t driver, uint32_t node,
                         const RequestMsg& req);
  bool HasResponse(uint32_t node, uint32_t driver);
  bool TryGetResponse(uint32_t node, uint32_t driver, ResponseMsg* out);
  Core& driver_core(uint32_t driver, uint32_t node);

  // Shard worker loop for (node, shard); runs until every driver is done,
  // queues are drained, and hints are replayed or dropped.
  void WorkerLoop(uint32_t node, uint32_t shard);

  // ---- Post-run inspection (call after the run's threads have joined) ----
  std::vector<NodeReport> NodeReports() const;
  // Applied-write token: identifies one acknowledged PUT across replicas.
  static uint64_t Token(uint64_t client, uint64_t seq) {
    return (client << 32) | (seq & 0xffffffffULL);
  }
  // Was `token` applied on at least one node that was never killed? The
  // zero-lost-acked-writes check.
  bool AppliedOnLiveNode(uint64_t token) const;
  // Was it applied on `node` specifically (hinted-handoff verification)?
  bool AppliedOn(uint32_t node, uint64_t token) const;
  bool NodeEverKilled(uint32_t node) const;
  bool NodeEverDrained(uint32_t node) const;

 private:
  struct ReplChannel;
  struct NodeShard;
  struct Node;

  // Worker-loop pieces (all run on (node, shard)'s worker host thread).
  void DrainRepl(Core& core, uint32_t node, uint32_t shard,
                 std::vector<SimAddr>* touched, bool* progress);
  void ServeOne(Core& core, uint32_t node, uint32_t shard,
                const RequestMsg& req, std::vector<SimAddr>* touched);
  void Respond(Core& core, uint32_t node, const ResponseMsg& resp);
  // Replica write at the coordinator: push to every live placement peer,
  // hint the draining ones, skip the dead ones.
  void Replicate(Core& core, uint32_t node, uint32_t shard,
                 const RequestMsg& req, std::vector<SimAddr>* touched);
  void SendRepl(Core& core, uint32_t from, uint32_t to, uint32_t shard,
                const RequestMsg& rec, std::vector<SimAddr>* touched);
  void ApplyRepl(Core& core, uint32_t node, uint32_t shard,
                 const RequestMsg& rec, std::vector<SimAddr>* touched);
  void ReplayHints(Core& core, uint32_t node, uint32_t shard, bool* progress,
                   bool* unresolved, uint64_t* next_replay,
                   std::vector<SimAddr>* touched);
  void BuildAppliedSets() const;

  ServeConfig config_;
  ShardRouter router_;
  FaultInjector* injector_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // channels_[from][to][shard]: X9Inbox on node `to`'s machine, written
  // through a dedicated ingress core of that machine (one per (sender,
  // shard), so each channel has exactly one writing host thread).
  std::vector<std::vector<std::vector<std::unique_ptr<ReplChannel>>>>
      channels_;
  uint64_t origin_ = 0;
  std::atomic<bool> drivers_done_{false};
  std::atomic<uint32_t> workers_send_done_{0};
  bool preloaded_ = false;

  // Lazy post-run cache of per-node applied-token sets.
  mutable std::vector<std::unordered_set<uint64_t>> applied_sets_;
  mutable bool applied_built_ = false;
};

// Runs the open-loop cluster YCSB workload: N*S shard workers plus
// ycsb.threads driver host threads multiplexing num_clients() logical
// open-loop clients. Preloads on first use; stats cover the serving window
// only. See DESIGN.md §11.
ClusterResult RunClusterYcsb(KvCluster& cluster,
                             const ClusterRunOptions& options = {});

}  // namespace prestore

#endif  // SRC_SERVE_CLUSTER_H_
