// Open-loop load generation for the replicated cluster (DESIGN.md §11).
//
// `ycsb.threads` driver host threads multiplex `num_clients()` logical
// open-loop clients (client c belongs to driver c % D). Each client owns a
// deterministic arrival schedule, its own rng, and its own NodeHealthView;
// each driver owns one simulated core PER NODE MACHINE (submissions and
// response reads to node n are charged to driver core d of machine n).
//
// The failover state machine lives here, client-side:
//  - every attempt has a DECISION time (a pure function of the client's
//    schedule and its previous failed attempts, never a host clock) and an
//    arrival time one net hop later (RequestMsg::not_before);
//  - an attempt refused by the router's fault pre-check, or NACKed by the
//    node, costs one refusal round trip: decision += 2 * net, and the next
//    replica in the placement is tried;
//  - a node marked unhealthy (unhealthy_after consecutive failures) is
//    skipped for free until its capped-exponential probe time;
//  - an exhausted pass over the replica set costs one capped backoff;
//    max_attempts passes abandon the request as "failed" (never dropped).
//
// Determinism scope: with max_inflight = 1 each client's health events are
// totally ordered by its own request sequence, so the (node, status)
// outcome of every request is a pure function of seed + fault plan (the
// determinism tests and the bench self-check run in this regime, with
// admission queues deep enough not to saturate). Deeper per-client
// pipelines let NACK observations interleave with later submissions in
// host order, and node choice near a fault edge may vary — acked-write
// durability and the zero-loss guarantee hold regardless.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kv/ycsb.h"
#include "src/serve/cluster.h"
#include "src/serve/schedule_window.h"
#include "src/sim/harness.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace prestore {

namespace {

// Final status of one request (outcome log + per-request record).
enum class Outcome : uint8_t { kOk, kMiss, kFailed };

struct OutcomeRec {
  uint64_t client;
  uint64_t seq;
  uint64_t key;
  uint8_t op;  // ServeOp
  int32_t node;  // serving node, -1 when abandoned
  Outcome outcome;
};

struct Pending {
  uint64_t seq = 0;
  uint64_t key = 0;
  uint64_t submit = 0;    // scheduled arrival (absolute cycles)
  uint64_t decision = 0;  // current attempt's decision time (absolute)
  ServeOp op = ServeOp::kGet;
  std::array<uint32_t, 8> placement{};
  uint32_t cursor = 0;  // next placement index to try in this pass
  uint32_t pass = 0;
  uint32_t target = UINT32_MAX;  // node of the current attempt
  bool inflight = false;  // false: blocked on a full admission ring
};

struct LClient {
  uint32_t id = 0;
  uint64_t next_send = 0;
  uint32_t sent = 0;
  std::vector<Pending> pending;
  NodeHealthView health;
  Xoshiro256 rng;
  bool finished = false;

  LClient(uint32_t id_, uint64_t first_send, uint32_t nodes,
          const ServeConfig& cfg, uint64_t seed)
      : id(id_), next_send(first_send), health(nodes, cfg), rng(seed) {}
};

// Per-driver accounting, merged after the run.
struct DriverCtx {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t failed_gets = 0;
  uint64_t gave_up = 0;
  uint64_t refusals = 0;
  uint64_t nacks = 0;
  uint64_t retries = 0;
  uint64_t failovers = 0;
  std::vector<uint64_t> acked_put_tokens;
  LatencyMeter meter;
  std::vector<LatencyMeter> phase_meters;
  std::vector<uint64_t> phase_gets;
  std::vector<uint64_t> phase_puts;
  std::vector<OutcomeRec> outcomes;
};

// Consumes a GET hit like the single-machine driver (sequential read of the
// value on the SERVING node's machine) — response-value reads keep that
// node's LLC honest about the serving mix.
void ReadValue(Core& core, FuncToken func, SimAddr value, uint32_t size) {
  ScopedFunction f(core, func);
  uint64_t sum = 0;
  for (uint32_t off = 0; off < size; off += 8) {
    sum += core.LoadU64(value + off);
  }
  core.Execute(sum % 3 + 1);
}

class Driver {
 public:
  Driver(KvCluster& cluster, uint32_t driver, const ClusterRunOptions& opts,
         const ZipfianGenerator& zipf, const std::vector<FuncToken>& read_funcs,
         ScheduleWindow& board, uint64_t origin, DriverCtx& out)
      : cluster_(cluster),
        cfg_(cluster.config()),
        d_(driver),
        ndrivers_(cluster.num_drivers()),
        opts_(opts),
        zipf_(zipf),
        read_funcs_(read_funcs),
        board_(board),
        origin_(origin),
        measure_from_(origin + cluster.config().settle_cycles),
        read_ratio_(YcsbReadRatio(cluster.config().ycsb.workload)),
        net_(cluster.config().net_latency_cycles),
        out_(out) {}

  void Run() {
    const uint32_t nclients = cluster_.num_clients();
    const uint32_t total = cfg_.ycsb.ops_per_thread;
    const uint64_t interval = cfg_.open_loop_interval;
    for (uint32_t c = d_; c < nclients; c += ndrivers_) {
      // Stagger all logical clients across one interval (herd avoidance,
      // as in the single-machine open loop).
      clients_.emplace_back(c, origin_ + interval * c / nclients,
                            cluster_.num_nodes(), cfg_,
                            cfg_.ycsb.seed * 1315423911ULL + c);
      if (total == 0) {
        clients_.back().finished = true;
        board_.Advance(c, UINT64_MAX);
      }
    }
    size_t active = 0;
    for (const LClient& lc : clients_) {
      active += lc.finished ? 0 : 1;
    }
    while (active > 0) {
      bool progress = DrainResponses();
      for (LClient& lc : clients_) {
        if (lc.finished) {
          continue;
        }
        // Re-submit attempts blocked on a full admission ring.
        for (size_t i = 0; i < lc.pending.size();) {
          if (!lc.pending[i].inflight && FinishAttempt(lc, i)) {
            progress = true;
          } else {
            ++i;
          }
        }
        // New request when the schedule and the inflight cap allow it.
        if (lc.sent < total && lc.pending.size() < cfg_.max_inflight &&
            board_.MayFire(lc.next_send)) {
          StartRequest(lc, total);
          progress = true;
        }
        if (lc.sent == total && lc.pending.empty()) {
          lc.finished = true;
          --active;
        }
      }
      if (!progress) {
        std::this_thread::yield();
      }
    }
  }

 private:
  LClient& ClientFor(uint64_t client_id) {
    return clients_[client_id / ndrivers_];  // ids d, d+D, d+2D, ...
  }

  size_t PendingIndex(const LClient& lc, uint64_t seq) const {
    for (size_t i = 0; i < lc.pending.size(); ++i) {
      if (lc.pending[i].seq == seq) {
        return i;
      }
    }
    return lc.pending.size();
  }

  void StartRequest(LClient& lc, uint32_t total) {
    Pending p;
    p.seq = lc.sent + 1;
    p.key = zipf_.NextScrambled(lc.rng) + 1;
    const bool is_read = lc.rng.NextDouble() < read_ratio_;
    p.op = is_read ? ServeOp::kGet : ServeOp::kPut;
    p.submit = lc.next_send;
    p.decision = lc.next_send;
    cluster_.router().Placement(p.key, p.placement.data());
    ++lc.sent;
    lc.next_send += cfg_.open_loop_interval;
    board_.Advance(lc.id, lc.sent == total ? UINT64_MAX : lc.next_send);
    lc.pending.push_back(p);
    FinishAttempt(lc, lc.pending.size() - 1);
  }

  // Drives pending[i]'s failover state machine until the request is in
  // flight, blocked on backpressure, or abandoned. Returns true when the
  // pending entry was REMOVED (abandoned) — callers iterating must not
  // advance their index in that case.
  bool FinishAttempt(LClient& lc, size_t i) {
    Pending& p = lc.pending[i];
    while (true) {
      while (p.cursor < cluster_.router().replication()) {
        const uint32_t n = p.placement[p.cursor];
        if (!lc.health.Usable(n, p.decision)) {
          ++p.cursor;  // marked unhealthy: skip without paying the RTT
          continue;
        }
        RequestMsg req;
        req.op = static_cast<uint64_t>(p.op);
        req.key = p.key;
        req.client = lc.id;
        req.seq = p.seq;
        req.submit_time = p.submit;
        req.not_before = p.decision + net_;
        switch (cluster_.TrySubmit(d_, n, req)) {
          case SubmitStatus::kOk:
            p.inflight = true;
            p.target = n;
            return false;
          case SubmitStatus::kRetryAfter:
            // Admission ring transiently full: a host-level condition, so
            // it must not move the deterministic decision time. Leave the
            // attempt parked; the outer loop retries after draining (count
            // the event once, not once per host-level poll).
            if (p.target != n || p.inflight) {
              ++out_.retries;
            }
            p.inflight = false;
            p.target = n;
            return false;
          case SubmitStatus::kRefused:
            // The router knows (deterministically) the node refuses
            // attempts decided now; charge the discovery round trip.
            ++out_.refusals;
            p.decision += 2 * net_;
            lc.health.Fail(n, p.decision);
            ++p.cursor;
            break;
        }
      }
      ++p.pass;
      p.cursor = 0;
      if (p.pass >= cfg_.max_attempts) {
        ++out_.gave_up;
        RecordOutcome(lc.id, p, -1, Outcome::kFailed);
        lc.pending.erase(lc.pending.begin() + static_cast<long>(i));
        return true;
      }
      const uint32_t shift = std::min<uint32_t>(p.pass - 1, 16);
      p.decision += std::min(cfg_.failover_backoff_cap_cycles,
                             cfg_.failover_backoff_base_cycles << shift);
    }
  }

  bool DrainResponses() {
    bool any = false;
    ResponseMsg resp;
    for (uint32_t n = 0; n < cluster_.num_nodes(); ++n) {
      while (cluster_.HasResponse(n, d_) &&
             cluster_.TryGetResponse(n, d_, &resp)) {
        any = true;
        LClient& lc = ClientFor(resp.client);
        const size_t i = PendingIndex(lc, resp.seq);
        if (i == lc.pending.size()) {
          continue;  // stale response for an abandoned request
        }
        if (resp.status == kStatusRetryAfter) {
          // The attempt arrived inside a fault window (decided just before
          // it opened). Same deterministic cost as a router refusal.
          Pending& p = lc.pending[i];
          ++out_.nacks;
          p.inflight = false;
          p.decision += 2 * net_;
          lc.health.Fail(n, p.decision);
          ++p.cursor;
          FinishAttempt(lc, i);
          continue;
        }
        Resolve(lc, i, resp, n);
      }
    }
    return any;
  }

  void Resolve(LClient& lc, size_t i, const ResponseMsg& resp, uint32_t node) {
    Pending& p = lc.pending[i];
    lc.health.Success(node);
    // Latency spans the full modeled round trip: scheduled arrival through
    // service completion plus the response's net hop. Failover detours are
    // inside not_before, so they are inside this number too.
    const uint64_t latency = resp.completion_time + net_ - resp.submit_time;
    const size_t phase = PhaseOf(resp.submit_time);
    if (resp.submit_time >= measure_from_) {
      out_.meter.Add(p.op, latency);
      out_.phase_meters[phase].Add(p.op, latency);
    }
    if (p.op == ServeOp::kGet) {
      ++out_.gets;
      ++out_.phase_gets[phase];
      if (resp.status == kStatusOk) {
        ReadValue(cluster_.driver_core(d_, node), read_funcs_[node],
                  resp.value_addr, cfg_.ycsb.value_size);
      } else {
        ++out_.failed_gets;
      }
    } else {
      ++out_.puts;
      ++out_.phase_puts[phase];
      if (resp.status == kStatusOk) {
        out_.acked_put_tokens.push_back(KvCluster::Token(lc.id, p.seq));
      }
    }
    if (node != p.placement[0]) {
      ++out_.failovers;
    }
    RecordOutcome(lc.id, p, static_cast<int32_t>(node),
                  resp.status == kStatusOk ? Outcome::kOk : Outcome::kMiss);
    lc.pending.erase(lc.pending.begin() + static_cast<long>(i));
  }

  size_t PhaseOf(uint64_t submit_abs) const {
    const uint64_t rel = submit_abs > origin_ ? submit_abs - origin_ : 0;
    size_t k = 0;
    while (k < opts_.phase_marks.size() && rel >= opts_.phase_marks[k]) {
      ++k;
    }
    return k;
  }

  void RecordOutcome(uint64_t client, const Pending& p, int32_t node,
                     Outcome outcome) {
    if (!opts_.record_outcomes) {
      return;
    }
    out_.outcomes.push_back(OutcomeRec{
        client, p.seq, p.key, static_cast<uint8_t>(p.op), node, outcome});
  }

  KvCluster& cluster_;
  const ServeConfig& cfg_;
  const uint32_t d_;
  const uint32_t ndrivers_;
  const ClusterRunOptions& opts_;
  const ZipfianGenerator& zipf_;
  const std::vector<FuncToken>& read_funcs_;
  ScheduleWindow& board_;
  const uint64_t origin_;
  const uint64_t measure_from_;
  const double read_ratio_;
  const uint64_t net_;
  DriverCtx& out_;
  std::vector<LClient> clients_;
};

[[noreturn]] void ClusterWatchdogAbort(KvCluster& cluster, uint32_t nthreads,
                                       const std::vector<bool>& finished,
                                       uint64_t watchdog_ms) {
  std::fprintf(stderr,
               "RunClusterYcsb watchdog: run exceeded %llu ms; aborting.\n",
               static_cast<unsigned long long>(watchdog_ms));
  for (uint32_t t = 0; t < nthreads; ++t) {
    std::fprintf(stderr, "  thread %2u: %s\n", t,
                 finished[t] ? "finished" : "STILL RUNNING");
  }
  for (uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    Machine& m = cluster.machine(n);
    for (uint32_t c = 0; c < m.num_cores(); ++c) {
      std::fprintf(stderr, "  node %u core %2u: now=%llu\n", n, c,
                   static_cast<unsigned long long>(m.core(c).PublishedNow()));
    }
  }
  std::abort();
}

std::string SerializeOutcomes(std::vector<OutcomeRec>& recs) {
  // Sorted by (client, seq): resolution ORDER is host-dependent, the sorted
  // CONTENT is the deterministic object two runs must agree on.
  std::sort(recs.begin(), recs.end(),
            [](const OutcomeRec& a, const OutcomeRec& b) {
              return a.client != b.client ? a.client < b.client
                                          : a.seq < b.seq;
            });
  std::string out;
  out.reserve(recs.size() * 48);
  char line[128];
  for (const OutcomeRec& r : recs) {
    const char* status = r.outcome == Outcome::kOk     ? "ok"
                         : r.outcome == Outcome::kMiss ? "miss"
                                                       : "failed";
    std::snprintf(line, sizeof(line),
                  "c=%llu seq=%llu op=%s key=%llu node=%d status=%s\n",
                  static_cast<unsigned long long>(r.client),
                  static_cast<unsigned long long>(r.seq),
                  static_cast<ServeOp>(r.op) == ServeOp::kGet ? "get" : "put",
                  static_cast<unsigned long long>(r.key), r.node, status);
    out += line;
  }
  return out;
}

}  // namespace

ClusterResult RunClusterYcsb(KvCluster& cluster,
                             const ClusterRunOptions& options) {
  const ServeConfig& cfg = cluster.config();
  const uint32_t nnodes = cluster.num_nodes();
  const uint32_t nshards = cluster.num_shards();
  const uint32_t ndrivers = cluster.num_drivers();
  const uint32_t nclients = cluster.num_clients();
  const size_t nphases = options.phase_marks.size() + 1;

  cluster.Preload();
  uint64_t t0 = 0;
  for (uint32_t n = 0; n < nnodes; ++n) {
    Machine& m = cluster.machine(n);
    m.FlushAll();
    m.QuiesceDevices();
    m.ResetStats();
    t0 = std::max(t0, m.GlobalTime());
  }
  // The run's origin: preload duration varies with host thread interleaving
  // by a little; rounding up to a large quantum makes the origin (and with
  // it every run-relative time) reproducible across runs.
  constexpr uint64_t kOriginQuantum = 1ULL << 20;
  const uint64_t origin = (t0 + kOriginQuantum - 1) / kOriginQuantum *
                          kOriginQuantum;
  cluster.BeginRun(origin);

  const ZipfianGenerator zipf(cfg.ycsb.num_keys, cfg.ycsb.zipf_theta);
  ScheduleWindow board(nclients, cfg.open_loop_interval,
                       std::max(1u, cfg.max_inflight), origin);
  std::vector<FuncToken> read_funcs;
  for (uint32_t n = 0; n < nnodes; ++n) {
    read_funcs.push_back(FuncToken{cluster.machine(n).registry().Intern(
        "clusterReadValue", "cluster_loadgen.cc")});
  }
  std::vector<DriverCtx> ctxs(ndrivers);
  for (DriverCtx& ctx : ctxs) {
    ctx.phase_meters.resize(nphases);
    ctx.phase_gets.assign(nphases, 0);
    ctx.phase_puts.assign(nphases, 0);
  }
  std::atomic<uint32_t> drivers_left{ndrivers};

  // Custom cross-machine launcher (RunParallel drives one machine only):
  // N*S shard workers + D drivers, exception capture, optional watchdog.
  const uint32_t nthreads = nnodes * nshards + ndrivers;
  const uint64_t watchdog_ms = harness_internal::DefaultWatchdogMs();
  std::mutex mu;
  std::condition_variable cv;
  uint32_t done = 0;
  std::vector<bool> finished(nthreads, false);
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (uint32_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::exception_ptr error;
      try {
        if (t < nnodes * nshards) {
          cluster.WorkerLoop(t / nshards, t % nshards);
        } else {
          const uint32_t d = t - nnodes * nshards;
          Driver(cluster, d, options, zipf, read_funcs, board, origin,
                 ctxs[d])
              .Run();
          if (drivers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            cluster.DriversDone();
          }
        }
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (error != nullptr && first_error == nullptr) {
        first_error = error;
      }
      finished[t] = true;
      ++done;
      cv.notify_all();
    });
  }
  if (watchdog_ms != 0) {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::milliseconds(watchdog_ms),
                     [&] { return done == nthreads; })) {
      ClusterWatchdogAbort(cluster, nthreads, finished, watchdog_ms);
    }
  }
  for (std::thread& th : threads) {
    th.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }

  ClusterResult result;
  for (uint32_t n = 0; n < nnodes; ++n) {
    cluster.machine(n).FlushAll();
    const uint64_t t = cluster.machine(n).GlobalTime();
    result.cycles = std::max(result.cycles, t > origin ? t - origin : 0);
  }

  LatencyMeter merged;
  std::vector<LatencyMeter> phase_merged(nphases);
  std::vector<uint64_t> phase_gets(nphases, 0);
  std::vector<uint64_t> phase_puts(nphases, 0);
  std::vector<OutcomeRec> outcomes;
  for (DriverCtx& ctx : ctxs) {
    result.gets += ctx.gets;
    result.puts += ctx.puts;
    result.failed_gets += ctx.failed_gets;
    result.gave_up += ctx.gave_up;
    result.refusals += ctx.refusals;
    result.nacks += ctx.nacks;
    result.retries += ctx.retries;
    result.failovers += ctx.failovers;
    result.acked_puts += ctx.acked_put_tokens.size();
    for (const uint64_t token : ctx.acked_put_tokens) {
      if (!cluster.AppliedOnLiveNode(token)) {
        ++result.lost_acked_puts;
      }
    }
    merged.Merge(ctx.meter);
    for (size_t k = 0; k < nphases; ++k) {
      phase_merged[k].Merge(ctx.phase_meters[k]);
      phase_gets[k] += ctx.phase_gets[k];
      phase_puts[k] += ctx.phase_puts[k];
    }
    outcomes.insert(outcomes.end(), ctx.outcomes.begin(),
                    ctx.outcomes.end());
  }
  result.ops = result.gets + result.puts;
  result.get_latency = merged.Summary(ServeOp::kGet);
  result.put_latency = merged.Summary(ServeOp::kPut);
  for (size_t k = 0; k < nphases; ++k) {
    ClusterPhase phase;
    phase.name = "phase" + std::to_string(k);
    phase.from = k == 0 ? 0 : options.phase_marks[k - 1];
    phase.to = k < options.phase_marks.size() ? options.phase_marks[k]
                                              : result.cycles;
    phase.gets = phase_gets[k];
    phase.puts = phase_puts[k];
    phase.ops = phase.gets + phase.puts;
    if (phase.to > phase.from) {
      phase.throughput_per_mcycle = static_cast<double>(phase.ops) * 1e6 /
                                    static_cast<double>(phase.to - phase.from);
    }
    phase.get_latency = phase_merged[k].Summary(ServeOp::kGet);
    phase.put_latency = phase_merged[k].Summary(ServeOp::kPut);
    result.phases.push_back(std::move(phase));
  }
  result.nodes = cluster.NodeReports();
  if (options.record_outcomes) {
    result.outcome_log = SerializeOutcomes(outcomes);
  }
  return result;
}

}  // namespace prestore
