// Wire format of the serving subsystem's admission and response queues.
//
// Requests and responses travel through X9Inbox message slots, so both
// structs are fixed-size trivially-copyable PODs: the producer fills a
// host-side struct and X9Inbox::TryWrite copies it into the simulated slot
// byte-for-byte (and, on the response path, demotes the freshly filled
// reply buffer — the §7.3.2 pattern).
#ifndef SRC_SERVE_REQUEST_H_
#define SRC_SERVE_REQUEST_H_

#include <cstdint>
#include <type_traits>

#include "src/sim/machine.h"

namespace prestore {

enum class ServeOp : uint64_t {
  kGet = 0,
  kPut = 1,
};

// Client -> shard admission queue.
struct RequestMsg {
  uint64_t op = 0;  // ServeOp
  uint64_t key = 0;
  uint64_t client = 0;       // logical client id (cluster: demux key, too)
  uint64_t seq = 0;          // client-local sequence number, echoed back
  uint64_t submit_time = 0;  // client clock at submission (echoed back)
  // Earliest cycle the server may start service. Single-machine serving
  // leaves it 0 (submit_time is the bound); the cluster stamps the arrival
  // time of the CURRENT attempt — original submit plus failover round
  // trips and backoff — so a request re-routed after its primary died
  // cannot be served "in the past" and its measured latency keeps the
  // failover delay (latency stays completion - submit_time).
  uint64_t not_before = 0;
};

// Shard -> client response queue.
struct ResponseMsg {
  uint64_t op = 0;      // ServeOp (echo)
  uint64_t client = 0;  // echo: cluster drivers share one inbox per node
  uint64_t seq = 0;
  uint64_t status = 0;       // 1 = ok / key found, 0 = GET miss
  uint64_t value_addr = 0;   // simulated address of the value (GET hit / PUT)
  uint64_t submit_time = 0;  // echo, for client-side latency accounting
  // Shard worker clock when the request finished service (>= submit_time:
  // the worker clamps its clock to submit_time before serving). Latency is
  // accounted as completion_time - submit_time — both ends are sim-time
  // events of the request itself, so the number cannot be polluted by the
  // observing client's clock (which drifts with poll costs and, in the open
  // loop, runs ahead on its arrival schedule).
  uint64_t completion_time = 0;
};

static_assert(std::is_trivially_copyable_v<RequestMsg>);
static_assert(std::is_trivially_copyable_v<ResponseMsg>);

}  // namespace prestore

#endif  // SRC_SERVE_REQUEST_H_
