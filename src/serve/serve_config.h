// Configuration of the sharded KV serving subsystem (DESIGN.md §9).
#ifndef SRC_SERVE_SERVE_CONFIG_H_
#define SRC_SERVE_SERVE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/kv/ycsb.h"
#include "src/monitor/region_monitor.h"
#include "src/msg/x9.h"
#include "src/robust/governor_policy.h"

namespace prestore {

// Which KV index backs each shard.
enum class ServeIndex : uint8_t {
  kClht,
  kMasstree,
};

struct ServeConfig {
  // Workload shape, reused from the YCSB driver: `ycsb.threads` is the
  // number of client cores, `ycsb.ops_per_thread` the requests per client,
  // and num_keys / value_size / workload / zipf_theta / seed / arena_slots
  // keep their meanings (arena_slots is the per-SHARD value ring).
  // `ycsb.policy` is ignored: the server owns the pre-store placement
  // (batched clean sweep + response demote), that being the point of §9.
  YcsbConfig ycsb;

  ServeIndex index = ServeIndex::kClht;
  uint32_t num_shards = 2;

  // Queue capacities; X9Inbox requires powers of two.
  uint32_t queue_slots = 64;     // per-shard admission queue
  uint32_t response_slots = 16;  // per-client response queue

  // Request batching: a shard worker that has admitted one request keeps
  // polling for more until it holds `batch_max` of them or the batch has
  // been open for `batch_window_cycles`; the batch then executes and — when
  // `batched_clean` is set — closes with one clean pre-store sweep over the
  // value-arena slots the batch dirtied (§7.2.3 applied to a server loop).
  uint32_t batch_max = 8;
  uint64_t batch_window_cycles = 4000;
  bool batched_clean = true;

  // Response publication: demote by default (reply buffers are reused and
  // read by another core — DirtBuster's recommendation for §7.3.2 buffers).
  MsgPrestore response_prestore = MsgPrestore::kDemote;

  // Online policy loop: when set, the server owns a PrestoreGovernor
  // attached to the machine, and aligns each shard's value arena to the
  // governor's region size so per-shard rewrite/useless telemetry lands in
  // that shard's own regions — a misbehaving shard backs off independently.
  bool governed = false;
  GovernorConfig governor;

  // Adaptive monitoring (DESIGN.md §13): when set (requires `governed`),
  // the server owns a RegionMonitor with one monitored range per shard
  // value arena, runs the governor in GovernorPolicy::kMonitored mode with
  // the monitor as its per-region advisor, and gates the batch-close clean
  // sweep host-side on the monitor's scheme verdicts (a suppressed shard
  // region skips its sweep Prestore calls entirely, probes excepted).
  bool monitored = false;
  MonitorConfig monitor;

  // Load generation. Closed loop: each client keeps exactly one request
  // outstanding. Open loop: clients fire a request every
  // `open_loop_interval` cycles (up to `max_inflight` outstanding, which
  // must fit the response queue or the shard worker could wedge on a full
  // reply ring).
  bool open_loop = false;
  uint64_t open_loop_interval = 2000;
  uint32_t max_inflight = 4;

  // Backpressure: a full admission queue rejects the submit (TryWrite
  // returns false) and the client retries after this many cycles.
  uint64_t retry_backoff_cycles = 200;

  // ---- Cluster serving (KvCluster, DESIGN.md §11). Ignored by the
  // single-machine KvServer; validated whenever cluster_nodes > 1. ----
  // N node machines, each hosting num_shards shard workers. Every key lives
  // on `replication_factor` distinct nodes chosen by consistent hashing
  // over `virtual_nodes` ring points per node (power of two, so the ring
  // re-seeds reproducibly when nodes are added).
  uint32_t cluster_nodes = 1;
  uint32_t replication_factor = 1;
  uint32_t virtual_nodes = 64;
  uint64_t ring_seed = 0x5ca1ab1e;
  // Per (peer, shard) replication channel capacity (X9Inbox, power of two).
  uint32_t repl_queue_slots = 64;
  // One-way inter-node hop, charged on replication sends, on responses, and
  // on each failed attempt's refusal round trip (2x).
  uint64_t net_latency_cycles = 500;
  // Router-side health tracking: a node is marked unhealthy after this many
  // CONSECUTIVE retry-after/refused results, and is then only probed again
  // after a capped exponential backoff (base << excess-failures, <= cap).
  uint32_t unhealthy_after = 2;
  uint64_t failover_backoff_base_cycles = 2000;
  uint64_t failover_backoff_cap_cycles = 64000;
  // A request is abandoned (recorded as failed, never silently dropped)
  // after this many full passes over its replica set.
  uint32_t max_attempts = 8;
  // Logical open-loop clients multiplexed over the ycsb.threads driver
  // threads (0 = one per driver). Each sends ycsb.ops_per_thread requests.
  uint32_t logical_clients = 0;

  // Measurement settle window: responses to requests submitted within the
  // first `settle_cycles` of a run are served normally and counted in the
  // op totals, but excluded from the latency meter. A run starts with a
  // deterministic queueing transient (the first requests miss everywhere,
  // their long service times build a backlog that drains over many
  // arrival intervals); percentiles over the whole run measure that
  // transient, not steady-state serving. 0 = measure everything.
  uint64_t settle_cycles = 0;

  // Returns "" when usable, else a description of the first problem.
  std::string Validate() const {
    const std::string ycsb_error = ycsb.Validate();
    if (!ycsb_error.empty()) {
      return ycsb_error;
    }
    if (num_shards == 0) {
      return "num_shards must be > 0";
    }
    if (num_shards + ycsb.threads > 255) {
      return "num_shards + clients must fit the machine's core-id space";
    }
    if (queue_slots == 0 || (queue_slots & (queue_slots - 1)) != 0) {
      return "queue_slots must be a power of two";
    }
    if (response_slots == 0 || (response_slots & (response_slots - 1)) != 0) {
      return "response_slots must be a power of two";
    }
    if (batch_max == 0) {
      return "batch_max must be > 0";
    }
    if (governed) {
      const std::string governor_error = governor.Validate();
      if (!governor_error.empty()) {
        return "governor: " + governor_error;
      }
    }
    if (monitored) {
      if (!governed) {
        return "monitored requires governed (the monitor advises the "
               "governor's kMonitored mode)";
      }
      const std::string monitor_error = monitor.Validate();
      if (!monitor_error.empty()) {
        return "monitor: " + monitor_error;
      }
    }
    if (open_loop) {
      if (open_loop_interval == 0) {
        return "open_loop_interval must be > 0";
      }
      if (max_inflight == 0 || max_inflight > response_slots) {
        return "max_inflight must be in [1, response_slots] (a shard worker "
               "blocks on a full response queue)";
      }
    }
    if (cluster_nodes > 1) {
      if (!open_loop) {
        return "cluster serving is open-loop only: set open_loop";
      }
      if (ycsb.workload == YcsbWorkload::kD) {
        return "cluster serving does not support workload D (the latest-key "
               "distribution couples clients through one shared counter)";
      }
      if (replication_factor == 0 || replication_factor > cluster_nodes) {
        return "replication_factor must be in [1, cluster_nodes]";
      }
      if (replication_factor > 8) {
        return "replication_factor must be <= 8 (router placement buffer)";
      }
      if (virtual_nodes == 0 || (virtual_nodes & (virtual_nodes - 1)) != 0) {
        return "virtual_nodes must be a power of two";
      }
      if (repl_queue_slots == 0 ||
          (repl_queue_slots & (repl_queue_slots - 1)) != 0) {
        return "repl_queue_slots must be a power of two";
      }
      if (failover_backoff_cap_cycles == 0 ||
          failover_backoff_cap_cycles < failover_backoff_base_cycles) {
        return "failover_backoff_cap_cycles must be nonzero and >= the base";
      }
      if (unhealthy_after == 0) {
        return "unhealthy_after must be > 0";
      }
      if (max_attempts == 0) {
        return "max_attempts must be > 0";
      }
      // Per node machine: num_shards workers + one repl-ingress core per
      // (peer, shard) channel + one core per driver thread.
      const uint64_t cores_per_node =
          static_cast<uint64_t>(num_shards) * cluster_nodes + ycsb.threads;
      if (cores_per_node > 255) {
        return "cluster core budget: shards * nodes + drivers must fit the "
               "per-machine core-id space";
      }
    }
    return "";
  }
};

}  // namespace prestore

#endif  // SRC_SERVE_SERVE_CONFIG_H_
