#include "src/serve/cluster.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "src/kv/kvstore.h"
#include "src/robust/governor.h"
#include "src/sim/harness.h"

namespace prestore {

namespace {

// SplitMix64 finalizer: the ring-point and key hash for placement. Distinct
// from FnvHash64 (the shard router within a node) on purpose — shard choice
// and node choice must not be correlated, or one node's shard 0 would
// receive every placement's shard-0 keys.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------- router

ShardRouter::ShardRouter(uint32_t nodes, uint32_t virtual_nodes,
                         uint32_t replication, uint64_t seed)
    : nodes_(nodes), replication_(replication) {
  ring_.reserve(static_cast<size_t>(nodes) * virtual_nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint32_t v = 0; v < virtual_nodes; ++v) {
      const uint64_t pos =
          Mix64(seed ^ (static_cast<uint64_t>(n) * 0x100000001b3ULL + v));
      ring_.push_back(Point{pos, n});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.pos != b.pos ? a.pos < b.pos : a.node < b.node;
  });
}

void ShardRouter::Placement(uint64_t key, uint32_t* out) const {
  const uint64_t h = Mix64(key);
  // First ring point clockwise of the key's hash.
  size_t i = std::lower_bound(ring_.begin(), ring_.end(), h,
                              [](const Point& p, uint64_t v) {
                                return p.pos < v;
                              }) -
             ring_.begin();
  uint32_t found = 0;
  for (size_t step = 0; step < ring_.size() && found < replication_; ++step) {
    const uint32_t n = ring_[(i + step) % ring_.size()].node;
    bool seen = false;
    for (uint32_t k = 0; k < found; ++k) {
      seen |= out[k] == n;
    }
    if (!seen) {
      out[found++] = n;
    }
  }
  // replication_ <= nodes_ (validated), so the walk always finds enough.
}

uint32_t ShardRouter::Primary(uint64_t key) const {
  uint32_t out[8];
  Placement(key, out);
  return out[0];
}

// ------------------------------------------------------- cluster internals

// One replication channel: an inbox on the RECEIVER's machine, written
// through a dedicated ingress core of that machine. The ingress core is
// owned by the sender's (node, shard) worker host thread — one host thread
// per simulated core, as everywhere else in the simulator.
struct KvCluster::ReplChannel {
  std::unique_ptr<X9Inbox> inbox;
  uint32_t ingress_core = 0;
};

struct KvCluster::NodeShard {
  std::unique_ptr<KvStore> store;
  std::unique_ptr<X9Inbox> requests;  // admission queue
  std::unique_ptr<ValueArena> arena;

  // Hinted handoff: replica writes buffered while the peer drains, keyed by
  // peer node, replayed over the normal channel once the peer rejoins.
  struct HintQueue {
    std::vector<RequestMsg> msgs;
    uint64_t replay_at = 0;  // run-relative rejoin cycle
  };
  std::vector<HintQueue> hints;  // indexed by peer node id

  // Single-writer counters (the shard's worker host thread).
  uint64_t served = 0;
  uint64_t nacks = 0;
  uint64_t batches = 0;
  uint64_t applied_repl = 0;
  uint64_t repl_skipped_dead = 0;
  uint64_t hints_stored = 0;
  uint64_t hints_replayed = 0;
  uint64_t hints_dropped = 0;

  // Every write token applied on this (node, shard) — coordinator serves
  // and replica applies alike. Host-side, for the post-run zero-loss check.
  std::vector<uint64_t> applied;
};

struct KvCluster::Node {
  std::unique_ptr<Machine> machine;
  std::vector<NodeShard> shards;
  std::vector<std::unique_ptr<X9Inbox>> responses;  // one per driver
  std::unique_ptr<PrestoreGovernor> governor;
  FuncToken craft_func;
  FuncToken serve_func;
  FuncToken sweep_func;
  FuncToken repl_func;
};

KvCluster::KvCluster(const ServeConfig& config,
                     std::vector<MachineConfig> node_configs,
                     FaultInjector* injector)
    : config_(config),
      router_(config.cluster_nodes, config.virtual_nodes,
              config.replication_factor, config.ring_seed),
      injector_(injector) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("ServeConfig: " + error);
  }
  if (config_.cluster_nodes < 2) {
    throw std::invalid_argument("KvCluster: cluster_nodes must be >= 2");
  }
  if (node_configs.size() != config_.cluster_nodes) {
    throw std::invalid_argument(
        "KvCluster: need one MachineConfig per cluster node");
  }
  const uint32_t nnodes = config_.cluster_nodes;
  const uint32_t nshards = config_.num_shards;
  const uint32_t ndrivers = config_.ycsb.threads;
  // Core map per node machine: [0, S) shard workers, [S, S + D) driver
  // cores, [S + D, S + D + (N - 1) * S) replication-ingress cores.
  const uint32_t cores_per_node = nshards * nnodes + ndrivers;
  const uint64_t keys_per_shard = config_.ycsb.num_keys / nshards + 1;

  for (uint32_t n = 0; n < nnodes; ++n) {
    MachineConfig mc = node_configs[n];
    mc.num_cores = cores_per_node;
    auto node = std::make_unique<Node>();
    node->machine = std::make_unique<Machine>(mc);
    Machine& m = *node->machine;
    node->craft_func = FuncToken{m.registry().Intern("clusterCraftValue",
                                                     "cluster.cc")};
    node->serve_func = FuncToken{m.registry().Intern("clusterShardWorker",
                                                     "cluster.cc")};
    node->sweep_func = FuncToken{m.registry().Intern("clusterBatchSweep",
                                                     "cluster.cc")};
    node->repl_func = FuncToken{m.registry().Intern("clusterReplApply",
                                                    "cluster.cc")};
    node->shards.resize(nshards);
    for (uint32_t s = 0; s < nshards; ++s) {
      NodeShard& shard = node->shards[s];
      shard.store = MakeServeStore(m, config_.index, keys_per_shard);
      shard.requests = std::make_unique<X9Inbox>(
          m, config_.queue_slots, sizeof(RequestMsg), Region::kDram);
      shard.arena = MakeShardArena(m, config_, s);
      shard.hints.resize(nnodes);
    }
    for (uint32_t d = 0; d < ndrivers; ++d) {
      node->responses.push_back(std::make_unique<X9Inbox>(
          m, config_.response_slots, sizeof(ResponseMsg), Region::kDram));
    }
    if (config_.governed) {
      node->governor = std::make_unique<PrestoreGovernor>(m, config_.governor);
      node->governor->Attach();
    }
    nodes_.push_back(std::move(node));
  }

  // channels_[from][to][shard]: built after every machine exists. The
  // ingress-core slot for sender `from` on receiver `to` skips `to` itself,
  // so N - 1 peer slots cover every sender.
  channels_.resize(nnodes);
  for (uint32_t from = 0; from < nnodes; ++from) {
    channels_[from].resize(nnodes);
    for (uint32_t to = 0; to < nnodes; ++to) {
      if (from == to) {
        continue;
      }
      const uint32_t peer_slot = from < to ? from : from - 1;
      for (uint32_t s = 0; s < nshards; ++s) {
        auto ch = std::make_unique<ReplChannel>();
        ch->inbox = std::make_unique<X9Inbox>(
            *nodes_[to]->machine, config_.repl_queue_slots,
            sizeof(RequestMsg), Region::kDram);
        ch->ingress_core = nshards + ndrivers + peer_slot * nshards + s;
        channels_[from][to].push_back(std::move(ch));
      }
    }
  }
}

KvCluster::~KvCluster() = default;

Machine& KvCluster::machine(uint32_t node) { return *nodes_[node]->machine; }

KvStore& KvCluster::store(uint32_t node, uint32_t shard) {
  return *nodes_[node]->shards[shard].store;
}

Core& KvCluster::driver_core(uint32_t driver, uint32_t node) {
  return nodes_[node]->machine->core(config_.num_shards + driver);
}

void KvCluster::Preload() {
  if (preloaded_) {
    return;
  }
  preloaded_ = true;
  const uint32_t vs = config_.ycsb.value_size;
  // Each node loads the keys its replica set covers — dedicated value slots
  // (as in the single-machine preload), one loader core per shard.
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    Machine& m = *nodes_[n]->machine;
    RunParallel(m, num_shards(), [&](Core& core, uint32_t s) {
      uint32_t placement[8];
      for (uint64_t key = 1; key <= config_.ycsb.num_keys; ++key) {
        if (ShardFor(key) != s) {
          continue;
        }
        router_.Placement(key, placement);
        bool mine = false;
        for (uint32_t r = 0; r < router_.replication(); ++r) {
          mine |= placement[r] == n;
        }
        if (!mine) {
          continue;
        }
        const SimAddr slot = m.Alloc(vs, Region::kTarget);
        CraftValue(core, nodes_[n]->craft_func, slot, vs, key,
                   KvWritePolicy::kBaseline);
        nodes_[n]->shards[s].store->Put(core, key, slot);
      }
    });
  }
}

void KvCluster::BeginRun(uint64_t origin) {
  origin_ = origin;
  drivers_done_.store(false, std::memory_order_release);
  workers_send_done_.store(0, std::memory_order_release);
  applied_built_ = false;
  applied_sets_.clear();
  for (auto& node : nodes_) {
    // Every core of every machine starts the run at the shared origin, so
    // run-relative times mean the same thing cluster-wide.
    for (uint32_t c = 0; c < node->machine->num_cores(); ++c) {
      Core& core = node->machine->core(c);
      if (core.now() < origin) {
        core.Execute(origin - core.now());
      }
    }
    for (NodeShard& shard : node->shards) {
      shard.served = shard.nacks = shard.batches = 0;
      shard.applied_repl = shard.repl_skipped_dead = 0;
      shard.hints_stored = shard.hints_replayed = shard.hints_dropped = 0;
      shard.applied.clear();
      for (NodeShard::HintQueue& hq : shard.hints) {
        hq.msgs.clear();
        hq.replay_at = 0;
      }
    }
  }
}

void KvCluster::DriversDone() {
  drivers_done_.store(true, std::memory_order_release);
}

// ---------------------------------------------------------- client side

SubmitStatus KvCluster::TrySubmit(uint32_t driver, uint32_t node,
                                  const RequestMsg& req) {
  // The attempt was DECIDED one net hop before it arrives. Both refusal
  // checks key on deterministic schedule-derived times — never on a host
  // clock — which is what makes request outcomes replayable.
  const uint64_t decision = req.not_before >= config_.net_latency_cycles
                                ? req.not_before - config_.net_latency_cycles
                                : 0;
  if (injector_ != nullptr) {
    const uint64_t at = RelTime(decision);
    if (injector_->NodeKilled(node, at)) {
      injector_->RecordNodeRejection(driver, FaultKind::kNodeKill, node, at);
      return SubmitStatus::kRefused;
    }
    if (injector_->NodeDraining(node, at)) {
      injector_->RecordNodeRejection(driver, FaultKind::kNodeDrain, node, at);
      return SubmitStatus::kRefused;
    }
  }
  NodeShard& shard = nodes_[node]->shards[ShardFor(req.key)];
  return shard.requests->TryWrite(driver_core(driver, node), &req,
                                  MsgPrestore::kOff)
             ? SubmitStatus::kOk
             : SubmitStatus::kRetryAfter;
}

bool KvCluster::HasResponse(uint32_t node, uint32_t driver) {
  return nodes_[node]->responses[driver]->Peek();
}

bool KvCluster::TryGetResponse(uint32_t node, uint32_t driver,
                               ResponseMsg* out) {
  return nodes_[node]->responses[driver]->TryRead(driver_core(driver, node),
                                                  out);
}

// ---------------------------------------------------------- server side

void KvCluster::DrainRepl(Core& core, uint32_t node, uint32_t shard,
                          std::vector<SimAddr>* touched, bool* progress) {
  RequestMsg rec;
  for (uint32_t from = 0; from < num_nodes(); ++from) {
    if (from == node) {
      continue;
    }
    X9Inbox& in = *channels_[from][node][shard]->inbox;
    while (in.Peek() && in.TryRead(core, &rec)) {
      ApplyRepl(core, node, shard, rec, touched);
      *progress = true;
    }
  }
}

void KvCluster::ApplyRepl(Core& core, uint32_t node, uint32_t shard,
                          const RequestMsg& rec,
                          std::vector<SimAddr>* touched) {
  Node& nd = *nodes_[node];
  NodeShard& sh = nd.shards[shard];
  ScopedFunction f(core, nd.repl_func);
  if (rec.not_before > core.now()) {
    core.Execute(rec.not_before - core.now());
  }
  // Values are key-derived, so the replica re-crafts the payload locally —
  // the channel carries the record, not the bytes. A replayed hint can land
  // after a newer write of the same key and overwrite it; the bytes are
  // identical (key-derived), so reads stay correct — a real store would
  // version the records.
  const SimAddr slot = sh.arena->NextSlot();
  CraftValue(core, nd.craft_func, slot, config_.ycsb.value_size, rec.key,
             KvWritePolicy::kBaseline);
  sh.store->Put(core, rec.key, slot);
  touched->push_back(slot);
  sh.applied.push_back(Token(rec.client, rec.seq));
  ++sh.applied_repl;
}

void KvCluster::SendRepl(Core& core, uint32_t from, uint32_t to,
                         uint32_t shard, const RequestMsg& rec,
                         std::vector<SimAddr>* touched) {
  ReplChannel& ch = *channels_[from][to][shard];
  Core& ingress = nodes_[to]->machine->core(ch.ingress_core);
  while (!ch.inbox->TryWrite(ingress, &rec, MsgPrestore::kDemote)) {
    // The receiver's worker may itself be blocked sending to US — a cycle
    // of full rings. A blocked sender keeps consuming its own incoming
    // channels, so some worker in any cycle always drains and the ring
    // frees up.
    bool progress = false;
    DrainRepl(core, from, shard, touched, &progress);
    if (!progress) {
      std::this_thread::yield();
    }
  }
}

void KvCluster::Replicate(Core& core, uint32_t node, uint32_t shard,
                          const RequestMsg& req,
                          std::vector<SimAddr>* touched) {
  NodeShard& sh = nodes_[node]->shards[shard];
  uint32_t placement[8];
  router_.Placement(req.key, placement);
  RequestMsg rec = req;
  rec.not_before = core.now() + config_.net_latency_cycles;
  const uint64_t at = RelTime(core.now());
  for (uint32_t r = 0; r < router_.replication(); ++r) {
    const uint32_t peer = placement[r];
    if (peer == node) {
      continue;
    }
    if (injector_ != nullptr && injector_->NodeKilled(peer, at)) {
      // The write stays under-replicated; durability rests on the replicas
      // that did accept it (zero-loss needs R >= 2 under a single fault).
      ++sh.repl_skipped_dead;
      continue;
    }
    if (injector_ != nullptr && injector_->NodeDraining(peer, at)) {
      NodeShard::HintQueue& hq = sh.hints[peer];
      hq.replay_at =
          std::max(hq.replay_at, injector_->DrainEndAfter(peer, at));
      hq.msgs.push_back(rec);
      ++sh.hints_stored;
      continue;
    }
    SendRepl(core, node, peer, shard, rec, touched);
  }
}

void KvCluster::ReplayHints(Core& core, uint32_t node, uint32_t shard,
                            bool* progress, bool* unresolved,
                            uint64_t* next_replay,
                            std::vector<SimAddr>* touched) {
  NodeShard& sh = nodes_[node]->shards[shard];
  const uint64_t now_rel = RelTime(core.now());
  for (uint32_t peer = 0; peer < num_nodes(); ++peer) {
    NodeShard::HintQueue& hq = sh.hints[peer];
    if (hq.msgs.empty()) {
      continue;
    }
    if (injector_ != nullptr && injector_->NodeKilled(peer, hq.replay_at)) {
      // The peer died before rejoining; its hints can never be delivered.
      sh.hints_dropped += hq.msgs.size();
      hq.msgs.clear();
      *progress = true;
      continue;
    }
    if (now_rel < hq.replay_at) {
      // Not yet rejoined on this worker's clock. The worker leaps its idle
      // clock toward replay_at once the drivers are done (see WorkerLoop).
      *unresolved = true;
      *next_replay = std::min(*next_replay, hq.replay_at);
      continue;
    }
    for (RequestMsg rec : hq.msgs) {
      rec.not_before = core.now() + config_.net_latency_cycles;
      SendRepl(core, node, peer, shard, rec, touched);
      ++sh.hints_replayed;
    }
    hq.msgs.clear();
    *progress = true;
  }
}

void KvCluster::Respond(Core& core, uint32_t node, const ResponseMsg& resp) {
  const uint32_t driver =
      static_cast<uint32_t>(resp.client % config_.ycsb.threads);
  X9Inbox& out = *nodes_[node]->responses[driver];
  // Transiently full is fine (the driver keeps draining); the wait is
  // host-side so a blocked worker's clock doesn't inflate later requests.
  while (!out.TryWrite(core, &resp, config_.response_prestore)) {
    while (!out.CanWrite()) {
      std::this_thread::yield();
    }
  }
}

void KvCluster::ServeOne(Core& core, uint32_t node, uint32_t shard,
                         const RequestMsg& r, std::vector<SimAddr>* touched) {
  Node& nd = *nodes_[node];
  NodeShard& sh = nd.shards[shard];
  ScopedFunction f(core, nd.serve_func);
  // Causality: service starts no earlier than the attempt's arrival.
  const uint64_t floor = std::max(r.submit_time, r.not_before);
  if (floor > core.now()) {
    core.Execute(floor - core.now());
  }
  ResponseMsg resp;
  resp.op = r.op;
  resp.client = r.client;
  resp.seq = r.seq;
  resp.submit_time = r.submit_time;
  if (injector_ != nullptr) {
    // NACK by the attempt's ARRIVAL time, not this worker's clock: a
    // request that arrived before the fault is served even if the worker
    // gets to it later (queued work completes), and one that arrived after
    // is refused no matter how idle the worker was — pure in deterministic
    // times, so outcomes replay.
    const uint64_t at = RelTime(r.not_before);
    if (injector_->NodeKilled(node, at) || injector_->NodeDraining(node, at)) {
      resp.status = kStatusRetryAfter;
      resp.completion_time = core.now();
      ++sh.nacks;
      Respond(core, node, resp);
      return;
    }
    const uint64_t extra = injector_->NodeDegradeCycles(node,
                                                        RelTime(core.now()));
    if (extra != 0) {
      core.Execute(extra);  // throttled node: surcharge per request served
    }
  }
  if (static_cast<ServeOp>(r.op) == ServeOp::kGet) {
    const SimAddr value = sh.store->Get(core, r.key);
    resp.status = value != 0 ? kStatusOk : kStatusMiss;
    resp.value_addr = value;
  } else {
    const SimAddr slot = sh.arena->NextSlot();
    CraftValue(core, nd.craft_func, slot, config_.ycsb.value_size, r.key,
               KvWritePolicy::kBaseline);
    sh.store->Put(core, r.key, slot);
    touched->push_back(slot);
    sh.applied.push_back(Token(r.client, r.seq));
    resp.status = kStatusOk;
    resp.value_addr = slot;
    // Semi-synchronous replication: the write is on every live replica's
    // timeline (applied here, enqueued to the peers) BEFORE the ack leaves,
    // so an acked write survives this node's later death.
    Replicate(core, node, shard, r, touched);
  }
  resp.completion_time = core.now();
  ++sh.served;
  Respond(core, node, resp);
}

void KvCluster::WorkerLoop(uint32_t node, uint32_t shard) {
  Node& nd = *nodes_[node];
  NodeShard& sh = nd.shards[shard];
  Core& core = nd.machine->core(shard);
  const uint32_t total_workers = num_nodes() * num_shards();
  std::vector<RequestMsg> batch;
  std::vector<SimAddr> touched;
  batch.reserve(config_.batch_max);
  touched.reserve(config_.batch_max * 2);
  bool send_done = false;
  RequestMsg req;
  while (true) {
    bool progress = false;
    touched.clear();
    // 1) Apply replica writes first: they carry no client waiting on them,
    // but holding them starves the peers' send rings.
    DrainRepl(core, node, shard, &touched, &progress);

    // 2) Admission batch — the KvServer loop, plus NACKs and replication.
    if (sh.requests->Peek() && sh.requests->TryRead(core, &req)) {
      progress = true;
      batch.clear();
      batch.push_back(req);
      const uint64_t base = std::max(req.submit_time, req.not_before);
      if (base > core.now()) {
        core.Execute(base - core.now());
      }
      const uint64_t opened = core.now();
      while (batch.size() < config_.batch_max) {
        if (sh.requests->Peek() && sh.requests->TryRead(core, &req)) {
          batch.push_back(req);
          continue;
        }
        if (core.now() - opened >= config_.batch_window_cycles) {
          break;
        }
        core.Execute(24);
      }
      for (const RequestMsg& r : batch) {
        ServeOne(core, node, shard, r, &touched);
      }
      ++sh.batches;
    }

    // 3) Hinted handoff toward rejoined peers.
    bool unresolved = false;
    uint64_t next_replay = UINT64_MAX;
    ReplayHints(core, node, shard, &progress, &unresolved, &next_replay,
                &touched);

    // 4) Close the iteration with one clean sweep over everything it
    // dirtied — coordinator writes and replica applies alike (§7.2.3's
    // batched clean, kept alive on every replica).
    if (config_.batched_clean && !touched.empty()) {
      ScopedFunction f(core, nd.sweep_func);
      for (const SimAddr slot : touched) {
        core.Prestore(slot, config_.ycsb.value_size, PrestoreOp::kClean);
      }
    }
    if (progress) {
      continue;
    }

    // Idle. Same host-time-only discipline as the single-machine worker —
    // EXCEPT when only a future hint replay remains: a demand-driven clock
    // would never reach the rejoin time on its own, so leap toward it in
    // bounded chunks once no more client work can arrive.
    if (drivers_done_.load(std::memory_order_acquire) &&
        !sh.requests->Peek()) {
      if (unresolved) {
        const uint64_t target = origin_ + next_replay;
        if (core.now() < target) {
          core.Execute(std::min<uint64_t>(target - core.now(), 1u << 16));
        }
        continue;
      }
      if (!send_done) {
        send_done = true;
        workers_send_done_.fetch_add(1, std::memory_order_acq_rel);
      }
      if (workers_send_done_.load(std::memory_order_acquire) ==
          total_workers) {
        // No sender will produce again; drain until every incoming channel
        // is quiesced (a straggler may publish one message after our last
        // Peek — the X9 Close contract's reasoning applies here too).
        bool quiesced = true;
        for (uint32_t from = 0; from < num_nodes(); ++from) {
          if (from != node) {
            quiesced &= channels_[from][node][shard]->inbox->Quiesced();
          }
        }
        if (quiesced) {
          break;
        }
      }
    }
    std::this_thread::yield();
  }
}

// ------------------------------------------------------------- inspection

std::vector<NodeReport> KvCluster::NodeReports() const {
  std::vector<NodeReport> out;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    const Node& nd = *nodes_[n];
    NodeReport rep;
    rep.node = n;
    rep.machine_name = nd.machine->config().name;
    rep.killed = NodeEverKilled(n);
    rep.drained = NodeEverDrained(n);
    for (const NodeShard& sh : nd.shards) {
      rep.served += sh.served;
      rep.nacks += sh.nacks;
      rep.batches += sh.batches;
      rep.applied_replications += sh.applied_repl;
      rep.repl_skipped_dead += sh.repl_skipped_dead;
      rep.hints_stored += sh.hints_stored;
      rep.hints_replayed += sh.hints_replayed;
      rep.hints_dropped += sh.hints_dropped;
    }
    rep.write_amplification =
        nd.machine->target().Stats().WriteAmplification();
    if (nd.governor != nullptr) {
      std::vector<const ValueArena*> arenas;
      arenas.reserve(nd.shards.size());
      for (const NodeShard& sh : nd.shards) {
        arenas.push_back(sh.arena.get());
      }
      rep.shard_policies = CollectShardPolicies(nd.governor.get(), arenas);
    }
    out.push_back(std::move(rep));
  }
  return out;
}

void KvCluster::BuildAppliedSets() const {
  if (applied_built_) {
    return;
  }
  applied_built_ = true;
  applied_sets_.resize(num_nodes());
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    for (const NodeShard& sh : nodes_[n]->shards) {
      applied_sets_[n].insert(sh.applied.begin(), sh.applied.end());
    }
  }
}

bool KvCluster::AppliedOn(uint32_t node, uint64_t token) const {
  BuildAppliedSets();
  return applied_sets_[node].count(token) != 0;
}

bool KvCluster::AppliedOnLiveNode(uint64_t token) const {
  BuildAppliedSets();
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (!NodeEverKilled(n) && applied_sets_[n].count(token) != 0) {
      return true;
    }
  }
  return false;
}

bool KvCluster::NodeEverKilled(uint32_t node) const {
  return injector_ != nullptr && injector_->NodeKilled(node, UINT64_MAX);
}

bool KvCluster::NodeEverDrained(uint32_t node) const {
  if (injector_ == nullptr) {
    return false;
  }
  for (const FaultWindow& w : injector_->schedule()) {
    if (w.kind == FaultKind::kNodeDrain && w.node == node) {
      return true;
    }
  }
  return false;
}

}  // namespace prestore
