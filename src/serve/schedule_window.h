// Conservative peer-skew window for open-loop load generators.
//
// Open-loop clients are host threads free-running through simulated arrival
// schedules; without a brake, host scheduling noise lets one client race
// hundreds of intervals ahead of a descheduled peer, the shard workers'
// clocks follow the leader, and the straggler's requests are then measured
// late by the full divergence. The classic fix is the conservative-window
// rule of parallel discrete-event simulation: nobody's schedule may run
// more than a bounded horizon ahead of the slowest peer's.
//
// The original ScheduleBoard kept one atomic position per client and took
// an O(clients) min over all of them per send — fine for a handful of
// client cores, hopeless for the cluster's thousands of multiplexed
// logical clients. This generalization quantizes positions into
// window-sized buckets: a ring of occupancy counts, a monotonic min-bucket
// cursor advanced by CAS over emptied buckets, and O(1) amortized work per
// advance. The quantized minimum is a lower bound on the true minimum, so
// the gate is strictly MORE conservative than the exact scan — holds are
// host-time only and simulated results are unchanged.
//
// Thread contract: Advance(c, ...) has a single writer per client (the
// host thread driving that client); MayFire may be called from any thread.
#ifndef SRC_SERVE_SCHEDULE_WINDOW_H_
#define SRC_SERVE_SCHEDULE_WINDOW_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

namespace prestore {

class ScheduleWindow {
 public:
  // `window_cycles` is the bucket width (one arrival interval); a client
  // may fire while its position is within `horizon_windows` buckets of the
  // slowest peer's. `start` registers every client at the run's base time,
  // so clients that have not reached their first Advance hold the rest
  // near the start — the start barrier the board's zero-init provided.
  ScheduleWindow(uint32_t clients, uint64_t window_cycles,
                 uint64_t horizon_windows, uint64_t start)
      : window_(std::max<uint64_t>(1, window_cycles)),
        horizon_(std::max<uint64_t>(1, horizon_windows)),
        ring_(std::bit_ceil(horizon_ + 4)),
        mask_(ring_ - 1),
        counts_(new std::atomic<uint64_t>[ring_]),
        bucket_(clients, start / window_),
        alive_(clients),
        min_bucket_(start / window_) {
    for (uint64_t i = 0; i < ring_; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    counts_[(start / window_) & mask_].store(clients,
                                             std::memory_order_relaxed);
  }

  // Publishes client `c`'s new schedule position (its next unfired send;
  // UINT64_MAX once the client has sent its last request). Positions must
  // be nondecreasing per client. Increment-before-decrement keeps the
  // client counted in SOME bucket <= its position throughout the move, so
  // a concurrent min scan can never overshoot a live client.
  void Advance(uint32_t c, uint64_t next_send) {
    const uint64_t nb =
        next_send == UINT64_MAX ? UINT64_MAX : next_send / window_;
    const uint64_t ob = bucket_[c];
    if (nb == ob) {
      return;
    }
    if (nb == UINT64_MAX) {
      alive_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      counts_[nb & mask_].fetch_add(1, std::memory_order_acq_rel);
    }
    counts_[ob & mask_].fetch_sub(1, std::memory_order_acq_rel);
    bucket_[c] = nb;
  }

  // May a client whose next scheduled send is `next_send` fire now, or must
  // it hold (in host time) for stragglers? The horizon admits one bucket of
  // slack for the quantization itself.
  bool MayFire(uint64_t next_send) {
    return next_send / window_ <= CurrentMin() + horizon_;
  }

  uint64_t window_cycles() const { return window_; }

 private:
  // The slowest live client's bucket (a lower bound: the cursor lags moves
  // by at most the in-flight transitions). Advances over drained buckets by
  // CAS so concurrent scanners share the work; stops at the first occupied
  // bucket or when no client is live.
  uint64_t CurrentMin() {
    uint64_t m = min_bucket_.load(std::memory_order_acquire);
    while (alive_.load(std::memory_order_acquire) > 0 &&
           counts_[m & mask_].load(std::memory_order_acquire) == 0) {
      uint64_t expected = m;
      min_bucket_.compare_exchange_weak(expected, m + 1,
                                        std::memory_order_acq_rel);
      m = min_bucket_.load(std::memory_order_acquire);
    }
    return m;
  }

  const uint64_t window_;
  const uint64_t horizon_;
  const uint64_t ring_;
  const uint64_t mask_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::vector<uint64_t> bucket_;  // per client; single writer each
  std::atomic<uint64_t> alive_;
  std::atomic<uint64_t> min_bucket_;
};

}  // namespace prestore

#endif  // SRC_SERVE_SCHEDULE_WINDOW_H_
