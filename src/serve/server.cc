#include "src/serve/server.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <thread>

#include "src/kv/clht.h"
#include "src/kv/masstree.h"
#include "src/sim/harness.h"

namespace prestore {

std::unique_ptr<KvStore> MakeServeStore(Machine& machine, ServeIndex index,
                                        uint64_t keys_per_shard) {
  if (index == ServeIndex::kMasstree) {
    return std::make_unique<Masstree>(machine);
  }
  // CLHT: ~2 keys per 3-slot bucket keeps chains short.
  const uint64_t buckets =
      std::bit_ceil(std::max<uint64_t>(64, keys_per_shard / 2));
  return std::make_unique<ClhtMap>(machine, buckets);
}

std::unique_ptr<ValueArena> MakeShardArena(Machine& machine,
                                           const ServeConfig& config,
                                           uint32_t shard) {
  // Arena regions must belong to exactly one shard for the governor's
  // per-region backoff to act per shard: pad each arena's allocation to
  // whole regions (nothing else in a region ever receives clean hints, so
  // co-residents can't pollute the telemetry). Region-aligned bases are all
  // congruent modulo the target's DIMM-interleave period, though, and the
  // shard workers advance their arena cursors at similar rates — without a
  // per-shard phase stagger every worker writes to the same DIMM at the
  // same time, and the resulting one-DIMM hotspot queues the whole server
  // into a backlog the open-loop load never lets drain.
  const uint64_t arena_align =
      config.governed ? 1ULL << config.governor.region_shift : 0;
  const uint64_t interleave_period =
      static_cast<uint64_t>(machine.config().target.interleave_bytes) *
      std::max(1u, machine.config().target.interleave_dimms);
  const uint64_t arena_phase =
      arena_align != 0
          ? shard * machine.config().target.interleave_bytes %
                std::min<uint64_t>(interleave_period, arena_align)
          : 0;
  return std::make_unique<ValueArena>(machine, config.ycsb.arena_slots,
                                      config.ycsb.value_size, arena_align,
                                      arena_phase);
}

std::vector<ShardPolicy> CollectShardPolicies(
    const PrestoreGovernor* governor,
    const std::vector<const ValueArena*>& arenas) {
  std::vector<ShardPolicy> out;
  if (governor == nullptr) {
    return out;
  }
  const PrestoreGovernor::Snapshot snap = governor->TakeSnapshot();
  out.reserve(arenas.size());
  for (uint32_t s = 0; s < arenas.size(); ++s) {
    const SimAddr base = arenas[s]->span_base();
    const SimAddr end = arenas[s]->base() + arenas[s]->bytes();
    ShardPolicy policy;
    policy.shard = s;
    for (const PrestoreGovernor::RegionSnapshot& region : snap.regions) {
      if (region.region_base < base || region.region_base >= end) {
        continue;
      }
      ++policy.regions;
      if (region.state == RegionBackoff::State::kBackoff) {
        ++policy.backed_off_regions;
      }
      policy.admitted += region.admitted;
      policy.suppressed += region.suppressed;
      policy.rewrites += region.rewrites;
      policy.useless += region.useless;
      policy.backoffs += region.backoffs;
      policy.reopens += region.reopens;
    }
    out.push_back(policy);
  }
  return out;
}

KvServer::KvServer(Machine& machine, const ServeConfig& config)
    : machine_(machine),
      config_(config),
      craft_func_{machine.registry().Intern("serveCraftValue", "server.cc")},
      serve_func_{machine.registry().Intern("serveShardWorker", "server.cc")},
      sweep_func_{machine.registry().Intern("serveBatchSweep", "server.cc")} {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("ServeConfig: " + error);
  }
  const uint64_t keys_per_shard =
      config_.ycsb.num_keys / config_.num_shards + 1;
  shards_.resize(config_.num_shards);
  for (uint32_t s = 0; s < config_.num_shards; ++s) {
    shards_[s].store = MakeServeStore(machine_, config_.index, keys_per_shard);
    shards_[s].requests = std::make_unique<X9Inbox>(
        machine_, config_.queue_slots, sizeof(RequestMsg), Region::kDram);
    shards_[s].arena = MakeShardArena(machine_, config_, s);
  }
  for (uint32_t c = 0; c < config_.ycsb.threads; ++c) {
    responses_.push_back(std::make_unique<X9Inbox>(
        machine_, config_.response_slots, sizeof(ResponseMsg),
        Region::kDram));
  }
  if (config_.governed) {
    if (config_.monitored) {
      // Monitored mode (DESIGN.md §13): the governor delegates per-region
      // verdicts to the adaptive monitor, which covers each shard's value
      // arena as its own monitored range — disjoint spans, so one monitor
      // is N per-shard monitors with a shared budget.
      config_.governor.policy = GovernorPolicy::kMonitored;
    }
    governor_ =
        std::make_unique<PrestoreGovernor>(machine_, config_.governor);
    if (config_.monitored) {
      monitor_ = std::make_unique<RegionMonitor>(machine_, config_.monitor);
      for (const Shard& shard : shards_) {
        monitor_->Monitor(shard.arena->span_base(),
                          shard.arena->base() + shard.arena->bytes());
      }
      governor_->SetRegionAdvisor(monitor_.get());
      monitor_->Attach();
    }
    governor_->Attach();
  }
}

void KvServer::Preload() {
  if (preloaded_) {
    return;
  }
  preloaded_ = true;
  const uint32_t vs = config_.ycsb.value_size;
  // One loader core per shard; each loads only its shard's keys so the
  // index structures are built by their owning worker (dedicated value
  // slots, as in YcsbLoad: the run phase's recycled arenas must never
  // overwrite still-live loaded values).
  RunParallel(machine_, config_.num_shards, [&](Core& core, uint32_t s) {
    for (uint64_t key = 1; key <= config_.ycsb.num_keys; ++key) {
      if (ShardFor(key) != s) {
        continue;
      }
      const SimAddr slot = machine_.Alloc(vs, Region::kTarget);
      CraftValue(core, craft_func_, slot, vs, key, KvWritePolicy::kBaseline);
      shards_[s].store->Put(core, key, slot);
    }
  });
}

bool KvServer::TrySubmit(Core& core, const RequestMsg& req) {
  return shards_[ShardFor(req.key)].requests->TryWrite(core, &req,
                                                       MsgPrestore::kOff);
}

bool KvServer::TryGetResponse(Core& core, uint32_t client, ResponseMsg* out) {
  return responses_[client]->TryRead(core, out);
}

void KvServer::BeginRun() {
  clients_done_.store(0, std::memory_order_release);
  for (Shard& shard : shards_) {
    shard.batches = 0;
  }
}

void KvServer::ClientDone() {
  clients_done_.fetch_add(1, std::memory_order_release);
}

void KvServer::SetWorkload(YcsbWorkload workload, uint32_t ops_per_thread) {
  config_.ycsb.workload = workload;
  if (ops_per_thread != 0) {
    config_.ycsb.ops_per_thread = ops_per_thread;
  }
}

void KvServer::ShardWorkerLoop(Core& core, uint32_t shard_idx) {
  Shard& shard = shards_[shard_idx];
  const uint32_t vs = config_.ycsb.value_size;
  const uint32_t nclients = num_clients();
  std::vector<RequestMsg> batch;
  std::vector<SimAddr> touched;
  batch.reserve(config_.batch_max);
  touched.reserve(config_.batch_max);
  RequestMsg req;
  while (true) {
    // The done flag is read BEFORE the failed probe: clients only call
    // ClientDone() after receiving every response, so all their requests
    // were consumed before the flag rose — a failed probe that follows an
    // observed "all done" means the queue is empty forever.
    const bool all_done =
        clients_done_.load(std::memory_order_acquire) == nclients;
    batch.clear();
    if (shard.requests->Peek() && shard.requests->TryRead(core, &req)) {
      batch.push_back(req);
    } else if (all_done) {
      break;
    } else {
      // Idle: wait in HOST time only (free Peek + yield). An idle worker's
      // clock must be demand-driven — it advances for work and for bounded
      // batch-window waits, never per poll: a failed TryRead costs real
      // cycles, and paying them once per host-scheduler iteration would
      // make service start times (and every latency derived from them)
      // measure the host's thread interleaving instead of the simulation.
      std::this_thread::yield();
      continue;
    }
    // The dequeued request sets the worker's time base: the server cannot
    // serve a request before the client sent it, and after an idle period
    // the stagnant clock would otherwise start the batch in the past.
    if (req.submit_time > core.now()) {
      core.Execute(req.submit_time - core.now());
    }
    // Batch window: keep admitting until full or the window closes. The
    // wait is Execute, not SpinPause: it is genuine, bounded sim-time
    // waiting, and SpinPause would leap the clock to the global maximum —
    // which open-loop clients (racing ahead on their arrival schedule)
    // hold far in this worker's future.
    const uint64_t opened = core.now();
    while (batch.size() < config_.batch_max) {
      if (shard.requests->Peek() && shard.requests->TryRead(core, &req)) {
        batch.push_back(req);
        continue;
      }
      if (core.now() - opened >= config_.batch_window_cycles) {
        break;
      }
      core.Execute(24);
    }

    touched.clear();
    for (const RequestMsg& r : batch) {
      ScopedFunction f(core, serve_func_);
      // Causality per request: a batch can admit a message that is host-
      // visible before the worker's clock reaches its submit time.
      if (r.submit_time > core.now()) {
        core.Execute(r.submit_time - core.now());
      }
      ResponseMsg resp;
      resp.op = r.op;
      resp.client = r.client;
      resp.seq = r.seq;
      resp.submit_time = r.submit_time;
      if (static_cast<ServeOp>(r.op) == ServeOp::kGet) {
        const SimAddr value = shard.store->Get(core, r.key);
        resp.status = value != 0 ? 1 : 0;
        resp.value_addr = value;
      } else {
        const SimAddr slot = shard.arena->NextSlot();
        CraftValue(core, craft_func_, slot, vs, r.key,
                   KvWritePolicy::kBaseline);
        shard.store->Put(core, r.key, slot);
        touched.push_back(slot);
        resp.status = 1;
        resp.value_addr = slot;
      }
      resp.completion_time = core.now();  // service done; reply in flight
      // The response ring can be transiently full (open loop at
      // max_inflight) or claimed by another shard answering the same
      // client; both resolve because clients keep draining. The wait is
      // host-side (CanWrite + yield): blocking on the client must not
      // inflate this worker's clock, which times every later completion.
      X9Inbox& out = *responses_[r.client];
      while (!out.TryWrite(core, &resp, config_.response_prestore)) {
        while (!out.CanWrite()) {
          std::this_thread::yield();
        }
      }
    }

    if (config_.batched_clean && !touched.empty()) {
      // Batch close: one clean sweep over the arena lines this batch
      // dirtied. Writebacks of whole crafted values coalesce here instead
      // of trickling out of the LLC one line at a time (§4.1 / §7.2.3).
      ScopedFunction f(core, sweep_func_);
      for (const SimAddr slot : touched) {
        // Scheme-gated sweep: a slot in a region the monitor has backed
        // off skips its Prestore call entirely (no issue cost, no hook
        // traffic), except the probes AdviseSweep leaks through so the
        // region can recover.
        if (monitor_ != nullptr &&
            monitor_->AdviseSweep(slot, vs) == HintFate::kDrop) {
          ++shard.sweeps_gated;
          continue;
        }
        core.Prestore(slot, vs, PrestoreOp::kClean);
      }
    }
    ++shard.batches;
  }
}

uint64_t KvServer::TotalBatches() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.batches;
  }
  return total;
}

uint64_t KvServer::TotalSweepsGated() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sweeps_gated;
  }
  return total;
}

std::vector<ShardPolicy> KvServer::ShardPolicies() const {
  std::vector<const ValueArena*> arenas;
  arenas.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    arenas.push_back(shard.arena.get());
  }
  return CollectShardPolicies(governor_.get(), arenas);
}

}  // namespace prestore
