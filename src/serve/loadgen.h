// Closed- and open-loop YCSB load generator for the KV server (§9).
#ifndef SRC_SERVE_LOADGEN_H_
#define SRC_SERVE_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "src/serve/latency_meter.h"
#include "src/serve/server.h"
#include "src/sim/machine.h"

namespace prestore {

struct ServeResult {
  uint64_t cycles = 0;
  uint64_t ops = 0;          // requests answered (gets + puts)
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t failed_gets = 0;  // GET misses (should be 0 after preload)
  uint64_t retries = 0;      // admission-queue-full backpressure events
  uint64_t batches = 0;      // shard batches executed
  double write_amplification = 1.0;  // target-device media/cpu write ratio
  // Shared-hierarchy counters over the measured serving window (aggregated
  // from the per-core stat stripes after the run).
  MachineStats hierarchy;
  LatencySummary get_latency;        // simulated cycles, client-observed
  LatencySummary put_latency;
  std::vector<ShardPolicy> shard_policies;  // empty when ungoverned

  double ThroughputPerMcycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops) * 1e6 /
                             static_cast<double>(cycles);
  }
  double BatchFill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(puts + gets) /
                              static_cast<double>(batches);
  }
};

// Runs one serving window: shard workers on cores [0, num_shards), clients
// on cores [num_shards, num_shards + threads). Preloads the server on first
// use, then measures the serving phase alone (stats reset after preload,
// FlushAll on both sides so media accounting covers all traffic).
//
// Client op mix reuses the YCSB distributions: zipfian (scrambled) keys,
// YcsbReadRatio(workload) read fraction. Closed loop runs kD's read-latest
// bias and kF's read-modify-write (a GET awaited before the PUT); the open
// loop issues kF writes as plain PUTs (an open-loop client cannot stall on
// the read half without perturbing its arrival process).
//
// Callable repeatedly on the same server (e.g. a misuse phase followed by a
// recovery phase against the same governed arenas).
ServeResult ServeYcsb(Machine& machine, KvServer& server);

}  // namespace prestore

#endif  // SRC_SERVE_LOADGEN_H_
