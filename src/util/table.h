// Fixed-width text table printer used by every benchmark harness so that
// regenerated paper tables/figures share one consistent format.
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace prestore {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Appends one row. Accepts any mix of string / integral / floating values.
  template <typename... Ts>
  void AddRow(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(Format(values)), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    PrintRow(os, headers_, widths);
    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) {
        sep += "+";
      }
    }
    os << sep << "\n";
    for (const auto& row : rows_) {
      PrintRow(os, row, widths);
    }
  }

  static std::string Format(const std::string& s) { return s; }
  static std::string Format(const char* s) { return s; }

  static std::string Format(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }

  template <typename T>
  static std::string Format(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

 private:
  static void PrintRow(std::ostream& os, const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
      if (c + 1 < row.size()) {
        os << "|";
      }
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prestore

#endif  // SRC_UTIL_TABLE_H_
