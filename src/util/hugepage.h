#ifndef SRC_UTIL_HUGEPAGE_H_
#define SRC_UTIL_HUGEPAGE_H_

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace prestore {

// Best-effort transparent-hugepage advice for a large, hot, randomly
// indexed allocation (cache set blocks, host backing stores). Randomly
// striding through tens of megabytes on 4 KiB pages makes nearly every
// access a dTLB miss, and the page walk serializes with the data fetch;
// 2 MiB pages cover the same footprint with a handful of TLB entries.
// Callers should advise BEFORE first touch (e.g. after reserve, before
// fill) so the kernel can fault the range in as huge pages directly
// instead of waiting for khugepaged to collapse it. Purely host-side —
// affects TLB behaviour only, never a simulated result — and a no-op on
// kernels or configs without THP (errors deliberately ignored).
inline void AdviseHugePages(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kPage = 4096;
  const uintptr_t begin =
      (reinterpret_cast<uintptr_t>(p) + kPage - 1) & ~(kPage - 1);
  const uintptr_t end =
      (reinterpret_cast<uintptr_t>(p) + bytes) & ~(kPage - 1);
  if (end > begin) {
    (void)madvise(reinterpret_cast<void*>(begin), end - begin,
                  MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

}  // namespace prestore

#endif  // SRC_UTIL_HUGEPAGE_H_
