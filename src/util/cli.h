// Minimal --key=value command-line flag parser for the benchmark binaries.
#ifndef SRC_UTIL_CLI_H_
#define SRC_UTIL_CLI_H_

#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace prestore {

class CliFlags {
 public:
  CliFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      arg.remove_prefix(2);
      const size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags_[std::string(arg)] = "true";
      } else {
        flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = flags_.find(key);
    if (it == flags_.end()) {
      return fallback;
    }
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  // Flags that were passed but are not in `known` ("help" is always known).
  // CLIs reject these up front so a typo ("--monitered") fails loudly
  // instead of silently running the default configuration.
  std::vector<std::string> UnknownFlags(
      std::initializer_list<std::string_view> known) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : flags_) {
      (void)value;
      if (key == "help") {
        continue;
      }
      bool found = false;
      for (std::string_view k : known) {
        if (key == k) {
          found = true;
          break;
        }
      }
      if (!found) {
        unknown.push_back(key);
      }
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace prestore

#endif  // SRC_UTIL_CLI_H_
