// Small statistics helpers used by the benchmark harnesses and DirtBuster.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace prestore {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  double Sum() const { return mean_ * static_cast<double>(count_); }

  void Merge(const RunningStat& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(count_ + other.count_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / n;
    mean_ += delta * static_cast<double>(other.count_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Collects samples and answers percentile queries. Used for latency reporting.
class Percentiles {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }

  // p in [0, 100]. Nearest-rank method.
  double At(double p) {
    if (samples_.empty()) {
      return 0.0;
    }
    Sort();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto idx = static_cast<size_t>(rank + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  double Median() { return At(50.0); }
  // Extremes of the sample set (0 when empty). The benches report these
  // beside the median so a noisy host's spread is visible in the artifact
  // instead of silently folded into one number.
  double Min() { return At(0.0); }
  double Max() { return At(100.0); }

  double Mean() const {
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

// Power-of-two bucketed histogram, e.g. for re-read / re-write distances.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Add(uint64_t value) {
    ++buckets_[BucketFor(value)];
    ++count_;
  }

  uint64_t Count() const { return count_; }
  uint64_t BucketCount(int bucket) const { return buckets_[bucket]; }

  // Lower bound of the bucket holding `value`.
  static uint64_t BucketLowerBound(int bucket) {
    return bucket == 0 ? 0 : 1ULL << (bucket - 1);
  }

  static int BucketFor(uint64_t value) {
    if (value == 0) {
      return 0;
    }
    return 64 - __builtin_clzll(value);
  }

  // Bucket index holding the p-th percentile sample (p in [0, 100]).
  int PercentileBucket(double p) const {
    if (count_ == 0) {
      return 0;
    }
    const auto target =
        static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) {
        return i;
      }
    }
    return kBuckets - 1;
  }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
};

}  // namespace prestore

#endif  // SRC_UTIL_STATS_H_
