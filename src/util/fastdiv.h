// Branch-light 64-bit remainder by a runtime-constant divisor.
//
// SetAssocCache maps a line's frame number to a set with `frame % sets`.
// When the set count is a power of two that is a mask, but irregular
// geometries (odd shard strides, scaled-down cache sizes) fall back to a
// hardware 64-bit divide — 20-40 unpipelined cycles on every simulated
// access. ModReciprocal precomputes a magic-multiply reciprocal once per
// cache so the remainder costs one widening multiply, one multiply-subtract
// and one conditional subtract instead.
#ifndef SRC_UTIL_FASTDIV_H_
#define SRC_UTIL_FASTDIV_H_

#include <cstdint>

namespace prestore {

// Exact `n % d` for ALL 64-bit n and any divisor d >= 1 via a precomputed
// reciprocal. Unlike the Lemire fastmod trick (exact only for bounded n),
// this quotient-based form needs no restriction on n:
//
//   magic = floor((2^64 - 1) / d), so 2^64 - 1 = magic*d + t with t < d.
//   For q = floor(n * magic / 2^64):
//     n*magic/2^64 = n/d - n*(1 + t)/(d * 2^64)  and  (1 + t) <= d,
//   so n*magic/2^64 > n/d - n/2^64 > n/d - 1, while q <= n/d. Hence
//   q is floor(n/d) or floor(n/d) - 1, r = n - q*d lies in [0, 2d), and a
//   single conditional subtract lands it in [0, d).
class ModReciprocal {
 public:
  // Divisor 1 (everything reduces to 0) so a default-constructed instance
  // is usable; callers that mask power-of-two divisors themselves never
  // consult it.
  ModReciprocal() = default;
  explicit ModReciprocal(uint64_t d) : d_(d), magic_(~uint64_t{0} / d) {}

  uint64_t Mod(uint64_t n) const {
    const uint64_t q = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(n) * magic_) >> 64);
    const uint64_t r = n - q * d_;
    return r >= d_ ? r - d_ : r;
  }

  uint64_t divisor() const { return d_; }

 private:
  uint64_t d_ = 1;
  uint64_t magic_ = ~uint64_t{0};
};

}  // namespace prestore

#endif  // SRC_UTIL_FASTDIV_H_
