// Zipfian key-popularity generator in the style used by YCSB.
//
// Produces values in [0, n) where item rank r has probability proportional to
// 1 / (r+1)^theta. The default theta of 0.99 matches the YCSB default.
#ifndef SRC_UTIL_ZIPF_H_
#define SRC_UTIL_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "src/util/rng.h"

namespace prestore {

class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  ZipfianGenerator(uint64_t n, double theta = kDefaultTheta)
      : n_(n), theta_(theta), zeta_(Zeta(n, theta)) {
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = Zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zeta_);
  }

  uint64_t NumItems() const { return n_; }

  // Next zipf-distributed rank in [0, n). Rank 0 is the most popular item.
  uint64_t Next(Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zeta_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  // YCSB scrambles ranks so that popular items are spread over the keyspace.
  uint64_t NextScrambled(Xoshiro256& rng) const {
    return FnvHash64(Next(rng)) % n_;
  }

  static uint64_t FnvHash64(uint64_t v) {
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
      hash ^= v & 0xff;
      hash *= 0x100000001b3ULL;
      v >>= 8;
    }
    return hash;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta_;
  double alpha_;
  double eta_;
};

}  // namespace prestore

#endif  // SRC_UTIL_ZIPF_H_
