// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the simulator and the workloads flows through Xoshiro256ss
// so that single-threaded runs are bit-reproducible given a seed. Multi-threaded
// harnesses give each thread its own generator derived with SplitMix64.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace prestore {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number generators".
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: fast, high-quality, 256-bit state general-purpose generator.
// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  // the modulo bias is below 2^-32 for every bound used in this project.
  uint64_t Below(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Derive an independent generator, e.g. one per worker thread.
  Xoshiro256 Fork() { return Xoshiro256(Next()); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace prestore

#endif  // SRC_UTIL_RNG_H_
