// Public vocabulary of the pre-store library.
//
// A *pre-store* is the converse of a pre-fetch: an asynchronous, non-blocking
// hint that moves data DOWN the memory hierarchy (paper §2). Two operations
// exist; both keep the data cached:
//
//   kDemote — move the line down the cache hierarchy (private CPU buffers →
//             cache, or L1 → last-level cache). Maps to x86 `cldemote` and
//             ARM `dc cvau` (clean to point of unification).
//   kClean  — write the dirty line back to memory while keeping it cached.
//             Maps to x86 `clwb` and ARM `dc cvac` (clean to point of
//             coherency).
//
// A third technique, *skipping* the cache with non-temporal stores, is not an
// op of prestore() because it requires restructuring the stores themselves
// (paper §2); backends expose it separately (see StoreNonTemporal).
#ifndef SRC_CORE_PRESTORE_H_
#define SRC_CORE_PRESTORE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace prestore {

enum class PrestoreOp : uint8_t {
  kDemote,
  kClean,
};

// What DirtBuster (or a developer) decides to do with a written region.
// kSkip means "use non-temporal stores"; kNone means "leave the code alone"
// (e.g. the region is re-written soon, the Listing-3 trap).
enum class Advice : uint8_t {
  kNone,
  kDemote,
  kClean,
  kSkip,
};

constexpr std::string_view ToString(PrestoreOp op) {
  switch (op) {
    case PrestoreOp::kDemote:
      return "demote";
    case PrestoreOp::kClean:
      return "clean";
  }
  return "?";
}

constexpr std::string_view ToString(Advice a) {
  switch (a) {
    case Advice::kNone:
      return "none";
    case Advice::kDemote:
      return "demote";
    case Advice::kClean:
      return "clean";
    case Advice::kSkip:
      return "skip";
  }
  return "?";
}

// Rounds `addr` down to the start of its cache line.
constexpr uint64_t LineBase(uint64_t addr, uint64_t line_size) {
  return addr & ~(line_size - 1);
}

// Number of cache lines covered by [addr, addr+size).
constexpr uint64_t LinesCovered(uint64_t addr, size_t size,
                                uint64_t line_size) {
  if (size == 0) {
    return 0;
  }
  const uint64_t first = LineBase(addr, line_size);
  const uint64_t last = LineBase(addr + size - 1, line_size);
  return (last - first) / line_size + 1;
}

}  // namespace prestore

#endif  // SRC_CORE_PRESTORE_H_
