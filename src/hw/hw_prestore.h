// Hardware backend: issues REAL pre-store instructions on the host CPU.
//
// This is the paper's `prestore()` implemented exactly as §2 describes:
//   demote → x86 `cldemote`          / ARM `dc cvau`
//   clean  → x86 `clwb` (fallback `clflushopt`) / ARM `dc cvac`
//
// Feature support is detected at runtime (CPUID on x86, unconditional on
// AArch64 where DC CVAC/CVAU are always available to EL0 unless trapped).
// When an instruction is unavailable the call degrades to the closest safe
// behaviour (cldemote → no-op, as on real pre-Tremont CPUs where the opcode
// is a NOP; clwb → clflushopt → nothing).
//
// All experiments in this repository run against the simulator backend
// (src/sim) because the hardware the paper measures (Optane PMEM, Enzian
// CPU+FPGA) is not present; this backend exists to demonstrate that the
// primitive is directly implementable and to let users apply it on capable
// machines.
#ifndef SRC_HW_HW_PRESTORE_H_
#define SRC_HW_HW_PRESTORE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "src/core/prestore.h"
#include "src/robust/governor_policy.h"

namespace prestore {

struct HwFeatures {
  bool has_clwb = false;
  bool has_clflushopt = false;
  bool has_cldemote = false;
  bool has_nt_stores = false;  // SSE2 movnti / AArch64 STNP
  uint32_t cache_line_size = 64;
};

// Detects the host CPU's pre-store capabilities. Detection runs exactly once
// (function-local static: concurrent first calls block until it completes),
// so the returned reference is stable and race-free.
const HwFeatures& DetectHwFeatures();

// Instruction-selection is split out as a pure function of (architecture,
// features, op) so the degrade-gracefully chain is unit-testable on any
// host, not just hosts that actually lack clwb.
enum class HwArch : uint8_t { kX86_64, kAArch64, kOther };

constexpr HwArch HostArch() {
#if defined(__x86_64__) || defined(_M_X64)
  return HwArch::kX86_64;
#elif defined(__aarch64__)
  return HwArch::kAArch64;
#else
  return HwArch::kOther;
#endif
}

enum class HwInstr : uint8_t {
  kCldemote,    // x86 demote (NOP-encoded on unsupporting CPUs)
  kDcCvau,      // ARM demote
  kClwb,        // x86 clean, keeps the line cached
  kClflushopt,  // x86 clean fallback: flushes (evicts) the line
  kDcCvac,      // ARM clean
  kNone,        // no usable instruction: degrade to a no-op
};

// The fallback chain §2 requires: demote is cldemote / dc cvau (cldemote is
// issued even when CPUID says unsupported — the encoding is a NOP there);
// clean is clwb → clflushopt → no-op on x86, dc cvac on ARM.
constexpr HwInstr SelectPrestoreInstr(HwArch arch, const HwFeatures& f,
                                      PrestoreOp op) {
  switch (arch) {
    case HwArch::kX86_64:
      if (op == PrestoreOp::kDemote) {
        return HwInstr::kCldemote;
      }
      if (f.has_clwb) {
        return HwInstr::kClwb;
      }
      if (f.has_clflushopt) {
        return HwInstr::kClflushopt;
      }
      return HwInstr::kNone;
    case HwArch::kAArch64:
      return op == PrestoreOp::kDemote ? HwInstr::kDcCvau : HwInstr::kDcCvac;
    case HwArch::kOther:
      break;
  }
  return HwInstr::kNone;
}

// Issues pre-store instructions for every cache line in [location,
// location+size). Non-blocking: returns as soon as the instructions are
// issued, exactly like the paper's prestore(). Safe to call on any mapped
// address; degrades to a no-op when the CPU lacks support.
void HwPrestore(const void* location, size_t size, PrestoreOp op);

// Issues a store fence that orders preceding clean pre-stores (sfence on x86,
// dmb ish on ARM). Needed only when the caller requires completion ordering,
// e.g. persistence; plain performance uses never call this.
void HwStoreFence();

// Non-temporal (cache-skipping) copy of `size` bytes. Falls back to memcpy
// when the CPU has no non-temporal stores. `dst` must be 8-byte aligned.
void HwStoreNonTemporal(void* dst, const void* src, size_t size);

// Adaptive wrapper around HwPrestore running the same hysteresis policy as
// the simulator governor (src/robust/governor_policy.h), fed purely by
// software-observable signals: the caller reports its stores (NoteStore)
// and fences (NoteFence), and the wrapper detects rewrites of recently
// cleaned lines — the Listing-3 misuse pattern — backing the offending
// regions off. One instance per thread; not synchronized.
class GovernedHwPrestore {
 public:
  // `target_has_wa_headroom` = false means the destination device cannot
  // amplify writes (internal block == cache line); combined with a
  // fence-free caller this closes the global useless-overhead gate.
  explicit GovernedHwPrestore(GovernorConfig config = {},
                              bool target_has_wa_headroom = true);

  // Issues (or suppresses, per region) pre-stores for every line of
  // [location, location+size). Returns the number of lines issued.
  size_t Prestore(const void* location, size_t size, PrestoreOp op);

  // Reports an application store to [location, location+size) so that
  // rewrites of recently cleaned lines are observable.
  void NoteStore(const void* location, size_t size);

  // Reports (and issues) an ordering fence.
  void NoteFence();

  uint64_t attempts() const { return attempts_; }
  uint64_t admitted() const { return admitted_; }
  uint64_t suppressed() const { return suppressed_; }

 private:
  void NoteCleanedLine(uint64_t line_addr);

  static constexpr size_t kRecentCleans = 256;

  GovernorConfig config_;
  bool has_headroom_;
  uint32_t line_size_;
  std::unordered_map<uint64_t, RegionBackoff> regions_;
  uint64_t recent_clean_[kRecentCleans] = {};
  size_t next_clean_ = 0;
  uint64_t attempts_ = 0;
  uint64_t admitted_ = 0;
  uint64_t suppressed_ = 0;
  uint64_t fences_ = 0;
  bool gate_closed_ = false;
  uint64_t gate_last_attempts_ = 0;
  uint64_t gate_last_fences_ = 0;
};

}  // namespace prestore

#endif  // SRC_HW_HW_PRESTORE_H_
