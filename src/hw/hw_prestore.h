// Hardware backend: issues REAL pre-store instructions on the host CPU.
//
// This is the paper's `prestore()` implemented exactly as §2 describes:
//   demote → x86 `cldemote`          / ARM `dc cvau`
//   clean  → x86 `clwb` (fallback `clflushopt`) / ARM `dc cvac`
//
// Feature support is detected at runtime (CPUID on x86, unconditional on
// AArch64 where DC CVAC/CVAU are always available to EL0 unless trapped).
// When an instruction is unavailable the call degrades to the closest safe
// behaviour (cldemote → no-op, as on real pre-Tremont CPUs where the opcode
// is a NOP; clwb → clflushopt → nothing).
//
// All experiments in this repository run against the simulator backend
// (src/sim) because the hardware the paper measures (Optane PMEM, Enzian
// CPU+FPGA) is not present; this backend exists to demonstrate that the
// primitive is directly implementable and to let users apply it on capable
// machines.
#ifndef SRC_HW_HW_PRESTORE_H_
#define SRC_HW_HW_PRESTORE_H_

#include <cstddef>
#include <cstdint>

#include "src/core/prestore.h"

namespace prestore {

struct HwFeatures {
  bool has_clwb = false;
  bool has_clflushopt = false;
  bool has_cldemote = false;
  bool has_nt_stores = false;  // SSE2 movnti / AArch64 STNP
  uint32_t cache_line_size = 64;
};

// Detects the host CPU's pre-store capabilities. Cached after the first call.
const HwFeatures& DetectHwFeatures();

// Issues pre-store instructions for every cache line in [location,
// location+size). Non-blocking: returns as soon as the instructions are
// issued, exactly like the paper's prestore(). Safe to call on any mapped
// address; degrades to a no-op when the CPU lacks support.
void HwPrestore(const void* location, size_t size, PrestoreOp op);

// Issues a store fence that orders preceding clean pre-stores (sfence on x86,
// dmb ish on ARM). Needed only when the caller requires completion ordering,
// e.g. persistence; plain performance uses never call this.
void HwStoreFence();

// Non-temporal (cache-skipping) copy of `size` bytes. Falls back to memcpy
// when the CPU has no non-temporal stores. `dst` must be 8-byte aligned.
void HwStoreNonTemporal(void* dst, const void* src, size_t size);

}  // namespace prestore

#endif  // SRC_HW_HW_PRESTORE_H_
