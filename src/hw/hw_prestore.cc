#include "src/hw/hw_prestore.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#include <emmintrin.h>
#define PRESTORE_X86 1
#elif defined(__aarch64__)
#define PRESTORE_ARM 1
#endif

namespace prestore {
namespace {

HwFeatures Detect() {
  HwFeatures f;
#if defined(PRESTORE_X86)
  unsigned int eax = 0;
  unsigned int ebx = 0;
  unsigned int ecx = 0;
  unsigned int edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.has_clflushopt = (ebx & (1u << 23)) != 0;
    f.has_clwb = (ebx & (1u << 24)) != 0;
    f.has_cldemote = (ecx & (1u << 25)) != 0;
  }
  f.has_nt_stores = true;  // SSE2 is part of the x86-64 baseline.
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    // CLFLUSH line size is reported in 8-byte units in EBX[15:8].
    const uint32_t clflush_units = (ebx >> 8) & 0xff;
    if (clflush_units != 0) {
      f.cache_line_size = clflush_units * 8;
    }
  }
#elif defined(PRESTORE_ARM)
  // DC CVAC / CVAU are architecturally available at EL0 (SCTLR_EL1.UCI is set
  // by every mainstream OS). CTR_EL0 gives the data-cache line size.
  f.has_clwb = true;       // dc cvac
  f.has_cldemote = true;   // dc cvau
  f.has_nt_stores = true;  // stnp
  uint64_t ctr = 0;
  asm volatile("mrs %0, ctr_el0" : "=r"(ctr));
  const uint64_t dminline_log2 = (ctr >> 16) & 0xf;
  f.cache_line_size = 4u << dminline_log2;
#endif
  return f;
}

#if defined(PRESTORE_X86)

inline void X86Cldemote(const void* p) {
  // Encoded directly so the binary runs on toolchains without -mcldemote.
  // On CPUs without CLDEMOTE the opcode executes as a NOP (it occupies a
  // NOP hint space), which is exactly the degrade-gracefully behaviour the
  // instruction was designed for.
  asm volatile(".byte 0x0f, 0x1c, 0x07" ::"D"(p) : "memory");
}

inline void X86Clwb(const void* p) {
  asm volatile(".byte 0x66, 0x0f, 0xae, 0x37" ::"D"(p) : "memory");
}

inline void X86Clflushopt(const void* p) {
  asm volatile(".byte 0x66, 0x0f, 0xae, 0x3f" ::"D"(p) : "memory");
}

#elif defined(PRESTORE_ARM)

inline void ArmDcCvau(const void* p) {
  asm volatile("dc cvau, %0" ::"r"(p) : "memory");
}

inline void ArmDcCvac(const void* p) {
  asm volatile("dc cvac, %0" ::"r"(p) : "memory");
}

#endif

}  // namespace

const HwFeatures& DetectHwFeatures() {
  static const HwFeatures features = Detect();
  return features;
}

namespace {

// Dispatches one selected instruction. The selection itself is the pure
// SelectPrestoreInstr in the header; only the encodings live here.
inline void IssueInstr(HwInstr instr, const void* p) {
  switch (instr) {
#if defined(PRESTORE_X86)
    case HwInstr::kCldemote:
      X86Cldemote(p);
      break;
    case HwInstr::kClwb:
      X86Clwb(p);
      break;
    case HwInstr::kClflushopt:
      X86Clflushopt(p);
      break;
#elif defined(PRESTORE_ARM)
    case HwInstr::kDcCvau:
      ArmDcCvau(p);
      break;
    case HwInstr::kDcCvac:
      ArmDcCvac(p);
      break;
#endif
    default:
      (void)p;
      break;
  }
}

}  // namespace

void HwPrestore(const void* location, size_t size, PrestoreOp op) {
  if (size == 0) {
    return;
  }
  const HwFeatures& f = DetectHwFeatures();
  const HwInstr instr = SelectPrestoreInstr(HostArch(), f, op);
  if (instr == HwInstr::kNone) {
    return;
  }
  const uint64_t line = f.cache_line_size;
  const auto addr = reinterpret_cast<uint64_t>(location);
  const uint64_t first = LineBase(addr, line);
  const uint64_t last = LineBase(addr + size - 1, line);
  for (uint64_t a = first; a <= last; a += line) {
    IssueInstr(instr, reinterpret_cast<const void*>(a));
  }
}

void HwStoreFence() {
#if defined(PRESTORE_X86)
  _mm_sfence();
#elif defined(PRESTORE_ARM)
  asm volatile("dmb ish" ::: "memory");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

void HwStoreNonTemporal(void* dst, const void* src, size_t size) {
#if defined(PRESTORE_X86)
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  // Head/tail that are not 8-byte multiples go through regular stores.
  while (size >= 8 && (reinterpret_cast<uint64_t>(d) & 7) == 0) {
    long long v;  // NOLINT(runtime/int): _mm_stream_si64 takes long long.
    std::memcpy(&v, s, 8);
    _mm_stream_si64(reinterpret_cast<long long*>(d), v);
    d += 8;
    s += 8;
    size -= 8;
  }
  if (size > 0) {
    std::memcpy(d, s, size);
  }
#elif defined(PRESTORE_ARM)
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  while (size >= 16 && (reinterpret_cast<uint64_t>(d) & 15) == 0) {
    uint64_t lo;
    uint64_t hi;
    std::memcpy(&lo, s, 8);
    std::memcpy(&hi, s + 8, 8);
    asm volatile("stnp %0, %1, [%2]" ::"r"(lo), "r"(hi), "r"(d) : "memory");
    d += 16;
    s += 16;
    size -= 16;
  }
  if (size > 0) {
    std::memcpy(d, s, size);
  }
#else
  std::memcpy(dst, src, size);
#endif
}

GovernedHwPrestore::GovernedHwPrestore(GovernorConfig config,
                                       bool target_has_wa_headroom)
    : config_(config),
      has_headroom_(target_has_wa_headroom),
      line_size_(DetectHwFeatures().cache_line_size) {}

void GovernedHwPrestore::NoteCleanedLine(uint64_t line_addr) {
  for (size_t i = 0; i < kRecentCleans; ++i) {
    if (recent_clean_[i] == line_addr) {
      return;
    }
  }
  recent_clean_[next_clean_] = line_addr;
  next_clean_ = (next_clean_ + 1) % kRecentCleans;
}

size_t GovernedHwPrestore::Prestore(const void* location, size_t size,
                                    PrestoreOp op) {
  if (size == 0) {
    return 0;
  }
  const auto addr = reinterpret_cast<uint64_t>(location);
  const uint64_t first = LineBase(addr, line_size_);
  const uint64_t last = LineBase(addr + size - 1, line_size_);
  size_t issued = 0;
  for (uint64_t a = first; a <= last; a += line_size_) {
    ++attempts_;
    // Global useless-overhead gate (same hysteresis band as the simulator
    // governor, evaluated over the caller-reported fence rate).
    const uint64_t window_attempts = attempts_ - gate_last_attempts_;
    if (window_attempts >= config_.global_eval_window) {
      const double fence_rate =
          static_cast<double>(fences_ - gate_last_fences_) / window_attempts;
      if (!gate_closed_ && fence_rate < config_.fence_rate_low) {
        gate_closed_ = true;
      } else if (gate_closed_ && fence_rate > config_.fence_rate_high) {
        gate_closed_ = false;
      }
      gate_last_attempts_ = attempts_;
      gate_last_fences_ = fences_;
    }
    if (gate_closed_ && !has_headroom_) {
      ++suppressed_;
      continue;
    }
    RegionBackoff& region = regions_[a >> config_.region_shift];
    if (!region.OnHint(config_, config_.backoff_rewrite_rate)) {
      ++suppressed_;
      continue;
    }
    HwPrestore(reinterpret_cast<const void*>(a), 1, op);
    if (op == PrestoreOp::kClean) {
      NoteCleanedLine(a);
    }
    ++admitted_;
    ++issued;
  }
  return issued;
}

void GovernedHwPrestore::NoteStore(const void* location, size_t size) {
  if (size == 0) {
    return;
  }
  const auto addr = reinterpret_cast<uint64_t>(location);
  const uint64_t first = LineBase(addr, line_size_);
  const uint64_t last = LineBase(addr + size - 1, line_size_);
  for (uint64_t a = first; a <= last; a += line_size_) {
    for (size_t i = 0; i < kRecentCleans; ++i) {
      if (recent_clean_[i] == a) {
        recent_clean_[i] = 0;
        regions_[a >> config_.region_shift].OnRewrite();
        break;
      }
    }
  }
}

void GovernedHwPrestore::NoteFence() {
  ++fences_;
  HwStoreFence();
}

}  // namespace prestore
