#include "src/sim/core.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <cassert>

#include "src/sim/machine.h"
#include "src/sim/optlock.h"

namespace prestore {

namespace {
constexpr uint64_t kFenceIssueCost = 5;
constexpr uint64_t kStoreIssueCost = 1;
}  // namespace

Core::Core(Machine* machine, uint8_t id, const MachineConfig& config)
    : machine_(machine), id_(id), config_(config), l1_(config.l1, config.seed ^ (0x17ULL * id + 3)) {}

void Core::RefreshFastPathFlags() {
  sink_fast_.store(machine_->trace_sink(), std::memory_order_release);
  has_hooks_.store(!machine_->prestore_hooks().empty(),
                   std::memory_order_release);
  lock_free_.store(machine_->exclusive_execution(),
                   std::memory_order_release);
  fast_forward_.store(machine_->fast_forward_enabled(),
                      std::memory_order_release);
  AccessSampleHook* sampler = machine_->access_sample_hook();
  sampler_fast_.store(sampler, std::memory_order_release);
  const uint32_t period = sampler != nullptr ? sampler->SamplePeriod() : 0;
  if (period != sample_period_) {
    sample_period_ = period;
    sample_countdown_ = period;
  }
}

void Core::PushFunc(FuncToken token) {
  const uint32_t parent = cur_chain_;
  fstack_.push_back(token.id);
  chain_stack_.push_back(parent);
  const uint64_t key = (static_cast<uint64_t>(parent) << 32) | token.id;
  auto it = chain_cache_.find(key);
  if (it == chain_cache_.end()) {
    cur_chain_ = machine_->registry().InternChain(fstack_);
    chain_cache_.emplace(key, cur_chain_);
  } else {
    cur_chain_ = it->second;
  }
}

void Core::PopFunc() {
  assert(!fstack_.empty());
  fstack_.pop_back();
  cur_chain_ = chain_stack_.back();
  chain_stack_.pop_back();
}

// ---- Store buffer ----

bool Core::SbContains(uint64_t line_addr) const {
  return std::find(sb_.begin(), sb_.end(), line_addr) != sb_.end();
}

void Core::SbRemove(uint64_t line_addr) {
  auto it = std::find(sb_.begin(), sb_.end(), line_addr);
  if (it != sb_.end()) {
    sb_.erase(it);
  }
}

void Core::SbInsert(uint64_t line_addr) {
  if (sb_.size() >= config_.store_buffer_entries) {
    // Capacity pressure: the oldest private store is published in the
    // background (§4.2: CPUs advertise writes "when they run out of private
    // buffer space").
    const uint64_t oldest = sb_.front();
    sb_.pop_front();
    ++stats_.sb_capacity_drains;
    PushBg(machine_->PublishLine(id_, oldest, now_));
  }
  sb_.push_back(line_addr);
}

uint64_t Core::DrainSbAll(uint64_t start) {
  if (sb_.empty()) {
    return start;
  }
  // Publications at a fence proceed with limited overlap: entry i may start
  // only once entry i-P has completed (P = fence_drain_parallelism).
  const uint32_t p = std::max(1u, config_.fence_drain_parallelism);
  std::vector<uint64_t> completions;
  completions.reserve(sb_.size());
  uint64_t max_completion = start;
  size_t i = 0;
  for (uint64_t line : sb_) {
    uint64_t s = start;
    if (i >= p) {
      s = std::max(s, completions[i - p]);
    }
    const uint64_t c = machine_->PublishLine(id_, line, s);
    completions.push_back(c);
    max_completion = std::max(max_completion, c);
    ++i;
  }
  sb_.clear();
  return max_completion;
}

// ---- Background / write-combining queues ----

uint64_t Core::WaitAll(std::deque<uint64_t>& q, uint64_t t) {
  for (uint64_t c : q) {
    t = std::max(t, c);
  }
  q.clear();
  return t;
}

uint64_t Core::WaitAllWc(uint64_t t) {
  for (const WcEntry& e : wc_) {
    t = std::max(t, e.completion);
  }
  wc_.clear();
  std::memset(wc_filter_, 0, sizeof(wc_filter_));
  return t;
}

void Core::PushBg(uint64_t completion) {
  while (!bg_.empty() && bg_.front() <= now_) {
    bg_.pop_front();
  }
  bg_.push_back(completion);
  while (bg_.size() > config_.max_background_ops) {
    if (bg_.front() > now_) {
      stats_.cycles_bg_wait += bg_.front() - now_;
      now_ = bg_.front();
    }
    bg_.pop_front();
  }
}

void Core::PushWc(uint64_t line_addr, uint64_t completion) {
  while (!wc_.empty() && wc_.front().completion <= now_) {
    --wc_filter_[WcSlot(wc_.front().line_addr)];
    wc_.pop_front();
  }
  wc_.push_back(WcEntry{line_addr, completion});
  ++wc_filter_[WcSlot(line_addr)];
  while (wc_.size() > config_.wc_buffer_entries) {
    if (wc_.front().completion > now_) {
      stats_.cycles_wc_wait += wc_.front().completion - now_;
      now_ = wc_.front().completion;
    }
    --wc_filter_[WcSlot(wc_.front().line_addr)];
    wc_.pop_front();
  }
}

bool Core::WaitPendingWriteback(uint64_t line_addr) {
  if (wc_filter_[WcSlot(line_addr)] == 0) {
    return false;  // nothing in flight: every store/load-miss takes this exit
  }
  bool found = false;
  for (auto it = wc_.begin(); it != wc_.end();) {
    if (it->line_addr == line_addr) {
      if (it->completion > now_) {
        stats_.cycles_wb_pending += it->completion - now_;
        now_ = it->completion;
      }
      --wc_filter_[WcSlot(line_addr)];
      it = wc_.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  return found;
}

// ---- L1 fill ----

void Core::FillL1(uint64_t line_addr, bool exclusive, bool dirty) {
  SetAssocCache::Victim victim;
  {
    OptionalLockGuard lock(l1_mu_, LockFree());
    CacheLineMeta* present = l1_.Touch(line_addr);
    if (present != nullptr) {
      present->exclusive = present->exclusive || exclusive;
      present->dirty = present->dirty || dirty;
      return;
    }
    CacheLineMeta* meta = nullptr;
    SetAssocCache::Victim v = l1_.Insert(line_addr, dirty, &meta);
    meta->exclusive = exclusive;
    victim = v;
  }
  if (victim.valid) {
    machine_->L1VictimWriteback(id_, victim.line_addr, victim.dirty, now_);
  }
}

// ---- Per-line timing paths ----

void Core::LineLoad(uint64_t line_addr) {
  {
    OptionalLockGuard lock(l1_mu_, LockFree());
    if (l1_.Touch(line_addr) != nullptr) {
      ++stats_.l1_hits;
      now_ += config_.l1.hit_latency;
      return;
    }
  }
  if (SbContains(line_addr)) {
    // Store-to-load forwarding from the private buffer.
    ++stats_.sb_forwards;
    now_ += kStoreIssueCost;
    return;
  }
  // A line with an in-flight writeback and no cached copy (the non-temporal
  // store case — §7.2.1 "skipping the cache doubles the time spent loading
  // the value of the previously written packet") must wait for the
  // writeback before it can be read back — and the prefetcher cannot have
  // fetched it (it was not in memory yet), so no stream discount either.
  const bool was_in_flight =
      WaitPendingWriteback(line_addr) || RecentlyNtWritten(line_addr);
  ++stats_.l1_misses;
  bool streamed = false;
  if (!was_in_flight) {
    for (size_t i = 0; i < kMissStreams; ++i) {
      if (miss_streams_[i] + config_.line_size == line_addr) {
        miss_streams_[i] = line_addr;  // stream advances in place
        streamed = true;
        break;
      }
    }
    if (!streamed) {
      miss_streams_[next_stream_] = line_addr;
      next_stream_ = (next_stream_ + 1) % kMissStreams;
    }
  }
  const uint64_t before = now_;
  now_ = machine_->LlcAccess(id_, line_addr, Machine::AccessMode::kRead, now_,
                             streamed);
  stats_.cycles_load_miss += now_ - before;
  FillL1(line_addr, /*exclusive=*/false, /*dirty=*/false);
}

void Core::NoteCleanedLine(uint64_t line_addr) {
  // Direct-mapped table, allocated on first use (only runs with an installed
  // PrestoreHook pay for it). A colliding clean evicts the previous entry —
  // a false negative, never a false positive (slots store the full address).
  // O(1) per clean and per store keeps hook-observed runs near full speed,
  // and the capacity covers multi-megabyte rewrite distances (e.g. the IS
  // rank scatter revisits a cleaned line ~32k cleans later).
  if (recent_clean_.empty()) {
    recent_clean_.assign(kCleanTableSize, 0);
  }
  recent_clean_[(line_addr >> 6) & (kCleanTableSize - 1)] = line_addr;
}

void Core::NotifyRewriteIfCleaned(uint64_t line_addr) {
  if (recent_clean_.empty()) {
    return;
  }
  uint64_t& slot = recent_clean_[(line_addr >> 6) & (kCleanTableSize - 1)];
  if (slot == line_addr) {
    slot = 0;  // report each clean at most once
    // Only a rewrite that catches the line still cached wasted the clean's
    // writeback (the dirty data would have coalesced in cache); once the
    // line has been evicted, the writeback was owed regardless of the
    // clean, so the hint did no harm. Distinguishes Listing-3 / FT-scratch
    // misuse (L1-resident) and the IS rank scatter (LLC-resident) from
    // Listing-1's benign far-distance element repeats (long evicted).
    if (!machine_->LlcResident(line_addr)) {
      return;
    }
    for (PrestoreHook* hook : machine_->prestore_hooks()) {
      hook->OnRewriteAfterClean(id_, line_addr, now_);
    }
  }
}

void Core::LineStore(uint64_t line_addr) {
  if (HasHooks()) {
    NotifyRewriteIfCleaned(line_addr);
  }
  WaitPendingWriteback(line_addr);
  {
    OptionalLockGuard lock(l1_mu_, LockFree());
    CacheLineMeta* meta = l1_.Touch(line_addr);
    if (meta != nullptr && meta->exclusive) {
      meta->dirty = true;
      now_ += kStoreIssueCost;
      return;
    }
  }
  now_ += kStoreIssueCost;
  if (config_.drain == StoreDrainPolicy::kEagerTso) {
    // TSO: the store becomes globally visible eagerly, in the background
    // (read-for-ownership overlapped via the background-op window).
    const uint64_t completion = machine_->PublishLine(id_, line_addr, now_);
    stats_.publish_latency_sum += completion - now_;
    ++stats_.publishes;
    PushBg(completion);
  } else {
    // Weak ordering: the write stays private until something forces it out.
    if (!SbContains(line_addr)) {
      SbInsert(line_addr);
    }
  }
}

// How far ahead of the op cursor the fast-forward loop warms host caches.
// Far enough to cover a host memory round trip at ~tens of ns/op, near
// enough that the prefetched lines are not evicted again before use.
constexpr size_t kPrefetchAhead = 12;

size_t Core::FastForwardOps(const ReplayOp* ops, size_t n,
                            uint64_t deadline) {
  // Run-level hazards: any observer (trace sink, pre-store hook, access
  // sampler) must see every op at full fidelity, so an observed run never
  // fast-forwards.
  if (n == 0 || !fast_forward_.load(std::memory_order_relaxed) ||
      sink_fast_.load(std::memory_order_acquire) != nullptr || HasHooks() ||
      sample_period_ != 0) {
    return 0;
  }
  const uint64_t ls = config_.line_size;
  const uint64_t line_mask = ls - 1;
  const uint64_t hit_latency = config_.l1.hit_latency;
  // The L1-miss legs (LLC-hit load, store publication) additionally need:
  // exclusive execution (they touch shared LLC state without the shard
  // lock) and an empty store buffer (so the slow path's forwarding / drain
  // interactions are provably no-ops; always empty under eager TSO). The
  // buffer cannot grow inside the loop (no leg inserts into it), so one
  // check up front covers the whole run. The write-combining queue is NOT
  // required to be empty — completed entries linger until lazily popped —
  // but an entry MATCHING the op's line means the slow path would join the
  // in-flight writeback (WaitPendingWriteback erases it and may advance
  // the clock), so each leg scans for a match and bails on one; a
  // non-matching scan mutates nothing on either path.
  const bool miss_legs = LockFree() && sb_.empty();
  const bool tso = config_.drain == StoreDrainPolicy::kEagerTso;
  // Accumulate in locals and charge once at exit: the loop body is a probe,
  // a compare, and register bumps — no member traffic per op.
  uint64_t now = now_;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t l1_hits_n = 0;
  uint64_t l1_misses_n = 0;
  uint64_t cycles_load_miss = 0;
  uint64_t publishes = 0;
  uint64_t publish_latency_sum = 0;
  size_t i = 0;
  {
    // One lock acquisition covers the whole run (elided entirely in
    // exclusive execution). Callers bound `n`, so in concurrent runs the
    // hold time stays short (see kFastForwardChunk in replay.h).
    OptionalLockGuard lock(l1_mu_, LockFree());
    for (; i < n; ++i) {
      if (now >= deadline) {
        break;  // quantum exhausted: the op belongs to a later slice
      }
      const ReplayOp& op = ops[i];
      // The trace is pre-generated, so the lines future ops touch are
      // known: warm the host caches for the op kPrefetchAhead slots out
      // while this one executes. Once the simulated working set outgrows
      // the host LLC, the engine is bound by dependent host misses on the
      // shard tag/meta arrays and the backing data — overlapping them
      // across ops is worth more than any instruction-level tuning here.
      if (i + kPrefetchAhead < n) {
        const ReplayOp& ahead = ops[i + kPrefetchAhead];
        if (ahead.kind != ReplayOpKind::kClean) {
          // Deep (whole-header) prefetch once the recent stream has been
          // miss-dominated: a miss walks the full tag array, which the
          // hinted prefetch doesn't cover. The score is host-side state
          // feeding a pure hardware hint, so its phase lag is harmless.
          // Host data bytes are only touched by stores (loads are
          // timing-only here), so loads skip that fetch entirely.
          machine_->PrefetchForAccess(
              ahead.addr, deep_prefetch_score_ >= 16,
              /*host_data=*/ahead.kind == ReplayOpKind::kStore);
        }
      }
      if (op.kind == ReplayOpKind::kClean ||
          (op.addr & line_mask) + 8 > ls) {
        break;  // cleans and line-straddling ops take the slow path
      }
      if (op.kind == ReplayOpKind::kStore) {
        // The slow path consults the write-combining queue BEFORE the L1
        // probe (an in-flight writeback of this line must be joined), so a
        // matching entry disqualifies the op before any replacement-state
        // update. Probe (no replacement update) first, Touch only once the
        // op is known eligible — a bail-out must leave LRU/PLRU stamps
        // exactly as the slow path's first touch will set them.
        if (wc_filter_[WcSlot(op.addr)] != 0) {
          bool pending = false;
          for (const WcEntry& e : wc_) {
            if (e.line_addr == op.addr) {
              pending = true;
              break;
            }
          }
          if (pending) {
            break;
          }
        }
        CacheLineMeta* meta = l1_.Probe(op.addr);
        if (meta != nullptr && meta->exclusive) {
          l1_.Touch(op.addr);
          meta->dirty = true;
          now += kStoreIssueCost;
          deep_prefetch_score_ -= (deep_prefetch_score_ != 0);
          ++stores;
          // Functional store, same value pattern the replay driver writes.
          const uint64_t v = ReplayStoreValue(op.addr);
          std::memcpy(machine_->HostPtr(op.addr), &v, 8);
          continue;
        }
        // Store-publication leg: L1 miss or shared hit, TSO. The slow path
        // is LineStore -> PublishLine -> LlcAccess(kWrite) -> FillL1; when
        // the LLC access is trivial — a TryFastLlcHit hit, or a genuine
        // miss FastLlcMiss may commit analytically — that chain reduces to
        // the exact sequence below. On a hit the LLC commit runs before
        // the L1 touches (a hit mutates no L1 state, so the structures are
        // disjoint and the final state identical) because a bailing probe
        // must mutate nothing. On a miss the commit runs between
        // PublishLine's probe and its FillL1 — exactly where the slow
        // path's LlcAccess (and its victim back-invalidation, which CAN
        // touch this L1) runs. Replacement exactness: the slow path
        // touches the L1 line three times (LineStore's probe, PublishLine's
        // probe, FillL1) — so does this leg.
        if (!miss_legs || !tso) {
          break;
        }
        uint64_t t;
        const Machine::FastLlc sr = machine_->TryFastLlcHit(
            id_, op.addr, Machine::AccessMode::kWrite,
            now + kStoreIssueCost, &t);
        if (sr == Machine::FastLlc::kBail ||
            (sr == Machine::FastLlc::kMiss &&
             !machine_->FastMissEligible(op.addr, /*is_write=*/true))) {
          break;
        }
        l1_.Touch(op.addr);  // LineStore's probe (hit updates replacement)
        now += kStoreIssueCost;
        l1_.Touch(op.addr);  // PublishLine's probe
        if (sr == Machine::FastLlc::kMiss) {
          deep_prefetch_score_ =
              deep_prefetch_score_ > 56 ? 64 : deep_prefetch_score_ + 8;
          // Warm the L1 victim's LLC set before the device leg so the
          // L1VictimWriteback probe below doesn't stall on it (host-only
          // peek; a wrong or impossible peek costs nothing).
          if (const CacheLineMeta* pv = l1_.PeekVictimMeta(op.addr)) {
            machine_->PrefetchHeadersForAccess(pv->line_addr);
          }
          // Analytical LLC-miss commit (stores are never streamed: the
          // slow path calls LlcAccess with the default streamed=false).
          t = machine_->FastLlcMiss(id_, op.addr, Machine::AccessMode::kWrite,
                                    now, /*streamed=*/false);
        }
        // PublishLine's FillL1(line, exclusive=true, dirty=true).
        CacheLineMeta* fill = l1_.Touch(op.addr);
        if (fill != nullptr) {
          fill->exclusive = true;
          fill->dirty = true;
        } else {
          SetAssocCache::Victim victim =
              l1_.Insert(op.addr, /*dirty=*/true, &fill);
          fill->exclusive = true;
          if (victim.valid) {
            machine_->L1VictimWriteback(id_, victim.line_addr, victim.dirty,
                                        now);
          }
        }
        publish_latency_sum += t - now;
        ++publishes;
        now_ = now;  // PushBg reads and may advance the member clock
        PushBg(t);
        now = now_;
        ++stores;
        const uint64_t v = ReplayStoreValue(op.addr);
        std::memcpy(machine_->HostPtr(op.addr), &v, 8);
      } else {
        if (l1_.Touch(op.addr) != nullptr) {
          now += hit_latency;
          deep_prefetch_score_ -= (deep_prefetch_score_ != 0);
          ++loads;
          ++l1_hits_n;
          continue;
        }
        // LLC-hit load leg: the slow path is LineLoad -> LlcAccess(kRead)
        // -> FillL1; with no in-flight writeback of this line, no recent NT
        // write, and a trivial LLC hit it reduces to the sequence below. A
        // failed L1 Touch mutates nothing, so bailing here still leaves
        // the slow path a bit-identical starting state.
        if (!miss_legs || RecentlyNtWritten(op.addr)) {
          break;
        }
        if (wc_filter_[WcSlot(op.addr)] != 0) {
          bool pending = false;
          for (const WcEntry& e : wc_) {
            if (e.line_addr == op.addr) {
              pending = true;
              break;
            }
          }
          if (pending) {
            break;  // the slow path joins the in-flight writeback
          }
        }
        uint64_t t;
        const Machine::FastLlc lr = machine_->TryFastLlcHit(
            id_, op.addr, Machine::AccessMode::kRead, now, &t);
        if (lr == Machine::FastLlc::kBail ||
            (lr == Machine::FastLlc::kMiss &&
             !machine_->FastMissEligible(op.addr, /*is_write=*/false))) {
          break;
        }
        ++l1_misses_n;
        // LineLoad's stream-detector update, verbatim. On the LLC-miss leg
        // it runs BEFORE the device access — the slow path's order, and
        // `streamed` feeds the discount. On the hit leg it runs after the
        // commit in TryFastLlcHit, which is equivalent: the discount never
        // applies to hits, and the stream table and the LLC are disjoint,
        // so updating after the commit leaves the same final state as the
        // slow path's update-before-access order.
        bool streamed = false;
        for (size_t s = 0; s < kMissStreams; ++s) {
          if (miss_streams_[s] + ls == op.addr) {
            miss_streams_[s] = op.addr;
            streamed = true;
            break;
          }
        }
        if (!streamed) {
          miss_streams_[next_stream_] = op.addr;
          next_stream_ = (next_stream_ + 1) % kMissStreams;
        }
        if (lr == Machine::FastLlc::kMiss) {
          deep_prefetch_score_ =
              deep_prefetch_score_ > 56 ? 64 : deep_prefetch_score_ + 8;
          // Warm the L1 victim's LLC set before the device leg (see the
          // store leg) — the fill insert below will evict it and probe
          // its LLC set in L1VictimWriteback.
          if (const CacheLineMeta* pv = l1_.PeekVictimMeta(op.addr)) {
            machine_->PrefetchHeadersForAccess(pv->line_addr);
          }
          // Analytical LLC-miss commit (the exact LlcAccess miss
          // sequence, including the victim back-invalidation that may
          // remove an unrelated line from this L1 — before the fill
          // insert below, as on the slow path).
          t = machine_->FastLlcMiss(id_, op.addr, Machine::AccessMode::kRead,
                                    now, streamed);
        }
        cycles_load_miss += t - now;
        now = t;
        // FillL1(line, exclusive=false, dirty=false): the line is absent
        // (the probe above just missed, and the only L1 mutation since —
        // a miss leg's victim back-invalidation — only removes lines), so
        // the slow path's present-check Touch would be a mutation-free
        // miss — skip straight to the insert.
        CacheLineMeta* fill = nullptr;
        SetAssocCache::Victim victim =
            l1_.Insert(op.addr, /*dirty=*/false, &fill);
        fill->exclusive = false;
        if (victim.valid) {
          machine_->L1VictimWriteback(id_, victim.line_addr, victim.dirty,
                                      now);
        }
        ++loads;
      }
    }
  }
  // Replay the deferred eviction-writeback admission notes before anything
  // else (slow path, next slice, stats) can observe the queue. Empty
  // whenever no miss leg deferred work this run.
  FlushEvictionTrain();
  now_ = now;
  icount_ += i;  // one instruction per line-granular 8-byte op
  stats_.loads += loads;
  stats_.l1_hits += l1_hits_n;
  stats_.l1_misses += l1_misses_n;
  stats_.cycles_load_miss += cycles_load_miss;
  stats_.stores += stores;
  stats_.publishes += publishes;
  stats_.publish_latency_sum += publish_latency_sum;
  return i;
}

void Core::TimedAccess(SimAddr addr, size_t size, bool is_store) {
  const uint64_t ls = config_.line_size;
  SimAddr a = addr;
  size_t remaining = size;
  while (remaining > 0) {
    const uint64_t line = LineBase(a, ls);
    const size_t in_line =
        std::min<size_t>(remaining, line + ls - a);
    if (is_store) {
      ++stats_.stores;
      LineStore(line);
      Emit(TraceKind::kStore, a, static_cast<uint32_t>(in_line));
    } else {
      ++stats_.loads;
      LineLoad(line);
      Emit(TraceKind::kLoad, a, static_cast<uint32_t>(in_line));
    }
    MaybeSampleAccess(line, is_store);
    icount_ += std::max<size_t>(1, in_line / 8);
    a += in_line;
    remaining -= in_line;
  }
}

// ---- Data operations ----

uint64_t Core::LoadU64(SimAddr addr) {
  uint64_t v;
  std::memcpy(&v, machine_->HostPtr(addr), 8);
  TimedAccess(addr, 8, /*is_store=*/false);
  return v;
}

uint32_t Core::LoadU32(SimAddr addr) {
  uint32_t v;
  std::memcpy(&v, machine_->HostPtr(addr), 4);
  TimedAccess(addr, 4, /*is_store=*/false);
  return v;
}

void Core::StoreU64(SimAddr addr, uint64_t value) {
  std::memcpy(machine_->HostPtr(addr), &value, 8);
  TimedAccess(addr, 8, /*is_store=*/true);
}

void Core::StoreU32(SimAddr addr, uint32_t value) {
  std::memcpy(machine_->HostPtr(addr), &value, 4);
  TimedAccess(addr, 4, /*is_store=*/true);
}

double Core::LoadF64(SimAddr addr) {
  double v;
  std::memcpy(&v, machine_->HostPtr(addr), 8);
  TimedAccess(addr, 8, /*is_store=*/false);
  return v;
}

void Core::StoreF64(SimAddr addr, double value) {
  std::memcpy(machine_->HostPtr(addr), &value, 8);
  TimedAccess(addr, 8, /*is_store=*/true);
}

void Core::MemCopyToSim(SimAddr dst, const void* src, size_t size) {
  std::memcpy(machine_->HostPtr(dst), src, size);
  TimedAccess(dst, size, /*is_store=*/true);
}

void Core::MemCopyFromSim(void* dst, SimAddr src, size_t size) {
  std::memcpy(dst, machine_->HostPtr(src), size);
  TimedAccess(src, size, /*is_store=*/false);
}

void Core::MemCopySimToSim(SimAddr dst, SimAddr src, size_t size) {
  std::memmove(machine_->HostPtr(dst), machine_->HostPtr(src), size);
  TimedAccess(src, size, /*is_store=*/false);
  TimedAccess(dst, size, /*is_store=*/true);
}

void Core::MemSet(SimAddr dst, uint8_t byte, size_t size) {
  std::memset(machine_->HostPtr(dst), byte, size);
  TimedAccess(dst, size, /*is_store=*/true);
}

// ---- Ordering ----

void Core::PublishClock() {
  published_now_.store(now_, std::memory_order_relaxed);
}

void Core::SpinPause(uint64_t cycles) {
  ++icount_;
  const uint64_t target = machine_->ApproxGlobalTime();
  if (now_ < target) {
    now_ = std::min(now_ + cycles, target);
  } else {
    std::this_thread::yield();
  }
  PublishClock();
}

void Core::Fence() {
  PublishClock();
  ++stats_.fences;
  ++icount_;
  if (HasHooks()) {
    for (PrestoreHook* hook : machine_->prestore_hooks()) {
      hook->OnFence(id_, now_);
    }
  }
  const uint64_t begin = now_;
  uint64_t t = DrainSbAll(now_);
  t = WaitAll(bg_, t);
  t = WaitAllWc(t);
  now_ = std::max(now_ + kFenceIssueCost, t);
  stats_.fence_stall_cycles += now_ - begin;
  Emit(TraceKind::kFence, 0, 0);
}

bool Core::CasU64(SimAddr addr, uint64_t& expected, uint64_t desired) {
  PublishClock();
  ++stats_.atomics;
  ++icount_;
  // Atomics carry fence semantics (§4.2): all private stores publish first,
  // and fence-sensitive observers (governor gate, region monitor) must see
  // them or CAS-publish patterns (X9) read as fence-free.
  if (HasHooks()) {
    for (PrestoreHook* hook : machine_->prestore_hooks()) {
      hook->OnFence(id_, now_);
    }
  }
  uint64_t t = DrainSbAll(now_);
  t = WaitAll(bg_, t);
  t = WaitAllWc(t);
  now_ = std::max(now_, t);
  const uint64_t line = machine_->LineBaseOf(addr);
  now_ = machine_->PublishLine(id_, line, now_) + config_.atomic_latency;
  Emit(TraceKind::kAtomic, addr, 8);
  auto* p = reinterpret_cast<uint64_t*>(machine_->HostPtr(addr));
  return std::atomic_ref<uint64_t>(*p).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel);
}

uint64_t Core::FetchAddU64(SimAddr addr, uint64_t delta) {
  PublishClock();
  ++stats_.atomics;
  ++icount_;
  if (HasHooks()) {
    for (PrestoreHook* hook : machine_->prestore_hooks()) {
      hook->OnFence(id_, now_);
    }
  }
  uint64_t t = DrainSbAll(now_);
  t = WaitAll(bg_, t);
  t = WaitAllWc(t);
  now_ = std::max(now_, t);
  const uint64_t line = machine_->LineBaseOf(addr);
  now_ = machine_->PublishLine(id_, line, now_) + config_.atomic_latency;
  Emit(TraceKind::kAtomic, addr, 8);
  auto* p = reinterpret_cast<uint64_t*>(machine_->HostPtr(addr));
  return std::atomic_ref<uint64_t>(*p).fetch_add(delta,
                                                 std::memory_order_acq_rel);
}

uint64_t Core::AtomicLoadU64(SimAddr addr) {
  PublishClock();
  const uint64_t line = machine_->LineBaseOf(addr);
  LineLoad(line);
  ++stats_.loads;
  ++icount_;
  Emit(TraceKind::kLoad, addr, 8);
  auto* p = reinterpret_cast<uint64_t*>(machine_->HostPtr(addr));
  return std::atomic_ref<uint64_t>(*p).load(std::memory_order_acquire);
}

void Core::AtomicStoreU64(SimAddr addr, uint64_t value) {
  PublishClock();
  ++stats_.atomics;
  ++icount_;
  // Release: prior stores must be visible first.
  const uint64_t t = DrainSbAll(now_);
  now_ = std::max(now_, t);
  const uint64_t line = machine_->LineBaseOf(addr);
  now_ = machine_->PublishLine(id_, line, now_) + config_.atomic_latency;
  Emit(TraceKind::kAtomic, addr, 8);
  auto* p = reinterpret_cast<uint64_t*>(machine_->HostPtr(addr));
  std::atomic_ref<uint64_t>(*p).store(value, std::memory_order_release);
}

// ---- Pre-stores ----

void Core::Prestore(SimAddr addr, size_t size, PrestoreOp op) {
  if (size == 0) {
    return;
  }
  const uint64_t ls = config_.line_size;
  const uint64_t first = LineBase(addr, ls);
  const uint64_t last = LineBase(addr + size - 1, ls);
  const std::vector<PrestoreHook*>& hooks = machine_->prestore_hooks();
  for (uint64_t line = first; line <= last; line += ls) {
    if (HasHooks()) {
      uint64_t delay = 0;
      bool drop = false;
      for (PrestoreHook* hook : hooks) {
        if (hook->OnPrestoreHint(id_, line, op, now_, &delay) ==
            HintFate::kDrop) {
          drop = true;
        }
      }
      now_ += delay;
      if (drop) {
        // A suppressed hint issues no instruction: the governor's check is
        // a predicted branch around the hint, so no issue cycle is charged.
        ++stats_.prestores_suppressed;
        continue;
      }
    }
    ++icount_;
    now_ += kStoreIssueCost;  // issuing a pre-store is ~1 cycle (§5)
    switch (op) {
      case PrestoreOp::kDemote: {
        ++stats_.prestores_demote;
        if (SbContains(line)) {
          SbRemove(line);
          PushBg(machine_->PublishLineDemote(id_, line, now_));
        } else {
          bool in_l1 = false;
          {
            // Residency check only — Peek so a useless demote hint can't
            // perturb the set's way hint.
            OptionalLockGuard lock(l1_mu_, LockFree());
            in_l1 = l1_.Peek(line) != nullptr;
          }
          if (in_l1) {
            PushBg(machine_->PublishLineDemote(id_, line, now_));
          } else {
            // Not in a private buffer and not in L1: nothing to demote.
            for (PrestoreHook* hook : hooks) {
              hook->OnUselessHint(id_, line, op);
            }
          }
        }
        break;
      }
      case PrestoreOp::kClean: {
        ++stats_.prestores_clean;
        if (SbContains(line)) {
          SbRemove(line);
          // The publication occupies a miss-handling slot; the writeback
          // occupies a write-combining slot.
          const uint64_t published = machine_->PublishLine(id_, line, now_);
          PushBg(published);
          PushWc(line, machine_->CleanLine(id_, line, published));
          if (HasHooks()) {
            NoteCleanedLine(line);
          }
        } else {
          const uint64_t c = machine_->CleanLine(id_, line, now_);
          if (c != now_) {
            PushWc(line, c);
            if (HasHooks()) {
              NoteCleanedLine(line);
            }
          } else {
            // The line was already clean: the hint moved nothing.
            for (PrestoreHook* hook : hooks) {
              hook->OnUselessHint(id_, line, op);
            }
          }
        }
        break;
      }
    }
    Emit(TraceKind::kPrestore, line, static_cast<uint32_t>(ls));
  }
}

void Core::StoreNt(SimAddr dst, const void* src, size_t size) {
  std::memcpy(machine_->HostPtr(dst), src, size);
  nt_used_ = true;
  const uint64_t ls = config_.line_size;
  SimAddr a = dst;
  size_t remaining = size;
  while (remaining > 0) {
    const uint64_t line = LineBase(a, ls);
    const size_t in_line = std::min<size_t>(remaining, line + ls - a);
    SbRemove(line);
    machine_->InvalidateLine(id_, line);
    if (!RecentlyNtWritten(line)) {
      recent_nt_[next_nt_] = line;
      next_nt_ = (next_nt_ + 1) % kRecentNt;
    }
    ++stats_.nt_lines;
    ++stats_.stores;
    const uint64_t chunk_cost = std::max<size_t>(1, in_line / 8);
    icount_ += chunk_cost;
    now_ += chunk_cost;
    PushWc(line, machine_->DeviceFor(line).Write(
                     line, static_cast<uint32_t>(in_line), now_));
    Emit(TraceKind::kNtStore, a, static_cast<uint32_t>(in_line));
    a += in_line;
    remaining -= in_line;
  }
}

void Core::StoreNtU64(SimAddr dst, uint64_t value) {
  StoreNt(dst, &value, 8);
}

}  // namespace prestore
