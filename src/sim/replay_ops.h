// Line-granular replay operations shared by the replay driver (replay.h)
// and the core's analytical fast-forward (Core::FastForwardOps): the op
// format is the unit the fast-forward classifies, so it must be visible to
// core.h without dragging in the full replay/harness machinery.
#ifndef SRC_SIM_REPLAY_OPS_H_
#define SRC_SIM_REPLAY_OPS_H_

#include <cstdint>

namespace prestore {

enum class ReplayOpKind : uint8_t {
  kLoad,   // one line-granular 8-byte load
  kStore,  // one line-granular 8-byte store
  kClean,  // clean pre-store sweep over [addr, addr + size)
};

struct ReplayOp {
  uint64_t addr = 0;
  uint32_t size = 0;  // kClean only: bytes covered by the sweep
  ReplayOpKind kind = ReplayOpKind::kLoad;
};

// The functional value a kStore replay op writes. One definition, used by
// both the slow path (replay.h RunOne) and Core::FastForwardOps, so the
// two paths can never write different backing-memory contents.
inline uint64_t ReplayStoreValue(uint64_t addr) {
  return addr ^ 0x5aa5a55aULL;
}

}  // namespace prestore

#endif  // SRC_SIM_REPLAY_OPS_H_
