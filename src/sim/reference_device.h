// Preserved pre-rework PMEM device implementation, kept as the behavioral
// reference for the indexed XPBuffer / cached-backlog fast path in
// PmemDevice (same pattern as src/sim/reference_cache.h for the SetBlock
// layout): a recency-ordered slot array scanned linearly with
// rotate-to-front on hit, an eager max-over-DIMMs backlog walk, and the
// per-line writeback train inherited from Device. MakeDevice returns this
// implementation when DeviceConfig::reference_impl is set; the equivalence
// suites (tests/device_equiv_test.cc, tests/meter_test.cc) and the tier-1
// miss-heavy smoke replay identical traces through both and require
// bit-identical digests, stats, and completion times.
//
// Deliberately NOT refactored to share code with PmemDevice: the value of
// the reference is that it cannot silently inherit a bug from the
// implementation it checks.
#ifndef SRC_SIM_REFERENCE_DEVICE_H_
#define SRC_SIM_REFERENCE_DEVICE_H_

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/sim/device.h"

namespace prestore {

class ReferencePmemDevice : public Device {
 public:
  explicit ReferencePmemDevice(const DeviceConfig& config)
      : Device(config), dimms_(std::max(1u, config.interleave_dimms)) {
    for (Dimm& d : dimms_) {
      d.slots.reserve(config.internal_buffer_blocks);
    }
  }

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override {
    uint64_t flushed = 0;
    const uint64_t delay = TouchBlock(addr, /*dirty=*/false, now, &flushed);
    const uint64_t start =
        ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
    {
      OptionalLockGuard lock(stats_mu_, LockFree());
      ++stats_.reads;
      stats_.bytes_read += bytes;
      stats_.media_bytes_written += flushed;
    }
    return start + config_.read_latency +
           static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
           FaultLatency(/*is_write=*/false, now);
  }

  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override {
    uint64_t flushed = 0;
    const uint64_t delay = TouchBlock(addr, /*dirty=*/true, now, &flushed);
    const uint64_t start =
        ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
    {
      OptionalLockGuard lock(stats_mu_, LockFree());
      ++stats_.writes;
      stats_.bytes_received += bytes;
      stats_.media_bytes_written += flushed;
    }
    return start + config_.write_latency +
           static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
           FaultLatency(/*is_write=*/true, now);
  }

  void Drain() override {
    std::lock_guard<std::mutex> slock(stats_mu_);
    for (Dimm& dimm : dimms_) {
      std::lock_guard<std::mutex> lock(dimm.mu);
      for (const BufferedBlock& entry : dimm.slots) {
        if (entry.dirty) {
          stats_.media_bytes_written += config_.internal_block_size;
        }
      }
      dimm.slots.clear();
    }
  }

  uint64_t InternalBacklogAt(uint64_t now) override {
    uint64_t max_backlog = 0;
    for (Dimm& d : dimms_) {
      max_backlog = std::max(max_backlog, d.media.BacklogAt(now));
    }
    return max_backlog;
  }

  void Quiesce() override {
    Device::Quiesce();
    for (Dimm& d : dimms_) {
      d.media.Quiesce();
    }
  }

 private:
  struct BufferedBlock {
    uint64_t block = 0;
    bool dirty = false;
    uint8_t written_mask = 0;
  };

  // One module: recency-ordered array — slots[0] is most recently used,
  // back() the LRU victim.
  struct Dimm {
    BandwidthMeter media;
    std::mutex mu;
    std::vector<BufferedBlock> slots;
  };

  uint64_t BlockWriteCost() const {
    return static_cast<uint64_t>(config_.internal_block_size *
                                 config_.media_cycles_per_byte *
                                 static_cast<double>(dimms_.size()));
  }

  uint64_t BlockReadCost() const {
    const double cpb = config_.media_read_cycles_per_byte > 0.0
                           ? config_.media_read_cycles_per_byte
                           : config_.media_cycles_per_byte / 3.0;
    return static_cast<uint64_t>(config_.internal_block_size * cpb *
                                 static_cast<double>(dimms_.size()));
  }

  Dimm& DimmFor(uint64_t addr) {
    return dimms_[(addr / config_.interleave_bytes) % dimms_.size()];
  }

  uint64_t TouchBlock(uint64_t addr, bool dirty, uint64_t now,
                      uint64_t* media_bytes_flushed) {
    Dimm& dimm = DimmFor(addr);
    const uint64_t block = addr / config_.internal_block_size;
    const uint64_t lines_per_block =
        std::max<uint64_t>(1, config_.internal_block_size / 64);
    const uint8_t full_mask =
        static_cast<uint8_t>((1u << lines_per_block) - 1);
    const uint8_t line_bit = static_cast<uint8_t>(
        1u << ((addr % config_.internal_block_size) / 64));
    uint64_t media_work = 0;
    uint32_t capacity = config_.internal_buffer_blocks;
    if (DeviceFaultHook* hook = fault_hook()) {
      const uint32_t stolen = hook->StolenBufferBlocks(now);
      capacity = stolen >= capacity ? 1 : capacity - stolen;
    }
    {
      OptionalLockGuard lock(dimm.mu, LockFree());
      std::vector<BufferedBlock>& slots = dimm.slots;
      const size_t n = slots.size();
      for (size_t i = 0; i < n; ++i) {
        if (slots[i].block == block) {
          BufferedBlock hit = slots[i];
          hit.dirty = hit.dirty || dirty;
          if (dirty) {
            hit.written_mask |= line_bit;
          }
          for (size_t j = i; j > 0; --j) {
            slots[j] = slots[j - 1];
          }
          slots[0] = hit;
          return 0;  // coalesced: served from the buffer, no media work
        }
      }
      while (slots.size() >= capacity) {
        const BufferedBlock victim = slots.back();
        slots.pop_back();
        if (victim.dirty) {
          media_work += BlockWriteCost();
          if ((victim.written_mask & full_mask) != full_mask) {
            media_work += BlockReadCost();
          }
          *media_bytes_flushed += config_.internal_block_size;
        }
      }
      slots.insert(slots.begin(),
                   BufferedBlock{block, dirty,
                                 dirty ? line_bit : static_cast<uint8_t>(0)});
      if (!dirty) {
        media_work += BlockReadCost();
      }
    }
    if (media_work == 0) {
      return 0;
    }
    if (DeviceFaultHook* hook = fault_hook()) {
      media_work = static_cast<uint64_t>(
          static_cast<double>(media_work) *
          std::max(1.0, hook->BandwidthCostMultiplier(now)));
    }
    return dimm.media.Reserve(media_work, now);
  }

  std::vector<Dimm> dimms_;
};

}  // namespace prestore

#endif  // SRC_SIM_REFERENCE_DEVICE_H_
