// Configuration of the cycle-approximate machine simulator, plus presets for
// the paper's two evaluation platforms (§3).
#ifndef SRC_SIM_CONFIG_H_
#define SRC_SIM_CONFIG_H_

#include <cstdint>
#include <string>

namespace prestore {

// Cache replacement policies. The paper (§4.1) stresses that real caches do
// NOT implement strict LRU: Intel LLCs use a pseudo-LRU with quasi-random
// evictions, ARM caches mix LRU / FIFO / random. kQuadAge approximates the
// Intel behaviour (2-bit ages, random choice among oldest).
enum class ReplacementPolicy : uint8_t {
  kLru,
  kTreePlru,
  kRandom,
  kFifo,
  kQuadAge,
};

// ---- SetBlock layout (src/sim/cache.h, DESIGN.md §14) ----
// SetAssocCache stores each set as ONE contiguous, kSetBlockAlign-aligned
// block: a fixed scalar header (PLRU bits, stamp counter, RNG state, way
// hint, valid count), the packed way tags (8 B per way), the packed
// replacement ages (1 B per way — kQuadAge victim scans never leave the
// header), padding up to the alignment, then the per-way CacheLineMeta
// records (32 B per way — static_asserted against sizeof(CacheLineMeta) in
// cache.h). The sizes are published here so CacheConfig::Validate can
// reject geometries whose block would blow the per-set budget before a
// cache is ever built.
inline constexpr uint64_t kSetBlockAlign = 64;
inline constexpr uint64_t kSetBlockScalarBytes = 32;
inline constexpr uint64_t kSetBlockTagBytes = 8;
inline constexpr uint64_t kSetBlockAgeBytes = 1;
inline constexpr uint64_t kSetBlockMetaBytes = 32;
// One host page per set block. Anything larger defeats the point of the
// layout (a lookup should touch one or two host lines, not a page walk).
inline constexpr uint64_t kSetBlockMaxBytes = 4096;

constexpr uint64_t SetBlockAlignUp(uint64_t v) {
  return (v + kSetBlockAlign - 1) & ~(kSetBlockAlign - 1);
}
// Byte offset of the CacheLineMeta array inside a SetBlock.
constexpr uint64_t SetBlockHeaderBytes(uint32_t ways) {
  return SetBlockAlignUp(kSetBlockScalarBytes +
                         (kSetBlockTagBytes + kSetBlockAgeBytes) * ways);
}
// Total bytes of one SetBlock (also the stride between consecutive sets).
constexpr uint64_t SetBlockBytes(uint32_t ways) {
  return SetBlockAlignUp(SetBlockHeaderBytes(ways) + kSetBlockMetaBytes * ways);
}

struct CacheConfig {
  uint64_t size_bytes = 0;
  uint32_t ways = 8;
  uint32_t line_size = 64;
  uint32_t hit_latency = 4;  // cycles
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  uint64_t NumSets() const {
    return size_bytes / (static_cast<uint64_t>(ways) * line_size);
  }

  // Throws std::invalid_argument (message prefixed with `what`) if the
  // geometry is unusable: line_size must be a nonzero power of two, the
  // SetBlock for `ways` must fit kSetBlockMaxBytes, ways in [1, 64]
  // (kQuadAge victim selection keeps one candidate slot per way in a fixed
  // 64-entry buffer; more ways would silently overflow it), kTreePlru needs
  // power-of-two ways, and the cache must hold at least one set.
  void Validate(const char* what) const;
};

enum class DeviceKind : uint8_t {
  kDram,
  kPmem,       // Optane-like: internal write granularity > CPU line size
  kFarMemory,  // CXL / cache-coherent FPGA: long latency, directory on device
};

struct DeviceConfig {
  DeviceKind kind = DeviceKind::kDram;
  std::string name = "dram";
  uint64_t capacity = 1ULL << 30;

  uint32_t read_latency = 80;   // cycles until first data
  uint32_t write_latency = 80;  // cycles to accept a write into device buffers
  double cycles_per_byte = 0.04;  // interface bandwidth (reservation model)

  // kPmem only: internal write-combining buffer in front of the media.
  // 64B cache-line writebacks that land in a buffered 256B block coalesce;
  // buffer evictions write a full internal block to the media (the source of
  // write amplification, §4.1).
  uint32_t internal_block_size = 256;
  // Per-DIMM write-combining slots (the XPBuffer of one module).
  uint32_t internal_buffer_blocks = 8;
  // Address interleaving across modules: sequential streams stay within one
  // module's buffer for an interleave unit; scattered traffic thrashes all.
  uint32_t interleave_dimms = 8;
  uint32_t interleave_bytes = 4096;
  double media_cycles_per_byte = 0.45;  // media write bandwidth
  // Media read bandwidth: Optane media reads are ~3x faster than writes.
  // 0 = derive as media_cycles_per_byte / 3.
  double media_read_cycles_per_byte = 0.0;

  // kFarMemory only: cost of a cache-directory access. The paper (§4.2)
  // observes that the directory for device-backed lines lives on the device
  // itself, so every line-state change pays device latency.
  uint32_t directory_latency = 60;

  // Selects the preserved pre-rework device implementation (linear XPBuffer
  // scan, eager per-DIMM backlog walk, per-line writeback trains — see
  // src/sim/reference_device.h) instead of the indexed fast path. The two
  // must produce bit-identical machine digests; equivalence suites and the
  // tier-1 miss-heavy smoke run both and compare. Reference-path runs also
  // disable the analytical fast-forward at the call sites that honor this
  // flag (sim_throughput_cli --device-path=reference), giving a fully
  // interpreted A/B baseline.
  bool reference_impl = false;
};

// How the core drains its store buffer (private write buffers, §4.2).
enum class StoreDrainPolicy : uint8_t {
  // x86/TSO-like: stores become globally visible eagerly, in the background.
  kEagerTso,
  // Weakly-ordered ARM-like: stores stay private until capacity pressure, a
  // pre-store, or a fence/atomic forces publication.
  kLazyWeak,
};

struct MachineConfig {
  std::string name = "machine";
  uint32_t num_cores = 4;
  uint32_t line_size = 64;
  uint64_t seed = 42;

  CacheConfig l1;
  CacheConfig llc;

  uint32_t store_buffer_entries = 56;
  uint32_t wc_buffer_entries = 12;       // write-combining slots for clean/NT
  uint32_t max_background_ops = 16;      // outstanding async publications
  uint32_t fence_drain_parallelism = 4;  // overlapping publications at a fence
  uint32_t snoop_latency = 30;           // cross-core L1 intervention cost
  uint32_t atomic_latency = 15;          // execution cost of an atomic op
  StoreDrainPolicy drain = StoreDrainPolicy::kEagerTso;

  DeviceConfig dram;
  DeviceConfig target;  // the "interesting" memory under the caches

  // Capacities of the two address regions (backing host buffers).
  uint64_t dram_region_bytes = 64ULL << 20;
  uint64_t target_region_bytes = 512ULL << 20;
};

// Machine A (§3): 2-socket Xeon Gold 6230 + Optane NV-DIMMs. The CPU caches
// at 64B granularity; the PMEM internally writes 256B blocks. Cache sizes are
// scaled down ~8x from the real part so that benchmark working sets (also
// scaled) keep the same cache-to-working-set ratios while simulating fast.
MachineConfig MachineA(uint32_t num_cores = 10);

// Machine B (§3): Enzian — 48-core ThunderX-1 (128B cache lines, weak memory
// model) in front of cache-coherent FPGA memory. Two latency configurations.
MachineConfig MachineBFast(uint32_t num_cores = 10);
MachineConfig MachineBSlow(uint32_t num_cores = 10);

// Extension (Table 1): Machine A with a CXL-SSD-like target instead of
// PMEM — 512B internal blocks (current CXL SSD technology), higher latency,
// lower media bandwidth. The write-amplification ceiling doubles to 8x.
MachineConfig MachineACxlSsd(uint32_t num_cores = 10);

}  // namespace prestore

#endif  // SRC_SIM_CONFIG_H_
