// Set-associative cache model with pluggable replacement policies.
//
// The cache stores timing/coherence metadata only — data always lives in the
// machine's backing host memory (functional-first simulation). Locking is
// external: Machine shards the LLC by set index; each L1 has its own mutex.
#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/sim/config.h"

namespace prestore {

inline constexpr uint8_t kNoOwner = 0xff;

struct CacheLineMeta {
  uint64_t line_addr = 0;  // byte address of the line start
  bool valid = false;
  bool dirty = false;
  // L1-only: the core may write without a coherence action (E/M vs S).
  bool exclusive = false;
  // LLC-only directory info for the private L1s above it.
  uint8_t owner = kNoOwner;  // core holding the line Modified in its L1
  uint64_t sharers = 0;      // bitmask of cores with an L1 copy
  // Replacement metadata.
  uint8_t age = 0;      // kQuadAge
  uint64_t stamp = 0;   // kLru (last touch) / kFifo (fill order)
};

class SetAssocCache {
 public:
  struct Victim {
    bool valid = false;
    uint64_t line_addr = 0;
    bool dirty = false;
    uint8_t owner = kNoOwner;
    uint64_t sharers = 0;
  };

  SetAssocCache(const CacheConfig& config, uint64_t seed);

  uint64_t SetIndexOf(uint64_t line_addr) const {
    return (line_addr / config_.line_size) % num_sets_;
  }

  // Probe without updating replacement state. Returns nullptr on miss.
  CacheLineMeta* Probe(uint64_t line_addr);
  const CacheLineMeta* Probe(uint64_t line_addr) const;

  // Probe and, on a hit, mark the line most-recently-used.
  CacheLineMeta* Touch(uint64_t line_addr);

  // Allocates a line (which must not be present). Returns the evicted victim,
  // if any. The returned reference `out_line` points at the new line's meta.
  Victim Insert(uint64_t line_addr, bool dirty, CacheLineMeta** out_line);

  // Invalidates the line if present. Returns true if it was present (and
  // fills `was` with its pre-invalidation metadata when non-null).
  bool Remove(uint64_t line_addr, CacheLineMeta* was = nullptr);

  // Marks a present line as aged (demoted lines should leave soon but the
  // paper's ops keep data cached, so we only age, never invalidate).
  void AgeLine(uint64_t line_addr);

  const CacheConfig& config() const { return config_; }
  uint64_t num_sets() const { return num_sets_; }

  // Enumerate valid lines (diagnostics / tests).
  std::vector<uint64_t> ValidLines() const;

 private:
  CacheLineMeta* SetBase(uint64_t set) { return &lines_[set * config_.ways]; }
  const CacheLineMeta* SetBase(uint64_t set) const {
    return &lines_[set * config_.ways];
  }

  void TouchWay(uint64_t set, uint32_t way);
  uint32_t PickVictim(uint64_t set);

  // Tree-PLRU helpers (ways must be a power of two).
  void PlruTouch(uint64_t set, uint32_t way);
  uint32_t PlruVictim(uint64_t set) const;

  uint64_t NextRand(uint64_t set);

  CacheConfig config_;
  uint64_t num_sets_;
  std::vector<CacheLineMeta> lines_;
  std::vector<uint64_t> plru_bits_;   // one word per set
  std::vector<uint64_t> set_stamp_;   // per-set monotonic counter
  std::vector<uint64_t> set_rng_;     // per-set xorshift state
};

}  // namespace prestore

#endif  // SRC_SIM_CACHE_H_
