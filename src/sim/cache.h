// Set-associative cache model with pluggable replacement policies.
//
// The cache stores timing/coherence metadata only — data always lives in the
// machine's backing host memory (functional-first simulation). Locking is
// external: Machine gives each LLC shard its own mutex; each L1 has its own
// mutex.
//
// A cache can be constructed either as a whole (the L1 case) or as a SHARD
// VIEW over every `stride`-th set of a larger logical cache (the LLC case:
// Machine builds kNumShards views so each shard owns its sets, replacement
// state and lock outright). A shard view behaves exactly like the
// corresponding sets of the monolithic cache: per-set RNG streams are drawn
// from the same global-set-order SplitMix64 sequence, so for any fixed
// access sequence the victim choices are bit-identical to the unsharded
// cache (the determinism guard in tests/sim_determinism_test.cc relies on
// this).
#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/sim/config.h"

namespace prestore {

inline constexpr uint8_t kNoOwner = 0xff;

struct CacheLineMeta {
  uint64_t line_addr = 0;  // byte address of the line start
  bool valid = false;
  bool dirty = false;
  // L1-only: the core may write without a coherence action (E/M vs S).
  bool exclusive = false;
  // LLC-only directory info for the private L1s above it.
  uint8_t owner = kNoOwner;  // core holding the line Modified in its L1
  uint64_t sharers = 0;      // bitmask of cores with an L1 copy
  // Replacement metadata.
  uint8_t age = 0;      // kQuadAge
  uint64_t stamp = 0;   // kLru (last touch) / kFifo (fill order)
};

class SetAssocCache {
 public:
  struct Victim {
    bool valid = false;
    uint64_t line_addr = 0;
    bool dirty = false;
    uint8_t owner = kNoOwner;
    uint64_t sharers = 0;
  };

  // Whole cache: owns every set. Validates `config` (throws
  // std::invalid_argument, see CacheConfig::Validate).
  SetAssocCache(const CacheConfig& config, uint64_t seed);

  // Shard view: owns the global sets {shard, shard + stride, ...} of the
  // logical cache described by `config`. `stride` must be a power of two.
  // Per-set RNG state is drawn from the same seed stream as the whole
  // cache's, in global set order, so replacement decisions match the
  // monolithic cache set-for-set.
  SetAssocCache(const CacheConfig& config, uint64_t seed, uint64_t shard,
                uint64_t stride);

  // Set index of `line_addr` in the full logical cache.
  uint64_t GlobalSetOf(uint64_t line_addr) const {
    const uint64_t frame = line_addr >> line_shift_;
    return global_set_mask_ != 0 ? (frame & global_set_mask_)
                                 : frame % global_sets_;
  }

  // Index into this instance's sets (== GlobalSetOf for a whole cache). The
  // line must map to this shard.
  uint64_t SetIndexOf(uint64_t line_addr) const {
    return GlobalSetOf(line_addr) >> stride_shift_;
  }

  // Host-side prefetch of the set's lookup structures (packed tags and the
  // way metadata an ensuing Probe/Touch/Insert will dereference). A pure
  // hardware hint: no simulated or replacement state changes, safe to call
  // for any line regardless of residency or locking.
  void PrefetchSet(uint64_t line_addr) const {
    const uint64_t set = SetIndexOf(line_addr);
    const uint64_t* tags = &tags_[set * config_.ways];
    for (uint32_t b = 0; b < config_.ways * sizeof(*tags); b += 64) {
      __builtin_prefetch(reinterpret_cast<const char*>(tags) + b, 0, 2);
    }
    // The way metadata spans too many host lines to pull wholesale; the
    // set's last-hit way is the one a hit will dereference far more often
    // than 1/ways (skewed access streams re-hit hot ways), so warm that.
    const uint8_t hint = way_hint_[set];
    if (hint != kNoHint) {
      __builtin_prefetch(&lines_[set * config_.ways + hint], 1, 2);
    }
  }

  // Probe without updating replacement state. Returns nullptr on miss.
  // (Defined inline below — FindWay dominates every simulated access.)
  CacheLineMeta* Probe(uint64_t line_addr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    way_hint_[set] = static_cast<uint8_t>(w);
    return &SetBase(set)[w];
  }
  const CacheLineMeta* Probe(uint64_t line_addr) const {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    return w == kWayNone ? nullptr : &SetBase(set)[w];
  }

  // Probe and, on a hit, mark the line most-recently-used.
  CacheLineMeta* Touch(uint64_t line_addr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    way_hint_[set] = static_cast<uint8_t>(w);
    TouchWay(set, w);
    return &SetBase(set)[w];
  }

  // Allocates a line (which must not be present). Returns the evicted victim,
  // if any. The returned reference `out_line` points at the new line's meta.
  Victim Insert(uint64_t line_addr, bool dirty, CacheLineMeta** out_line);

  // Invalidates the line if present. Returns true if it was present (and
  // fills `was` with its pre-invalidation metadata when non-null).
  bool Remove(uint64_t line_addr, CacheLineMeta* was = nullptr);

  // Marks a present line as aged (demoted lines should leave soon but the
  // paper's ops keep data cached, so we only age, never invalidate).
  void AgeLine(uint64_t line_addr);

  const CacheConfig& config() const { return config_; }
  // Sets owned by this instance (the full cache when stride == 1).
  uint64_t num_sets() const { return num_sets_; }
  // Sets of the full logical cache.
  uint64_t global_sets() const { return global_sets_; }

  // Direct access to one owned set's way array (FlushAll, diagnostics).
  // External locking rules apply, as for Probe.
  CacheLineMeta* SetData(uint64_t set) { return SetBase(set); }
  const CacheLineMeta* SetData(uint64_t set) const { return SetBase(set); }

  // Enumerate valid lines (diagnostics / tests), set-major way-minor.
  std::vector<uint64_t> ValidLines() const;

 private:
  static constexpr uint32_t kWayNone = ~0u;
  static constexpr uint8_t kNoHint = 0xff;
  // Tag value for an invalid way. Line addresses are line-aligned, so the
  // all-ones pattern can never collide with a real line.
  static constexpr uint64_t kInvalidTag = ~0ULL;

  CacheLineMeta* SetBase(uint64_t set) { return &lines_[set * config_.ways]; }
  const CacheLineMeta* SetBase(uint64_t set) const {
    return &lines_[set * config_.ways];
  }

  // The single lookup primitive both Probe overloads and Touch share: way
  // holding `line_addr` in `set`, or kWayNone. Scans the packed per-set tag
  // array — one contiguous u64 per way, invalid ways hold kInvalidTag — so
  // the common miss costs `ways` adjacent compares instead of striding
  // through the 40-byte metadata structs. Checks the set's last-hit way
  // first — at most one way can match a line address, so the hint is a pure
  // accelerator and cannot change any outcome.
  uint32_t FindWay(uint64_t set, uint64_t line_addr) const {
    const uint64_t* tags = &tags_[set * config_.ways];
    const uint8_t hint = way_hint_[set];
    if (hint != kNoHint && tags[hint] == line_addr) {
      return hint;
    }
    for (uint32_t w = 0; w < config_.ways; ++w) {
      if (tags[w] == line_addr) {
        return w;
      }
    }
    return kWayNone;
  }

  // Replacement-state update for a hit (inline: runs on every cache hit).
  void TouchWay(uint64_t set, uint32_t way) {
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
        SetBase(set)[way].stamp = ++set_stamp_[set];
        break;
      case ReplacementPolicy::kTreePlru:
        PlruTouch(set, way);
        break;
      case ReplacementPolicy::kQuadAge:
        SetBase(set)[way].age = 0;
        break;
      case ReplacementPolicy::kFifo:
      case ReplacementPolicy::kRandom:
        break;  // hits do not update replacement state
    }
  }

  uint32_t PickVictim(uint64_t set);

  // Tree-PLRU helpers (ways must be a power of two).
  void PlruTouch(uint64_t set, uint32_t way) {
    // Classic binary-tree pseudo-LRU: flip internal nodes to point away
    // from the touched way. Node 1 is the root; leaves correspond to ways.
    uint64_t bits = plru_bits_[set];
    uint32_t node = 1;
    uint32_t span = config_.ways;
    while (span > 1) {
      span /= 2;
      const bool right = (way % (span * 2)) >= span;
      if (right) {
        bits |= (1ULL << node);  // 1 = "left is older"
      } else {
        bits &= ~(1ULL << node);
      }
      node = node * 2 + (right ? 1 : 0);
    }
    plru_bits_[set] = bits;
  }
  uint32_t PlruVictim(uint64_t set) const;

  uint64_t NextRand(uint64_t set);

  CacheConfig config_;
  uint64_t global_sets_;
  uint64_t num_sets_;
  // Fast indexing: line_size is a power of two (validated); sets usually are.
  uint32_t line_shift_;
  uint64_t global_set_mask_;  // global_sets_ - 1 when a power of two, else 0
  uint32_t stride_shift_;     // log2(stride)
  uint64_t shard_;

  std::vector<CacheLineMeta> lines_;
  // Packed lookup tags, mirroring lines_[i].line_addr (kInvalidTag when the
  // way is invalid). Kept in sync by Insert/Remove; FindWay scans only this.
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> plru_bits_;   // one word per set
  std::vector<uint64_t> set_stamp_;   // per-set monotonic counter
  std::vector<uint64_t> set_rng_;     // per-set xorshift state
  std::vector<uint8_t> way_hint_;     // per-set last-hit way (kNoHint = none)
  // Valid ways per set: lets PickVictim skip the invalid-way scan once a
  // set is full (the steady state for every warm set).
  std::vector<uint8_t> valid_count_;
};

}  // namespace prestore

#endif  // SRC_SIM_CACHE_H_
