// Set-associative cache model with pluggable replacement policies.
//
// The cache stores timing/coherence metadata only — data always lives in the
// machine's backing host memory (functional-first simulation). Locking is
// external: Machine gives each LLC shard its own mutex; each L1 has its own
// mutex.
//
// A cache can be constructed either as a whole (the L1 case) or as a SHARD
// VIEW over every `stride`-th set of a larger logical cache (the LLC case:
// Machine builds kNumShards views so each shard owns its sets, replacement
// state and lock outright). A shard view behaves exactly like the
// corresponding sets of the monolithic cache: per-set RNG streams are drawn
// from the same global-set-order SplitMix64 sequence, so for any fixed
// access sequence the victim choices are bit-identical to the unsharded
// cache (the determinism guard in tests/sim_determinism_test.cc relies on
// this).
//
// SetBlock layout (DESIGN.md §14): every set is ONE contiguous,
// kSetBlockAlign-aligned block —
//
//   offset 0                    32           32+8w        SetBlockHeaderBytes
//   | SetScalars (32 B)         | tags[ways] | ages[ways] | pad | meta[ways]
//   | plru,stamp,rng,hint,valid | 8 B/way    | 1 B/way    |     | 32 B/way
//
// so one lookup touches one or two host lines (header + the hit way's meta)
// instead of striding across five parallel arrays. The layout is a pure
// host-side transform: replacement decisions, RNG draw order and every
// simulated outcome are bit-identical to the old parallel-array form
// (pinned by tests/cache_layout_equiv_test.cc against the reference
// implementation in src/sim/reference_cache.h).
#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/sim/config.h"
#include "src/util/fastdiv.h"

namespace prestore {

inline constexpr uint8_t kNoOwner = 0xff;

struct CacheLineMeta {
  uint64_t line_addr = 0;  // byte address of the line start
  bool valid = false;
  bool dirty = false;
  // L1-only: the core may write without a coherence action (E/M vs S).
  bool exclusive = false;
  // LLC-only directory info for the private L1s above it.
  uint8_t owner = kNoOwner;  // core holding the line Modified in its L1
  uint64_t sharers = 0;      // bitmask of cores with an L1 copy
  // Replacement metadata. The kQuadAge age lives in the SetBlock header's
  // packed age array, not here, so victim scans stay within the header.
  uint64_t stamp = 0;  // kLru (last touch) / kFifo (fill order)
};

// The SetBlock budget maths in CacheConfig::Validate assumes this exact
// record size; a field added here must bump kSetBlockMetaBytes with it.
static_assert(sizeof(CacheLineMeta) == kSetBlockMetaBytes,
              "CacheLineMeta size drifted from kSetBlockMetaBytes");
static_assert(alignof(CacheLineMeta) <= kSetBlockAlign,
              "CacheLineMeta over-aligned for the SetBlock layout");

class SetAssocCache {
 public:
  struct Victim {
    bool valid = false;
    uint64_t line_addr = 0;
    bool dirty = false;
    uint8_t owner = kNoOwner;
    uint64_t sharers = 0;
  };

  // Whole cache: owns every set. Validates `config` (throws
  // std::invalid_argument, see CacheConfig::Validate).
  SetAssocCache(const CacheConfig& config, uint64_t seed);

  // Shard view: owns the global sets {shard, shard + stride, ...} of the
  // logical cache described by `config`. `stride` must be a power of two.
  // Per-set RNG state is drawn from the same seed stream as the whole
  // cache's, in global set order, so replacement decisions match the
  // monolithic cache set-for-set.
  SetAssocCache(const CacheConfig& config, uint64_t seed, uint64_t shard,
                uint64_t stride);

  // Set index of `line_addr` in the full logical cache. Power-of-two set
  // counts mask; irregular ones use the precomputed magic-multiply
  // reciprocal instead of a hardware divide.
  uint64_t GlobalSetOf(uint64_t line_addr) const {
    const uint64_t frame = line_addr >> line_shift_;
    return global_set_mask_ != 0 ? (frame & global_set_mask_)
                                 : set_mod_.Mod(frame);
  }

  // Index into this instance's sets (== GlobalSetOf for a whole cache). The
  // line must map to this shard.
  uint64_t SetIndexOf(uint64_t line_addr) const {
    return GlobalSetOf(line_addr) >> stride_shift_;
  }

  // Host-side prefetch of the set's SetBlock base line — scalars plus the
  // leading tags, i.e. everything a hinted lookup reads — and the hinted
  // way's metadata record, the line a hit will dereference. Skewed access
  // streams re-hit hot ways far more often than 1/ways, so the two lines
  // cover the common case; a hint miss pulls the remaining tag lines on
  // demand (they are adjacent in the same block, unlike the old parallel
  // arrays). A pure hardware hint: no simulated or replacement state
  // changes, safe to call for any line regardless of residency or locking.
  void PrefetchSet(uint64_t line_addr) const {
    const unsigned char* blk = Block(SetIndexOf(line_addr));
    __builtin_prefetch(blk, 0, 2);
    const uint8_t hint = ScalarsIn(blk).way_hint;
    if (hint != kNoHint) {
      __builtin_prefetch(blk + meta_offset_ + hint * sizeof(CacheLineMeta), 1,
                         2);
    }
  }

  // Host-side prefetch of the SetBlock header (scalars, tags, ages) by
  // raw address arithmetic — reads NOTHING from the block, so it can be
  // issued for a stone-cold set without stalling the issuing op. No
  // simulated or replacement state changes; safe for any line regardless
  // of residency. Pure hardware hint, like PrefetchSet.
  void PrefetchSetHeader(uint64_t line_addr) const {
    const unsigned char* blk = Block(SetIndexOf(line_addr));
    for (uint64_t b = 0; b < meta_offset_; b += kSetBlockAlign) {
      __builtin_prefetch(blk + b, 1, 2);
    }
  }

  // Host-side prefetch of the whole header plus the hinted meta record. A
  // miss-dominated stream defeats the hinted two-line PrefetchSet: the
  // full tag scan a miss performs walks every tag line, and each uncovered
  // line is a dependent host-memory stall. Callers gate it on an observed
  // miss-heavy phase so hit-dominated streams keep the cheap variant.
  // Pure hardware hint, like PrefetchSet.
  void PrefetchSetAll(uint64_t line_addr) const {
    const unsigned char* blk = Block(SetIndexOf(line_addr));
    for (uint64_t b = 0; b < meta_offset_; b += kSetBlockAlign) {
      __builtin_prefetch(blk + b, 1, 2);
    }
    const uint8_t hint = ScalarsIn(blk).way_hint;
    if (hint != kNoHint) {
      __builtin_prefetch(blk + meta_offset_ + hint * sizeof(CacheLineMeta), 1,
                         2);
    }
  }

  // Host-side peek at the line Insert would evict, for prefetching the
  // victim's downstream state before the (long) device leg runs. Only
  // policies whose victim choice is a pure function of current state can
  // be peeked (kTreePlru, kLru, kFifo); kRandom/kQuadAge draw from the
  // per-set RNG, which a peek must not advance, so they return nullptr
  // (as does a set with a free way: its victim is invalid, no writeback).
  // Const and mutation-free — a wrong or missing peek costs nothing.
  const CacheLineMeta* PeekVictimMeta(uint64_t line_addr) const {
    const unsigned char* blk = Block(SetIndexOf(line_addr));
    if (ScalarsIn(blk).valid_count < config_.ways) {
      return nullptr;
    }
    uint32_t way;
    switch (config_.policy) {
      case ReplacementPolicy::kTreePlru:
        way = PlruVictim(blk);
        break;
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo: {
        const CacheLineMeta* base = MetaIn(blk);
        way = 0;
        for (uint32_t w = 1; w < config_.ways; ++w) {
          if (base[w].stamp < base[way].stamp) {
            way = w;
          }
        }
        break;
      }
      default:
        return nullptr;
    }
    const CacheLineMeta* meta = &MetaIn(blk)[way];
    return meta->valid ? meta : nullptr;
  }

  // Probe without updating replacement state. Returns nullptr on miss.
  // (Defined inline below — FindWay dominates every simulated access.)
  //
  // DELIBERATE asymmetry with the const overload: a non-const Probe caches
  // the hit way in the set's way hint (a pure host-side accelerator — at
  // most one way can match a line, so the hint cannot change any simulated
  // outcome), while the const overload is Peek and never writes anything.
  CacheLineMeta* Probe(uint64_t line_addr) {
    unsigned char* blk = Block(SetIndexOf(line_addr));
    const uint32_t w = FindWayIn(blk, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    ScalarsIn(blk).way_hint = static_cast<uint8_t>(w);
    return &MetaIn(blk)[w];
  }

  // Read-only probe: never updates the way hint (or any other state), so
  // observers — DirtBuster residency checks, the region monitor's pull
  // probes — can't perturb hint state, and therefore host-side lookup
  // behaviour, by accident.
  const CacheLineMeta* Peek(uint64_t line_addr) const {
    const unsigned char* blk = Block(SetIndexOf(line_addr));
    const uint32_t w = FindWayIn(blk, line_addr);
    return w == kWayNone ? nullptr : &MetaIn(blk)[w];
  }
  const CacheLineMeta* Probe(uint64_t line_addr) const {
    return Peek(line_addr);
  }

  // Probe and, on a hit, mark the line most-recently-used.
  CacheLineMeta* Touch(uint64_t line_addr) {
    unsigned char* blk = Block(SetIndexOf(line_addr));
    const uint32_t w = FindWayIn(blk, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    ScalarsIn(blk).way_hint = static_cast<uint8_t>(w);
    TouchWay(blk, w);
    return &MetaIn(blk)[w];
  }

  // Allocates a line (which must not be present). Returns the evicted victim,
  // if any. The returned reference `out_line` points at the new line's meta.
  // (Defined inline below — with PickVictim it runs on every simulated miss,
  // and on a miss-dominated stream the pair is the hottest code after
  // FindWay.)
  Victim Insert(uint64_t line_addr, bool dirty, CacheLineMeta** out_line) {
    unsigned char* blk = Block(SetIndexOf(line_addr));
    const uint32_t way = PickVictim(blk);
    CacheLineMeta& slot = MetaIn(blk)[way];

    Victim victim;
    if (slot.valid) {
      victim.valid = true;
      victim.line_addr = slot.line_addr;
      victim.dirty = slot.dirty;
      victim.owner = slot.owner;
      victim.sharers = slot.sharers;
    } else {
      ++ScalarsIn(blk).valid_count;
    }

    TagsIn(blk)[way] = line_addr;
    AgesIn(blk)[way] = 0;
    slot = CacheLineMeta{};
    slot.line_addr = line_addr;
    slot.valid = true;
    slot.dirty = dirty;
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo:
        slot.stamp = ++ScalarsIn(blk).stamp;
        break;
      case ReplacementPolicy::kTreePlru:
        PlruTouch(blk, way);
        break;
      case ReplacementPolicy::kQuadAge:
        // Inserted slightly aged; re-referenced lines go back to 0.
        AgesIn(blk)[way] = 1;
        break;
      case ReplacementPolicy::kRandom:
        break;
    }
    ScalarsIn(blk).way_hint = static_cast<uint8_t>(way);
    if (out_line != nullptr) {
      *out_line = &slot;
    }
    return victim;
  }

  // Invalidates the line if present. Returns true if it was present (and
  // fills `was` with its pre-invalidation metadata when non-null).
  bool Remove(uint64_t line_addr, CacheLineMeta* was = nullptr);

  // Marks a present line as aged (demoted lines should leave soon but the
  // paper's ops keep data cached, so we only age, never invalidate).
  void AgeLine(uint64_t line_addr);

  const CacheConfig& config() const { return config_; }
  // Sets owned by this instance (the full cache when stride == 1).
  uint64_t num_sets() const { return num_sets_; }
  // Sets of the full logical cache.
  uint64_t global_sets() const { return global_sets_; }

  // Direct access to one owned set's way array (FlushAll, diagnostics).
  // External locking rules apply, as for Probe.
  CacheLineMeta* SetData(uint64_t set) { return MetaOf(set); }
  const CacheLineMeta* SetData(uint64_t set) const { return MetaOf(set); }

  // Enumerate valid lines (diagnostics / tests), set-major way-minor.
  std::vector<uint64_t> ValidLines() const;

  // The set's last-hit way, 0xff when unset (tests / diagnostics only — the
  // hint is host-side state and not part of any simulated outcome).
  uint8_t DebugWayHint(uint64_t set) const { return ScalarsOf(set).way_hint; }
  // The packed kQuadAge age of (set, way) (tests / diagnostics only).
  uint8_t DebugAge(uint64_t set, uint32_t way) const {
    return AgesIn(Block(set))[way];
  }

 private:
  static constexpr uint32_t kWayNone = ~0u;
  static constexpr uint8_t kNoHint = 0xff;
  // Tag value for an invalid way. Line addresses are line-aligned, so the
  // all-ones pattern can never collide with a real line.
  static constexpr uint64_t kInvalidTag = ~0ULL;

  // Per-set scalar replacement state, packed into the first half host line
  // of the SetBlock so the tag scan and the hint/stamp/RNG updates share
  // one line fill.
  struct SetScalars {
    uint64_t plru_bits = 0;  // kTreePlru internal tree bits
    uint64_t stamp = 0;      // kLru/kFifo monotonic stamp counter
    uint64_t rng = 0;        // per-set xorshift64 victim-RNG state
    uint8_t way_hint = kNoHint;
    uint8_t valid_count = 0;
    uint8_t pad[6] = {};
  };
  static_assert(sizeof(SetScalars) == kSetBlockScalarBytes,
                "SetScalars size drifted from kSetBlockScalarBytes");

  // 64-byte chunks give the vector's buffer the block alignment; all block
  // offsets are multiples of kSetBlockAlign so per-set pointers stay
  // aligned too.
  struct alignas(kSetBlockAlign) Chunk {
    unsigned char bytes[kSetBlockAlign];
  };

  // Block accessors. The vector never reallocates after construction, and
  // a moved-from vector hands its buffer over, so recomputing from data()
  // is always correct (and free: one load).
  unsigned char* Block(uint64_t set) const {
    auto* base =
        reinterpret_cast<unsigned char*>(const_cast<Chunk*>(blocks_.data()));
    return base + set * block_bytes_;
  }
  static SetScalars& ScalarsIn(unsigned char* blk) {
    return *reinterpret_cast<SetScalars*>(blk);
  }
  static const SetScalars& ScalarsIn(const unsigned char* blk) {
    return *reinterpret_cast<const SetScalars*>(blk);
  }
  static uint64_t* TagsIn(unsigned char* blk) {
    return reinterpret_cast<uint64_t*>(blk + sizeof(SetScalars));
  }
  static const uint64_t* TagsIn(const unsigned char* blk) {
    return reinterpret_cast<const uint64_t*>(blk + sizeof(SetScalars));
  }
  // Packed kQuadAge ages, one byte per way, right after the tags.
  uint8_t* AgesIn(unsigned char* blk) const { return blk + ages_offset_; }
  const uint8_t* AgesIn(const unsigned char* blk) const {
    return blk + ages_offset_;
  }
  CacheLineMeta* MetaIn(unsigned char* blk) const {
    return reinterpret_cast<CacheLineMeta*>(blk + meta_offset_);
  }
  const CacheLineMeta* MetaIn(const unsigned char* blk) const {
    return reinterpret_cast<const CacheLineMeta*>(blk + meta_offset_);
  }
  SetScalars& ScalarsOf(uint64_t set) const { return ScalarsIn(Block(set)); }
  CacheLineMeta* MetaOf(uint64_t set) const { return MetaIn(Block(set)); }

  // The single lookup primitive Probe/Peek/Touch share: way holding
  // `line_addr` in the set whose block is `blk`, or kWayNone. Checks the
  // set's last-hit way first — at most one way can match a line address, so
  // the hint is a pure accelerator and cannot change any outcome — then
  // scans the packed tag array four ways at a time, accumulating compare
  // results into a mask so the loop body is branch-free until a match
  // exists (invalid ways hold kInvalidTag and never match).
  uint32_t FindWayIn(const unsigned char* blk, uint64_t line_addr) const {
    const uint64_t* tags = TagsIn(blk);
    const uint8_t hint = ScalarsIn(blk).way_hint;
    if (hint != kNoHint && tags[hint] == line_addr) {
      return hint;
    }
    const uint32_t ways = config_.ways;
    uint32_t w = 0;
    for (; w + 4 <= ways; w += 4) {
      const uint32_t mask = (tags[w] == line_addr ? 1u : 0u) |
                            (tags[w + 1] == line_addr ? 2u : 0u) |
                            (tags[w + 2] == line_addr ? 4u : 0u) |
                            (tags[w + 3] == line_addr ? 8u : 0u);
      if (mask != 0) {
        return w + static_cast<uint32_t>(__builtin_ctz(mask));
      }
    }
    for (; w < ways; ++w) {
      if (tags[w] == line_addr) {
        return w;
      }
    }
    return kWayNone;
  }

  // Replacement-state update for a hit (inline: runs on every cache hit).
  void TouchWay(unsigned char* blk, uint32_t way) {
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
        MetaIn(blk)[way].stamp = ++ScalarsIn(blk).stamp;
        break;
      case ReplacementPolicy::kTreePlru:
        PlruTouch(blk, way);
        break;
      case ReplacementPolicy::kQuadAge:
        AgesIn(blk)[way] = 0;
        break;
      case ReplacementPolicy::kFifo:
      case ReplacementPolicy::kRandom:
        break;  // hits do not update replacement state
    }
  }

  // Victim choice for Insert. Inline for the same reason as Insert; the
  // policy algebra is documented per-case below.
  uint32_t PickVictim(unsigned char* blk) {
    CacheLineMeta* base = MetaIn(blk);
    // Invalid ways first. Warm sets are full, so the scan is skipped for
    // them (valid_count tracks exactly how many ways hold a line).
    if (ScalarsIn(blk).valid_count < config_.ways) {
      const uint64_t* tags = TagsIn(blk);
      for (uint32_t w = 0; w < config_.ways; ++w) {
        if (tags[w] == kInvalidTag) {
          return w;
        }
      }
    }
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo: {
        uint32_t victim = 0;
        for (uint32_t w = 1; w < config_.ways; ++w) {
          if (base[w].stamp < base[victim].stamp) {
            victim = w;
          }
        }
        return victim;
      }
      case ReplacementPolicy::kTreePlru:
        return PlruVictim(blk);
      case ReplacementPolicy::kRandom:
        return static_cast<uint32_t>(
            way_mod_[config_.ways].Mod(NextRand(blk)));
      case ReplacementPolicy::kQuadAge: {
        // Intel-style pseudo-LRU: pick randomly among the oldest (age 3)
        // lines; if none has reached age 3, age every line until one does.
        // This is what makes evictions look "random" to software (§4.1).
        // The candidate buffer holds one slot per way; CacheConfig::
        // Validate caps ways at 64. The whole scan runs on the header's
        // packed age bytes — it never touches the meta records. The
        // repeated age-everything-and-rescan loop collapses to its closed
        // form: ages are in [0, 3] (inserts reset to 0, aging stops at 3),
        // so "increment all until some way reaches 3" adds exactly
        // 3 - max(ages) to every way and the candidate set becomes the
        // ways that held the maximum — identical final ages, identical
        // candidates, and the same single NextRand draw. The simple
        // fixed-trip loops also vectorize.
        uint8_t* ages = AgesIn(blk);
        uint8_t maxa = 0;
        for (uint32_t w = 0; w < config_.ways; ++w) {
          maxa = ages[w] > maxa ? ages[w] : maxa;
        }
        if (maxa < 3) {
          const uint8_t add = static_cast<uint8_t>(3 - maxa);
          for (uint32_t w = 0; w < config_.ways; ++w) {
            ages[w] = static_cast<uint8_t>(ages[w] + add);
          }
        }
        uint32_t candidates[64];
        uint32_t n = 0;
        for (uint32_t w = 0; w < config_.ways; ++w) {
          if (ages[w] >= 3) {
            candidates[n++] = w;
          }
        }
        // way_mod_[n].Mod(r) == r % n exactly (see fastdiv.h) but via a
        // magic multiply — the hardware divide was the longest dependency
        // in the whole victim pick.
        return candidates[way_mod_[n].Mod(NextRand(blk))];
      }
    }
    return 0;
  }

  // Tree-PLRU helpers (ways must be a power of two).
  void PlruTouch(unsigned char* blk, uint32_t way) {
    // Classic binary-tree pseudo-LRU: flip internal nodes to point away
    // from the touched way. Node 1 is the root; leaves correspond to ways.
    uint64_t bits = ScalarsIn(blk).plru_bits;
    uint32_t node = 1;
    uint32_t span = config_.ways;
    while (span > 1) {
      span /= 2;
      const bool right = (way % (span * 2)) >= span;
      if (right) {
        bits |= (1ULL << node);  // 1 = "left is older"
      } else {
        bits &= ~(1ULL << node);
      }
      node = node * 2 + (right ? 1 : 0);
    }
    ScalarsIn(blk).plru_bits = bits;
  }
  uint32_t PlruVictim(const unsigned char* blk) const;

  uint64_t NextRand(unsigned char* blk) {
    // xorshift64: cheap per-set deterministic randomness for victim choice.
    uint64_t x = ScalarsIn(blk).rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ScalarsIn(blk).rng = x;
    return x;
  }

  CacheConfig config_;
  uint64_t global_sets_;
  uint64_t num_sets_;
  // Fast indexing: line_size is a power of two (validated); sets usually are.
  uint32_t line_shift_;
  uint64_t global_set_mask_;  // global_sets_ - 1 when a power of two, else 0
  uint32_t stride_shift_;     // log2(stride)
  uint64_t shard_;
  // Remainder by global_sets_ for the non-power-of-two fallback.
  ModReciprocal set_mod_;
  // way_mod_[n].Mod(r) == r % n for n in [1, ways]: exact magic-multiply
  // remainders for the victim-candidate draw (PickVictim). Index 0 unused.
  std::vector<ModReciprocal> way_mod_;

  // SetBlock geometry (see config.h): ages_offset_ = scalars + tags,
  // meta_offset_ = SetBlockHeaderBytes, block_bytes_ = SetBlockBytes (the
  // latter two multiples of kSetBlockAlign).
  uint64_t ages_offset_ = 0;
  uint64_t meta_offset_ = 0;
  uint64_t block_bytes_ = 0;
  // num_sets_ * block_bytes_ bytes of set blocks, in set order.
  std::vector<Chunk> blocks_;
};

}  // namespace prestore

#endif  // SRC_SIM_CACHE_H_
