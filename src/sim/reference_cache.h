// Reference implementation of SetAssocCache: the pre-SetBlock parallel-array
// layout, preserved verbatim as an executable specification.
//
// src/sim/cache.h stores each set as one contiguous SetBlock; this class
// keeps the five parallel arrays (lines_, tags_, plru_bits_/set_stamp_/
// set_rng_, way_hint_, valid_count_) the engine used before the layout
// refactor. The per-line kQuadAge age, which used to be a CacheLineMeta
// field, lives in a per-line parallel array here with identical update
// rules. Behaviour — victim choices, RNG draw order, hints, stamps, ages —
// is required to be bit-identical between the two;
// tests/cache_layout_equiv_test drives both through randomized op
// interleavings and asserts exactly that, and bench/bench_cache_lookup
// measures the host-side cost delta.
//
// Not used by the simulator itself. Header-only so the test and bench can
// share it without a library target.
#ifndef SRC_SIM_REFERENCE_CACHE_H_
#define SRC_SIM_REFERENCE_CACHE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/util/rng.h"

namespace prestore {

class ReferenceSetAssocCache {
 public:
  using Victim = SetAssocCache::Victim;

  ReferenceSetAssocCache(const CacheConfig& config, uint64_t seed)
      : ReferenceSetAssocCache(config, seed, /*shard=*/0, /*stride=*/1) {}

  ReferenceSetAssocCache(const CacheConfig& config, uint64_t seed,
                         uint64_t shard, uint64_t stride)
      : config_(config), global_sets_(config.NumSets()), shard_(shard) {
    config_.Validate("cache");
    assert(IsPow2(stride) && shard < stride &&
           "shard stride must be a power of two");
    line_shift_ = Log2(config_.line_size);
    global_set_mask_ = IsPow2(global_sets_) ? global_sets_ - 1 : 0;
    stride_shift_ = Log2(stride);
    num_sets_ =
        global_sets_ > shard ? (global_sets_ - 1 - shard) / stride + 1 : 0;
    lines_.resize(num_sets_ * config_.ways);
    tags_.assign(num_sets_ * config_.ways, kInvalidTag);
    ages_.assign(num_sets_ * config_.ways, 0);
    plru_bits_.assign(num_sets_, 0);
    set_stamp_.assign(num_sets_, 0);
    set_rng_.resize(num_sets_);
    way_hint_.assign(num_sets_, kNoHint);
    valid_count_.assign(num_sets_, 0);
    // Same global-set-order SplitMix64 walk as the SetBlock cache.
    SplitMix64 sm(seed);
    for (uint64_t g = 0; g < global_sets_; ++g) {
      const uint64_t draw = sm.Next() | 1;
      if ((g & (stride - 1)) == shard) {
        set_rng_[g >> stride_shift_] = draw;
      }
    }
  }

  uint64_t GlobalSetOf(uint64_t line_addr) const {
    const uint64_t frame = line_addr >> line_shift_;
    return global_set_mask_ != 0 ? (frame & global_set_mask_)
                                 : frame % global_sets_;
  }

  uint64_t SetIndexOf(uint64_t line_addr) const {
    return GlobalSetOf(line_addr) >> stride_shift_;
  }

  void PrefetchSet(uint64_t line_addr) const {
    const uint64_t set = SetIndexOf(line_addr);
    const uint64_t* tags = &tags_[set * config_.ways];
    for (uint32_t b = 0; b < config_.ways * sizeof(*tags); b += 64) {
      __builtin_prefetch(reinterpret_cast<const char*>(tags) + b, 0, 2);
    }
    const uint8_t hint = way_hint_[set];
    if (hint != kNoHint) {
      __builtin_prefetch(&lines_[set * config_.ways + hint], 1, 2);
    }
  }

  CacheLineMeta* Probe(uint64_t line_addr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    way_hint_[set] = static_cast<uint8_t>(w);
    return &SetBase(set)[w];
  }
  const CacheLineMeta* Peek(uint64_t line_addr) const {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    return w == kWayNone ? nullptr : &SetBase(set)[w];
  }
  const CacheLineMeta* Probe(uint64_t line_addr) const {
    return Peek(line_addr);
  }

  CacheLineMeta* Touch(uint64_t line_addr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return nullptr;
    }
    way_hint_[set] = static_cast<uint8_t>(w);
    TouchWay(set, w);
    return &SetBase(set)[w];
  }

  Victim Insert(uint64_t line_addr, bool dirty, CacheLineMeta** out_line) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t way = PickVictim(set);
    CacheLineMeta& slot = SetBase(set)[way];

    Victim victim;
    if (slot.valid) {
      victim.valid = true;
      victim.line_addr = slot.line_addr;
      victim.dirty = slot.dirty;
      victim.owner = slot.owner;
      victim.sharers = slot.sharers;
    } else {
      ++valid_count_[set];
    }

    tags_[set * config_.ways + way] = line_addr;
    ages_[set * config_.ways + way] = 0;
    slot = CacheLineMeta{};
    slot.line_addr = line_addr;
    slot.valid = true;
    slot.dirty = dirty;
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo:
        slot.stamp = ++set_stamp_[set];
        break;
      case ReplacementPolicy::kTreePlru:
        PlruTouch(set, way);
        break;
      case ReplacementPolicy::kQuadAge:
        ages_[set * config_.ways + way] = 1;
        break;
      case ReplacementPolicy::kRandom:
        break;
    }
    way_hint_[set] = static_cast<uint8_t>(way);
    if (out_line != nullptr) {
      *out_line = &slot;
    }
    return victim;
  }

  bool Remove(uint64_t line_addr, CacheLineMeta* was = nullptr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return false;
    }
    CacheLineMeta& line = SetBase(set)[w];
    if (was != nullptr) {
      *was = line;
    }
    line = CacheLineMeta{};
    tags_[set * config_.ways + w] = kInvalidTag;
    ages_[set * config_.ways + w] = 0;
    --valid_count_[set];
    return true;
  }

  void AgeLine(uint64_t line_addr) {
    const uint64_t set = SetIndexOf(line_addr);
    const uint32_t w = FindWay(set, line_addr);
    if (w == kWayNone) {
      return;
    }
    way_hint_[set] = static_cast<uint8_t>(w);  // as the old Probe-based path
    switch (config_.policy) {
      case ReplacementPolicy::kQuadAge:
        ages_[set * config_.ways + w] = 3;
        break;
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo:
        SetBase(set)[w].stamp = 0;
        break;
      case ReplacementPolicy::kTreePlru:
      case ReplacementPolicy::kRandom:
        break;
    }
  }

  const CacheConfig& config() const { return config_; }
  uint64_t num_sets() const { return num_sets_; }
  uint64_t global_sets() const { return global_sets_; }

  CacheLineMeta* SetData(uint64_t set) { return SetBase(set); }
  const CacheLineMeta* SetData(uint64_t set) const { return SetBase(set); }

  std::vector<uint64_t> ValidLines() const {
    std::vector<uint64_t> out;
    out.reserve(lines_.size());
    for (const auto& line : lines_) {
      if (line.valid) {
        out.push_back(line.line_addr);
      }
    }
    return out;
  }

  uint8_t DebugWayHint(uint64_t set) const { return way_hint_[set]; }
  uint8_t DebugAge(uint64_t set, uint32_t way) const {
    return ages_[set * config_.ways + way];
  }

 private:
  static constexpr uint32_t kWayNone = ~0u;
  static constexpr uint8_t kNoHint = 0xff;
  static constexpr uint64_t kInvalidTag = ~0ULL;

  static constexpr bool IsPow2(uint64_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  }
  static constexpr uint32_t Log2(uint64_t v) {
    uint32_t s = 0;
    while ((v >>= 1) != 0) {
      ++s;
    }
    return s;
  }

  CacheLineMeta* SetBase(uint64_t set) { return &lines_[set * config_.ways]; }
  const CacheLineMeta* SetBase(uint64_t set) const {
    return &lines_[set * config_.ways];
  }

  uint32_t FindWay(uint64_t set, uint64_t line_addr) const {
    const uint64_t* tags = &tags_[set * config_.ways];
    const uint8_t hint = way_hint_[set];
    if (hint != kNoHint && tags[hint] == line_addr) {
      return hint;
    }
    for (uint32_t w = 0; w < config_.ways; ++w) {
      if (tags[w] == line_addr) {
        return w;
      }
    }
    return kWayNone;
  }

  void TouchWay(uint64_t set, uint32_t way) {
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
        SetBase(set)[way].stamp = ++set_stamp_[set];
        break;
      case ReplacementPolicy::kTreePlru:
        PlruTouch(set, way);
        break;
      case ReplacementPolicy::kQuadAge:
        ages_[set * config_.ways + way] = 0;
        break;
      case ReplacementPolicy::kFifo:
      case ReplacementPolicy::kRandom:
        break;
    }
  }

  void PlruTouch(uint64_t set, uint32_t way) {
    uint64_t bits = plru_bits_[set];
    uint32_t node = 1;
    uint32_t span = config_.ways;
    while (span > 1) {
      span /= 2;
      const bool right = (way % (span * 2)) >= span;
      if (right) {
        bits |= (1ULL << node);
      } else {
        bits &= ~(1ULL << node);
      }
      node = node * 2 + (right ? 1 : 0);
    }
    plru_bits_[set] = bits;
  }

  uint32_t PlruVictim(uint64_t set) const {
    const uint64_t bits = plru_bits_[set];
    uint32_t node = 1;
    uint32_t way = 0;
    uint32_t span = config_.ways;
    while (span > 1) {
      span /= 2;
      const bool go_right = (bits & (1ULL << node)) == 0;
      if (go_right) {
        way += span;
      }
      node = node * 2 + (go_right ? 1 : 0);
    }
    return way;
  }

  uint32_t PickVictim(uint64_t set) {
    CacheLineMeta* base = SetBase(set);
    if (valid_count_[set] < config_.ways) {
      const uint64_t* tags = &tags_[set * config_.ways];
      for (uint32_t w = 0; w < config_.ways; ++w) {
        if (tags[w] == kInvalidTag) {
          return w;
        }
      }
    }
    switch (config_.policy) {
      case ReplacementPolicy::kLru:
      case ReplacementPolicy::kFifo: {
        uint32_t victim = 0;
        for (uint32_t w = 1; w < config_.ways; ++w) {
          if (base[w].stamp < base[victim].stamp) {
            victim = w;
          }
        }
        return victim;
      }
      case ReplacementPolicy::kTreePlru:
        return PlruVictim(set);
      case ReplacementPolicy::kRandom:
        return static_cast<uint32_t>(NextRand(set) % config_.ways);
      case ReplacementPolicy::kQuadAge: {
        uint8_t* ages = &ages_[set * config_.ways];
        while (true) {
          uint32_t candidates[64];
          uint32_t n = 0;
          for (uint32_t w = 0; w < config_.ways; ++w) {
            if (ages[w] >= 3) {
              candidates[n++] = w;
            }
          }
          if (n > 0) {
            return candidates[NextRand(set) % n];
          }
          for (uint32_t w = 0; w < config_.ways; ++w) {
            ++ages[w];
          }
        }
      }
    }
    return 0;
  }

  uint64_t NextRand(uint64_t set) {
    uint64_t x = set_rng_[set];
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    set_rng_[set] = x;
    return x;
  }

  CacheConfig config_;
  uint64_t global_sets_;
  uint64_t num_sets_;
  uint32_t line_shift_;
  uint64_t global_set_mask_;
  uint32_t stride_shift_;
  uint64_t shard_;

  std::vector<CacheLineMeta> lines_;
  std::vector<uint64_t> tags_;
  std::vector<uint8_t> ages_;
  std::vector<uint64_t> plru_bits_;
  std::vector<uint64_t> set_stamp_;
  std::vector<uint64_t> set_rng_;
  std::vector<uint8_t> way_hint_;
  std::vector<uint8_t> valid_count_;
};

}  // namespace prestore

#endif  // SRC_SIM_REFERENCE_CACHE_H_
