#include "src/sim/device.h"

#include "src/sim/reference_device.h"

namespace prestore {

uint64_t DramDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t DramDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += bytes;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

void DramDevice::WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                            uint64_t now) {
  if (n == 0) {
    return;
  }
  if (config_.reference_impl || HasFaultHook()) {
    Device::WriteTrain(addrs, n, bytes, now);
    return;
  }
  // All n writes share one issue time and (hook-free) one transfer cost, so
  // the meter recurrence collapses into a single closed-form charge; the
  // per-write completion times the loop would compute are unobserved by
  // every WriteTrain caller.
  interface_.ReserveRun(TransferCost(bytes, now, config_.cycles_per_byte), n,
                        now);
  OptionalLockGuard lock(stats_mu_, LockFree());
  stats_.writes += n;
  stats_.bytes_received += static_cast<uint64_t>(n) * bytes;
  stats_.media_bytes_written += static_cast<uint64_t>(n) * bytes;
}

// ---- PmemDevice: open-addressed XPBuffer index ----

uint8_t* PmemDevice::IndexFind(Dimm& d, uint64_t block) {
  const uint32_t mask = IndexMask(d);
  uint32_t pos = BlockHash(block) & mask;
  while (true) {
    const uint8_t s = d.index[pos];
    if (s == kIndexEmpty) {
      return nullptr;
    }
    if (d.slots[s].block == block) {
      return &d.index[pos];
    }
    pos = (pos + 1) & mask;
  }
}

void PmemDevice::IndexInsert(Dimm& d, uint64_t block, uint8_t slot) {
  const uint32_t mask = IndexMask(d);
  uint32_t pos = BlockHash(block) & mask;
  while (d.index[pos] != kIndexEmpty) {
    pos = (pos + 1) & mask;
  }
  d.index[pos] = slot;
}

void PmemDevice::IndexErase(Dimm& d, uint64_t block) {
  const uint32_t mask = IndexMask(d);
  uint32_t pos = BlockHash(block) & mask;
  while (d.index[pos] == kIndexEmpty || d.slots[d.index[pos]].block != block) {
    PRESTORE_INVARIANT(d.index[pos] != kIndexEmpty,
                       "XPBuffer index erase of an unindexed block");
    pos = (pos + 1) & mask;
  }
  // Backward-shift deletion: pull cluster members whose probe path crosses
  // the hole back into it, so lookups never need tombstones.
  uint32_t hole = pos;
  uint32_t next = (hole + 1) & mask;
  while (d.index[next] != kIndexEmpty) {
    const uint32_t ideal = BlockHash(d.slots[d.index[next]].block) & mask;
    if (((next - ideal) & mask) >= ((next - hole) & mask)) {
      d.index[hole] = d.index[next];
      hole = next;
    }
    next = (next + 1) & mask;
  }
  d.index[hole] = kIndexEmpty;
}

uint64_t PmemDevice::TouchBlock(uint64_t addr, bool dirty, uint64_t now,
                                uint64_t* media_bytes_flushed) {
  Dimm& dimm = DimmFor(addr);
  const uint64_t block = BlockOf(addr);
  const uint8_t line_bit = LineBitOf(addr);
  uint64_t media_work = 0;
  // Buffer-pressure faults shrink the usable XPBuffer (never below one
  // slot), forcing early evictions exactly like competing internal traffic.
  uint32_t capacity = config_.internal_buffer_blocks;
  if (DeviceFaultHook* hook = fault_hook()) {
    const uint32_t stolen = hook->StolenBufferBlocks(now);
    capacity = stolen >= capacity ? 1 : capacity - stolen;
  }
  {
    OptionalLockGuard lock(dimm.mu, LockFree());
    std::vector<BufferedBlock>& slots = dimm.slots;
    // Hinted hit: back-to-back accesses to one internal block — the
    // coalescing pattern sequentialized writebacks are shaped for —
    // resolve on a single compare.
    BufferedBlock& hinted = slots[dimm.last_hit];
    if (hinted.valid && hinted.block == block) {
      hinted.stamp = ++dimm.stamp_counter;
      hinted.dirty = hinted.dirty || dirty;
      if (dirty) {
        hinted.written_mask |= line_bit;
      }
      return 0;  // coalesced: served from the buffer, no media work
    }
    if (uint8_t* ip = IndexFind(dimm, block)) {
      const uint8_t s = *ip;
      BufferedBlock& hit = slots[s];
      hit.stamp = ++dimm.stamp_counter;
      hit.dirty = hit.dirty || dirty;
      if (dirty) {
        hit.written_mask |= line_bit;
      }
      dimm.last_hit = s;
      return 0;  // coalesced: served from the buffer, no media work
    }
    // Miss: evict least-recently-stamped blocks down to a free slot. The
    // minimum stamp is exactly the block a recency-ordered array would
    // evict from its back, so the flush order — and with it the §4.1
    // media-byte accounting — is bit-identical to the reference scan.
    // Every eviction leaves a known-free slot, so the steady-state path
    // (full buffer, one eviction per insert) never rescans for one;
    // scanning is only needed when the buffer has never been full. Which
    // slot INDEX receives the block is simulation-neutral — recency lives
    // in the stamps and lookup in the index, so any free slot yields the
    // same timing, stats, and digests.
    uint32_t free_slot = UINT32_MAX;
    while (dimm.valid_count >= capacity) {
      uint32_t vi = 0;
      uint64_t oldest = UINT64_MAX;
      for (uint32_t i = 0; i < slots.size(); ++i) {
        if (slots[i].valid && slots[i].stamp < oldest) {
          oldest = slots[i].stamp;
          vi = i;
        }
      }
      BufferedBlock& victim = slots[vi];
      if (victim.dirty) {
        // Dirty-block flush: the §4.1 write amplification. A partially
        // written block additionally pays the read-modify-write fetch.
        media_work += block_write_cost_;
        if ((victim.written_mask & full_mask_) != full_mask_) {
          media_work += block_read_cost_;
        }
        *media_bytes_flushed += config_.internal_block_size;
      }
      IndexErase(dimm, victim.block);
      victim.valid = false;
      --dimm.valid_count;
      free_slot = vi;
    }
    if (free_slot == UINT32_MAX) {
      for (uint32_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].valid) {
          free_slot = i;
          break;
        }
      }
    }
    slots[free_slot] =
        BufferedBlock{block, ++dimm.stamp_counter, /*valid=*/true, dirty,
                      dirty ? line_bit : static_cast<uint8_t>(0)};
    ++dimm.valid_count;
    IndexInsert(dimm, block, static_cast<uint8_t>(free_slot));
    dimm.last_hit = static_cast<uint8_t>(free_slot);
    if (!dirty) {
      // A read miss must fetch the block to serve the data (the
      // read-amplification side; media reads are cheaper than writes).
      media_work += block_read_cost_;
    }
  }
  if (media_work == 0) {
    return 0;  // buffered: no media work, no queueing
  }
  if (DeviceFaultHook* hook = fault_hook()) {
    media_work = static_cast<uint64_t>(
        static_cast<double>(media_work) *
        std::max(1.0, hook->BandwidthCostMultiplier(now)));
  }
  // Apply any deferred observation floor before the reserve reads the
  // reference, then refresh the device-level work high-water mark the
  // InternalBacklogAt fast path tests against.
  dimm.media.ObserveFloor(observed_floor_.load(std::memory_order_relaxed));
  const uint64_t delay = dimm.media.Reserve(media_work, now, LockFree());
  RecordMediaPeak(dimm.media.WorkMark());
  return delay;
}

uint64_t PmemDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  uint64_t flushed = 0;
  const uint64_t delay = TouchBlock(addr, /*dirty=*/false, now, &flushed);
  const uint64_t start =
      ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
    stats_.media_bytes_written += flushed;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t PmemDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  uint64_t flushed = 0;
  const uint64_t delay = TouchBlock(addr, /*dirty=*/true, now, &flushed);
  const uint64_t start =
      ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += flushed;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

void PmemDevice::WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                            uint64_t now) {
  if (n == 0) {
    return;
  }
  if (config_.reference_impl || HasFaultHook()) {
    Device::WriteTrain(addrs, n, bytes, now);
    return;
  }
  // The XPBuffer touches must stay per-line and in order — FlushAll's
  // global-set-major walk order is load-bearing for media-byte accounting —
  // but the interface meter is independent of the media meters, so its
  // same-cost charges regroup into maximal equal-issue-time runs, each a
  // single closed-form ReserveRun. In the common case (the whole train
  // coalesces into buffered blocks, every TouchBlock delay is 0) that is
  // ONE meter transaction for the entire sweep.
  const uint64_t cost = TransferCost(bytes, now, config_.cycles_per_byte);
  uint64_t flushed = 0;
  uint64_t run_at = 0;
  uint64_t run_len = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t line_flushed = 0;
    const uint64_t delay =
        TouchBlock(addrs[i], /*dirty=*/true, now, &line_flushed);
    flushed += line_flushed;
    const uint64_t at = now + delay;
    if (run_len != 0 && at == run_at) {
      ++run_len;
      continue;
    }
    if (run_len != 0) {
      interface_.ReserveRun(cost, run_len, run_at);
    }
    run_at = at;
    run_len = 1;
  }
  interface_.ReserveRun(cost, run_len, run_at);
  OptionalLockGuard lock(stats_mu_, LockFree());
  stats_.writes += n;
  stats_.bytes_received += static_cast<uint64_t>(n) * bytes;
  stats_.media_bytes_written += flushed;
}

void PmemDevice::Drain() {
  std::lock_guard<std::mutex> slock(stats_mu_);
  for (Dimm& dimm : dimms_) {
    std::lock_guard<std::mutex> lock(dimm.mu);
    for (BufferedBlock& entry : dimm.slots) {
      if (entry.valid && entry.dirty) {
        stats_.media_bytes_written += config_.internal_block_size;
      }
      entry.valid = false;
    }
    std::fill(dimm.index.begin(), dimm.index.end(), kIndexEmpty);
    dimm.valid_count = 0;
    dimm.last_hit = 0;
  }
}

uint64_t FarMemoryDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t FarMemoryDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += bytes;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

void FarMemoryDevice::WriteTrain(const uint64_t* addrs, size_t n,
                                 uint32_t bytes, uint64_t now) {
  if (n == 0) {
    return;
  }
  if (config_.reference_impl || HasFaultHook()) {
    Device::WriteTrain(addrs, n, bytes, now);
    return;
  }
  interface_.ReserveRun(TransferCost(bytes, now, config_.cycles_per_byte), n,
                        now);
  OptionalLockGuard lock(stats_mu_, LockFree());
  stats_.writes += n;
  stats_.bytes_received += static_cast<uint64_t>(n) * bytes;
  stats_.media_bytes_written += static_cast<uint64_t>(n) * bytes;
}

uint64_t FarMemoryDevice::DirectoryAccess(uint64_t now) {
  // The line-state directory lives on the device (§4.2): a state change costs
  // a device round trip plus a small transfer.
  const uint64_t start = ReserveBandwidth(8, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.directory_accesses;
  }
  uint64_t extra = 0;
  if (DeviceFaultHook* hook = fault_hook()) {
    // Directory-timeout faults: the device-resident directory stops
    // answering for a window; every line-state change stalls behind it.
    extra = hook->ExtraDirectoryLatency(now);
  }
  return start + config_.directory_latency + extra;
}

std::unique_ptr<Device> MakeDevice(const DeviceConfig& config) {
  switch (config.kind) {
    case DeviceKind::kDram:
      return std::make_unique<DramDevice>(config);
    case DeviceKind::kPmem:
      if (config.reference_impl) {
        return std::make_unique<ReferencePmemDevice>(config);
      }
      return std::make_unique<PmemDevice>(config);
    case DeviceKind::kFarMemory:
      return std::make_unique<FarMemoryDevice>(config);
  }
  return nullptr;
}

}  // namespace prestore
