#include "src/sim/device.h"

namespace prestore {

uint64_t DramDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t DramDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += bytes;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

uint64_t PmemDevice::TouchBlock(uint64_t addr, bool dirty, uint64_t now,
                                uint64_t* media_bytes_flushed) {
  Dimm& dimm = DimmFor(addr);
  const uint64_t block = addr / config_.internal_block_size;
  const uint64_t lines_per_block =
      std::max<uint64_t>(1, config_.internal_block_size / 64);
  const uint8_t full_mask =
      static_cast<uint8_t>((1u << lines_per_block) - 1);
  const uint8_t line_bit = static_cast<uint8_t>(
      1u << ((addr % config_.internal_block_size) / 64));
  uint64_t media_work = 0;
  // Buffer-pressure faults shrink the usable XPBuffer (never below one
  // slot), forcing early evictions exactly like competing internal traffic.
  uint32_t capacity = config_.internal_buffer_blocks;
  if (DeviceFaultHook* hook = fault_hook()) {
    const uint32_t stolen = hook->StolenBufferBlocks(now);
    capacity = stolen >= capacity ? 1 : capacity - stolen;
  }
  {
    OptionalLockGuard lock(dimm.mu, LockFree());
    std::vector<BufferedBlock>& slots = dimm.slots;
    const size_t n = slots.size();
    for (size_t i = 0; i < n; ++i) {
      if (slots[i].block == block) {
        BufferedBlock hit = slots[i];
        hit.dirty = hit.dirty || dirty;
        if (dirty) {
          hit.written_mask |= line_bit;
        }
        // Rotate the hit to the MRU position (front), shifting [0, i) down.
        for (size_t j = i; j > 0; --j) {
          slots[j] = slots[j - 1];
        }
        slots[0] = hit;
        return 0;  // coalesced: served from the buffer, no media work
      }
    }
    while (slots.size() >= capacity) {
      const BufferedBlock victim = slots.back();
      slots.pop_back();
      if (victim.dirty) {
        // Dirty-block flush: the §4.1 write amplification. A partially
        // written block additionally pays the read-modify-write fetch.
        media_work += BlockWriteCost();
        if ((victim.written_mask & full_mask) != full_mask) {
          media_work += BlockReadCost();
        }
        *media_bytes_flushed += config_.internal_block_size;
      }
    }
    slots.insert(slots.begin(),
                 BufferedBlock{block, dirty,
                               dirty ? line_bit : static_cast<uint8_t>(0)});
    if (!dirty) {
      // A read miss must fetch the block to serve the data (the
      // read-amplification side; media reads are cheaper than writes).
      media_work += BlockReadCost();
    }
  }
  if (media_work == 0) {
    return 0;  // buffered: no media work, no queueing
  }
  if (DeviceFaultHook* hook = fault_hook()) {
    media_work = static_cast<uint64_t>(
        static_cast<double>(media_work) *
        std::max(1.0, hook->BandwidthCostMultiplier(now)));
  }
  return dimm.media.Reserve(media_work, now);
}

uint64_t PmemDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  uint64_t flushed = 0;
  const uint64_t delay = TouchBlock(addr, /*dirty=*/false, now, &flushed);
  const uint64_t start =
      ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
    stats_.media_bytes_written += flushed;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t PmemDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  uint64_t flushed = 0;
  const uint64_t delay = TouchBlock(addr, /*dirty=*/true, now, &flushed);
  const uint64_t start =
      ReserveBandwidth(bytes, now + delay, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += flushed;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

void PmemDevice::Drain() {
  std::lock_guard<std::mutex> slock(stats_mu_);
  for (Dimm& dimm : dimms_) {
    std::lock_guard<std::mutex> lock(dimm.mu);
    for (const BufferedBlock& entry : dimm.slots) {
      if (entry.dirty) {
        stats_.media_bytes_written += config_.internal_block_size;
      }
    }
    dimm.slots.clear();
  }
}

uint64_t FarMemoryDevice::Read(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.reads;
    stats_.bytes_read += bytes;
  }
  return start + config_.read_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/false, now);
}

uint64_t FarMemoryDevice::Write(uint64_t addr, uint32_t bytes, uint64_t now) {
  (void)addr;
  const uint64_t start = ReserveBandwidth(bytes, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.writes;
    stats_.bytes_received += bytes;
    stats_.media_bytes_written += bytes;
  }
  return start + config_.write_latency +
         static_cast<uint64_t>(bytes * config_.cycles_per_byte) +
         FaultLatency(/*is_write=*/true, now);
}

uint64_t FarMemoryDevice::DirectoryAccess(uint64_t now) {
  // The line-state directory lives on the device (§4.2): a state change costs
  // a device round trip plus a small transfer.
  const uint64_t start = ReserveBandwidth(8, now, config_.cycles_per_byte);
  {
    OptionalLockGuard lock(stats_mu_, LockFree());
    ++stats_.directory_accesses;
  }
  uint64_t extra = 0;
  if (DeviceFaultHook* hook = fault_hook()) {
    // Directory-timeout faults: the device-resident directory stops
    // answering for a window; every line-state change stalls behind it.
    extra = hook->ExtraDirectoryLatency(now);
  }
  return start + config_.directory_latency + extra;
}

std::unique_ptr<Device> MakeDevice(const DeviceConfig& config) {
  switch (config.kind) {
    case DeviceKind::kDram:
      return std::make_unique<DramDevice>(config);
    case DeviceKind::kPmem:
      return std::make_unique<PmemDevice>(config);
    case DeviceKind::kFarMemory:
      return std::make_unique<FarMemoryDevice>(config);
  }
  return nullptr;
}

}  // namespace prestore
