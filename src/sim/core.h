// A simulated hardware thread (core): the execution context workloads run on.
//
// Functional-first, timing-directed simulation: data moves to/from backing
// host memory immediately; the cache/store-buffer state machines track where
// each line *would* be and charge cycles accordingly. Per-core local clocks
// plus reservation-based shared devices let real std::threads drive multiple
// cores concurrently.
#ifndef SRC_SIM_CORE_H_
#define SRC_SIM_CORE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/prestore.h"
#include "src/sim/cache.h"
#include "src/sim/invariant.h"
#include "src/sim/config.h"
#include "src/sim/hooks.h"
#include "src/sim/replay_ops.h"
#include "src/trace/trace.h"

namespace prestore {

class Machine;

using SimAddr = uint64_t;

struct CoreStats {
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t sb_forwards = 0;
  uint64_t fences = 0;
  uint64_t fence_stall_cycles = 0;
  uint64_t atomics = 0;
  uint64_t prestores_demote = 0;
  uint64_t prestores_clean = 0;
  // Hints suppressed by an installed PrestoreHook (governor backoff or
  // injected hint-drop faults). Suppressed hints issue no instruction.
  uint64_t prestores_suppressed = 0;
  uint64_t nt_lines = 0;
  uint64_t sb_capacity_drains = 0;
  // Cycle attribution (where the core's clock advanced).
  uint64_t cycles_bg_wait = 0;    // background-op window full
  uint64_t cycles_wc_wait = 0;    // write-combining buffer full
  uint64_t cycles_wb_pending = 0; // store hit a line with in-flight writeback
  uint64_t cycles_load_miss = 0;  // synchronous load misses
  uint64_t publish_latency_sum = 0;  // sum of async publication latencies
  uint64_t publishes = 0;
};

// Pre-interned function annotation (see FunctionRegistry).
struct FuncToken {
  uint32_t id = kInvalidFunc;
};

class Core {
 public:
  Core(Machine* machine, uint8_t id, const MachineConfig& config);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  uint8_t id() const { return id_; }
  uint64_t now() const { return now_; }
  uint64_t icount() const { return icount_; }
  const CoreStats& stats() const { return stats_; }
  Machine& machine() { return *machine_; }

  // ---- Data operations (functional + timed) ----

  uint64_t LoadU64(SimAddr addr);
  uint32_t LoadU32(SimAddr addr);
  void StoreU64(SimAddr addr, uint64_t value);
  void StoreU32(SimAddr addr, uint32_t value);
  double LoadF64(SimAddr addr);
  void StoreF64(SimAddr addr, double value);

  void MemCopyToSim(SimAddr dst, const void* src, size_t size);
  void MemCopyFromSim(void* dst, SimAddr src, size_t size);
  void MemCopySimToSim(SimAddr dst, SimAddr src, size_t size);
  void MemSet(SimAddr dst, uint8_t byte, size_t size);

  // Plain ALU work: n instructions, n cycles.
  void Execute(uint64_t n) {
    icount_ += n;
    now_ += n;
  }

  // Spin-wait pause. A spinning core must not race ahead of the cores doing
  // real work (its local clock would poison shared-device reservations), so
  // the pause advances the local clock only up to the fastest *published*
  // core time; a core already ahead yields the host thread instead.
  void SpinPause(uint64_t cycles = 30);

  // Lock-free snapshot of this core's clock for cross-thread readers.
  uint64_t PublishedNow() const {
    return published_now_.load(std::memory_order_relaxed);
  }

  // Tracks an eviction writeback this core's access triggered. The per-core
  // queue is bounded: when the device falls behind, the evicting access
  // stalls (returns the time it may proceed; == start when the queue keeps
  // up). Per-core so that clock skew between cores cannot masquerade as
  // queueing.
  uint64_t NoteEvictionWriteback(uint64_t acceptance, uint64_t start) {
    while (ewb_size_ != 0 && ewb_ring_[ewb_head_ & kEwbRingMask] <= start) {
      ++ewb_head_;
      --ewb_size_;
    }
    ewb_ring_[(ewb_head_ + ewb_size_) & kEwbRingMask] = acceptance;
    ++ewb_size_;
    if (ewb_size_ > kEvictionWbDepth) {
      const uint64_t wait = ewb_ring_[ewb_head_ & kEwbRingMask];
      ++ewb_head_;
      --ewb_size_;
      return wait > start ? wait : start;
    }
    return start;
  }

  static constexpr size_t kEvictionWbDepth = 16;

  // ---- Deferred eviction-writeback train (analytical miss legs) ----
  //
  // The fast-forward miss legs defer the per-eviction NoteEvictionWriteback
  // bookkeeping into a small train and replay it in order when the run
  // ends. This is exact only when no deferred note could overflow the
  // bounded queue: the replay pops completed entries before each push, so
  // the queue can only shrink relative to the conservative bound below,
  // each replayed note returns `start` (no stall, no wbq_stall_cycles
  // bump), and the caller's completion time — already past the access
  // start — is unchanged. CanDeferEvictionWriteback enforces the bound;
  // when it fails, the caller flushes the train and takes the per-line
  // path. Device-side state is NOT deferred: the Write() reserving device
  // bandwidth happens immediately, in program order, at the same timestamp
  // as the per-line path.
  bool CanDeferEvictionWriteback() const {
    return pending_ewb_n_ < kEvictionTrainCap &&
           ewb_size_ + pending_ewb_n_ < kEvictionWbDepth;
  }

  void DeferEvictionWriteback(uint64_t acceptance, uint64_t start) {
    pending_ewb_[pending_ewb_n_].acceptance = acceptance;
    pending_ewb_[pending_ewb_n_].start = start;
    ++pending_ewb_n_;
  }

  void FlushEvictionTrain() {
    for (uint32_t i = 0; i < pending_ewb_n_; ++i) {
      const uint64_t proceed = NoteEvictionWriteback(
          pending_ewb_[i].acceptance, pending_ewb_[i].start);
      PRESTORE_INVARIANT(proceed == pending_ewb_[i].start,
                         "deferred eviction writeback stalled; "
                         "CanDeferEvictionWriteback bound violated");
      (void)proceed;
    }
    pending_ewb_n_ = 0;
  }

  // ---- Ordering operations ----

  // Full memory fence: publishes all private stores, waits for outstanding
  // pre-stores and write-combining traffic (paper §4.2).
  void Fence();

  // Atomics have fence semantics (§4.2: "atomic instructions that force the
  // CPU to order memory accesses").
  bool CasU64(SimAddr addr, uint64_t& expected, uint64_t desired);
  uint64_t FetchAddU64(SimAddr addr, uint64_t delta);
  uint64_t AtomicLoadU64(SimAddr addr);   // acquire: no store drain
  void AtomicStoreU64(SimAddr addr, uint64_t value);  // release: drains stores

  // ---- Analytical fast-forward (DESIGN.md §12) ----

  // Executes a maximal eligible prefix of `ops` on this core without walking
  // the full per-op timing path, and returns how many ops were consumed
  // (possibly 0; never more than n). An op is eligible when it can be
  // charged analytically — its cycle cost and stat deltas follow from a
  // handful of probes with no protocol branches left open:
  //   - a load whose line is L1-resident (cost: one L1 hit latency);
  //   - a store whose line is L1-resident in exclusive state with no
  //     in-flight write-combining entry for the line (cost: one issue
  //     cycle);
  // and, in exclusive execution only (Machine::SetExclusiveExecution) with
  // empty write-combining and store-buffer queues:
  //   - a load whose line is a trivial LLC hit (no foreign owner —
  //     Machine::TryFastLlcHit), charged hit latency + fill + L1 victim
  //     writeback;
  //   - an eager-TSO store publication whose line is a trivial LLC write
  //     hit (no foreign owner or sharers, non-far device), charged the
  //     publication sequence.
  // The run bails out to the slow path (returns early) on any other
  // hazard: an installed trace sink or pre-store hook, a clean op, an LLC
  // miss, coherence interaction with another core, a recently-NT-written
  // line, a pending writeback, or a line-straddling access. Every bail-out
  // happens before any state mutation for that op, so the slow path replays
  // it from a bit-identical machine. Consumed ops charge their cycles,
  // instruction counts, and stat deltas in one step at exit; the arithmetic
  // is bit-identical to the slow path (the recorded digests in
  // sim_determinism_test pin this).
  //
  // `deadline` stops the run before any op whose START time would be >=
  // deadline — the same "begin an op only while now < deadline" rule the
  // sliced scheduler's slow path applies per op. Because every consumed op
  // charges exactly the slow-path cycles, a sliced replay covers the same
  // (round, core, op) schedule whether fast-forward is on or off, so the
  // two produce bit-identical end states (sim_stats_equiv_test pins this).
  size_t FastForwardOps(const ReplayOp* ops, size_t n,
                        uint64_t deadline = ~uint64_t{0});

  // ---- Pre-stores (the paper's contribution, §2) ----

  // Non-blocking hint covering [addr, addr+size). kDemote moves the data out
  // of private buffers / L1 down to the shared cache; kClean additionally
  // writes dirty data back to memory. Data stays cached in both cases.
  void Prestore(SimAddr addr, size_t size, PrestoreOp op);

  // Non-temporal ("skip the cache") store: data goes straight to memory via
  // the write-combining buffer and is not allocated in the caches.
  void StoreNt(SimAddr dst, const void* src, size_t size);
  void StoreNtU64(SimAddr dst, uint64_t value);

  // ---- Annotation (symbolization stand-in for DirtBuster) ----

  void PushFunc(FuncToken token);
  void PopFunc();
  uint32_t CurrentFunc() const {
    return fstack_.empty() ? kInvalidFunc : fstack_.back();
  }
  uint32_t CurrentChain() const { return cur_chain_; }

  void ResetStats() { stats_ = CoreStats{}; }
  void SetNow(uint64_t t) {
    now_ = t;
    published_now_.store(t, std::memory_order_relaxed);
  }

  // Internal: used by Machine for cross-core coherence actions.
  SetAssocCache& l1() { return l1_; }
  std::mutex& l1_mu() { return l1_mu_; }

  // Re-reads the machine's trace-sink and pre-store-hook registrations into
  // the core-local fast-path fields below. Machine calls this whenever a
  // sink or hook is (un)installed. The cached fields are atomics, so a
  // mid-run SetTraceSink is safe; hook (un)installation still requires
  // quiesced cores (the hook vector itself is unsynchronized — hooks.h).
  void RefreshFastPathFlags();

 private:
  friend class Machine;

  // Per-line timing paths.
  void LineLoad(uint64_t line_addr);
  void LineStore(uint64_t line_addr);
  void TimedAccess(SimAddr addr, size_t size, bool is_store);

  // Store-buffer handling.
  bool SbContains(uint64_t line_addr) const;
  void SbInsert(uint64_t line_addr);
  void SbRemove(uint64_t line_addr);
  uint64_t DrainSbAll(uint64_t start);  // returns completion

  // Background-op / write-combining bookkeeping.
  struct WcEntry {
    uint64_t line_addr;
    uint64_t completion;
  };
  void PushBg(uint64_t completion);
  void PushWc(uint64_t line_addr, uint64_t completion);
  uint64_t WaitAll(std::deque<uint64_t>& q, uint64_t t);
  uint64_t WaitAllWc(uint64_t t);
  // A store to a line with an in-flight writeback must wait for it (the line
  // is on its way to memory and has to be re-acquired) — the §5 Listing-3
  // pitfall cost. Returns true when an in-flight writeback was found.
  bool WaitPendingWriteback(uint64_t line_addr);

  // L1 fill with victim handling. Caller must NOT hold any lock.
  void FillL1(uint64_t line_addr, bool exclusive, bool dirty);

  // Per-op trace emission. The unhooked case must cost one predicted
  // branch, so the sink pointer is cached core-locally (refreshed by
  // RefreshFastPathFlags) instead of being chased through the machine on
  // every memory operation. The cache is an atomic so SetTraceSink stays
  // safe against running cores; the uncontended acquire load compiles to a
  // plain load on x86/ARM.
  void Emit(TraceKind kind, SimAddr addr, uint32_t size) {
    TraceSink* sink = sink_fast_.load(std::memory_order_acquire);
    if (sink == nullptr) {
      return;
    }
    sink->Record(TraceRecord{kind, id_, size, addr, icount_,
                             CurrentFunc(), cur_chain_});
  }
  void PublishClock();

  Machine* machine_;
  uint8_t id_;
  const MachineConfig& config_;

  // Cached fast-path state (see RefreshFastPathFlags). Atomics because
  // RefreshCoreFastPaths may run (e.g. from a mid-run SetTraceSink) while
  // this core's host thread is between ops; relaxed/acquire loads keep the
  // per-op cost at a plain load. Hook semantics are unchanged: the hook
  // VECTOR is still only mutated with cores quiesced (hooks.h contract) —
  // the atomic only de-races the cached flag itself.
  std::atomic<TraceSink*> sink_fast_{nullptr};
  std::atomic<bool> has_hooks_{false};
  bool HasHooks() const { return has_hooks_.load(std::memory_order_relaxed); }
  // Exclusive-execution mirror (Machine::SetExclusiveExecution): when set,
  // exactly one host thread drives the whole machine at a time, so the
  // engine's serialization mutexes are elided (optlock.h). Atomic for the
  // same reason as the fields above; per-op cost is one relaxed load.
  std::atomic<bool> lock_free_{false};
  bool LockFree() const { return lock_free_.load(std::memory_order_relaxed); }
  // Analytical fast-forward enable (Machine::SetAnalyticalFastForward);
  // off = every op walks the full timing path (the stats-equivalence tests
  // compare the two).
  std::atomic<bool> fast_forward_{true};

  // Sampled-access observation (Machine::SetAccessSampleHook). The period
  // is cached core-locally so the unobserved per-line cost is one plain
  // load + predicted branch (period == 0); the countdown survives refreshes
  // that do not change the installation, so unrelated SetTraceSink calls
  // cannot perturb the deterministic sample schedule.
  std::atomic<AccessSampleHook*> sampler_fast_{nullptr};
  uint32_t sample_period_ = 0;
  uint32_t sample_countdown_ = 0;
  void MaybeSampleAccess(uint64_t line_addr, bool is_store) {
    if (sample_period_ == 0 || --sample_countdown_ != 0) {
      return;
    }
    sample_countdown_ = sample_period_;
    AccessSampleHook* sampler =
        sampler_fast_.load(std::memory_order_acquire);
    if (sampler != nullptr) {
      sampler->OnSampledAccess(id_, line_addr, is_store, now_);
    }
  }

  uint64_t now_ = 0;
  uint64_t icount_ = 0;
  // Periodically refreshed copy of now_, readable from other threads.
  std::atomic<uint64_t> published_now_{0};

  SetAssocCache l1_;
  std::mutex l1_mu_;

  std::deque<uint64_t> sb_;  // private store buffer: line addresses, FIFO
  std::deque<uint64_t> bg_;  // completion times of async publications
  std::deque<WcEntry> wc_;   // in-flight clean / NT writebacks

  // Eviction-writeback acceptance times: fixed power-of-two ring (capacity
  // kEwbRingSize > kEvictionWbDepth + 1, the max occupancy right after the
  // overflow push). Entries live in [ewb_head_, ewb_head_ + ewb_size_).
  static constexpr uint32_t kEwbRingSize = 32;
  static constexpr uint32_t kEwbRingMask = kEwbRingSize - 1;
  uint64_t ewb_ring_[kEwbRingSize] = {};
  uint32_t ewb_head_ = 0;
  uint32_t ewb_size_ = 0;

  // Deferred eviction-writeback notes accumulated by one fast-forward run.
  static constexpr uint32_t kEvictionTrainCap = 8;
  struct EvictionNote {
    uint64_t acceptance = 0;
    uint64_t start = 0;
  };
  EvictionNote pending_ewb_[kEvictionTrainCap];
  uint32_t pending_ewb_n_ = 0;

  // Host-side saturating score [0, 64] of how miss-dominated the recent
  // fast-forward stream has been (+8 per LLC miss, -1 per L1 hit). Gates
  // the deep whole-SetBlock prefetch variant. Feeds only hardware
  // prefetch hints, so it carries no simulated state.
  uint32_t deep_prefetch_score_ = 0;

  // Exact counting filter over wc_'s line addresses: wc_filter_[WcSlot(a)]
  // is the number of wc_ entries whose line hashes to that slot, updated at
  // every wc_ push/erase/clear. A zero slot proves the line has NO entry
  // (no false negatives), letting the per-access pending-writeback check —
  // the common all-clear case on both the timed path and the fast-forward
  // legs — skip the deque scan. A nonzero slot falls back to the precise
  // scan. Host-side accelerator only: simulated results are unchanged.
  static uint32_t WcSlot(uint64_t line_addr) {
    return static_cast<uint32_t>((line_addr * 0x9e3779b97f4a7c15ULL) >> 56);
  }
  uint16_t wc_filter_[256] = {};

  // Streaming detection (hardware-prefetch stand-in): a load miss adjacent
  // to any tracked stream gets the latency discount. Real prefetchers track
  // many concurrent streams; 8 covers the multi-array kernels here.
  static constexpr size_t kMissStreams = 8;
  uint64_t miss_streams_[kMissStreams] = {};
  size_t next_stream_ = 0;

  // Lines recently written with non-temporal stores: reading one back
  // interferes with the write-combining path and is never prefetched, so it
  // pays the full memory latency (§7.2.1's skip penalty).
  static constexpr size_t kRecentNt = 256;
  uint64_t recent_nt_[kRecentNt] = {};
  size_t next_nt_ = 0;
  // Set once this core issues its first non-temporal store; until then every
  // load miss skips the kRecentNt-entry scan entirely (most workloads never
  // use NT stores, and the scan sits on the load-miss path).
  bool nt_used_ = false;
  bool RecentlyNtWritten(uint64_t line_addr) const {
    if (!nt_used_) {
      return false;
    }
    for (uint64_t l : recent_nt_) {
      if (l == line_addr) {
        return true;
      }
    }
    return false;
  }

  // Lines whose dirty data a clean pre-store wrote back (only maintained
  // while PrestoreHooks are installed): a store to one of them while the
  // line is still LLC-resident means the writeback was wasted — the
  // Listing-3 signal the governor feeds on. (Rewrites of long-evicted lines
  // are benign: their writeback was owed anyway.) Each clean is reported at
  // most once. Direct-mapped by line address, lazily allocated (512 KiB per
  // core, but only on hook-observed runs).
  static constexpr size_t kCleanTableSize = 1 << 16;
  std::vector<uint64_t> recent_clean_;
  void NoteCleanedLine(uint64_t line_addr);
  void NotifyRewriteIfCleaned(uint64_t line_addr);

  CoreStats stats_;

  std::vector<uint32_t> fstack_;
  uint32_t cur_chain_ = kInvalidChain;
  std::unordered_map<uint64_t, uint32_t> chain_cache_;
  std::vector<uint32_t> chain_stack_;  // parallel chain ids for O(1) pop
};

// RAII function annotation. Mirrors the symbol information DirtBuster gets
// from perf/PIN on real binaries.
class ScopedFunction {
 public:
  ScopedFunction(Core& core, FuncToken token) : core_(core) {
    core_.PushFunc(token);
  }
  ~ScopedFunction() { core_.PopFunc(); }

  ScopedFunction(const ScopedFunction&) = delete;
  ScopedFunction& operator=(const ScopedFunction&) = delete;

 private:
  Core& core_;
};

}  // namespace prestore

#endif  // SRC_SIM_CORE_H_
