// Pre-generated YCSB-like access traces and a replay driver for measuring
// the simulation engine's own host-side throughput (DESIGN.md §10).
//
// The trace is generated once, host-side, outside the measured window, so a
// replay exercises pure engine work: store-buffer bookkeeping, L1 probes,
// LLC accesses, device timing. Three replay modes:
//  - concurrent (free-running): worker i's trace runs on core i from its
//    own host thread (RunParallel) — fastest when host cores are plentiful,
//    nondeterministic interleaving, oversubscription cliff past
//    hw_concurrency;
//  - sliced: worker i's trace runs on core i under the deterministic
//    time-sliced scheduler (scheduler.h) — bit-deterministic for any host
//    thread count, immune to oversubscription;
//  - sequential: the traces run to completion one core at a time on the
//    calling host thread — bit-deterministic for a fixed seed, the basis of
//    the determinism digests in tests/sim_determinism_test.cc and the
//    benchmark's self-check.
// Straight-line runs of guaranteed-L1-hit ops are batch-charged via
// Core::FastForwardOps in every mode (disable with
// Machine::SetAnalyticalFastForward(false)).
#ifndef SRC_SIM_REPLAY_H_
#define SRC_SIM_REPLAY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/sim/replay_ops.h"
#include "src/sim/scheduler.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace prestore {

struct ReplayTraceConfig {
  uint32_t workers = 4;
  // Line-granular loads+stores per worker (cleans ride on top).
  uint64_t ops_per_worker = 100000;
  uint64_t keys_per_worker = 4096;  // private value blocks per worker
  uint64_t shared_keys = 1024;      // value blocks all workers touch
  double shared_fraction = 0.125;   // fraction of ops against shared keys
  uint32_t value_size = 256;        // bytes per value block
  double read_ratio = 0.5;          // YCSB-A-like mix
  // Key popularity: zipfian with this theta; 0 selects a uniform,
  // integer-only key stream (no libm involved), which keeps recorded
  // digests portable across hosts.
  double zipf_theta = 0.99;
  // Every Nth PUT closes with a clean pre-store over the value it wrote
  // (the §7.2.3 craft-then-clean shape). 0 disables cleans.
  uint32_t clean_period = 8;
  // Target LLC-miss fraction of the private-key stream, or negative for
  // "off" (the default key distribution above, byte-identical to traces
  // generated before the knob existed). When set in [0, 1], each private
  // draw picks with probability miss_mix a key from the cold tail of the
  // arena (uniform — with the arena sized well past the LLC these are
  // steady-state LLC misses) and otherwise a key from a small hot head
  // sized to stay L1-resident (steady-state L1 hits). The knob therefore
  // dials the actual hit/miss composition of the op stream directly,
  // which is what the miss-leg benchmarks need: miss_mix=0 is the all-hit
  // ceiling, miss_mix=1 the all-miss floor. Shared-key draws and the
  // read/clean mix are unaffected.
  double miss_mix = -1.0;
  uint64_t seed = 42;
};

struct ReplayTrace {
  std::vector<std::vector<ReplayOp>> per_worker;
  uint64_t total_accesses = 0;  // loads + stores across all workers
};

// Aggregated shared-hierarchy counters as plain integers (readable from the
// striped stats and, historically, from the atomic ones).
struct HierarchyCounts {
  uint64_t llc_hits = 0;
  uint64_t llc_misses = 0;
  uint64_t llc_evictions = 0;
  uint64_t back_invalidations = 0;
  uint64_t interventions = 0;
  uint64_t wbq_stall_cycles = 0;
  uint64_t dir_upgrades = 0;
};

struct ReplayResult {
  uint64_t accesses = 0;     // loads + stores executed
  uint64_t sim_cycles = 0;   // simulated elapsed cycles (slowest core)
  double host_seconds = 0.0;
  double accesses_per_sec = 0.0;  // host-side engine throughput
  HierarchyCounts hierarchy;
  uint64_t target_media_bytes = 0;
};

// Lays out one shared arena plus one private arena per worker in the target
// region and pre-generates each worker's op list. Deterministic for a fixed
// config on a fresh machine (allocation order is part of the trace).
inline ReplayTrace GenerateReplayTrace(Machine& machine,
                                       const ReplayTraceConfig& cfg) {
  const uint32_t line = machine.config().line_size;
  const uint32_t value_size =
      cfg.value_size < line ? line : cfg.value_size - cfg.value_size % line;
  const uint32_t value_lines = value_size / line;

  const SimAddr shared_base =
      machine.Alloc(cfg.shared_keys * value_size, Region::kTarget);
  std::vector<SimAddr> worker_base(cfg.workers);
  for (uint32_t w = 0; w < cfg.workers; ++w) {
    worker_base[w] =
        machine.Alloc(cfg.keys_per_worker * value_size, Region::kTarget);
  }

  ReplayTrace trace;
  trace.per_worker.resize(cfg.workers);
  const bool zipf = cfg.zipf_theta > 0.0;
  ZipfianGenerator private_gen(cfg.keys_per_worker,
                               zipf ? cfg.zipf_theta : 0.5);
  ZipfianGenerator shared_gen(cfg.shared_keys, zipf ? cfg.zipf_theta : 0.5);
  // miss_mix partitions the private arena into a hot head that fits in half
  // the machine's L1 (steady-state hits) and a cold tail (steady-state LLC
  // misses once the arena outgrows the LLC). Clamped so both partitions are
  // nonempty for any arena size.
  const bool mix = cfg.miss_mix >= 0.0 && cfg.keys_per_worker > 1;
  const uint64_t l1_lines =
      machine.config().l1.NumSets() * machine.config().l1.ways;
  uint64_t hot_keys = l1_lines / 2 / value_lines;
  if (hot_keys < 1) {
    hot_keys = 1;
  }
  if (hot_keys > cfg.keys_per_worker / 2) {
    hot_keys = cfg.keys_per_worker / 2;
  }
  const double miss_mix = cfg.miss_mix < 1.0 ? cfg.miss_mix : 1.0;
  for (uint32_t w = 0; w < cfg.workers; ++w) {
    Xoshiro256 rng(SplitMix64(cfg.seed ^ (0x9e37ULL * (w + 1))).Next());
    std::vector<ReplayOp>& ops = trace.per_worker[w];
    ops.reserve(cfg.ops_per_worker + cfg.ops_per_worker / 16);
    uint64_t accesses = 0;
    uint64_t puts = 0;
    while (accesses < cfg.ops_per_worker) {
      const bool shared = rng.NextDouble() < cfg.shared_fraction;
      const uint64_t nkeys = shared ? cfg.shared_keys : cfg.keys_per_worker;
      uint64_t key;
      if (mix && !shared) {
        key = rng.NextDouble() < miss_mix
                  ? hot_keys + rng.Below(cfg.keys_per_worker - hot_keys)
                  : rng.Below(hot_keys);
      } else if (zipf) {
        key = shared ? shared_gen.NextScrambled(rng)
                     : private_gen.NextScrambled(rng);
      } else {
        key = rng.Below(nkeys);
      }
      const SimAddr value =
          (shared ? shared_base : worker_base[w]) + key * value_size;
      const bool read = rng.NextDouble() < cfg.read_ratio;
      for (uint32_t l = 0; l < value_lines; ++l) {
        ops.push_back(ReplayOp{value + l * line, 0,
                               read ? ReplayOpKind::kLoad
                                    : ReplayOpKind::kStore});
      }
      accesses += value_lines;
      if (!read && cfg.clean_period != 0 &&
          ++puts % cfg.clean_period == 0) {
        ops.push_back(ReplayOp{value, value_size, ReplayOpKind::kClean});
      }
    }
    trace.total_accesses += accesses;
  }
  return trace;
}

namespace replay_internal {

inline void RunOne(Core& core, const ReplayOp& op) {
  switch (op.kind) {
    case ReplayOpKind::kLoad:
      core.LoadU64(op.addr);
      break;
    case ReplayOpKind::kStore:
      core.StoreU64(op.addr, ReplayStoreValue(op.addr));
      break;
    case ReplayOpKind::kClean:
      core.Prestore(op.addr, op.size, PrestoreOp::kClean);
      break;
  }
}

// Upper bound on ops handed to one FastForwardOps call in concurrent mode,
// where the core's L1 mutex is held for the whole batch: keeps the hold
// time short enough that other cores' back-invalidations and interventions
// are not starved. Exclusive-mode callers (sequential/sliced) elide the
// lock entirely, so the bound costs them only a loop re-entry per chunk.
constexpr size_t kFastForwardChunk = 1024;

inline void RunOps(Core& core, const std::vector<ReplayOp>& ops) {
  const ReplayOp* p = ops.data();
  const size_t n = ops.size();
  size_t i = 0;
  while (i < n) {
    const size_t chunk = std::min(n - i, kFastForwardChunk);
    const size_t done = core.FastForwardOps(p + i, chunk);
    i += done;
    if (done == chunk) {
      continue;  // the whole chunk fast-forwarded; keep going
    }
    // ops[i] hit a fast-forward hazard (miss, clean, pending writeback,
    // non-exclusive store target, or fast-forward is off): run it — and
    // only it — on the full-fidelity path, then resume fast-forwarding.
    RunOne(core, p[i]);
    ++i;
  }
}

inline ReplayResult Finish(Machine& machine, const ReplayTrace& trace,
                           uint64_t start_cycles, double host_seconds) {
  ReplayResult result;
  result.accesses = trace.total_accesses;
  result.host_seconds = host_seconds;
  result.accesses_per_sec =
      host_seconds > 0.0
          ? static_cast<double>(trace.total_accesses) / host_seconds
          : 0.0;
  machine.FlushAll();  // settle dirty state so media accounting is complete
  result.sim_cycles = machine.GlobalTime() - start_cycles;
  const auto& h = machine.hierarchy_stats();
  result.hierarchy.llc_hits = h.llc_hits;
  result.hierarchy.llc_misses = h.llc_misses;
  result.hierarchy.llc_evictions = h.llc_evictions;
  result.hierarchy.back_invalidations = h.back_invalidations;
  result.hierarchy.interventions = h.interventions;
  result.hierarchy.wbq_stall_cycles = h.wbq_stall_cycles;
  result.hierarchy.dir_upgrades = h.dir_upgrades;
  result.target_media_bytes = machine.target().Stats().media_bytes_written;
  return result;
}

}  // namespace replay_internal

// Concurrent replay: worker i's ops on core i, one host thread per worker.
// The measured window covers the replay only (not trace generation or the
// settling flush).
inline ReplayResult ReplayConcurrent(Machine& machine,
                                     const ReplayTrace& trace) {
  const uint64_t start_cycles = machine.GlobalTime();
  // A single worker means a single driving thread (RunParallel runs the
  // body inline, or on one spawned thread under a watchdog — either way
  // nobody else touches simulated state), so the engine's internal locks
  // protect nothing and can be elided.
  std::optional<ExclusiveExecutionScope> exclusive;
  if (trace.per_worker.size() <= 1) {
    exclusive.emplace(machine);
  }
  const auto t0 = std::chrono::steady_clock::now();
  RunParallel(machine, static_cast<uint32_t>(trace.per_worker.size()),
              [&](Core& core, uint32_t w) {
                replay_internal::RunOps(core, trace.per_worker[w]);
              });
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return replay_internal::Finish(machine, trace, start_cycles, dt.count());
}

struct ReplaySlicedOptions {
  uint32_t host_threads = 1;
  uint64_t quantum = 20000;  // simulated cycles per scheduler round
};

// Sliced replay: worker i's ops on core i under the deterministic
// time-sliced scheduler. The end state (and so the digest) depends on the
// trace and the quantum but NOT on host_threads — see scheduler.h. With a
// quantum larger than the whole run, round 0 runs each core to completion
// in core order and the result is bit-identical to ReplaySequential.
inline ReplayResult ReplaySliced(Machine& machine, const ReplayTrace& trace,
                                 const ReplaySlicedOptions& options = {}) {
  SchedulerConfig scfg;
  scfg.host_threads = options.host_threads;
  scfg.quantum = options.quantum;
  SimScheduler sched(machine, scfg);
  for (uint32_t w = 0; w < trace.per_worker.size(); ++w) {
    const std::vector<ReplayOp>& ops = trace.per_worker[w];
    sched.Enqueue(w, [&ops, i = size_t{0}](Core& core,
                                           uint64_t deadline) mutable {
      const ReplayOp* p = ops.data();
      const size_t n = ops.size();
      // Both paths start an op only while now < deadline, and a
      // fast-forwarded op charges exactly the slow-path cycles, so the
      // slice covers the same op range whether fast-forward is on or off
      // (the end state is bit-identical either way; sim_stats_equiv_test).
      while (i < n && core.now() < deadline) {
        i += core.FastForwardOps(p + i, n - i, deadline);
        if (i >= n || core.now() >= deadline) {
          break;
        }
        // ops[i] stopped the fast-forward on a hazard (miss, clean,
        // pending writeback, ...): run it — and only it — at full
        // fidelity, then resume fast-forwarding.
        replay_internal::RunOne(core, p[i]);
        ++i;
      }
      return i >= n;
    });
  }
  const uint64_t start_cycles = machine.GlobalTime();
  const auto t0 = std::chrono::steady_clock::now();
  sched.Run();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return replay_internal::Finish(machine, trace, start_cycles, dt.count());
}

// Sequential replay: each worker's ops run to completion on its core, in
// worker order, on the calling thread. With a fixed seed the entire machine
// end state is bit-reproducible, so its digest can be recorded and compared
// across engine versions.
inline ReplayResult ReplaySequential(Machine& machine,
                                     const ReplayTrace& trace) {
  // One calling thread drives everything, including the settling flush:
  // run the whole replay in exclusive (lock-elided) mode.
  ExclusiveExecutionScope exclusive(machine);
  const uint64_t start_cycles = machine.GlobalTime();
  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t w = 0; w < trace.per_worker.size(); ++w) {
    replay_internal::RunOps(machine.core(w), trace.per_worker[w]);
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return replay_internal::Finish(machine, trace, start_cycles, dt.count());
}

// FNV-1a digest of the machine's observable simulation state: per-core
// clocks, instruction counts and stats, aggregated hierarchy counters,
// device meters, and the (sorted) LLC content. Any engine change that
// alters a simulated result — cycle counts, media bytes, eviction
// decisions — changes this digest. Call only when no cores are running.
inline uint64_t DigestMachine(Machine& machine, uint32_t workers) {
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= v & 0xff;
      h *= 0x100000001b3ULL;
      v >>= 8;
    }
  };
  for (uint32_t i = 0; i < workers; ++i) {
    Core& core = machine.core(i);
    mix(core.now());
    mix(core.icount());
    const CoreStats& s = core.stats();
    mix(s.loads);
    mix(s.stores);
    mix(s.l1_hits);
    mix(s.l1_misses);
    mix(s.sb_forwards);
    mix(s.fences);
    mix(s.fence_stall_cycles);
    mix(s.atomics);
    mix(s.prestores_demote);
    mix(s.prestores_clean);
    mix(s.nt_lines);
    mix(s.cycles_load_miss);
    mix(s.publish_latency_sum);
  }
  const auto& hs = machine.hierarchy_stats();
  mix(hs.llc_hits);
  mix(hs.llc_misses);
  mix(hs.llc_evictions);
  mix(hs.back_invalidations);
  mix(hs.interventions);
  mix(hs.wbq_stall_cycles);
  mix(hs.dir_upgrades);
  for (Device* dev : {&machine.dram(), &machine.target()}) {
    const DeviceStats ds = dev->Stats();
    mix(ds.reads);
    mix(ds.writes);
    mix(ds.bytes_read);
    mix(ds.bytes_received);
    mix(ds.media_bytes_written);
    mix(ds.directory_accesses);
  }
  mix(machine.GlobalTime());
  for (uint64_t line : machine.LlcValidLines()) {
    mix(line);
  }
  return h;
}

}  // namespace prestore

#endif  // SRC_SIM_REPLAY_H_
