// The simulated machine: address space, devices, shared LLC, coherence.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/core.h"
#include "src/sim/device.h"
#include "src/sim/hooks.h"
#include "src/trace/trace.h"

namespace prestore {

// The two address regions. Workloads place their data in kTarget (the memory
// under study: PMEM on Machine A, FPGA memory on Machine B); kDram exists for
// completeness and for data the paper keeps in ordinary memory.
enum class Region : uint8_t {
  kDram,
  kTarget,
};

inline constexpr SimAddr kDramBase = 0x10000;
inline constexpr SimAddr kTargetBase = 1ULL << 32;

// Shared-hierarchy event counters (relaxed atomics; approximate under
// concurrency, intended for diagnostics and benchmarks).
struct MachineStats {
  std::atomic<uint64_t> llc_hits{0};
  std::atomic<uint64_t> llc_misses{0};
  std::atomic<uint64_t> llc_evictions{0};
  std::atomic<uint64_t> back_invalidations{0};  // L1 lines stripped by LLC
  std::atomic<uint64_t> interventions{0};       // dirty-owner snoops
  std::atomic<uint64_t> wbq_stall_cycles{0};    // writeback-queue waits
  std::atomic<uint64_t> dir_upgrades{0};        // far-memory dir round trips

  void Reset() {
    llc_hits = 0;
    llc_misses = 0;
    llc_evictions = 0;
    back_invalidations = 0;
    interventions = 0;
    wbq_stall_cycles = 0;
    dir_upgrades = 0;
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  Core& core(uint32_t i) { return *cores_[i]; }
  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }

  Device& dram() { return *dram_; }
  Device& target() { return *target_; }
  Device& DeviceFor(SimAddr addr) {
    return addr >= kTargetBase ? *target_ : *dram_;
  }

  // ---- Address space ----

  // Bump-allocates `bytes` in the given region, aligned to `align` (default:
  // one cache line, to keep separately allocated objects conflict-free).
  SimAddr Alloc(uint64_t bytes, Region region = Region::kTarget,
                uint64_t align = 0);

  uint8_t* HostPtr(SimAddr addr);
  const uint8_t* HostPtr(SimAddr addr) const;

  // ---- Tracing & symbolization ----

  FunctionRegistry& registry() { return registry_; }
  void SetTraceSink(TraceSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }
  TraceSink* trace_sink() const {
    return sink_.load(std::memory_order_acquire);
  }

  // ---- Robustness hooks (install before a measured run; not thread-safe
  // against running cores; hooks must outlive the run) ----

  // Installs a device-side fault hook on both devices (nullptr clears).
  void SetDeviceFaultHook(DeviceFaultHook* hook) {
    dram_->SetFaultHook(hook);
    target_->SetFaultHook(hook);
  }

  // Registers a pre-store issue-path hook (fault injector, governor, ...).
  // A hint issues only if every registered hook allows it.
  void AddPrestoreHook(PrestoreHook* hook) { prestore_hooks_.push_back(hook); }
  void ClearPrestoreHooks() { prestore_hooks_.clear(); }
  const std::vector<PrestoreHook*>& prestore_hooks() const {
    return prestore_hooks_;
  }

  // ---- Measurement helpers ----

  // Aligns every core's local clock to the global maximum (start of a
  // measured phase) and returns that time.
  uint64_t AlignCores();
  uint64_t GlobalTime() const;
  // Max over the cores' lock-free published clocks (used by SpinPause; may
  // lag each core's true clock by up to one ordering operation).
  uint64_t ApproxGlobalTime() const;
  void ResetStats();

  // Retires all queued device work (interface and media meters), modeling
  // the idle gap every real experiment leaves between its load phase and
  // its measurement window. Pair with FlushAll + ResetStats when a run's
  // latency numbers must not inherit the preload's eviction backlog.
  void QuiesceDevices() {
    dram_->Quiesce();
    target_->Quiesce();
  }

  // Publishes all private stores, writes every dirty line back and drains
  // device buffers, so that media-byte accounting covers all traffic.
  void FlushAll();

  // ---- Coherence (called by Core; do not hold locks when calling) ----

  enum class AccessMode : uint8_t { kRead, kWrite, kDemote };

  // Ensures `line_addr` is present in the LLC with the coherence state the
  // mode requires, charging directory/device costs. `streamed` applies the
  // sequential-stream latency discount (hardware-prefetch stand-in).
  // `incoming_dirty` is used by kDemote to push modified data down.
  uint64_t LlcAccess(uint8_t self, uint64_t line_addr, AccessMode mode,
                     uint64_t start, bool streamed = false,
                     bool incoming_dirty = false);

  // Makes a private store globally visible: line ends up Modified in core
  // `self`'s L1. Returns completion time. (The §4.2 "publication" cost.)
  uint64_t PublishLine(uint8_t self, uint64_t line_addr, uint64_t start);

  // Demote pre-store: publication straight into the LLC; the L1 copy (if
  // any) moves down with its dirtiness.
  uint64_t PublishLineDemote(uint8_t self, uint64_t line_addr, uint64_t start);

  // Clean pre-store: write the line's dirty data (wherever it is) back to
  // its device, keeping it cached. Returns writeback completion (== start
  // when nothing was dirty).
  uint64_t CleanLine(uint8_t self, uint64_t line_addr, uint64_t start);

  // Invalidate the line everywhere (non-temporal store path). Dirty data is
  // dropped from the timing model (the NT store supersedes it functionally).
  void InvalidateLine(uint8_t self, uint64_t line_addr);

  // Handles a dirty line evicted from an L1: merge into LLC or write through
  // to the device.
  void L1VictimWriteback(uint8_t self, uint64_t line_addr, bool dirty,
                         uint64_t now);

  uint64_t LineBaseOf(SimAddr addr) const {
    return LineBase(addr, config_.line_size);
  }

  // Non-mutating residency probe against the (inclusive) LLC. Used by the
  // rewrite-after-clean detector: a rewrite wastes the clean's writeback
  // only while the line is still cached (absent the clean the dirty data
  // would have coalesced); a long-evicted line owed its writeback anyway.
  bool LlcResident(uint64_t line_addr) {
    std::lock_guard<std::mutex> lock(ShardFor(line_addr));
    return llc_->Probe(line_addr) != nullptr;
  }

  MachineStats& hierarchy_stats() { return hstats_; }

 private:
  std::mutex& ShardFor(uint64_t line_addr) {
    return llc_shards_[llc_->SetIndexOf(line_addr) % kNumShards];
  }

  // Handles an LLC victim under the shard lock: back-invalidates L1 copies
  // and writes dirty data to the device. Returns the time the evicting
  // access of core `self` may proceed: eviction writebacks go through the
  // core's bounded writeback queue, so a device that has fallen behind
  // stalls the cache (without this, deferred eviction traffic would be free
  // and the §4.1 write amplification could never cost baseline runtime).
  uint64_t HandleLlcVictimLocked(uint8_t self,
                                 const SetAssocCache::Victim& victim,
                                 uint64_t now);

  static constexpr size_t kNumShards = 64;

  MachineConfig config_;
  std::unique_ptr<Device> dram_;
  std::unique_ptr<Device> target_;

  std::unique_ptr<SetAssocCache> llc_;
  std::vector<std::mutex> llc_shards_{kNumShards};

  std::vector<std::unique_ptr<Core>> cores_;

  std::vector<uint8_t> dram_backing_;
  std::vector<uint8_t> target_backing_;
  std::atomic<uint64_t> dram_brk_{0};
  std::atomic<uint64_t> target_brk_{0};

  MachineStats hstats_;
  FunctionRegistry registry_;
  std::atomic<TraceSink*> sink_{nullptr};
  std::vector<PrestoreHook*> prestore_hooks_;
};

}  // namespace prestore

#endif  // SRC_SIM_MACHINE_H_
