// The simulated machine: address space, devices, shared LLC, coherence.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/cache.h"
#include "src/sim/config.h"
#include "src/sim/core.h"
#include "src/sim/device.h"
#include "src/sim/hooks.h"
#include "src/sim/optlock.h"
#include "src/trace/trace.h"

namespace prestore {

// The two address regions. Workloads place their data in kTarget (the memory
// under study: PMEM on Machine A, FPGA memory on Machine B); kDram exists for
// completeness and for data the paper keeps in ordinary memory.
enum class Region : uint8_t {
  kDram,
  kTarget,
};

inline constexpr SimAddr kDramBase = 0x10000;
inline constexpr SimAddr kTargetBase = 1ULL << 32;

// Aggregated shared-hierarchy event counters, as returned by
// Machine::hierarchy_stats(): the on-demand sum of the per-core stripes.
struct MachineStats {
  uint64_t llc_hits = 0;
  uint64_t llc_misses = 0;
  uint64_t llc_evictions = 0;
  uint64_t back_invalidations = 0;  // L1 lines stripped by LLC
  uint64_t interventions = 0;       // dirty-owner snoops
  uint64_t wbq_stall_cycles = 0;    // writeback-queue waits
  uint64_t dir_upgrades = 0;        // far-memory dir round trips
};

// One core's private slice of the shared-hierarchy counters. Padded to a
// cache line so neighbouring cores' bumps never share one. Each stripe is
// written only by the owning core's host thread, so bumps are single-writer
// relaxed load+store pairs — no RMW, no contention — while readers
// (aggregation, mid-run diagnostics) stay race-free.
struct alignas(64) MachineStatStripe {
  std::atomic<uint64_t> llc_hits{0};
  std::atomic<uint64_t> llc_misses{0};
  std::atomic<uint64_t> llc_evictions{0};
  std::atomic<uint64_t> back_invalidations{0};
  std::atomic<uint64_t> interventions{0};
  std::atomic<uint64_t> wbq_stall_cycles{0};
  std::atomic<uint64_t> dir_upgrades{0};

  void Reset() {
    llc_hits.store(0, std::memory_order_relaxed);
    llc_misses.store(0, std::memory_order_relaxed);
    llc_evictions.store(0, std::memory_order_relaxed);
    back_invalidations.store(0, std::memory_order_relaxed);
    interventions.store(0, std::memory_order_relaxed);
    wbq_stall_cycles.store(0, std::memory_order_relaxed);
    dir_upgrades.store(0, std::memory_order_relaxed);
  }
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return config_; }
  Core& core(uint32_t i) { return *cores_[i]; }
  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }

  Device& dram() { return *dram_; }
  Device& target() { return *target_; }
  Device& DeviceFor(SimAddr addr) {
    return addr >= kTargetBase ? *target_ : *dram_;
  }

  // ---- Address space ----

  // Bump-allocates `bytes` in the given region, aligned to `align` (default:
  // one cache line, to keep separately allocated objects conflict-free).
  SimAddr Alloc(uint64_t bytes, Region region = Region::kTarget,
                uint64_t align = 0);

  uint8_t* HostPtr(SimAddr addr) {
    return addr >= kTargetBase
               ? target_backing_.data() + (addr - kTargetBase)
               : dram_backing_.data() + (addr - kDramBase);
  }
  const uint8_t* HostPtr(SimAddr addr) const {
    return const_cast<Machine*>(this)->HostPtr(addr);
  }

  // ---- Tracing & symbolization ----

  FunctionRegistry& registry() { return registry_; }
  // Install/clear the trace sink. Safe mid-run: each core caches the
  // pointer in a core-local atomic (refreshed here), so its per-op emit
  // check is one uncontended acquire load — a plain load on x86/ARM —
  // instead of a pointer chase through the machine.
  void SetTraceSink(TraceSink* sink) {
    sink_.store(sink, std::memory_order_release);
    RefreshCoreFastPaths();
  }
  TraceSink* trace_sink() const {
    return sink_.load(std::memory_order_acquire);
  }

  // ---- Robustness hooks (install before a measured run; not thread-safe
  // against running cores; hooks must outlive the run) ----

  // Installs a device-side fault hook on both devices (nullptr clears).
  void SetDeviceFaultHook(DeviceFaultHook* hook) {
    dram_->SetFaultHook(hook);
    target_->SetFaultHook(hook);
  }

  // Registers a pre-store issue-path hook (fault injector, governor, ...).
  // A hint issues only if every registered hook allows it.
  void AddPrestoreHook(PrestoreHook* hook) {
    prestore_hooks_.push_back(hook);
    RefreshCoreFastPaths();
  }
  void ClearPrestoreHooks() {
    prestore_hooks_.clear();
    RefreshCoreFastPaths();
  }
  const std::vector<PrestoreHook*>& prestore_hooks() const {
    return prestore_hooks_;
  }

  // Installs (or clears, with nullptr) the single sampled-access observer
  // (src/monitor). Same contract as the pre-store hooks: install with cores
  // quiesced, hook outlives the run. Disables analytical fast-forward while
  // installed (Core::FastForwardOps bails — observed runs see every op).
  void SetAccessSampleHook(AccessSampleHook* hook) {
    access_sampler_ = hook;
    RefreshCoreFastPaths();
  }
  AccessSampleHook* access_sample_hook() const { return access_sampler_; }

  // ---- Execution modes (DESIGN.md §12) ----

  // Exclusive execution: the caller guarantees that AT MOST ONE host thread
  // drives the machine (cores, coherence, devices) at any instant — either
  // truly single-threaded (sequential replay, 1-worker runs) or serialized
  // with proper handoff synchronization (the time-sliced scheduler). While
  // set, every engine serialization mutex is elided (optlock.h); simulated
  // results are unchanged (the mutexes never affected them). Toggle only
  // while no cores are running.
  void SetExclusiveExecution(bool on) {
    exclusive_.store(on, std::memory_order_release);
    dram_->SetLockFree(on);
    target_->SetLockFree(on);
    RefreshCoreFastPaths();
  }
  bool exclusive_execution() const {
    return exclusive_.load(std::memory_order_relaxed);
  }

  // Analytical fast-forward (Core::FastForwardOps) enable; default on.
  // Turning it off forces every replay op down the full timing path — the
  // fast-forward equivalence tests compare the two. Toggle only while no
  // cores are running.
  void SetAnalyticalFastForward(bool on) {
    fast_forward_.store(on, std::memory_order_release);
    RefreshCoreFastPaths();
  }
  bool fast_forward_enabled() const {
    return fast_forward_.load(std::memory_order_relaxed);
  }

  // ---- Measurement helpers ----

  // Aligns every core's local clock to the global maximum (start of a
  // measured phase) and returns that time.
  uint64_t AlignCores();
  uint64_t GlobalTime() const;
  // Max over the cores' lock-free published clocks (used by SpinPause; may
  // lag each core's true clock by up to one ordering operation).
  uint64_t ApproxGlobalTime() const;
  void ResetStats();

  // Retires all queued device work (interface and media meters), modeling
  // the idle gap every real experiment leaves between its load phase and
  // its measurement window. Pair with FlushAll + ResetStats when a run's
  // latency numbers must not inherit the preload's eviction backlog.
  void QuiesceDevices() {
    dram_->Quiesce();
    target_->Quiesce();
  }

  // Publishes all private stores, writes every dirty line back and drains
  // device buffers, so that media-byte accounting covers all traffic.
  void FlushAll();

  // ---- Coherence (called by Core; do not hold locks when calling) ----

  enum class AccessMode : uint8_t { kRead, kWrite, kDemote };

  // Ensures `line_addr` is present in the LLC with the coherence state the
  // mode requires, charging directory/device costs. `streamed` applies the
  // sequential-stream latency discount (hardware-prefetch stand-in).
  // `incoming_dirty` is used by kDemote to push modified data down.
  uint64_t LlcAccess(uint8_t self, uint64_t line_addr, AccessMode mode,
                     uint64_t start, bool streamed = false,
                     bool incoming_dirty = false);

  // Makes a private store globally visible: line ends up Modified in core
  // `self`'s L1. Returns completion time. (The §4.2 "publication" cost.)
  uint64_t PublishLine(uint8_t self, uint64_t line_addr, uint64_t start);

  // Demote pre-store: publication straight into the LLC; the L1 copy (if
  // any) moves down with its dirtiness.
  uint64_t PublishLineDemote(uint8_t self, uint64_t line_addr, uint64_t start);

  // Clean pre-store: write the line's dirty data (wherever it is) back to
  // its device, keeping it cached. Returns writeback completion (== start
  // when nothing was dirty).
  uint64_t CleanLine(uint8_t self, uint64_t line_addr, uint64_t start);

  // Invalidate the line everywhere (non-temporal store path). Dirty data is
  // dropped from the timing model (the NT store supersedes it functionally).
  void InvalidateLine(uint8_t self, uint64_t line_addr);

  // Handles a dirty line evicted from an L1: merge into LLC or write through
  // to the device. Inline: runs on every L1 fill whose victim was valid,
  // which a miss-dominated stream makes nearly every op.
  void L1VictimWriteback(uint8_t self, uint64_t line_addr, bool dirty,
                         uint64_t now) {
    {
      LlcShard& shard = ShardFor(line_addr);
      OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
      CacheLineMeta* meta = shard.cache->Probe(line_addr);
      if (meta != nullptr) {
        meta->sharers &= ~(1ULL << self);
        if (meta->owner == self) {
          meta->owner = kNoOwner;
        }
        if (dirty) {
          meta->dirty = true;
        }
        return;
      }
    }
    // Dirty victim with no LLC copy: the memory write needs no shard state,
    // so it runs with the shard unlocked.
    if (dirty) {
      DeviceFor(line_addr).Write(line_addr, config_.line_size, now);
    }
  }

  // ---- Exclusive-mode analytical fast path (Core::FastForwardOps) ----

  // Outcome of the inline LLC probe below: the access either committed as
  // a reduced hit (kHit), is a genuine LLC miss the caller may commit
  // analytically via FastLlcMiss (kMiss), or needs the full coherence
  // protocol (kBail — intervention, snoop, or far-memory directory work).
  enum class FastLlc : uint8_t { kHit, kMiss, kBail };

  // Tries to charge an LLC hit analytically. Eligible iff the line is
  // LLC-resident with no FOREIGN Modified owner and, for kWrite, no
  // foreign sharers and a non-far backing device — exactly the cases where
  // LlcAccess's hit path reduces to {replacement touch, llc_hits bump, hit
  // latency, directory update} with no snoop, intervention, or device
  // work. On kHit commits that reduced hit path bit-exactly and writes
  // the completion time (start + LLC hit latency) to `completion`. On
  // kMiss/kBail mutates nothing but the set's way hint, so the caller
  // (FastLlcMiss on kMiss, the full LlcAccess on kBail) replays the access
  // from a bit-identical machine. Exclusive execution only (touches shard
  // state without its lock); inline because it runs for nearly every L1
  // miss of a fast-forwarded replay.
  FastLlc TryFastLlcHit(uint8_t self, uint64_t line_addr, AccessMode mode,
                        uint64_t start, uint64_t* completion) {
    SetAssocCache& llc = *ShardFor(line_addr).cache;
    CacheLineMeta* meta = llc.Probe(line_addr);
    if (meta == nullptr) {
      return FastLlc::kMiss;  // device read + insert + possible eviction
    }
    if (meta->owner != kNoOwner && meta->owner != self) {
      return FastLlc::kBail;  // foreign Modified owner: intervention
    }
    if (mode == AccessMode::kWrite) {
      if ((meta->sharers & ~(1ULL << self)) != 0) {
        return FastLlc::kBail;  // foreign sharers: snoop + back-invalidation
      }
      if (meta->owner != self &&
          DeviceFor(line_addr).config().kind == DeviceKind::kFarMemory) {
        return FastLlc::kBail;  // upgrade needs the on-device directory
      }
    }
    // Same replacement touch LlcAccess's first probe performs (the probe
    // above left the way hint at the line, so the tag scan is one
    // compare), then the hit path's accounting and directory update, minus
    // the branches just proven dead.
    llc.Touch(line_addr);
    Bump(self, &MachineStatStripe::llc_hits);
    ApplyAccessModeLocked(meta, self, mode, /*incoming_dirty=*/false);
    *completion = start + config_.llc.hit_latency;
    return FastLlc::kHit;
  }

  // Whether a TryFastLlcHit kMiss may be committed analytically by
  // FastLlcMiss. Bails on the two miss-path hazards whose costs the
  // analytical leg does not model: an installed device fault hook (whose
  // time-varying multipliers belong to observed robustness runs, not
  // fast-forwarded ones) and far-memory writes (whose misses pay a
  // pre-read DirectoryAccess plus a dir_upgrades bump).
  bool FastMissEligible(uint64_t line_addr, bool is_write) {
    Device& dev = DeviceFor(line_addr);
    if (dev.HasFaultHook()) {
      return false;
    }
    if (is_write && dev.config().kind == DeviceKind::kFarMemory) {
      return false;
    }
    return true;
  }

  // Commits a genuine LLC miss analytically: the exact LlcAccess miss
  // sequence — device read, stream discount, miss accounting, insert,
  // victim handling, directory update, eviction writeback — minus the
  // branches exclusive execution and FastMissEligible prove dead:
  //   * the re-probe after the (lock-elided) device read is a guaranteed
  //     re-miss: the failed Touch in TryFastLlcHit mutated nothing and no
  //     other thread ran, so the line cannot have appeared;
  //   * far-write directory work is excluded by FastMissEligible.
  // A dirty victim's device Write still happens HERE, in program order at
  // the access start (XPBuffer state is order-sensitive); only the
  // bounded-queue admission bookkeeping joins the core's deferred train,
  // and only when CanDeferEvictionWriteback proves the per-line path would
  // have returned `start` with no stall bump (see core.h). Exclusive
  // execution only; caller checked FastMissEligible.
  uint64_t FastLlcMiss(uint8_t self, uint64_t line_addr, AccessMode mode,
                       uint64_t start, bool streamed) {
    Device& dev = DeviceFor(line_addr);
    SetAssocCache& llc = *ShardFor(line_addr).cache;
    const uint64_t read_done = dev.Read(line_addr, config_.line_size, start);
    uint64_t t =
        StreamDiscount(start, read_done, dev.config().read_latency, streamed);
    Bump(self, &MachineStatStripe::llc_misses);
    CacheLineMeta* meta = nullptr;
    const SetAssocCache::Victim victim = llc.Insert(line_addr, false, &meta);
    const bool wb_owed = HandleLlcVictimLocked(self, victim);
    ApplyAccessModeLocked(meta, self, mode, /*incoming_dirty=*/false);
    if (wb_owed) {
      Core& core = *cores_[self];
      if (core.CanDeferEvictionWriteback()) {
        const uint64_t acceptance = DeviceFor(victim.line_addr)
                                        .Write(victim.line_addr,
                                               config_.line_size, start);
        core.DeferEvictionWriteback(acceptance, start);
      } else {
        core.FlushEvictionTrain();
        t = std::max(t,
                     FinishEvictionWriteback(self, victim.line_addr, start));
      }
    }
    return t;
  }

  // Host-side prefetch of the simulator structures a near-future replay op
  // will touch: the line's LLC tag/meta set arrays and its backing host
  // data. Pure hardware hint — mutates no simulated state, so issuing it
  // for any address (even one the op stream later skips) cannot change a
  // result. The replay fast path calls this a fixed distance ahead of the
  // op cursor because the engine is host-cache-miss-bound on exactly these
  // arrays once the simulated working set outgrows the host LLC.
  // `deep` selects the miss-oriented variant (PrefetchSetAll): a miss-leg
  // op additionally walks the full tag array and the victim's meta record,
  // none of which the hinted two-line prefetch covers. Callers flip it on
  // when their recent op stream has been miss-dominated, and must have
  // issued PrefetchHeadersForAccess for the line a beat earlier (the deep
  // variant reads the set header to predict the victim).
  // `host_data` additionally warms the line's backing host bytes — wanted
  // only for ops that will actually read or write them (stores; loads are
  // timing-only in the replay fast path), so callers can skip a whole
  // wasted host-memory fetch per load.
  void PrefetchForAccess(uint64_t line_addr, bool deep, bool host_data) {
    if (deep) {
      ShardFor(line_addr).cache->PrefetchSetAll(line_addr);
    } else {
      ShardFor(line_addr).cache->PrefetchSet(line_addr);
    }
    if (host_data) {
      __builtin_prefetch(HostPtr(line_addr), 1, 1);
    }
  }

  // First stage of the two-distance prefetch pipeline: pure address
  // arithmetic, reads no simulator state, so it can run arbitrarily far
  // ahead of the op cursor without stalling on cold lines.
  void PrefetchHeadersForAccess(uint64_t line_addr) {
    ShardFor(line_addr).cache->PrefetchSetHeader(line_addr);
  }

  uint64_t LineBaseOf(SimAddr addr) const {
    return LineBase(addr, config_.line_size);
  }

  // Non-mutating residency probe against the (inclusive) LLC. Used by the
  // rewrite-after-clean detector: a rewrite wastes the clean's writeback
  // only while the line is still cached (absent the clean the dirty data
  // would have coalesced); a long-evicted line owed its writeback anyway.
  bool LlcResident(uint64_t line_addr) {
    LlcShard& shard = ShardFor(line_addr);
    OptionalLockGuard lock(shard.mu, exclusive_execution());
    return shard.cache->Peek(line_addr) != nullptr;
  }

  // LlcResident plus the line's dirtiness — the region monitor's
  // once-per-region-per-interval pull probe. Non-mutating (no replacement
  // touch, no way-hint update, no stats — hence Peek); `*dirty` is written
  // only on residency.
  bool LlcProbe(uint64_t line_addr, bool* dirty) {
    LlcShard& shard = ShardFor(line_addr);
    OptionalLockGuard lock(shard.mu, exclusive_execution());
    const CacheLineMeta* meta = shard.cache->Peek(line_addr);
    if (meta == nullptr) {
      return false;
    }
    *dirty = meta->dirty;
    return true;
  }

  // Bytes bump-allocated in the target region so far. Lets callers (e.g. a
  // whole-workload region monitor) cover exactly the allocated target span
  // [kTargetBase, kTargetBase + target_allocated()).
  uint64_t target_allocated() const {
    return target_brk_.load(std::memory_order_relaxed);
  }

  // On-demand aggregate of the per-core counter stripes. Exact once the
  // cores have quiesced; a mid-run snapshot may miss in-flight bumps (the
  // old global-atomic accounting had the same property).
  MachineStats hierarchy_stats() const {
    MachineStats out;
    for (size_t i = 0; i < cores_.size(); ++i) {
      const MachineStatStripe& s = hstripes_[i];
      out.llc_hits += s.llc_hits.load(std::memory_order_relaxed);
      out.llc_misses += s.llc_misses.load(std::memory_order_relaxed);
      out.llc_evictions += s.llc_evictions.load(std::memory_order_relaxed);
      out.back_invalidations +=
          s.back_invalidations.load(std::memory_order_relaxed);
      out.interventions += s.interventions.load(std::memory_order_relaxed);
      out.wbq_stall_cycles +=
          s.wbq_stall_cycles.load(std::memory_order_relaxed);
      out.dir_upgrades += s.dir_upgrades.load(std::memory_order_relaxed);
    }
    return out;
  }

  // Test-only: additionally mirror every stripe bump into one shared struct
  // with fetch_add — the pre-rework accounting — so a test can assert the
  // striped aggregate reproduces it exactly on the same concurrent run.
  // Call before the run; costs one predictable branch per bump thereafter.
  void EnableShadowStats() {
    if (shadow_hstats_ == nullptr) {
      shadow_hstats_ = std::make_unique<MachineStatStripe>();
    }
  }
  MachineStats ShadowStatsSnapshot() const {
    MachineStats out;
    if (shadow_hstats_ != nullptr) {
      const MachineStatStripe& s = *shadow_hstats_;
      out.llc_hits = s.llc_hits.load(std::memory_order_relaxed);
      out.llc_misses = s.llc_misses.load(std::memory_order_relaxed);
      out.llc_evictions = s.llc_evictions.load(std::memory_order_relaxed);
      out.back_invalidations =
          s.back_invalidations.load(std::memory_order_relaxed);
      out.interventions = s.interventions.load(std::memory_order_relaxed);
      out.wbq_stall_cycles =
          s.wbq_stall_cycles.load(std::memory_order_relaxed);
      out.dir_upgrades = s.dir_upgrades.load(std::memory_order_relaxed);
    }
    return out;
  }

  // Sorted addresses of every line currently valid in the LLC. Diagnostics
  // and determinism digests only — call when no cores are running.
  std::vector<uint64_t> LlcValidLines() const;

 private:
  // One LLC shard: every kNumShards-th set of the logical LLC, with its own
  // replacement state and lock, padded so shards never share a cache line.
  // The shard of global set g is g % kNumShards — the same mapping the
  // pre-rework engine used for its mutex array, so the serialization
  // constraints (and hence all simulated results) are unchanged.
  struct alignas(64) LlcShard {
    std::unique_ptr<SetAssocCache> cache;
    std::mutex mu;
  };

  size_t LlcShardIndexOf(uint64_t line_addr) const {
    const uint64_t frame = line_addr >> llc_line_shift_;
    const uint64_t g = llc_set_mask_ != 0 ? (frame & llc_set_mask_)
                                          : llc_set_mod_.Mod(frame);
    return g & (kNumShards - 1);
  }
  LlcShard& ShardFor(uint64_t line_addr) {
    return llc_shards_[LlcShardIndexOf(line_addr)];
  }

  // Streamed (sequential) misses hide most of the device access time
  // behind the previous transfers, standing in for hardware stride
  // prefetching: the prefetcher issued this fetch several lines ago, so
  // both the device latency and most of its queueing are already absorbed.
  // The device meter still carries the full work (bandwidth is conserved);
  // only the streaming requester's experienced wait shrinks. Shared by
  // LlcAccess (machine.cc) and the inline FastLlcMiss above.
  static uint64_t StreamDiscount(uint64_t start, uint64_t completion,
                                 uint32_t read_latency, bool streamed) {
    if (!streamed || completion <= start) {
      return completion;
    }
    const uint64_t total = completion - start;
    const uint64_t floor = read_latency / 8 + 1;
    const uint64_t discounted = total / 4 > floor ? total / 4 : floor;
    return discounted < total ? start + discounted : completion;
  }

  // Directory update for the access mode; the final step of every LLC
  // access once the coherence protocol has run.
  static void ApplyAccessModeLocked(CacheLineMeta* meta, uint8_t self,
                                    AccessMode mode, bool incoming_dirty) {
    switch (mode) {
      case AccessMode::kRead:
        meta->sharers |= 1ULL << self;
        break;
      case AccessMode::kWrite:
        meta->sharers = 1ULL << self;
        meta->owner = self;
        break;
      case AccessMode::kDemote:
        meta->sharers &= ~(1ULL << self);
        meta->owner = kNoOwner;
        meta->dirty = meta->dirty || incoming_dirty;
        break;
    }
  }

  // Hit-path coherence protocol, run under the line's shard lock: hit
  // accounting, intervention on a Modified owner, snoop of other sharers on
  // non-read access, the far-memory directory upgrade, and the mode's
  // directory update. Shared by the first probe and the post-miss re-probe
  // so a line another core filled while the shard was unlocked gets the
  // identical treatment. Returns the access completion time.
  uint64_t LlcHitLocked(uint8_t self, uint64_t line_addr, AccessMode mode,
                        bool incoming_dirty, Device& dev, bool far,
                        CacheLineMeta* meta, uint64_t t);

  // Handles an LLC victim under the shard lock: back-invalidates L1 copies
  // and accounts the eviction. Returns true when a dirty writeback is owed;
  // the caller performs it via FinishEvictionWriteback AFTER releasing the
  // shard lock (device meters have their own synchronization).
  bool HandleLlcVictimLocked(uint8_t self,
                             const SetAssocCache::Victim& victim);

  // Issues an eviction writeback to the victim's device. Returns the time
  // the evicting access of core `self` may proceed: eviction writebacks go
  // through the core's bounded writeback queue, so a device that has fallen
  // behind stalls the cache (without this, deferred eviction traffic would
  // be free and the §4.1 write amplification could never cost baseline
  // runtime).
  uint64_t FinishEvictionWriteback(uint8_t self, uint64_t line_addr,
                                   uint64_t now);

  // Single-writer stripe bump (core `self`'s host thread), mirrored into
  // the shadow struct when a stats-equivalence test enabled it.
  void Bump(uint8_t self, std::atomic<uint64_t> MachineStatStripe::*field,
            uint64_t n = 1) {
    std::atomic<uint64_t>& c = hstripes_[self].*field;
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
    if (shadow_hstats_ != nullptr) {
      (shadow_hstats_.get()->*field).fetch_add(n, std::memory_order_relaxed);
    }
  }

  void RefreshCoreFastPaths();

  static constexpr size_t kNumShards = 64;

  MachineConfig config_;
  std::unique_ptr<Device> dram_;
  std::unique_ptr<Device> target_;

  std::vector<LlcShard> llc_shards_;
  uint64_t llc_global_sets_ = 0;
  uint64_t llc_set_mask_ = 0;  // llc_global_sets_ - 1 when pow2, else 0
  // Remainder by llc_global_sets_ for the non-power-of-two fallback (same
  // magic-multiply trick as SetAssocCache::GlobalSetOf).
  ModReciprocal llc_set_mod_;
  uint32_t llc_line_shift_ = 0;

  std::vector<std::unique_ptr<Core>> cores_;

  std::vector<uint8_t> dram_backing_;
  std::vector<uint8_t> target_backing_;
  std::atomic<uint64_t> dram_brk_{0};
  std::atomic<uint64_t> target_brk_{0};

  std::unique_ptr<MachineStatStripe[]> hstripes_;  // one per core
  std::unique_ptr<MachineStatStripe> shadow_hstats_;
  FunctionRegistry registry_;
  std::atomic<TraceSink*> sink_{nullptr};
  std::vector<PrestoreHook*> prestore_hooks_;
  AccessSampleHook* access_sampler_ = nullptr;
  std::atomic<bool> exclusive_{false};
  std::atomic<bool> fast_forward_{true};
};

// RAII scope for Machine::SetExclusiveExecution: sets the mode on entry and
// restores the previous mode on exit (exception-safe, nestable).
class ExclusiveExecutionScope {
 public:
  explicit ExclusiveExecutionScope(Machine& machine)
      : machine_(machine), prev_(machine.exclusive_execution()) {
    machine_.SetExclusiveExecution(true);
  }
  ~ExclusiveExecutionScope() { machine_.SetExclusiveExecution(prev_); }

  ExclusiveExecutionScope(const ExclusiveExecutionScope&) = delete;
  ExclusiveExecutionScope& operator=(const ExclusiveExecutionScope&) = delete;

 private:
  Machine& machine_;
  bool prev_;
};

}  // namespace prestore

#endif  // SRC_SIM_MACHINE_H_
