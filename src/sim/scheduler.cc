#include "src/sim/scheduler.h"

#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace prestore {

void SchedulerConfig::Validate() const {
  if (quantum == 0) {
    throw std::invalid_argument(
        "scheduler: quantum must be > 0 simulated cycles");
  }
  if (host_threads == 0) {
    throw std::invalid_argument("scheduler: host_threads must be > 0");
  }
}

SimScheduler::SimScheduler(Machine& machine, const SchedulerConfig& config)
    : machine_(machine), config_(config) {
  config_.Validate();
  queues_.resize(machine.config().num_cores);
}

void SimScheduler::Enqueue(uint32_t core, SliceFn task) {
  queues_.at(core).push_back(std::move(task));
}

bool SimScheduler::AnyPending() const {
  for (const auto& q : queues_) {
    if (!q.empty()) {
      return true;
    }
  }
  return false;
}

void SimScheduler::RunSlice(uint32_t core_idx, uint64_t deadline) {
  Core& core = machine_.core(core_idx);
  std::deque<SliceFn>& q = queues_[core_idx];
  while (!q.empty() && core.now() < deadline) {
    if (q.front()(core, deadline)) {
      q.pop_front();
    }
  }
}

uint64_t SimScheduler::Run() {
  // Exactly one host thread executes simulated work at any instant (see
  // the header's determinism contract), so the engine's internal mutexes
  // protect nothing here — elide them all for the duration.
  ExclusiveExecutionScope exclusive(machine_);
  const uint64_t start = machine_.GlobalTime();
  if (config_.host_threads <= 1) {
    uint64_t round = 0;
    while (AnyPending()) {
      const uint64_t deadline = start + (round + 1) * config_.quantum;
      for (uint32_t c = 0; c < queues_.size(); ++c) {
        RunSlice(c, deadline);
      }
      ++round;
    }
  } else {
    RunHandoff(start);
  }
  return machine_.GlobalTime() - start;
}

void SimScheduler::RunHandoff(uint64_t start) {
  // Slices execute under `mu` in the same (round, core) order the serial
  // path uses; slice k belongs to thread k % M. The unlock/lock pair
  // between consecutive slices is the handoff: it orders slice k's writes
  // before slice k+1's reads (happens-before), so every simulated outcome
  // is independent of M by construction — which is the point: the thread
  // count must be unobservable in the digest.
  std::mutex mu;
  std::condition_variable cv;
  uint64_t round = 0;
  uint32_t cursor = 0;    // next core index to consider this round
  uint64_t slices = 0;    // slices executed so far (global slice order)
  bool done = !AnyPending();
  const uint32_t m = config_.host_threads;

  auto worker = [&](uint32_t id) {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] { return done || slices % m == id; });
      if (done) {
        return;
      }
      // Advance the cursor to the next core with pending work, rolling
      // over to a new round when this one is exhausted.
      while (true) {
        while (cursor < queues_.size() && queues_[cursor].empty()) {
          ++cursor;
        }
        if (cursor < queues_.size()) {
          break;
        }
        cursor = 0;
        ++round;
        if (!AnyPending()) {
          done = true;
          cv.notify_all();
          return;
        }
      }
      const uint32_t core = cursor++;
      RunSlice(core, start + (round + 1) * config_.quantum);
      ++slices;
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (uint32_t id = 0; id < m; ++id) {
    threads.emplace_back(worker, id);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace prestore
