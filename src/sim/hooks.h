// Observation / intervention points the simulator exposes to the robustness
// layer (src/robust): deterministic fault injection hooks into the device
// timing paths, and pre-store hint hooks into the core's issue path.
//
// Hooks are installed on a Machine (or a Device) BEFORE a measured run and
// must stay alive until the run finishes; installation is not thread-safe
// with respect to running cores. All callbacks may be invoked concurrently
// from every core's host thread and must be internally synchronized.
#ifndef SRC_SIM_HOOKS_H_
#define SRC_SIM_HOOKS_H_

#include <cstdint>

#include "src/core/prestore.h"

namespace prestore {

// Device-side fault injection. A null hook (the default) means "no faults";
// every method must be cheap — they sit on the device timing fast path.
class DeviceFaultHook {
 public:
  virtual ~DeviceFaultHook() = default;

  // Additional cycles added to the completion of a read/write issued at
  // `now` (latency spike windows).
  virtual uint64_t ExtraLatency(bool is_write, uint64_t now) = 0;

  // Multiplier (>= 1.0) applied to the cycles-of-work a transfer reserves on
  // the interface and media meters (bandwidth-throttle windows).
  virtual double BandwidthCostMultiplier(uint64_t now) = 0;

  // Number of internal write-combining buffer blocks (XPBuffer slots) the
  // fault steals from a PmemDevice at `now` (buffer-pressure windows). The
  // device clamps the effective capacity to >= 1.
  virtual uint32_t StolenBufferBlocks(uint64_t now) = 0;

  // Additional cycles added to a far-memory directory access issued at
  // `now` (directory-timeout windows).
  virtual uint64_t ExtraDirectoryLatency(uint64_t now) = 0;
};

// What a pre-store hint hook decides about one line-granular hint.
enum class HintFate : uint8_t {
  kIssue,  // let the hint through
  kDrop,   // suppress it (no cycles charged, no device work)
};

// Pre-store issue-path hook: consulted once per line covered by a
// Core::Prestore call, before the hint issues. Several hooks may be
// installed (e.g. a fault injector and a governor); a hint issues only if
// every hook returns kIssue. The observation callbacks fire regardless of
// which hook dropped the hint.
class PrestoreHook {
 public:
  virtual ~PrestoreHook() = default;

  // Decide the fate of the hint. `*delay_cycles` may be increased to stall
  // the issuing core before the hint issues (delayed-hint faults).
  virtual HintFate OnPrestoreHint(uint8_t core, uint64_t line_addr,
                                  PrestoreOp op, uint64_t now,
                                  uint64_t* delay_cycles) = 0;

  // The hint issued but moved nothing (demote of an absent line, clean of a
  // clean line) — the paper's "useless overhead" regime.
  virtual void OnUselessHint(uint8_t core, uint64_t line_addr, PrestoreOp op) {
    (void)core;
    (void)line_addr;
    (void)op;
  }

  // A store re-dirtied a line whose data a clean pre-store had written back
  // — the Listing-3 / §7.4.2 misuse regime (the writeback was wasted).
  virtual void OnRewriteAfterClean(uint8_t core, uint64_t line_addr,
                                   uint64_t now) {
    (void)core;
    (void)line_addr;
    (void)now;
  }

  // The core executed a full fence (signals that publication latency is on
  // the critical path, i.e. demote/clean hints have something to overlap).
  virtual void OnFence(uint8_t core, uint64_t now) {
    (void)core;
    (void)now;
  }
};

// Sampled access observation (the DAMON-style monitor's substrate,
// src/monitor). At most one sampler is installed per machine
// (Machine::SetAccessSampleHook); each core then delivers every
// SamplePeriod()-th line-granular load/store it executes. Sampling is the
// overhead contract: an unobserved run pays one predicted branch per line
// access, an observed run pays one virtual call per period. Installing a
// sampler disables analytical fast-forward (an observed run never
// fast-forwards), exactly like trace sinks and pre-store hooks.
class AccessSampleHook {
 public:
  virtual ~AccessSampleHook() = default;

  // Line accesses between samples, per core (>= 1). Read once at install
  // time (RefreshFastPathFlags caches it core-locally); must be constant
  // for the hook's installed lifetime.
  virtual uint32_t SamplePeriod() const = 0;

  // Every SamplePeriod()-th line access of core `core`. `now` is the
  // core's local clock at the sampled access. May be invoked concurrently
  // from every core's host thread.
  virtual void OnSampledAccess(uint8_t core, uint64_t line_addr,
                               bool is_write, uint64_t now) = 0;
};

}  // namespace prestore

#endif  // SRC_SIM_HOOKS_H_
