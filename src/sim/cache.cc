#include "src/sim/cache.h"

#include <cassert>

#include "src/util/rng.h"

namespace prestore {

SetAssocCache::SetAssocCache(const CacheConfig& config, uint64_t seed)
    : config_(config), num_sets_(config.NumSets()) {
  assert(num_sets_ > 0 && "cache must hold at least one set");
  lines_.resize(num_sets_ * config_.ways);
  plru_bits_.assign(num_sets_, 0);
  set_stamp_.assign(num_sets_, 0);
  set_rng_.resize(num_sets_);
  SplitMix64 sm(seed);
  for (auto& s : set_rng_) {
    s = sm.Next() | 1;
  }
}

CacheLineMeta* SetAssocCache::Probe(uint64_t line_addr) {
  const uint64_t set = SetIndexOf(line_addr);
  CacheLineMeta* base = SetBase(set);
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].line_addr == line_addr) {
      return &base[w];
    }
  }
  return nullptr;
}

const CacheLineMeta* SetAssocCache::Probe(uint64_t line_addr) const {
  return const_cast<SetAssocCache*>(this)->Probe(line_addr);
}

CacheLineMeta* SetAssocCache::Touch(uint64_t line_addr) {
  const uint64_t set = SetIndexOf(line_addr);
  CacheLineMeta* base = SetBase(set);
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].line_addr == line_addr) {
      TouchWay(set, w);
      return &base[w];
    }
  }
  return nullptr;
}

void SetAssocCache::TouchWay(uint64_t set, uint32_t way) {
  CacheLineMeta& line = SetBase(set)[way];
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
      line.stamp = ++set_stamp_[set];
      break;
    case ReplacementPolicy::kTreePlru:
      PlruTouch(set, way);
      break;
    case ReplacementPolicy::kQuadAge:
      line.age = 0;
      break;
    case ReplacementPolicy::kFifo:
    case ReplacementPolicy::kRandom:
      break;  // hits do not update replacement state
  }
}

uint64_t SetAssocCache::NextRand(uint64_t set) {
  // xorshift64: cheap per-set deterministic randomness for victim choice.
  uint64_t x = set_rng_[set];
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  set_rng_[set] = x;
  return x;
}

void SetAssocCache::PlruTouch(uint64_t set, uint32_t way) {
  // Classic binary-tree pseudo-LRU: flip internal nodes to point away from
  // the touched way. Node 1 is the root; leaves correspond to ways.
  uint64_t bits = plru_bits_[set];
  uint32_t node = 1;
  uint32_t span = config_.ways;
  while (span > 1) {
    span /= 2;
    const bool right = (way % (span * 2)) >= span;
    if (right) {
      bits |= (1ULL << node);  // 1 = "left is older"
    } else {
      bits &= ~(1ULL << node);
    }
    node = node * 2 + (right ? 1 : 0);
  }
  plru_bits_[set] = bits;
}

uint32_t SetAssocCache::PlruVictim(uint64_t set) const {
  const uint64_t bits = plru_bits_[set];
  uint32_t node = 1;
  uint32_t way = 0;
  uint32_t span = config_.ways;
  while (span > 1) {
    span /= 2;
    const bool go_right = (bits & (1ULL << node)) == 0;
    if (go_right) {
      way += span;
    }
    node = node * 2 + (go_right ? 1 : 0);
  }
  return way;
}

uint32_t SetAssocCache::PickVictim(uint64_t set) {
  CacheLineMeta* base = SetBase(set);
  // Invalid ways first.
  for (uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      return w;
    }
  }
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      uint32_t victim = 0;
      for (uint32_t w = 1; w < config_.ways; ++w) {
        if (base[w].stamp < base[victim].stamp) {
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementPolicy::kTreePlru:
      return PlruVictim(set);
    case ReplacementPolicy::kRandom:
      return static_cast<uint32_t>(NextRand(set) % config_.ways);
    case ReplacementPolicy::kQuadAge: {
      // Intel-style pseudo-LRU: pick randomly among the oldest (age 3) lines;
      // if none has reached age 3, age every line until one does. This is
      // what makes evictions look "random" to software (§4.1).
      while (true) {
        uint32_t candidates[64];
        uint32_t n = 0;
        for (uint32_t w = 0; w < config_.ways; ++w) {
          if (base[w].age >= 3) {
            candidates[n++] = w;
          }
        }
        if (n > 0) {
          return candidates[NextRand(set) % n];
        }
        for (uint32_t w = 0; w < config_.ways; ++w) {
          ++base[w].age;
        }
      }
    }
  }
  return 0;
}

SetAssocCache::Victim SetAssocCache::Insert(uint64_t line_addr, bool dirty,
                                            CacheLineMeta** out_line) {
  const uint64_t set = SetIndexOf(line_addr);
  const uint32_t way = PickVictim(set);
  CacheLineMeta& slot = SetBase(set)[way];

  Victim victim;
  if (slot.valid) {
    victim.valid = true;
    victim.line_addr = slot.line_addr;
    victim.dirty = slot.dirty;
    victim.owner = slot.owner;
    victim.sharers = slot.sharers;
  }

  slot = CacheLineMeta{};
  slot.line_addr = line_addr;
  slot.valid = true;
  slot.dirty = dirty;
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      slot.stamp = ++set_stamp_[set];
      break;
    case ReplacementPolicy::kTreePlru:
      PlruTouch(set, way);
      break;
    case ReplacementPolicy::kQuadAge:
      slot.age = 1;  // inserted slightly aged, re-referenced lines go to 0
      break;
    case ReplacementPolicy::kRandom:
      break;
  }
  if (out_line != nullptr) {
    *out_line = &slot;
  }
  return victim;
}

bool SetAssocCache::Remove(uint64_t line_addr, CacheLineMeta* was) {
  CacheLineMeta* line = Probe(line_addr);
  if (line == nullptr) {
    return false;
  }
  if (was != nullptr) {
    *was = *line;
  }
  *line = CacheLineMeta{};
  return true;
}

void SetAssocCache::AgeLine(uint64_t line_addr) {
  CacheLineMeta* line = Probe(line_addr);
  if (line == nullptr) {
    return;
  }
  switch (config_.policy) {
    case ReplacementPolicy::kQuadAge:
      line->age = 3;
      break;
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      line->stamp = 0;
      break;
    case ReplacementPolicy::kTreePlru:
    case ReplacementPolicy::kRandom:
      break;
  }
}

std::vector<uint64_t> SetAssocCache::ValidLines() const {
  std::vector<uint64_t> out;
  for (const auto& line : lines_) {
    if (line.valid) {
      out.push_back(line.line_addr);
    }
  }
  return out;
}

}  // namespace prestore
