#include "src/sim/cache.h"

#include <cassert>

#include "src/util/rng.h"

namespace prestore {

namespace {

constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr uint32_t Log2(uint64_t v) {
  uint32_t s = 0;
  while ((v >>= 1) != 0) {
    ++s;
  }
  return s;
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheConfig& config, uint64_t seed)
    : SetAssocCache(config, seed, /*shard=*/0, /*stride=*/1) {}

SetAssocCache::SetAssocCache(const CacheConfig& config, uint64_t seed,
                             uint64_t shard, uint64_t stride)
    : config_(config), global_sets_(config.NumSets()), shard_(shard) {
  config_.Validate("cache");
  assert(IsPow2(stride) && shard < stride &&
         "shard stride must be a power of two");
  line_shift_ = Log2(config_.line_size);
  global_set_mask_ = IsPow2(global_sets_) ? global_sets_ - 1 : 0;
  stride_shift_ = Log2(stride);
  // Global sets owned by this view: {shard, shard + stride, ...}.
  num_sets_ =
      global_sets_ > shard ? (global_sets_ - 1 - shard) / stride + 1 : 0;
  lines_.resize(num_sets_ * config_.ways);
  tags_.assign(num_sets_ * config_.ways, kInvalidTag);
  plru_bits_.assign(num_sets_, 0);
  set_stamp_.assign(num_sets_, 0);
  set_rng_.resize(num_sets_);
  way_hint_.assign(num_sets_, kNoHint);
  valid_count_.assign(num_sets_, 0);
  // Per-set RNG state comes from one SplitMix64 stream walked in GLOBAL set
  // order; a shard view keeps only its own sets' draws. This is what makes a
  // sharded cache's victim choices bit-identical to the monolithic cache's.
  SplitMix64 sm(seed);
  for (uint64_t g = 0; g < global_sets_; ++g) {
    const uint64_t draw = sm.Next() | 1;
    if ((g & (stride - 1)) == shard) {
      set_rng_[g >> stride_shift_] = draw;
    }
  }
}

uint64_t SetAssocCache::NextRand(uint64_t set) {
  // xorshift64: cheap per-set deterministic randomness for victim choice.
  uint64_t x = set_rng_[set];
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  set_rng_[set] = x;
  return x;
}

uint32_t SetAssocCache::PlruVictim(uint64_t set) const {
  const uint64_t bits = plru_bits_[set];
  uint32_t node = 1;
  uint32_t way = 0;
  uint32_t span = config_.ways;
  while (span > 1) {
    span /= 2;
    const bool go_right = (bits & (1ULL << node)) == 0;
    if (go_right) {
      way += span;
    }
    node = node * 2 + (go_right ? 1 : 0);
  }
  return way;
}

uint32_t SetAssocCache::PickVictim(uint64_t set) {
  CacheLineMeta* base = SetBase(set);
  // Invalid ways first. Warm sets are full, so the scan is skipped for them
  // (valid_count_ tracks exactly how many ways hold a line).
  if (valid_count_[set] < config_.ways) {
    const uint64_t* tags = &tags_[set * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
      if (tags[w] == kInvalidTag) {
        return w;
      }
    }
  }
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      uint32_t victim = 0;
      for (uint32_t w = 1; w < config_.ways; ++w) {
        if (base[w].stamp < base[victim].stamp) {
          victim = w;
        }
      }
      return victim;
    }
    case ReplacementPolicy::kTreePlru:
      return PlruVictim(set);
    case ReplacementPolicy::kRandom:
      return static_cast<uint32_t>(NextRand(set) % config_.ways);
    case ReplacementPolicy::kQuadAge: {
      // Intel-style pseudo-LRU: pick randomly among the oldest (age 3) lines;
      // if none has reached age 3, age every line until one does. This is
      // what makes evictions look "random" to software (§4.1). The candidate
      // buffer holds one slot per way; CacheConfig::Validate caps ways at 64.
      while (true) {
        uint32_t candidates[64];
        uint32_t n = 0;
        for (uint32_t w = 0; w < config_.ways; ++w) {
          if (base[w].age >= 3) {
            candidates[n++] = w;
          }
        }
        if (n > 0) {
          return candidates[NextRand(set) % n];
        }
        for (uint32_t w = 0; w < config_.ways; ++w) {
          ++base[w].age;
        }
      }
    }
  }
  return 0;
}

SetAssocCache::Victim SetAssocCache::Insert(uint64_t line_addr, bool dirty,
                                            CacheLineMeta** out_line) {
  const uint64_t set = SetIndexOf(line_addr);
  const uint32_t way = PickVictim(set);
  CacheLineMeta& slot = SetBase(set)[way];

  Victim victim;
  if (slot.valid) {
    victim.valid = true;
    victim.line_addr = slot.line_addr;
    victim.dirty = slot.dirty;
    victim.owner = slot.owner;
    victim.sharers = slot.sharers;
  } else {
    ++valid_count_[set];
  }

  tags_[set * config_.ways + way] = line_addr;
  slot = CacheLineMeta{};
  slot.line_addr = line_addr;
  slot.valid = true;
  slot.dirty = dirty;
  switch (config_.policy) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      slot.stamp = ++set_stamp_[set];
      break;
    case ReplacementPolicy::kTreePlru:
      PlruTouch(set, way);
      break;
    case ReplacementPolicy::kQuadAge:
      slot.age = 1;  // inserted slightly aged, re-referenced lines go to 0
      break;
    case ReplacementPolicy::kRandom:
      break;
  }
  way_hint_[set] = static_cast<uint8_t>(way);
  if (out_line != nullptr) {
    *out_line = &slot;
  }
  return victim;
}

bool SetAssocCache::Remove(uint64_t line_addr, CacheLineMeta* was) {
  const uint64_t set = SetIndexOf(line_addr);
  const uint32_t w = FindWay(set, line_addr);
  if (w == kWayNone) {
    return false;
  }
  CacheLineMeta& line = SetBase(set)[w];
  if (was != nullptr) {
    *was = line;
  }
  line = CacheLineMeta{};
  tags_[set * config_.ways + w] = kInvalidTag;
  --valid_count_[set];
  return true;
}

void SetAssocCache::AgeLine(uint64_t line_addr) {
  CacheLineMeta* line = Probe(line_addr);
  if (line == nullptr) {
    return;
  }
  switch (config_.policy) {
    case ReplacementPolicy::kQuadAge:
      line->age = 3;
      break;
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      line->stamp = 0;
      break;
    case ReplacementPolicy::kTreePlru:
    case ReplacementPolicy::kRandom:
      break;
  }
}

std::vector<uint64_t> SetAssocCache::ValidLines() const {
  std::vector<uint64_t> out;
  out.reserve(lines_.size());
  for (const auto& line : lines_) {
    if (line.valid) {
      out.push_back(line.line_addr);
    }
  }
  return out;
}

}  // namespace prestore
