#include "src/sim/cache.h"

#include <cassert>
#include <new>

#include "src/util/hugepage.h"
#include "src/util/rng.h"

namespace prestore {

namespace {

constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr uint32_t Log2(uint64_t v) {
  uint32_t s = 0;
  while ((v >>= 1) != 0) {
    ++s;
  }
  return s;
}

}  // namespace

SetAssocCache::SetAssocCache(const CacheConfig& config, uint64_t seed)
    : SetAssocCache(config, seed, /*shard=*/0, /*stride=*/1) {}

SetAssocCache::SetAssocCache(const CacheConfig& config, uint64_t seed,
                             uint64_t shard, uint64_t stride)
    : config_(config), global_sets_(config.NumSets()), shard_(shard) {
  config_.Validate("cache");
  assert(IsPow2(stride) && shard < stride &&
         "shard stride must be a power of two");
  line_shift_ = Log2(config_.line_size);
  global_set_mask_ = IsPow2(global_sets_) ? global_sets_ - 1 : 0;
  set_mod_ = ModReciprocal(global_sets_);
  stride_shift_ = Log2(stride);
  // Global sets owned by this view: {shard, shard + stride, ...}.
  num_sets_ =
      global_sets_ > shard ? (global_sets_ - 1 - shard) / stride + 1 : 0;
  // One contiguous SetBlock per owned set (layout constants validated
  // against kSetBlockMaxBytes above). Chunk{} zero-fills, which already
  // initializes the packed age bytes.
  way_mod_.reserve(config_.ways + 1);
  for (uint64_t n = 0; n <= config_.ways; ++n) {
    way_mod_.emplace_back(n == 0 ? 1 : n);
  }
  ages_offset_ = kSetBlockScalarBytes + kSetBlockTagBytes * config_.ways;
  meta_offset_ = SetBlockHeaderBytes(config_.ways);
  block_bytes_ = SetBlockBytes(config_.ways);
  // Advise huge pages before the fill below touches anything, so a large
  // cache's blocks fault in as 2 MiB pages (random set indexing on 4 KiB
  // pages pays a page walk per simulated access).
  blocks_.reserve(num_sets_ * block_bytes_ / kSetBlockAlign);
  AdviseHugePages(blocks_.data(), blocks_.capacity() * sizeof(Chunk));
  blocks_.assign(num_sets_ * block_bytes_ / kSetBlockAlign, Chunk{});
  for (uint64_t set = 0; set < num_sets_; ++set) {
    unsigned char* blk = Block(set);
    new (blk) SetScalars{};
    uint64_t* tags = TagsIn(blk);
    CacheLineMeta* meta = MetaIn(blk);
    for (uint32_t w = 0; w < config_.ways; ++w) {
      new (&tags[w]) uint64_t(kInvalidTag);
      new (&meta[w]) CacheLineMeta{};
    }
  }
  // Per-set RNG state comes from one SplitMix64 stream walked in GLOBAL set
  // order; a shard view keeps only its own sets' draws. This is what makes a
  // sharded cache's victim choices bit-identical to the monolithic cache's.
  SplitMix64 sm(seed);
  for (uint64_t g = 0; g < global_sets_; ++g) {
    const uint64_t draw = sm.Next() | 1;
    if ((g & (stride - 1)) == shard) {
      ScalarsOf(g >> stride_shift_).rng = draw;
    }
  }
}

uint32_t SetAssocCache::PlruVictim(const unsigned char* blk) const {
  const uint64_t bits = ScalarsIn(blk).plru_bits;
  uint32_t node = 1;
  uint32_t way = 0;
  uint32_t span = config_.ways;
  while (span > 1) {
    span /= 2;
    const bool go_right = (bits & (1ULL << node)) == 0;
    if (go_right) {
      way += span;
    }
    node = node * 2 + (go_right ? 1 : 0);
  }
  return way;
}

bool SetAssocCache::Remove(uint64_t line_addr, CacheLineMeta* was) {
  unsigned char* blk = Block(SetIndexOf(line_addr));
  const uint32_t w = FindWayIn(blk, line_addr);
  if (w == kWayNone) {
    return false;
  }
  CacheLineMeta& line = MetaIn(blk)[w];
  if (was != nullptr) {
    *was = line;
  }
  line = CacheLineMeta{};
  TagsIn(blk)[w] = kInvalidTag;
  AgesIn(blk)[w] = 0;
  --ScalarsIn(blk).valid_count;
  return true;
}

void SetAssocCache::AgeLine(uint64_t line_addr) {
  unsigned char* blk = Block(SetIndexOf(line_addr));
  const uint32_t w = FindWayIn(blk, line_addr);
  if (w == kWayNone) {
    return;
  }
  // The pre-SetBlock implementation looked the line up with Probe, which
  // caches the hit way; keep that hint behaviour identical.
  ScalarsIn(blk).way_hint = static_cast<uint8_t>(w);
  switch (config_.policy) {
    case ReplacementPolicy::kQuadAge:
      AgesIn(blk)[w] = 3;
      break;
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo:
      MetaIn(blk)[w].stamp = 0;
      break;
    case ReplacementPolicy::kTreePlru:
    case ReplacementPolicy::kRandom:
      break;
  }
}

std::vector<uint64_t> SetAssocCache::ValidLines() const {
  std::vector<uint64_t> out;
  out.reserve(num_sets_ * config_.ways);
  for (uint64_t set = 0; set < num_sets_; ++set) {
    const CacheLineMeta* meta = MetaOf(set);
    for (uint32_t w = 0; w < config_.ways; ++w) {
      if (meta[w].valid) {
        out.push_back(meta[w].line_addr);
      }
    }
  }
  return out;
}

}  // namespace prestore
