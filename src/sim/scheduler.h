// Deterministic time-sliced scheduler: runs N simulated cores on M host
// threads in fixed-quantum rounds, decoupling simulated concurrency from
// host hw_concurrency (DESIGN.md §12).
//
// The free-running mode (harness.h RunParallel) binds one host thread per
// simulated core, so an N-core run needs N host threads and falls off a
// cliff once N exceeds the host's cores. The sliced mode instead advances
// cores in ROUNDS: round r gives every core with pending work one slice,
// running it until its simulated clock reaches the round deadline
// `start + (r+1) * quantum`. Cores therefore stay loosely synchronized in
// simulated time (within one quantum) no matter how many host threads
// drive them — an 8-core simulation runs fine on a 1-CPU host.
//
// Determinism contract: slices execute in a single global order —
// (round, core index), cores ascending — and slice k is executed by host
// thread k % M with a mutex handoff between consecutive slices. Host
// threads take turns; they never run simulated work concurrently. M
// therefore affects which OS thread's stack a slice runs on and nothing
// else, so the end-state digest of a sliced run is bit-identical for every
// M (tests/sim_determinism_test.cc proves it for M ∈ {1,2,4}). This is an
// honest trade: sliced mode buys determinism and oversubscription-immunity
// at the price of no host-side parallel speedup. Because exactly one host
// thread touches the machine at a time, Run() enters exclusive execution
// (machine.h), eliding every engine mutex for the duration.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/machine.h"

namespace prestore {

struct SchedulerConfig {
  // Host threads taking turns executing slices. More than one adds no
  // speed (see the determinism contract above); it exists so tests and CI
  // can prove host-thread-count independence.
  uint32_t host_threads = 1;
  // Simulated cycles per round. Smaller quanta keep cores more tightly
  // synchronized in simulated time; larger quanta amortize scheduling.
  uint64_t quantum = 20000;

  // Throws std::invalid_argument on a meaningless config (quantum == 0
  // would spin forever; host_threads == 0 has nobody to run slices).
  void Validate() const;
};

class SimScheduler {
 public:
  // A unit of schedulable work bound to one core. Called with the round
  // deadline; must either advance the core's simulated clock or return
  // true (done). Returning false with the clock short of the deadline is
  // allowed (the slice loop re-invokes it); returning false without
  // advancing the clock is not (the round could never end).
  using SliceFn = std::function<bool(Core& core, uint64_t deadline)>;

  SimScheduler(Machine& machine, const SchedulerConfig& config);

  // Queues a task on core `core`. A core's tasks run in FIFO order; a task
  // that finishes mid-slice yields the rest of the slice to the next task
  // in the same queue.
  void Enqueue(uint32_t core, SliceFn task);

  // Runs rounds until every queue is empty. Returns the simulated cycles
  // elapsed (global time delta). Single-driver by construction, so the
  // whole run executes in exclusive (lock-elided) mode.
  uint64_t Run();

 private:
  bool AnyPending() const;
  // One slice: run core `core_idx`'s queue until its clock reaches
  // `deadline` or the queue empties.
  void RunSlice(uint32_t core_idx, uint64_t deadline);
  // The M>1 path: host threads hand slices around under a mutex.
  void RunHandoff(uint64_t start);

  Machine& machine_;
  SchedulerConfig config_;
  std::vector<std::deque<SliceFn>> queues_;  // one run queue per core
};

}  // namespace prestore

#endif  // SRC_SIM_SCHEDULER_H_
