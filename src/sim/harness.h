// Parallel-execution harness: runs a workload body on N simulated cores
// (driven by N host threads) and reports simulated elapsed cycles.
#ifndef SRC_SIM_HARNESS_H_
#define SRC_SIM_HARNESS_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/sim/machine.h"

namespace prestore {

// Aligns all core clocks, runs fn(core, thread_index) on cores [0, nthreads),
// and returns the simulated cycle count of the slowest core (the paper's
// notion of parallel runtime).
inline uint64_t RunParallel(Machine& machine, uint32_t nthreads,
                            const std::function<void(Core&, uint32_t)>& fn) {
  const uint64_t start = machine.AlignCores();
  if (nthreads <= 1) {
    fn(machine.core(0), 0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (uint32_t i = 0; i < nthreads; ++i) {
      threads.emplace_back([&machine, &fn, i] { fn(machine.core(i), i); });
    }
    for (auto& t : threads) {
      t.join();
    }
  }
  uint64_t end = start;
  for (uint32_t i = 0; i < nthreads; ++i) {
    end = std::max(end, machine.core(i).now());
  }
  return end - start;
}

// Single-core convenience: returns simulated cycles of fn on core 0.
inline uint64_t RunOnCore(Machine& machine, const std::function<void(Core&)>& fn) {
  Core& core = machine.core(0);
  const uint64_t start = core.now();
  fn(core);
  return core.now() - start;
}

}  // namespace prestore

#endif  // SRC_SIM_HARNESS_H_
