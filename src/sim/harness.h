// Parallel-execution harness: runs a workload body on N simulated cores
// (driven by N host threads) and reports simulated elapsed cycles.
#ifndef SRC_SIM_HARNESS_H_
#define SRC_SIM_HARNESS_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/machine.h"

namespace prestore {

struct RunParallelOptions {
  // Wall-clock watchdog: if the workers have not all finished within this
  // many milliseconds, the harness prints per-core clock diagnostics and
  // aborts the process (a wedged simulated core must fail the run, not hang
  // CTest forever). 0 = take the default from the PRESTORE_WATCHDOG_MS
  // environment variable (absent/0 = watchdog disabled).
  uint64_t watchdog_ms = 0;
};

namespace harness_internal {

inline uint64_t DefaultWatchdogMs() {
  static const uint64_t ms = [] {
    const char* env = std::getenv("PRESTORE_WATCHDOG_MS");
    return env != nullptr ? std::strtoull(env, nullptr, 10) : 0ULL;
  }();
  return ms;
}

[[noreturn]] inline void WatchdogAbort(Machine& machine, uint32_t nthreads,
                                       const std::vector<bool>& finished,
                                       uint64_t watchdog_ms) {
  std::fprintf(stderr,
               "RunParallel watchdog: run exceeded %llu ms; aborting.\n"
               "Per-core diagnostics (published simulated clocks):\n",
               static_cast<unsigned long long>(watchdog_ms));
  for (uint32_t i = 0; i < nthreads; ++i) {
    std::fprintf(stderr, "  core %2u: now=%llu  %s\n", i,
                 static_cast<unsigned long long>(
                     machine.core(i).PublishedNow()),
                 finished[i] ? "finished" : "STILL RUNNING");
  }
  std::abort();
}

}  // namespace harness_internal

// Aligns all core clocks, runs fn(core, thread_index) on cores [0, nthreads),
// and returns the simulated cycle count of the slowest core (the paper's
// notion of parallel runtime).
//
// An exception thrown by `fn` on any worker is captured (first one wins),
// the remaining workers are joined, and the exception is rethrown on the
// caller — it no longer calls std::terminate.
inline uint64_t RunParallel(Machine& machine, uint32_t nthreads,
                            const std::function<void(Core&, uint32_t)>& fn,
                            const RunParallelOptions& options = {}) {
  const uint64_t start = machine.AlignCores();
  const uint64_t watchdog_ms = options.watchdog_ms != 0
                                   ? options.watchdog_ms
                                   : harness_internal::DefaultWatchdogMs();
  if (nthreads <= 1 && watchdog_ms == 0) {
    fn(machine.core(0), 0);
  } else {
    std::mutex mu;
    std::condition_variable cv;
    uint32_t done = 0;
    std::vector<bool> finished(nthreads, false);
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (uint32_t i = 0; i < nthreads; ++i) {
      threads.emplace_back([&, i] {
        std::exception_ptr error;
        try {
          fn(machine.core(i), i);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu);
        if (error != nullptr && first_error == nullptr) {
          first_error = error;
        }
        finished[i] = true;
        ++done;
        cv.notify_all();
      });
    }

    if (watchdog_ms != 0) {
      std::unique_lock<std::mutex> lock(mu);
      if (!cv.wait_for(lock, std::chrono::milliseconds(watchdog_ms),
                       [&] { return done == nthreads; })) {
        harness_internal::WatchdogAbort(machine, nthreads, finished,
                                        watchdog_ms);
      }
    }
    for (auto& t : threads) {
      t.join();
    }
    if (first_error != nullptr) {
      std::rethrow_exception(first_error);
    }
  }
  uint64_t end = start;
  for (uint32_t i = 0; i < nthreads; ++i) {
    end = std::max(end, machine.core(i).now());
  }
  return end - start;
}

// Single-core convenience: returns simulated cycles of fn on core 0.
inline uint64_t RunOnCore(Machine& machine, const std::function<void(Core&)>& fn) {
  Core& core = machine.core(0);
  const uint64_t start = core.now();
  fn(core);
  return core.now() - start;
}

}  // namespace prestore

#endif  // SRC_SIM_HARNESS_H_
