// Always-on-able invariant checks for the simulator's shared timing state.
//
// Unlike assert(), these survive NDEBUG builds: they are compiled in
// whenever the PRESTORE_CHECK_INVARIANTS CMake option is ON, independent of
// the build type, so sanitizer/CI runs can enable them on optimized builds.
#ifndef SRC_SIM_INVARIANT_H_
#define SRC_SIM_INVARIANT_H_

#ifdef PRESTORE_CHECK_INVARIANTS

#include <cstdio>
#include <cstdlib>

#define PRESTORE_INVARIANT(cond, msg)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PRESTORE_INVARIANT failed at %s:%d: %s (%s)\n", \
                   __FILE__, __LINE__, msg, #cond);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#else

#define PRESTORE_INVARIANT(cond, msg) ((void)0)

#endif  // PRESTORE_CHECK_INVARIANTS

#endif  // SRC_SIM_INVARIANT_H_
