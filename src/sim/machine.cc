#include "src/sim/machine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/util/hugepage.h"

namespace prestore {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      dram_(MakeDevice(config.dram)),
      target_(MakeDevice(config.target)) {
  config_.l1.Validate("l1");
  config_.llc.Validate("llc");
  assert(config_.l1.line_size == config_.line_size &&
         config_.llc.line_size == config_.line_size &&
         "cache line sizes must match the machine line size");
  // The LLC is kNumShards independent sub-caches; global set g lives in
  // shard g % kNumShards. The per-shard SetAssocCache draws its sets'
  // replacement RNG from the shared global-set-order stream, so the sharded
  // LLC makes bit-identical decisions to the monolithic one it replaced.
  llc_shards_ = std::vector<LlcShard>(kNumShards);
  for (size_t s = 0; s < kNumShards; ++s) {
    llc_shards_[s].cache = std::make_unique<SetAssocCache>(
        config.llc, config.seed ^ 0x11c, s, kNumShards);
  }
  llc_global_sets_ = llc_shards_[0].cache->global_sets();
  llc_set_mask_ = (llc_global_sets_ & (llc_global_sets_ - 1)) == 0
                      ? llc_global_sets_ - 1
                      : 0;
  llc_set_mod_ = ModReciprocal(llc_global_sets_);
  for (uint32_t ls = config_.llc.line_size; ls > 1; ls >>= 1) {
    ++llc_line_shift_;
  }
  // Advise huge pages before the zero-fill touches the backing stores:
  // replay traces stride randomly through both regions, and on 4 KiB
  // pages nearly every host data access would pay a page walk.
  dram_backing_.reserve(config_.dram_region_bytes);
  AdviseHugePages(dram_backing_.data(), dram_backing_.capacity());
  dram_backing_.resize(config_.dram_region_bytes);
  target_backing_.reserve(config_.target_region_bytes);
  AdviseHugePages(target_backing_.data(), target_backing_.capacity());
  target_backing_.resize(config_.target_region_bytes);
  hstripes_ = std::make_unique<MachineStatStripe[]>(config_.num_cores);
  cores_.reserve(config_.num_cores);
  for (uint32_t i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(
        std::make_unique<Core>(this, static_cast<uint8_t>(i), config_));
  }
}

Machine::~Machine() = default;

void Machine::RefreshCoreFastPaths() {
  for (auto& c : cores_) {
    c->RefreshFastPathFlags();
  }
}

SimAddr Machine::Alloc(uint64_t bytes, Region region, uint64_t align) {
  if (align == 0) {
    align = config_.line_size;
  }
  auto& brk = region == Region::kTarget ? target_brk_ : dram_brk_;
  const uint64_t limit = region == Region::kTarget ? target_backing_.size()
                                                   : dram_backing_.size();
  uint64_t cur = brk.load(std::memory_order_relaxed);
  uint64_t start = 0;
  do {
    start = (cur + align - 1) & ~(align - 1);
    if (start + bytes > limit) {
      std::fprintf(stderr, "simulated %s region exhausted (%llu + %llu > %llu)\n",
                   region == Region::kTarget ? "target" : "dram",
                   static_cast<unsigned long long>(start),
                   static_cast<unsigned long long>(bytes),
                   static_cast<unsigned long long>(limit));
      std::abort();
    }
  } while (!brk.compare_exchange_weak(cur, start + bytes,
                                      std::memory_order_relaxed));
  return (region == Region::kTarget ? kTargetBase : kDramBase) + start;
}

uint64_t Machine::GlobalTime() const {
  uint64_t t = 0;
  for (const auto& c : cores_) {
    t = std::max(t, c->now());
  }
  return t;
}

uint64_t Machine::ApproxGlobalTime() const {
  uint64_t t = 0;
  for (const auto& c : cores_) {
    t = std::max(t, c->PublishedNow());
  }
  return t;
}

uint64_t Machine::AlignCores() {
  const uint64_t t = GlobalTime();
  for (auto& c : cores_) {
    c->SetNow(t);
  }
  return t;
}

void Machine::ResetStats() {
  for (size_t i = 0; i < cores_.size(); ++i) {
    hstripes_[i].Reset();
  }
  if (shadow_hstats_ != nullptr) {
    shadow_hstats_->Reset();
  }
  dram_->ResetStats();
  target_->ResetStats();
  for (auto& c : cores_) {
    c->ResetStats();
  }
}

// Back-invalidates the victim's L1 sharers and accounts the eviction.
// Returns true when a dirty writeback is owed (the device work itself runs
// AFTER the caller drops the shard lock — see FinishEvictionWriteback — so
// the shard critical section never spans a device-meter reservation).
bool Machine::HandleLlcVictimLocked(uint8_t self,
                                    const SetAssocCache::Victim& victim) {
  if (!victim.valid) {
    return false;
  }
  Bump(self, &MachineStatStripe::llc_evictions);
  bool dirty = victim.dirty;
  uint64_t sharers = victim.sharers;
  while (sharers != 0) {
    const int s = __builtin_ctzll(sharers);
    sharers &= sharers - 1;
    Core& c = *cores_[s];
    OptionalLockGuard l1_lock(c.l1_mu(), exclusive_execution());
    CacheLineMeta was;
    if (c.l1().Remove(victim.line_addr, &was)) {
      Bump(self, &MachineStatStripe::back_invalidations);
      if (was.dirty) {
        dirty = true;
      }
    }
  }
  return dirty;
}

uint64_t Machine::FinishEvictionWriteback(uint8_t self, uint64_t line_addr,
                                          uint64_t now) {
  // Eviction writeback: off the evicting core's critical path while its
  // bounded writeback queue has room; once the device falls behind, the
  // evicting access stalls (the backpressure behind Figure 3).
  const uint64_t acceptance =
      DeviceFor(line_addr).Write(line_addr, config_.line_size, now);
  const uint64_t proceed = cores_[self]->NoteEvictionWriteback(acceptance, now);
  if (proceed > now) {
    Bump(self, &MachineStatStripe::wbq_stall_cycles, proceed - now);
  }
  return proceed;
}

uint64_t Machine::LlcHitLocked(uint8_t self, uint64_t line_addr,
                               AccessMode mode, bool incoming_dirty,
                               Device& dev, bool far, CacheLineMeta* meta,
                               uint64_t t) {
  Bump(self, &MachineStatStripe::llc_hits);
  t += config_.llc.hit_latency;
  const uint8_t prev_owner = meta->owner;
  if (prev_owner != kNoOwner && prev_owner != self) {
    // Another core's L1 holds the line Modified: intervene.
    Bump(self, &MachineStatStripe::interventions);
    t += config_.snoop_latency;
    Core& owner = *cores_[prev_owner];
    OptionalLockGuard l1_lock(owner.l1_mu(), exclusive_execution());
    CacheLineMeta* ol = owner.l1().Probe(line_addr);
    if (mode == AccessMode::kRead) {
      if (ol != nullptr) {
        ol->dirty = false;
        ol->exclusive = false;
      }
    } else {
      if (ol != nullptr) {
        owner.l1().Remove(line_addr);
      }
      meta->sharers &= ~(1ULL << prev_owner);
    }
    meta->dirty = true;  // modified data is now at the LLC level
    meta->owner = kNoOwner;
  }
  if (mode != AccessMode::kRead) {
    uint64_t others = meta->sharers & ~(1ULL << self);
    if (others != 0) {
      t += config_.snoop_latency;
      while (others != 0) {
        const int s = __builtin_ctzll(others);
        others &= others - 1;
        Core& c = *cores_[s];
        OptionalLockGuard l1_lock(c.l1_mu(), exclusive_execution());
        c.l1().Remove(line_addr);
        meta->sharers &= ~(1ULL << s);
      }
    }
    if (far && prev_owner != self) {
      // Line-state upgrade: the directory lives on the device (§4.2).
      t = dev.DirectoryAccess(t);
    }
  }
  ApplyAccessModeLocked(meta, self, mode, incoming_dirty);
  return t;
}

uint64_t Machine::LlcAccess(uint8_t self, uint64_t line_addr, AccessMode mode,
                            uint64_t start, bool streamed,
                            bool incoming_dirty) {
  Device& dev = DeviceFor(line_addr);
  const bool far = dev.config().kind == DeviceKind::kFarMemory;
  uint64_t t = start;

  LlcShard& shard = ShardFor(line_addr);
  {
    OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
    CacheLineMeta* meta = shard.cache->Touch(line_addr);
    if (meta != nullptr) {
      return LlcHitLocked(self, line_addr, mode, incoming_dirty, dev, far,
                          meta, t);
    }
  }

  // Probable miss. The device work — (for writes to far memory) directory
  // update, then the line read — runs with the shard UNLOCKED: it only
  // touches the device's own synchronization, and keeping it out of the
  // shard critical section keeps other cores' accesses to the shard's sets
  // moving. On a single driving thread the instruction order is exactly the
  // pre-split order, so sequential replays are bit-identical. Hit/miss
  // accounting waits until the re-probe below settles which one this is.
  if (mode != AccessMode::kRead && far) {
    t = dev.DirectoryAccess(t);
  }
  const uint64_t read_done = dev.Read(line_addr, config_.line_size, t);
  t = StreamDiscount(t, read_done, dev.config().read_latency, streamed);

  bool wb_owed = false;
  uint64_t victim_line = 0;
  {
    OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
    SetAssocCache& llc = *shard.cache;
    // Re-probe: while the shard was unlocked another core may have filled
    // the line (concurrent runs only — a failed Touch mutates nothing, so a
    // sequential replay re-misses with untouched state). A refilled line may
    // carry a new Modified owner or new sharers, so the access must run the
    // full hit protocol, exactly as if the first probe had hit; it is
    // counted as a hit. The speculative device read (and, for far writes,
    // the directory access) already reserved its meter work and stays in
    // `t` — a concurrent-mode-only latency/meter pessimism.
    CacheLineMeta* meta = llc.Touch(line_addr);
    if (meta != nullptr) {
      return LlcHitLocked(self, line_addr, mode, incoming_dirty, dev, far,
                          meta, t);
    }
    Bump(self, &MachineStatStripe::llc_misses);
    if (mode != AccessMode::kRead && far) {
      Bump(self, &MachineStatStripe::dir_upgrades);
    }
    SetAssocCache::Victim victim = llc.Insert(line_addr, false, &meta);
    if (HandleLlcVictimLocked(self, victim)) {
      wb_owed = true;
      victim_line = victim.line_addr;
    }
    ApplyAccessModeLocked(meta, self, mode, incoming_dirty);
  }
  if (wb_owed) {
    t = std::max(t, FinishEvictionWriteback(self, victim_line, start));
  }
  return t;
}

uint64_t Machine::PublishLine(uint8_t self, uint64_t line_addr,
                              uint64_t start) {
  Core& core = *cores_[self];
  {
    OptionalLockGuard l1_lock(core.l1_mu(), exclusive_execution());
    CacheLineMeta* meta = core.l1().Touch(line_addr);
    if (meta != nullptr && meta->exclusive) {
      meta->dirty = true;
      return start + 1;
    }
  }
  const uint64_t t = LlcAccess(self, line_addr, AccessMode::kWrite, start);
  core.FillL1(line_addr, /*exclusive=*/true, /*dirty=*/true);
  return t;
}

uint64_t Machine::PublishLineDemote(uint8_t self, uint64_t line_addr,
                                    uint64_t start) {
  Core& core = *cores_[self];
  bool dirty = true;  // demoted data from the store buffer is modified
  {
    OptionalLockGuard l1_lock(core.l1_mu(), exclusive_execution());
    CacheLineMeta was;
    if (core.l1().Remove(line_addr, &was)) {
      dirty = was.dirty;
    }
  }
  return LlcAccess(self, line_addr, AccessMode::kDemote, start,
                   /*streamed=*/false, /*incoming_dirty=*/dirty);
}

uint64_t Machine::CleanLine(uint8_t self, uint64_t line_addr, uint64_t start) {
  Core& core = *cores_[self];
  bool dirty = false;
  {
    OptionalLockGuard l1_lock(core.l1_mu(), exclusive_execution());
    CacheLineMeta* meta = core.l1().Probe(line_addr);
    if (meta != nullptr && meta->dirty) {
      meta->dirty = false;
      dirty = true;
    }
  }
  {
    LlcShard& shard = ShardFor(line_addr);
    OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
    CacheLineMeta* meta = shard.cache->Probe(line_addr);
    if (meta != nullptr) {
      if (meta->owner != kNoOwner && meta->owner != self) {
        Core& owner = *cores_[meta->owner];
        OptionalLockGuard l1_lock(owner.l1_mu(), exclusive_execution());
        CacheLineMeta* ol = owner.l1().Probe(line_addr);
        if (ol != nullptr && ol->dirty) {
          ol->dirty = false;
          dirty = true;
        }
      }
      if (meta->dirty) {
        meta->dirty = false;
        dirty = true;
      }
    }
  }
  if (!dirty) {
    return start;  // cleaning a clean line costs (almost) nothing (§5)
  }
  return DeviceFor(line_addr).Write(line_addr, config_.line_size, start);
}

void Machine::InvalidateLine(uint8_t self, uint64_t line_addr) {
  {
    LlcShard& shard = ShardFor(line_addr);
    OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
    CacheLineMeta* meta = shard.cache->Probe(line_addr);
    if (meta != nullptr) {
      uint64_t sharers = meta->sharers;
      while (sharers != 0) {
        const int s = __builtin_ctzll(sharers);
        sharers &= sharers - 1;
        Core& c = *cores_[s];
        OptionalLockGuard l1_lock(c.l1_mu(), exclusive_execution());
        c.l1().Remove(line_addr);
      }
      shard.cache->Remove(line_addr);
    }
  }
  Core& core = *cores_[self];
  OptionalLockGuard l1_lock(core.l1_mu(), exclusive_execution());
  core.l1().Remove(line_addr);
}

std::vector<uint64_t> Machine::LlcValidLines() const {
  std::vector<uint64_t> lines;
  lines.reserve(llc_global_sets_ * config_.llc.ways);
  for (const LlcShard& shard : llc_shards_) {
    for (uint64_t line : shard.cache->ValidLines()) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

void Machine::FlushAll() {
  for (auto& c : cores_) {
    c->Fence();
  }
  const uint64_t now = GlobalTime();
  // Collect the dirty lines per device, in walk order, and issue each
  // device's lines as one write train (Device::WriteTrain — the batched
  // clean-sweep charging path). Same-device write order is preserved
  // exactly — the L1 walks then the GLOBAL-set-order, way-minor LLC walk,
  // the order the per-line code issued — because PMEM write-combining
  // (XPBuffer LRU and coalescing) makes media-byte counters depend on it.
  // Splitting by device reorders only across devices, which commutes:
  // the two devices share no meter, buffer, or stats state, and every
  // write is issued at the same single timestamp `now`.
  std::vector<uint64_t> dram_lines;
  std::vector<uint64_t> target_lines;
  auto collect = [&](uint64_t line) {
    (line >= kTargetBase ? target_lines : dram_lines).push_back(line);
  };
  for (auto& c : cores_) {
    OptionalLockGuard l1_lock(c->l1_mu(), exclusive_execution());
    for (uint64_t line : c->l1().ValidLines()) {
      CacheLineMeta* meta = c->l1().Probe(line);
      if (meta->dirty) {
        meta->dirty = false;
        collect(line);
      }
    }
  }
  for (uint64_t g = 0; g < llc_global_sets_; ++g) {
    LlcShard& shard = llc_shards_[g & (kNumShards - 1)];
    OptionalLockGuard shard_lock(shard.mu, exclusive_execution());
    const uint64_t local = g / kNumShards;
    if (local >= shard.cache->num_sets()) {
      continue;
    }
    CacheLineMeta* base = shard.cache->SetData(local);
    for (uint32_t w = 0; w < config_.llc.ways; ++w) {
      CacheLineMeta& meta = base[w];
      if (meta.valid && meta.dirty) {
        meta.dirty = false;
        collect(meta.line_addr);
      }
    }
  }
  dram_->WriteTrain(dram_lines.data(), dram_lines.size(), config_.line_size,
                    now);
  target_->WriteTrain(target_lines.data(), target_lines.size(),
                      config_.line_size, now);
  dram_->Drain();
  target_->Drain();
}

}  // namespace prestore
