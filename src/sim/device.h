// Memory device models sitting below the cache hierarchy.
//
// Timing uses a reservation model: each device keeps a `busy_until` cycle
// counter; a transfer of B bytes issued at core-local time `now` starts at
// max(now, busy_until) and occupies the device for B * cycles_per_byte. This
// makes bandwidth contention between cores emerge naturally (the saturation
// behaviour behind Figure 3's thread sweep).
#ifndef SRC_SIM_DEVICE_H_
#define SRC_SIM_DEVICE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>
#include <mutex>

#include "src/sim/config.h"
#include "src/sim/hooks.h"
#include "src/sim/invariant.h"
#include "src/sim/optlock.h"

namespace prestore {

struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  // Bytes the device received from cache evictions / writebacks.
  uint64_t bytes_received = 0;
  // Bytes actually written to the media (>= bytes_received on PMEM when
  // writebacks do not coalesce into whole internal blocks).
  uint64_t media_bytes_written = 0;
  uint64_t directory_accesses = 0;

  // Write amplification as the paper measures it with ipmctl (§4.1):
  // media bytes written / bytes evicted from the CPU cache.
  double WriteAmplification() const {
    return bytes_received == 0
               ? 1.0
               : static_cast<double>(media_bytes_written) /
                     static_cast<double>(bytes_received);
  }
};

// Backlog-based bandwidth meter.
//
// Simulated cores run with skewed local clocks, so shared timing state must
// never be kept as absolute "busy until" times: a core that is momentarily
// ahead would park reservations in every other core's future and serialize
// the machine on phantom queueing. The meter instead tracks scheduled WORK
// (cycles of occupancy) against a virtual reference that is the maximum of
// all requesters' (now - window): the queueing delay seen by a request is
// the amount of work beyond what the device could have retired by the
// reference time. Delays are durations, so clock skew up to `window`
// cancels out; sustained demand beyond 1 cycle of work per cycle of time
// produces exactly the right pacing.
class BandwidthMeter {
 public:
  // Clock-skew tolerance / burst window (cycles).
  static constexpr uint64_t kWindow = 1500;

  // Schedules `cost` cycles of work issued at local time `now`; returns the
  // queueing delay (0 when the device keeps up).
  uint64_t Reserve(uint64_t cost, uint64_t now) {
    const uint64_t floor = now > kWindow ? now - kWindow : 0;
    AdvanceRef(floor);
    const uint64_t vr = ref_.load(std::memory_order_relaxed);
    PRESTORE_INVARIANT(vr >= floor,
                       "BandwidthMeter reference fell behind requester floor");
    uint64_t work = work_.load(std::memory_order_relaxed);
    uint64_t base = 0;
    do {
      base = work > vr ? work : vr;
      PRESTORE_INVARIANT(base + cost >= base,
                         "BandwidthMeter work counter overflow");
    } while (!work_.compare_exchange_weak(work, base + cost,
                                          std::memory_order_relaxed));
    return base > vr ? base - vr : 0;
  }

  // Backlog (cycles of scheduled work the device is behind) as observed by
  // a requester at local time `now`. Advances the reference first so that
  // idle periods retire backlog even when nothing reserves.
  uint64_t BacklogAt(uint64_t now) {
    AdvanceRef(now > kWindow ? now - kWindow : 0);
    const uint64_t vr = ref_.load(std::memory_order_relaxed);
    const uint64_t work = work_.load(std::memory_order_relaxed);
    return work > vr ? work - vr : 0;
  }

  // Retires all scheduled work, modeling idle wall-clock time passing until
  // the device catches up (the "sleep after the load phase" every real
  // experiment does before its measurement window). Advancing only the
  // reference is safe for requesters whose clocks lag it: delays are
  // computed against max(work, ref), so a quiesced meter simply reports no
  // queueing until new work accumulates. Call only between measured runs.
  void Quiesce() {
    const uint64_t work = work_.load(std::memory_order_relaxed);
    AdvanceRef(work);
  }

 private:
  void AdvanceRef(uint64_t floor) {
    uint64_t vr = ref_.load(std::memory_order_relaxed);
    while (vr < floor && !ref_.compare_exchange_weak(
                             vr, floor, std::memory_order_relaxed)) {
    }
    // The CAS loop only ever raises ref_, so the reference is monotone: no
    // requester may observe it moving backwards in time.
    PRESTORE_INVARIANT(ref_.load(std::memory_order_relaxed) >= floor,
                       "BandwidthMeter reference is not monotone");
  }

  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> ref_{0};
};

class Device {
 public:
  explicit Device(const DeviceConfig& config) : config_(config) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Returns the completion time of a read issued at `now`.
  virtual uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) = 0;

  // Returns the completion time of a write issued at `now` (the time at which
  // the device has accepted the data; media persistence may lag internally).
  virtual uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) = 0;

  // Cost of a cache-directory access for a line homed on this device.
  // Returns the completion time. Default: free (directory lives in the LLC).
  virtual uint64_t DirectoryAccess(uint64_t now) { return now; }

  // Drains internal buffers (accounting only; used at end of measurement).
  virtual void Drain() {}

  // Retires any queued interface/media work without advancing core clocks:
  // the load phase's eviction and flush traffic must not carry queueing
  // delay into the measurement window (see BandwidthMeter::Quiesce). Call
  // only between measured runs.
  virtual void Quiesce() { interface_.Quiesce(); }

  // Diagnostics: cycles of internal (media) work the device is behind, as
  // seen at local time `now`. 0 for devices without an internal stage.
  virtual uint64_t InternalBacklogAt(uint64_t now) {
    (void)now;
    return 0;
  }

  const DeviceConfig& config() const { return config_; }

  DeviceStats Stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = DeviceStats{};
  }

  // Installs (or clears, with nullptr) the fault-injection hook. Install
  // before a measured run; the hook must outlive the run.
  void SetFaultHook(DeviceFaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }

  // Exclusive-execution mirror (Machine::SetExclusiveExecution): while set,
  // the device's internal serialization mutexes are elided (optlock.h) —
  // the caller guarantees single-threaded access. Stats snapshots keep
  // their lock (they are off the hot path and may run from monitors).
  void SetLockFree(bool on) { lock_free_.store(on, std::memory_order_release); }

 protected:
  DeviceFaultHook* fault_hook() const {
    return fault_hook_.load(std::memory_order_acquire);
  }
  bool LockFree() const { return lock_free_.load(std::memory_order_relaxed); }

  // Cycles of work `bytes` reserves on a meter, with any active
  // bandwidth-throttle fault applied.
  uint64_t TransferCost(uint32_t bytes, uint64_t now, double cpb) const {
    double cost = static_cast<double>(bytes) * cpb;
    if (DeviceFaultHook* hook = fault_hook()) {
      cost *= std::max(1.0, hook->BandwidthCostMultiplier(now));
    }
    return static_cast<uint64_t>(cost);
  }

  uint64_t ReserveBandwidth(uint32_t bytes, uint64_t now, double cpb) {
    return now + interface_.Reserve(TransferCost(bytes, now, cpb), now);
  }

  // Latency-spike fault contribution for an access issued at `now`.
  uint64_t FaultLatency(bool is_write, uint64_t now) const {
    DeviceFaultHook* hook = fault_hook();
    return hook != nullptr ? hook->ExtraLatency(is_write, now) : 0;
  }

  const DeviceConfig config_;
  mutable std::mutex stats_mu_;
  DeviceStats stats_;

  BandwidthMeter interface_;
  std::atomic<DeviceFaultHook*> fault_hook_{nullptr};
  std::atomic<bool> lock_free_{false};
};

// Conventional DRAM: fixed latency + interface bandwidth; writes to the media
// are 1:1 with received bytes (no internal granularity mismatch).
class DramDevice : public Device {
 public:
  explicit DramDevice(const DeviceConfig& config) : Device(config) {}

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
};

// Optane-like persistent memory. The media internally reads and writes
// `internal_block_size`-byte blocks through a small buffer (the XPBuffer):
//  - a 64B access to a buffered block coalesces (no media work);
//  - a miss fetches the whole block from the media (read amplification) and,
//    when it evicts a dirty block, flushes that block (write amplification —
//    the §4.1 mechanism the paper measures with ipmctl).
// All media work goes through one work-conserving FIFO meter; each request
// that causes media work inherits exactly its own queueing delay, so
// sustained amplified traffic paces the cores to the media rate, and
// read/write interference (Optane's notoriously degraded read latency under
// write pressure) emerges naturally.
class PmemDevice : public Device {
 public:
  explicit PmemDevice(const DeviceConfig& config)
      : Device(config), dimms_(std::max(1u, config.interleave_dimms)) {
    for (Dimm& d : dimms_) {
      d.slots.reserve(config.internal_buffer_blocks);
    }
  }

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
  void Drain() override;

  uint64_t InternalBacklogAt(uint64_t now) override {
    uint64_t max_backlog = 0;
    for (Dimm& d : dimms_) {
      max_backlog = std::max(max_backlog, d.media.BacklogAt(now));
    }
    return max_backlog;
  }

  void Quiesce() override {
    Device::Quiesce();
    for (Dimm& d : dimms_) {
      d.media.Quiesce();
    }
  }

 private:
  struct BufferedBlock {
    uint64_t block = 0;
    bool dirty = false;
    // Which line-sized chunks of the block have been written: a fully
    // written block flushes without the read-modify-write fetch (why
    // sequential write streams are cheap on these devices).
    uint8_t written_mask = 0;
  };

  // One module: its own XPBuffer and its own share of the media bandwidth.
  // The XPBuffer holds at most internal_buffer_blocks entries (single
  // digits in every config), so it is kept as a recency-ordered array —
  // slots[0] is most recently used, back() the LRU victim. A linear scan
  // plus rotate-to-front over <=8 contiguous entries is far cheaper on the
  // device hot path than the hash-map + linked-list pair it replaces (no
  // allocation per insert, no pointer chasing), and the hit/evict/insert
  // order is identical, so media accounting is bit-for-bit unchanged.
  struct Dimm {
    BandwidthMeter media;
    std::mutex mu;
    std::vector<BufferedBlock> slots;
  };

  // config_.media_cycles_per_byte is the AGGREGATE bandwidth; each module
  // provides 1/N of it.
  uint64_t BlockWriteCost() const {
    return static_cast<uint64_t>(config_.internal_block_size *
                                 config_.media_cycles_per_byte *
                                 static_cast<double>(dimms_.size()));
  }

  uint64_t BlockReadCost() const {
    const double cpb = config_.media_read_cycles_per_byte > 0.0
                           ? config_.media_read_cycles_per_byte
                           : config_.media_cycles_per_byte / 3.0;
    return static_cast<uint64_t>(config_.internal_block_size * cpb *
                                 static_cast<double>(dimms_.size()));
  }

  Dimm& DimmFor(uint64_t addr) {
    return dimms_[(addr / config_.interleave_bytes) % dimms_.size()];
  }

  // Ensures the block holding `addr` is buffered in its module; marks it
  // dirty for writes. Returns the media queueing delay this access
  // inherited (block fetch and/or dirty victim flush). Also accounts media
  // write bytes flushed.
  uint64_t TouchBlock(uint64_t addr, bool dirty, uint64_t now,
                      uint64_t* media_bytes_flushed);

  std::vector<Dimm> dimms_;
};

// CXL-/FPGA-like far memory: long latency, limited bandwidth, and — crucially
// for Problem #2 — the cache directory lives on the device, so every line
// state change pays a device round trip (§4.2).
class FarMemoryDevice : public Device {
 public:
  explicit FarMemoryDevice(const DeviceConfig& config) : Device(config) {}

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t DirectoryAccess(uint64_t now) override;
};

std::unique_ptr<Device> MakeDevice(const DeviceConfig& config);

}  // namespace prestore

#endif  // SRC_SIM_DEVICE_H_
