// Memory device models sitting below the cache hierarchy.
//
// Timing uses a reservation model: each device keeps a `busy_until` cycle
// counter; a transfer of B bytes issued at core-local time `now` starts at
// max(now, busy_until) and occupies the device for B * cycles_per_byte. This
// makes bandwidth contention between cores emerge naturally (the saturation
// behaviour behind Figure 3's thread sweep).
#ifndef SRC_SIM_DEVICE_H_
#define SRC_SIM_DEVICE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>
#include <mutex>

#include "src/sim/config.h"
#include "src/sim/hooks.h"
#include "src/sim/invariant.h"
#include "src/sim/optlock.h"

namespace prestore {

struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  // Bytes the device received from cache evictions / writebacks.
  uint64_t bytes_received = 0;
  // Bytes actually written to the media (>= bytes_received on PMEM when
  // writebacks do not coalesce into whole internal blocks).
  uint64_t media_bytes_written = 0;
  uint64_t directory_accesses = 0;

  // Write amplification as the paper measures it with ipmctl (§4.1):
  // media bytes written / bytes evicted from the CPU cache.
  double WriteAmplification() const {
    return bytes_received == 0
               ? 1.0
               : static_cast<double>(media_bytes_written) /
                     static_cast<double>(bytes_received);
  }
};

// Backlog-based bandwidth meter.
//
// Simulated cores run with skewed local clocks, so shared timing state must
// never be kept as absolute "busy until" times: a core that is momentarily
// ahead would park reservations in every other core's future and serialize
// the machine on phantom queueing. The meter instead tracks scheduled WORK
// (cycles of occupancy) against a virtual reference that is the maximum of
// all requesters' (now - window): the queueing delay seen by a request is
// the amount of work beyond what the device could have retired by the
// reference time. Delays are durations, so clock skew up to `window`
// cancels out; sustained demand beyond 1 cycle of work per cycle of time
// produces exactly the right pacing.
class BandwidthMeter {
 public:
  // Clock-skew tolerance / burst window (cycles).
  static constexpr uint64_t kWindow = 1500;

  // Schedules `cost` cycles of work issued at local time `now`; returns the
  // queueing delay (0 when the device keeps up). `exclusive` asserts the
  // caller holds the machine's single-driving-thread guarantee
  // (Device::LockFree): the CAS loops degrade to plain relaxed
  // load/compute/store with identical arithmetic — the CAS path's only job
  // is atomicity against concurrent reservers, which exclusive execution
  // rules out.
  uint64_t Reserve(uint64_t cost, uint64_t now, bool exclusive = false) {
    const uint64_t floor = now > kWindow ? now - kWindow : 0;
    if (exclusive) {
      if (ref_.load(std::memory_order_relaxed) < floor) {
        ref_.store(floor, std::memory_order_relaxed);
      }
      const uint64_t vr = ref_.load(std::memory_order_relaxed);
      const uint64_t work = work_.load(std::memory_order_relaxed);
      const uint64_t base = work > vr ? work : vr;
      PRESTORE_INVARIANT(base + cost >= base,
                         "BandwidthMeter work counter overflow");
      work_.store(base + cost, std::memory_order_relaxed);
      return base - vr;
    }
    AdvanceRef(floor);
    const uint64_t vr = ref_.load(std::memory_order_relaxed);
    PRESTORE_INVARIANT(vr >= floor,
                       "BandwidthMeter reference fell behind requester floor");
    uint64_t work = work_.load(std::memory_order_relaxed);
    uint64_t base = 0;
    do {
      base = work > vr ? work : vr;
      PRESTORE_INVARIANT(base + cost >= base,
                         "BandwidthMeter work counter overflow");
    } while (!work_.compare_exchange_weak(work, base + cost,
                                          std::memory_order_relaxed));
    return base > vr ? base - vr : 0;
  }

  // Backlog (cycles of scheduled work the device is behind) as observed by
  // a requester at local time `now`. Advances the reference first so that
  // idle periods retire backlog even when nothing reserves.
  uint64_t BacklogAt(uint64_t now) {
    AdvanceRef(now > kWindow ? now - kWindow : 0);
    const uint64_t vr = ref_.load(std::memory_order_relaxed);
    const uint64_t work = work_.load(std::memory_order_relaxed);
    return work > vr ? work - vr : 0;
  }

  // Closed-form batch reservation: charges `count` back-to-back
  // reservations of `cost` cycles each, all issued at local time `now`, in
  // one arithmetic step. The meter is analytical, so the per-reservation
  // recurrence collapses: after the reference advance, the first
  // reservation's base is b = max(work, ref) and every subsequent one sees
  // work already >= ref, so reservation i (1-based) experiences delay
  //   delay_i = max(b - ref, 0) + (i - 1) * cost
  // and the final work counter is b + count * cost — exactly the state K
  // single Reserve() calls leave behind (meter_test.cc proves this for
  // randomized interleavings). Returns delay_1; callers needing later
  // delays derive them from the arithmetic progression. Used for writeback
  // trains whose reservations share one issue time (Device::WriteTrain).
  uint64_t ReserveRun(uint64_t cost, uint64_t count, uint64_t now) {
    if (count == 0) {
      return 0;
    }
    const uint64_t floor = now > kWindow ? now - kWindow : 0;
    AdvanceRef(floor);
    const uint64_t vr = ref_.load(std::memory_order_relaxed);
    uint64_t work = work_.load(std::memory_order_relaxed);
    uint64_t base = 0;
    do {
      base = work > vr ? work : vr;
      PRESTORE_INVARIANT(base + cost * count >= base,
                         "BandwidthMeter work counter overflow");
    } while (!work_.compare_exchange_weak(work, base + cost * count,
                                          std::memory_order_relaxed));
    return base > vr ? base - vr : 0;
  }

  // Applies an observation floor deferred by a caller-side cache (see
  // PmemDevice::InternalBacklogAt): raises the reference exactly as the
  // BacklogAt() call that recorded the floor would have. The reference is
  // only ever read after a floor advance, so applying the recorded maximum
  // lazily — at the meter's next use — yields bit-identical delays and
  // backlogs to applying it eagerly at observation time.
  void ObserveFloor(uint64_t floor) { AdvanceRef(floor); }

  // Scheduled-work high-water accessor for caller-side backlog caches: a
  // meter whose work counter is at or below a requester's floor cannot
  // report backlog to that requester.
  uint64_t WorkMark() const { return work_.load(std::memory_order_relaxed); }

  // Retires all scheduled work, modeling idle wall-clock time passing until
  // the device catches up (the "sleep after the load phase" every real
  // experiment does before its measurement window). Advancing only the
  // reference is safe for requesters whose clocks lag it: delays are
  // computed against max(work, ref), so a quiesced meter simply reports no
  // queueing until new work accumulates. Call only between measured runs.
  void Quiesce() {
    const uint64_t work = work_.load(std::memory_order_relaxed);
    AdvanceRef(work);
  }

 private:
  void AdvanceRef(uint64_t floor) {
    uint64_t vr = ref_.load(std::memory_order_relaxed);
    while (vr < floor && !ref_.compare_exchange_weak(
                             vr, floor, std::memory_order_relaxed)) {
    }
    // The CAS loop only ever raises ref_, so the reference is monotone: no
    // requester may observe it moving backwards in time.
    PRESTORE_INVARIANT(ref_.load(std::memory_order_relaxed) >= floor,
                       "BandwidthMeter reference is not monotone");
  }

  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> ref_{0};
};

class Device {
 public:
  explicit Device(const DeviceConfig& config) : config_(config) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // Returns the completion time of a read issued at `now`.
  virtual uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) = 0;

  // Returns the completion time of a write issued at `now` (the time at which
  // the device has accepted the data; media persistence may lag internally).
  virtual uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) = 0;

  // Accounting-only writeback train: `n` line writes all issued at `now`
  // whose completion times the caller provably never observes (cache-flush
  // sweeps — Machine::FlushAll — discard them). Semantically identical to n
  // Write() calls in order; subclasses override to charge the shared-time
  // interface reservations in one closed-form ReserveRun step and bump
  // stats once. The default (and the path taken whenever a fault hook is
  // installed, since hooks may keep per-call state) is the plain loop.
  virtual void WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                          uint64_t now) {
    for (size_t i = 0; i < n; ++i) {
      Write(addrs[i], bytes, now);
    }
  }

  // Cost of a cache-directory access for a line homed on this device.
  // Returns the completion time. Default: free (directory lives in the LLC).
  virtual uint64_t DirectoryAccess(uint64_t now) { return now; }

  // Drains internal buffers (accounting only; used at end of measurement).
  virtual void Drain() {}

  // Retires any queued interface/media work without advancing core clocks:
  // the load phase's eviction and flush traffic must not carry queueing
  // delay into the measurement window (see BandwidthMeter::Quiesce). Call
  // only between measured runs.
  virtual void Quiesce() { interface_.Quiesce(); }

  // Diagnostics: cycles of internal (media) work the device is behind, as
  // seen at local time `now`. 0 for devices without an internal stage.
  virtual uint64_t InternalBacklogAt(uint64_t now) {
    (void)now;
    return 0;
  }

  const DeviceConfig& config() const { return config_; }

  DeviceStats Stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  void ResetStats() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_ = DeviceStats{};
  }

  // Installs (or clears, with nullptr) the fault-injection hook. Install
  // before a measured run; the hook must outlive the run.
  void SetFaultHook(DeviceFaultHook* hook) {
    fault_hook_.store(hook, std::memory_order_release);
  }

  // Whether a fault-injection hook is installed. The analytical fast paths
  // (fast-forwarded miss legs, batched writeback trains) bail to the fully
  // interpreted engine while one is: hooks may keep per-call state, so the
  // slow path must see every access individually.
  bool HasFaultHook() const {
    return fault_hook_.load(std::memory_order_acquire) != nullptr;
  }

  // Exclusive-execution mirror (Machine::SetExclusiveExecution): while set,
  // the device's internal serialization mutexes are elided (optlock.h) —
  // the caller guarantees single-threaded access. Stats snapshots keep
  // their lock (they are off the hot path and may run from monitors).
  void SetLockFree(bool on) { lock_free_.store(on, std::memory_order_release); }

 protected:
  DeviceFaultHook* fault_hook() const {
    return fault_hook_.load(std::memory_order_acquire);
  }
  bool LockFree() const { return lock_free_.load(std::memory_order_relaxed); }

  // Cycles of work `bytes` reserves on a meter, with any active
  // bandwidth-throttle fault applied.
  uint64_t TransferCost(uint32_t bytes, uint64_t now, double cpb) const {
    double cost = static_cast<double>(bytes) * cpb;
    if (DeviceFaultHook* hook = fault_hook()) {
      cost *= std::max(1.0, hook->BandwidthCostMultiplier(now));
    }
    return static_cast<uint64_t>(cost);
  }

  uint64_t ReserveBandwidth(uint32_t bytes, uint64_t now, double cpb) {
    return now +
           interface_.Reserve(TransferCost(bytes, now, cpb), now, LockFree());
  }

  // Latency-spike fault contribution for an access issued at `now`.
  uint64_t FaultLatency(bool is_write, uint64_t now) const {
    DeviceFaultHook* hook = fault_hook();
    return hook != nullptr ? hook->ExtraLatency(is_write, now) : 0;
  }

  const DeviceConfig config_;
  mutable std::mutex stats_mu_;
  DeviceStats stats_;

  BandwidthMeter interface_;
  std::atomic<DeviceFaultHook*> fault_hook_{nullptr};
  std::atomic<bool> lock_free_{false};
};

// Conventional DRAM: fixed latency + interface bandwidth; writes to the media
// are 1:1 with received bytes (no internal granularity mismatch).
class DramDevice : public Device {
 public:
  explicit DramDevice(const DeviceConfig& config) : Device(config) {}

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
  void WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                  uint64_t now) override;
};

// Optane-like persistent memory. The media internally reads and writes
// `internal_block_size`-byte blocks through a small buffer (the XPBuffer):
//  - a 64B access to a buffered block coalesces (no media work);
//  - a miss fetches the whole block from the media (read amplification) and,
//    when it evicts a dirty block, flushes that block (write amplification —
//    the §4.1 mechanism the paper measures with ipmctl).
// All media work goes through one work-conserving FIFO meter; each request
// that causes media work inherits exactly its own queueing delay, so
// sustained amplified traffic paces the cores to the media rate, and
// read/write interference (Optane's notoriously degraded read latency under
// write pressure) emerges naturally.
class PmemDevice : public Device {
 public:
  explicit PmemDevice(const DeviceConfig& config)
      : Device(config), dimms_(std::max(1u, config.interleave_dimms)) {
    // The index is sized for the configured capacity; buffer-pressure
    // faults only ever SHRINK the usable slot count, so the table never
    // needs to grow mid-run.
    const uint32_t cap = std::max(1u, config.internal_buffer_blocks);
    // The open-addressed index stores slot ids as uint8_t with 0xff
    // reserved for "empty"; a capacity at or past that sentinel would
    // silently alias slots.
    PRESTORE_INVARIANT(cap < kIndexEmpty,
                       "internal_buffer_blocks must stay below 255");
    uint32_t bits = 2;
    while ((1u << bits) < 4 * cap) {
      ++bits;
    }
    for (Dimm& d : dimms_) {
      d.slots.assign(cap, BufferedBlock{});
      d.index.assign(1u << bits, kIndexEmpty);
    }
    // Hot-path constants, hoisted out of TouchBlock. The cost expressions
    // are evaluated exactly as the per-call forms evaluated them (one
    // double product, truncated once), so the precomputed values are
    // bit-identical. The address decompositions below use shift/mask when
    // the geometry is power-of-two (every shipped preset); otherwise
    // TouchBlock falls back to the division forms.
    block_write_cost_ = static_cast<uint64_t>(
        config_.internal_block_size * config_.media_cycles_per_byte *
        static_cast<double>(dimms_.size()));
    const double read_cpb = config_.media_read_cycles_per_byte > 0.0
                                ? config_.media_read_cycles_per_byte
                                : config_.media_cycles_per_byte / 3.0;
    block_read_cost_ = static_cast<uint64_t>(config_.internal_block_size *
                                             read_cpb *
                                             static_cast<double>(dimms_.size()));
    const uint64_t lines_per_block =
        std::max<uint64_t>(1, config_.internal_block_size / 64);
    full_mask_ = lines_per_block >= 8
                     ? static_cast<uint8_t>(0xff)
                     : static_cast<uint8_t>((1u << lines_per_block) - 1);
    auto pow2_log = [](uint64_t v, uint32_t* log) {
      if (v == 0 || (v & (v - 1)) != 0) {
        return false;
      }
      *log = static_cast<uint32_t>(__builtin_ctzll(v));
      return true;
    };
    pow2_geometry_ =
        pow2_log(config_.interleave_bytes, &interleave_shift_) &&
        pow2_log(dimms_.size(), &dimm_shift_) &&
        pow2_log(config_.internal_block_size, &block_shift_);
  }

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
  void WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                  uint64_t now) override;
  void Drain() override;

  // Backlog watermark (diagnostics hot path: the pre-store governor samples
  // this once per evaluation window). The common case — media idle or
  // caught up — is answered from a cached high-water mark of scheduled
  // media work without touching any per-DIMM meter: a meter whose work
  // counter is at or below the observer's floor cannot report backlog. The
  // reference advance the per-DIMM BacklogAt() calls would have performed
  // is NOT lost: the observation floor is recorded (max-monotone) and every
  // later meter use applies it first (BandwidthMeter::ObserveFloor), so all
  // subsequently observed delays and backlogs are bit-identical to the
  // eager max-over-DIMMs scan (randomized cross-check in meter_test.cc).
  uint64_t InternalBacklogAt(uint64_t now) override {
    const uint64_t floor =
        now > BandwidthMeter::kWindow ? now - BandwidthMeter::kWindow : 0;
    RecordObservedFloor(floor);
    if (media_work_peak_.load(std::memory_order_relaxed) <= floor) {
      return 0;
    }
    const uint64_t observed = observed_floor_.load(std::memory_order_relaxed);
    uint64_t max_backlog = 0;
    for (Dimm& d : dimms_) {
      d.media.ObserveFloor(observed);
      max_backlog = std::max(max_backlog, d.media.BacklogAt(now));
    }
    return max_backlog;
  }

  void Quiesce() override {
    Device::Quiesce();
    for (Dimm& d : dimms_) {
      d.media.Quiesce();
    }
  }

 private:
  static constexpr uint8_t kIndexEmpty = 0xff;

  struct BufferedBlock {
    uint64_t block = 0;
    // Recency stamp: strictly increasing per touch within a DIMM, so the
    // minimum-stamp valid slot is exactly the block a recency-ordered
    // array would hold at its back — victim selection (and hence all media
    // accounting) is bit-identical to the rotate-to-front layout this
    // replaces.
    uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
    // Which line-sized chunks of the block have been written: a fully
    // written block flushes without the read-modify-write fetch (why
    // sequential write streams are cheap on these devices).
    uint8_t written_mask = 0;
  };

  // One module: its own XPBuffer and its own share of the media bandwidth.
  // Slots live at FIXED positions (no rotate-to-front shuffling on every
  // hit); recency is carried by per-slot stamps and lookup goes through a
  // small open-addressed block->slot index with a last-hit hint checked
  // first. Back-to-back accesses to one block — the coalescing pattern the
  // XPBuffer exists for — resolve in a single compare; everything else is
  // one hashed probe instead of a scan plus an up-to-
  // sizeof(BufferedBlock)*capacity shift.
  struct Dimm {
    BandwidthMeter media;
    std::mutex mu;
    std::vector<BufferedBlock> slots;
    std::vector<uint8_t> index;  // hash(block) -> slot, kIndexEmpty = free
    uint64_t stamp_counter = 0;
    uint8_t last_hit = 0;  // hint: slot of the most recent block hit
    uint8_t valid_count = 0;
  };

  uint32_t IndexMask(const Dimm& d) const {
    return static_cast<uint32_t>(d.index.size() - 1);
  }
  static uint32_t BlockHash(uint64_t block) {
    return static_cast<uint32_t>((block * 0x9e3779b97f4a7c15ULL) >> 33);
  }

  // Open-addressed helpers (linear probing, backward-shift deletion). The
  // table is tiny (4x slot capacity), so clusters stay short.
  uint8_t* IndexFind(Dimm& d, uint64_t block);
  void IndexInsert(Dimm& d, uint64_t block, uint8_t slot);
  void IndexErase(Dimm& d, uint64_t block);

  void RecordObservedFloor(uint64_t floor) {
    uint64_t cur = observed_floor_.load(std::memory_order_relaxed);
    while (cur < floor && !observed_floor_.compare_exchange_weak(
                              cur, floor, std::memory_order_relaxed)) {
    }
  }
  void RecordMediaPeak(uint64_t mark) {
    uint64_t cur = media_work_peak_.load(std::memory_order_relaxed);
    while (cur < mark && !media_work_peak_.compare_exchange_weak(
                             cur, mark, std::memory_order_relaxed)) {
    }
  }

  Dimm& DimmFor(uint64_t addr) {
    if (pow2_geometry_) {
      return dimms_[(addr >> interleave_shift_) &
                    ((1ULL << dimm_shift_) - 1)];
    }
    return dimms_[(addr / config_.interleave_bytes) % dimms_.size()];
  }

  uint64_t BlockOf(uint64_t addr) const {
    return pow2_geometry_ ? addr >> block_shift_
                          : addr / config_.internal_block_size;
  }

  uint8_t LineBitOf(uint64_t addr) const {
    const uint64_t off = pow2_geometry_
                             ? addr & ((1ULL << block_shift_) - 1)
                             : addr % config_.internal_block_size;
    return static_cast<uint8_t>(1u << (off / 64));
  }

  // Ensures the block holding `addr` is buffered in its module; marks it
  // dirty for writes. Returns the media queueing delay this access
  // inherited (block fetch and/or dirty victim flush). Also accounts media
  // write bytes flushed.
  uint64_t TouchBlock(uint64_t addr, bool dirty, uint64_t now,
                      uint64_t* media_bytes_flushed);

  std::vector<Dimm> dimms_;
  // High-water mark of any DIMM's scheduled media work (max-monotone) and
  // the maximum observation floor whose reference advance is still owed to
  // the per-DIMM meters. Together they implement the InternalBacklogAt
  // fast path above.
  std::atomic<uint64_t> media_work_peak_{0};
  std::atomic<uint64_t> observed_floor_{0};
  // Constructor-computed TouchBlock constants (see constructor comment).
  // config_.media_cycles_per_byte is the AGGREGATE bandwidth; each module
  // provides 1/N of it, hence the dimms_ factor in the block costs.
  uint64_t block_write_cost_ = 0;
  uint64_t block_read_cost_ = 0;
  uint8_t full_mask_ = 0;
  bool pow2_geometry_ = false;
  uint32_t interleave_shift_ = 0;
  uint32_t dimm_shift_ = 0;
  uint32_t block_shift_ = 0;
};

// CXL-/FPGA-like far memory: long latency, limited bandwidth, and — crucially
// for Problem #2 — the cache directory lives on the device, so every line
// state change pays a device round trip (§4.2).
class FarMemoryDevice : public Device {
 public:
  explicit FarMemoryDevice(const DeviceConfig& config) : Device(config) {}

  uint64_t Read(uint64_t addr, uint32_t bytes, uint64_t now) override;
  uint64_t Write(uint64_t addr, uint32_t bytes, uint64_t now) override;
  void WriteTrain(const uint64_t* addrs, size_t n, uint32_t bytes,
                  uint64_t now) override;
  uint64_t DirectoryAccess(uint64_t now) override;
};

std::unique_ptr<Device> MakeDevice(const DeviceConfig& config);

}  // namespace prestore

#endif  // SRC_SIM_DEVICE_H_
