#include "src/sim/config.h"

#include <stdexcept>
#include <string>

namespace prestore {

namespace {

bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

[[noreturn]] void Invalid(const char* what, const std::string& why) {
  throw std::invalid_argument(std::string(what) + ": " + why);
}

}  // namespace

void CacheConfig::Validate(const char* what) const {
  if (!IsPow2(line_size)) {
    Invalid(what, "line_size must be a nonzero power of two, got " +
                      std::to_string(line_size));
  }
  if (ways != 0 && SetBlockBytes(ways) > kSetBlockMaxBytes) {
    // The per-set metadata block (scalar header + packed tags + per-way
    // CacheLineMeta, cache.h) must stay within one host page or the
    // colocated layout stops buying anything.
    Invalid(what, "ways " + std::to_string(ways) + " needs a " +
                      std::to_string(SetBlockBytes(ways)) +
                      "B SetBlock, over the " +
                      std::to_string(kSetBlockMaxBytes) + "B per-set budget");
  }
  if (ways == 0 || ways > 64) {
    // kQuadAge's PickVictim gathers eviction candidates into a fixed
    // uint32_t[64]; one slot per way, so >64 ways would overflow it.
    Invalid(what, "ways must be in [1, 64] (victim-candidate buffer holds "
                  "one slot per way), got " +
                      std::to_string(ways));
  }
  if (policy == ReplacementPolicy::kTreePlru && !IsPow2(ways)) {
    Invalid(what, "kTreePlru needs power-of-two ways, got " +
                      std::to_string(ways));
  }
  if (NumSets() == 0) {
    Invalid(what, "size_bytes " + std::to_string(size_bytes) +
                      " holds no complete set of " + std::to_string(ways) +
                      " x " + std::to_string(line_size) + "B lines");
  }
}

MachineConfig MachineA(uint32_t num_cores) {
  MachineConfig m;
  m.name = "machine-A";
  m.num_cores = num_cores;
  m.line_size = 64;
  m.drain = StoreDrainPolicy::kEagerTso;
  m.store_buffer_entries = 56;
  m.wc_buffer_entries = 24;

  m.l1 = CacheConfig{.size_bytes = 32 << 10,
                     .ways = 8,
                     .line_size = 64,
                     .hit_latency = 4,
                     .policy = ReplacementPolicy::kTreePlru};
  // 27.5MB/11-way in the real part; scaled to 2MB/16-way (working sets in the
  // benchmarks are scaled by the same factor).
  m.llc = CacheConfig{.size_bytes = 2 << 20,
                      .ways = 16,
                      .line_size = 64,
                      .hit_latency = 40,
                      .policy = ReplacementPolicy::kQuadAge};

  m.dram = DeviceConfig{.kind = DeviceKind::kDram,
                        .name = "ddr4",
                        .capacity = 64ULL << 20,
                        .read_latency = 80,
                        .write_latency = 80,
                        .cycles_per_byte = 0.02};

  // Optane-like persistent memory: 256B internal blocks, small write-
  // combining buffer, media write bandwidth well below the DDR interface.
  m.target = DeviceConfig{.kind = DeviceKind::kPmem,
                          .name = "optane-pmem",
                          .capacity = 512ULL << 20,
                          .read_latency = 170,
                          .write_latency = 90,
                          .cycles_per_byte = 0.08,
                          .internal_block_size = 256,
                          .media_cycles_per_byte = 0.45};

  m.dram_region_bytes = m.dram.capacity;
  m.target_region_bytes = m.target.capacity;
  return m;
}

MachineConfig MachineACxlSsd(uint32_t num_cores) {
  MachineConfig m = MachineA(num_cores);
  m.name = "machine-A-cxl-ssd";
  m.target.name = "cxl-ssd";
  m.target.read_latency = 350;   // byte-addressable CXL flash tier
  m.target.write_latency = 200;
  m.target.internal_block_size = 512;
  m.target.internal_buffer_blocks = 8;
  m.target.interleave_dimms = 4;
  m.target.media_cycles_per_byte = 0.9;
  return m;
}

namespace {

MachineConfig MachineBBase(uint32_t num_cores) {
  MachineConfig m;
  m.num_cores = num_cores;
  m.line_size = 128;  // ThunderX-1 cache line
  m.drain = StoreDrainPolicy::kLazyWeak;
  m.store_buffer_entries = 32;
  // The in-order ThunderX-1 drains its store buffer serially at a fence —
  // the §4.2 "last minute" publication stall pre-stores hide.
  m.fence_drain_parallelism = 1;

  m.l1 = CacheConfig{.size_bytes = 32 << 10,
                     .ways = 8,
                     .line_size = 128,
                     .hit_latency = 4,
                     .policy = ReplacementPolicy::kLru};
  m.llc = CacheConfig{.size_bytes = 2 << 20,
                      .ways = 16,
                      .line_size = 128,
                      .hit_latency = 37,
                      .policy = ReplacementPolicy::kRandom};

  m.dram = DeviceConfig{.kind = DeviceKind::kDram,
                        .name = "ddr4",
                        .capacity = 64ULL << 20,
                        .read_latency = 100,
                        .write_latency = 100,
                        .cycles_per_byte = 0.03};
  m.dram_region_bytes = m.dram.capacity;
  return m;
}

}  // namespace

MachineConfig MachineBFast(uint32_t num_cores) {
  MachineConfig m = MachineBBase(num_cores);
  m.name = "machine-B-fast";
  // FPGA memory accessed in 60 cycles at 10GB/s (~5 B/cycle at 2GHz).
  m.target = DeviceConfig{.kind = DeviceKind::kFarMemory,
                          .name = "fpga-fast",
                          .capacity = 512ULL << 20,
                          .read_latency = 60,
                          .write_latency = 60,
                          .cycles_per_byte = 0.2,
                          .directory_latency = 60};
  m.target_region_bytes = m.target.capacity;
  return m;
}

MachineConfig MachineBSlow(uint32_t num_cores) {
  MachineConfig m = MachineBBase(num_cores);
  m.name = "machine-B-slow";
  // FPGA memory accessed in 200 cycles at 1.5GB/s (~0.75 B/cycle at 2GHz).
  m.target = DeviceConfig{.kind = DeviceKind::kFarMemory,
                          .name = "fpga-slow",
                          .capacity = 512ULL << 20,
                          .read_latency = 200,
                          .write_latency = 200,
                          .cycles_per_byte = 1.33,
                          .directory_latency = 200};
  m.target_region_bytes = m.target.capacity;
  return m;
}

}  // namespace prestore
