// Conditionally elided lock guard for the simulator's exclusive-execution
// mode (DESIGN.md §12).
//
// Every mutex in the engine's hot paths (per-core L1 mutexes, LLC shard
// mutexes, PMEM module buffers) exists ONLY to serialize concurrent host
// threads; none of them affects a simulated result. When the machine is in
// exclusive execution — one host thread drives all cores, either truly
// single-threaded (sequential replay, 1-worker runs) or serialized by the
// time-sliced scheduler's slice handoff — those mutexes are pure host-side
// overhead, so the guard skips them. The mode flag is owned by Machine
// (SetExclusiveExecution); callers pass the cached core-/device-local copy.
#ifndef SRC_SIM_OPTLOCK_H_
#define SRC_SIM_OPTLOCK_H_

#include <mutex>

namespace prestore {

class OptionalLockGuard {
 public:
  // Locks `mu` unless `elide` is true. The elided case must only be used
  // when no other host thread can touch the guarded state concurrently
  // (the exclusive-execution contract, enforced by the callers).
  OptionalLockGuard(std::mutex& mu, bool elide) : mu_(elide ? nullptr : &mu) {
    if (mu_ != nullptr) {
      mu_->lock();
    }
  }
  ~OptionalLockGuard() {
    if (mu_ != nullptr) {
      mu_->unlock();
    }
  }

  OptionalLockGuard(const OptionalLockGuard&) = delete;
  OptionalLockGuard& operator=(const OptionalLockGuard&) = delete;

 private:
  std::mutex* mu_;
};

}  // namespace prestore

#endif  // SRC_SIM_OPTLOCK_H_
