// Typed views over simulated memory: convenience wrappers so workloads read
// like ordinary array code while every access is simulated.
#ifndef SRC_SIM_ARRAY_H_
#define SRC_SIM_ARRAY_H_

#include <cstdint>
#include <type_traits>

#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

// A fixed-size array of T in simulated memory. T must be trivially copyable
// and 4/8-byte sized for the fast paths; other sizes go through MemCopy.
template <typename T>
class SimArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SimArray() = default;

  SimArray(Machine& machine, uint64_t count,
           Region region = Region::kTarget, uint64_t align = 0)
      : base_(machine.Alloc(count * sizeof(T), region, align)), count_(count) {}

  SimAddr base() const { return base_; }
  uint64_t size() const { return count_; }
  uint64_t bytes() const { return count_ * sizeof(T); }
  SimAddr AddrOf(uint64_t i) const { return base_ + i * sizeof(T); }

  T Get(Core& core, uint64_t i) const {
    if constexpr (sizeof(T) == 8) {
      const uint64_t raw = core.LoadU64(AddrOf(i));
      T v;
      __builtin_memcpy(&v, &raw, 8);
      return v;
    } else if constexpr (sizeof(T) == 4) {
      const uint32_t raw = core.LoadU32(AddrOf(i));
      T v;
      __builtin_memcpy(&v, &raw, 4);
      return v;
    } else {
      T v;
      core.MemCopyFromSim(&v, AddrOf(i), sizeof(T));
      return v;
    }
  }

  void Set(Core& core, uint64_t i, const T& v) {
    if constexpr (sizeof(T) == 8) {
      uint64_t raw;
      __builtin_memcpy(&raw, &v, 8);
      core.StoreU64(AddrOf(i), raw);
    } else if constexpr (sizeof(T) == 4) {
      uint32_t raw;
      __builtin_memcpy(&raw, &v, 4);
      core.StoreU32(AddrOf(i), raw);
    } else {
      core.MemCopyToSim(AddrOf(i), &v, sizeof(T));
    }
  }

  // Non-temporal (cache-skipping) element store.
  void SetNt(Core& core, uint64_t i, const T& v) {
    core.StoreNt(AddrOf(i), &v, sizeof(T));
  }

  // Pre-store the element range [first, first+n).
  void Prestore(Core& core, uint64_t first, uint64_t n, PrestoreOp op) {
    core.Prestore(AddrOf(first), n * sizeof(T), op);
  }

 private:
  SimAddr base_ = 0;
  uint64_t count_ = 0;
};

}  // namespace prestore

#endif  // SRC_SIM_ARRAY_H_
