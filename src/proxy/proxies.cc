#include "src/proxy/proxies.h"

#include "src/util/rng.h"

namespace prestore {

StreamReadProxy::StreamReadProxy(Machine& machine)
    : data_(machine, (8 << 20) / 8),
      func_{machine.registry().Intern("tensor_reduce", "numpy_like.cc:12")} {
  Core& core = machine.core(0);
  for (uint64_t i = 0; i < data_.size(); i += 97) {
    data_.Set(core, i, static_cast<double>(i % 1009));
  }
}

void StreamReadProxy::Run(Core& core) {
  ScopedFunction f(core, func_);
  double sum = 0.0;
  for (uint64_t i = 0; i < data_.size(); ++i) {
    sum += data_.Get(core, i);
    core.Execute(1);
  }
  core.Execute(static_cast<uint64_t>(sum) % 5 + 1);
}

RayTraceProxy::RayTraceProxy(Machine& machine)
    : machine_(machine),
      framebuffer_(machine, 64 * 64),
      func_{machine.registry().Intern("trace_ray", "c_ray_like.cc:77")} {}

void RayTraceProxy::Run(Core& core) {
  ScopedFunction f(core, func_);
  Xoshiro256 rng(machine_.config().seed ^ 0x3a7);
  for (uint64_t p = 0; p < framebuffer_.size(); ++p) {
    // Per-pixel: heavy intersection math, one tiny write.
    uint64_t color = 0;
    for (int bounce = 0; bounce < 6; ++bounce) {
      core.Execute(120);  // sphere intersections / shading
      color = color * 31 + rng.Next() % 255;
    }
    framebuffer_.Set(core, p, color);
  }
}

CompressProxy::CompressProxy(Machine& machine)
    : machine_(machine),
      input_(machine, (4 << 20) / 8),
      window_(machine, 1 << 14),
      output_(machine, (1 << 20) / 8),
      func_{machine.registry().Intern("deflate_block", "gzip_like.cc:200")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x921);
  for (uint64_t i = 0; i < input_.size(); ++i) {
    input_.Set(core, i, rng.Below(64));  // compressible-ish input
  }
}

void CompressProxy::Run(Core& core) {
  ScopedFunction f(core, func_);
  uint64_t out_pos = 0;
  uint64_t hash = 0;
  for (uint64_t i = 0; i < input_.size(); ++i) {
    const uint64_t word = input_.Get(core, i);
    hash = (hash * 33 + word) & (window_.size() - 1);
    // Dictionary probe: two reads per input word.
    const uint64_t candidate = window_.Get(core, hash);
    core.Execute(6);  // match-length comparison
    if (candidate != word) {
      // Literal: occasional output write (~1 write per 8 reads).
      if ((i & 7) == 0) {
        output_.Set(core, out_pos % output_.size(), word);
        ++out_pos;
      }
    }
    if ((i & 15) == 0) {
      window_.Set(core, hash, word);
    }
  }
}

std::vector<std::unique_ptr<ProxyWorkload>> MakeAllProxies(Machine& machine) {
  std::vector<std::unique_ptr<ProxyWorkload>> out;
  out.push_back(std::make_unique<StreamReadProxy>(machine));
  out.push_back(std::make_unique<RayTraceProxy>(machine));
  out.push_back(std::make_unique<CompressProxy>(machine));
  return out;
}

}  // namespace prestore
