// Read-mostly proxy workloads standing in for the Phoronix applications the
// paper classifies as NOT write-intensive in Table 2 (pytorch, numpy, lzma,
// c-ray, gzip, ...). They exist to exercise DirtBuster's step-1 negative
// filter: each spends well under 10% of its instructions on stores.
#ifndef SRC_PROXY_PROXIES_H_
#define SRC_PROXY_PROXIES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/array.h"
#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

class ProxyWorkload {
 public:
  virtual ~ProxyWorkload() = default;
  virtual const char* name() const = 0;
  virtual void Run(Core& core) = 0;
};

// "stream-read": numpy/pytorch-inference-like — streaming reductions over
// large arrays.
class StreamReadProxy : public ProxyWorkload {
 public:
  explicit StreamReadProxy(Machine& machine);
  const char* name() const override { return "stream-read"; }
  void Run(Core& core) override;

 private:
  SimArray<double> data_;
  FuncToken func_;
};

// "ray-trace": c-ray-like — compute-dominated with tiny framebuffer writes.
class RayTraceProxy : public ProxyWorkload {
 public:
  explicit RayTraceProxy(Machine& machine);
  const char* name() const override { return "ray-trace"; }
  void Run(Core& core) override;

 private:
  Machine& machine_;
  SimArray<uint64_t> framebuffer_;
  FuncToken func_;
};

// "compress": gzip/lzma-like — dictionary lookups (reads) with sparse
// literal output.
class CompressProxy : public ProxyWorkload {
 public:
  explicit CompressProxy(Machine& machine);
  const char* name() const override { return "compress"; }
  void Run(Core& core) override;

 private:
  Machine& machine_;
  SimArray<uint64_t> input_, window_, output_;
  FuncToken func_;
};

std::vector<std::unique_ptr<ProxyWorkload>> MakeAllProxies(Machine& machine);

}  // namespace prestore

#endif  // SRC_PROXY_PROXIES_H_
