// DirtBuster step 3 recommendation logic (§6.2.3 "Guiding developers").
#ifndef SRC_DIRTBUSTER_RECOMMEND_H_
#define SRC_DIRTBUSTER_RECOMMEND_H_

#include "src/core/prestore.h"
#include "src/dirtbuster/analyzer.h"

namespace prestore {

struct AdviceThresholds {
  // A size class counts as "re-read / re-written soon" below these distances
  // (in instructions).
  uint64_t reread_near = 100000;
  uint64_t rewrite_near = 100000;
  // A function counts as "writes before fence" when at least this fraction
  // of its writes has a fence within fence_near_instructions.
  double fence_fraction = 0.30;
  // A function counts as "sequential writer" above this fraction.
  double seq_fraction = 0.25;
  // Size classes below this write share are ignored for the decision.
  double significant_class_share = 0.05;
};

// Per-size-class advice, following the paper's rules:
//   re-written soon            -> demote (publish early, keep for re-writes)
//   re-read soon               -> clean  (write back early, keep for re-reads)
//   neither                    -> skip   (non-temporal stores)
// A class that is re-written almost immediately and not fence-bound gets
// kNone (the Listing-3 trap).
Advice AdviseClass(const SizeClassReport& cls, bool fence_bound,
                   const AdviceThresholds& t);

// Whole-function advice: kNone unless the function writes sequentially or
// writes before fences (§6.2.2); otherwise the dominant classes decide.
// A single significant re-read-soon class forces kClean over kSkip (the
// TensorFlow case in §7.2.1).
Advice AdviseFunction(const FunctionAnalysis& analysis,
                      const AdviceThresholds& t);

// Whether an online advisor's verdict (the region monitor, src/monitor)
// agrees with an offline DirtBuster recommendation over the same data:
// exact match, or both in the write-back-early family {kClean, kSkip}. The
// online advisor can only gate or admit hints already in the program — it
// cannot restructure plain stores into non-temporal ones — so kClean is its
// actionable stand-in where the offline tool would say kSkip. The
// online-vs-offline cross-check tests assert this relation on dominant
// regions.
bool AdviceCompatible(Advice offline, Advice online);

}  // namespace prestore

#endif  // SRC_DIRTBUSTER_RECOMMEND_H_
