// DirtBuster step 1 (§6.2.1): sampling profiler that finds write-intensive
// functions and the callchains leading to them. Stand-in for `perf record`
// on loads/stores.
#ifndef SRC_DIRTBUSTER_SAMPLER_H_
#define SRC_DIRTBUSTER_SAMPLER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/trace.h"

namespace prestore {

struct SamplerConfig {
  // Sample one memory access out of `period` (prime by default, to avoid
  // aliasing with loop strides).
  uint64_t period = 499;
  uint32_t max_cores = 64;
  uint32_t top_chains_per_function = 3;
};

struct SampledFunction {
  uint32_t func_id = kInvalidFunc;
  std::string name;
  std::string location;
  uint64_t sampled_loads = 0;
  uint64_t sampled_stores = 0;
  // Share of all sampled stores attributed to this function.
  double store_share = 0.0;
  // Most common interned callchains leading here, with sample counts.
  std::vector<std::pair<uint32_t, uint64_t>> top_chains;
};

struct SampleProfile {
  uint64_t sampled_loads = 0;
  uint64_t sampled_stores = 0;
  uint64_t total_instructions = 0;
  // Estimated fraction of instructions that are stores ("time issuing store
  // instructions", the paper's 10% write-intensity gate in §7.1).
  double store_instruction_fraction = 0.0;
  // Functions sorted by descending store share.
  std::vector<SampledFunction> functions;
};

class SamplingProfiler : public TraceSink {
 public:
  SamplingProfiler(const FunctionRegistry& registry, SamplerConfig config);

  void Record(const TraceRecord& rec) override;

  // `total_instructions`: instructions retired across all cores during the
  // profiled run (used to estimate the store-instruction fraction).
  SampleProfile Finalize(uint64_t total_instructions) const;

 private:
  struct FuncCounters {
    uint64_t loads = 0;
    uint64_t stores = 0;
    std::unordered_map<uint32_t, uint64_t> chains;
  };

  struct alignas(64) PerCore {
    uint64_t counter = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    std::unordered_map<uint32_t, FuncCounters> funcs;
  };

  const FunctionRegistry& registry_;
  SamplerConfig config_;
  std::vector<PerCore> per_core_;
};

}  // namespace prestore

#endif  // SRC_DIRTBUSTER_SAMPLER_H_
