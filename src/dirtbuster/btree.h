// In-memory B-tree keyed by uint64_t, used by DirtBuster's distance tracker
// (§6.2.3: "The information is currently stored in a B-Tree").
//
// A straightforward top-down B-tree: fixed order, sorted keys per node,
// split-on-full during descent. Values must be default-constructible.
#ifndef SRC_DIRTBUSTER_BTREE_H_
#define SRC_DIRTBUSTER_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace prestore {

template <typename V, int Order = 16>
class BTreeMap {
  static_assert(Order >= 4 && Order % 2 == 0, "Order must be even and >= 4");

 public:
  using Key = uint64_t;

  BTreeMap() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns the value for `key`, inserting a default-constructed one first
  // if absent.
  V& operator[](Key key) {
    if (root_->count == kMaxKeys) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->children[0] = std::move(root_);
      SplitChild(new_root.get(), 0);
      root_ = std::move(new_root);
    }
    return InsertNonFull(root_.get(), key);
  }

  V* Find(Key key) {
    Node* node = root_.get();
    while (true) {
      const int i = LowerBound(node, key);
      if (i < node->count && node->keys[i] == key) {
        return &node->values[i];
      }
      if (node->leaf) {
        return nullptr;
      }
      node = node->children[i].get();
    }
  }

  const V* Find(Key key) const {
    return const_cast<BTreeMap*>(this)->Find(key);
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }

  // In-order traversal.
  void ForEach(const std::function<void(Key, const V&)>& fn) const {
    ForEachNode(root_.get(), fn);
  }

  // Depth of the tree (1 = a single leaf). Exposed for tests: B-tree height
  // must stay logarithmic in size.
  int Height() const {
    int h = 1;
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children[0].get();
      ++h;
    }
    return h;
  }

 private:
  static constexpr int kMaxKeys = Order - 1;
  static constexpr int kMinKeys = Order / 2 - 1;

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    int count = 0;
    Key keys[kMaxKeys];
    V values[kMaxKeys];
    std::unique_ptr<Node> children[Order];
  };

  // Index of the first key >= `key`.
  static int LowerBound(const Node* node, Key key) {
    int lo = 0;
    int hi = node->count;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (node->keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Splits full child `i` of `parent` (parent must not be full).
  void SplitChild(Node* parent, int i) {
    Node* child = parent->children[i].get();
    auto right = std::make_unique<Node>(child->leaf);
    const int mid = kMaxKeys / 2;

    right->count = kMaxKeys - mid - 1;
    for (int j = 0; j < right->count; ++j) {
      right->keys[j] = child->keys[mid + 1 + j];
      right->values[j] = std::move(child->values[mid + 1 + j]);
    }
    if (!child->leaf) {
      for (int j = 0; j <= right->count; ++j) {
        right->children[j] = std::move(child->children[mid + 1 + j]);
      }
    }

    for (int j = parent->count; j > i; --j) {
      parent->keys[j] = parent->keys[j - 1];
      parent->values[j] = std::move(parent->values[j - 1]);
    }
    for (int j = parent->count + 1; j > i + 1; --j) {
      parent->children[j] = std::move(parent->children[j - 1]);
    }
    parent->keys[i] = child->keys[mid];
    parent->values[i] = std::move(child->values[mid]);
    parent->children[i + 1] = std::move(right);
    child->count = mid;
    ++parent->count;
  }

  V& InsertNonFull(Node* node, Key key) {
    while (true) {
      int i = LowerBound(node, key);
      if (i < node->count && node->keys[i] == key) {
        return node->values[i];
      }
      if (node->leaf) {
        for (int j = node->count; j > i; --j) {
          node->keys[j] = node->keys[j - 1];
          node->values[j] = std::move(node->values[j - 1]);
        }
        node->keys[i] = key;
        node->values[i] = V{};
        ++node->count;
        ++size_;
        return node->values[i];
      }
      if (node->children[i]->count == kMaxKeys) {
        SplitChild(node, i);
        if (key == node->keys[i]) {
          return node->values[i];
        }
        if (key > node->keys[i]) {
          ++i;
        }
      }
      node = node->children[i].get();
    }
  }

  void ForEachNode(const Node* node,
                   const std::function<void(Key, const V&)>& fn) const {
    for (int i = 0; i < node->count; ++i) {
      if (!node->leaf) {
        ForEachNode(node->children[i].get(), fn);
      }
      fn(node->keys[i], node->values[i]);
    }
    if (!node->leaf) {
      ForEachNode(node->children[node->count].get(), fn);
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace prestore

#endif  // SRC_DIRTBUSTER_BTREE_H_
