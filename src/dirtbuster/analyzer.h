// DirtBuster steps 2 & 3 (§6.2.2, §6.2.3): full instrumentation of the
// write-intensive functions found by the sampler. Stand-in for Intel PIN.
//
// Detects, per function:
//  - sequential-write contexts (ranges of adjacent writes) and their sizes,
//  - the instruction distance from writes to the next fence/atomic,
//  - per-cache-line re-read and re-write distances (kept in a B-tree).
#ifndef SRC_DIRTBUSTER_ANALYZER_H_
#define SRC_DIRTBUSTER_ANALYZER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/dirtbuster/btree.h"
#include "src/trace/trace.h"
#include "src/util/stats.h"

namespace prestore {

struct AnalyzerConfig {
  uint64_t line_size = 64;
  uint32_t max_cores = 64;
  // A new write continues a sequentiality context if it starts within this
  // many bytes after the context's current end...
  uint64_t seq_adjacency_slack = 64;
  // ...and within this many instructions of the context's previous write.
  // Address-adjacent writes that are far apart in time (e.g. bucket-sort
  // scatters) are NOT sequential for the cache: the line is long evicted.
  uint64_t seq_staleness_instructions = 10000;
  // A context counts as sequential only with at least this many adjacent
  // writes: pairs occur by chance in random scatters.
  uint64_t min_seq_context_writes = 4;
  // Stores with a fence within this many instructions count as
  // "written before a fence".
  uint64_t fence_near_instructions = 4096;
  // Cap on pending (store -> next fence) tracking per core.
  size_t max_pending_stores = 65536;
};

// Aggregated view of one group of similarly-sized sequential contexts.
struct SizeClassReport {
  uint64_t representative_bytes = 0;  // mean context size in this class
  double write_share = 0.0;           // fraction of the function's writes
  uint64_t context_count = 0;
  // Mean instruction distances; `finite` is false when the data was never
  // re-read / re-written ("re-read inf" in the paper's report).
  bool reread_finite = false;
  double reread_distance = 0.0;
  bool rewrite_finite = false;
  double rewrite_distance = 0.0;
};

struct FunctionAnalysis {
  uint32_t func_id = kInvalidFunc;
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  // Fraction of writes that landed in a sequential context (>= 2 adjacent
  // writes).
  double seq_write_fraction = 0.0;
  std::vector<SizeClassReport> classes;  // descending write share
  // Fraction of writes followed by a fence/atomic within
  // fence_near_instructions, and the mean distance to it.
  double writes_before_fence_fraction = 0.0;
  double mean_fence_distance = 0.0;
  uint64_t min_fence_distance = 0;
};

class PatternAnalyzer : public TraceSink {
 public:
  PatternAnalyzer(AnalyzerConfig config, std::set<uint32_t> selected_funcs);

  void Record(const TraceRecord& rec) override;

  // Merges all per-core state and produces one analysis per selected
  // function (functions with no observed writes are omitted).
  std::vector<FunctionAnalysis> Finalize();

 private:
  struct Context {
    uint32_t func_id;
    uint64_t start;
    uint64_t end;  // one past the last written byte
    uint64_t last_write_icount = 0;
    uint64_t writes = 0;
    RunningStat reread;
    RunningStat rewrite;
  };

  struct LineInfo {
    uint64_t last_write_icount = 0;
    uint64_t last_read_icount = 0;
    uint32_t ctx_index = 0xffffffff;
    bool written = false;
  };

  struct PendingStore {
    uint64_t icount;
    uint32_t func_id;
  };

  struct alignas(64) PerCore {
    std::vector<Context> contexts;
    // context lookup: exact end byte -> context index.
    std::unordered_map<uint64_t, uint32_t> by_end;
    BTreeMap<LineInfo, 16> lines;
    std::vector<PendingStore> pending;
    uint64_t dropped_pending = 0;
    // per-func fence distance stats & counts
    std::unordered_map<uint32_t, RunningStat> fence_dist;
    std::unordered_map<uint32_t, uint64_t> fence_near_writes;
    std::unordered_map<uint32_t, uint64_t> min_fence_dist;
    std::unordered_map<uint32_t, uint64_t> func_writes;
    std::unordered_map<uint32_t, uint64_t> func_write_bytes;
  };

  void OnStore(PerCore& pc, const TraceRecord& rec);
  void OnLoad(PerCore& pc, const TraceRecord& rec);
  void OnFence(PerCore& pc, const TraceRecord& rec);

  AnalyzerConfig config_;
  std::set<uint32_t> selected_;
  std::vector<PerCore> per_core_;
};

}  // namespace prestore

#endif  // SRC_DIRTBUSTER_ANALYZER_H_
