#include "src/dirtbuster/dirtbuster.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace prestore {

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

namespace {

std::string DistanceText(bool finite, double distance) {
  if (!finite) {
    return "inf";
  }
  char buf[32];
  if (distance >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.1fK", distance / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", distance);
  }
  return buf;
}

}  // namespace

std::string DirtBusterReport::ToString() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "store instruction fraction: %.1f%% (%s)\n",
                store_instruction_fraction * 100.0,
                write_intensive ? "write-intensive"
                                : "not write-intensive, skipping steps 2-3");
  os << line;
  for (const FunctionReport& f : functions) {
    os << "\n" << f.name << "\n";
    os << "Location: " << f.location << "\n";
    std::snprintf(line, sizeof(line), "Perc. Seq. Writes: %.0f%%\n",
                  f.analysis.seq_write_fraction * 100.0);
    os << line;
    if (f.analysis.writes_before_fence_fraction > 0.0) {
      std::snprintf(line, sizeof(line),
                    "Writes before fence: %.0f%% (min dist %llu instr)\n",
                    f.analysis.writes_before_fence_fraction * 100.0,
                    static_cast<unsigned long long>(
                        f.analysis.min_fence_distance));
      os << line;
    }
    for (const SizeClassReport& c : f.analysis.classes) {
      if (c.write_share < 0.01) {
        continue;
      }
      std::snprintf(line, sizeof(line),
                    "Size: %s - %.0f%% - re-read %s - re-write %s\n",
                    HumanBytes(c.representative_bytes).c_str(),
                    c.write_share * 100.0,
                    DistanceText(c.reread_finite, c.reread_distance).c_str(),
                    DistanceText(c.rewrite_finite, c.rewrite_distance).c_str());
      os << line;
    }
    os << "Pre-store choice: " << prestore::ToString(f.advice) << "\n";
    for (const std::string& chain : f.top_callchains) {
      os << "  callchain: " << chain << "\n";
    }
  }
  return os.str();
}

Advice DirtBusterReport::OverallAdvice() const {
  // Preference order mirrors the paper's guidance strength: a skip
  // recommendation implies clean works too; demote is specific.
  bool any_skip = false;
  bool any_clean = false;
  bool any_demote = false;
  for (const FunctionReport& f : functions) {
    any_skip |= f.advice == Advice::kSkip;
    any_clean |= f.advice == Advice::kClean;
    any_demote |= f.advice == Advice::kDemote;
  }
  if (any_skip) {
    return Advice::kSkip;
  }
  if (any_clean) {
    return Advice::kClean;
  }
  if (any_demote) {
    return Advice::kDemote;
  }
  return Advice::kNone;
}

DirtBuster::DirtBuster(Machine& machine, DirtBusterConfig config)
    : machine_(machine), config_(config) {
  config_.analyzer.line_size = machine.config().line_size;
  config_.sampler.max_cores = std::max(config_.sampler.max_cores,
                                       machine.num_cores());
  config_.analyzer.max_cores = std::max(config_.analyzer.max_cores,
                                        machine.num_cores());
}

uint64_t DirtBuster::TotalIcount() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < machine_.num_cores(); ++i) {
    total += const_cast<Machine&>(machine_).core(i).icount();
  }
  return total;
}

DirtBusterReport DirtBuster::Analyze(const std::function<void()>& workload) {
  DirtBusterReport report;

  // ---- Pass 1: sampling (§6.2.1) ----
  SamplingProfiler sampler(machine_.registry(), config_.sampler);
  const uint64_t icount_before = TotalIcount();
  machine_.SetTraceSink(&sampler);
  workload();
  machine_.SetTraceSink(nullptr);
  const SampleProfile profile =
      sampler.Finalize(TotalIcount() - icount_before);

  report.store_instruction_fraction = profile.store_instruction_fraction;
  report.write_intensive = profile.store_instruction_fraction >=
                           config_.write_intensive_fraction;
  if (!report.write_intensive) {
    // §7.1: "Adding pre-stores to these applications would have no effect.
    // We did not instrument these applications further."
    return report;
  }

  std::set<uint32_t> selected;
  for (const SampledFunction& f : profile.functions) {
    if (selected.size() >= config_.top_functions) {
      break;
    }
    if (f.store_share < config_.min_store_share) {
      break;  // sorted by stores: everything after is smaller
    }
    selected.insert(f.func_id);
  }

  // ---- Pass 2: binary instrumentation (§6.2.2, §6.2.3) ----
  PatternAnalyzer analyzer(config_.analyzer, selected);
  machine_.SetTraceSink(&analyzer);
  workload();
  machine_.SetTraceSink(nullptr);

  std::vector<FunctionAnalysis> analyses = analyzer.Finalize();
  for (FunctionAnalysis& analysis : analyses) {
    FunctionReport fr;
    const auto& info = machine_.registry().Function(analysis.func_id);
    fr.name = info.name;
    fr.location = info.location;
    for (const SampledFunction& f : profile.functions) {
      if (f.func_id == analysis.func_id) {
        fr.store_share = f.store_share;
        for (const auto& [chain_id, count] : f.top_chains) {
          std::string text;
          for (uint32_t func : machine_.registry().Chain(chain_id)) {
            if (!text.empty()) {
              text += " -> ";
            }
            text += machine_.registry().Function(func).name;
          }
          fr.top_callchains.push_back(std::move(text));
        }
        break;
      }
    }
    fr.advice = AdviseFunction(analysis, config_.thresholds);
    report.sequential_writer =
        report.sequential_writer ||
        analysis.seq_write_fraction >= config_.thresholds.seq_fraction;
    report.writes_before_fence =
        report.writes_before_fence ||
        analysis.writes_before_fence_fraction >=
            config_.thresholds.fence_fraction;
    fr.analysis = std::move(analysis);
    report.functions.push_back(std::move(fr));
  }
  return report;
}

}  // namespace prestore
