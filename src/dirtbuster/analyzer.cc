#include "src/dirtbuster/analyzer.h"

#include <algorithm>
#include <cmath>

namespace prestore {

PatternAnalyzer::PatternAnalyzer(AnalyzerConfig config,
                                 std::set<uint32_t> selected_funcs)
    : config_(config),
      selected_(std::move(selected_funcs)),
      per_core_(config.max_cores) {}

void PatternAnalyzer::Record(const TraceRecord& rec) {
  PerCore& pc = per_core_[rec.core_id];
  switch (rec.kind) {
    case TraceKind::kStore:
    case TraceKind::kNtStore:
      if (selected_.count(rec.func_id) != 0) {
        OnStore(pc, rec);
      }
      break;
    case TraceKind::kLoad:
      OnLoad(pc, rec);
      break;
    case TraceKind::kFence:
    case TraceKind::kAtomic:
      OnFence(pc, rec);
      break;
    case TraceKind::kPrestore:
      break;
  }
}

void PatternAnalyzer::OnStore(PerCore& pc, const TraceRecord& rec) {
  pc.func_writes[rec.func_id] += 1;
  pc.func_write_bytes[rec.func_id] += rec.size;

  // --- Sequentiality contexts (§6.2.2) ---
  // A write continues a context if it starts exactly at (or within the
  // slack after) the context's current end.
  uint32_t ctx_index = 0xffffffff;
  bool continues = false;
  for (uint64_t back = 0; back <= config_.seq_adjacency_slack; back += 8) {
    if (rec.addr < back) {
      break;
    }
    auto it = pc.by_end.find(rec.addr - back);
    if (it != pc.by_end.end() &&
        pc.contexts[it->second].func_id == rec.func_id &&
        rec.icount - pc.contexts[it->second].last_write_icount <=
            config_.seq_staleness_instructions) {
      ctx_index = it->second;
      pc.by_end.erase(it);
      continues = true;
      break;
    }
  }
  if (continues) {
    Context& ctx = pc.contexts[ctx_index];
    ctx.end = std::max(ctx.end, rec.addr + rec.size);
    ctx.last_write_icount = rec.icount;
    ctx.writes += 1;
    pc.by_end[ctx.end] = ctx_index;
  } else {
    ctx_index = static_cast<uint32_t>(pc.contexts.size());
    Context ctx;
    ctx.func_id = rec.func_id;
    ctx.start = rec.addr;
    ctx.end = rec.addr + rec.size;
    ctx.last_write_icount = rec.icount;
    ctx.writes = 1;
    pc.contexts.push_back(std::move(ctx));
    pc.by_end[rec.addr + rec.size] = ctx_index;
  }

  // --- Re-write distance (§6.2.3) ---
  const uint64_t line = rec.addr & ~(config_.line_size - 1);
  LineInfo& li = pc.lines[line];
  if (li.written && !continues) {
    // Only a write that breaks a sequential streak counts as a re-write
    // (otherwise every long sequential pass would look like rewriting).
    if (li.ctx_index < pc.contexts.size()) {
      pc.contexts[li.ctx_index].rewrite.Add(
          static_cast<double>(rec.icount - li.last_write_icount));
    }
  }
  li.written = true;
  li.last_write_icount = rec.icount;
  li.ctx_index = ctx_index;

  // --- Writes-before-fence tracking (§6.2.2) ---
  if (pc.pending.size() < config_.max_pending_stores) {
    pc.pending.push_back(PendingStore{rec.icount, rec.func_id});
  } else {
    ++pc.dropped_pending;
  }
}

void PatternAnalyzer::OnLoad(PerCore& pc, const TraceRecord& rec) {
  // Loads matter only for re-read distances of lines previously written by a
  // selected function.
  const uint64_t line = rec.addr & ~(config_.line_size - 1);
  LineInfo* li = pc.lines.Find(line);
  if (li == nullptr || !li->written) {
    return;
  }
  if (li->ctx_index < pc.contexts.size()) {
    pc.contexts[li->ctx_index].reread.Add(
        static_cast<double>(rec.icount - li->last_write_icount));
  }
  li->last_read_icount = rec.icount;
}

void PatternAnalyzer::OnFence(PerCore& pc, const TraceRecord& rec) {
  for (const PendingStore& ps : pc.pending) {
    const uint64_t d = rec.icount - ps.icount;
    pc.fence_dist[ps.func_id].Add(static_cast<double>(d));
    if (d <= config_.fence_near_instructions) {
      pc.fence_near_writes[ps.func_id] += 1;
    }
    auto [it, inserted] = pc.min_fence_dist.try_emplace(ps.func_id, d);
    if (!inserted && d < it->second) {
      it->second = d;
    }
  }
  pc.pending.clear();
}

std::vector<FunctionAnalysis> PatternAnalyzer::Finalize() {
  struct ClassAccum {
    uint64_t contexts = 0;
    uint64_t writes = 0;
    double bytes_sum = 0.0;
    RunningStat reread;
    RunningStat rewrite;
  };
  struct FuncAccum {
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
    uint64_t seq_writes = 0;
    std::unordered_map<int, ClassAccum> classes;  // keyed by log2 size bucket
    RunningStat fence_dist;
    uint64_t fence_near = 0;
    uint64_t min_fence = ~0ULL;
    bool min_fence_seen = false;
  };
  std::unordered_map<uint32_t, FuncAccum> funcs;

  for (PerCore& pc : per_core_) {
    for (const auto& [f, w] : pc.func_writes) {
      funcs[f].writes += w;
    }
    for (const auto& [f, b] : pc.func_write_bytes) {
      funcs[f].write_bytes += b;
    }
    for (const Context& ctx : pc.contexts) {
      FuncAccum& fa = funcs[ctx.func_id];
      const uint64_t bytes = ctx.end - ctx.start;
      if (ctx.writes >= config_.min_seq_context_writes) {
        fa.seq_writes += ctx.writes;
      }
      const int bucket = bytes == 0 ? 0 : 64 - __builtin_clzll(bytes);
      ClassAccum& ca = fa.classes[bucket];
      ca.contexts += 1;
      ca.writes += ctx.writes;
      ca.bytes_sum += static_cast<double>(bytes);
      ca.reread.Merge(ctx.reread);
      ca.rewrite.Merge(ctx.rewrite);
    }
    for (const auto& [f, stat] : pc.fence_dist) {
      funcs[f].fence_dist.Merge(stat);
    }
    for (const auto& [f, n] : pc.fence_near_writes) {
      funcs[f].fence_near += n;
    }
    for (const auto& [f, d] : pc.min_fence_dist) {
      FuncAccum& fa = funcs[f];
      fa.min_fence = std::min(fa.min_fence, d);
      fa.min_fence_seen = true;
    }
  }

  std::vector<FunctionAnalysis> out;
  for (auto& [func_id, fa] : funcs) {
    if (fa.writes == 0) {
      continue;
    }
    FunctionAnalysis analysis;
    analysis.func_id = func_id;
    analysis.writes = fa.writes;
    analysis.write_bytes = fa.write_bytes;
    analysis.seq_write_fraction =
        static_cast<double>(fa.seq_writes) / static_cast<double>(fa.writes);
    analysis.writes_before_fence_fraction =
        static_cast<double>(fa.fence_near) / static_cast<double>(fa.writes);
    analysis.mean_fence_distance = fa.fence_dist.Mean();
    analysis.min_fence_distance = fa.min_fence_seen ? fa.min_fence : 0;
    for (const auto& [bucket, ca] : fa.classes) {
      SizeClassReport sc;
      sc.representative_bytes = static_cast<uint64_t>(
          ca.bytes_sum / static_cast<double>(ca.contexts));
      sc.write_share =
          static_cast<double>(ca.writes) / static_cast<double>(fa.writes);
      sc.context_count = ca.contexts;
      sc.reread_finite = ca.reread.Count() > 0;
      sc.reread_distance = ca.reread.Mean();
      sc.rewrite_finite = ca.rewrite.Count() > 0;
      sc.rewrite_distance = ca.rewrite.Mean();
      analysis.classes.push_back(sc);
    }
    std::sort(analysis.classes.begin(), analysis.classes.end(),
              [](const SizeClassReport& a, const SizeClassReport& b) {
                return a.write_share > b.write_share;
              });
    out.push_back(std::move(analysis));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionAnalysis& a, const FunctionAnalysis& b) {
              return a.writes > b.writes;
            });
  return out;
}

}  // namespace prestore
