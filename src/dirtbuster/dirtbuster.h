// DirtBuster orchestrator (§6): two-pass dynamic analysis over a workload
// running on a simulated machine.
//
//   Pass 1 — sampling (perf stand-in): find write-intensive functions and
//            the callchains leading to them.
//   Pass 2 — full instrumentation (PIN stand-in) of those functions:
//            sequential-write contexts, writes-before-fence distances, and
//            per-line re-read / re-write distances.
//
// The final report names functions/locations and recommends demote / clean /
// skip / none per function, in the paper's output format.
#ifndef SRC_DIRTBUSTER_DIRTBUSTER_H_
#define SRC_DIRTBUSTER_DIRTBUSTER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/prestore.h"
#include "src/dirtbuster/analyzer.h"
#include "src/dirtbuster/recommend.h"
#include "src/dirtbuster/sampler.h"
#include "src/sim/machine.h"

namespace prestore {

struct DirtBusterConfig {
  SamplerConfig sampler;
  AnalyzerConfig analyzer;
  AdviceThresholds thresholds;
  // §7.1's gate is "<10% of their time issuing store instructions". Store
  // instructions cost more time than average instructions (they miss), so
  // the equivalent instruction-count fraction is calibrated to 5%.
  double write_intensive_fraction = 0.05;
  // How many top write functions to instrument in pass 2.
  size_t top_functions = 6;
  // Functions below this share of sampled stores are not instrumented.
  double min_store_share = 0.05;
};

struct FunctionReport {
  std::string name;
  std::string location;
  double store_share = 0.0;  // of all sampled stores
  std::vector<std::string> top_callchains;
  FunctionAnalysis analysis;
  Advice advice = Advice::kNone;
};

struct DirtBusterReport {
  double store_instruction_fraction = 0.0;
  bool write_intensive = false;
  bool sequential_writer = false;     // any analyzed function writes seq.
  bool writes_before_fence = false;   // any analyzed function fence-bound
  std::vector<FunctionReport> functions;

  // Paper-style textual report (§7.2.1 / §7.2.2 examples).
  std::string ToString() const;

  // The strongest advice across functions (for Table 2 style summaries).
  Advice OverallAdvice() const;
};

class DirtBuster {
 public:
  explicit DirtBuster(Machine& machine, DirtBusterConfig config = {});

  // Runs `workload` twice (it must be re-runnable) and returns the report.
  // The workload drives the machine's cores itself (e.g. via RunParallel).
  DirtBusterReport Analyze(const std::function<void()>& workload);

 private:
  uint64_t TotalIcount() const;

  Machine& machine_;
  DirtBusterConfig config_;
};

// Helper shared with the report writer: "16.2MB" / "240B" style size text.
std::string HumanBytes(uint64_t bytes);

}  // namespace prestore

#endif  // SRC_DIRTBUSTER_DIRTBUSTER_H_
