#include "src/dirtbuster/sampler.h"

#include <algorithm>

namespace prestore {

SamplingProfiler::SamplingProfiler(const FunctionRegistry& registry,
                                   SamplerConfig config)
    : registry_(registry), config_(config), per_core_(config.max_cores) {}

void SamplingProfiler::Record(const TraceRecord& rec) {
  if (rec.kind != TraceKind::kLoad && rec.kind != TraceKind::kStore &&
      rec.kind != TraceKind::kNtStore) {
    return;
  }
  PerCore& pc = per_core_[rec.core_id];
  if (++pc.counter % config_.period != 0) {
    return;
  }
  // Weight by the number of load/store instructions the record stands for
  // (bulk copies emit one record per line but retire size/8 instructions).
  const uint64_t weight = rec.size > 8 ? rec.size / 8 : 1;
  const bool is_store = rec.kind != TraceKind::kLoad;
  if (is_store) {
    pc.stores += weight;
  } else {
    pc.loads += weight;
  }
  if (rec.func_id == kInvalidFunc) {
    return;
  }
  FuncCounters& fc = pc.funcs[rec.func_id];
  if (is_store) {
    fc.stores += weight;
  } else {
    fc.loads += weight;
  }
  if (rec.chain_id != kInvalidChain) {
    ++fc.chains[rec.chain_id];
  }
}

SampleProfile SamplingProfiler::Finalize(uint64_t total_instructions) const {
  SampleProfile profile;
  profile.total_instructions = total_instructions;
  std::unordered_map<uint32_t, FuncCounters> merged;
  for (const PerCore& pc : per_core_) {
    profile.sampled_loads += pc.loads;
    profile.sampled_stores += pc.stores;
    for (const auto& [func, counters] : pc.funcs) {
      FuncCounters& m = merged[func];
      m.loads += counters.loads;
      m.stores += counters.stores;
      for (const auto& [chain, count] : counters.chains) {
        m.chains[chain] += count;
      }
    }
  }
  if (total_instructions > 0) {
    profile.store_instruction_fraction =
        static_cast<double>(profile.sampled_stores * config_.period) /
        static_cast<double>(total_instructions);
  }
  for (const auto& [func, counters] : merged) {
    SampledFunction sf;
    sf.func_id = func;
    const auto& info = registry_.Function(func);
    sf.name = info.name;
    sf.location = info.location;
    sf.sampled_loads = counters.loads;
    sf.sampled_stores = counters.stores;
    sf.store_share =
        profile.sampled_stores == 0
            ? 0.0
            : static_cast<double>(counters.stores) /
                  static_cast<double>(profile.sampled_stores);
    std::vector<std::pair<uint32_t, uint64_t>> chains(counters.chains.begin(),
                                                      counters.chains.end());
    std::sort(chains.begin(), chains.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (chains.size() > config_.top_chains_per_function) {
      chains.resize(config_.top_chains_per_function);
    }
    sf.top_chains = std::move(chains);
    profile.functions.push_back(std::move(sf));
  }
  std::sort(profile.functions.begin(), profile.functions.end(),
            [](const SampledFunction& a, const SampledFunction& b) {
              return a.sampled_stores > b.sampled_stores;
            });
  return profile;
}

}  // namespace prestore
