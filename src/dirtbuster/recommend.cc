#include "src/dirtbuster/recommend.h"

namespace prestore {

Advice AdviseClass(const SizeClassReport& cls, bool fence_bound,
                   const AdviceThresholds& t) {
  const bool rewritten_soon =
      cls.rewrite_finite && cls.rewrite_distance < t.rewrite_near;
  const bool reread_soon =
      cls.reread_finite && cls.reread_distance < t.reread_near;
  if (rewritten_soon) {
    // Cleaning or skipping re-written data causes useless memory traffic
    // (§5, Listing 3). Demoting is still useful when a fence follows.
    return fence_bound ? Advice::kDemote : Advice::kNone;
  }
  if (reread_soon) {
    return Advice::kClean;
  }
  return Advice::kSkip;
}

Advice AdviseFunction(const FunctionAnalysis& analysis,
                      const AdviceThresholds& t) {
  const bool sequential = analysis.seq_write_fraction >= t.seq_fraction;
  const bool fence_bound =
      analysis.writes_before_fence_fraction >= t.fence_fraction;
  if (!sequential && !fence_bound) {
    // §6.1: pre-stores only help sequential writes or writes before fences.
    return Advice::kNone;
  }

  double rewrite_share = 0.0;
  bool any_reread = false;
  bool any_skip = false;
  for (const SizeClassReport& cls : analysis.classes) {
    if (cls.write_share < t.significant_class_share) {
      continue;
    }
    switch (AdviseClass(cls, fence_bound, t)) {
      case Advice::kNone:
      case Advice::kDemote:
        rewrite_share += cls.write_share;
        break;
      case Advice::kClean:
        any_reread = true;
        break;
      case Advice::kSkip:
        any_skip = true;
        break;
    }
  }

  if (rewrite_share >= 0.5) {
    // Mostly re-written data: only demotion (before a fence) is safe.
    return fence_bound ? Advice::kDemote : Advice::kNone;
  }
  if (any_reread) {
    // Some of the written data is re-read from the cache soon: skipping
    // would push those reads to memory, so clean (§7.2.1).
    return Advice::kClean;
  }
  if (any_skip) {
    return Advice::kSkip;
  }
  return fence_bound ? Advice::kDemote : Advice::kNone;
}

bool AdviceCompatible(Advice offline, Advice online) {
  if (offline == online) {
    return true;
  }
  const auto write_back_early = [](Advice a) {
    return a == Advice::kClean || a == Advice::kSkip;
  };
  return write_back_early(offline) && write_back_early(online);
}

}  // namespace prestore
