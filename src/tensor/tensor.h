// Mini tensor library over simulated memory — the reproduction's stand-in
// for the Eigen tensor module used by TensorFlow (§7.2.1).
#ifndef SRC_TENSOR_TENSOR_H_
#define SRC_TENSOR_TENSOR_H_

#include <cstdint>

#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

// How the evaluator's output stores behave — the §7.2.1 comparison.
enum class TensorWritePolicy : uint8_t {
  kBaseline,  // plain stores
  kClean,     // clean pre-store per output line (Listing 4)
  kSkip,      // non-temporal stores (cache skipping)
};

// A flat tensor of doubles living in simulated memory.
class Tensor {
 public:
  Tensor() = default;
  Tensor(Machine& machine, uint64_t count, Region region = Region::kTarget)
      : base_(machine.Alloc(count * sizeof(double), region)), count_(count) {}

  SimAddr base() const { return base_; }
  uint64_t size() const { return count_; }
  uint64_t bytes() const { return count_ * sizeof(double); }
  SimAddr AddrOf(uint64_t i) const { return base_ + i * sizeof(double); }

  double Get(Core& core, uint64_t i) const { return core.LoadF64(AddrOf(i)); }
  void Set(Core& core, uint64_t i, double v) { core.StoreF64(AddrOf(i), v); }

 private:
  SimAddr base_ = 0;
  uint64_t count_ = 0;
};

}  // namespace prestore

#endif  // SRC_TENSOR_TENSOR_H_
