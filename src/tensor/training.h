// CNN-training-shaped workload: the reproduction of the pts/tensorflow
// benchmark of §7.2.1.
//
// Store profile engineered to match what DirtBuster reported on TensorFlow:
//  - the templated evaluator writes large activation tensors sequentially
//    (never re-read within the step) and small 240B bias/temp tensors that
//    are re-read within ~2 instructions;
//  - the evaluator accounts for ~half of all memory writes at small batch
//    sizes and ~a third at large ones (im2col-like scratch traffic grows
//    faster than activations with the batch size);
//  - the recurrent data dependence means evalPacket re-loads the packet it
//    wrote 4*PacketSize elements before, which penalises non-temporal
//    stores.
#ifndef SRC_TENSOR_TRAINING_H_
#define SRC_TENSOR_TRAINING_H_

#include <vector>

#include "src/tensor/evaluator.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace prestore {

struct TrainingConfig {
  uint32_t batch_size = 16;  // paper sweeps 0..250
  uint32_t layers = 3;
  uint64_t features = 16384;  // activation elements per sample per layer
  uint64_t small_tensors_per_layer = 24;  // 240B bias/temp tensors
  TensorWritePolicy policy = TensorWritePolicy::kBaseline;
};

class CnnTrainingProxy {
 public:
  CnnTrainingProxy(Machine& machine, const TrainingConfig& config);

  // One training step: forward (activations + small temps through the
  // evaluator), then backward/optimizer scratch traffic that does not go
  // through the patched function.
  void Step(Core& core);

  // Checksum of the last layer's activations (functional regression tests).
  double Checksum(Core& core);

  uint64_t ActivationElements() const { return activation_elems_; }

 private:
  Machine& machine_;
  TrainingConfig config_;
  TensorEvaluator evaluator_;
  TensorEvaluator small_evaluator_;

  uint64_t activation_elems_;
  std::vector<Tensor> activations_;  // one per layer (+input)
  // Small bias/temp tensors rotate through a pool: like Eigen's fresh
  // temporaries, each is written once and re-read immediately, not
  // re-written (the paper's "re-read 2 - re-write inf" 240B class).
  std::vector<Tensor> small_in_;
  std::vector<Tensor> small_out_;
  size_t small_cursor_ = 0;
  Tensor weights_;
  SimAddr scratch_ = 0;  // im2col/optimizer scratch (non-sequential writes)
  uint64_t scratch_elems_ = 0;
  FuncToken im2col_func_;
  FuncToken sgd_func_;
  Xoshiro256 rng_;
};

}  // namespace prestore

#endif  // SRC_TENSOR_TRAINING_H_
