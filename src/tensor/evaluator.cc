#include "src/tensor/evaluator.h"

namespace prestore {

void TensorEvaluator::EvalPacket(Core& core, Tensor& out, const Tensor& a,
                                 const Tensor& b, uint64_t i, double alpha) {
  const uint64_t chunk = kUnroll * kPacketSize;
  double packet[kPacketSize];
  for (uint64_t k = 0; k < kPacketSize; ++k) {
    const double av = a.Get(core, i + k);
    switch (op_) {
      case TensorOp::kSum:
        packet[k] = av + b.Get(core, i + k);
        break;
      case TensorOp::kProduct:
        packet[k] = av * b.Get(core, i + k);
        break;
      case TensorOp::kScale:
        packet[k] = alpha * av;
        break;
      case TensorOp::kRecurrent: {
        // Loads the previously *written* packet of the output — the data
        // dependence that makes non-temporal stores lose (§7.2.1).
        const double prev = i + k >= chunk ? out.Get(core, i + k - chunk) : 0.0;
        packet[k] = av + 0.5 * prev;
        break;
      }
    }
  }
  core.Execute(2 * kPacketSize);  // FLOPs of the packet
  if (policy_ == TensorWritePolicy::kSkip) {
    core.StoreNt(out.AddrOf(i), packet, sizeof(packet));
  } else {
    core.MemCopyToSim(out.AddrOf(i), packet, sizeof(packet));
  }
  ++stats_.packets;
}

void TensorEvaluator::Run(Core& core, Tensor& out, const Tensor& a,
                          const Tensor& b, double alpha) {
  ScopedFunction f(core, func_);
  const uint64_t n = out.size();
  const uint64_t chunk = kUnroll * kPacketSize;  // 16 doubles = 128B
  uint64_t i = 0;
  if (n >= chunk) {
    const uint64_t last_chunk_offset = n - chunk;
    for (; i <= last_chunk_offset; i += chunk) {
      EvalPacket(core, out, a, b, i + 0 * kPacketSize, alpha);
      EvalPacket(core, out, a, b, i + 1 * kPacketSize, alpha);
      EvalPacket(core, out, a, b, i + 2 * kPacketSize, alpha);
      EvalPacket(core, out, a, b, i + 3 * kPacketSize, alpha);
      if (policy_ == TensorWritePolicy::kClean) {
        // Listing 4 line 8: one clean pre-store per completed chunk.
        core.Prestore(out.AddrOf(i), chunk * sizeof(double),
                      PrestoreOp::kClean);
      }
      ++stats_.chunks;
    }
  }
  for (; i < n; ++i) {  // scalar tail
    double v = 0.0;
    const double av = a.Get(core, i);
    switch (op_) {
      case TensorOp::kSum:
        v = av + b.Get(core, i);
        break;
      case TensorOp::kProduct:
        v = av * b.Get(core, i);
        break;
      case TensorOp::kScale:
        v = alpha * av;
        break;
      case TensorOp::kRecurrent:
        v = av + (i >= chunk ? 0.5 * out.Get(core, i - chunk) : 0.0);
        break;
    }
    core.Execute(2);
    out.Set(core, i, v);
  }
}

}  // namespace prestore
