// Packet-unrolled tensor expression evaluator, shaped like
// Eigen::TensorEvaluator<...>::run() (paper Listing 4).
//
// The evaluator walks the output in "packets" of 4 doubles, 4 packets per
// unrolled chunk (one chunk = 128B = 2 cache lines on Machine A), and can
// issue a clean pre-store per completed line, or use non-temporal stores.
//
// Mirroring the pattern the paper found in Eigen (§7.2.1 "the newly written
// values depend on previously written values"), evalPacket for the
// recurrent ops loads the packet written 4*PacketSize elements earlier —
// which is what makes *skipping* the cache counterproductive.
#ifndef SRC_TENSOR_EVALUATOR_H_
#define SRC_TENSOR_EVALUATOR_H_

#include <functional>

#include "src/tensor/tensor.h"

namespace prestore {

inline constexpr uint64_t kPacketSize = 4;  // doubles per packet
inline constexpr uint64_t kUnroll = 4;      // packets per unrolled chunk

enum class TensorOp : uint8_t {
  kSum,        // out[i] = a[i] + b[i]
  kProduct,    // out[i] = a[i] * b[i]
  kScale,      // out[i] = alpha * a[i]
  kRecurrent,  // out[i] = a[i] + 0.5 * out[i - kUnroll*kPacketSize]
};

struct EvaluatorStats {
  uint64_t packets = 0;
  uint64_t chunks = 0;
};

class TensorEvaluator {
 public:
  TensorEvaluator(Machine& machine, TensorOp op, TensorWritePolicy policy)
      : machine_(machine), op_(op), policy_(policy) {
    // All template instantiations symbolize to one function, as the paper
    // observed on the real Eigen ("collectively, all the templated versions
    // of the function", §7.2.1) — which is what makes DirtBuster see the
    // mixed large/small size classes in a single report entry.
    func_ = FuncToken{machine.registry().Intern(
        "Eigen::TensorEvaluator<...>::run", "TensorExecutor.h:272")};
  }

  // Evaluates out = op(a, b) elementwise. Tensor sizes must match; sizes not
  // multiple of the unrolled chunk fall back to a scalar tail loop.
  void Run(Core& core, Tensor& out, const Tensor& a, const Tensor& b,
           double alpha = 1.0);

  const EvaluatorStats& stats() const { return stats_; }

  static const char* OpName(TensorOp op) {
    switch (op) {
      case TensorOp::kSum:
        return "scalar_sum_op";
      case TensorOp::kProduct:
        return "scalar_product_op";
      case TensorOp::kScale:
        return "scalar_scale_op";
      case TensorOp::kRecurrent:
        return "scalar_recurrent_op";
    }
    return "?";
  }

 private:
  void EvalPacket(Core& core, Tensor& out, const Tensor& a, const Tensor& b,
                  uint64_t i, double alpha);

  Machine& machine_;
  TensorOp op_;
  TensorWritePolicy policy_;
  FuncToken func_;
  EvaluatorStats stats_;
};

}  // namespace prestore

#endif  // SRC_TENSOR_EVALUATOR_H_
