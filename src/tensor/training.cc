#include "src/tensor/training.h"

#include <algorithm>

namespace prestore {

CnnTrainingProxy::CnnTrainingProxy(Machine& machine,
                                   const TrainingConfig& config)
    : machine_(machine),
      config_(config),
      evaluator_(machine, TensorOp::kRecurrent, config.policy),
      small_evaluator_(machine, TensorOp::kSum, config.policy),
      activation_elems_(std::max<uint64_t>(1, config.batch_size) *
                        config.features),
      im2col_func_{machine.registry().Intern("im2col_scratch", "conv_ops.cc:88")},
      sgd_func_{machine.registry().Intern("sgd_update", "training_ops.cc:41")},
      rng_(machine.config().seed ^ 0x7e50) {
  activations_.reserve(config.layers + 1);
  for (uint32_t l = 0; l <= config.layers; ++l) {
    activations_.emplace_back(machine, activation_elems_);
  }
  constexpr uint64_t kSmallElems = 30;  // 240B
  // Pool 8x the per-layer count so successive layers/steps use fresh
  // tensors (see the header comment on the rotation).
  for (uint32_t i = 0; i < 8 * config.small_tensors_per_layer; ++i) {
    small_in_.emplace_back(machine, kSmallElems);
    small_out_.emplace_back(machine, kSmallElems);
  }
  weights_ = Tensor(machine, config.features * 16);
  // im2col-like scratch: grows faster than activations with the batch size,
  // so the evaluator's share of writes shrinks as batches grow (§7.2.1:
  // 50% of writes at batch <= 50, ~30% above).
  const double growth =
      0.6 + static_cast<double>(config.batch_size) / 250.0 * 1.7;
  scratch_elems_ = static_cast<uint64_t>(
      static_cast<double>(activation_elems_) * growth) + 1024;
  scratch_ = machine.Alloc(scratch_elems_ * sizeof(double));

  // Initialize inputs so checksums are meaningful.
  Core& core = machine.core(0);
  for (uint64_t i = 0; i < activation_elems_; i += 64) {
    activations_[0].Set(core, i, static_cast<double>(i % 97) * 0.25);
  }
  for (auto& t : small_in_) {
    for (uint64_t i = 0; i < t.size(); ++i) {
      t.Set(core, i, 1.0);
    }
  }
}

void CnnTrainingProxy::Step(Core& core) {
  for (uint32_t l = 0; l < config_.layers; ++l) {
    // Forward: large sequential output through the templated evaluator.
    evaluator_.Run(core, activations_[l + 1], activations_[l],
                   activations_[l]);
    // Small bias/temp tensors: written by the same templated code and
    // re-read immediately (the paper's "re-read 2" 240B class).
    double acc = 0.0;
    for (uint64_t n = 0; n < config_.small_tensors_per_layer; ++n) {
      const size_t t = small_cursor_;
      small_cursor_ = (small_cursor_ + 1) % small_out_.size();
      small_evaluator_.Run(core, small_out_[t], small_in_[t], small_in_[t]);
      for (uint64_t i = 0; i < small_out_[t].size(); ++i) {
        acc += small_out_[t].Get(core, i);
      }
    }
    core.Execute(static_cast<uint64_t>(acc) % 7 + 1);
  }
  {
    // im2col-like scratch: non-sequential writes (a strided transpose) that
    // the patched function does not cover. DirtBuster finds this function
    // write-intensive but NOT sequential, so it is left alone (§7.2.1:
    // patching it "had no effect on performance").
    ScopedFunction f(core, im2col_func_);
    const uint64_t stride = 1031;  // prime: scatters lines
    for (uint64_t i = 0; i < scratch_elems_; ++i) {
      const uint64_t idx = (i * stride) % scratch_elems_;
      core.StoreF64(scratch_ + idx * 8, static_cast<double>(i));
    }
  }
  {
    // Optimizer update: small compared to activations/scratch.
    ScopedFunction f(core, sgd_func_);
    for (uint64_t i = 0; i < weights_.size(); ++i) {
      weights_.Set(core, i, weights_.Get(core, i) * 0.999 + 0.001);
    }
  }
}

double CnnTrainingProxy::Checksum(Core& core) {
  double sum = 0.0;
  Tensor& last = activations_[config_.layers];
  for (uint64_t i = 0; i < last.size(); i += 17) {
    sum += last.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
