// Trace substrate: the reproduction's stand-in for perf sampling and Intel
// PIN binary instrumentation (paper §6).
//
// Every memory operation executed on a simulated core can be emitted as a
// TraceRecord. Workloads annotate their "functions" with ScopedFunction so
// records carry a function id and a callchain id — the same information
// DirtBuster extracts from perf callchains and PIN routine instrumentation.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace prestore {

enum class TraceKind : uint8_t {
  kLoad,
  kStore,
  kNtStore,   // non-temporal (cache-skipping) store
  kPrestore,  // demote or clean hint
  kFence,
  kAtomic,  // atomic RMW / CAS: has fence semantics (paper §4.2)
};

struct TraceRecord {
  TraceKind kind;
  uint8_t core_id;
  uint32_t size;
  uint64_t addr;
  uint64_t icount;    // instructions retired by this core so far
  uint32_t func_id;   // innermost annotated function (kInvalidFunc if none)
  uint32_t chain_id;  // interned callchain (kInvalidChain if none)
};

inline constexpr uint32_t kInvalidFunc = 0xffffffff;
inline constexpr uint32_t kInvalidChain = 0xffffffff;

// Receives records from simulated cores. Implementations must tolerate
// concurrent calls from different core ids (cores never share an id).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(const TraceRecord& rec) = 0;
};

// Interns function names ("symbols") and callchains. Shared by all cores of a
// machine; thread-safe.
class FunctionRegistry {
 public:
  struct FunctionInfo {
    std::string name;
    std::string location;  // "file:line" as reported by DirtBuster
  };

  uint32_t Intern(const std::string& name, const std::string& location) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) {
      return it->second;
    }
    const auto id = static_cast<uint32_t>(functions_.size());
    functions_.push_back(FunctionInfo{name, location});
    by_name_.emplace(name, id);
    return id;
  }

  // Interns a callchain (outermost → innermost function ids).
  uint32_t InternChain(const std::vector<uint32_t>& chain) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string key;
    key.reserve(chain.size() * 4);
    for (uint32_t f : chain) {
      key.append(reinterpret_cast<const char*>(&f), 4);
    }
    auto it = chain_ids_.find(key);
    if (it != chain_ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<uint32_t>(chains_.size());
    chains_.push_back(chain);
    chain_ids_.emplace(std::move(key), id);
    return id;
  }

  const FunctionInfo& Function(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return functions_[id];
  }

  std::vector<uint32_t> Chain(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return chains_[id];
  }

  size_t NumFunctions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return functions_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<FunctionInfo> functions_;
  std::unordered_map<std::string, uint32_t> by_name_;
  std::vector<std::vector<uint32_t>> chains_;
  std::unordered_map<std::string, uint32_t> chain_ids_;
};

}  // namespace prestore

#endif  // SRC_TRACE_TRACE_H_
