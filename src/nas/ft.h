// FT — 3D Fast Fourier Transform kernel (§7.2.2, §7.4.2).
//
// DirtBuster's findings the reproduction preserves:
//  - `cffts1` sequentially transfers per-pencil results from the Y1 scratch
//    into the XOUT array -> clean pre-store helps (§7.2.2);
//  - `fftz2` (the butterfly inner stage) rewrites a small scratch that fits
//    in the cache; cleaning it is the §7.4.2 misuse that cost 3x.
#ifndef SRC_NAS_FT_H_
#define SRC_NAS_FT_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"

namespace prestore {

// Which (if any) pre-store patch is applied to FT.
enum class FtPatch : uint8_t {
  kNone,
  kCffts1Clean,  // DirtBuster's recommendation
  kFftz2Clean,   // the manual misuse of §7.4.2
};

class FtKernel : public NasKernel {
 public:
  FtKernel(Machine& machine, NasPrestore mode, uint32_t scale,
           FtPatch patch_override = FtPatch::kNone);

  const char* name() const override { return "ft"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return true; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  // One radix-2 butterfly stage over the Y1 pencil scratch.
  void Fftz2(Core& core, uint64_t stage);
  // FFT every x-pencil: gather into Y1, run stages, scatter to XOUT.
  void Cffts1(Core& core);
  void Evolve(Core& core);

  Machine& machine_;
  FtPatch patch_;
  uint64_t nx_, ny_, nz_;  // nx = pencil length (power of two)
  // Complex data as interleaved (re, im) doubles.
  SimArray<double> x_, xout_, y1_;
  FuncToken cffts1_func_, fftz2_func_, evolve_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_FT_H_
