// SP — Scalar Penta-diagonal solver kernel (§7.2.2).
//
// DirtBuster on SP: dozens of matrices allocated, but the RHS matrix
// accounts for most writes (in `compute_rhs`), written sequentially and
// rarely reused -> clean after writing.
#ifndef SRC_NAS_SP_H_
#define SRC_NAS_SP_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"

namespace prestore {

class SpKernel : public NasKernel {
 public:
  SpKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "sp"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return true; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  uint64_t Idx(uint64_t m, uint64_t i, uint64_t j, uint64_t k) const {
    return ((k * ny_ + j) * nx_ + i) * 5 + m;
  }

  void ComputeRhs(Core& core);
  void XSolve(Core& core);

  Machine& machine_;
  NasPrestore mode_;
  uint64_t nx_, ny_, nz_;
  SimArray<double> u_, rhs_;
  SimArray<double> lhs_;  // small per-line scratch, heavily rewritten
  FuncToken rhs_func_, xsolve_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_SP_H_
