#include "src/nas/bt.h"

#include "src/util/rng.h"

namespace prestore {

BtKernel::BtKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      mode_(mode),
      nx_(20 * scale),
      ny_(20 * scale),
      nz_(20 * scale),
      u_(machine, 5 * nx_ * ny_ * nz_),
      rhs_(machine, 5 * nx_ * ny_ * nz_),
      block_(machine, 25),
      rhs_func_{machine.registry().Intern("compute_rhs", "bt.f90:270")},
      solve_func_{machine.registry().Intern("x_solve_block", "bt.f90:40")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0xb7);
  for (uint64_t i = 0; i < u_.size(); i += 13) {
    u_.Set(core, i, rng.NextDouble() - 0.3);
  }
}

void BtKernel::ComputeRhs(Core& core) {
  ScopedFunction f(core, rhs_func_);
  for (uint64_t k = 1; k + 1 < nz_; ++k) {
    for (uint64_t j = 1; j + 1 < ny_; ++j) {
      const uint64_t row_start = Idx(0, 1, j, k);
      for (uint64_t i = 1; i + 1 < nx_; ++i) {
        for (uint64_t m = 0; m < 5; ++m) {
          const double v =
              u_.Get(core, Idx(m, i, j, k)) * 1.25 -
              0.5 * (u_.Get(core, Idx(m, i, j - 1, k)) +
                     u_.Get(core, Idx(m, i, j + 1, k)));
          core.Execute(4);
          rhs_.Set(core, Idx(m, i, j, k), v);
        }
      }
      if (mode_ == NasPrestore::kOn) {
        core.Prestore(rhs_.AddrOf(row_start), (nx_ - 2) * 5 * sizeof(double),
                      PrestoreOp::kClean);
      }
    }
  }
}

void BtKernel::BlockSolve(Core& core) {
  ScopedFunction f(core, solve_func_);
  // Per cell: assemble a 5x5 block in the scratch (rewritten constantly),
  // "invert" it cheaply, and update U.
  for (uint64_t k = 1; k + 1 < nz_; ++k) {
    for (uint64_t j = 1; j + 1 < ny_; ++j) {
      for (uint64_t i = 1; i + 1 < nx_; ++i) {
        for (uint64_t a = 0; a < 5; ++a) {
          for (uint64_t b = 0; b < 5; ++b) {
            block_.Set(core, a * 5 + b, a == b ? 2.0 : 0.1);
          }
        }
        for (uint64_t m = 0; m < 5; ++m) {
          const double diag = block_.Get(core, m * 5 + m);
          const double r = rhs_.Get(core, Idx(m, i, j, k));
          core.Execute(4);
          u_.Set(core, Idx(m, i, j, k),
                 u_.Get(core, Idx(m, i, j, k)) + r / diag);
        }
      }
    }
  }
}

void BtKernel::Run(Core& core) {
  constexpr int kIterations = 2;
  for (int it = 0; it < kIterations; ++it) {
    ComputeRhs(core);
    BlockSolve(core);
  }
}

double BtKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < u_.size(); i += 89) {
    sum += u_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
