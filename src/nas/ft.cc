#include "src/nas/ft.h"

#include <cmath>

#include "src/util/rng.h"

namespace prestore {

FtKernel::FtKernel(Machine& machine, NasPrestore mode, uint32_t scale,
                   FtPatch patch_override)
    : machine_(machine),
      patch_(patch_override != FtPatch::kNone
                 ? patch_override
                 : (mode == NasPrestore::kOn ? FtPatch::kCffts1Clean
                                             : FtPatch::kNone)),
      nx_(64),
      ny_(16 * scale),
      nz_(16 * scale),
      x_(machine, 2 * nx_ * ny_ * nz_),
      xout_(machine, 2 * nx_ * ny_ * nz_),
      y1_(machine, 2 * nx_),
      cffts1_func_{machine.registry().Intern("cffts1", "ft.f90:570")},
      fftz2_func_{machine.registry().Intern("fftz2", "ft.f90:650")},
      evolve_func_{machine.registry().Intern("evolve", "ft.f90:300")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0xf7);
  for (uint64_t i = 0; i < x_.size(); i += 23) {
    x_.Set(core, i, rng.NextDouble() - 0.5);
  }
}

void FtKernel::Fftz2(Core& core, uint64_t stage) {
  ScopedFunction f(core, fftz2_func_);
  // Radix-2 decimation-in-time butterflies over the Y1 scratch. The scratch
  // (2 * nx doubles = 1KB) fits in the L1 and is rewritten log2(nx) times
  // per pencil — exactly the §7.4.2 data that must NOT be cleaned.
  const uint64_t half = 1ULL << stage;
  const uint64_t span = half * 2;
  for (uint64_t base = 0; base < nx_; base += span) {
    for (uint64_t k = 0; k < half; ++k) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(span);
      const double wr = std::cos(angle);
      const double wi = std::sin(angle);
      const uint64_t a = 2 * (base + k);
      const uint64_t b = 2 * (base + k + half);
      const double ar = y1_.Get(core, a);
      const double ai = y1_.Get(core, a + 1);
      const double br = y1_.Get(core, b);
      const double bi = y1_.Get(core, b + 1);
      const double tr = wr * br - wi * bi;
      const double ti = wr * bi + wi * br;
      core.Execute(10);
      y1_.Set(core, a, ar + tr);
      y1_.Set(core, a + 1, ai + ti);
      y1_.Set(core, b, ar - tr);
      y1_.Set(core, b + 1, ai - ti);
      if (patch_ == FtPatch::kFftz2Clean) {
        // §7.4.2's misuse: the naive patch cleans right where the writes
        // happen — but the next butterfly stage rewrites these same lines,
        // so every clean turns into a useless round trip ("a 3x slowdown").
        core.Prestore(y1_.AddrOf(a), 2 * sizeof(double), PrestoreOp::kClean);
        core.Prestore(y1_.AddrOf(b), 2 * sizeof(double), PrestoreOp::kClean);
      }
    }
  }
}

void FtKernel::Cffts1(Core& core) {
  ScopedFunction f(core, cffts1_func_);
  const uint64_t stages = 63 - __builtin_clzll(nx_);
  for (uint64_t z = 0; z < nz_; ++z) {
    for (uint64_t y = 0; y < ny_; ++y) {
      const uint64_t pencil = 2 * nx_ * (z * ny_ + y);
      // Gather the pencil into the Y1 scratch (bit-reversal order).
      for (uint64_t i = 0; i < nx_; ++i) {
        uint64_t rev = 0;
        for (uint64_t b = 0; b < stages; ++b) {
          rev |= ((i >> b) & 1) << (stages - 1 - b);
        }
        y1_.Set(core, 2 * rev, x_.Get(core, pencil + 2 * i));
        y1_.Set(core, 2 * rev + 1, x_.Get(core, pencil + 2 * i + 1));
      }
      for (uint64_t s = 0; s < stages; ++s) {
        Fftz2(core, s);
      }
      // Sequentially transfer the result into XOUT (§7.2.2: "the cffts1
      // function sequentially transfers results from a matrix Y1 to a
      // matrix XOUT").
      for (uint64_t i = 0; i < 2 * nx_; ++i) {
        xout_.Set(core, pencil + i, y1_.Get(core, i));
      }
      if (patch_ == FtPatch::kCffts1Clean) {
        core.Prestore(xout_.AddrOf(pencil), 2 * nx_ * sizeof(double),
                      PrestoreOp::kClean);
      }
    }
  }
}

void FtKernel::Evolve(Core& core) {
  ScopedFunction f(core, evolve_func_);
  for (uint64_t i = 0; i < x_.size(); i += 2) {
    const double re = xout_.Get(core, i);
    const double im = xout_.Get(core, i + 1);
    core.Execute(4);
    x_.Set(core, i, re * 0.99);
    x_.Set(core, i + 1, im * 0.99);
  }
}

void FtKernel::Run(Core& core) {
  constexpr int kIterations = 2;
  for (int it = 0; it < kIterations; ++it) {
    Cffts1(core);
    Evolve(core);
  }
}

double FtKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < xout_.size(); i += 131) {
    sum += xout_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
