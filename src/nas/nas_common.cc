#include "src/nas/nas_common.h"

#include "src/nas/bt.h"
#include "src/nas/ft.h"
#include "src/nas/mg.h"
#include "src/nas/small_kernels.h"
#include "src/nas/sp.h"
#include "src/nas/ua.h"

namespace prestore {

std::unique_ptr<NasKernel> MakeNasKernel(std::string_view name,
                                         Machine& machine, NasPrestore mode,
                                         uint32_t scale) {
  if (name == "mg") {
    return std::make_unique<MgKernel>(machine, mode, scale);
  }
  if (name == "ft") {
    return std::make_unique<FtKernel>(machine, mode, scale);
  }
  if (name == "sp") {
    return std::make_unique<SpKernel>(machine, mode, scale);
  }
  if (name == "bt") {
    return std::make_unique<BtKernel>(machine, mode, scale);
  }
  if (name == "ua") {
    return std::make_unique<UaKernel>(machine, mode, scale);
  }
  if (name == "is") {
    return std::make_unique<IsKernel>(machine, mode, scale);
  }
  if (name == "cg") {
    return std::make_unique<CgKernel>(machine, mode, scale);
  }
  if (name == "ep") {
    return std::make_unique<EpKernel>(machine, mode, scale);
  }
  if (name == "lu") {
    return std::make_unique<LuKernel>(machine, mode, scale);
  }
  return nullptr;
}

MachineConfig NasBenchMachineA() {
  MachineConfig cfg = MachineA(1);
  cfg.llc.size_bytes = 256 << 10;
  cfg.target.media_cycles_per_byte = 1.2;
  return cfg;
}

MachineConfig NasBenchMachineBFast() {
  MachineConfig cfg = MachineBFast(1);
  cfg.llc.size_bytes = 256 << 10;
  return cfg;
}

const std::vector<std::string>& NasKernelNames() {
  static const std::vector<std::string> names = {"mg", "ft", "sp", "bt", "ua",
                                                 "is", "cg", "ep", "lu"};
  return names;
}

}  // namespace prestore
