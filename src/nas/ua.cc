#include "src/nas/ua.h"

#include "src/util/rng.h"

namespace prestore {

UaKernel::UaKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      mode_(mode),
      num_elements_(6000 * scale),
      solution_(machine, num_elements_ * kDofPerElement),
      residual_(machine, num_elements_ * kDofPerElement),
      neighbors_(machine, num_elements_ * 6),
      diffuse_func_{machine.registry().Intern("diffuse", "ua/diffuse.f90:30")},
      transfer_func_{
          machine.registry().Intern("transfer", "ua/transfer.f90:112")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x0a);
  for (uint64_t e = 0; e < num_elements_; ++e) {
    for (int n = 0; n < 6; ++n) {
      neighbors_.Set(core, e * 6 + n, rng.Below(num_elements_));
    }
  }
  for (uint64_t i = 0; i < solution_.size(); i += 9) {
    solution_.Set(core, i, rng.NextDouble());
  }
}

void UaKernel::Diffuse(Core& core) {
  ScopedFunction f(core, diffuse_func_);
  for (uint64_t e = 0; e < num_elements_; ++e) {
    const uint64_t base = e * kDofPerElement;
    // Gather neighbour averages (irregular reads).
    double nb = 0.0;
    for (int n = 0; n < 6; ++n) {
      const uint64_t other = neighbors_.Get(core, e * 6 + n);
      nb += solution_.Get(core, other * kDofPerElement);
    }
    core.Execute(8);
    // Sequential write of the element's residual DOFs.
    for (uint64_t d = 0; d < kDofPerElement; ++d) {
      residual_.Set(core, base + d,
                    0.9 * solution_.Get(core, base + d) + 0.01 * nb);
      core.Execute(2);
    }
    if (mode_ == NasPrestore::kOn) {
      residual_.Prestore(core, base, kDofPerElement, PrestoreOp::kClean);
    }
  }
}

void UaKernel::Transfer(Core& core) {
  ScopedFunction f(core, transfer_func_);
  // Mortar-style transfer back: sequential write of the solution array.
  for (uint64_t e = 0; e < num_elements_; ++e) {
    const uint64_t base = e * kDofPerElement;
    for (uint64_t d = 0; d < kDofPerElement; ++d) {
      solution_.Set(core, base + d, residual_.Get(core, base + d));
      core.Execute(1);
    }
    if (mode_ == NasPrestore::kOn) {
      solution_.Prestore(core, base, kDofPerElement, PrestoreOp::kClean);
    }
  }
}

void UaKernel::Run(Core& core) {
  constexpr int kIterations = 3;
  for (int it = 0; it < kIterations; ++it) {
    Diffuse(core);
    Transfer(core);
  }
}

double UaKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < solution_.size(); i += 71) {
    sum += solution_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
