// IS, CG, EP and LU — the NAS kernels the paper classifies as either
// write-intensive-but-not-sequential (IS) or not write-intensive (CG, EP,
// LU), per Table 2.
#ifndef SRC_NAS_SMALL_KERNELS_H_
#define SRC_NAS_SMALL_KERNELS_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"
#include "src/util/rng.h"

namespace prestore {

// IS — integer sort. The `rank` function writes small amounts of data in a
// seemingly random pattern (§7.4.2): write-intensive, NOT sequential.
// Pre-stores (when forced on for the misuse study) have no effect.
class IsKernel : public NasKernel {
 public:
  IsKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "is"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return false; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  void Rank(Core& core);

  Machine& machine_;
  NasPrestore mode_;
  uint64_t num_keys_;
  uint64_t max_key_;
  SimArray<uint64_t> key_array_, key_buff1_, key_buff2_;
  FuncToken rank_func_;
};

// CG — conjugate gradient: sparse matvec dominated by reads (Table 2: not
// write-intensive).
class CgKernel : public NasKernel {
 public:
  CgKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "cg"; }
  bool WriteIntensive() const override { return false; }
  bool SequentialWrites() const override { return false; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  Machine& machine_;
  uint64_t rows_;
  static constexpr uint64_t kNnzPerRow = 12;
  SimArray<double> values_, x_, q_;
  SimArray<uint64_t> cols_;
  FuncToken matvec_func_;
  double last_dot_ = 0.0;
};

// EP — embarrassingly parallel random-number kernel: compute-bound, almost
// no memory traffic (Table 2: not write-intensive).
class EpKernel : public NasKernel {
 public:
  EpKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "ep"; }
  bool WriteIntensive() const override { return false; }
  bool SequentialWrites() const override { return false; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  Machine& machine_;
  uint64_t pairs_;
  SimArray<double> counts_;  // 10 annuli + sx, sy
  FuncToken gaussian_func_;
};

// LU — SSOR solver: in-place stencil updates with ~10 reads per write
// (Table 2: not write-intensive).
class LuKernel : public NasKernel {
 public:
  LuKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "lu"; }
  bool WriteIntensive() const override { return false; }
  bool SequentialWrites() const override { return false; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  uint64_t Idx(uint64_t i, uint64_t j, uint64_t k) const {
    return (k * n_ + j) * n_ + i;
  }

  Machine& machine_;
  uint64_t n_;
  SimArray<double> u_;
  FuncToken ssor_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_SMALL_KERNELS_H_
