// BT — Block Tri-diagonal solver kernel (§7.2.2). Like SP, the RHS matrix
// dominates the writes (sequential, rarely reused -> clean), but the solver
// works on 5x5 blocks.
#ifndef SRC_NAS_BT_H_
#define SRC_NAS_BT_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"

namespace prestore {

class BtKernel : public NasKernel {
 public:
  BtKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "bt"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return true; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  uint64_t Idx(uint64_t m, uint64_t i, uint64_t j, uint64_t k) const {
    return ((k * ny_ + j) * nx_ + i) * 5 + m;
  }

  void ComputeRhs(Core& core);
  void BlockSolve(Core& core);

  Machine& machine_;
  NasPrestore mode_;
  uint64_t nx_, ny_, nz_;
  SimArray<double> u_, rhs_;
  SimArray<double> block_;  // one 5x5 block scratch
  FuncToken rhs_func_, solve_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_BT_H_
