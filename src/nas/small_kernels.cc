#include "src/nas/small_kernels.h"

namespace prestore {

// ---- IS ----

IsKernel::IsKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      mode_(mode),
      num_keys_(1ULL << (18 + scale)),
      max_key_(1ULL << 17),
      key_array_(machine, num_keys_),
      key_buff1_(machine, max_key_),
      key_buff2_(machine, num_keys_),
      rank_func_{machine.registry().Intern("rank", "is.c:380")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x15);
  for (uint64_t i = 0; i < num_keys_; ++i) {
    key_array_.Set(core, i, rng.Below(max_key_));
  }
}

void IsKernel::Rank(Core& core) {
  ScopedFunction f(core, rank_func_);
  // Bucket counting: random small writes into key_buff1 (§7.4.2: "writes
  // small amounts of data in a seemingly random pattern").
  for (uint64_t i = 0; i < max_key_; ++i) {
    key_buff1_.Set(core, i, 0);
  }
  for (uint64_t i = 0; i < num_keys_; ++i) {
    const uint64_t key = key_array_.Get(core, i);
    key_buff1_.Set(core, key, key_buff1_.Get(core, key) + 1);
  }
  // Prefix sum.
  uint64_t running = 0;
  for (uint64_t i = 0; i < max_key_; ++i) {
    const uint64_t c = key_buff1_.Get(core, i);
    key_buff1_.Set(core, i, running);
    running += c;
    core.Execute(2);
  }
  // Scatter keys to their ranks (random writes into key_buff2).
  for (uint64_t i = 0; i < num_keys_; ++i) {
    const uint64_t key = key_array_.Get(core, i);
    const uint64_t pos = key_buff1_.Get(core, key);
    key_buff1_.Set(core, key, pos + 1);
    key_buff2_.Set(core, pos, key);
    if (mode_ == NasPrestore::kOn) {
      // Forced-on experiment (§7.4.2): the scattered ranks are neither
      // re-read nor re-written, so this has no effect either way.
      key_buff2_.Prestore(core, pos, 1, PrestoreOp::kClean);
    }
  }
}

void IsKernel::Run(Core& core) { Rank(core); }

double IsKernel::Checksum(Core& core) {
  // Sorted order check folded into a checksum.
  double sum = 0.0;
  uint64_t prev = 0;
  for (uint64_t i = 0; i < num_keys_; i += 997) {
    const uint64_t k = key_buff2_.Get(core, i);
    sum += static_cast<double>(k) + (k >= prev ? 1.0 : -1e9);
    prev = k;
  }
  return sum;
}

// ---- CG ----

CgKernel::CgKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      rows_(20000 * scale),
      values_(machine, rows_ * kNnzPerRow),
      x_(machine, rows_),
      q_(machine, rows_),
      cols_(machine, rows_ * kNnzPerRow),
      matvec_func_{machine.registry().Intern("conj_grad_matvec", "cg.f90:570")} {
  (void)mode;  // CG is not write-intensive: no pre-store points.
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0xc6);
  for (uint64_t i = 0; i < rows_ * kNnzPerRow; ++i) {
    cols_.Set(core, i, rng.Below(rows_));
    values_.Set(core, i, rng.NextDouble());
  }
  for (uint64_t i = 0; i < rows_; ++i) {
    x_.Set(core, i, 1.0);
  }
}

void CgKernel::Run(Core& core) {
  ScopedFunction f(core, matvec_func_);
  constexpr int kIterations = 3;
  for (int it = 0; it < kIterations; ++it) {
    double dot = 0.0;
    for (uint64_t r = 0; r < rows_; ++r) {
      double sum = 0.0;
      for (uint64_t c = 0; c < kNnzPerRow; ++c) {
        sum += values_.Get(core, r * kNnzPerRow + c) *
               x_.Get(core, cols_.Get(core, r * kNnzPerRow + c));
      }
      core.Execute(2 * kNnzPerRow);
      q_.Set(core, r, sum);  // 1 write per ~24 reads
      dot += sum;
    }
    last_dot_ = dot;
  }
}

double CgKernel::Checksum(Core& core) {
  double sum = last_dot_;
  for (uint64_t i = 0; i < rows_; i += 211) {
    sum += q_.Get(core, i);
  }
  return sum;
}

// ---- EP ----

EpKernel::EpKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      pairs_(300000ULL * scale),
      counts_(machine, 16),
      gaussian_func_{machine.registry().Intern("gaussian_pairs", "ep.f90:150")} {
  (void)mode;
}

void EpKernel::Run(Core& core) {
  ScopedFunction f(core, gaussian_func_);
  Xoshiro256 rng(machine_.config().seed ^ 0xe9);
  double sx = 0.0;
  double sy = 0.0;
  double annuli[10] = {};
  for (uint64_t i = 0; i < pairs_; ++i) {
    const double x = 2.0 * rng.NextDouble() - 1.0;
    const double y = 2.0 * rng.NextDouble() - 1.0;
    const double t = x * x + y * y;
    core.Execute(60);  // log/sqrt of the Marsaglia-polar transform
    if (t <= 1.0 && t > 0.0) {
      // Accumulated in registers, as in the real kernel: EP performs
      // almost no memory writes (Table 2).
      sx += x;
      sy += y;
      annuli[static_cast<uint64_t>(t * 10.0)] += 1.0;
    }
  }
  for (uint64_t a = 0; a < 10; ++a) {
    counts_.Set(core, a, annuli[a]);
  }
  counts_.Set(core, 10, sx);
  counts_.Set(core, 11, sy);
}

double EpKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < counts_.size(); ++i) {
    sum += counts_.Get(core, i);
  }
  return sum;
}

// ---- LU ----

LuKernel::LuKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      n_(28 * scale),
      u_(machine, n_ * n_ * n_),
      ssor_func_{machine.registry().Intern("ssor_sweep", "lu.f90:100")} {
  (void)mode;
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x1d);
  for (uint64_t i = 0; i < u_.size(); i += 7) {
    u_.Set(core, i, rng.NextDouble());
  }
}

void LuKernel::Run(Core& core) {
  ScopedFunction f(core, ssor_func_);
  constexpr int kIterations = 2;
  for (int it = 0; it < kIterations; ++it) {
    // Lower sweep then upper sweep: each point update reads ~10 values
    // (neighbours, twice over) and writes once -> not write-intensive.
    for (uint64_t k = 1; k + 1 < n_; ++k) {
      for (uint64_t j = 1; j + 1 < n_; ++j) {
        for (uint64_t i = 1; i + 1 < n_; ++i) {
          const uint64_t c = Idx(i, j, k);
          double acc = 0.0;
          acc += u_.Get(core, c - 1) + u_.Get(core, c + 1);
          acc += u_.Get(core, c - n_) + u_.Get(core, c + n_);
          acc += u_.Get(core, c - n_ * n_) + u_.Get(core, c + n_ * n_);
          acc += u_.Get(core, Idx(i - 1, j - 1, k));
          acc += u_.Get(core, Idx(i + 1, j + 1, k));
          acc += u_.Get(core, Idx(i - 1, j, k - 1));
          core.Execute(14);
          u_.Set(core, c, 0.7 * u_.Get(core, c) + 0.03 * acc);
        }
      }
    }
  }
}

double LuKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < u_.size(); i += 61) {
    sum += u_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
