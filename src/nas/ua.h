// UA — Unstructured Adaptive mesh kernel (Table 2: write-intensive,
// sequential writes). Simplified to the memory-relevant part: a heat-
// transfer sweep that writes the per-element solution arrays sequentially,
// plus an adaptive gather over an irregular adjacency (read side).
#ifndef SRC_NAS_UA_H_
#define SRC_NAS_UA_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"

namespace prestore {

class UaKernel : public NasKernel {
 public:
  UaKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "ua"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return true; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  void Diffuse(Core& core);
  void Transfer(Core& core);

  Machine& machine_;
  NasPrestore mode_;
  uint64_t num_elements_;
  static constexpr uint64_t kDofPerElement = 27;  // 3x3x3 nodes
  SimArray<double> solution_, residual_;
  SimArray<uint64_t> neighbors_;  // 6 per element, irregular
  FuncToken diffuse_func_, transfer_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_UA_H_
