// Common interface for the NAS Parallel Benchmark kernel re-implementations
// (§7.2.2). Each kernel re-creates the memory-relevant loops of the original
// at class-S/W scale, with the paper's pre-store patch points.
#ifndef SRC_NAS_NAS_COMMON_H_
#define SRC_NAS_NAS_COMMON_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/prestore.h"
#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

// Whether the paper's recommended pre-stores are inserted (Listing 5 style).
enum class NasPrestore : uint8_t {
  kOff,
  kOn,
};

class NasKernel {
 public:
  virtual ~NasKernel() = default;

  virtual const char* name() const = 0;

  // Table 2 ground truth for this kernel.
  virtual bool WriteIntensive() const = 0;
  virtual bool SequentialWrites() const = 0;

  // One benchmark run (a few iterations of the kernel's main loop).
  virtual void Run(Core& core) = 0;

  // Deterministic checksum over the result arrays: pre-stores must never
  // change it.
  virtual double Checksum(Core& core) = 0;
};

// Factory. Supported names: mg, ft, sp, bt, ua, is, cg, ep, lu.
// `scale` shrinks/grows the default problem size (1 = test scale).
std::unique_ptr<NasKernel> MakeNasKernel(std::string_view name,
                                         Machine& machine, NasPrestore mode,
                                         uint32_t scale = 1);

const std::vector<std::string>& NasKernelNames();

// Machine A configuration proportioned for the scale-1 kernels: the LLC is
// shrunk so that the kernels' grids exceed it (as the full-size grids exceed
// the real 27.5MB LLC) and the PMEM media bandwidth is scaled to the
// single-core traffic rate (the paper's NAS runs are OpenMP-parallel and
// saturate the PMEM; see EXPERIMENTS.md calibration notes).
MachineConfig NasBenchMachineA();

// Machine B (fast FPGA) proportioned the same way: the kernels' grids must
// exceed the LLC as they do on the real machine.
MachineConfig NasBenchMachineBFast();

}  // namespace prestore

#endif  // SRC_NAS_NAS_COMMON_H_
