#include "src/nas/mg.h"

#include "src/util/rng.h"

namespace prestore {

MgKernel::MgKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      mode_(mode),
      n_(32 * scale),
      nc_(n_ / 2),
      u_(machine, n_ * n_ * n_),
      v_(machine, n_ * n_ * n_),
      r_(machine, n_ * n_ * n_),
      uc_(machine, nc_ * nc_ * nc_),
      rc_(machine, nc_ * nc_ * nc_),
      resid_func_{machine.registry().Intern("resid", "mg.f90:544")},
      psinv_func_{machine.registry().Intern("psinv", "mg.f90:614")},
      rprj3_func_{machine.registry().Intern("rprj3", "mg.f90:702")},
      interp_func_{machine.registry().Intern("interp", "mg.f90:780")} {
  // Deterministic "charge" initialization of V (host-side: setup is not part
  // of the measured kernel).
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x316);
  for (uint64_t i = 0; i < v_.size(); i += 37) {
    v_.Set(core, i, rng.NextDouble() * 2.0 - 1.0);
  }
}

void MgKernel::Resid(Core& core) {
  ScopedFunction f(core, resid_func_);
  const double a0 = -8.0 / 3.0;
  const double a1 = 1.0 / 6.0;
  for (uint64_t i3 = 1; i3 + 1 < n_; ++i3) {
    for (uint64_t i2 = 1; i2 + 1 < n_; ++i2) {
      const uint64_t row = Idx(1, i2, i3);
      for (uint64_t i1 = 1; i1 + 1 < n_; ++i1) {
        const uint64_t c = Idx(i1, i2, i3);
        const double au = a0 * u_.Get(core, c) +
                          a1 * (u_.Get(core, c - 1) + u_.Get(core, c + 1) +
                                u_.Get(core, c - n_) + u_.Get(core, c + n_) +
                                u_.Get(core, c - n_ * n_) +
                                u_.Get(core, c + n_ * n_));
        core.Execute(8);
        r_.Set(core, c, v_.Get(core, c) - au);
      }
      if (mode_ == NasPrestore::kOn) {
        // R is re-read (by rprj3/psinv): clean, per DirtBuster (§7.2.2).
        r_.Prestore(core, row, n_ - 2, PrestoreOp::kClean);
      }
    }
  }
}

void MgKernel::Psinv(Core& core) {
  ScopedFunction f(core, psinv_func_);
  const double c0 = -3.0 / 8.0;
  const double c1 = 1.0 / 27.0;
  for (uint64_t i3 = 1; i3 + 1 < n_; ++i3) {
    for (uint64_t i2 = 1; i2 + 1 < n_; ++i2) {
      const uint64_t row = Idx(1, i2, i3);
      for (uint64_t i1 = 1; i1 + 1 < n_; ++i1) {
        const uint64_t c = Idx(i1, i2, i3);
        const double s = c0 * r_.Get(core, c) +
                         c1 * (r_.Get(core, c - 1) + r_.Get(core, c + 1) +
                               r_.Get(core, c - n_) + r_.Get(core, c + n_));
        core.Execute(6);
        u_.Set(core, c, u_.Get(core, c) + s);
      }
      if (mode_ == NasPrestore::kOn) {
        // U is not reused within the cycle: DirtBuster says skip; the
        // Fortran-compatible fallback is clean (Listing 5).
        u_.Prestore(core, row, n_ - 2, PrestoreOp::kClean);
      }
    }
  }
}

void MgKernel::Rprj3(Core& core) {
  ScopedFunction f(core, rprj3_func_);
  for (uint64_t i3 = 1; i3 + 1 < nc_; ++i3) {
    for (uint64_t i2 = 1; i2 + 1 < nc_; ++i2) {
      for (uint64_t i1 = 1; i1 + 1 < nc_; ++i1) {
        const uint64_t f0 = Idx(2 * i1, 2 * i2, 2 * i3);
        const double s =
            0.5 * r_.Get(core, f0) +
            0.25 * (r_.Get(core, f0 - 1) + r_.Get(core, f0 + 1));
        core.Execute(4);
        rc_.Set(core, CoarseIdx(i1, i2, i3), s);
      }
    }
  }
  // Trivial coarse "solve": one damped-Jacobi application.
  for (uint64_t i = 0; i < uc_.size(); ++i) {
    uc_.Set(core, i, 0.6 * rc_.Get(core, i));
    core.Execute(2);
  }
}

void MgKernel::Interp(Core& core) {
  ScopedFunction f(core, interp_func_);
  for (uint64_t i3 = 1; i3 + 1 < nc_; ++i3) {
    for (uint64_t i2 = 1; i2 + 1 < nc_; ++i2) {
      for (uint64_t i1 = 1; i1 + 1 < nc_; ++i1) {
        const double s = uc_.Get(core, CoarseIdx(i1, i2, i3));
        const uint64_t f0 = Idx(2 * i1, 2 * i2, 2 * i3);
        u_.Set(core, f0, u_.Get(core, f0) + s);
        u_.Set(core, f0 + 1, u_.Get(core, f0 + 1) + 0.5 * s);
        core.Execute(4);
      }
    }
  }
}

void MgKernel::Run(Core& core) {
  constexpr int kIterations = 2;
  for (int it = 0; it < kIterations; ++it) {
    Resid(core);
    Rprj3(core);
    Interp(core);
    Psinv(core);
  }
}

double MgKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < u_.size(); i += 101) {
    sum += u_.Get(core, i) + r_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
