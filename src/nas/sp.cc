#include "src/nas/sp.h"

#include "src/util/rng.h"

namespace prestore {

SpKernel::SpKernel(Machine& machine, NasPrestore mode, uint32_t scale)
    : machine_(machine),
      mode_(mode),
      nx_(24 * scale),
      ny_(24 * scale),
      nz_(24 * scale),
      u_(machine, 5 * nx_ * ny_ * nz_),
      rhs_(machine, 5 * nx_ * ny_ * nz_),
      lhs_(machine, 5 * nx_),
      rhs_func_{machine.registry().Intern("compute_rhs", "sp.f90:310")},
      xsolve_func_{machine.registry().Intern("x_solve", "sp.f90:31")} {
  Core& core = machine.core(0);
  Xoshiro256 rng(machine.config().seed ^ 0x59);
  for (uint64_t i = 0; i < u_.size(); i += 11) {
    u_.Set(core, i, rng.NextDouble());
  }
}

void SpKernel::ComputeRhs(Core& core) {
  ScopedFunction f(core, rhs_func_);
  for (uint64_t k = 1; k + 1 < nz_; ++k) {
    for (uint64_t j = 1; j + 1 < ny_; ++j) {
      const uint64_t row_start = Idx(0, 1, j, k);
      for (uint64_t i = 1; i + 1 < nx_; ++i) {
        for (uint64_t m = 0; m < 5; ++m) {
          const uint64_t c = Idx(m, i, j, k);
          const double v = u_.Get(core, c) -
                           0.25 * (u_.Get(core, Idx(m, i - 1, j, k)) +
                                   u_.Get(core, Idx(m, i + 1, j, k)));
          core.Execute(4);
          rhs_.Set(core, c, v);
        }
      }
      if (mode_ == NasPrestore::kOn) {
        // RHS is written sequentially and rarely reused: clean (§7.2.2).
        core.Prestore(rhs_.AddrOf(row_start), (nx_ - 2) * 5 * sizeof(double),
                      PrestoreOp::kClean);
      }
    }
  }
}

void SpKernel::XSolve(Core& core) {
  ScopedFunction f(core, xsolve_func_);
  // Thomas-algorithm-like sweep per (j, k) line using the small LHS scratch
  // (heavily rewritten — correctly NOT pre-stored).
  for (uint64_t k = 1; k + 1 < nz_; ++k) {
    for (uint64_t j = 1; j + 1 < ny_; ++j) {
      for (uint64_t i = 0; i < nx_; ++i) {
        for (uint64_t m = 0; m < 5; ++m) {
          lhs_.Set(core, i * 5 + m, 1.0 + 0.1 * static_cast<double>(m));
        }
      }
      for (uint64_t i = 1; i + 1 < nx_; ++i) {
        for (uint64_t m = 0; m < 5; ++m) {
          const double fac = lhs_.Get(core, i * 5 + m);
          const double r = rhs_.Get(core, Idx(m, i, j, k));
          core.Execute(3);
          u_.Set(core, Idx(m, i, j, k),
                 u_.Get(core, Idx(m, i, j, k)) + r / fac * 0.5);
        }
      }
    }
  }
}

void SpKernel::Run(Core& core) {
  constexpr int kIterations = 2;
  for (int it = 0; it < kIterations; ++it) {
    ComputeRhs(core);
    XSolve(core);
  }
}

double SpKernel::Checksum(Core& core) {
  double sum = 0.0;
  for (uint64_t i = 0; i < u_.size(); i += 97) {
    sum += u_.Get(core, i);
  }
  return sum;
}

}  // namespace prestore
