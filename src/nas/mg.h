// MG — multi-grid V-cycle kernel (§7.2.2).
//
// The paper's DirtBuster run on MG reports that `psinv` writes the U grid
// and `resid` writes the R grid 100% sequentially in ~2.1MB contexts, with R
// re-read (choice: clean) and U never reused (choice: skip; clean used as
// the Fortran-compatible fallback, Listing 5).
#ifndef SRC_NAS_MG_H_
#define SRC_NAS_MG_H_

#include "src/nas/nas_common.h"
#include "src/sim/array.h"

namespace prestore {

class MgKernel : public NasKernel {
 public:
  MgKernel(Machine& machine, NasPrestore mode, uint32_t scale);

  const char* name() const override { return "mg"; }
  bool WriteIntensive() const override { return true; }
  bool SequentialWrites() const override { return true; }
  void Run(Core& core) override;
  double Checksum(Core& core) override;

 private:
  uint64_t Idx(uint64_t i1, uint64_t i2, uint64_t i3) const {
    return (i3 * n_ + i2) * n_ + i1;
  }
  uint64_t CoarseIdx(uint64_t i1, uint64_t i2, uint64_t i3) const {
    return (i3 * nc_ + i2) * nc_ + i1;
  }

  // r = v - A*u (7-point stencil); writes R sequentially.
  void Resid(Core& core);
  // u += C*r (smoother); writes U sequentially.
  void Psinv(Core& core);
  // Restrict r to the coarse grid.
  void Rprj3(Core& core);
  // Prolongate the coarse solution back, correcting u.
  void Interp(Core& core);

  Machine& machine_;
  NasPrestore mode_;
  uint64_t n_;   // fine grid edge
  uint64_t nc_;  // coarse grid edge
  SimArray<double> u_, v_, r_;
  SimArray<double> uc_, rc_;
  FuncToken resid_func_, psinv_func_, rprj3_func_, interp_func_;
};

}  // namespace prestore

#endif  // SRC_NAS_MG_H_
