// DAMOS-style declarative scheme rules for the adaptive region monitor
// (DESIGN.md §13).
//
// Each aggregation interval the monitor reduces every region's sampled
// counters to a SchemeStats view and evaluates an ordered rule list against
// it; the first rule whose predicates all hold supplies the region's
// verdict — a pre-store Advice (the shared offline/online vocabulary,
// src/core/prestore.h) plus a hint gate the governor enforces. The default
// ruleset encodes the paper-derived policies:
//
//   rewritten-while-resident  -> back off (suppress: the Listing-3 misuse)
//   useless-dominated         -> back off (hints that moved nothing)
//   writes-before-fence       -> demote, admit
//   sequential writes, no
//     re-read within N ivals  -> clean, admit
//
// Rules can also be written in a tiny text grammar (one rule per line):
//
//   name: field>=number field<=number ... -> advice [gate]
//
// with fields {writes, seq, rewrites, useless, fences, noread, samples,
// cleans, resident, dirty}, advice {none, demote, clean, skip} and gate
// {admit, suppress, default}. '#' starts a comment.
#ifndef SRC_MONITOR_SCHEME_H_
#define SRC_MONITOR_SCHEME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/prestore.h"

namespace prestore {

// Per-interval, per-region view the rule predicates read. Fractions are
// over this interval's sampled accesses; rewrite/useless rates are over the
// interval's admitted (full-rate) clean hints.
struct SchemeStats {
  double write_fraction = 0.0;   // sampled writes / sampled accesses
  double seq_fraction = 0.0;     // ascending near-successor writes / writes
  double rewrite_rate = 0.0;     // rewrites-after-clean / admitted cleans
  double useless_rate = 0.0;     // useless hints / admitted cleans
  double fence_rate = 0.0;       // attributed fences / sampled writes
  double noread_intervals = 0.0; // consecutive intervals with writes, no read
  double samples = 0.0;          // sampled accesses this interval
  double cleans = 0.0;           // admitted clean hints this interval
  double resident = 0.0;         // 1.0 when the interval probe hit the LLC
  double dirty = 0.0;            // 1.0 when the probed line was dirty
};

enum class SchemeField : uint8_t {
  kWriteFraction,
  kSeqFraction,
  kRewriteRate,
  kUselessRate,
  kFenceRate,
  kNoReadIntervals,
  kSamples,
  kCleans,
  kResident,
  kDirty,
};

// What the governor does with hints into a region under this verdict.
enum class HintGate : uint8_t {
  kDefault,   // no opinion: hints flow as without a monitor
  kAdmit,     // the rule endorses the hints
  kSuppress,  // back off: drop hints (except recovery probes)
};

struct SchemePredicate {
  SchemeField field = SchemeField::kWriteFraction;
  bool at_least = true;  // false: at most
  double bound = 0.0;
};

struct SchemeRule {
  std::string name;
  std::vector<SchemePredicate> predicates;  // conjunction
  Advice advice = Advice::kNone;
  HintGate gate = HintGate::kDefault;
};

inline constexpr uint32_t kNoRule = ~uint32_t{0};

// A region's current verdict: the matched rule's action (kNoRule when no
// rule matched — advice kNone, gate kDefault).
struct SchemeVerdict {
  Advice advice = Advice::kNone;
  HintGate gate = HintGate::kDefault;
  uint32_t rule = kNoRule;

  bool operator==(const SchemeVerdict& o) const {
    return advice == o.advice && gate == o.gate && rule == o.rule;
  }
  bool operator!=(const SchemeVerdict& o) const { return !(*this == o); }
};

// Thresholds the default ruleset is built from. Aligned with the offline
// AdviceThresholds where the signals correspond (seq_fraction) and with the
// governor's hysteresis rates where they do (rewrite/useless backoff).
struct SchemeConfig {
  double min_write_fraction = 0.5;   // region is a writer
  double seq_fraction = 0.25;        // ...a sequential one (AdviceThresholds)
  uint32_t noread_intervals = 3;     // "no re-read within N intervals"
  double fence_rate = 0.25;          // fences per sampled write: fence-bound
  double backoff_rewrite_rate = 0.5; // GovernorConfig::backoff_rewrite_rate
  double backoff_useless_rate = 0.9; // GovernorConfig::backoff_useless_rate
  double min_interval_cleans = 8.0;  // evidence floor for the backoff rules
  double min_interval_samples = 4.0; // evidence floor for the admit rules
};

// The four default rules, in evaluation order (back off before admit).
std::vector<SchemeRule> DefaultSchemeRules(const SchemeConfig& cfg);

// Parses the text grammar above into `out`. Returns "" on success,
// otherwise a description of the first error ("line 3: unknown field
// 'writez'"). `out` is only modified on success.
std::string ParseSchemeRules(std::string_view text,
                             std::vector<SchemeRule>* out);

// Renders rules back into the grammar (round-trips through the parser).
std::string FormatSchemeRules(const std::vector<SchemeRule>& rules);

class SchemeEngine {
 public:
  explicit SchemeEngine(std::vector<SchemeRule> rules)
      : rules_(std::move(rules)) {}

  // First-match-wins evaluation; the default verdict when nothing matches.
  SchemeVerdict Evaluate(const SchemeStats& stats) const;

  const std::vector<SchemeRule>& rules() const { return rules_; }

 private:
  std::vector<SchemeRule> rules_;
};

constexpr std::string_view ToString(HintGate gate) {
  switch (gate) {
    case HintGate::kDefault:
      return "default";
    case HintGate::kAdmit:
      return "admit";
    case HintGate::kSuppress:
      return "suppress";
  }
  return "?";
}

constexpr std::string_view ToString(SchemeField field) {
  switch (field) {
    case SchemeField::kWriteFraction:
      return "writes";
    case SchemeField::kSeqFraction:
      return "seq";
    case SchemeField::kRewriteRate:
      return "rewrites";
    case SchemeField::kUselessRate:
      return "useless";
    case SchemeField::kFenceRate:
      return "fences";
    case SchemeField::kNoReadIntervals:
      return "noread";
    case SchemeField::kSamples:
      return "samples";
    case SchemeField::kCleans:
      return "cleans";
    case SchemeField::kResident:
      return "resident";
    case SchemeField::kDirty:
      return "dirty";
  }
  return "?";
}

}  // namespace prestore

#endif  // SRC_MONITOR_SCHEME_H_
