// Online adaptive region monitor in the style of Linux DAMON (DESIGN.md
// §13): bounded adaptive address regions sampled through the simulator's
// observation path, split/merged each aggregation interval by access-pattern
// homogeneity, with DAMOS-like scheme rules (scheme.h) turning each region's
// observed pattern into a pre-store verdict.
//
// The monitor is three interfaces in one object:
//
//   AccessSampleHook — every SamplePeriod()-th line access per core updates
//     the covering region's sampled read/write/sequentiality counters; the
//     aggregation interval closes after `aggregation_samples` samples.
//     Never on the unobserved fast path: an unmonitored run pays one
//     predicted branch per line access (core.h).
//   PrestoreHook — full-rate pre-store telemetry (hint attempts, useless
//     hints, rewrites-after-clean, fences) attributed to regions. Always
//     returns kIssue: the monitor observes, the governor enforces.
//   RegionAdvisor — the per-region verdict source for
//     GovernorPolicy::kMonitored: suppressed regions drop hints except
//     every probe_period-th (recovery probing), admitted/default regions
//     let them through.
//
// Determinism: under sequential or sliced replay the sample stream, the
// aggregation schedule, the seeded split offsets, and hence the region tree
// and scheme-action log are byte-identical for any host thread count
// (monitor_test pins this via DigestState()).
#ifndef SRC_MONITOR_REGION_MONITOR_H_
#define SRC_MONITOR_REGION_MONITOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/monitor/scheme.h"
#include "src/robust/governor.h"
#include "src/sim/hooks.h"
#include "src/util/rng.h"

namespace prestore {

class Machine;

struct MonitorConfig {
  // Line accesses per sampled check, per core. The overhead dial: one
  // virtual call per `sample_period` line accesses on monitored runs.
  uint32_t sample_period = 32;
  // Sampled accesses per aggregation interval (split/merge + scheme
  // evaluation cadence).
  uint64_t aggregation_samples = 512;
  // Global bounds on the adaptive region count (the DAMON contract: work
  // per interval is O(max_regions) regardless of address-space size).
  uint32_t min_regions = 10;
  uint32_t max_regions = 100;  // hard-capped at 1000 by Validate()
  // Adjacent regions merge when their sampled access counts differ by at
  // most this fraction of the busier one (and their verdicts agree).
  double merge_homogeneity = 0.25;
  // In a suppressed region, admit every Nth hint as a recovery probe.
  uint32_t probe_period = 16;
  // Seed for the split-offset RNG (part of the determinism contract).
  uint64_t seed = 1;
  // Scheme thresholds for DefaultSchemeRules; ignored when `rules` is
  // non-empty.
  SchemeConfig scheme;
  // Optional rule override in the scheme.h text grammar.
  std::string rules;

  // "" when coherent, else the first problem (ServeConfig::Validate idiom).
  std::string Validate() const;
};

// One adaptive region: [start, end) within one monitored range, line
// aligned. Interval counters reset at each aggregation; verdict, age and
// the noread streak persist across intervals (and splits).
struct MonitorRegion {
  uint64_t start = 0;
  uint64_t end = 0;
  uint32_t range_id = 0;

  // Sampled-access interval counters.
  uint32_t reads = 0;
  uint32_t writes = 0;
  uint32_t seq_writes = 0;
  uint64_t last_write_line = 0;  // previous sampled write (seq detection)

  // Full-rate pre-store interval counters.
  uint32_t attempts = 0;    // hint attempts (all PrestoreHook consults)
  uint32_t suppressed = 0;  // dropped by this monitor's AdviseHint
  uint32_t rewrites = 0;
  uint32_t useless = 0;
  uint32_t fences = 0;      // fences attributed to this region

  // Once-per-interval pull probe of one sampled line.
  bool probe_resident = false;
  bool probe_dirty = false;

  // Persistent pattern state.
  uint32_t intervals_since_read = 0;  // written-but-not-read streak
  uint32_t age = 0;                   // intervals since last change
  uint32_t last_nr_accesses = 0;      // previous interval's samples (merge)
  SchemeVerdict verdict;

  // Probe bookkeeping for suppressed regions.
  uint32_t since_probe = 0;
  uint32_t probe_grant_lines = 0;  // lines pre-admitted by AdviseSweep

  // Lifetime counters (survive merges; stay with the parent on split).
  uint64_t total_suppressed = 0;
  uint64_t total_probes = 0;
};

// One scheme-action log entry: region verdict changes, split/merge events.
struct MonitorAction {
  enum class Kind : uint8_t { kVerdict, kSplit, kMerge };
  Kind kind = Kind::kVerdict;
  uint64_t interval = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  SchemeVerdict verdict;  // kVerdict only

  std::string ToString() const;
};

class RegionMonitor : public AccessSampleHook,
                      public PrestoreHook,
                      public RegionAdvisor {
 public:
  // Throws std::invalid_argument when config.Validate() rejects.
  RegionMonitor(Machine& machine, MonitorConfig config = {});

  // Registers [start, end) for monitoring as one initial region. Call for
  // each span of interest (e.g. one per shard value arena) BEFORE Attach();
  // spans must be disjoint and non-empty. Throws on overlap.
  void Monitor(uint64_t start, uint64_t end);

  // Installs the monitor on the machine's sampling + pre-store observation
  // paths. The monitor must outlive the machine's measured runs.
  void Attach();
  // Uninstalls the sampling hook (the pre-store hook vector is shared;
  // clear it via Machine::ClearPrestoreHooks with cores quiesced).
  void DetachSampler();

  // ---- AccessSampleHook ----
  uint32_t SamplePeriod() const override { return config_.sample_period; }
  void OnSampledAccess(uint8_t core, uint64_t line_addr, bool is_write,
                       uint64_t now) override;

  // ---- PrestoreHook (pure observer: never drops) ----
  HintFate OnPrestoreHint(uint8_t core, uint64_t line_addr, PrestoreOp op,
                          uint64_t now, uint64_t* delay_cycles) override;
  void OnUselessHint(uint8_t core, uint64_t line_addr, PrestoreOp op) override;
  void OnRewriteAfterClean(uint8_t core, uint64_t line_addr,
                           uint64_t now) override;
  void OnFence(uint8_t core, uint64_t now) override;

  // ---- RegionAdvisor (the governor's kMonitored verdict source) ----
  HintFate AdviseHint(uint8_t core, uint64_t line_addr, PrestoreOp op,
                      uint64_t now) override;

  // Host-side gate for the serve batch-close clean sweep over [addr,
  // addr+size): kDrop means "skip this slot's Prestore call entirely".
  // Suppressed regions still leak every probe_period-th sweep through (as a
  // pre-granted probe) so recovery sensing survives host-side gating.
  HintFate AdviseSweep(uint64_t addr, uint64_t size);

  // Current verdict for the region covering `addr` (default verdict when
  // unmonitored). For tests and the offline/online cross-check.
  SchemeVerdict VerdictAt(uint64_t addr) const;

  // ---- Introspection ----

  struct Snapshot {
    uint64_t samples = 0;
    uint64_t intervals = 0;
    uint64_t splits = 0;
    uint64_t merges = 0;
    uint64_t verdict_changes = 0;
    uint64_t suppressed_hints = 0;   // via AdviseHint
    uint64_t suppressed_sweeps = 0;  // via AdviseSweep
    uint64_t probe_admits = 0;
    std::vector<MonitorRegion> regions;  // sorted by start
  };
  Snapshot TakeSnapshot() const;

  // FNV-1a digest over the region tree, verdicts and the full action log —
  // the byte-identical determinism guard (same seed + trace => same digest
  // for any host thread count under sequential/sliced replay).
  uint64_t DigestState() const;

  // The most recent action-log entries (bounded; the digest covers all).
  std::vector<MonitorAction> RecentActions() const;

  std::string Summary() const;

  const MonitorConfig& config() const { return config_; }

 private:
  // Index of the region containing `addr`, or SIZE_MAX.
  size_t FindRegionLocked(uint64_t addr) const;
  void AggregateLocked(uint64_t now);
  void EvaluateRegionsLocked();
  void MergeRegionsLocked();
  void SplitRegionsLocked();
  void LogActionLocked(const MonitorAction& action);

  Machine& machine_;
  const MonitorConfig config_;
  const uint64_t line_size_;
  SchemeEngine engine_;
  bool attached_ = false;

  mutable std::mutex mu_;
  std::vector<MonitorRegion> regions_;  // sorted by start; spans disjoint
  uint32_t num_ranges_ = 0;
  Xoshiro256 rng_;

  uint64_t samples_ = 0;
  uint64_t interval_samples_ = 0;
  uint64_t intervals_ = 0;
  uint64_t splits_ = 0;
  uint64_t merges_ = 0;
  uint64_t verdict_changes_ = 0;
  uint64_t suppressed_hints_ = 0;
  uint64_t suppressed_sweeps_ = 0;
  uint64_t probe_admits_ = 0;

  // Last sampled write line per core, for fence attribution.
  static constexpr size_t kMaxCores = 64;
  uint64_t last_core_write_[kMaxCores] = {};

  // Bounded action log + rolling digest over every entry ever appended.
  static constexpr size_t kMaxActions = 4096;
  std::vector<MonitorAction> actions_;
  uint64_t total_actions_ = 0;
  uint64_t actions_digest_;
};

}  // namespace prestore

#endif  // SRC_MONITOR_REGION_MONITOR_H_
