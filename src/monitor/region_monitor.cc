#include "src/monitor/region_monitor.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "src/sim/machine.h"

namespace prestore {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t HashAction(const MonitorAction& a) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, static_cast<uint64_t>(a.kind));
  h = FnvMix(h, a.interval);
  h = FnvMix(h, a.start);
  h = FnvMix(h, a.end);
  h = FnvMix(h, static_cast<uint64_t>(a.verdict.advice));
  h = FnvMix(h, static_cast<uint64_t>(a.verdict.gate));
  h = FnvMix(h, a.verdict.rule);
  return h;
}

}  // namespace

std::string MonitorConfig::Validate() const {
  if (sample_period == 0) {
    return "sample_period must be > 0";
  }
  if (aggregation_samples == 0) {
    return "aggregation_samples must be > 0";
  }
  if (min_regions == 0 || min_regions > max_regions) {
    return "regions must satisfy 1 <= min_regions <= max_regions";
  }
  if (max_regions > 1000) {
    return "max_regions must be <= 1000 (the bounded-overhead contract)";
  }
  if (merge_homogeneity < 0.0 || merge_homogeneity > 1.0) {
    return "merge_homogeneity must be in [0, 1]";
  }
  if (probe_period == 0) {
    return "probe_period must be > 0";
  }
  const auto fraction = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!fraction(scheme.min_write_fraction) || !fraction(scheme.seq_fraction) ||
      !fraction(scheme.backoff_rewrite_rate) ||
      !fraction(scheme.backoff_useless_rate)) {
    return "scheme fractions must be in [0, 1]";
  }
  if (scheme.fence_rate < 0.0 || scheme.min_interval_cleans < 0.0 ||
      scheme.min_interval_samples < 0.0) {
    return "scheme thresholds must be >= 0";
  }
  if (!rules.empty()) {
    std::vector<SchemeRule> parsed;
    const std::string error = ParseSchemeRules(rules, &parsed);
    if (!error.empty()) {
      return "rules: " + error;
    }
    if (parsed.empty()) {
      return "rules text contains no rules";
    }
  }
  return "";
}

std::string MonitorAction::ToString() const {
  char buf[160];
  switch (kind) {
    case Kind::kVerdict:
      std::snprintf(buf, sizeof(buf),
                    "i%" PRIu64 " verdict [0x%" PRIx64 ", 0x%" PRIx64
                    ") rule=%d advice=%s gate=%s",
                    interval, start, end,
                    verdict.rule == kNoRule ? -1
                                            : static_cast<int>(verdict.rule),
                    std::string(prestore::ToString(verdict.advice)).c_str(),
                    std::string(prestore::ToString(verdict.gate)).c_str());
      break;
    case Kind::kSplit:
      std::snprintf(buf, sizeof(buf),
                    "i%" PRIu64 " split  [0x%" PRIx64 ", 0x%" PRIx64 ")",
                    interval, start, end);
      break;
    case Kind::kMerge:
      std::snprintf(buf, sizeof(buf),
                    "i%" PRIu64 " merge  [0x%" PRIx64 ", 0x%" PRIx64 ")",
                    interval, start, end);
      break;
  }
  return buf;
}

RegionMonitor::RegionMonitor(Machine& machine, MonitorConfig config)
    : machine_(machine),
      config_(std::move(config)),
      line_size_(machine.config().line_size),
      engine_([&] {
        if (!config_.rules.empty()) {
          std::vector<SchemeRule> parsed;
          const std::string error = ParseSchemeRules(config_.rules, &parsed);
          if (!error.empty()) {
            throw std::invalid_argument("MonitorConfig rules: " + error);
          }
          return SchemeEngine(std::move(parsed));
        }
        return SchemeEngine(DefaultSchemeRules(config_.scheme));
      }()),
      rng_(config_.seed),
      actions_digest_(kFnvOffset) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("MonitorConfig: " + error);
  }
}

void RegionMonitor::Monitor(uint64_t start, uint64_t end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (attached_) {
    throw std::logic_error("RegionMonitor::Monitor after Attach");
  }
  const uint64_t aligned_start = LineBase(start, line_size_);
  const uint64_t aligned_end =
      LineBase(end + line_size_ - 1, line_size_);
  if (aligned_start >= aligned_end) {
    throw std::invalid_argument("RegionMonitor::Monitor: empty range");
  }
  for (const MonitorRegion& r : regions_) {
    if (aligned_start < r.end && r.start < aligned_end) {
      throw std::invalid_argument("RegionMonitor::Monitor: overlapping range");
    }
  }
  MonitorRegion region;
  region.start = aligned_start;
  region.end = aligned_end;
  region.range_id = num_ranges_++;
  regions_.push_back(region);
  std::sort(regions_.begin(), regions_.end(),
            [](const MonitorRegion& a, const MonitorRegion& b) {
              return a.start < b.start;
            });
}

void RegionMonitor::Attach() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (regions_.empty()) {
      throw std::logic_error("RegionMonitor::Attach with no monitored range");
    }
    attached_ = true;
  }
  machine_.SetAccessSampleHook(this);
  machine_.AddPrestoreHook(this);
}

void RegionMonitor::DetachSampler() { machine_.SetAccessSampleHook(nullptr); }

size_t RegionMonitor::FindRegionLocked(uint64_t addr) const {
  // Rightmost region with start <= addr; ranges are disjoint so one
  // containment check decides.
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (regions_[mid].start <= addr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return SIZE_MAX;
  }
  const MonitorRegion& r = regions_[lo - 1];
  return addr < r.end ? lo - 1 : SIZE_MAX;
}

void RegionMonitor::OnSampledAccess(uint8_t core, uint64_t line_addr,
                                    bool is_write, uint64_t now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  const size_t idx = FindRegionLocked(line_addr);
  if (idx != SIZE_MAX) {
    MonitorRegion& region = regions_[idx];
    if (is_write) {
      ++region.writes;
      // A sampled write is "sequential" when it lands just above the
      // previous sampled write: within twice the expected sampled stride
      // (sample_period lines) — the sampling-domain analogue of
      // DirtBuster's successor-line test.
      const uint64_t stride_budget =
          2ULL * config_.sample_period * line_size_;
      if (region.last_write_line != 0 && line_addr > region.last_write_line &&
          line_addr - region.last_write_line <= stride_budget) {
        ++region.seq_writes;
      }
      region.last_write_line = line_addr;
      if (core < kMaxCores) {
        last_core_write_[core] = line_addr;
      }
    } else {
      ++region.reads;
    }
  }
  if (++interval_samples_ >= config_.aggregation_samples) {
    AggregateLocked(now);
  }
}

HintFate RegionMonitor::OnPrestoreHint(uint8_t core, uint64_t line_addr,
                                       PrestoreOp op, uint64_t now,
                                       uint64_t* delay_cycles) {
  (void)core;
  (void)op;
  (void)now;
  (void)delay_cycles;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(line_addr);
  if (idx != SIZE_MAX) {
    ++regions_[idx].attempts;
  }
  return HintFate::kIssue;  // pure observer: the governor enforces
}

void RegionMonitor::OnUselessHint(uint8_t core, uint64_t line_addr,
                                  PrestoreOp op) {
  (void)core;
  (void)op;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(line_addr);
  if (idx != SIZE_MAX) {
    ++regions_[idx].useless;
  }
}

void RegionMonitor::OnRewriteAfterClean(uint8_t core, uint64_t line_addr,
                                        uint64_t now) {
  (void)core;
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(line_addr);
  if (idx != SIZE_MAX) {
    ++regions_[idx].rewrites;
  }
}

void RegionMonitor::OnFence(uint8_t core, uint64_t now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  // Attribute the fence to the region this core last (sampled-)wrote: the
  // write it orders almost certainly went there. Coarse, but the fence rule
  // only needs to see fence-bound writers stand out.
  if (core >= kMaxCores || last_core_write_[core] == 0) {
    return;
  }
  const size_t idx = FindRegionLocked(last_core_write_[core]);
  if (idx != SIZE_MAX) {
    ++regions_[idx].fences;
  }
}

HintFate RegionMonitor::AdviseHint(uint8_t core, uint64_t line_addr,
                                   PrestoreOp op, uint64_t now) {
  (void)core;
  (void)op;
  (void)now;
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(line_addr);
  if (idx == SIZE_MAX) {
    return HintFate::kIssue;  // unmonitored address: no opinion
  }
  MonitorRegion& region = regions_[idx];
  if (region.verdict.gate != HintGate::kSuppress) {
    return HintFate::kIssue;
  }
  if (region.probe_grant_lines > 0) {
    --region.probe_grant_lines;  // pre-admitted by AdviseSweep
    ++region.total_probes;
    ++probe_admits_;
    return HintFate::kIssue;
  }
  if (++region.since_probe >= config_.probe_period) {
    region.since_probe = 0;
    ++region.total_probes;
    ++probe_admits_;
    return HintFate::kIssue;
  }
  ++region.suppressed;
  ++region.total_suppressed;
  ++suppressed_hints_;
  return HintFate::kDrop;
}

HintFate RegionMonitor::AdviseSweep(uint64_t addr, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(LineBase(addr, line_size_));
  if (idx == SIZE_MAX) {
    return HintFate::kIssue;
  }
  MonitorRegion& region = regions_[idx];
  if (region.verdict.gate != HintGate::kSuppress) {
    return HintFate::kIssue;
  }
  if (++region.since_probe >= config_.probe_period) {
    // Grant the whole slot as one probe: the ensuing Prestore's per-line
    // AdviseHint consults consume the grant instead of re-rolling the
    // probe counter.
    region.since_probe = 0;
    region.probe_grant_lines +=
        static_cast<uint32_t>(LinesCovered(addr, size, line_size_));
    return HintFate::kIssue;
  }
  ++suppressed_sweeps_;
  return HintFate::kDrop;
}

SchemeVerdict RegionMonitor::VerdictAt(uint64_t addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t idx = FindRegionLocked(addr);
  return idx == SIZE_MAX ? SchemeVerdict{} : regions_[idx].verdict;
}

void RegionMonitor::LogActionLocked(const MonitorAction& action) {
  ++total_actions_;
  actions_digest_ = FnvMix(actions_digest_, HashAction(action));
  if (actions_.size() < kMaxActions) {
    actions_.push_back(action);
  }
}

void RegionMonitor::EvaluateRegionsLocked() {
  for (MonitorRegion& region : regions_) {
    const uint32_t accesses = region.reads + region.writes;
    // Issued cleans: hint attempts minus the ones this monitor suppressed
    // (exact without a governor or with the monitored governor; the global
    // gate's drops are rare enough not to matter for the rates).
    const uint32_t issued =
        region.attempts > region.suppressed
            ? region.attempts - region.suppressed
            : 0;
    if (region.reads > 0) {
      region.intervals_since_read = 0;
    } else if (region.writes > 0) {
      ++region.intervals_since_read;
    }
    // One pull probe per region per interval: residency + dirtiness of a
    // uniformly sampled line (the DAMON-style "one check per region").
    const uint64_t lines = (region.end - region.start) / line_size_;
    const uint64_t probe_addr =
        region.start + rng_.Below(lines) * line_size_;
    region.probe_dirty = false;
    region.probe_resident =
        machine_.LlcProbe(probe_addr, &region.probe_dirty);

    if (accesses > 0 || issued > 0) {
      SchemeStats stats;
      stats.write_fraction =
          accesses > 0 ? static_cast<double>(region.writes) / accesses : 0.0;
      stats.seq_fraction =
          region.writes > 0
              ? static_cast<double>(region.seq_writes) / region.writes
              : 0.0;
      stats.rewrite_rate =
          issued > 0 ? static_cast<double>(region.rewrites) / issued : 0.0;
      stats.useless_rate =
          issued > 0 ? static_cast<double>(region.useless) / issued : 0.0;
      stats.fence_rate =
          region.writes > 0
              ? static_cast<double>(region.fences) / region.writes
              : 0.0;
      stats.noread_intervals = region.intervals_since_read;
      stats.samples = accesses;
      stats.cleans = issued;
      stats.resident = region.probe_resident ? 1.0 : 0.0;
      stats.dirty = region.probe_dirty ? 1.0 : 0.0;
      SchemeVerdict verdict = engine_.Evaluate(stats);
      // Hysteresis on suppression reversal: while a region is suppressed,
      // most of its cleans are dropped, so an interval can end with too few
      // issued cleans to re-match the backoff rule that suppressed it.
      // Re-opening on that silence would re-admit the storm and oscillate.
      // Reversal evidence must come from actual clean flow — keep the
      // suppressed verdict until an interval that saw at least
      // min_interval_cleans issued cleans (the recovery probes) evaluates
      // to something else.
      if (region.verdict.gate == HintGate::kSuppress &&
          verdict.gate != HintGate::kSuppress &&
          stats.cleans < config_.scheme.min_interval_cleans) {
        verdict = region.verdict;
      }
      if (verdict != region.verdict) {
        region.verdict = verdict;
        region.age = 0;
        ++verdict_changes_;
        MonitorAction action;
        action.kind = MonitorAction::Kind::kVerdict;
        action.interval = intervals_;
        action.start = region.start;
        action.end = region.end;
        action.verdict = verdict;
        LogActionLocked(action);
      } else {
        ++region.age;
      }
    } else {
      ++region.age;  // idle interval: keep the verdict, no fresh evidence
    }

    region.last_nr_accesses = accesses;
    region.reads = region.writes = region.seq_writes = 0;
    region.attempts = region.suppressed = 0;
    region.rewrites = region.useless = region.fences = 0;
  }
}

void RegionMonitor::MergeRegionsLocked() {
  size_t i = 0;
  while (i + 1 < regions_.size() && regions_.size() > config_.min_regions) {
    MonitorRegion& a = regions_[i];
    MonitorRegion& b = regions_[i + 1];
    const bool adjacent = a.range_id == b.range_id && a.end == b.start;
    const uint32_t hi = std::max(a.last_nr_accesses, b.last_nr_accesses);
    const uint32_t diff = hi - std::min(a.last_nr_accesses, b.last_nr_accesses);
    const bool homogeneous =
        hi == 0 || static_cast<double>(diff) / hi <= config_.merge_homogeneity;
    if (!adjacent || !homogeneous || a.verdict != b.verdict) {
      ++i;
      continue;
    }
    a.end = b.end;
    a.last_nr_accesses += b.last_nr_accesses;
    a.age = std::min(a.age, b.age);
    a.intervals_since_read =
        std::min(a.intervals_since_read, b.intervals_since_read);
    a.last_write_line = std::max(a.last_write_line, b.last_write_line);
    a.probe_resident = a.probe_resident || b.probe_resident;
    a.probe_dirty = a.probe_dirty || b.probe_dirty;
    a.probe_grant_lines += b.probe_grant_lines;
    a.total_suppressed += b.total_suppressed;
    a.total_probes += b.total_probes;
    regions_.erase(regions_.begin() + static_cast<ptrdiff_t>(i) + 1);
    ++merges_;
    MonitorAction action;
    action.kind = MonitorAction::Kind::kMerge;
    action.interval = intervals_;
    action.start = a.start;
    action.end = a.end;
    LogActionLocked(action);
    // Stay at i: the merged region may swallow its next neighbour too.
  }
}

void RegionMonitor::SplitRegionsLocked() {
  // DAMON-style adaptation: split every splittable region in two at a
  // seeded line-aligned offset while the budget allows; homogeneous halves
  // re-merge next interval, heterogeneous ones expose their difference.
  const size_t before = regions_.size();
  std::vector<MonitorRegion> out;
  out.reserve(std::min<size_t>(before * 2, config_.max_regions));
  size_t budget = config_.max_regions > before
                      ? config_.max_regions - before
                      : 0;
  for (MonitorRegion& region : regions_) {
    const uint64_t lines = (region.end - region.start) / line_size_;
    if (budget == 0 || lines < 2) {
      out.push_back(region);
      continue;
    }
    const uint64_t split_at =
        region.start + (1 + rng_.Below(lines - 1)) * line_size_;
    MonitorRegion right = region;  // inherits verdict + pattern state
    right.start = split_at;
    right.last_nr_accesses = region.last_nr_accesses / 2;
    right.age = 0;
    right.since_probe = 0;
    right.probe_grant_lines = 0;
    right.total_suppressed = 0;
    right.total_probes = 0;
    right.last_write_line = 0;
    MonitorRegion left = region;
    left.end = split_at;
    left.last_nr_accesses -= right.last_nr_accesses;
    left.age = 0;
    if (left.last_write_line != 0 && left.last_write_line >= split_at) {
      left.last_write_line = 0;
    }
    out.push_back(left);
    out.push_back(right);
    --budget;
    ++splits_;
    MonitorAction action;
    action.kind = MonitorAction::Kind::kSplit;
    action.interval = intervals_;
    action.start = left.start;
    action.end = split_at;
    LogActionLocked(action);
  }
  regions_ = std::move(out);
}

void RegionMonitor::AggregateLocked(uint64_t now) {
  (void)now;
  interval_samples_ = 0;
  ++intervals_;
  EvaluateRegionsLocked();
  MergeRegionsLocked();
  SplitRegionsLocked();
}

RegionMonitor::Snapshot RegionMonitor::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.samples = samples_;
  snap.intervals = intervals_;
  snap.splits = splits_;
  snap.merges = merges_;
  snap.verdict_changes = verdict_changes_;
  snap.suppressed_hints = suppressed_hints_;
  snap.suppressed_sweeps = suppressed_sweeps_;
  snap.probe_admits = probe_admits_;
  snap.regions = regions_;
  return snap;
}

uint64_t RegionMonitor::DigestState() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t h = kFnvOffset;
  h = FnvMix(h, intervals_);
  h = FnvMix(h, samples_);
  h = FnvMix(h, regions_.size());
  for (const MonitorRegion& r : regions_) {
    h = FnvMix(h, r.start);
    h = FnvMix(h, r.end);
    h = FnvMix(h, r.range_id);
    h = FnvMix(h, static_cast<uint64_t>(r.verdict.advice));
    h = FnvMix(h, static_cast<uint64_t>(r.verdict.gate));
    h = FnvMix(h, r.verdict.rule);
    h = FnvMix(h, r.age);
    h = FnvMix(h, r.last_nr_accesses);
    h = FnvMix(h, r.intervals_since_read);
    h = FnvMix(h, r.total_suppressed);
    h = FnvMix(h, r.total_probes);
  }
  h = FnvMix(h, total_actions_);
  h = FnvMix(h, actions_digest_);
  h = FnvMix(h, suppressed_hints_);
  h = FnvMix(h, suppressed_sweeps_);
  h = FnvMix(h, probe_admits_);
  return h;
}

std::vector<MonitorAction> RegionMonitor::RecentActions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return actions_;
}

std::string RegionMonitor::Summary() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "monitor: samples=%" PRIu64 " intervals=%" PRIu64
                " regions=%zu splits=%" PRIu64 " merges=%" PRIu64
                " verdict_changes=%" PRIu64 " suppressed=%" PRIu64
                " (sweeps=%" PRIu64 ") probes=%" PRIu64 "\n",
                snap.samples, snap.intervals, snap.regions.size(), snap.splits,
                snap.merges, snap.verdict_changes, snap.suppressed_hints,
                snap.suppressed_sweeps, snap.probe_admits);
  out += buf;
  for (const MonitorRegion& r : snap.regions) {
    if (r.verdict.rule == kNoRule && r.total_suppressed == 0) {
      continue;  // only regions with an active verdict are interesting
    }
    std::snprintf(buf, sizeof(buf),
                  "  region [0x%" PRIx64 ", 0x%" PRIx64 ") advice=%s gate=%s"
                  " age=%" PRIu32 " suppressed=%" PRIu64 " probes=%" PRIu64
                  "\n",
                  r.start, r.end,
                  std::string(prestore::ToString(r.verdict.advice)).c_str(),
                  std::string(prestore::ToString(r.verdict.gate)).c_str(),
                  r.age, r.total_suppressed, r.total_probes);
    out += buf;
  }
  return out;
}

}  // namespace prestore
