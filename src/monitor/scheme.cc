#include "src/monitor/scheme.h"

#include <cstdio>
#include <cstdlib>

namespace prestore {

namespace {

double FieldOf(const SchemeStats& stats, SchemeField field) {
  switch (field) {
    case SchemeField::kWriteFraction:
      return stats.write_fraction;
    case SchemeField::kSeqFraction:
      return stats.seq_fraction;
    case SchemeField::kRewriteRate:
      return stats.rewrite_rate;
    case SchemeField::kUselessRate:
      return stats.useless_rate;
    case SchemeField::kFenceRate:
      return stats.fence_rate;
    case SchemeField::kNoReadIntervals:
      return stats.noread_intervals;
    case SchemeField::kSamples:
      return stats.samples;
    case SchemeField::kCleans:
      return stats.cleans;
    case SchemeField::kResident:
      return stats.resident;
    case SchemeField::kDirty:
      return stats.dirty;
  }
  return 0.0;
}

bool ParseField(std::string_view name, SchemeField* out) {
  static constexpr SchemeField kAll[] = {
      SchemeField::kWriteFraction, SchemeField::kSeqFraction,
      SchemeField::kRewriteRate,   SchemeField::kUselessRate,
      SchemeField::kFenceRate,     SchemeField::kNoReadIntervals,
      SchemeField::kSamples,       SchemeField::kCleans,
      SchemeField::kResident,      SchemeField::kDirty,
  };
  for (SchemeField f : kAll) {
    if (name == ToString(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

bool ParseAdvice(std::string_view name, Advice* out) {
  static constexpr Advice kAll[] = {Advice::kNone, Advice::kDemote,
                                    Advice::kClean, Advice::kSkip};
  for (Advice a : kAll) {
    if (name == ToString(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool ParseGate(std::string_view name, HintGate* out) {
  static constexpr HintGate kAll[] = {HintGate::kDefault, HintGate::kAdmit,
                                      HintGate::kSuppress};
  for (HintGate g : kAll) {
    if (name == ToString(g)) {
      *out = g;
      return true;
    }
  }
  return false;
}

std::vector<std::string_view> SplitWords(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) {
      ++i;
    }
    size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') {
      ++j;
    }
    if (j > i) {
      out.push_back(s.substr(i, j - i));
    }
    i = j;
  }
  return out;
}

std::string LineError(size_t line_no, const std::string& what) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "line %zu: ", line_no);
  return buf + what;
}

}  // namespace

std::vector<SchemeRule> DefaultSchemeRules(const SchemeConfig& cfg) {
  std::vector<SchemeRule> rules;

  // Back off first: a region whose admitted cleans keep getting re-dirtied
  // while resident is the Listing-3 misuse, whatever else it looks like.
  SchemeRule rewritten;
  rewritten.name = "rewritten-while-resident";
  rewritten.predicates = {
      {SchemeField::kCleans, true, cfg.min_interval_cleans},
      {SchemeField::kRewriteRate, true, cfg.backoff_rewrite_rate},
  };
  rewritten.advice = Advice::kNone;
  rewritten.gate = HintGate::kSuppress;
  rules.push_back(std::move(rewritten));

  SchemeRule useless;
  useless.name = "useless-dominated";
  useless.predicates = {
      {SchemeField::kCleans, true, cfg.min_interval_cleans},
      {SchemeField::kUselessRate, true, cfg.backoff_useless_rate},
  };
  useless.advice = Advice::kNone;
  useless.gate = HintGate::kSuppress;
  rules.push_back(std::move(useless));

  // Fence-bound writers want their publication latency overlapped: demote.
  // Evaluated before the clean rule so a fence-bound sequential writer gets
  // the ordering-aware advice (matches AdviseFunction's precedence).
  SchemeRule fence;
  fence.name = "writes-before-fence";
  fence.predicates = {
      {SchemeField::kSamples, true, cfg.min_interval_samples},
      {SchemeField::kWriteFraction, true, cfg.min_write_fraction},
      {SchemeField::kFenceRate, true, cfg.fence_rate},
  };
  fence.advice = Advice::kDemote;
  fence.gate = HintGate::kAdmit;
  rules.push_back(std::move(fence));

  SchemeRule seq;
  seq.name = "seq-writes-no-reread";
  seq.predicates = {
      {SchemeField::kSamples, true, cfg.min_interval_samples},
      {SchemeField::kWriteFraction, true, cfg.min_write_fraction},
      {SchemeField::kSeqFraction, true, cfg.seq_fraction},
      {SchemeField::kNoReadIntervals, true,
       static_cast<double>(cfg.noread_intervals)},
  };
  seq.advice = Advice::kClean;
  seq.gate = HintGate::kAdmit;
  rules.push_back(std::move(seq));

  return rules;
}

std::string ParseSchemeRules(std::string_view text,
                             std::vector<SchemeRule>* out) {
  std::vector<SchemeRule> rules;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string_view> words = SplitWords(line);
    if (words.empty()) {
      continue;
    }

    SchemeRule rule;
    size_t w = 0;
    // "name:" — either one word ending in ':' or a bare name plus ':'.
    std::string_view head = words[w];
    if (!head.empty() && head.back() == ':') {
      rule.name = std::string(head.substr(0, head.size() - 1));
      ++w;
    } else if (w + 1 < words.size() && words[w + 1] == ":") {
      rule.name = std::string(head);
      w += 2;
    } else {
      return LineError(line_no, "expected 'name:' before predicates");
    }
    if (rule.name.empty()) {
      return LineError(line_no, "empty rule name");
    }

    bool saw_arrow = false;
    for (; w < words.size(); ++w) {
      std::string_view word = words[w];
      if (word == "->") {
        saw_arrow = true;
        ++w;
        break;
      }
      size_t op = word.find(">=");
      bool at_least = true;
      if (op == std::string_view::npos) {
        op = word.find("<=");
        at_least = false;
      }
      if (op == std::string_view::npos) {
        return LineError(line_no, "predicate '" + std::string(word) +
                                      "' needs >= or <=");
      }
      SchemePredicate pred;
      pred.at_least = at_least;
      if (!ParseField(word.substr(0, op), &pred.field)) {
        return LineError(line_no, "unknown field '" +
                                      std::string(word.substr(0, op)) + "'");
      }
      const std::string num(word.substr(op + 2));
      char* end = nullptr;
      pred.bound = std::strtod(num.c_str(), &end);
      if (num.empty() || end == nullptr || *end != '\0') {
        return LineError(line_no, "bad number '" + num + "'");
      }
      rule.predicates.push_back(pred);
    }
    if (!saw_arrow) {
      return LineError(line_no, "missing '-> advice [gate]'");
    }
    if (w >= words.size()) {
      return LineError(line_no, "missing advice after '->'");
    }
    if (!ParseAdvice(words[w], &rule.advice)) {
      return LineError(line_no,
                       "unknown advice '" + std::string(words[w]) + "'");
    }
    ++w;
    if (w < words.size()) {
      if (!ParseGate(words[w], &rule.gate)) {
        return LineError(line_no,
                         "unknown gate '" + std::string(words[w]) + "'");
      }
      ++w;
    }
    if (w != words.size()) {
      return LineError(line_no,
                       "trailing junk '" + std::string(words[w]) + "'");
    }
    rules.push_back(std::move(rule));
  }
  *out = std::move(rules);
  return "";
}

std::string FormatSchemeRules(const std::vector<SchemeRule>& rules) {
  std::string out;
  char buf[64];
  for (const SchemeRule& rule : rules) {
    out += rule.name;
    out += ':';
    for (const SchemePredicate& pred : rule.predicates) {
      std::snprintf(buf, sizeof(buf), " %s%s%g",
                    std::string(ToString(pred.field)).c_str(),
                    pred.at_least ? ">=" : "<=", pred.bound);
      out += buf;
    }
    out += " -> ";
    out += ToString(rule.advice);
    out += ' ';
    out += ToString(rule.gate);
    out += '\n';
  }
  return out;
}

SchemeVerdict SchemeEngine::Evaluate(const SchemeStats& stats) const {
  for (uint32_t i = 0; i < rules_.size(); ++i) {
    const SchemeRule& rule = rules_[i];
    bool match = true;
    for (const SchemePredicate& pred : rule.predicates) {
      const double v = FieldOf(stats, pred.field);
      if (pred.at_least ? v < pred.bound : v > pred.bound) {
        match = false;
        break;
      }
    }
    if (match) {
      return SchemeVerdict{rule.advice, rule.gate, i};
    }
  }
  return SchemeVerdict{};
}

}  // namespace prestore
