#include "src/msg/x9.h"

#include <cstring>
#include <vector>

namespace prestore {

// Slot layout: the state flag occupies its own cache line (so publishing the
// payload and CAS-ing the flag touch distinct lines, exactly as in X9 where
// the header and the message body are separate); the sequence word and the
// payload follow on the next line(s).
//   [state | pad...][seq | payload ...]

X9Inbox::X9Inbox(Machine& machine, uint32_t slots, uint32_t msg_size)
    : machine_(machine),
      num_slots_(slots),
      msg_size_(msg_size),
      slot_bytes_(0),
      head_addr_(machine.Alloc(64, Region::kTarget, 64)),
      tail_addr_(machine.Alloc(64, Region::kTarget, 64)),
      fill_func_{machine.registry().Intern("fill_msg", "x9_bench.c:44")},
      write_func_{machine.registry().Intern("x9_write_to_inbox", "x9.c:512")},
      read_func_{machine.registry().Intern("x9_read_from_inbox", "x9.c:433")} {
  const uint64_t ls = machine.config().line_size;
  const uint64_t body = (8 + msg_size + ls - 1) & ~(ls - 1);
  slot_bytes_ = ls + body;  // state line + body lines
  slots_addr_ = machine.Alloc(slot_bytes_ * slots, Region::kTarget, ls);
}

bool X9Inbox::TryWrite(Core& core, const void* payload, MsgPrestore mode) {
  const uint64_t ls = machine_.config().line_size;
  const uint64_t tail = core.AtomicLoadU64(tail_addr_);
  const SimAddr slot = SlotAddr(tail);
  if (core.AtomicLoadU64(slot) != 0) {
    return false;  // inbox full: the consumer has not drained this slot yet
  }
  const SimAddr body = slot + ls;
  {
    // fill_msg: craft the message into the (reused) slot body.
    ScopedFunction f(core, fill_func_);
    core.StoreU64(body, tail);
    core.MemCopyToSim(body + 8, payload, msg_size_);
  }
  if (mode == MsgPrestore::kDemote) {
    // Listing 8: demote the freshly written message so its publication
    // overlaps with the inbox bookkeeping below instead of stalling the CAS.
    core.Prestore(body, 8 + msg_size_, PrestoreOp::kDemote);
  }
  ScopedFunction f(core, write_func_);
  // Inbox bookkeeping (shared-count / lap checks in real X9).
  core.Execute(60);
  uint64_t expected = 0;
  if (!core.CasU64(slot, expected, 1)) {
    return false;
  }
  core.AtomicStoreU64(tail_addr_, tail + 1);
  return true;
}

bool X9Inbox::TryRead(Core& core, void* out) {
  ScopedFunction f(core, read_func_);
  const uint64_t ls = machine_.config().line_size;
  const uint64_t head = core.AtomicLoadU64(head_addr_);
  const SimAddr slot = SlotAddr(head);
  if (core.AtomicLoadU64(slot) != 1) {
    return false;  // empty
  }
  core.MemCopyFromSim(out, slot + ls + 8, msg_size_);
  core.AtomicStoreU64(slot, 0);
  core.AtomicStoreU64(head_addr_, head + 1);
  return true;
}

bool X9Inbox::TryWriteStamped(Core& core, uint64_t marker, MsgPrestore mode) {
  std::vector<uint8_t> payload(msg_size_, 0);
  const uint64_t stamp = core.now();
  std::memcpy(payload.data(), &marker, 8);
  std::memcpy(payload.data() + 8, &stamp, 8);
  // Fill the remainder with marker-derived bytes (a real message body).
  for (uint32_t i = 16; i < msg_size_; ++i) {
    payload[i] = static_cast<uint8_t>(marker + i);
  }
  return TryWrite(core, payload.data(), mode);
}

bool X9Inbox::TryReadStamped(Core& core, uint64_t* marker,
                             uint64_t* send_time) {
  std::vector<uint8_t> payload(msg_size_);
  if (!TryRead(core, payload.data())) {
    return false;
  }
  std::memcpy(marker, payload.data(), 8);
  std::memcpy(send_time, payload.data() + 8, 8);
  return true;
}

}  // namespace prestore
