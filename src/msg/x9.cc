#include "src/msg/x9.h"

#include <atomic>
#include <cstring>
#include <vector>

namespace prestore {

// Slot layout: the sequence word occupies its own cache line (so publishing
// the payload and the sequence release-store touch distinct lines, exactly as
// in X9 where the header and the message body are separate); the body — a
// stamp word plus the payload — follows on the next line(s).
//   [seq | pad...][stamp | payload ...]

X9Inbox::X9Inbox(Machine& machine, uint32_t slots, uint32_t msg_size,
                 Region region)
    : machine_(machine),
      num_slots_(slots),
      msg_size_(msg_size),
      slot_bytes_(0),
      head_addr_(machine.Alloc(64, region, 64)),
      tail_addr_(machine.Alloc(64, region, 64)),
      fill_func_{machine.registry().Intern("fill_msg", "x9_bench.c:44")},
      write_func_{machine.registry().Intern("x9_write_to_inbox", "x9.c:512")},
      read_func_{machine.registry().Intern("x9_read_from_inbox", "x9.c:433")} {
  const uint64_t ls = machine.config().line_size;
  const uint64_t body = (8 + msg_size + ls - 1) & ~(ls - 1);
  slot_bytes_ = ls + body;  // sequence line + body lines
  slots_addr_ = machine.Alloc(slot_bytes_ * slots, region, ls);
  // Seed each slot's sequence word with its own index ("free for ring
  // index i"). Construction-time initialization, host-side: no simulated
  // cycles are charged, as with every other structure set up before a
  // measured run.
  for (uint64_t i = 0; i < slots; ++i) {
    const uint64_t seq = i;
    std::memcpy(machine.HostPtr(SlotAddr(i)), &seq, sizeof(seq));
  }
}

bool X9Inbox::TryWrite(Core& core, const void* payload, MsgPrestore mode) {
  if (closed_.load(std::memory_order_acquire)) {
    return false;  // owner refused admission: retry-after, like "full"
  }
  const uint64_t ls = machine_.config().line_size;
  uint64_t tail = core.AtomicLoadU64(tail_addr_);
  const SimAddr slot = SlotAddr(tail);
  // A ring index is claimed by CAS-ing the TAIL CURSOR, never by marking
  // the slot. The alternative — claim the slot, advance the cursor after
  // filling — has a lost-message window: while the claimant fills, the
  // consumer can empty this physical slot and a second producer (reading
  // the still-stale tail) re-claims the same ring index; its message then
  // sits beyond the consumer's head and is stranded until the ring wraps
  // (forever, for a client waiting on that reply). The sequence word makes
  // the full/contended cases cheap to detect first.
  if (core.AtomicLoadU64(slot) != tail) {
    return false;  // full for this index, or a producer race in progress
  }
  if (!core.CasU64(tail_addr_, tail, tail + 1)) {
    return false;  // another producer claimed this index first
  }
  const SimAddr body = slot + ls;
  {
    // fill_msg: craft the message into the (reused) slot body.
    ScopedFunction f(core, fill_func_);
    core.StoreU64(body, tail);
    core.MemCopyToSim(body + 8, payload, msg_size_);
  }
  if (mode == MsgPrestore::kDemote) {
    // Listing 8: demote the freshly written message so its publication
    // overlaps with the inbox bookkeeping below instead of stalling the
    // releasing store that marks the slot full.
    core.Prestore(body, 8 + msg_size_, PrestoreOp::kDemote);
  }
  ScopedFunction f(core, write_func_);
  // Inbox bookkeeping (shared-count / lap checks in real X9).
  core.Execute(60);
  // Release: sequence tail+1 means "index `tail` published"; the consumer
  // frees the slot for index tail + num_slots.
  core.AtomicStoreU64(slot, tail + 1);
  return true;
}

bool X9Inbox::TryRead(Core& core, void* out) {
  ScopedFunction f(core, read_func_);
  const uint64_t ls = machine_.config().line_size;
  const uint64_t head = core.AtomicLoadU64(head_addr_);
  const SimAddr slot = SlotAddr(head);
  if (core.AtomicLoadU64(slot) != head + 1) {
    return false;  // empty (or the producer is still filling the slot)
  }
  core.MemCopyFromSim(out, slot + ls + 8, msg_size_);
  core.AtomicStoreU64(slot, head + num_slots_);  // free for index head + N
  // Single consumer: the head cursor has one writer.
  core.AtomicStoreU64(head_addr_, head + 1);
  return true;
}

namespace {

// Reads the functional (host) backing directly: cursor and sequence words
// are only ever written with std::atomic_ref release stores (Core's atomic
// ops), so these acquire loads pair with them and observe values at most
// one probe stale.
uint64_t HostLoadU64(Machine& machine, SimAddr addr) {
  return std::atomic_ref<uint64_t>(
             *reinterpret_cast<uint64_t*>(machine.HostPtr(addr)))
      .load(std::memory_order_acquire);
}

}  // namespace

bool X9Inbox::Peek() {
  const uint64_t head = HostLoadU64(machine_, head_addr_);
  return HostLoadU64(machine_, SlotAddr(head)) == head + 1;
}

bool X9Inbox::CanWrite() {
  if (closed_.load(std::memory_order_acquire)) {
    return false;
  }
  const uint64_t tail = HostLoadU64(machine_, tail_addr_);
  return HostLoadU64(machine_, SlotAddr(tail)) == tail;
}

void X9Inbox::Close() { closed_.store(true, std::memory_order_release); }

void X9Inbox::Reopen() { closed_.store(false, std::memory_order_release); }

bool X9Inbox::closed() const {
  return closed_.load(std::memory_order_acquire);
}

bool X9Inbox::Quiesced() {
  // head == tail: every claimed index has been consumed. A producer that
  // slipped past the closed check before Close() shows up here as
  // head < tail until its publish lands and the owner's drain consumes it.
  return HostLoadU64(machine_, head_addr_) ==
         HostLoadU64(machine_, tail_addr_);
}

bool X9Inbox::TryWriteStamped(Core& core, uint64_t marker, MsgPrestore mode) {
  std::vector<uint8_t> payload(msg_size_, 0);
  const uint64_t stamp = core.now();
  std::memcpy(payload.data(), &marker, 8);
  std::memcpy(payload.data() + 8, &stamp, 8);
  // Fill the remainder with marker-derived bytes (a real message body).
  for (uint32_t i = 16; i < msg_size_; ++i) {
    payload[i] = static_cast<uint8_t>(marker + i);
  }
  return TryWrite(core, payload.data(), mode);
}

bool X9Inbox::TryReadStamped(Core& core, uint64_t* marker,
                             uint64_t* send_time) {
  std::vector<uint8_t> payload(msg_size_);
  if (!TryRead(core, payload.data())) {
    return false;
  }
  std::memcpy(marker, payload.data(), 8);
  std::memcpy(send_time, payload.data() + 8, 8);
  return true;
}

}  // namespace prestore
