// X9-like message-passing library (§7.3.2): fixed-capacity inboxes of
// reusable message slots; producers fill a message struct and publish it
// with a compare-and-swap, consumers poll.
//
// The pattern under study (Listing 8): fill_msg writes the payload, then
// x9_write_to_inbox's CAS forces publication of those private stores. A
// demote pre-store between the two overlaps publication with the inbox
// bookkeeping, cutting the send latency.
#ifndef SRC_MSG_X9_H_
#define SRC_MSG_X9_H_

#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

enum class MsgPrestore : uint8_t {
  kOff,
  kDemote,  // DirtBuster's recommendation (message buffers are reused)
};

class X9Inbox {
 public:
  // `slots` must be a power of two; `msg_size` is the payload size.
  X9Inbox(Machine& machine, uint32_t slots, uint32_t msg_size);

  uint32_t msg_size() const { return msg_size_; }

  // Producer side: fills the slot's payload from `payload` and publishes.
  // Returns false when the inbox is full (slot not yet consumed).
  bool TryWrite(Core& core, const void* payload, MsgPrestore mode);

  // Consumer side: copies the oldest message into `out` (msg_size bytes).
  // Returns false when the inbox is empty.
  bool TryRead(Core& core, void* out);

  // Producer fills the payload with a marker + the producer's send
  // timestamp; used by the latency harness.
  bool TryWriteStamped(Core& core, uint64_t marker, MsgPrestore mode);

  // Returns the marker and the embedded send timestamp.
  bool TryReadStamped(Core& core, uint64_t* marker, uint64_t* send_time);

 private:
  // Slot layout: [state line][seq + payload lines]; state 0 = empty,
  // 1 = full. The flag lives on its own line so that payload publication
  // and flag CAS do not collide.
  SimAddr SlotAddr(uint64_t i) const {
    return slots_addr_ + (i & (num_slots_ - 1)) * slot_bytes_;
  }

  Machine& machine_;
  uint32_t num_slots_;
  uint32_t msg_size_;
  uint64_t slot_bytes_;
  SimAddr slots_addr_;
  SimAddr head_addr_;  // consumer cursor (shared)
  SimAddr tail_addr_;  // producer cursor (shared)
  FuncToken fill_func_;
  FuncToken write_func_;
  FuncToken read_func_;
};

}  // namespace prestore

#endif  // SRC_MSG_X9_H_
