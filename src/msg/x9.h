// X9-like message-passing library (§7.3.2): fixed-capacity inboxes of
// reusable message slots; producers fill a message struct and publish it
// with a compare-and-swap, consumers poll.
//
// The pattern under study (Listing 8): fill_msg writes the payload, then
// x9_write_to_inbox's CAS forces publication of those private stores. A
// demote pre-store between the two overlaps publication with the inbox
// bookkeeping, cutting the send latency.
#ifndef SRC_MSG_X9_H_
#define SRC_MSG_X9_H_

#include <atomic>

#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

enum class MsgPrestore : uint8_t {
  kOff,
  kDemote,  // DirtBuster's recommendation (message buffers are reused)
};

class X9Inbox {
 public:
  // `slots` must be a power of two; `msg_size` is the payload size.
  // `region` places the ring: the §7.3.2 study keeps inboxes in the target
  // (far) memory; the serving subsystem keeps its queues in DRAM so the
  // target device's write-amplification accounting stays about the values.
  X9Inbox(Machine& machine, uint32_t slots, uint32_t msg_size,
          Region region = Region::kTarget);

  uint32_t msg_size() const { return msg_size_; }

  // Producer side: claims the next ring index by CAS on the tail cursor,
  // fills the slot's payload from `payload` and publishes it by bumping
  // the slot's sequence word. Safe with SEVERAL producers: the cursor CAS
  // hands each index to exactly one producer, so fills never interleave
  // and a consumer-emptied slot can never be re-claimed for an index the
  // consumer has already passed. Returns false when the inbox is full or
  // another producer won the index (a transient condition — callers treat
  // false as "retry later" either way; the serving layer surfaces it as a
  // backpressure signal).
  bool TryWrite(Core& core, const void* payload, MsgPrestore mode);

  // Consumer side: copies the oldest message into `out` (msg_size bytes).
  // Returns false when the inbox is empty. SINGLE consumer per inbox: the
  // head cursor is advanced with a plain release store.
  bool TryRead(Core& core, void* out);

  // Host-side consumer probe: true when a published message is waiting.
  // Charges NO simulated cycles and touches NO simulated cache state — idle
  // pollers use it to spin in host time without inflating their core clock
  // (a failed TryRead costs real polling cycles, and an idle server that
  // paid them once per host-scheduler iteration would carry a clock that
  // measures the host, not the simulation). Single consumer, like TryRead:
  // a true result is stable (only the caller consumes); a false result may
  // be stale for one probe.
  bool Peek();

  // Host-side producer probe: true when the next ring index looks free, so
  // a TryWrite is likely to succeed. Same zero-sim-cost rationale as Peek.
  // With several producers a true result is NOT a claim — a racing producer
  // can still win the index and the subsequent TryWrite returns false.
  bool CanWrite();

  // Producer fills the payload with a marker + the producer's send
  // timestamp; used by the latency harness.
  bool TryWriteStamped(Core& core, uint64_t marker, MsgPrestore mode);

  // Returns the marker and the embedded send timestamp.
  bool TryReadStamped(Core& core, uint64_t* marker, uint64_t* send_time);

  // ---- Owner-side admission control (cluster failover, DESIGN.md §11) ----
  // Close() makes every subsequent TryWrite/CanWrite report "full" (the
  // retry-after signal a sender sees from a killed or draining node) while
  // TryRead/Peek keep working, so the owner drains what was already
  // accepted. A producer that passed the closed check before Close() may
  // still claim and publish ONE more index; the owner's shutdown drain
  // therefore loops until Quiesced() (head == tail: every claimed index
  // consumed) — only then can no acknowledged message be stranded.
  void Close();
  void Reopen();
  bool closed() const;
  // Host-side: true when every claimed ring index has been consumed.
  bool Quiesced();

 private:
  // Slot layout: [sequence line][stamp + payload lines]. The sequence word
  // (Vyukov-style bounded-queue protocol) encodes the slot's phase: value
  // i = free for ring index i, i + 1 = index i published and unread. It
  // lives on its own line so payload publication and the sequence release
  // store do not collide.
  SimAddr SlotAddr(uint64_t i) const {
    return slots_addr_ + (i & (num_slots_ - 1)) * slot_bytes_;
  }

  Machine& machine_;
  // Host-side flag, not simulated state: models the node-local admission
  // gate a dead/draining owner flips, without charging anyone cycles.
  std::atomic<bool> closed_{false};
  uint32_t num_slots_;
  uint32_t msg_size_;
  uint64_t slot_bytes_;
  SimAddr slots_addr_;
  SimAddr head_addr_;  // consumer cursor (shared)
  SimAddr tail_addr_;  // producer cursor (shared)
  FuncToken fill_func_;
  FuncToken write_func_;
  FuncToken read_func_;
};

}  // namespace prestore

#endif  // SRC_MSG_X9_H_
