#include "src/kv/clht.h"

namespace prestore {

namespace {
uint64_t HashKey(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}
}  // namespace

ClhtMap::ClhtMap(Machine& machine, uint64_t num_buckets)
    : machine_(machine),
      buckets_(machine.Alloc(num_buckets * kBucketBytes, Region::kTarget,
                             kBucketBytes)),
      num_buckets_(num_buckets),
      put_func_{machine.registry().Intern("clht_put", "clht.c:321")},
      get_func_{machine.registry().Intern("clht_get", "clht.c:260")} {
  // Backing memory is zero-initialized: all keys empty, locks free.
}

SimAddr ClhtMap::BucketFor(uint64_t key) const {
  return buckets_ + (HashKey(key) % num_buckets_) * kBucketBytes;
}

void ClhtMap::Lock(Core& core, SimAddr bucket) {
  // The CAS has fence semantics: it publishes every private store issued
  // before it — including the freshly crafted value (§7.3.1).
  uint64_t expected = 0;
  while (!core.CasU64(bucket + kLockOff, expected, 1)) {
    expected = 0;
    core.SpinPause(4);
  }
}

void ClhtMap::Unlock(Core& core, SimAddr bucket) {
  core.AtomicStoreU64(bucket + kLockOff, 0);
}

void ClhtMap::Put(Core& core, uint64_t key, SimAddr value) {
  ScopedFunction f(core, put_func_);
  const SimAddr head = BucketFor(key);
  Lock(core, head);
  SimAddr bucket = head;
  SimAddr free_bucket = 0;
  uint32_t free_slot = 0;
  while (true) {
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      const uint64_t k = core.LoadU64(bucket + kKeyOff + s * 8);
      if (k == key) {
        core.StoreU64(bucket + kValOff + s * 8, value);
        Unlock(core, head);
        return;
      }
      if (k == 0 && free_bucket == 0) {
        free_bucket = bucket;
        free_slot = s;
      }
    }
    const SimAddr next = core.LoadU64(bucket + kNextOff);
    if (next == 0) {
      break;
    }
    bucket = next;
  }
  if (free_bucket != 0) {
    // Value before key, so lock-free readers never see a key without its
    // value (CLHT's in-place insert protocol).
    core.StoreU64(free_bucket + kValOff + free_slot * 8, value);
    core.Fence();
    core.StoreU64(free_bucket + kKeyOff + free_slot * 8, key);
  } else {
    const SimAddr fresh =
        machine_.Alloc(kBucketBytes, Region::kTarget, kBucketBytes);
    overflow_buckets_.fetch_add(1, std::memory_order_relaxed);
    core.StoreU64(fresh + kKeyOff, key);
    core.StoreU64(fresh + kValOff, value);
    core.Fence();
    core.StoreU64(bucket + kNextOff, fresh);
  }
  Unlock(core, head);
}

SimAddr ClhtMap::Get(Core& core, uint64_t key) {
  ScopedFunction f(core, get_func_);
  SimAddr bucket = BucketFor(key);
  while (bucket != 0) {
    for (uint32_t s = 0; s < kSlotsPerBucket; ++s) {
      if (core.LoadU64(bucket + kKeyOff + s * 8) == key) {
        return core.LoadU64(bucket + kValOff + s * 8);
      }
    }
    bucket = core.LoadU64(bucket + kNextOff);
  }
  return 0;
}

}  // namespace prestore
