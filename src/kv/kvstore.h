// Common key-value store interface + value crafting (paper §7.2.3, §7.3.1).
#ifndef SRC_KV_KVSTORE_H_
#define SRC_KV_KVSTORE_H_

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/sim/core.h"
#include "src/sim/machine.h"

namespace prestore {

// How PUT operations treat the crafted value — the paper's three variants.
enum class KvWritePolicy : uint8_t {
  kBaseline,  // plain stores (Listing 6 without the prestore line)
  kClean,     // clean pre-store after crafting (Listing 6)
  kSkip,      // non-temporal stores inside craftValue
};

class KvStore {
 public:
  virtual ~KvStore() = default;

  // Associates `key` with the value at `value` (size is fixed per run and
  // known to the workload). Keys must be non-zero.
  virtual void Put(Core& core, uint64_t key, SimAddr value) = 0;

  // Returns the value address, or 0 when absent.
  virtual SimAddr Get(Core& core, uint64_t key) = 0;

  virtual const char* Name() const = 0;
};

// Writes `size` bytes of key-derived payload at `dst`, sequentially —
// the craftValue function of Listing 6. With kSkip the stores are
// non-temporal; with kClean a clean pre-store covers the value afterwards.
inline void CraftValue(Core& core, FuncToken func, SimAddr dst, uint32_t size,
                       uint64_t key, KvWritePolicy policy) {
  ScopedFunction f(core, func);
  uint64_t word = key * 0x9e3779b97f4a7c15ULL + 1;
  if (policy == KvWritePolicy::kSkip) {
    for (uint32_t off = 0; off < size; off += 8) {
      core.StoreNtU64(dst + off, word);
      word += key;
    }
  } else {
    for (uint32_t off = 0; off < size; off += 8) {
      core.StoreU64(dst + off, word);
      word += key;
    }
    if (policy == KvWritePolicy::kClean) {
      core.Prestore(dst, size, PrestoreOp::kClean);
    }
  }
}

// Checks a crafted value (functional tests): returns true when the payload
// at `addr` matches what CraftValue(key) writes.
inline bool CheckValue(Core& core, SimAddr addr, uint32_t size, uint64_t key) {
  uint64_t word = key * 0x9e3779b97f4a7c15ULL + 1;
  for (uint32_t off = 0; off < size; off += 8) {
    if (core.LoadU64(addr + off) != word) {
      return false;
    }
    word += key;
  }
  return true;
}

// Per-thread ring of value slots: models an allocator that recycles value
// buffers (keys always point at the most recently crafted slot).
//
// `align` overrides the base alignment (0 = one buffer-sized power of two up
// to a page). The serving subsystem aligns each shard's arena to the
// governor's region size so that per-shard telemetry maps one-to-one onto
// governor regions.
//
// `phase` offsets the slots within the (aligned) allocation. Aligned bases
// are congruent modulo the target's DIMM-interleave period, so identical
// arenas would map equal slot indexes to the same DIMM — and sequential
// slot cursors advancing at similar rates then hammer one DIMM in lockstep
// while its siblings idle. A caller with several arenas passes a distinct
// interleave-page multiple per arena to spread the cursors across DIMMs.
// The allocation is padded to a whole number of alignment units, so every
// aligned unit the slots touch still belongs to this arena alone (span()).
class ValueArena {
 public:
  ValueArena(Machine& machine, uint32_t slots, uint32_t value_size,
             uint64_t align = 0, uint64_t phase = 0)
      : span_(static_cast<uint64_t>(slots) * value_size + phase),
        base_(machine.Alloc(
                  align != 0 ? (span_ + align - 1) / align * align : span_,
                  Region::kTarget,
                  align != 0
                      ? align
                      : std::min<uint64_t>(4096, std::bit_ceil(value_size))) +
              phase),
        slots_(slots),
        value_size_(value_size) {}

  SimAddr NextSlot() {
    const SimAddr a = base_ + static_cast<uint64_t>(next_) * value_size_;
    next_ = (next_ + 1) % slots_;
    return a;
  }

  uint32_t value_size() const { return value_size_; }
  SimAddr base() const { return base_; }
  uint64_t bytes() const {
    return static_cast<uint64_t>(slots_) * value_size_;
  }
  // The slot span including the leading phase offset: [base() - phase,
  // base() + bytes()). Telemetry that maps aligned regions to arenas must
  // use this (the slots alone start `phase` bytes into the first region;
  // the allocation's trailing padding never receives hints).
  SimAddr span_base() const { return base_ + bytes() - span_; }
  uint64_t span_bytes() const { return span_; }

 private:
  uint64_t span_;
  SimAddr base_;
  uint32_t slots_;
  uint32_t value_size_;
  uint32_t next_ = 0;
};

}  // namespace prestore

#endif  // SRC_KV_KVSTORE_H_
