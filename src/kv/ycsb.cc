#include "src/kv/ycsb.h"

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/sim/harness.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace prestore {

double YcsbReadRatio(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
    case YcsbWorkload::kF:
      return 0.5;
    case YcsbWorkload::kB:
    case YcsbWorkload::kD:
      return 0.95;
    case YcsbWorkload::kC:
      return 1.0;
  }
  return 0.5;
}

namespace {

void RequireValid(const YcsbConfig& config) {
  const std::string error = config.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("YcsbConfig: " + error);
  }
}

}  // namespace

std::string YcsbConfig::Validate() const {
  if (num_keys == 0) {
    return "num_keys must be > 0";
  }
  if (threads == 0) {
    return "threads must be > 0";
  }
  if (value_size == 0 || value_size % 8 != 0) {
    return "value_size must be a positive multiple of 8";
  }
  if (arena_slots == 0) {
    return "arena_slots must be > 0";
  }
  // theta == 1.0 makes the zipfian alpha exponent 1/(1-theta) infinite;
  // theta > 1 needs the other branch of the YCSB formula, which this
  // generator does not implement.
  if (zipf_theta < 0.0 || zipf_theta >= 1.0) {
    return "zipf_theta must be in [0, 1)";
  }
  return "";
}

void YcsbLoad(Machine& machine, KvStore& store, const YcsbConfig& config) {
  RequireValid(config);
  const FuncToken craft_func{
      machine.registry().Intern("craftValue", "ycsb.cc:55")};
  const uint64_t per_thread =
      (config.num_keys + config.threads - 1) / config.threads;
  std::vector<std::unique_ptr<ValueArena>> arenas;
  for (uint32_t t = 0; t < config.threads; ++t) {
    arenas.push_back(std::make_unique<ValueArena>(
        machine, config.arena_slots, config.value_size));
  }
  RunParallel(machine, config.threads, [&](Core& core, uint32_t tid) {
    const uint64_t first = tid * per_thread + 1;
    const uint64_t last =
        std::min<uint64_t>(first + per_thread, config.num_keys + 1);
    for (uint64_t key = first; key < last; ++key) {
      // The load phase pins each key to a dedicated slot so that the
      // transaction phase's recycled arena never overwrites loaded values
      // of keys that are still live.
      const SimAddr slot =
          machine.Alloc(config.value_size, Region::kTarget);
      CraftValue(core, craft_func, slot, config.value_size, key,
                 KvWritePolicy::kBaseline);
      store.Put(core, key, slot);
    }
  });
}

YcsbResult YcsbRun(Machine& machine, KvStore& store,
                   const YcsbConfig& config) {
  RequireValid(config);
  const FuncToken craft_func{
      machine.registry().Intern("craftValue", "ycsb.cc:55")};
  const FuncToken read_func{
      machine.registry().Intern("readValue", "ycsb.cc:80")};
  std::vector<std::unique_ptr<ValueArena>> arenas;
  for (uint32_t t = 0; t < config.threads; ++t) {
    arenas.push_back(std::make_unique<ValueArena>(
        machine, config.arena_slots, config.value_size));
  }
  machine.FlushAll();  // load-phase dirty lines must not pollute run stats
  machine.ResetStats();
  std::atomic<uint64_t> failed_gets{0};
  std::atomic<uint64_t> latest_key{config.num_keys};

  const uint64_t cycles = RunParallel(
      machine, config.threads, [&](Core& core, uint32_t tid) {
        Xoshiro256 rng(config.seed * 1315423911ULL + tid);
        ZipfianGenerator zipf(config.num_keys, config.zipf_theta);
        const double read_ratio = YcsbReadRatio(config.workload);
        uint64_t local_failed = 0;
        for (uint32_t op = 0; op < config.ops_per_thread; ++op) {
          uint64_t key;
          if (config.workload == YcsbWorkload::kD) {
            // Read-latest: bias towards recently inserted keys.
            const uint64_t latest = latest_key.load(std::memory_order_relaxed);
            key = latest - std::min<uint64_t>(zipf.Next(rng), latest - 1);
          } else {
            key = zipf.NextScrambled(rng) + 1;
          }
          const bool is_read = rng.NextDouble() < read_ratio;
          if (is_read) {
            const SimAddr value = store.Get(core, key);
            if (value == 0) {
              ++local_failed;
              continue;
            }
            // Consume the value (sequential read).
            ScopedFunction f(core, read_func);
            uint64_t sum = 0;
            for (uint32_t off = 0; off < config.value_size; off += 8) {
              sum += core.LoadU64(value + off);
            }
            core.Execute(sum % 3 + 1);
          } else {
            uint64_t put_key = key;
            if (config.workload == YcsbWorkload::kD) {
              put_key = latest_key.fetch_add(1, std::memory_order_relaxed) + 1;
            }
            if (config.workload == YcsbWorkload::kF) {
              // Read-modify-write: read the current value before crafting
              // the replacement.
              const SimAddr old_value = store.Get(core, put_key);
              if (old_value != 0) {
                ScopedFunction f(core, read_func);
                uint64_t sum = 0;
                for (uint32_t off = 0; off < config.value_size; off += 8) {
                  sum += core.LoadU64(old_value + off);
                }
                core.Execute(sum % 3 + 1);
              }
            }
            const SimAddr slot = arenas[tid]->NextSlot();
            CraftValue(core, craft_func, slot, config.value_size, put_key,
                       config.policy);
            store.Put(core, put_key, slot);
          }
        }
        failed_gets.fetch_add(local_failed, std::memory_order_relaxed);
      });

  machine.FlushAll();
  YcsbResult result;
  result.cycles = cycles;
  result.ops =
      static_cast<uint64_t>(config.threads) * config.ops_per_thread;
  result.failed_gets = failed_gets.load();
  result.write_amplification = machine.target().Stats().WriteAmplification();
  return result;
}

}  // namespace prestore
