// CLHT-like cache-line hash table (David, Guerraoui, Trigonakis — ASPLOS'15),
// one of the two KV-store indexes the paper evaluates (§7.2.3).
//
// Each bucket is exactly one cache line: a lock word, three key slots, three
// value slots, and a chain pointer. PUTs lock the bucket with a CAS (fence
// semantics — the §4.2 interaction); GETs are lock-free.
#ifndef SRC_KV_CLHT_H_
#define SRC_KV_CLHT_H_

#include "src/kv/kvstore.h"

namespace prestore {

class ClhtMap : public KvStore {
 public:
  static constexpr uint32_t kSlotsPerBucket = 3;

  ClhtMap(Machine& machine, uint64_t num_buckets);

  void Put(Core& core, uint64_t key, SimAddr value) override;
  SimAddr Get(Core& core, uint64_t key) override;
  const char* Name() const override { return "clht"; }

  // Number of chained overflow buckets allocated so far (diagnostics).
  uint64_t OverflowBuckets() const { return overflow_buckets_; }

 private:
  // Bucket layout (one 64B line; on 128B-line machines the bucket still
  // occupies a single line):
  //   +0  lock
  //   +8  keys[3]
  //   +32 values[3]
  //   +56 next bucket address (0 = none)
  static constexpr uint64_t kLockOff = 0;
  static constexpr uint64_t kKeyOff = 8;
  static constexpr uint64_t kValOff = 32;
  static constexpr uint64_t kNextOff = 56;
  static constexpr uint64_t kBucketBytes = 64;

  SimAddr BucketFor(uint64_t key) const;
  void Lock(Core& core, SimAddr bucket);
  void Unlock(Core& core, SimAddr bucket);

  Machine& machine_;
  SimAddr buckets_;
  uint64_t num_buckets_;
  std::atomic<uint64_t> overflow_buckets_{0};
  FuncToken put_func_;
  FuncToken get_func_;
};

}  // namespace prestore

#endif  // SRC_KV_CLHT_H_
