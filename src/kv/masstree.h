// Masstree-like B+tree index (Mao, Kohler, Morris — EuroSys'12), the second
// KV-store index the paper evaluates (§7.2.3, §7.3.1).
//
// Faithful to the part the paper exercises: every node carries a version
// word; readers use optimistic concurrency — read the version, fence, read
// the node, fence, re-check the version (Listing 7) — and writers lock nodes
// by CAS-ing the version's lock bit, which has fence semantics and forces
// publication of the freshly crafted value.
//
// Simplification vs. real Masstree (documented in DESIGN.md): one fixed-size
// key layer (uint64 keys, no trie of layers), and structural modifications
// (splits) serialize on a coarse split lock while in-leaf updates stay
// fine-grained. The fence/version protocol — the behaviour under study — is
// unchanged.
#ifndef SRC_KV_MASSTREE_H_
#define SRC_KV_MASSTREE_H_

#include <vector>

#include "src/kv/kvstore.h"

namespace prestore {

class Masstree : public KvStore {
 public:
  static constexpr uint32_t kMaxKeys = 14;

  explicit Masstree(Machine& machine);

  void Put(Core& core, uint64_t key, SimAddr value) override;
  SimAddr Get(Core& core, uint64_t key) override;
  const char* Name() const override { return "masstree"; }

  // Range scan: collects up to `limit` (key, value) pairs with key >=
  // `start_key`, in key order, walking the B-link leaf chain with the same
  // optimistic version protocol as Get.
  std::vector<std::pair<uint64_t, SimAddr>> Scan(Core& core,
                                                 uint64_t start_key,
                                                 size_t limit);

  // Walks the leaf chain and verifies key ordering; returns the number of
  // keys (single-threaded diagnostics for tests).
  uint64_t CheckedSize(Core& core);
  int Height(Core& core);

 private:
  // Node layout (256B, line-aligned):
  //   +0    version (bit 0 = locked, +2 per modification)
  //   +8    meta: nkeys | (is_leaf << 32)
  //   +16   keys[14]
  //   +128  leaf: values[14] / internal: children[15]
  //   +248  leaf: next-leaf pointer
  static constexpr uint64_t kVersionOff = 0;
  static constexpr uint64_t kMetaOff = 8;
  static constexpr uint64_t kKeysOff = 16;
  static constexpr uint64_t kSlotsOff = 128;
  static constexpr uint64_t kHighOff = 240;  // leaf upper bound (0 = +inf)
  static constexpr uint64_t kNextOff = 248;
  static constexpr uint64_t kNodeBytes = 256;

  SimAddr NewNode(Core& core, bool leaf);
  static bool IsLocked(uint64_t version) { return (version & 1) != 0; }

  uint64_t ReadVersion(Core& core, SimAddr node);
  bool LockFromVersion(Core& core, SimAddr node, uint64_t version);
  void LockNode(Core& core, SimAddr node);
  void UnlockNode(Core& core, SimAddr node, uint64_t locked_version);

  uint32_t NodeKeys(Core& core, SimAddr node);
  bool NodeIsLeaf(Core& core, SimAddr node);
  void SetMeta(Core& core, SimAddr node, uint32_t nkeys, bool leaf);

  // OCC descent (Listing 7). Returns the leaf and the version it was
  // observed at.
  struct LeafRef {
    SimAddr node;
    uint64_t version;
  };
  LeafRef FindLeaf(Core& core, uint64_t key);

  // Child index for `key` in an internal node with `nkeys` separators.
  uint32_t ChildIndex(Core& core, SimAddr node, uint32_t nkeys, uint64_t key);

  // Splits the locked, full `leaf` and inserts (key, value). Serializes on
  // the structural lock; unlocks the leaf before returning.
  void SplitAndInsert(Core& core, SimAddr leaf, uint64_t leaf_version,
                      uint64_t key, SimAddr value);
  void InsertIntoParent(Core& core, const std::vector<SimAddr>& path,
                        SimAddr left, uint64_t separator, SimAddr right);

  Machine& machine_;
  SimAddr root_ptr_;    // sim address holding the root node address
  SimAddr split_lock_;  // coarse structural lock (sim CAS)
  FuncToken put_func_;
  FuncToken get_func_;
  FuncToken traverse_func_;
};

}  // namespace prestore

#endif  // SRC_KV_MASSTREE_H_
