// YCSB workload driver for the simulated KV stores (§7.2.3).
#ifndef SRC_KV_YCSB_H_
#define SRC_KV_YCSB_H_

#include <cstdint>
#include <string>

#include "src/kv/kvstore.h"
#include "src/sim/machine.h"

namespace prestore {

enum class YcsbWorkload : uint8_t {
  kA,  // 50% reads / 50% updates — the paper's headline KV workload
  kB,  // 95% reads / 5% updates
  kC,  // 100% reads
  kD,  // 95% reads / 5% inserts (read-latest)
  kF,  // 50% reads / 50% read-modify-writes
};

struct YcsbConfig {
  YcsbWorkload workload = YcsbWorkload::kA;
  uint64_t num_keys = 100000;
  uint32_t value_size = 1024;
  uint32_t threads = 4;
  uint32_t ops_per_thread = 5000;
  KvWritePolicy policy = KvWritePolicy::kBaseline;
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  // Value-buffer slots recycled per thread (allocator model).
  uint32_t arena_slots = 2048;

  // Returns "" when the configuration is usable, else a description of the
  // first problem found. The silent failure modes this guards against:
  // threads == 0 deadlocks the harness arithmetic, zipf_theta == 1.0 makes
  // the generator's alpha exponent infinite, arena_slots == 0 divides by
  // zero in ValueArena::NextSlot, and a value_size that is 0 or not a
  // multiple of 8 breaks CraftValue's word loop.
  std::string Validate() const;
};

struct YcsbResult {
  uint64_t cycles = 0;
  uint64_t ops = 0;
  uint64_t failed_gets = 0;  // keys not found (should be 0 after load)
  double write_amplification = 1.0;

  // Requests per million simulated cycles (the shape-comparable unit for the
  // paper's "requests per second").
  double ThroughputPerMcycle() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(ops) * 1e6 /
                             static_cast<double>(cycles);
  }
};

// Fraction of operations that are reads for `workload` (the YCSB mix;
// kF's read-modify-writes count as writes). Shared with the serving
// subsystem's load generator.
double YcsbReadRatio(YcsbWorkload workload);

// Preloads `num_keys` keys (1..num_keys) with crafted values.
// Throws std::invalid_argument when config.Validate() reports a problem.
void YcsbLoad(Machine& machine, KvStore& store, const YcsbConfig& config);

// Runs the transaction phase and reports simulated cycles + device stats.
// Throws std::invalid_argument when config.Validate() reports a problem.
YcsbResult YcsbRun(Machine& machine, KvStore& store, const YcsbConfig& config);

}  // namespace prestore

#endif  // SRC_KV_YCSB_H_
