#include "src/kv/masstree.h"

namespace prestore {

Masstree::Masstree(Machine& machine)
    : machine_(machine),
      root_ptr_(machine.Alloc(64, Region::kTarget, 64)),
      split_lock_(machine.Alloc(64, Region::kTarget, 64)),
      put_func_{machine.registry().Intern("masstree::put", "masstree.cc:210")},
      get_func_{machine.registry().Intern("masstree::get", "masstree.cc:150")},
      traverse_func_{
          machine.registry().Intern("masstree::traverse", "masstree.cc:90")} {
  Core& core = machine.core(0);
  const SimAddr root = NewNode(core, /*leaf=*/true);
  core.StoreU64(root_ptr_, root);
  core.Fence();
}

SimAddr Masstree::NewNode(Core& core, bool leaf) {
  const SimAddr node =
      machine_.Alloc(kNodeBytes, Region::kTarget, kNodeBytes);
  // Backing memory is zeroed; only the meta word needs an explicit write.
  SetMeta(core, node, 0, leaf);
  return node;
}

uint64_t Masstree::ReadVersion(Core& core, SimAddr node) {
  // Listing 7: spin while a writer holds the node.
  while (true) {
    const uint64_t v = core.AtomicLoadU64(node + kVersionOff);
    if (!IsLocked(v)) {
      return v;
    }
    core.SpinPause(4);
  }
}

bool Masstree::LockFromVersion(Core& core, SimAddr node, uint64_t version) {
  uint64_t expected = version;
  return core.CasU64(node + kVersionOff, expected, version | 1);
}

void Masstree::LockNode(Core& core, SimAddr node) {
  while (true) {
    const uint64_t v = ReadVersion(core, node);
    if (LockFromVersion(core, node, v)) {
      return;
    }
    core.SpinPause(4);
  }
}

void Masstree::UnlockNode(Core& core, SimAddr node, uint64_t locked_version) {
  // Release: bump the counter and clear the lock bit in one atomic store.
  core.AtomicStoreU64(node + kVersionOff, (locked_version & ~1ULL) + 2);
}

uint32_t Masstree::NodeKeys(Core& core, SimAddr node) {
  return static_cast<uint32_t>(core.LoadU64(node + kMetaOff) & 0xffffffff);
}

bool Masstree::NodeIsLeaf(Core& core, SimAddr node) {
  return (core.LoadU64(node + kMetaOff) >> 32) != 0;
}

void Masstree::SetMeta(Core& core, SimAddr node, uint32_t nkeys, bool leaf) {
  core.StoreU64(node + kMetaOff,
                static_cast<uint64_t>(nkeys) |
                    (static_cast<uint64_t>(leaf ? 1 : 0) << 32));
}

uint32_t Masstree::ChildIndex(Core& core, SimAddr node, uint32_t nkeys,
                              uint64_t key) {
  uint32_t i = 0;
  while (i < nkeys && key >= core.LoadU64(node + kKeysOff + i * 8)) {
    ++i;
  }
  return i;
}

Masstree::LeafRef Masstree::FindLeaf(Core& core, uint64_t key) {
  ScopedFunction f(core, traverse_func_);
  while (true) {
    SimAddr node = core.AtomicLoadU64(root_ptr_);
    uint64_t version = ReadVersion(core, node);
    core.Fence();
    while (true) {
      const uint64_t meta = core.LoadU64(node + kMetaOff);
      const uint32_t nkeys = static_cast<uint32_t>(meta & 0xffffffff);
      const bool leaf = (meta >> 32) != 0;
      if (leaf) {
        core.Fence();
        if (core.AtomicLoadU64(node + kVersionOff) != version) {
          break;  // version changed: restart from the root (Listing 7)
        }
        return LeafRef{node, version};
      }
      const uint32_t idx = ChildIndex(core, node, nkeys, key);
      const SimAddr child = core.LoadU64(node + kSlotsOff + idx * 8);
      core.Fence();
      if (core.AtomicLoadU64(node + kVersionOff) != version) {
        break;
      }
      const uint64_t child_version = ReadVersion(core, child);
      core.Fence();
      node = child;
      version = child_version;
    }
  }
}

SimAddr Masstree::Get(Core& core, uint64_t key) {
  ScopedFunction f(core, get_func_);
  while (true) {
    const LeafRef leaf = FindLeaf(core, key);
    const uint64_t high = core.LoadU64(leaf.node + kHighOff);
    if (high != 0 && key >= high) {
      core.Execute(4);
      continue;  // raced a split: retry the descent
    }
    const uint32_t nkeys = NodeKeys(core, leaf.node);
    SimAddr value = 0;
    for (uint32_t i = 0; i < nkeys; ++i) {
      if (core.LoadU64(leaf.node + kKeysOff + i * 8) == key) {
        value = core.LoadU64(leaf.node + kSlotsOff + i * 8);
        break;
      }
    }
    core.Fence();
    if (core.AtomicLoadU64(leaf.node + kVersionOff) == leaf.version) {
      return value;
    }
  }
}

void Masstree::Put(Core& core, uint64_t key, SimAddr value) {
  ScopedFunction f(core, put_func_);
  while (true) {
    const LeafRef leaf = FindLeaf(core, key);
    // Locking CAS fails if the leaf changed since we observed it.
    if (!LockFromVersion(core, leaf.node, leaf.version)) {
      core.Execute(4);
      continue;
    }
    const uint64_t locked_version = leaf.version | 1;
    // B-link-style bound check: a racing split may have moved our key range
    // to the right sibling between the descent and the lock.
    const uint64_t high = core.LoadU64(leaf.node + kHighOff);
    if (high != 0 && key >= high) {
      UnlockNode(core, leaf.node, locked_version);
      continue;
    }
    const uint32_t nkeys = NodeKeys(core, leaf.node);

    // In-place update.
    for (uint32_t i = 0; i < nkeys; ++i) {
      if (core.LoadU64(leaf.node + kKeysOff + i * 8) == key) {
        core.StoreU64(leaf.node + kSlotsOff + i * 8, value);
        UnlockNode(core, leaf.node, locked_version);
        return;
      }
    }

    if (nkeys < kMaxKeys) {
      uint32_t pos = 0;
      while (pos < nkeys && core.LoadU64(leaf.node + kKeysOff + pos * 8) < key) {
        ++pos;
      }
      for (uint32_t i = nkeys; i > pos; --i) {
        core.StoreU64(leaf.node + kKeysOff + i * 8,
                      core.LoadU64(leaf.node + kKeysOff + (i - 1) * 8));
        core.StoreU64(leaf.node + kSlotsOff + i * 8,
                      core.LoadU64(leaf.node + kSlotsOff + (i - 1) * 8));
      }
      core.StoreU64(leaf.node + kKeysOff + pos * 8, key);
      core.StoreU64(leaf.node + kSlotsOff + pos * 8, value);
      SetMeta(core, leaf.node, nkeys + 1, /*leaf=*/true);
      UnlockNode(core, leaf.node, locked_version);
      return;
    }

    SplitAndInsert(core, leaf.node, locked_version, key, value);
    return;
  }
}

void Masstree::SplitAndInsert(Core& core, SimAddr leaf, uint64_t leaf_version,
                              uint64_t key, SimAddr value) {
  // Structural changes serialize on the split lock (held while the leaf is
  // locked; splitters never wait on other leaves, so this cannot deadlock).
  uint64_t expected = 0;
  while (!core.CasU64(split_lock_, expected, 1)) {
    expected = 0;
    core.SpinPause(10);
  }

  // Record the root-to-leaf path; internal nodes only change under the
  // split lock, so this traversal is stable.
  std::vector<SimAddr> path;
  {
    SimAddr node = core.AtomicLoadU64(root_ptr_);
    while (!NodeIsLeaf(core, node)) {
      path.push_back(node);
      const uint32_t idx = ChildIndex(core, node, NodeKeys(core, node), key);
      node = core.LoadU64(node + kSlotsOff + idx * 8);
    }
    // `node` must be our locked leaf: in-leaf writers cannot move keys to
    // other leaves, and no other splitter is active.
  }

  const SimAddr right = NewNode(core, /*leaf=*/true);
  constexpr uint32_t kLeft = kMaxKeys / 2;              // 7
  constexpr uint32_t kRight = kMaxKeys - kLeft;         // 7
  for (uint32_t i = 0; i < kRight; ++i) {
    core.StoreU64(right + kKeysOff + i * 8,
                  core.LoadU64(leaf + kKeysOff + (kLeft + i) * 8));
    core.StoreU64(right + kSlotsOff + i * 8,
                  core.LoadU64(leaf + kSlotsOff + (kLeft + i) * 8));
  }
  SetMeta(core, right, kRight, /*leaf=*/true);
  core.StoreU64(right + kNextOff, core.LoadU64(leaf + kNextOff));
  core.StoreU64(leaf + kNextOff, right);
  SetMeta(core, leaf, kLeft, /*leaf=*/true);
  const uint64_t separator = core.LoadU64(right + kKeysOff);
  core.StoreU64(right + kHighOff, core.LoadU64(leaf + kHighOff));
  core.StoreU64(leaf + kHighOff, separator);

  // Insert the new key into the correct half (the target is still locked /
  // not yet published, respectively).
  const SimAddr target = key < separator ? leaf : right;
  {
    const uint32_t nkeys = NodeKeys(core, target);
    uint32_t pos = 0;
    while (pos < nkeys && core.LoadU64(target + kKeysOff + pos * 8) < key) {
      ++pos;
    }
    for (uint32_t i = nkeys; i > pos; --i) {
      core.StoreU64(target + kKeysOff + i * 8,
                    core.LoadU64(target + kKeysOff + (i - 1) * 8));
      core.StoreU64(target + kSlotsOff + i * 8,
                    core.LoadU64(target + kSlotsOff + (i - 1) * 8));
    }
    core.StoreU64(target + kKeysOff + pos * 8, key);
    core.StoreU64(target + kSlotsOff + pos * 8, value);
    SetMeta(core, target, nkeys + 1, /*leaf=*/true);
  }

  InsertIntoParent(core, path, leaf, separator, right);

  // Publish: bump the leaf's version (readers that raced the split retry).
  UnlockNode(core, leaf, leaf_version);
  core.AtomicStoreU64(split_lock_, 0);
}

void Masstree::InsertIntoParent(Core& core, const std::vector<SimAddr>& path,
                                SimAddr left, uint64_t separator,
                                SimAddr right) {
  if (path.empty()) {
    // Root split.
    const SimAddr new_root = NewNode(core, /*leaf=*/false);
    core.StoreU64(new_root + kKeysOff, separator);
    core.StoreU64(new_root + kSlotsOff, left);
    core.StoreU64(new_root + kSlotsOff + 8, right);
    SetMeta(core, new_root, 1, /*leaf=*/false);
    core.Fence();
    core.AtomicStoreU64(root_ptr_, new_root);
    return;
  }

  const SimAddr parent = path.back();
  LockNode(core, parent);
  const uint64_t locked_version =
      core.AtomicLoadU64(parent + kVersionOff);
  const uint32_t nkeys = NodeKeys(core, parent);

  if (nkeys < kMaxKeys) {
    uint32_t pos = 0;
    while (pos < nkeys &&
           core.LoadU64(parent + kKeysOff + pos * 8) < separator) {
      ++pos;
    }
    for (uint32_t i = nkeys; i > pos; --i) {
      core.StoreU64(parent + kKeysOff + i * 8,
                    core.LoadU64(parent + kKeysOff + (i - 1) * 8));
    }
    for (uint32_t i = nkeys + 1; i > pos + 1; --i) {
      core.StoreU64(parent + kSlotsOff + i * 8,
                    core.LoadU64(parent + kSlotsOff + (i - 1) * 8));
    }
    core.StoreU64(parent + kKeysOff + pos * 8, separator);
    core.StoreU64(parent + kSlotsOff + (pos + 1) * 8, right);
    SetMeta(core, parent, nkeys + 1, /*leaf=*/false);
    UnlockNode(core, parent, locked_version);
    return;
  }

  // Parent is full: split it, pushing the median up. Build the would-be key
  // and child sequences including the new separator, then redistribute.
  uint64_t keys[kMaxKeys + 1];
  SimAddr children[kMaxKeys + 2];
  uint32_t pos = 0;
  while (pos < nkeys && core.LoadU64(parent + kKeysOff + pos * 8) < separator) {
    ++pos;
  }
  for (uint32_t i = 0; i < pos; ++i) {
    keys[i] = core.LoadU64(parent + kKeysOff + i * 8);
    children[i] = core.LoadU64(parent + kSlotsOff + i * 8);
  }
  keys[pos] = separator;
  children[pos] = core.LoadU64(parent + kSlotsOff + pos * 8);
  children[pos + 1] = right;
  for (uint32_t i = pos; i < nkeys; ++i) {
    keys[i + 1] = core.LoadU64(parent + kKeysOff + i * 8);
    children[i + 2] = core.LoadU64(parent + kSlotsOff + (i + 1) * 8);
  }

  constexpr uint32_t kTotal = kMaxKeys + 1;  // 15 keys, 16 children
  constexpr uint32_t kMid = kTotal / 2;      // keys[7] moves up
  const SimAddr new_right = NewNode(core, /*leaf=*/false);
  for (uint32_t i = 0; i < kMid; ++i) {
    core.StoreU64(parent + kKeysOff + i * 8, keys[i]);
    core.StoreU64(parent + kSlotsOff + i * 8, children[i]);
  }
  core.StoreU64(parent + kSlotsOff + kMid * 8, children[kMid]);
  SetMeta(core, parent, kMid, /*leaf=*/false);

  const uint32_t right_keys = kTotal - kMid - 1;
  for (uint32_t i = 0; i < right_keys; ++i) {
    core.StoreU64(new_right + kKeysOff + i * 8, keys[kMid + 1 + i]);
    core.StoreU64(new_right + kSlotsOff + i * 8, children[kMid + 1 + i]);
  }
  core.StoreU64(new_right + kSlotsOff + right_keys * 8, children[kTotal]);
  SetMeta(core, new_right, right_keys, /*leaf=*/false);

  UnlockNode(core, parent, locked_version);
  std::vector<SimAddr> upper(path.begin(), path.end() - 1);
  InsertIntoParent(core, upper, parent, keys[kMid], new_right);
}

std::vector<std::pair<uint64_t, SimAddr>> Masstree::Scan(Core& core,
                                                         uint64_t start_key,
                                                         size_t limit) {
  ScopedFunction f(core, get_func_);
  std::vector<std::pair<uint64_t, SimAddr>> out;
  if (limit == 0) {
    return out;
  }
  LeafRef leaf = FindLeaf(core, start_key);
  SimAddr node = leaf.node;
  uint64_t version = leaf.version;
  uint64_t next_key = start_key;
  while (node != 0 && out.size() < limit) {
    // Snapshot one leaf under its version (Listing 7 protocol).
    std::vector<std::pair<uint64_t, SimAddr>> snapshot;
    const uint32_t nkeys = NodeKeys(core, node);
    for (uint32_t i = 0; i < nkeys && snapshot.size() < limit - out.size();
         ++i) {
      const uint64_t k = core.LoadU64(node + kKeysOff + i * 8);
      if (k >= next_key) {
        snapshot.emplace_back(k, core.LoadU64(node + kSlotsOff + i * 8));
      }
    }
    const SimAddr next = core.LoadU64(node + kNextOff);
    core.Fence();
    if (core.AtomicLoadU64(node + kVersionOff) != version) {
      // Version changed mid-snapshot: retry this leaf from the root.
      leaf = FindLeaf(core, next_key);
      node = leaf.node;
      version = leaf.version;
      continue;
    }
    for (auto& kv : snapshot) {
      out.push_back(kv);
      next_key = kv.first + 1;
    }
    node = next;
    if (node != 0) {
      version = ReadVersion(core, node);
      core.Fence();
    }
  }
  return out;
}

uint64_t Masstree::CheckedSize(Core& core) {
  // Descend to the leftmost leaf, then walk the chain.
  SimAddr node = core.AtomicLoadU64(root_ptr_);
  while (!NodeIsLeaf(core, node)) {
    node = core.LoadU64(node + kSlotsOff);
  }
  uint64_t count = 0;
  uint64_t prev = 0;
  bool first = true;
  while (node != 0) {
    const uint32_t nkeys = NodeKeys(core, node);
    for (uint32_t i = 0; i < nkeys; ++i) {
      const uint64_t k = core.LoadU64(node + kKeysOff + i * 8);
      if (!first && k <= prev) {
        return ~0ULL;  // ordering violation
      }
      prev = k;
      first = false;
      ++count;
    }
    node = core.LoadU64(node + kNextOff);
  }
  return count;
}

int Masstree::Height(Core& core) {
  int h = 1;
  SimAddr node = core.AtomicLoadU64(root_ptr_);
  while (!NodeIsLeaf(core, node)) {
    node = core.LoadU64(node + kSlotsOff);
    ++h;
  }
  return h;
}

}  // namespace prestore
