// Example: using DirtBuster to find pre-store opportunities in YOUR code.
//
// The "application" below builds frames of samples, post-processes them
// into an output log (sequential, never re-read), and keeps a small running
// histogram (constantly re-written). DirtBuster's report tells you which of
// those writes deserve a pre-store and of which kind.
//
// Build & run:  ./build/examples/dirtbuster_advisor
#include <cstdio>

#include "src/dirtbuster/dirtbuster.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

using namespace prestore;

namespace {

class SampleProcessor {
 public:
  explicit SampleProcessor(Machine& machine)
      : machine_(machine),
        frames_(machine.Alloc(kFrameBytes)),
        log_(machine.Alloc(kLogBytes)),
        histogram_(machine.Alloc(kBins * 8)),
        acquire_tok_{machine.registry().Intern("acquire_frame",
                                               "processor.cc:31")},
        process_tok_{machine.registry().Intern("process_frame",
                                               "processor.cc:58")},
        histo_tok_{machine.registry().Intern("update_histogram",
                                             "processor.cc:90")} {}

  void Run(Core& core, uint32_t frames) {
    Xoshiro256 rng(7);
    uint64_t log_cursor = 0;
    for (uint32_t f = 0; f < frames; ++f) {
      {
        ScopedFunction fn(core, acquire_tok_);
        for (uint64_t i = 0; i < kFrameBytes; i += 8) {
          core.StoreU64(frames_ + i, rng.Next());  // reused frame buffer
        }
      }
      {
        ScopedFunction fn(core, process_tok_);
        for (uint64_t i = 0; i < kFrameBytes; i += 8) {
          const uint64_t sample = core.LoadU64(frames_ + i);
          core.Execute(4);
          // Sequential append to the output log; never re-read here.
          core.StoreU64(log_ + (log_cursor % kLogBytes), sample >> 3);
          log_cursor += 8;
        }
      }
      {
        ScopedFunction fn(core, histo_tok_);
        for (uint64_t i = 0; i < kFrameBytes; i += 64) {
          const uint64_t bin = core.LoadU64(frames_ + i) % kBins;
          // Tiny, constantly re-written histogram: the Listing-3 trap.
          core.StoreU64(histogram_ + bin * 8,
                        core.LoadU64(histogram_ + bin * 8) + 1);
        }
      }
    }
  }

 private:
  static constexpr uint64_t kFrameBytes = 64 << 10;
  static constexpr uint64_t kLogBytes = 48ULL << 20;
  static constexpr uint64_t kBins = 64;

  Machine& machine_;
  SimAddr frames_, log_, histogram_;
  FuncToken acquire_tok_, process_tok_, histo_tok_;
};

}  // namespace

int main() {
  Machine machine(MachineA(1));
  SampleProcessor app(machine);

  DirtBuster dirtbuster(machine);
  const DirtBusterReport report =
      dirtbuster.Analyze([&] { app.Run(machine.core(0), 24); });

  std::printf("%s\n", report.ToString().c_str());
  std::printf(
      "How to read this:\n"
      "  - process_frame's output log: sequential, never re-read -> skip\n"
      "    (or clean when non-temporal stores are impractical);\n"
      "  - acquire_frame's buffer: re-read by process_frame but also\n"
      "    re-written every frame -> no pre-store (cleaning it would push\n"
      "    data to memory that the next frame overwrites anyway);\n"
      "  - update_histogram: tiny and constantly re-written -> no pre-store\n"
      "    (the Listing-3 trap DirtBuster refuses to recommend).\n");
  return 0;
}
