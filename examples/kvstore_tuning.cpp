// Example: tuning a key-value store's PUT path with pre-stores.
//
// Reproduces the §7.2.3 decision in miniature: run YCSB A against the
// CLHT-like store on Machine A with the three value-write policies and
// print the throughput / write-amplification trade-off.
//
// Build & run:  ./build/examples/kvstore_tuning [--value_size=1024]
#include <cstdio>

#include "src/kv/clht.h"
#include "src/kv/ycsb.h"
#include "src/util/cli.h"

using namespace prestore;

namespace {

YcsbResult Run(uint32_t value_size, KvWritePolicy policy) {
  MachineConfig cfg = MachineA(4);
  Machine machine(cfg);
  ClhtMap store(machine, 16384);
  YcsbConfig ycsb;
  ycsb.num_keys = (24ULL << 20) / value_size;
  ycsb.value_size = value_size;
  ycsb.threads = 4;
  ycsb.ops_per_thread = 800;
  ycsb.policy = policy;
  YcsbLoad(machine, store, ycsb);
  return YcsbRun(machine, store, ycsb);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto value_size =
      static_cast<uint32_t>(flags.GetInt("value_size", 1024));

  std::printf("CLHT + YCSB A on Machine A, %uB values, 4 threads\n\n",
              value_size);
  std::printf("%-10s %14s %16s\n", "policy", "req/Mcycle", "write-amp");

  struct Variant {
    const char* name;
    KvWritePolicy policy;
  };
  double baseline = 0.0;
  for (const Variant v : {Variant{"baseline", KvWritePolicy::kBaseline},
                          Variant{"clean", KvWritePolicy::kClean},
                          Variant{"skip", KvWritePolicy::kSkip}}) {
    const YcsbResult r = Run(value_size, v.policy);
    if (v.policy == KvWritePolicy::kBaseline) {
      baseline = r.ThroughputPerMcycle();
    }
    std::printf("%-10s %14.1f %15.2fx   (%.2fx vs baseline)\n", v.name,
                r.ThroughputPerMcycle(), r.write_amplification,
                r.ThroughputPerMcycle() / baseline);
  }

  std::printf(
      "\nGuidance (§7.2.3): values are crafted sequentially, rarely re-read\n"
      "and published behind a lock CAS -> skip is fastest but requires\n"
      "rewriting craftValue with non-temporal stores; clean is one added\n"
      "line (Listing 6) and captures most of the benefit.\n");
  return 0;
}
