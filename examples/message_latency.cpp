// Example: cutting message-passing latency with a demote pre-store.
//
// The X9-like inbox publishes each message with a CAS. On a machine with
// long-latency coherent memory (Machine B), the CAS stalls until the
// freshly written message leaves the CPU's private buffers — unless the
// producer demotes it first (Listing 8).
//
// Build & run:  ./build/examples/message_latency
#include <cstdio>
#include <vector>

#include "src/msg/x9.h"
#include "src/sim/harness.h"

using namespace prestore;

namespace {

uint64_t MeasureSendCost(const MachineConfig& cfg, MsgPrestore mode) {
  MachineConfig machine_cfg = cfg;
  machine_cfg.num_cores = 2;
  Machine machine(machine_cfg);
  X9Inbox inbox(machine, 64, 256);
  constexpr uint64_t kMessages = 3000;
  uint64_t producer_cycles = 0;
  RunParallel(machine, 2, [&](Core& core, uint32_t tid) {
    if (tid == 0) {
      for (uint64_t i = 0; i < kMessages; ++i) {
        // Count only the successful send call: full-inbox spinning depends
        // on host scheduling, not on the pre-store under study.
        while (true) {
          const uint64_t t0 = core.now();
          if (inbox.TryWriteStamped(core, i, mode)) {
            producer_cycles += core.now() - t0;
            break;
          }
          core.SpinPause(50);
        }
      }
    } else {
      std::vector<char> drain(256);
      uint64_t received = 0;
      while (received < kMessages) {
        if (inbox.TryRead(core, drain.data())) {
          ++received;
        } else {
          core.SpinPause(30);
        }
      }
    }
  });
  return producer_cycles / kMessages;
}

}  // namespace

int main() {
  std::printf("X9-style message passing, 256B messages, producer+consumer\n\n");
  struct MachineRow {
    const char* name;
    MachineConfig cfg;
  };
  for (const MachineRow& row : {MachineRow{"Machine B-fast", MachineBFast()},
                                MachineRow{"Machine B-slow", MachineBSlow()}}) {
    const uint64_t base = MeasureSendCost(row.cfg, MsgPrestore::kOff);
    const uint64_t demote = MeasureSendCost(row.cfg, MsgPrestore::kDemote);
    std::printf("%-16s baseline %5llu cyc/msg | demote %5llu cyc/msg | "
                "-%.0f%%\n",
                row.name, static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(demote),
                (1.0 - static_cast<double>(demote) / base) * 100.0);
  }
  std::printf(
      "\nThe demote pre-store (one line after fill_msg) moves the message\n"
      "out of the private store buffer while the producer is still doing\n"
      "inbox bookkeeping, so the publishing CAS finds it already visible.\n");
  return 0;
}
