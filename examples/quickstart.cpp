// Quickstart: the pre-store API in five minutes.
//
//  1. Build a simulated machine (Machine A: x86 + Optane-like PMEM).
//  2. Write data, observe write amplification from random evictions.
//  3. Add a clean pre-store and watch the amplification disappear.
//  4. Issue REAL pre-store instructions on the host CPU (hw backend).
//  5. Let the adaptive governor neutralize a misplaced pre-store.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "src/hw/hw_prestore.h"
#include "src/robust/governor.h"
#include "src/sim/harness.h"
#include "src/sim/machine.h"
#include "src/util/rng.h"

using namespace prestore;

int main() {
  std::printf("== 1. A simulated Machine A (64B lines over 256B-block PMEM)\n");
  constexpr uint32_t kEltSize = 1024;
  constexpr uint32_t kIters = 4000;

  auto run = [&](bool clean) {
    Machine machine(MachineA(2));
    const uint64_t n = (48ULL << 20) / kEltSize;
    const SimAddr elts = machine.Alloc(n * kEltSize);
    std::vector<uint8_t> payload(kEltSize, 0x42);
    machine.ResetStats();
    const uint64_t cycles =
        RunParallel(machine, 2, [&](Core& core, uint32_t tid) {
          Xoshiro256 rng(tid + 1);
          for (uint32_t i = 0; i < kIters; ++i) {
            const SimAddr e = elts + rng.Below(n) * kEltSize;
            core.MemCopyToSim(e, payload.data(), kEltSize);
            if (clean) {
              // THE pre-store: non-blocking, keeps the data cached, writes
              // the dirty lines back to memory in the background.
              core.Prestore(e, kEltSize, PrestoreOp::kClean);
            }
          }
        });
    machine.FlushAll();
    return std::pair<uint64_t, double>(
        cycles, machine.target().Stats().WriteAmplification());
  };

  const auto [base_cycles, base_amp] = run(false);
  std::printf("   baseline:   %8llu cycles, write amplification %.2fx\n",
              static_cast<unsigned long long>(base_cycles), base_amp);

  std::printf("== 2. Same writes with a clean pre-store after each element\n");
  const auto [clean_cycles, clean_amp] = run(true);
  std::printf("   pre-store:  %8llu cycles, write amplification %.2fx "
              "(%.2fx faster)\n",
              static_cast<unsigned long long>(clean_cycles), clean_amp,
              static_cast<double>(base_cycles) / clean_cycles);

  std::printf("== 3. Real hardware pre-stores on this CPU\n");
  const HwFeatures& hw = DetectHwFeatures();
  std::printf("   cache line %uB, clwb:%s clflushopt:%s cldemote:%s\n",
              hw.cache_line_size, hw.has_clwb ? "yes" : "no",
              hw.has_clflushopt ? "yes" : "no",
              hw.has_cldemote ? "yes" : "no");
  std::vector<uint64_t> host_data(4096, 7);
  HwPrestore(host_data.data(), host_data.size() * 8, PrestoreOp::kClean);
  HwPrestore(host_data.data(), host_data.size() * 8, PrestoreOp::kDemote);
  HwStoreFence();
  std::printf("   issued %zu bytes of clean+demote pre-stores, data intact: "
              "%s\n",
              host_data.size() * 8, host_data[123] == 7 ? "yes" : "NO");

  std::printf("== 4. A MISPLACED pre-store, with and without the governor\n");
  // Listing-3 pitfall (§5): cleaning a line that is immediately rewritten
  // turns every store into a media writeback. The adaptive governor
  // (src/robust) sees the rewrite-after-clean storm and suppresses the bad
  // hints online, no source change needed.
  auto storm = [](bool governed) {
    Machine machine(MachineA(1));
    PrestoreGovernor governor(machine);
    if (governed) {
      governor.Attach();
    }
    const SimAddr line = machine.Alloc(64);
    std::vector<uint8_t> payload(64, 1);
    const uint64_t cycles = RunOnCore(machine, [&](Core& core) {
      for (uint32_t i = 0; i < 20000; ++i) {
        core.MemCopyToSim(line, payload.data(), payload.size());
        core.Prestore(line, 64, PrestoreOp::kClean);
      }
    });
    if (governed) {
      std::printf("%s", governor.Summary().c_str());
    }
    return cycles;
  };
  const uint64_t naive = storm(false);
  const uint64_t governed = storm(true);
  std::printf("   naive misuse: %llu cycles -> governed: %llu cycles "
              "(%.2fx recovered)\n",
              static_cast<unsigned long long>(naive),
              static_cast<unsigned long long>(governed),
              static_cast<double>(naive) / governed);
  return 0;
}
