# Empty dependencies file for harness_array_test.
# This may be replaced when dependencies are built.
