file(REMOVE_RECURSE
  "CMakeFiles/harness_array_test.dir/harness_array_test.cc.o"
  "CMakeFiles/harness_array_test.dir/harness_array_test.cc.o.d"
  "harness_array_test"
  "harness_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
