# Empty dependencies file for cli_table_test.
# This may be replaced when dependencies are built.
