file(REMOVE_RECURSE
  "CMakeFiles/cli_table_test.dir/cli_table_test.cc.o"
  "CMakeFiles/cli_table_test.dir/cli_table_test.cc.o.d"
  "cli_table_test"
  "cli_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
