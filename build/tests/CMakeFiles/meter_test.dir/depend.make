# Empty dependencies file for meter_test.
# This may be replaced when dependencies are built.
