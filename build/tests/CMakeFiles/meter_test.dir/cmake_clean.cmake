file(REMOVE_RECURSE
  "CMakeFiles/meter_test.dir/meter_test.cc.o"
  "CMakeFiles/meter_test.dir/meter_test.cc.o.d"
  "meter_test"
  "meter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
