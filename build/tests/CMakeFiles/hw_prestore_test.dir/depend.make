# Empty dependencies file for hw_prestore_test.
# This may be replaced when dependencies are built.
