file(REMOVE_RECURSE
  "CMakeFiles/hw_prestore_test.dir/hw_prestore_test.cc.o"
  "CMakeFiles/hw_prestore_test.dir/hw_prestore_test.cc.o.d"
  "hw_prestore_test"
  "hw_prestore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_prestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
