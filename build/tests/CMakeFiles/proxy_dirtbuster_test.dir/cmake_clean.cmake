file(REMOVE_RECURSE
  "CMakeFiles/proxy_dirtbuster_test.dir/proxy_dirtbuster_test.cc.o"
  "CMakeFiles/proxy_dirtbuster_test.dir/proxy_dirtbuster_test.cc.o.d"
  "proxy_dirtbuster_test"
  "proxy_dirtbuster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_dirtbuster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
