# Empty dependencies file for proxy_dirtbuster_test.
# This may be replaced when dependencies are built.
