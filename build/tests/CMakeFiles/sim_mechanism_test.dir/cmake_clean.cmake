file(REMOVE_RECURSE
  "CMakeFiles/sim_mechanism_test.dir/sim_mechanism_test.cc.o"
  "CMakeFiles/sim_mechanism_test.dir/sim_mechanism_test.cc.o.d"
  "sim_mechanism_test"
  "sim_mechanism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_mechanism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
