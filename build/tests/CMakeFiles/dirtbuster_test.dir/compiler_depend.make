# Empty compiler generated dependencies file for dirtbuster_test.
# This may be replaced when dependencies are built.
