file(REMOVE_RECURSE
  "CMakeFiles/dirtbuster_test.dir/dirtbuster_test.cc.o"
  "CMakeFiles/dirtbuster_test.dir/dirtbuster_test.cc.o.d"
  "dirtbuster_test"
  "dirtbuster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirtbuster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
