# Empty dependencies file for dirtbuster.
# This may be replaced when dependencies are built.
