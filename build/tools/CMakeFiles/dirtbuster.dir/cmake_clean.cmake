file(REMOVE_RECURSE
  "CMakeFiles/dirtbuster.dir/dirtbuster_cli.cc.o"
  "CMakeFiles/dirtbuster.dir/dirtbuster_cli.cc.o.d"
  "dirtbuster"
  "dirtbuster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirtbuster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
