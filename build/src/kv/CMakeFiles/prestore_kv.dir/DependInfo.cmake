
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/clht.cc" "src/kv/CMakeFiles/prestore_kv.dir/clht.cc.o" "gcc" "src/kv/CMakeFiles/prestore_kv.dir/clht.cc.o.d"
  "/root/repo/src/kv/masstree.cc" "src/kv/CMakeFiles/prestore_kv.dir/masstree.cc.o" "gcc" "src/kv/CMakeFiles/prestore_kv.dir/masstree.cc.o.d"
  "/root/repo/src/kv/ycsb.cc" "src/kv/CMakeFiles/prestore_kv.dir/ycsb.cc.o" "gcc" "src/kv/CMakeFiles/prestore_kv.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prestore_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
