file(REMOVE_RECURSE
  "libprestore_kv.a"
)
