# Empty dependencies file for prestore_kv.
# This may be replaced when dependencies are built.
