file(REMOVE_RECURSE
  "CMakeFiles/prestore_kv.dir/clht.cc.o"
  "CMakeFiles/prestore_kv.dir/clht.cc.o.d"
  "CMakeFiles/prestore_kv.dir/masstree.cc.o"
  "CMakeFiles/prestore_kv.dir/masstree.cc.o.d"
  "CMakeFiles/prestore_kv.dir/ycsb.cc.o"
  "CMakeFiles/prestore_kv.dir/ycsb.cc.o.d"
  "libprestore_kv.a"
  "libprestore_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
