file(REMOVE_RECURSE
  "libprestore_proxy.a"
)
