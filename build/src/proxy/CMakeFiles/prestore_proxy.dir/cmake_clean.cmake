file(REMOVE_RECURSE
  "CMakeFiles/prestore_proxy.dir/proxies.cc.o"
  "CMakeFiles/prestore_proxy.dir/proxies.cc.o.d"
  "libprestore_proxy.a"
  "libprestore_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
