# Empty compiler generated dependencies file for prestore_proxy.
# This may be replaced when dependencies are built.
