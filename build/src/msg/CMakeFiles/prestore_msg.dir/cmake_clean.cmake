file(REMOVE_RECURSE
  "CMakeFiles/prestore_msg.dir/x9.cc.o"
  "CMakeFiles/prestore_msg.dir/x9.cc.o.d"
  "libprestore_msg.a"
  "libprestore_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
