# Empty dependencies file for prestore_msg.
# This may be replaced when dependencies are built.
