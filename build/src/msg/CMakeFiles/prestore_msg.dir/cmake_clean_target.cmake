file(REMOVE_RECURSE
  "libprestore_msg.a"
)
