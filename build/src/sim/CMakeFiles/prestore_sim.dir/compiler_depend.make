# Empty compiler generated dependencies file for prestore_sim.
# This may be replaced when dependencies are built.
