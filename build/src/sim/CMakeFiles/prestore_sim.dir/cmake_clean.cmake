file(REMOVE_RECURSE
  "CMakeFiles/prestore_sim.dir/cache.cc.o"
  "CMakeFiles/prestore_sim.dir/cache.cc.o.d"
  "CMakeFiles/prestore_sim.dir/config.cc.o"
  "CMakeFiles/prestore_sim.dir/config.cc.o.d"
  "CMakeFiles/prestore_sim.dir/core.cc.o"
  "CMakeFiles/prestore_sim.dir/core.cc.o.d"
  "CMakeFiles/prestore_sim.dir/device.cc.o"
  "CMakeFiles/prestore_sim.dir/device.cc.o.d"
  "CMakeFiles/prestore_sim.dir/machine.cc.o"
  "CMakeFiles/prestore_sim.dir/machine.cc.o.d"
  "libprestore_sim.a"
  "libprestore_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
