file(REMOVE_RECURSE
  "libprestore_sim.a"
)
