
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/prestore_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/prestore_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/prestore_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/prestore_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/prestore_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/prestore_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/prestore_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/prestore_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/prestore_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/prestore_sim.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
