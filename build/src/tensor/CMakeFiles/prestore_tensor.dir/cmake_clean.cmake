file(REMOVE_RECURSE
  "CMakeFiles/prestore_tensor.dir/evaluator.cc.o"
  "CMakeFiles/prestore_tensor.dir/evaluator.cc.o.d"
  "CMakeFiles/prestore_tensor.dir/training.cc.o"
  "CMakeFiles/prestore_tensor.dir/training.cc.o.d"
  "libprestore_tensor.a"
  "libprestore_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
