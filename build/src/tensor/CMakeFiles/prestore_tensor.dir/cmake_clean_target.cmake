file(REMOVE_RECURSE
  "libprestore_tensor.a"
)
