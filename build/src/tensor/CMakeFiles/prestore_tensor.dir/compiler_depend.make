# Empty compiler generated dependencies file for prestore_tensor.
# This may be replaced when dependencies are built.
