file(REMOVE_RECURSE
  "libprestore_dirtbuster.a"
)
