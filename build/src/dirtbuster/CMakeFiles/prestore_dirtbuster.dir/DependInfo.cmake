
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dirtbuster/analyzer.cc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/analyzer.cc.o" "gcc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/analyzer.cc.o.d"
  "/root/repo/src/dirtbuster/dirtbuster.cc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/dirtbuster.cc.o" "gcc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/dirtbuster.cc.o.d"
  "/root/repo/src/dirtbuster/recommend.cc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/recommend.cc.o" "gcc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/recommend.cc.o.d"
  "/root/repo/src/dirtbuster/sampler.cc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/sampler.cc.o" "gcc" "src/dirtbuster/CMakeFiles/prestore_dirtbuster.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prestore_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
