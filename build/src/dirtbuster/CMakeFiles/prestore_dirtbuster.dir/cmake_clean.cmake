file(REMOVE_RECURSE
  "CMakeFiles/prestore_dirtbuster.dir/analyzer.cc.o"
  "CMakeFiles/prestore_dirtbuster.dir/analyzer.cc.o.d"
  "CMakeFiles/prestore_dirtbuster.dir/dirtbuster.cc.o"
  "CMakeFiles/prestore_dirtbuster.dir/dirtbuster.cc.o.d"
  "CMakeFiles/prestore_dirtbuster.dir/recommend.cc.o"
  "CMakeFiles/prestore_dirtbuster.dir/recommend.cc.o.d"
  "CMakeFiles/prestore_dirtbuster.dir/sampler.cc.o"
  "CMakeFiles/prestore_dirtbuster.dir/sampler.cc.o.d"
  "libprestore_dirtbuster.a"
  "libprestore_dirtbuster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_dirtbuster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
