# Empty dependencies file for prestore_dirtbuster.
# This may be replaced when dependencies are built.
