file(REMOVE_RECURSE
  "CMakeFiles/prestore_hw.dir/hw_prestore.cc.o"
  "CMakeFiles/prestore_hw.dir/hw_prestore.cc.o.d"
  "libprestore_hw.a"
  "libprestore_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
