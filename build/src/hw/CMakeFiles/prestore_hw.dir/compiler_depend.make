# Empty compiler generated dependencies file for prestore_hw.
# This may be replaced when dependencies are built.
