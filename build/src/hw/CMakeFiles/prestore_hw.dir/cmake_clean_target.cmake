file(REMOVE_RECURSE
  "libprestore_hw.a"
)
