
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/bt.cc" "src/nas/CMakeFiles/prestore_nas.dir/bt.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/bt.cc.o.d"
  "/root/repo/src/nas/ft.cc" "src/nas/CMakeFiles/prestore_nas.dir/ft.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/ft.cc.o.d"
  "/root/repo/src/nas/mg.cc" "src/nas/CMakeFiles/prestore_nas.dir/mg.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/mg.cc.o.d"
  "/root/repo/src/nas/nas_common.cc" "src/nas/CMakeFiles/prestore_nas.dir/nas_common.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/nas_common.cc.o.d"
  "/root/repo/src/nas/small_kernels.cc" "src/nas/CMakeFiles/prestore_nas.dir/small_kernels.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/small_kernels.cc.o.d"
  "/root/repo/src/nas/sp.cc" "src/nas/CMakeFiles/prestore_nas.dir/sp.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/sp.cc.o.d"
  "/root/repo/src/nas/ua.cc" "src/nas/CMakeFiles/prestore_nas.dir/ua.cc.o" "gcc" "src/nas/CMakeFiles/prestore_nas.dir/ua.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/prestore_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
