file(REMOVE_RECURSE
  "CMakeFiles/prestore_nas.dir/bt.cc.o"
  "CMakeFiles/prestore_nas.dir/bt.cc.o.d"
  "CMakeFiles/prestore_nas.dir/ft.cc.o"
  "CMakeFiles/prestore_nas.dir/ft.cc.o.d"
  "CMakeFiles/prestore_nas.dir/mg.cc.o"
  "CMakeFiles/prestore_nas.dir/mg.cc.o.d"
  "CMakeFiles/prestore_nas.dir/nas_common.cc.o"
  "CMakeFiles/prestore_nas.dir/nas_common.cc.o.d"
  "CMakeFiles/prestore_nas.dir/small_kernels.cc.o"
  "CMakeFiles/prestore_nas.dir/small_kernels.cc.o.d"
  "CMakeFiles/prestore_nas.dir/sp.cc.o"
  "CMakeFiles/prestore_nas.dir/sp.cc.o.d"
  "CMakeFiles/prestore_nas.dir/ua.cc.o"
  "CMakeFiles/prestore_nas.dir/ua.cc.o.d"
  "libprestore_nas.a"
  "libprestore_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prestore_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
