file(REMOVE_RECURSE
  "libprestore_nas.a"
)
