# Empty compiler generated dependencies file for prestore_nas.
# This may be replaced when dependencies are built.
