file(REMOVE_RECURSE
  "CMakeFiles/dirtbuster_advisor.dir/dirtbuster_advisor.cpp.o"
  "CMakeFiles/dirtbuster_advisor.dir/dirtbuster_advisor.cpp.o.d"
  "dirtbuster_advisor"
  "dirtbuster_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirtbuster_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
