# Empty dependencies file for dirtbuster_advisor.
# This may be replaced when dependencies are built.
