file(REMOVE_RECURSE
  "CMakeFiles/message_latency.dir/message_latency.cpp.o"
  "CMakeFiles/message_latency.dir/message_latency.cpp.o.d"
  "message_latency"
  "message_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
