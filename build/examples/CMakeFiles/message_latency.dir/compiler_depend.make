# Empty compiler generated dependencies file for message_latency.
# This may be replaced when dependencies are built.
