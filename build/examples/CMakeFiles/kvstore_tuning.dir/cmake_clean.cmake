file(REMOVE_RECURSE
  "CMakeFiles/kvstore_tuning.dir/kvstore_tuning.cpp.o"
  "CMakeFiles/kvstore_tuning.dir/kvstore_tuning.cpp.o.d"
  "kvstore_tuning"
  "kvstore_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
