# Empty compiler generated dependencies file for kvstore_tuning.
# This may be replaced when dependencies are built.
