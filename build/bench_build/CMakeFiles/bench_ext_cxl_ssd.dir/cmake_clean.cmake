file(REMOVE_RECURSE
  "../bench/bench_ext_cxl_ssd"
  "../bench/bench_ext_cxl_ssd.pdb"
  "CMakeFiles/bench_ext_cxl_ssd.dir/bench_ext_cxl_ssd.cc.o"
  "CMakeFiles/bench_ext_cxl_ssd.dir/bench_ext_cxl_ssd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cxl_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
