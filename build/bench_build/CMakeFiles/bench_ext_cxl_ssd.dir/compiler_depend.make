# Empty compiler generated dependencies file for bench_ext_cxl_ssd.
# This may be replaced when dependencies are built.
