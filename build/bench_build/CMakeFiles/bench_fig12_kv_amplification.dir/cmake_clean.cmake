file(REMOVE_RECURSE
  "../bench/bench_fig12_kv_amplification"
  "../bench/bench_fig12_kv_amplification.pdb"
  "CMakeFiles/bench_fig12_kv_amplification.dir/bench_fig12_kv_amplification.cc.o"
  "CMakeFiles/bench_fig12_kv_amplification.dir/bench_fig12_kv_amplification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_kv_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
