# Empty compiler generated dependencies file for bench_fig12_kv_amplification.
# This may be replaced when dependencies are built.
