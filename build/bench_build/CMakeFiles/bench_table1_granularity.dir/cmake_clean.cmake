file(REMOVE_RECURSE
  "../bench/bench_table1_granularity"
  "../bench/bench_table1_granularity.pdb"
  "CMakeFiles/bench_table1_granularity.dir/bench_table1_granularity.cc.o"
  "CMakeFiles/bench_table1_granularity.dir/bench_table1_granularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
