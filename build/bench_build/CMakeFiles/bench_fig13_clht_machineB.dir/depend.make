# Empty dependencies file for bench_fig13_clht_machineB.
# This may be replaced when dependencies are built.
