file(REMOVE_RECURSE
  "../bench/bench_fig13_clht_machineB"
  "../bench/bench_fig13_clht_machineB.pdb"
  "CMakeFiles/bench_fig13_clht_machineB.dir/bench_fig13_clht_machineB.cc.o"
  "CMakeFiles/bench_fig13_clht_machineB.dir/bench_fig13_clht_machineB.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_clht_machineB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
