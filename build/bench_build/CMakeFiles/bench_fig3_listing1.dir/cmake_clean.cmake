file(REMOVE_RECURSE
  "../bench/bench_fig3_listing1"
  "../bench/bench_fig3_listing1.pdb"
  "CMakeFiles/bench_fig3_listing1.dir/bench_fig3_listing1.cc.o"
  "CMakeFiles/bench_fig3_listing1.dir/bench_fig3_listing1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_listing1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
