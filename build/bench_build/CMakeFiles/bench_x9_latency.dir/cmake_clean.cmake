file(REMOVE_RECURSE
  "../bench/bench_x9_latency"
  "../bench/bench_x9_latency.pdb"
  "CMakeFiles/bench_x9_latency.dir/bench_x9_latency.cc.o"
  "CMakeFiles/bench_x9_latency.dir/bench_x9_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x9_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
