file(REMOVE_RECURSE
  "../bench/bench_fig9_nas"
  "../bench/bench_fig9_nas.pdb"
  "CMakeFiles/bench_fig9_nas.dir/bench_fig9_nas.cc.o"
  "CMakeFiles/bench_fig9_nas.dir/bench_fig9_nas.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
