file(REMOVE_RECURSE
  "../bench/bench_pitfall_listing3"
  "../bench/bench_pitfall_listing3.pdb"
  "CMakeFiles/bench_pitfall_listing3.dir/bench_pitfall_listing3.cc.o"
  "CMakeFiles/bench_pitfall_listing3.dir/bench_pitfall_listing3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pitfall_listing3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
