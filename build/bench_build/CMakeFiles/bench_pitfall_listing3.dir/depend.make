# Empty dependencies file for bench_pitfall_listing3.
# This may be replaced when dependencies are built.
