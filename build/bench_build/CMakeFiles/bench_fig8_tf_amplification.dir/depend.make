# Empty dependencies file for bench_fig8_tf_amplification.
# This may be replaced when dependencies are built.
