file(REMOVE_RECURSE
  "../bench/bench_fig11_masstree"
  "../bench/bench_fig11_masstree.pdb"
  "CMakeFiles/bench_fig11_masstree.dir/bench_fig11_masstree.cc.o"
  "CMakeFiles/bench_fig11_masstree.dir/bench_fig11_masstree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_masstree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
