# Empty dependencies file for bench_fig11_masstree.
# This may be replaced when dependencies are built.
