file(REMOVE_RECURSE
  "../bench/bench_pitfall_skip"
  "../bench/bench_pitfall_skip.pdb"
  "CMakeFiles/bench_pitfall_skip.dir/bench_pitfall_skip.cc.o"
  "CMakeFiles/bench_pitfall_skip.dir/bench_pitfall_skip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pitfall_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
