# Empty compiler generated dependencies file for bench_pitfall_skip.
# This may be replaced when dependencies are built.
