file(REMOVE_RECURSE
  "../bench/bench_fig10_clht"
  "../bench/bench_fig10_clht.pdb"
  "CMakeFiles/bench_fig10_clht.dir/bench_fig10_clht.cc.o"
  "CMakeFiles/bench_fig10_clht.dir/bench_fig10_clht.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_clht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
