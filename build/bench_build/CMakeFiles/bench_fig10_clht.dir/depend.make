# Empty dependencies file for bench_fig10_clht.
# This may be replaced when dependencies are built.
