# Empty dependencies file for bench_ablation_drain.
# This may be replaced when dependencies are built.
