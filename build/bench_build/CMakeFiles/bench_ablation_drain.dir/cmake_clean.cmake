file(REMOVE_RECURSE
  "../bench/bench_ablation_drain"
  "../bench/bench_ablation_drain.pdb"
  "CMakeFiles/bench_ablation_drain.dir/bench_ablation_drain.cc.o"
  "CMakeFiles/bench_ablation_drain.dir/bench_ablation_drain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
