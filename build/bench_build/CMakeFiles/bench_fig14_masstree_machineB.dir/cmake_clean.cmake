file(REMOVE_RECURSE
  "../bench/bench_fig14_masstree_machineB"
  "../bench/bench_fig14_masstree_machineB.pdb"
  "CMakeFiles/bench_fig14_masstree_machineB.dir/bench_fig14_masstree_machineB.cc.o"
  "CMakeFiles/bench_fig14_masstree_machineB.dir/bench_fig14_masstree_machineB.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_masstree_machineB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
