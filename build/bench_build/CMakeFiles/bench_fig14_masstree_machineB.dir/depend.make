# Empty dependencies file for bench_fig14_masstree_machineB.
# This may be replaced when dependencies are built.
