# Empty compiler generated dependencies file for bench_fig7_tensorflow.
# This may be replaced when dependencies are built.
