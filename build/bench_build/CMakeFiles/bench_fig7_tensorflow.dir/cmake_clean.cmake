file(REMOVE_RECURSE
  "../bench/bench_fig7_tensorflow"
  "../bench/bench_fig7_tensorflow.pdb"
  "CMakeFiles/bench_fig7_tensorflow.dir/bench_fig7_tensorflow.cc.o"
  "CMakeFiles/bench_fig7_tensorflow.dir/bench_fig7_tensorflow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tensorflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
