file(REMOVE_RECURSE
  "../bench/bench_overhead_useless"
  "../bench/bench_overhead_useless.pdb"
  "CMakeFiles/bench_overhead_useless.dir/bench_overhead_useless.cc.o"
  "CMakeFiles/bench_overhead_useless.dir/bench_overhead_useless.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_useless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
