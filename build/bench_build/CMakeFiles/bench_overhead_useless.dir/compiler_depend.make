# Empty compiler generated dependencies file for bench_overhead_useless.
# This may be replaced when dependencies are built.
