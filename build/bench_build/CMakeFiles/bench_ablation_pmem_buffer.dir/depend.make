# Empty dependencies file for bench_ablation_pmem_buffer.
# This may be replaced when dependencies are built.
