file(REMOVE_RECURSE
  "../bench/bench_ablation_pmem_buffer"
  "../bench/bench_ablation_pmem_buffer.pdb"
  "CMakeFiles/bench_ablation_pmem_buffer.dir/bench_ablation_pmem_buffer.cc.o"
  "CMakeFiles/bench_ablation_pmem_buffer.dir/bench_ablation_pmem_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pmem_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
