# Empty dependencies file for bench_misuse_manual.
# This may be replaced when dependencies are built.
