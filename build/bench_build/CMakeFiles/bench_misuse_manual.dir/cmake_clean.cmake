file(REMOVE_RECURSE
  "../bench/bench_misuse_manual"
  "../bench/bench_misuse_manual.pdb"
  "CMakeFiles/bench_misuse_manual.dir/bench_misuse_manual.cc.o"
  "CMakeFiles/bench_misuse_manual.dir/bench_misuse_manual.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_misuse_manual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
