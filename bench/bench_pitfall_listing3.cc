// §5, Listing 3: the cost of cleaning a constantly rewritten cache line.
// The paper reports a 75x slowdown ("equivalent to the ratio between the
// latency of writing to memory vs writing to the cache").
#include <iostream>

#include "bench/listings.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace prestore;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto iters = static_cast<uint32_t>(flags.GetInt("iters", 20000));

  std::cout << "=== Listing 3 pitfall: cleaning a hot line (Machine A) ===\n"
            << "Paper: ~75x slowdown.\n\n";

  const uint64_t base = RunListing3(MachineA(1), false, iters);
  const uint64_t with_clean = RunListing3(MachineA(1), true, iters);

  TextTable t({"variant", "cycles/iter", "slowdown"});
  t.AddRow("rewrite only", base / iters, 1.0);
  t.AddRow("rewrite + clean", with_clean / iters,
           static_cast<double>(with_clean) / static_cast<double>(base));
  t.Print(std::cout);

  std::cout << "\nThe slowdown approximates (memory write latency) / (cache "
               "write latency) = "
            << MachineA(1).target.write_latency << " / ~1 cycles.\n";
  return 0;
}
