// Table 2 (§7.1): DirtBuster's classification of every workload in this
// repository — write-intensive? sequential writes? writes before fences? —
// plus the paper's example report snippets (§7.2.1 TensorEvaluator, §7.2.2
// MG psinv/resid).
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/dirtbuster/dirtbuster.h"
#include "src/kv/clht.h"
#include "src/kv/ycsb.h"
#include "src/msg/x9.h"
#include "src/nas/nas_common.h"
#include "src/proxy/proxies.h"
#include "src/sim/harness.h"
#include "src/tensor/training.h"
#include "src/util/table.h"

using namespace prestore;

namespace {

struct Row {
  std::string name;
  DirtBusterReport report;
};

const char* Mark(bool b) { return b ? "yes" : "-"; }

}  // namespace

int main() {
  std::cout << "=== Table 2: DirtBuster classification of all workloads ===\n"
            << "(pytorch/numpy/lzma/c-ray/gzip rows are represented by the "
               "read-mostly proxies; see DESIGN.md substitutions)\n\n";

  std::vector<Row> rows;

  // Read-mostly proxies (the Table 2 'x' rows).
  {
    Machine m(MachineA(1));
    for (auto& proxy : MakeAllProxies(m)) {
      DirtBuster db(m);
      rows.push_back(
          {proxy->name(), db.Analyze([&] { proxy->Run(m.core(0)); })});
    }
  }

  // TensorFlow proxy — sized so that the small (240B) bias/temp tensors
  // carry a significant share of the evaluator's writes, as in the paper's
  // report (60% of the templated function's writes).
  DirtBusterReport tf_report;
  {
    Machine m(MachineA(1));
    TrainingConfig cfg;
    cfg.batch_size = 2;
    cfg.features = 2048;
    cfg.small_tensors_per_layer = 96;
    CnnTrainingProxy proxy(m, cfg);
    DirtBuster db(m);
    tf_report = db.Analyze([&] { proxy.Step(m.core(0)); });
    rows.push_back({"TensorFlow (proxy)", tf_report});
  }

  // X9.
  {
    Machine m(MachineBFast(1));
    X9Inbox inbox(m, 64, 512);
    DirtBuster db(m);
    rows.push_back({"X9", db.Analyze([&] {
                      Core& core = m.core(0);
                      char drain[512];
                      for (int i = 0; i < 3000; ++i) {
                        (void)inbox.TryWriteStamped(core, i,
                                                    MsgPrestore::kOff);
                        (void)inbox.TryRead(core, drain);
                      }
                    })});
  }

  // KV store (CLHT index; Masstree exercises the same craft/lock pattern).
  {
    Machine m(MachineA(2));
    ClhtMap store(m, 8192);
    YcsbConfig cfg;
    cfg.num_keys = 3000;
    cfg.value_size = 512;
    cfg.threads = 2;
    cfg.ops_per_thread = 500;
    YcsbLoad(m, store, cfg);
    DirtBuster db(m);
    rows.push_back(
        {"KV store (CLHT, YCSB A)", db.Analyze([&] { YcsbRun(m, store, cfg); })});
  }

  // NAS kernels.
  DirtBusterReport mg_report;
  for (const std::string& name : NasKernelNames()) {
    Machine m(MachineA(1));
    auto kernel = MakeNasKernel(name, m, NasPrestore::kOff);
    DirtBuster db(m);
    auto report = db.Analyze([&] { kernel->Run(m.core(0)); });
    if (name == "mg") {
      mg_report = report;
    }
    rows.push_back({"NAS " + name, std::move(report)});
  }

  TextTable t({"Application", "Write-Intensive", "Sequential writes",
               "Writes before fence", "Advice"});
  for (const Row& row : rows) {
    t.AddRow(row.name, Mark(row.report.write_intensive),
             Mark(row.report.sequential_writer),
             Mark(row.report.writes_before_fence),
             std::string(ToString(row.report.OverallAdvice())));
  }
  t.Print(std::cout);

  std::cout << "\n=== §7.2.1 report excerpt: TensorFlow proxy ===\n"
            << tf_report.ToString()
            << "\n=== §7.2.2 report excerpt: MG ===\n"
            << mg_report.ToString();
  return 0;
}
