// Ablation (DESIGN.md §5): size of the PMEM-internal write-combining buffer.
// The buffer bounds how far apart two 64B writebacks of the same 256B block
// may arrive and still coalesce; tiny buffers amplify even sequential
// streams under multi-threaded interleaving, huge buffers absorb scattered
// evictions and shrink the pre-store benefit.
#include <iostream>

#include "bench/listings.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace prestore;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto iters = static_cast<uint32_t>(flags.GetInt("iters", 2500));

  std::cout << "=== Ablation: PMEM internal buffer (Listing 1, 2 threads, "
               "1KB elements) ===\n\n";

  TextTable t({"buffer_blocks", "amp_base", "amp_clean", "clean_speedup"});
  for (const uint32_t blocks : {4u, 16u, 64u, 256u, 1024u}) {
    MachineConfig cfg = MachineA(2);
    cfg.target.internal_buffer_blocks = blocks;
    const auto base = RunListing1(cfg, 2, 1024, false, iters);
    const auto clean = RunListing1(cfg, 2, 1024, true, iters);
    t.AddRow(blocks, base.amplification, clean.amplification,
             static_cast<double>(base.cycles) / clean.cycles);
  }
  t.Print(std::cout);
  return 0;
}
