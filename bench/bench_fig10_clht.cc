// Figure 10 (§7.2.3): CLHT under YCSB A on Machine A — throughput for
// baseline / clean / skip across value sizes. Paper: skip up to 2.9x and
// clean up to 2.3x over baseline; gains start once the value size exceeds
// the CPU line (64B) and grow to the PMEM block size (256B) and beyond.
#include <iostream>

#include "bench/kv_bench.h"
#include "src/util/cli.h"
#include "src/util/table.h"

using namespace prestore;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto threads = static_cast<uint32_t>(flags.GetInt("threads", 8));
  const auto ops = static_cast<uint32_t>(flags.GetInt("ops", 600));

  std::cout << "=== Figure 10: CLHT, YCSB A, Machine A ===\n"
            << "Requests per Mcycle (the paper reports requests/second; "
               "shapes are comparable). Higher is better.\n\n";

  TextTable t({"value_size", "baseline", "clean", "skip", "clean_x",
               "skip_x"});
  for (const uint32_t vs : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const uint32_t n = vs >= 2048 ? ops / 2 : ops;
    const auto base = RunKvBench(KvMachineA(), KvStoreKind::kClht, vs,
                                 KvWritePolicy::kBaseline, threads, n);
    const auto clean = RunKvBench(KvMachineA(), KvStoreKind::kClht, vs,
                                  KvWritePolicy::kClean, threads, n);
    const auto skip = RunKvBench(KvMachineA(), KvStoreKind::kClht, vs,
                                 KvWritePolicy::kSkip, threads, n);
    t.AddRow(vs, base.ThroughputPerMcycle(), clean.ThroughputPerMcycle(),
             skip.ThroughputPerMcycle(),
             clean.ThroughputPerMcycle() / base.ThroughputPerMcycle(),
             skip.ThroughputPerMcycle() / base.ThroughputPerMcycle());
  }
  t.Print(std::cout);
  return 0;
}
